// Tests for FaultInjector::AuditVerify (src/fault/fault_injector.cc): a
// clean chaos run must report nothing, and deliberate corruption through the
// FaultInjectorTestAccess backdoor — cursor skew, ledger mismatch, an
// unregistered probe point, interventions left open past Stop() — must be
// caught by the src/base/audit.h gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/base/audit.h"
#include "src/fault/fault_injector.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {

// Deliberate-corruption backdoor; FaultInjector declares this struct a
// friend so these tests can break invariants the public API makes
// unreachable.
struct FaultInjectorTestAccess {
  static void SkewCursorIntoFuture(FaultInjector& injector, TimeNs future) {
    injector.last_applied_time_ = future;
  }

  static void SkewLedger(FaultInjector& injector) { ++injector.events_applied_; }

  static void UnregisterPoint(FaultInjector& injector, ProbePoint point) {
    injector.registered_points_ &= ~(1u << static_cast<int>(point));
  }

  // Fabricates an open droop that was never accounted in the stats ledger.
  static void FakeOpenDroop(FaultInjector& injector) {
    injector.droops_.push_back(FaultInjector::ActiveDroop{0, 1.0, true});
  }
};

namespace {

std::vector<std::string>& Violations() {
  static std::vector<std::string> v;
  return v;
}

void RecordViolation(const char* file, int line, const char* invariant, const char* detail) {
  (void)file;
  (void)line;
  Violations().push_back(detail != nullptr ? detail : invariant);
}

bool AnyViolationContains(const std::string& needle) {
  return std::any_of(Violations().begin(), Violations().end(), [&](const std::string& v) {
    return v.find(needle) != std::string::npos;
  });
}

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

class FaultAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Violations().clear();
    audit::ResetViolationCount();
  }
  void TearDown() override { Violations().clear(); }

  FaultPlan EverythingPlan() {
    FaultPlan plan;
    EXPECT_TRUE(LookupFaultPlan("everything", &plan));
    return plan;
  }

  audit::ScopedEnable enable_;
  audit::ScopedHandler handler_{&RecordViolation};
};

TEST_F(FaultAuditTest, CleanChaosRunReportsNothing) {
  Simulation sim(17);
  HostMachine machine(&sim, FlatSpec(4));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 2));
  FaultInjector injector(&sim, &machine, &vm, EverythingPlan());
  injector.Start();
  sim.RunFor(SecToNs(3));  // AuditVerify fires after every intervention
  injector.Stop();         // and once more at teardown
  ASSERT_GT(injector.stats().total_applied(), 0u);
  EXPECT_EQ(audit::ViolationCount(), 0u);
}

TEST_F(FaultAuditTest, FutureCursorIsCaught) {
  Simulation sim(3);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, EverythingPlan());
  FaultInjectorTestAccess::SkewCursorIntoFuture(injector, sim.now() + SecToNs(1));
  injector.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("plan cursor is in the future"));
}

TEST_F(FaultAuditTest, LedgerMismatchIsCaught) {
  Simulation sim(3);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, EverythingPlan());
  FaultInjectorTestAccess::SkewLedger(injector);
  injector.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("disagrees with the stats ledger"));
}

TEST_F(FaultAuditTest, UnregisteredProbePointQueryIsCaught) {
  FaultPlan plan;
  plan.name = "probes";
  plan.probe.drop_probability = 0.5;
  Simulation sim(3);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, plan);
  injector.Start();
  FaultInjectorTestAccess::UnregisterPoint(injector, ProbePoint::kVactTick);
  ASSERT_EQ(audit::ViolationCount(), 0u);
  // The query itself carries the check: no explicit AuditVerify call needed.
  injector.DropSample(ProbePoint::kVactTick);
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("unregistered injection point"));
  // A full verify also notices the registry itself is damaged.
  Violations().clear();
  injector.AuditVerify();
  EXPECT_TRUE(AnyViolationContains("injection point was unregistered"));
}

TEST_F(FaultAuditTest, UnaccountedOpenInterventionIsCaught) {
  Simulation sim(3);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, EverythingPlan());
  injector.Start();
  FaultInjectorTestAccess::FakeOpenDroop(injector);
  injector.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("more open droops than ever applied"));
}

TEST_F(FaultAuditTest, InterventionOpenAfterStopIsCaught) {
  Simulation sim(3);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, EverythingPlan());
  injector.Start();
  injector.Stop();
  ASSERT_EQ(audit::ViolationCount(), 0u);
  FaultInjectorTestAccess::FakeOpenDroop(injector);
  injector.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("still open after Stop()"));
}

TEST_F(FaultAuditTest, DisabledAuditorNeverReports) {
  audit::SetEnabled(false);
  Simulation sim(3);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, EverythingPlan());
  FaultInjectorTestAccess::SkewLedger(injector);
  FaultInjectorTestAccess::FakeOpenDroop(injector);
  injector.AuditVerify();
  EXPECT_EQ(audit::ViolationCount(), 0u);
}

}  // namespace
}  // namespace vsched
