// Tests for the VSCHED_AUDIT runtime invariant auditor (src/base/audit.h).
//
// Strategy: install a recording violation handler (so the test binary
// survives), deliberately corrupt an EventQueue / Runqueue through the
// AuditTestAccess friend backdoor, and assert the audit layer notices — both
// when AuditVerify is called directly and when it fires from the real
// mutation hooks. Clean structures must stay violation-free, and a disabled
// auditor must never report.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/base/audit.h"
#include "src/base/time.h"
#include "src/guest/runqueue.h"
#include "src/guest/task.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"
#include "src/sim/timer_wheel.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {

// Deliberate-corruption backdoor; EventQueue and Runqueue declare this
// struct a friend precisely so these tests can break invariants that the
// public API makes unreachable.
struct AuditTestAccess {
  // Swaps the heap root with the last slot, repairing the heap_pos
  // back-pointers so that *only* the ordering invariant is violated.
  static void BreakHeapOrder(EventQueue& q) {
    ASSERT_GE(q.heap_.size(), 2u);
    size_t last = q.heap_.size() - 1;
    std::swap(q.heap_[0], q.heap_[last]);
    q.NodeAt(q.heap_[0].node).heap_pos = 0;
    q.NodeAt(q.heap_[last].node).heap_pos = static_cast<int32_t>(last);
  }

  static void BreakBackPointer(EventQueue& q) {
    ASSERT_FALSE(q.heap_.empty());
    q.NodeAt(q.heap_[0].node).heap_pos = 1 << 20;
  }

  // Pushes a live node onto the free list: the slot is now both pending and
  // recyclable — the double-use bug generation tags exist to prevent.
  static void CorruptFreeList(EventQueue& q) {
    ASSERT_FALSE(q.heap_.empty());
    q.free_.push_back(q.heap_[0].node);
  }

  static void SkewLoad(Runqueue& rq, double delta) { rq.load_ += delta; }

  static void BreakSortOrder(Runqueue& rq) {
    ASSERT_GE(rq.normal_.size(), 2u);
    std::swap(rq.normal_.front(), rq.normal_.back());
  }

  // ---- TimerWheel backdoors ----

  // Shifts the farthest bucketed timer's deadline by two bucket widths: its
  // bucket membership no longer matches the deadline's (level, bucket) hash.
  // (Farthest, so near-term dispatch keeps working and run-loop hooks still
  // get a chance to notice.)
  static void BreakWheelBucketDeadline(TimerWheel& w) {
    TimerWheel::Timer* worst = nullptr;
    for (auto& t : w.timers_) {
      if (t.state == TimerWheel::State::kBucket &&
          (worst == nullptr || t.deadline > worst->deadline)) {
        worst = &t;
      }
    }
    ASSERT_NE(worst, nullptr) << "no bucketed timer to corrupt";
    worst->deadline += 2 * TimerWheel::BucketWidth(worst->level);
  }

  // Clears the occupancy bit of a non-empty bucket: the dispatch probe would
  // skip it, silently losing every timer inside.
  static void BreakWheelOccupancy(TimerWheel& w) {
    for (int level = 0; level < TimerWheel::kLevels; ++level) {
      for (int b = 0; b < TimerWheel::kBuckets; ++b) {
        if (!w.Bucket(level, b).empty()) {
          w.occupancy_[level] &= ~(uint64_t{1} << b);
          return;
        }
      }
    }
    FAIL() << "no occupied bucket to corrupt";
  }

  // Breaks a bucketed timer's (level, bucket, slot) back-pointer.
  static void BreakWheelBackPointer(TimerWheel& w) {
    for (auto& t : w.timers_) {
      if (t.state == TimerWheel::State::kBucket) {
        t.slot += 7;
        return;
      }
    }
    FAIL() << "no bucketed timer to corrupt";
  }

  // Drops a timer from its bucket without fixing armed_count_ — the "timer
  // lost across a cascade" failure mode.
  static void LoseWheelTimer(TimerWheel& w) {
    for (int level = 0; level < TimerWheel::kLevels; ++level) {
      for (int b = 0; b < TimerWheel::kBuckets; ++b) {
        std::vector<uint32_t>& bucket = w.Bucket(level, b);
        if (!bucket.empty()) {
          w.timers_[bucket.back() - 1].state = TimerWheel::State::kIdle;
          bucket.pop_back();
          if (bucket.empty()) {
            w.occupancy_[level] &= ~(uint64_t{1} << b);
          }
          return;
        }
      }
    }
    FAIL() << "no occupied bucket to corrupt";
  }

  // Pretends dispatch already passed an armed timer's deadline (monotone
  // dispatch violation).
  static void BreakWheelMonotoneDispatch(TimerWheel& w) {
    for (auto& t : w.timers_) {
      if (t.state == TimerWheel::State::kBucket) {
        w.fired_any_ = true;
        w.last_fire_when_ = t.deadline + 1;
        return;
      }
    }
    FAIL() << "no bucketed timer to corrupt";
  }

  // Swaps two ready-heap entries (requires >= 2 live entries).
  static void BreakWheelReadyOrder(TimerWheel& w) {
    ASSERT_GE(w.ready_.size(), 2u);
    std::swap(w.ready_.front(), w.ready_.back());
  }
};

namespace {

std::vector<std::string>& Violations() {
  static std::vector<std::string> v;
  return v;
}

void RecordViolation(const char* file, int line, const char* invariant, const char* detail) {
  (void)file;
  (void)line;
  Violations().push_back(detail != nullptr ? detail : invariant);
}

bool AnyViolationContains(const std::string& needle) {
  return std::any_of(Violations().begin(), Violations().end(), [&](const std::string& v) {
    return v.find(needle) != std::string::npos;
  });
}

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Violations().clear();
    audit::ResetViolationCount();
  }
  void TearDown() override { Violations().clear(); }

  audit::ScopedEnable enable_;
  audit::ScopedHandler handler_{&RecordViolation};

  // Runqueue task factory (tasks must outlive the queue operations).
  Task* Make(uint64_t id, double vruntime) {
    tasks_.push_back(std::make_unique<Task>(id, "t" + std::to_string(id), TaskPolicy::kNormal,
                                            &behavior_, CpuMask::FirstN(1)));
    TaskAccess::SetVruntime(tasks_.back().get(), vruntime);
    return tasks_.back().get();
  }

  HogBehavior behavior_;
  std::vector<std::unique_ptr<Task>> tasks_;
};

TEST_F(AuditTest, CleanEventQueueChurnReportsNothing) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(q.ScheduleAt(i * 10, [] {}));
  }
  for (int i = 0; i < 50; i += 3) {
    q.Cancel(ids[static_cast<size_t>(i)]);
  }
  while (q.RunOne()) {
  }
  q.AuditVerify();
  EXPECT_EQ(audit::ViolationCount(), 0u);
}

TEST_F(AuditTest, HeapOrderCorruptionIsCaught) {
  EventQueue q;
  for (int i = 1; i <= 8; ++i) {
    q.ScheduleAt(i * 100, [] {});
  }
  AuditTestAccess::BreakHeapOrder(q);
  q.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("orders before its parent"));
}

TEST_F(AuditTest, HeapCorruptionFiresFromTheMutationHook) {
  EventQueue q;
  for (int i = 1; i <= 8; ++i) {
    q.ScheduleAt(i * 100, [] {});
  }
  AuditTestAccess::BreakHeapOrder(q);
  ASSERT_EQ(audit::ViolationCount(), 0u);
  // No direct AuditVerify call: the next mutation's built-in hook must fire.
  q.ScheduleAt(900, [] {});
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("orders before its parent"));
}

TEST_F(AuditTest, StaleBackPointerIsCaught) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.ScheduleAt(200, [] {});
  AuditTestAccess::BreakBackPointer(q);
  q.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("heap_pos disagrees"));
}

TEST_F(AuditTest, LiveNodeOnFreeListIsCaught) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  AuditTestAccess::CorruptFreeList(q);
  q.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("also live on the heap"));
}

TEST_F(AuditTest, CleanRunqueueChurnReportsNothing) {
  Runqueue rq;
  Task* a = Make(1, 10.0);
  Task* b = Make(2, 20.0);
  Task* c = Make(3, 5.0);
  rq.Enqueue(a);
  rq.Enqueue(b);
  rq.Enqueue(c);
  EXPECT_EQ(rq.Pick(), c);
  rq.Dequeue(b);
  rq.Dequeue(c);
  rq.Dequeue(a);
  EXPECT_EQ(audit::ViolationCount(), 0u);
}

TEST_F(AuditTest, RunqueueLoadDriftIsCaught) {
  Runqueue rq;
  rq.Enqueue(Make(1, 10.0));
  rq.Enqueue(Make(2, 20.0));
  AuditTestAccess::SkewLoad(rq, 1.0);
  rq.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("load diverged"));
}

TEST_F(AuditTest, RunqueueSortCorruptionFiresFromThePickHook) {
  Runqueue rq;
  rq.Enqueue(Make(1, 10.0));
  rq.Enqueue(Make(2, 20.0));
  rq.Enqueue(Make(3, 30.0));
  AuditTestAccess::BreakSortOrder(rq);
  ASSERT_EQ(audit::ViolationCount(), 0u);
  rq.Pick();  // the hook inside Pick must notice
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("out of (vruntime, id) order"));
}

TEST_F(AuditTest, CleanTimerWheelChurnReportsNothing) {
  TimerWheel w;
  std::vector<TimerId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(w.Register([] {}));
    w.Arm(ids.back(), (i + 1) * UsToNs(700));
  }
  for (int i = 0; i < 32; i += 3) {
    w.Cancel(ids[static_cast<size_t>(i)]);
  }
  for (;;) {
    TimeNs next = w.NextDeadlineAtMost(MsToNs(100));
    if (next == kTimeInfinity) {
      break;
    }
    w.RunOne(next);
  }
  w.AuditVerify();
  EXPECT_EQ(audit::ViolationCount(), 0u);
}

TEST_F(AuditTest, WheelBucketHashCorruptionIsCaught) {
  TimerWheel w;
  w.Arm(w.Register([] {}), MsToNs(5));
  AuditTestAccess::BreakWheelBucketDeadline(w);
  w.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("hashes to a different bucket"));
}

TEST_F(AuditTest, WheelOccupancyCorruptionIsCaught) {
  TimerWheel w;
  w.Arm(w.Register([] {}), MsToNs(5));
  AuditTestAccess::BreakWheelOccupancy(w);
  w.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("occupancy bit disagrees"));
}

TEST_F(AuditTest, WheelBackPointerCorruptionIsCaught) {
  TimerWheel w;
  w.Arm(w.Register([] {}), MsToNs(5));
  AuditTestAccess::BreakWheelBackPointer(w);
  w.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("back-pointer disagrees"));
}

TEST_F(AuditTest, WheelLostTimerIsCaught) {
  TimerWheel w;
  w.Arm(w.Register([] {}), MsToNs(5));
  AuditTestAccess::LoseWheelTimer(w);
  w.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("armed count out of sync"));
}

TEST_F(AuditTest, WheelMonotoneDispatchViolationIsCaught) {
  TimerWheel w;
  w.Arm(w.Register([] {}), MsToNs(5));
  AuditTestAccess::BreakWheelMonotoneDispatch(w);
  w.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("precedes the last dispatch"));
}

TEST_F(AuditTest, WheelReadyOrderCorruptionIsCaught) {
  TimerWheel w;
  w.Arm(w.Register([] {}), MsToNs(2));
  w.Arm(w.Register([] {}), MsToNs(2) + 100);
  // Promote both into the ready heap without firing them.
  ASSERT_EQ(w.NextDeadlineAtMost(MsToNs(3)), MsToNs(2));
  AuditTestAccess::BreakWheelReadyOrder(w);
  w.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("ready heap order violated"));
}

TEST_F(AuditTest, WheelCorruptionFiresFromTheRunLoopHook) {
  Simulation sim(/*seed=*/7);
  int near_fires = 0;
  sim.Every(MsToNs(1), [&] { ++near_fires; });
  sim.Every(MsToNs(200), [] {});  // far periodic: sits in a high-level bucket
  sim.RunFor(MsToNs(1));
  ASSERT_EQ(audit::ViolationCount(), 0u);
  AuditTestAccess::BreakWheelBucketDeadline(sim.wheel());
  // No direct AuditVerify call: the run loop's post-dispatch hook must fire
  // on the next near-timer dispatch.
  sim.RunFor(MsToNs(2));
  EXPECT_GT(near_fires, 1);
  EXPECT_GT(audit::ViolationCount(), 0u);
  EXPECT_TRUE(AnyViolationContains("hashes to a different bucket"));
}

TEST_F(AuditTest, SimulationClockStaysMonotone) {
  Simulation sim(/*seed=*/42);
  int fired = 0;
  sim.After(MsToNs(1), [&] { ++fired; });
  sim.Every(MsToNs(2), [&] { ++fired; });
  sim.RunUntil(MsToNs(10));
  sim.RunFor(MsToNs(5));
  EXPECT_GT(fired, 0);
  EXPECT_EQ(audit::ViolationCount(), 0u);
}

TEST_F(AuditTest, DisabledAuditorNeverReports) {
  audit::SetEnabled(false);
  EventQueue q;
  for (int i = 1; i <= 4; ++i) {
    q.ScheduleAt(i * 100, [] {});
  }
  AuditTestAccess::BreakHeapOrder(q);
  q.ScheduleAt(900, [] {});  // hook is a no-op while disabled
  q.AuditVerify();           // explicit calls also gate every check
  EXPECT_EQ(audit::ViolationCount(), 0u);
}

TEST_F(AuditTest, ViolationCountAccumulatesAcrossReports) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.ScheduleAt(200, [] {});
  AuditTestAccess::BreakBackPointer(q);
  q.AuditVerify();
  uint64_t first = audit::ViolationCount();
  EXPECT_GT(first, 0u);
  q.AuditVerify();
  EXPECT_GT(audit::ViolationCount(), first);
}

}  // namespace
}  // namespace vsched
