#include "src/base/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskAndPreservesSubmitOrderViaFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  std::future<int> bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  std::future<int> good = pool.Submit([] { return 7; });
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom");
          throw;
        }
      },
      std::runtime_error);
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  {
    // One worker and a pile of sleeping tasks: most are still queued when
    // the destructor runs, and it must finish them all before joining.
    ThreadPool pool(1);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, WorkersRunConcurrently) {
  // Two tasks that each wait for the other to start can only finish if two
  // workers execute them at the same time.
  ThreadPool pool(2);
  std::atomic<int> started{0};
  auto rendezvous = [&started] {
    started.fetch_add(1);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (started.load() < 2) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "tasks never overlapped";
      std::this_thread::yield();
    }
  };
  std::future<void> a = pool.Submit(rendezvous);
  std::future<void> b = pool.Submit(rendezvous);
  a.get();
  b.get();
  EXPECT_EQ(started.load(), 2);
}

TEST(ThreadPoolTest, IdleWorkersStealQueuedWork) {
  // With 4 workers and round-robin placement, a backlog submitted at once
  // lands on every shard; all of it must complete even though 3 of the 4
  // shards' owners race the others for it.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 128; ++i) {
    futures.push_back(pool.Submit([&done] { done.fetch_add(1); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(done.load(), 128);
}

}  // namespace
}  // namespace vsched
