#include "src/runner/runner.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/runner/result_sink.h"
#include "src/runner/spec.h"

namespace vsched {
namespace {

// A cheap but real sweep: Figure 2 protocol, one app, short windows.
ExperimentSpec SmallSweep() {
  ExperimentSpec sweep = VcpuLatencySweep(/*base_seed=*/0, /*warmup=*/MsToNs(20),
                                          /*measure=*/MsToNs(100));
  sweep.Filter("img-dnn");
  return sweep;
}

std::string Serialize(const std::vector<RunResult>& results) {
  std::string out;
  for (const RunResult& result : results) {
    out += ResultRowJson(result) + "\n";
  }
  return out;
}

TEST(SpecTest, OverallSweepIsTheFullCrossProduct) {
  ExperimentSpec sweep = OverallSweep(ExperimentFamily::kOverallRcvm);
  EXPECT_EQ(sweep.runs.size(), 31u * 3u);
  // Ids are unique and filterable.
  std::vector<std::string> ids;
  for (const RunSpec& run : sweep.runs) {
    ids.push_back(run.Id());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());

  ExperimentSpec filtered = OverallSweep(ExperimentFamily::kOverallRcvm);
  filtered.Filter("/vsched");
  EXPECT_EQ(filtered.runs.size(), 31u);
}

TEST(SpecTest, OptionsForConfigRejectsUnknownNames) {
  EXPECT_NO_THROW(OptionsForConfig("cfs"));
  EXPECT_NO_THROW(OptionsForConfig("enhanced"));
  EXPECT_NO_THROW(OptionsForConfig("vsched"));
  EXPECT_THROW(OptionsForConfig("bogus"), std::invalid_argument);
}

TEST(RunnerTest, ResultsComeBackInSpecOrder) {
  ExperimentSpec sweep = SmallSweep();
  ASSERT_EQ(sweep.runs.size(), 8u);
  RunnerOptions options;
  options.jobs = 4;
  std::vector<RunResult> results = Runner(options).Run(sweep);
  ASSERT_EQ(results.size(), sweep.runs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, static_cast<int>(i));
    EXPECT_EQ(results[i].spec.Id(), sweep.runs[i].Id());
    EXPECT_TRUE(results[i].ok) << results[i].error;
    EXPECT_GT(results[i].metrics.Get("completed"), 0);
  }
}

TEST(RunnerTest, ParallelOutputIsByteIdenticalToSerial) {
  ExperimentSpec sweep = SmallSweep();
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions sharded;
  sharded.jobs = 4;
  std::string reference = Serialize(Runner(serial).Run(sweep));
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(Serialize(Runner(sharded).Run(sweep)), reference);
}

TEST(RunnerTest, FailingRunIsRetriedThenReported) {
  ExperimentSpec sweep;
  sweep.name = "bad";
  RunSpec bad;
  bad.family = ExperimentFamily::kOverallRcvm;
  bad.workload = "no-such-workload";
  bad.config = "cfs";
  sweep.runs.push_back(bad);
  RunnerOptions options;
  options.jobs = 2;
  options.max_attempts = 3;
  std::vector<RunResult> results = Runner(options).Run(sweep);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].attempts, 3);
  EXPECT_NE(results[0].error.find("unknown workload"), std::string::npos);
}

TEST(RunnerTest, ProgressHookFiresOncePerRun) {
  ExperimentSpec sweep = SmallSweep();
  int fired = 0;
  RunnerOptions options;
  options.jobs = 4;
  options.on_run_done = [&fired](const RunResult&) { ++fired; };
  Runner(options).Run(sweep);
  EXPECT_EQ(fired, static_cast<int>(sweep.runs.size()));
}

}  // namespace
}  // namespace vsched
