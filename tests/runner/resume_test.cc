// Tests for checkpoint/resume (src/runner/resume.h): JSONL row parsing and
// resume-state loading from a (possibly interrupted, possibly appended-to)
// prior output file.
#include "src/runner/resume.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace vsched {
namespace {

TEST(JsonlFieldTest, ExtractsSimpleStringFields) {
  const std::string row = R"({"id":"fig02/img-dnn/cfs/lat=2ms","ok":true,"seed":2000001})";
  EXPECT_EQ(JsonlStringField(row, "id"), "fig02/img-dnn/cfs/lat=2ms");
  EXPECT_EQ(JsonlStringField(row, "missing"), "");
}

TEST(JsonlFieldTest, UnescapesQuotesAndBackslashes) {
  const std::string row = R"({"id":"a\"b\\c","ok":true})";
  EXPECT_EQ(JsonlStringField(row, "id"), "a\"b\\c");
}

TEST(JsonlFieldTest, UnterminatedStringReadsAsAbsent) {
  EXPECT_EQ(JsonlStringField(R"({"id":"runaway)", "id"), "");
}

TEST(JsonlRowOkTest, DetectsTheOkFlag) {
  EXPECT_TRUE(JsonlRowOk(R"({"id":"x","ok":true})"));
  EXPECT_FALSE(JsonlRowOk(R"({"id":"x","ok":false,"error":"boom"})"));
  EXPECT_FALSE(JsonlRowOk(""));
}

TEST(RekeyRunIndexTest, RewritesTheLeadingRunField) {
  EXPECT_EQ(RekeyRunIndex(R"({"run":3,"id":"a","ok":true})", 7),
            R"({"run":7,"id":"a","ok":true})");
  // Same index: byte-identical, the common resume-of-same-sweep case.
  EXPECT_EQ(RekeyRunIndex(R"({"run":4,"id":"a"})", 4), R"({"run":4,"id":"a"})");
}

TEST(RekeyRunIndexTest, RowsWithoutALeadingRunFieldPassThrough) {
  EXPECT_EQ(RekeyRunIndex(R"({"id":"a","run":3})", 9), R"({"id":"a","run":3})");
  EXPECT_EQ(RekeyRunIndex("", 9), "");
}

class ResumeStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "resume_test_checkpoint.jsonl";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteCheckpoint(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(ResumeStateTest, MissingFileFailsWithError) {
  ResumeState state;
  std::string error;
  EXPECT_FALSE(LoadResumeState(path_ + ".does-not-exist", &state, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(ResumeStateTest, OnlyOkRowsAreReused) {
  WriteCheckpoint(
      "{\"id\":\"a\",\"ok\":true,\"perf\":1}\n"
      "{\"id\":\"b\",\"ok\":false,\"error\":\"boom\"}\n"
      "\n"
      "{\"id\":\"c\",\"ok\":true,\"perf\":3}\n");
  ResumeState state;
  std::string error;
  ASSERT_TRUE(LoadResumeState(path_, &state, &error)) << error;
  EXPECT_EQ(state.rows_seen, 3);
  EXPECT_EQ(state.rows_skipped, 1);  // the failed row reruns
  ASSERT_EQ(state.completed.size(), 2u);
  EXPECT_EQ(state.completed.at("a"), "{\"id\":\"a\",\"ok\":true,\"perf\":1}");
  EXPECT_EQ(state.completed.count("b"), 0u);
  EXPECT_EQ(state.completed.at("c"), "{\"id\":\"c\",\"ok\":true,\"perf\":3}");
}

TEST_F(ResumeStateTest, LastOccurrenceWinsAcrossAppendedInvocations) {
  // A checkpoint appended across several partial invocations can mention the
  // same id twice; the freshest row must win.
  WriteCheckpoint(
      "{\"id\":\"a\",\"ok\":true,\"perf\":1}\n"
      "{\"id\":\"a\",\"ok\":true,\"perf\":2}\n");
  ResumeState state;
  std::string error;
  ASSERT_TRUE(LoadResumeState(path_, &state, &error)) << error;
  ASSERT_EQ(state.completed.size(), 1u);
  EXPECT_NE(state.completed.at("a").find("\"perf\":2"), std::string::npos);
}

TEST_F(ResumeStateTest, RowsWithoutIdsAreSkippedNotFatal) {
  WriteCheckpoint(
      "garbage line\n"
      "{\"ok\":true}\n"
      "{\"id\":\"a\",\"ok\":true}\n");
  ResumeState state;
  std::string error;
  ASSERT_TRUE(LoadResumeState(path_, &state, &error)) << error;
  EXPECT_EQ(state.rows_seen, 1);
  EXPECT_EQ(state.rows_skipped, 2);
  EXPECT_EQ(state.completed.size(), 1u);
}

}  // namespace
}  // namespace vsched
