// Tests for the runner's resilience features: the simulated-event watchdog,
// the structured status taxonomy, cancellation, seeded retry backoff, and
// byte-identical chaos sweeps across job counts.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/runner/result_sink.h"
#include "src/runner/runner.h"
#include "src/runner/spec.h"

namespace vsched {
namespace {

ExperimentSpec SmallSweep() {
  ExperimentSpec sweep = VcpuLatencySweep(/*base_seed=*/0, /*warmup=*/MsToNs(20),
                                          /*measure=*/MsToNs(100));
  sweep.Filter("img-dnn");
  return sweep;
}

std::string Serialize(const std::vector<RunResult>& results) {
  std::string out;
  for (const RunResult& result : results) {
    out += ResultRowJson(result) + "\n";
  }
  return out;
}

TEST(RunStatusTest, NamesAreStable) {
  EXPECT_STREQ(RunStatusName(RunStatus::kOk), "ok");
  EXPECT_STREQ(RunStatusName(RunStatus::kRetried), "retried");
  EXPECT_STREQ(RunStatusName(RunStatus::kDegraded), "degraded");
  EXPECT_STREQ(RunStatusName(RunStatus::kTimeout), "timeout");
  EXPECT_STREQ(RunStatusName(RunStatus::kFailed), "failed");
}

TEST(WatchdogTest, TinyEventBudgetTimesOutWithoutRetry) {
  ExperimentSpec sweep = SmallSweep();
  sweep.runs.resize(1);
  sweep.runs[0].event_budget = 100;  // far below what any real run needs
  RunnerOptions options;
  options.jobs = 1;
  options.max_attempts = 3;
  std::vector<RunResult> results = Runner(options).Run(sweep);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].status, RunStatus::kTimeout);
  // The budget is deterministic — re-running would exhaust it again, so the
  // watchdog fails the cell on the first attempt.
  EXPECT_EQ(results[0].attempts, 1);
  EXPECT_NE(results[0].error.find("event budget"), std::string::npos) << results[0].error;
}

TEST(WatchdogTest, TimeoutCellNeverAbortsTheSweep) {
  ExperimentSpec sweep = SmallSweep();
  ASSERT_GE(sweep.runs.size(), 3u);
  sweep.runs[1].event_budget = 100;  // poison one interior cell
  RunnerOptions options;
  options.jobs = 2;
  std::vector<RunResult> results = Runner(options).Run(sweep);
  ASSERT_EQ(results.size(), sweep.runs.size());
  EXPECT_EQ(results[1].status, RunStatus::kTimeout);
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 1) {
      continue;
    }
    EXPECT_TRUE(results[i].ok) << results[i].error;
    EXPECT_EQ(results[i].status, RunStatus::kOk);
  }
}

TEST(WatchdogTest, GenerousBudgetDoesNotPerturbTheRun) {
  ExperimentSpec sweep = SmallSweep();
  sweep.runs.resize(1);
  RunnerOptions options;
  options.jobs = 1;
  std::string reference = Serialize(Runner(options).Run(sweep));
  sweep.runs[0].event_budget = 1ull << 60;  // plenty; must change nothing
  EXPECT_EQ(Serialize(Runner(options).Run(sweep)), reference);
}

TEST(CancelTest, CancelledRunsFailAsInterruptedWithoutExecuting) {
  ExperimentSpec sweep = SmallSweep();
  std::atomic<bool> cancel{true};  // raised before anything starts
  RunnerOptions options;
  options.jobs = 2;
  options.cancel = &cancel;
  std::vector<RunResult> results = Runner(options).Run(sweep);
  ASSERT_EQ(results.size(), sweep.runs.size());
  for (const RunResult& result : results) {
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.status, RunStatus::kFailed);
    EXPECT_EQ(result.attempts, 0);
    EXPECT_EQ(result.error, "interrupted");
  }
}

TEST(RetryTest, FailedAttemptsAreCountedDeterministically) {
  ExperimentSpec sweep;
  sweep.name = "bad";
  RunSpec bad;
  bad.family = ExperimentFamily::kOverallRcvm;
  bad.workload = "no-such-workload";
  bad.config = "cfs";
  sweep.runs.push_back(bad);
  RunnerOptions options;
  options.jobs = 1;
  options.max_attempts = 3;
  options.retry_backoff = 0;  // no wall-clock wait in tests
  std::vector<RunResult> a = Runner(options).Run(sweep);
  std::vector<RunResult> b = Runner(options).Run(sweep);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_FALSE(a[0].ok);
  EXPECT_EQ(a[0].status, RunStatus::kFailed);
  EXPECT_EQ(a[0].attempts, 3);
  EXPECT_EQ(Serialize(a), Serialize(b));
}

TEST(ChaosSweepTest, FaultPlanRowsAreByteIdenticalAcrossJobCounts) {
  ExperimentSpec sweep = SmallSweep();
  for (RunSpec& run : sweep.runs) {
    run.fault_plan = "interference-burst";
  }
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions sharded;
  sharded.jobs = 4;
  std::string reference = Serialize(Runner(serial).Run(sweep));
  EXPECT_FALSE(reference.empty());
  EXPECT_NE(reference.find("\"fault_plan\":\"interference-burst\""), std::string::npos);
  EXPECT_NE(reference.find("\"fault_applied\":"), std::string::npos);
  EXPECT_EQ(Serialize(Runner(sharded).Run(sweep)), reference);
}

TEST(ChaosSweepTest, CleanRowsCarryNoFaultKeys) {
  ExperimentSpec sweep = SmallSweep();
  sweep.runs.resize(1);
  RunnerOptions options;
  options.jobs = 1;
  std::string row = Serialize(Runner(options).Run(sweep));
  EXPECT_EQ(row.find("fault_plan"), std::string::npos);
  EXPECT_EQ(row.find("fault_applied"), std::string::npos);
  EXPECT_EQ(row.find("degraded_"), std::string::npos);
  EXPECT_EQ(row.find("\"status\""), std::string::npos);  // implied "ok"
}

}  // namespace
}  // namespace vsched
