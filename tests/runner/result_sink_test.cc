#include "src/runner/result_sink.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
  EXPECT_EQ(JsonEscape("\r\b\f"), "\\r\\b\\f");
}

TEST(JsonNumberTest, ShortestRoundTripAndNonFinite) {
  EXPECT_EQ(JsonNumber(3), "3");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(0), "0");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(INFINITY), "null");
  EXPECT_EQ(JsonNumber(-INFINITY), "null");
}

RunResult SampleResult() {
  RunResult result;
  result.spec.family = ExperimentFamily::kOverallRcvm;
  result.spec.workload = "canneal";
  result.spec.config = "vsched";
  result.spec.seed = 42;
  result.index = 3;
  result.attempts = 1;
  result.ok = true;
  result.status = RunStatus::kOk;
  result.metrics.Set("perf", 1.25);
  result.metrics.Set("migrations", 7);
  result.wall_ns = 1'500'000;  // 1.5 ms
  return result;
}

TEST(ResultRowJsonTest, DeterministicRowWithoutTiming) {
  EXPECT_EQ(ResultRowJson(SampleResult()),
            "{\"run\":3,\"id\":\"fig18_rcvm/canneal/vsched\",\"experiment\":\"fig18_rcvm\","
            "\"workload\":\"canneal\",\"config\":\"vsched\",\"seed\":42,\"ok\":true,"
            "\"attempts\":1,\"metrics\":{\"perf\":1.25,\"migrations\":7}}");
}

TEST(ResultRowJsonTest, TimingIsOptIn) {
  std::string row = ResultRowJson(SampleResult(), /*include_timing=*/true);
  EXPECT_NE(row.find("\"wall_ms\":1.5"), std::string::npos);
  EXPECT_EQ(ResultRowJson(SampleResult()).find("wall_ms"), std::string::npos);
}

TEST(ResultRowJsonTest, FailedRunCarriesEscapedError) {
  RunResult result = SampleResult();
  result.ok = false;
  result.attempts = 2;
  result.error = "bad \"config\"\nname";
  result.metrics.values.clear();
  std::string row = ResultRowJson(result);
  EXPECT_NE(row.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(row.find("\"attempts\":2"), std::string::npos);
  EXPECT_NE(row.find("\"error\":\"bad \\\"config\\\"\\nname\""), std::string::npos);
  EXPECT_NE(row.find("\"metrics\":{}"), std::string::npos);
}

TEST(ResultSinkTest, WritesOneLinePerRunAndCounts) {
  std::ostringstream out;
  ResultSink sink(&out);
  sink.Write(SampleResult());
  sink.Write(SampleResult());
  EXPECT_EQ(sink.rows_written(), 2);
  std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_EQ(text.find("wall_ms"), std::string::npos);
}

}  // namespace
}  // namespace vsched
