// Tests for the adversary-surface rule: src/adversary/ code may drive the
// public host surface (Stressor, bandwidth caps) but must not name the
// probers, optimizations, detection state, or fault-injector hooks — an
// attack that reads the estimator it is attacking is no longer operating
// under the threat model the deception matrix measures.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace vsched {
namespace lint {
namespace {

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(LintAdversarySurface, FiresOnProbeEstimatorReads) {
  EXPECT_TRUE(HasRule(
      LintFile("src/adversary/smart.cc", "double c = vcap->CapacityOf(0);\n"),
      "adversary-surface"));
  EXPECT_TRUE(HasRule(
      LintFile("src/adversary/smart.cc", "Vact* vact = sched->vact();\n"),
      "adversary-surface"));
  EXPECT_TRUE(HasRule(
      LintFile("src/adversary/smart.cc", "auto lat = vact->MedianLatency();\n"),
      "adversary-surface"));
}

TEST(LintAdversarySurface, FiresOnDetectionAndInjectorState) {
  EXPECT_TRUE(HasRule(
      LintFile("src/adversary/evasive.cc", "if (vcap->QuarantinedMask().Empty()) {}\n"),
      "adversary-surface"));
  EXPECT_TRUE(HasRule(
      LintFile("src/adversary/evasive.cc", "ConfidenceTracker tracker;\n"),
      "adversary-surface"));
  EXPECT_TRUE(HasRule(
      LintFile("src/adversary/evasive.cc", "injector->DropSample(ProbeKind::kVcap);\n"),
      "adversary-surface"));
  EXPECT_TRUE(HasRule(
      LintFile("src/adversary/evasive.cc", "machine->RebuildSchedDomains();\n"),
      "adversary-surface"));
}

TEST(LintAdversarySurface, AllowsThePublicHostSurface) {
  // The real drivers: stressors, weights, phases, bandwidth self-caps.
  auto f = LintFile("src/adversary/driver.cc",
                    "void CycleStealer::Launch(TimeNs at) {\n"
                    "  Stressor* s = StressorFor(0, 10.0, true);\n"
                    "  s->AttachTo(victims_[0]);\n"
                    "  s->SetBandwidthCap(quota, period);\n"
                    "}\n");
  EXPECT_FALSE(HasRule(f, "adversary-surface"));
}

TEST(LintAdversarySurface, ScopedToAdversaryDirectoryOnly) {
  // The same estimator reads are the whole point everywhere else — the
  // deception reporter (src/runner/) scores estimates against ground truth.
  auto f = LintFile("src/runner/deception.cc",
                    "double est = vcap->CapacityOf(i) / kCapacityScale;\n");
  EXPECT_FALSE(HasRule(f, "adversary-surface"));
  EXPECT_FALSE(HasRule(LintFile("src/core/vsched.cc", "Vcap* v = vcap_.get();\n"),
                       "adversary-surface"));
}

TEST(LintAdversarySurface, MentionsInCommentsAndStringsAreFine) {
  // The driver headers *document* what they must not touch; prose is not a
  // violation. The lexer strips comments and blanks string literals.
  auto f = LintFile("src/adversary/doc.cc",
                    "// Never reads Vcap, Vact, or the FaultInjector.\n"
                    "const char* kNote = \"CapacityOf is off limits\";\n");
  EXPECT_FALSE(HasRule(f, "adversary-surface"));
}

TEST(LintAdversarySurface, HonorsAllowComment) {
  auto f = LintFile("src/adversary/calibrated.cc",
                    "// vsched-lint: allow(adversary-surface)\n"
                    "double c = vcap->CapacityOf(0);\n");
  EXPECT_FALSE(HasRule(f, "adversary-surface"));
}

// The shipped drivers must themselves be clean — the rule guards them.
TEST(LintAdversarySurface, RuleIsRegistered) {
  bool found = false;
  for (const RuleInfo& info : Rules()) {
    if (std::string(info.name) == "adversary-surface") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace lint
}  // namespace vsched
