// Tests for vsched-lint (tools/lint/): every rule must fire on a minimal
// offending snippet, stay silent on conforming code, respect directory
// scoping, and honour the // vsched-lint: allow(...) suppression comment on
// both the same line and the line above.
#include "tools/lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace vsched {
namespace lint {
namespace {

std::vector<std::string> RuleNamesIn(const std::vector<Finding>& findings) {
  std::vector<std::string> names;
  for (const Finding& f : findings) {
    names.push_back(f.rule);
  }
  return names;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- wall-clock ------------------------------------------------------------

TEST(LintWallClock, FiresOnSystemClockInSimCode) {
  auto f = LintFile("src/sim/foo.cc",
                    "void F() {\n  auto t = std::chrono::system_clock::now();\n}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "wall-clock");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintWallClock, FiresOnSteadyClockAndCApis) {
  EXPECT_TRUE(HasRule(LintFile("src/guest/a.cc", "x = steady_clock::now();\n"), "wall-clock"));
  EXPECT_TRUE(HasRule(LintFile("src/host/a.cc", "clock_gettime(CLOCK_MONOTONIC, &ts);\n"),
                      "wall-clock"));
  EXPECT_TRUE(HasRule(LintFile("src/core/a.cc", "gettimeofday(&tv, nullptr);\n"), "wall-clock"));
}

TEST(LintWallClock, IgnoresTheRunnerHarness) {
  // The runner measures harness wall time for reports — legitimate.
  auto f = LintFile("src/runner/runner.cc", "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_FALSE(HasRule(f, "wall-clock"));
}

TEST(LintWallClock, DoesNotFireOnSimilarIdentifiers) {
  // TimeToComplete(...) contains "time(" as a substring of an identifier.
  auto f = LintFile("src/sim/a.cc", "void F() {\n  TimeNs t = TimeToComplete(work, cap);\n}\n");
  EXPECT_TRUE(f.empty());
}

// --- libc-rand -------------------------------------------------------------

TEST(LintLibcRand, FiresOnRandFamilyAndRandomDevice) {
  EXPECT_TRUE(HasRule(LintFile("src/sim/a.cc", "int x = rand() % 7;\n"), "libc-rand"));
  EXPECT_TRUE(HasRule(LintFile("src/runner/a.cc", "srand(42);\n"), "libc-rand"));
  EXPECT_TRUE(HasRule(LintFile("src/core/a.cc", "std::random_device rd;\n"), "libc-rand"));
  EXPECT_TRUE(HasRule(LintFile("src/host/a.cc", "double d = drand48();\n"), "libc-rand"));
}

TEST(LintLibcRand, IgnoresSeededSimulatorRng) {
  auto f = LintFile("src/sim/a.cc", "void F() {\n  Rng rng(seed);\n  double d = rng.NextDouble();\n}\n");
  EXPECT_TRUE(f.empty());
}

// --- unordered-container ---------------------------------------------------

TEST(LintUnordered, FiresInSchedulerCoreOnly) {
  const std::string snippet = "std::unordered_map<int, Task*> by_id;\n";
  EXPECT_TRUE(HasRule(LintFile("src/sim/a.h", snippet), "unordered-container"));
  EXPECT_TRUE(HasRule(LintFile("src/guest/a.h", snippet), "unordered-container"));
  EXPECT_TRUE(HasRule(LintFile("src/host/a.h", snippet), "unordered-container"));
  // Outside the scheduler core the iteration-order hazard does not bind.
  EXPECT_FALSE(HasRule(LintFile("src/metrics/a.h", snippet), "unordered-container"));
}

TEST(LintCluster, ControlPlaneIsSimulatedWorldCode) {
  // The fleet control plane replays byte-identically, so it inherits both
  // the wall-clock ban and the hash-iteration-order ban.
  EXPECT_TRUE(HasRule(
      LintFile("src/cluster/fleet.cc", "auto t = std::chrono::steady_clock::now();\n"),
      "wall-clock"));
  EXPECT_TRUE(HasRule(
      LintFile("src/cluster/placement.h", "std::unordered_map<int, int> by_host;\n"),
      "unordered-container"));
  EXPECT_TRUE(HasRule(LintFile("src/cluster/fleet.cc", "int x = rand() % 7;\n"),
                      "libc-rand"));
}

TEST(LintUnordered, FiresOnUnorderedSetToo) {
  EXPECT_TRUE(
      HasRule(LintFile("src/guest/a.cc", "std::unordered_set<uint64_t> seen;\n"),
              "unordered-container"));
}

// --- unseeded-rng ----------------------------------------------------------

TEST(LintUnseededRng, FiresOnDefaultConstructedEngines) {
  EXPECT_TRUE(HasRule(LintFile("src/sim/a.cc", "std::mt19937 gen;\n"), "unseeded-rng"));
  EXPECT_TRUE(HasRule(LintFile("src/guest/a.cc", "std::mt19937_64 gen{};\n"), "unseeded-rng"));
  EXPECT_TRUE(
      HasRule(LintFile("src/core/a.cc", "std::default_random_engine e();\n"), "unseeded-rng"));
}

TEST(LintUnseededRng, IgnoresExplicitlySeededEngines) {
  auto f = LintFile("src/sim/a.cc", "std::mt19937 gen(seed);\nstd::mt19937_64 g2{seed};\n");
  EXPECT_FALSE(HasRule(f, "unseeded-rng"));
}

// --- raw-double-accum ------------------------------------------------------

TEST(LintRawAccum, FiresOnMemberLoadAndVruntimeAccumulation) {
  EXPECT_TRUE(
      HasRule(LintFile("src/guest/a.cc", "load_ += task->weight();\n"), "raw-double-accum"));
  EXPECT_TRUE(HasRule(LintFile("src/host/a.cc", "e->vruntime_ += delta * scale;\n"),
                      "raw-double-accum"));
  EXPECT_TRUE(
      HasRule(LintFile("src/guest/a.cc", "total_load_ -= w;\n"), "raw-double-accum"));
}

TEST(LintRawAccum, IgnoresLocalsAndPlainAssignment) {
  // Locals (no trailing underscore) are fresh per call — no drift.
  EXPECT_FALSE(
      HasRule(LintFile("src/guest/a.cc", "double my_load = 0;\nmy_load += w;\n"),
              "raw-double-accum"));
  EXPECT_FALSE(
      HasRule(LintFile("src/guest/a.cc", "load_ = recompute();\n"), "raw-double-accum"));
}

// --- pelt-eager-update -----------------------------------------------------

TEST(LintPeltUpdate, FiresOnDirectMemberUpdateInSrc) {
  EXPECT_TRUE(HasRule(LintFile("src/guest/guest_kernel.cc",
                               "task->pelt_.Update(now, true);\n"),
                      "pelt-eager-update"));
  EXPECT_TRUE(HasRule(LintFile("src/core/bvs.cc", "t->pelt_.Update(now, false);\n"),
                      "pelt-eager-update"));
  EXPECT_TRUE(HasRule(LintFile("src/guest/a.cc", "PeltSignal::Update(now, true);\n"),
                      "pelt-eager-update"));
}

TEST(LintPeltUpdate, IgnoresPeltImplementationAndReaders) {
  // pelt.cc / pelt.h are the signal's own implementation.
  EXPECT_FALSE(HasRule(LintFile("src/guest/pelt.cc",
                                "void PeltSignal::Update(TimeNs now, bool active) {\n"),
                       "pelt-eager-update"));
  EXPECT_FALSE(HasRule(LintFile("src/guest/pelt.h", "void Update(TimeNs now, bool active);\n"),
                       "pelt-eager-update"));
  // Lazy reads are the intended API.
  EXPECT_FALSE(HasRule(LintFile("src/core/bvs.cc",
                                "double u = t->pelt_.UtilAt(now, active);\n"),
                       "pelt-eager-update"));
  // Tests and tools are out of scope.
  EXPECT_FALSE(HasRule(LintFile("tests/guest/pelt_test.cc", "sig.pelt_.Update(now, true);\n"),
                       "pelt-eager-update"));
}

TEST(LintPeltUpdate, AllowCommentMarksDesignatedEntryPoints) {
  const std::string snippet =
      "void GuestVcpu::CloseSegment(TimeNs now) {\n"
      "  // vsched-lint: allow(pelt-eager-update)\n"
      "  current_->pelt_.Update(now, true);\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/guest/guest_vcpu.cc", snippet).empty());
}

// --- fault-injection-point -------------------------------------------------

TEST(LintFaultHook, FiresOnHooksOutsideDesignatedPoints) {
  EXPECT_TRUE(HasRule(LintFile("src/core/bvs.cc",
                               "if (injector->DropSample(ProbePoint::kVcapWindow)) {\n"),
                      "fault-injection-point"));
  EXPECT_TRUE(HasRule(LintFile("src/guest/guest_kernel.cc",
                               "v = injector->CorruptSample(ProbePoint::kVactTick, v);\n"),
                      "fault-injection-point"));
}

TEST(LintFaultHook, IgnoresTheInjectorImplementationAndTests) {
  // src/fault owns the hooks' implementation.
  EXPECT_FALSE(HasRule(LintFile("src/fault/fault_injector.cc",
                                "bool FaultInjector::DropSample(ProbePoint point) {\n"),
                       "fault-injection-point"));
  // Tests and tools are out of scope.
  EXPECT_FALSE(HasRule(LintFile("tests/fault/fault_injector_test.cc",
                                "EXPECT_FALSE(injector.DropSample(ProbePoint::kVactTick));\n"),
                       "fault-injection-point"));
}

TEST(LintFaultHook, AllowCommentMarksDesignatedInjectionPoints) {
  const std::string snippet =
      "// vsched-lint: allow(fault-injection-point) — registered kVcapWindow site\n"
      "if (injector->DropSample(ProbePoint::kVcapWindow)) {\n";
  EXPECT_TRUE(LintFile("src/probe/vcap.cc", snippet).empty());
}

// --- mutable-global --------------------------------------------------------

TEST(LintMutableGlobal, FiresOnNamespaceScopeState) {
  const std::string snippet =
      "namespace vsched {\n"
      "static int g_counter = 0;\n"
      "}  // namespace vsched\n";
  auto f = LintFile("src/guest/globals.cc", snippet);
  ASSERT_TRUE(HasRule(f, "mutable-global")) << f.size();
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintMutableGlobal, FiresOnThreadLocalAndAnonymousNamespaces) {
  const std::string snippet =
      "namespace {\n"
      "thread_local uint64_t g_calls = 0;\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintFile("src/core/a.cc", snippet), "mutable-global"));
}

TEST(LintMutableGlobal, AllowsConstConstexprAndSrcBase) {
  const std::string ok =
      "namespace vsched {\n"
      "constexpr int kLimit = 8;\n"
      "const char* const kName = nullptr;\n"
      "inline constexpr double kScale = 1024.0;\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintFile("src/guest/a.h", ok), "mutable-global"));
  // src/base owns process-wide state (log level, perf counters, audit flag).
  EXPECT_FALSE(HasRule(LintFile("src/base/log.cc",
                                "namespace vsched {\nLogLevel g_level = LogLevel::kWarn;\n}\n"),
                       "mutable-global"));
}

TEST(LintMutableGlobal, IgnoresFunctionBodiesAndMembers) {
  const std::string snippet =
      "namespace vsched {\n"
      "int Count() {\n"
      "  static int calls = 0;\n"  // function-local: not namespace scope
      "  return ++calls;\n"
      "}\n"
      "class Foo {\n"
      "  int counter_ = 0;\n"  // member: not namespace scope
      "};\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintFile("src/guest/a.cc", snippet), "mutable-global"));
}

// --- comments, strings, suppressions ---------------------------------------

TEST(LintScrub, CommentsAndStringsNeverFire) {
  const std::string snippet =
      "// std::chrono::system_clock is forbidden here\n"
      "/* rand() would also be wrong */\n"
      "const char* msg = \"calls system_clock::now() and rand()\";\n";
  EXPECT_TRUE(LintFile("src/sim/a.cc", snippet).empty());
}

TEST(LintScrub, BlockCommentStateSpansLines) {
  const std::string snippet =
      "/* a multi-line comment mentioning\n"
      "   std::chrono::system_clock::now()\n"
      "   and rand() */\n"
      "void Tick();\n";
  EXPECT_TRUE(LintFile("src/sim/a.cc", snippet).empty());
}

TEST(LintSuppression, SameLineAllowSilencesTheRule) {
  auto f = LintFile("src/guest/a.cc",
                    "load_ += w;  // vsched-lint: allow(raw-double-accum) — compensated below\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSuppression, PreviousLineAllowSilencesTheRule) {
  const std::string snippet =
      "void F() {\n"
      "  // vsched-lint: allow(wall-clock) — documented exception\n"
      "  auto t = std::chrono::system_clock::now();\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/sim/a.cc", snippet).empty());
}

TEST(LintSuppression, AllowListCoversMultipleRules) {
  const std::string snippet =
      "void F() {\n"
      "  // vsched-lint: allow(wall-clock, libc-rand)\n"
      "  auto t = steady_clock::now(); int r = rand();\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/sim/a.cc", snippet).empty());
}

TEST(LintSuppression, WrongRuleNameDoesNotSilence) {
  const std::string snippet =
      "// vsched-lint: allow(libc-rand)\n"
      "auto t = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(HasRule(LintFile("src/sim/a.cc", snippet), "wall-clock"));
}

TEST(LintSuppression, AllowDoesNotLeakPastTheNextLine) {
  const std::string snippet =
      "void F() {\n"
      "  // vsched-lint: allow(wall-clock)\n"
      "  int unrelated = 0;\n"
      "  auto t = std::chrono::system_clock::now();\n"
      "}\n";
  auto f = LintFile("src/sim/a.cc", snippet);
  ASSERT_TRUE(HasRule(f, "wall-clock"));
  EXPECT_EQ(f[0].line, 4);
}

// --- rule registry / multi-finding behaviour -------------------------------

TEST(LintRules, RegistryListsEveryRuleExactlyOnce) {
  std::vector<std::string> names;
  for (const RuleInfo& r : Rules()) {
    names.push_back(r.name);
  }
  std::vector<std::string> expected = {"wall-clock",       "libc-rand",
                                       "unordered-container", "unseeded-rng",
                                       "raw-double-accum",    "pelt-eager-update",
                                       "fault-injection-point", "adversary-surface",
                                       "mutable-global",      "event-lifetime",
                                       "shard-isolation",     "shard-crossing"};
  std::sort(names.begin(), names.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(names, expected);
}

TEST(LintRules, MultipleViolationsReportDistinctLines) {
  const std::string snippet =
      "void Poll() {\n"
      "  auto t = std::chrono::system_clock::now();\n"
      "  void Tick();\n"
      "  int r = rand();\n"
      "}\n";
  auto f = LintFile("src/sim/a.cc", snippet);
  ASSERT_EQ(f.size(), 2u) << RuleNamesIn(f).size();
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[1].line, 4);
}

}  // namespace
}  // namespace lint
}  // namespace vsched
