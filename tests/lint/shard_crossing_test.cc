// Fixtures for the shard-crossing rule (tools/lint/analyzer.h): the sharded
// PDES engine's isolation contract. Two sub-checks: (A) closures posted to
// the barrier mailbox (`ShardMailbox::Post`) must carry ids — never
// FleetCell / Simulation / slot pointers or references — because delivery
// happens a window later, after the referenced cell may have run on a worker
// thread; (B) per-cell scopes (functions taking a FleetCell*) must not reach
// the engine-wide `cells_` array — cross-cell effects travel as mailbox
// messages applied at window boundaries (docs/PERF.md, "Sharded fleet
// execution").
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace vsched {
namespace lint {
namespace {

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- sub-check A: cell state across the barrier window ----------------------

TEST(LintShardCrossing, FlagsFleetCellPointerInMailboxMessage) {
  // The pointer is resolved *now*; by the delivery window the cell has run
  // (possibly concurrently) and the message would touch it off-thread.
  const std::string snippet =
      "void ShardedFleet::ScheduleCommit(int host_id, TimeNs due) {\n"
      "  FleetCell* cell = CellOfHost(host_id);\n"
      "  mailbox_.Post(due, ShardMailbox::kControlPlane, [this, cell, due] {\n"
      "    cell->counters.timer_arms += 1;\n"
      "  });\n"
      "}\n";
  auto f = LintFile("src/cluster/sharded_fleet.cc", snippet);
  ASSERT_TRUE(HasRule(f, "shard-crossing"));
  // Post is not an event-lifetime sink: the mailbox dies with its owner and
  // the coordinator drains it single-threaded, so only the shard rule fires.
  EXPECT_FALSE(HasRule(f, "event-lifetime"));
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
  EXPECT_EQ(f[0].sink, "mailbox_.Post");
}

TEST(LintShardCrossing, FlagsSimulationReferenceCapture) {
  // Any reference capture crosses the window; a Simulation& doubly so — it
  // is the per-cell event queue itself.
  const std::string snippet =
      "void ShardedFleet::ScheduleTick(int cell_id, TimeNs due) {\n"
      "  Simulation& sim = CellSim(cell_id);\n"
      "  mailbox_.Post(due, ShardMailbox::kControlPlane, [this, &sim, due] {\n"
      "    sim.Step();\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(
      HasRule(LintFile("src/cluster/sharded_fleet.cc", snippet), "shard-crossing"));
}

TEST(LintShardCrossing, PassesIdCaptureReresolvedAtDelivery) {
  // The engine's idiom: `this` plus ids; the handler re-resolves the cell
  // through the coordinator at delivery time.
  const std::string snippet =
      "void ShardedFleet::ScheduleBoot(int id, TimeNs due) {\n"
      "  mailbox_.Post(due, ShardMailbox::kControlPlane,\n"
      "                [this, id, due] { OnBootComplete(id, due); });\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/sharded_fleet.cc", snippet).empty());
}

TEST(LintShardCrossing, OnlyBindsToCluster) {
  // A `.Post(` outside src/cluster/ is somebody else's API.
  const std::string snippet =
      "void Relay::Defer(TimeNs due) {\n"
      "  Buffer* b = &buffer_;\n"
      "  bus_.Post(due, 0, [b] { b->Flush(); });\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintFile("src/host/relay.cc", snippet), "shard-crossing"));
}

// --- sub-check B: per-cell scope vs the engine-wide cell array --------------

TEST(LintShardCrossing, FlagsCellsArrayAccessFromPerCellScope) {
  const std::string snippet =
      "void ShardedFleet::DrainInto(FleetCell* cell, int want) {\n"
      "  cells_[0]->counters.rq_picks += static_cast<uint64_t>(want);\n"
      "}\n";
  auto f = LintFile("src/cluster/sharded_fleet.cc", snippet);
  ASSERT_TRUE(HasRule(f, "shard-crossing"));
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintShardCrossing, PassesPerCellScopeUsingItsOwnCell) {
  const std::string snippet =
      "void ShardedFleet::DrainInto(FleetCell* cell, int want) {\n"
      "  cell->counters.rq_picks += static_cast<uint64_t>(want);\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/sharded_fleet.cc", snippet).empty());
}

TEST(LintShardCrossing, PassesCoordinatorScopeTouchingCells) {
  // The coordinator owns the whole array between windows; only per-cell
  // scopes are fenced.
  const std::string snippet =
      "void ShardedFleet::BarrierPhase(TimeNs now) {\n"
      "  for (auto& cell : cells_) {\n"
      "    Harvest(cell.get(), now);\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/sharded_fleet.cc", snippet).empty());
}

TEST(LintShardCrossing, AllowCommentSuppresses) {
  const std::string snippet =
      "void ShardedFleet::DrainInto(FleetCell* cell, int want) {\n"
      "  // vsched-lint: allow(shard-crossing) — startup, before workers exist\n"
      "  cells_[0]->counters.rq_picks += static_cast<uint64_t>(want);\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/sharded_fleet.cc", snippet).empty());
}

}  // namespace
}  // namespace lint
}  // namespace vsched
