// Fixtures for the shard-isolation rule (tools/lint/analyzer.h): within
// src/cluster/, another host's mutable state may only be reached through the
// control-plane message/event interface. Three sub-checks: (A) posted
// closures must not carry slot pointers across the event boundary, (B)
// per-host scopes (functions taking a ClusterHost*) must not reach the
// fleet-wide slot array, (C) placement policies consume HostLoadView
// snapshots only.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace vsched {
namespace lint {
namespace {

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- sub-check A: slot pointers across the event boundary -------------------

TEST(LintShardIsolation, FlagsClusterHostPointerInPostedClosure) {
  // Even with a liveness token, the pointer is resolved *now* and
  // dereferenced *later* — by delivery time the slot may describe a
  // different host (or a migrated-away VM).
  const std::string snippet =
      "void Fleet::ScheduleCommit(int host_id, TimeNs delay) {\n"
      "  ClusterHost* h = &hosts_[static_cast<size_t>(host_id)];\n"
      "  sim_->After(delay, [this, h, alive = std::weak_ptr<const bool>(alive_)] {\n"
      "    if (alive.expired()) {\n"
      "      return;\n"
      "    }\n"
      "    h->committed_vcpus -= 1;\n"
      "  });\n"
      "}\n";
  auto f = LintFile("src/cluster/fleet.cc", snippet);
  ASSERT_TRUE(HasRule(f, "shard-isolation"));
  // The lifetime rule is satisfied (token + check): only the shard rule fires.
  EXPECT_FALSE(HasRule(f, "event-lifetime"));
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
  EXPECT_EQ(f[0].sink, "sim_->After");
}

TEST(LintShardIsolation, FlagsTenantVmReferenceCapture) {
  const std::string snippet =
      "void Fleet::ScheduleBoot(int id, TimeNs delay) {\n"
      "  TenantVm& vm = tenants_[static_cast<size_t>(id)];\n"
      "  sim_->After(delay, [this, &vm, alive = std::weak_ptr<const bool>(alive_)] {\n"
      "    if (alive.expired()) {\n"
      "      return;\n"
      "    }\n"
      "    vm.state = VmState::kRunning;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintFile("src/cluster/fleet.cc", snippet), "shard-isolation"));
}

TEST(LintShardIsolation, PassesIdCaptureReresolvedAtDelivery) {
  // The control-plane idiom: carry the id, re-resolve the slot on delivery.
  const std::string snippet =
      "void Fleet::ScheduleCommit(int host_id, TimeNs delay) {\n"
      "  sim_->After(delay, [this, host_id, alive = std::weak_ptr<const bool>(alive_)] {\n"
      "    if (alive.expired()) {\n"
      "      return;\n"
      "    }\n"
      "    OnCommit(host_id);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/fleet.cc", snippet).empty());
}

TEST(LintShardIsolation, OnlyBindsToCluster) {
  // The same shape outside src/cluster/ is the lifetime rule's business
  // (here satisfied by the token), not the shard rule's.
  const std::string snippet =
      "void Pool::ScheduleStop(TimeNs delay) {\n"
      "  Stressor* s = stressors_.back();\n"
      "  sim_->After(delay, [s, alive = std::weak_ptr<const bool>(alive_)] {\n"
      "    if (alive.expired()) {\n"
      "      return;\n"
      "    }\n"
      "    s->Stop();\n"
      "  });\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintFile("src/host/stressor.cc", snippet), "shard-isolation"));
}

// --- sub-check B: per-host scope vs the fleet slot array --------------------

TEST(LintShardIsolation, FlagsHostsArrayAccessFromPerHostScope) {
  const std::string snippet =
      "void Fleet::ReserveThreads(ClusterHost* host, int want) {\n"
      "  hosts_[0].reserved += want;\n"
      "}\n";
  auto f = LintFile("src/cluster/fleet.cc", snippet);
  ASSERT_TRUE(HasRule(f, "shard-isolation"));
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintShardIsolation, PassesPerHostScopeUsingItsOwnSlot) {
  const std::string snippet =
      "void Fleet::ReserveThreads(ClusterHost* host, int want) {\n"
      "  host->reserved += want;\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/fleet.cc", snippet).empty());
}

TEST(LintShardIsolation, PassesFleetScopeTouchingHostsArray) {
  // Fleet-level control-plane functions own the whole array; only per-host
  // scopes are fenced.
  const std::string snippet =
      "void Fleet::ControlTick() {\n"
      "  for (size_t i = 0; i < hosts_.size(); ++i) {\n"
      "    Rebalance(static_cast<int>(i));\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/fleet.cc", snippet).empty());
}

// --- sub-check C: placement sees HostLoadView snapshots only ----------------

TEST(LintShardIsolation, FlagsPlacementReferencingSlotTypes) {
  const std::string snippet =
      "int LeastLoaded::Pick(const Fleet& fleet, int vcpus) {\n"
      "  return 0;\n"
      "}\n";
  auto f = LintFile("src/cluster/placement.cc", snippet);
  ASSERT_TRUE(HasRule(f, "shard-isolation"));
  EXPECT_NE(f[0].message.find("Fleet"), std::string::npos);
}

TEST(LintShardIsolation, PassesPlacementOnViews) {
  const std::string snippet =
      "int LeastLoaded::Pick(const std::vector<HostLoadView>& views, int vcpus,\n"
      "                      int exclude_host) {\n"
      "  int best = -1;\n"
      "  for (const HostLoadView& v : views) {\n"
      "    if (v.host_id != exclude_host && v.accepts_vms) {\n"
      "      best = v.host_id;\n"
      "    }\n"
      "  }\n"
      "  return best;\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/placement.cc", snippet).empty());
}

TEST(LintShardIsolation, AllowCommentSuppresses) {
  const std::string snippet =
      "void Fleet::ReserveThreads(ClusterHost* host, int want) {\n"
      "  // vsched-lint: allow(shard-isolation) — same-host fast path, audited\n"
      "  hosts_[0].reserved += want;\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/fleet.cc", snippet).empty());
}

}  // namespace
}  // namespace lint
}  // namespace vsched
