// Fixtures for the event-lifetime rule (tools/lint/analyzer.h).
//
// The two "must flag" fixtures are byte-for-byte reductions of the PR-6
// use-after-frees: the Ivh handshake continuation and the GuestKernel
// resched-IPI closure, exactly as they read before the fix (taken from the
// seed tree). Re-introducing either pattern must fail vsched_lint_src; their
// fixed forms (weak_ptr liveness token + expired() check) must pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace vsched {
namespace lint {
namespace {

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

const Finding* FindRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      return &f;
    }
  }
  return nullptr;
}

// --- PR-6 bug #1: Ivh handshake continuation --------------------------------

TEST(LintEventLifetime, FlagsThePr6IvhRawThisCapture) {
  // Byte-for-byte: src/core/ivh.cc @ seed, Ivh::StartHandshake step 1. The
  // handshake posts into the IPI queue; a fleet teardown can destroy the Ivh
  // while the closure is still pending.
  const std::string snippet =
      "void Ivh::StartHandshake(GuestTask* task, int src, int dst, TimeNs now) {\n"
      "  uint64_t id = hs.id;\n"
      "  // Step 1: interrupt the target; pre-wake it if halted.\n"
      "  kernel_->RunOnVcpu(dst, [this, src, id] { TargetActivated(src, id); }, /*kick=*/true);\n"
      "}\n";
  auto f = LintFile("src/core/ivh.cc", snippet);
  const Finding* hit = FindRule(f, "event-lifetime");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->line, 4);
  EXPECT_EQ(hit->sink, "kernel_->RunOnVcpu");
  // The capture chain names `this` as the dangerous capture.
  ASSERT_FALSE(hit->captures.empty());
  EXPECT_EQ(hit->captures[0].name, "this");
  EXPECT_EQ(hit->captures[0].kind, "this");
}

TEST(LintEventLifetime, PassesThePr6IvhFixedForm) {
  // The PR-6 fix: a weak_ptr liveness token checked at invocation.
  const std::string snippet =
      "void Ivh::StartHandshake(GuestTask* task, int src, int dst, TimeNs now) {\n"
      "  uint64_t id = hs.id;\n"
      "  kernel_->RunOnVcpu(\n"
      "      dst,\n"
      "      [this, src, id, alive = std::weak_ptr<const bool>(alive_)] {\n"
      "        if (!alive.expired()) {\n"
      "          TargetActivated(src, id);\n"
      "        }\n"
      "      },\n"
      "      /*kick=*/true);\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/core/ivh.cc", snippet).empty());
}

// --- PR-6 bug #2: GuestKernel resched-IPI closure ---------------------------

TEST(LintEventLifetime, FlagsThePr6GuestKernelReschedIpiCapture) {
  // Byte-for-byte: src/guest/guest_kernel.cc @ seed, SendReschedIpi. Both
  // `this` and the raw GuestVcpu* ride the event queue unprotected.
  const std::string snippet =
      "void GuestKernel::SendReschedIpi(int from_cpu, int to_cpu) {\n"
      "  CountIpi(from_cpu, to_cpu);\n"
      "  GuestVcpu* v = vcpus_[to_cpu].get();\n"
      "  v->resched_pending_ = true;\n"
      "  sim_->After(params_.ipi_delay, [this, v] {\n"
      "    if (v->active() && v->resched_pending_) {\n"
      "      v->Reschedule(sim_->now());\n"
      "    }\n"
      "  });\n"
      "}\n";
  auto f = LintFile("src/guest/guest_kernel.cc", snippet);
  const Finding* hit = FindRule(f, "event-lifetime");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->line, 5);
  EXPECT_EQ(hit->sink, "sim_->After");
  // The local declaration resolved: `v` is a raw GuestVcpu pointer.
  bool saw_raw_v = false;
  for (const Capture& c : hit->captures) {
    if (c.name == "v") {
      EXPECT_EQ(c.kind, "raw-pointer");
      EXPECT_NE(c.type.find("GuestVcpu"), std::string::npos);
      saw_raw_v = true;
    }
  }
  EXPECT_TRUE(saw_raw_v);
}

TEST(LintEventLifetime, PassesThePr6GuestKernelFixedForm) {
  const std::string snippet =
      "void GuestKernel::SendReschedIpi(int from_cpu, int to_cpu) {\n"
      "  CountIpi(from_cpu, to_cpu);\n"
      "  GuestVcpu* v = vcpus_[to_cpu].get();\n"
      "  v->resched_pending_ = true;\n"
      "  sim_->After(params_.ipi_delay,\n"
      "              [this, v, alive = std::weak_ptr<const bool>(alive_)] {\n"
      "                if (alive.expired()) {\n"
      "                  return;\n"
      "                }\n"
      "                if (v->active() && v->resched_pending_) {\n"
      "                  v->Reschedule(sim_->now());\n"
      "                }\n"
      "              });\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/guest/guest_kernel.cc", snippet).empty());
}

// --- capture kinds ----------------------------------------------------------

TEST(LintEventLifetime, FlagsDefaultCaptures) {
  EXPECT_TRUE(HasRule(
      LintFile("src/probe/a.cc", "void P::Arm() {\n  sim_->After(d, [&] { Fire(); });\n}\n"),
      "event-lifetime"));
  EXPECT_TRUE(HasRule(
      LintFile("src/probe/a.cc", "void P::Arm() {\n  sim_->After(d, [=] { Fire(); });\n}\n"),
      "event-lifetime"));
}

TEST(LintEventLifetime, FlagsByReferenceCapture) {
  const std::string snippet =
      "void P::Arm() {\n"
      "  int window = 0;\n"
      "  sim_->After(d, [&window] { window++; });\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintFile("src/probe/a.cc", snippet), "event-lifetime"));
}

TEST(LintEventLifetime, PassesPlainValueCaptures) {
  const std::string snippet =
      "void P::Arm(int task_id, TimeNs when) {\n"
      "  sim_->After(d, [task_id, when] { Publish(task_id, when); });\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/probe/a.cc", snippet).empty());
}

TEST(LintEventLifetime, PassesSharedPtrOwnerCapture) {
  const std::string snippet =
      "void P::Arm() {\n"
      "  std::shared_ptr<Window> win = MakeWindow();\n"
      "  sim_->After(d, [win] { win->Close(); });\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/probe/a.cc", snippet).empty());
}

TEST(LintEventLifetime, UncheckedTokenDoesNotCount) {
  // Carrying the token is not enough — the body must actually check it.
  const std::string snippet =
      "void P::Arm() {\n"
      "  sim_->After(d, [this, alive = std::weak_ptr<const bool>(alive_)] {\n"
      "    Fire();\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintFile("src/probe/a.cc", snippet), "event-lifetime"));
}

TEST(LintEventLifetime, LockCheckCountsAsGuard) {
  const std::string snippet =
      "void P::Arm() {\n"
      "  sim_->After(d, [this, alive = std::weak_ptr<const bool>(alive_)] {\n"
      "    if (alive.lock()) {\n"
      "      Fire();\n"
      "    }\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/probe/a.cc", snippet).empty());
}

// --- sink coverage ----------------------------------------------------------

TEST(LintEventLifetime, CoversTimerTickHookAndPeriodicSinks) {
  EXPECT_TRUE(HasRule(
      LintFile("src/host/a.cc", "void S::Init() {\n  t_ = sim_->CreateTimer([this] { Fire(); });\n}\n"),
      "event-lifetime"));
  EXPECT_TRUE(HasRule(
      LintFile("src/core/a.cc",
               "void S::Init() {\n  kernel_->AddTickHook([this](GuestVcpu* v, TimeNs now) { OnTick(v, now); });\n}\n"),
      "event-lifetime"));
  EXPECT_TRUE(HasRule(
      LintFile("src/cluster/a.cc", "void S::Init() {\n  h_ = sim_->Every(period, [this] { Tick(); });\n}\n"),
      "event-lifetime"));
  EXPECT_TRUE(HasRule(
      LintFile("src/sim/a.cc", "void S::Init() {\n  q_.ScheduleAt(when, [this] { Fire(); });\n}\n"),
      "event-lifetime"));
  EXPECT_TRUE(HasRule(
      LintFile("src/fault/a.cc", "void S::Init() {\n  ArmArrival(spec, [this] { OnArrival(); });\n}\n"),
      "event-lifetime"));
}

TEST(LintEventLifetime, OrdinaryCallbacksAreNotSinks) {
  // Synchronous visitors / comparators run inside the caller's frame.
  const std::string snippet =
      "void S::Sort() {\n"
      "  std::sort(v_.begin(), v_.end(), [this](int a, int b) { return Rank(a) < Rank(b); });\n"
      "  ForEach([this](Task* t) { Touch(t); });\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/guest/a.cc", snippet).empty());
}

TEST(LintEventLifetime, ForwardedArgumentsAreNotLambdaLiterals) {
  // The posting wrapper itself forwards an opaque callable — that is the
  // call *sites'* responsibility, not the wrapper's.
  const std::string snippet =
      "template <typename F>\n"
      "void FaultInjector::ArmArrival(const ArrivalSpec& spec, F fn) {\n"
      "  Track(sim_->At(at, std::forward<F>(fn)));\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/fault/fault_injector.h", snippet).empty());
}

// --- PostBatch: a factory sink ----------------------------------------------

TEST(LintEventLifetime, FlagsPostBatchFactoryReturningUntokenedClosure) {
  // PostBatch invokes the factory synchronously; the closure it *returns* is
  // what lives on the queue, so the lifetime rules bind to the inner capture
  // list. Here the inner lambda holds `this` with no liveness token.
  const std::string snippet =
      "void Fleet::Start() {\n"
      "  sim_->queue().PostBatch(arrival_times, [this](size_t i) {\n"
      "    return [this, i] { OnVmArrival(static_cast<int>(i)); };\n"
      "  });\n"
      "}\n";
  auto f = LintFile("src/cluster/fleet.cc", snippet);
  ASSERT_TRUE(HasRule(f, "event-lifetime"));
  EXPECT_EQ(FindRule(f, "event-lifetime")->line, 3);
}

TEST(LintEventLifetime, PassesPostBatchFactoryWithCheckedTokenInInnerLambda) {
  // The shipping Fleet::Start shape: the outer factory captures bare `this`,
  // which is fine — it never outlives the PostBatch call. The returned
  // closure carries the checked token.
  const std::string snippet =
      "void Fleet::Start() {\n"
      "  sim_->queue().PostBatch(arrival_times, [this](size_t i) {\n"
      "    return [this, i = static_cast<int>(i), alive = std::weak_ptr<const bool>(alive_)] {\n"
      "      if (alive.expired()) {\n"
      "        return;\n"
      "      }\n"
      "      OnVmArrival(i);\n"
      "    };\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/fleet.cc", snippet).empty());
}

// --- scoping and suppression ------------------------------------------------

TEST(LintEventLifetime, OnlyBindsToSrc) {
  const std::string snippet =
      "void F() {\n  sim_->After(d, [this] { Fire(); });\n}\n";
  EXPECT_FALSE(HasRule(LintFile("tests/sim/a_test.cc", snippet), "event-lifetime"));
  EXPECT_TRUE(HasRule(LintFile("src/sim/a.cc", snippet), "event-lifetime"));
}

TEST(LintEventLifetime, AllowCommentSuppresses) {
  const std::string bare =
      "void Simulation::Every(TimeNs period) {\n"
      "  PeriodicHandle* raw = handle.get();\n"
      "  raw->timer_ = CreateTimer([raw] { raw->Fire(); });\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintFile("src/sim/simulation.cc", bare), "event-lifetime"));

  const std::string allowed =
      "void Simulation::Every(TimeNs period) {\n"
      "  PeriodicHandle* raw = handle.get();\n"
      "  // vsched-lint: allow(event-lifetime) — PeriodicHandle is Simulation-owned\n"
      "  raw->timer_ = CreateTimer([raw] { raw->Fire(); });\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/sim/simulation.cc", allowed).empty());
}

}  // namespace
}  // namespace lint
}  // namespace vsched
