// Validates the machine-readable report (WriteJsonReport): the output must
// be strictly parseable JSON for any findings content — including messages
// with quotes, backslashes and newlines — because CI archives it as an
// artifact and downstream tooling consumes it blind. The checker below is a
// full little JSON parser (strings with escapes, numbers, nesting) rather
// than a brace-counter, so a malformed escape actually fails the test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace vsched {
namespace lint {
namespace {

// --- a strict validating JSON parser (no values built) ----------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    Ws();
    if (!Value()) {
      return false;
    }
    Ws();
    return i_ == s_.size();
  }

 private:
  char Cur() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void Ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }
  bool Lit(const char* lit) {
    size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(i_, n, lit) != 0) {
      return false;
    }
    i_ += n;
    return true;
  }

  bool String() {
    if (Cur() != '"') {
      return false;
    }
    ++i_;
    while (i_ < s_.size()) {
      char c = s_[i_];
      if (c == '"') {
        ++i_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control char: must be escaped
      }
      if (c == '\\') {
        ++i_;
        char e = Cur();
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(
                    i_ + k < s_.size() ? s_[i_ + k] : '\0'))) {
              return false;
            }
          }
          i_ += 5;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
            e != 'r' && e != 't') {
          return false;
        }
        ++i_;
        continue;
      }
      ++i_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = i_;
    if (Cur() == '-') {
      ++i_;
    }
    while (std::isdigit(static_cast<unsigned char>(Cur()))) {
      ++i_;
    }
    if (Cur() == '.') {
      ++i_;
      while (std::isdigit(static_cast<unsigned char>(Cur()))) {
        ++i_;
      }
    }
    return i_ > start;
  }

  bool Value() {
    switch (Cur()) {
      case '{': {
        ++i_;
        Ws();
        if (Cur() == '}') {
          ++i_;
          return true;
        }
        while (true) {
          Ws();
          if (!String()) {
            return false;
          }
          Ws();
          if (Cur() != ':') {
            return false;
          }
          ++i_;
          Ws();
          if (!Value()) {
            return false;
          }
          Ws();
          if (Cur() == ',') {
            ++i_;
            continue;
          }
          if (Cur() == '}') {
            ++i_;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++i_;
        Ws();
        if (Cur() == ']') {
          ++i_;
          return true;
        }
        while (true) {
          Ws();
          if (!Value()) {
            return false;
          }
          Ws();
          if (Cur() == ',') {
            ++i_;
            continue;
          }
          if (Cur() == ']') {
            ++i_;
            return true;
          }
          return false;
        }
      }
      case '"':
        return String();
      case 't':
        return Lit("true");
      case 'f':
        return Lit("false");
      case 'n':
        return Lit("null");
      default:
        return Number();
    }
  }

  const std::string& s_;
  size_t i_ = 0;
};

std::string Report(const std::vector<Finding>& findings) {
  std::ostringstream os;
  WriteJsonReport(findings, os);
  return os.str();
}

// --- tests ------------------------------------------------------------------

TEST(LintJson, EmptyReportIsValidWithZeroCount) {
  std::string json = Report({});
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
}

TEST(LintJson, RealFindingsFromTheAnalyzerRoundTrip) {
  // Run the PR-6 Ivh fixture through the real pipeline and serialize.
  const std::string snippet =
      "void Ivh::StartHandshake(GuestTask* task, int src, int dst, TimeNs now) {\n"
      "  uint64_t id = hs.id;\n"
      "  kernel_->RunOnVcpu(dst, [this, src, id] { TargetActivated(src, id); }, /*kick=*/true);\n"
      "}\n";
  auto findings = LintFile("src/core/ivh.cc", snippet);
  ASSERT_FALSE(findings.empty());
  std::string json = Report(findings);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Schema fields from docs/ANALYSIS.md.
  EXPECT_NE(json.find("\"rule\": \"event-lifetime\""), std::string::npos);
  EXPECT_NE(json.find("\"sink\": \"kernel_->RunOnVcpu\""), std::string::npos);
  EXPECT_NE(json.find("\"captures\": ["), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"this\""), std::string::npos);
}

TEST(LintJson, HostileMessageContentIsEscaped) {
  Finding f;
  f.file = "src/a \"b\"\\c.cc";
  f.line = 7;
  f.rule = "wall-clock";
  f.message = "line one\nline\ttwo \"quoted\" back\\slash\x01";
  f.sink = "sim_->After";
  f.captures.push_back({"x\"y", "raw-pointer", "Foo<int>*"});
  std::string json = Report({f});
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_EQ(json.find('\x01'), std::string::npos);  // control char escaped away
}

TEST(LintJson, CountMatchesFindingsArray) {
  Finding a{"src/a.cc", 1, "wall-clock", "m", {}, {}};
  Finding b{"src/b.cc", 2, "libc-rand", "m", {}, {}};
  std::string json = Report({a, b});
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

TEST(LintJson, GithubAnnotationsAreOnePerLineAndSanitized) {
  Finding f;
  f.file = "src/a.cc";
  f.line = 3;
  f.rule = "event-lifetime";
  f.message = "first\nsecond % third";
  std::ostringstream os;
  WriteGithubAnnotations({f}, os);
  std::string out = os.str();
  EXPECT_EQ(out.find("::error file=src/a.cc,line=3::"), 0u);
  // Exactly one newline: the terminator. Embedded newline/percent escaped.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
  EXPECT_NE(out.find("first%0Asecond %25 third"), std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace vsched
