// Regression tests for the lint lexer (tools/lint/lexer.h) — specifically
// the three blind spots of the v1 per-line scrubber: raw string literals,
// digit separators, and line-continuation backslashes in comments. Each case
// is tested both at the lexer API and end-to-end through LintFile, because
// the failure mode of a mis-scoped literal is a phantom (or swallowed)
// finding.
#include "tools/lint/lexer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace vsched {
namespace lint {
namespace {

std::vector<std::string> IdentTexts(const LexResult& lex) {
  std::vector<std::string> out;
  for (const Token& t : lex.tokens) {
    if (t.kind == Tok::kIdent) {
      out.push_back(t.text);
    }
  }
  return out;
}

// --- raw string literals ----------------------------------------------------

TEST(LexerRawString, ContentsNeverTokenize) {
  LexResult lex = Lex("auto re = R\"(rand() \"quoted\" // not a comment)\";\n"
                      "int after = 1;\n");
  auto ids = IdentTexts(lex);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "rand"), 0);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "after"), 1);
  // The literal collapses to an empty string token on its line.
  EXPECT_EQ(lex.scrubbed[0], "auto re = R\"\";");
}

TEST(LexerRawString, CustomDelimiterAndMultiLine) {
  LexResult lex = Lex("auto re = R\"ab(first )\" not the end\n"
                      "second line rand()\n"
                      ")ab\";\n"
                      "steady_clock::now();\n");
  auto ids = IdentTexts(lex);
  // Nothing inside the literal tokenizes, including the lookalike close `)\"`.
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "rand"), 0);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "steady_clock"), 1);
  // Interior lines scrub to dead text; real code afterwards stays live.
  EXPECT_EQ(lex.scrubbed[1], "");
  ASSERT_EQ(lex.tokens.back().text, ";");
  EXPECT_EQ(lex.tokens.back().line, 4);
}

TEST(LexerRawString, EndToEndNoPhantomFindingFromLiteralText) {
  // v1 treated the raw-string body as code once the first plain `"` closed
  // "the string" early. The rand() here is data, not a call.
  auto f = LintFile("src/sim/a.cc",
                    "const char* kUsage = R\"(seed with rand() is wrong)\";\n");
  EXPECT_TRUE(f.empty());
}

TEST(LexerRawString, EncodingPrefixesAreRecognized) {
  LexResult lex = Lex("auto a = u8R\"(x rand() y)\";\nauto b = LR\"(z)\";\n");
  auto ids = IdentTexts(lex);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "rand"), 0);
}

// --- digit separators -------------------------------------------------------

TEST(LexerDigitSeparator, StaysInsideOneNumberToken) {
  LexResult lex = Lex("int64_t budget = 1'000'000;\n");
  bool found = false;
  for (const Token& t : lex.tokens) {
    if (t.kind == Tok::kNumber) {
      EXPECT_EQ(t.text, "1'000'000");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(lex.scrubbed[0], "int64_t budget = 1'000'000;");
}

TEST(LexerDigitSeparator, EndToEndCodeAfterSeparatorStaysLive) {
  // v1 opened a bogus char literal at the first `'` and blanked real code
  // until the next `'` — swallowing the rand() call entirely.
  auto f = LintFile("src/sim/a.cc",
                    "void F() {\n"
                    "  TimeNs budget = 1'000'000; int r = rand();\n"
                    "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "libc-rand");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LexerDigitSeparator, TwoNumbersDoNotOpenALiteralBetweenThem) {
  auto f = LintFile("src/sim/a.cc",
                    "void F() {\n"
                    "  int a = 1'000; /* x */ int b = 2'000; auto t = steady_clock::now();\n"
                    "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "wall-clock");
}

// --- line continuations -----------------------------------------------------

TEST(LexerLineContinuation, BackslashExtendsLineCommentOntoNextLine) {
  // The spliced second line is comment text — the rand() there is dead.
  LexResult lex = Lex("int x = 0;  // note the trailing backslash \\\n"
                      "int r = rand();\n"
                      "int live = 1;\n");
  auto ids = IdentTexts(lex);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "rand"), 0);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "live"), 1);
  EXPECT_EQ(lex.scrubbed[1], "");
}

TEST(LexerLineContinuation, EndToEndDeadCommentTextDoesNotFire) {
  auto f = LintFile("src/sim/a.cc",
                    "void F() {\n"
                    "  int x = 0;  // disabled: \\\n"
                    "  auto t = std::chrono::system_clock::now();\n"
                    "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LexerLineContinuation, SplicedCodeLineStaysLive) {
  // A continuation in *code* (macro-style) must not kill the next line.
  auto f = LintFile("src/sim/a.cc",
                    "#define POLL() \\\n"
                    "  do { int r = rand(); } while (0)\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "libc-rand");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LexerLineContinuation, AllowCommentSpansContinuedLines) {
  // The allow grant from a spliced comment covers every physical line the
  // comment touches plus the next line.
  auto f = LintFile("src/sim/a.cc",
                    "void F() {\n"
                    "  // vsched-lint: allow(libc-rand) \\\n"
                    "     (rationale continues here)\n"
                    "  int r = rand();\n"
                    "}\n");
  EXPECT_TRUE(f.empty());
}

// --- allow parsing through the lexer ---------------------------------------

TEST(LexerAllows, BlockCommentGrantAttachesToItsLines) {
  LexResult lex = Lex("int a;\n"
                      "/* vsched-lint: allow(wall-clock) */ int b;\n");
  ASSERT_EQ(lex.allows.size(), 3u);  // trailing newline opens line 3
  EXPECT_TRUE(lex.allows[0].empty());
  ASSERT_EQ(lex.allows[1].size(), 1u);
  EXPECT_EQ(lex.allows[1][0], "wall-clock");
}

TEST(LexerAllows, TokenLinesAreOneBasedPhysicalLines) {
  LexResult lex = Lex("a\nb\n\nc\n");
  ASSERT_EQ(lex.tokens.size(), 3u);
  EXPECT_EQ(lex.tokens[0].line, 1);
  EXPECT_EQ(lex.tokens[1].line, 2);
  EXPECT_EQ(lex.tokens[2].line, 4);
}

}  // namespace
}  // namespace lint
}  // namespace vsched
