#include "src/core/bvs.h"

#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

// 4 vCPUs: 0/1 low-latency (short period shaping), 2/3 high-latency (long
// period shaping). All ~50% capacity so the capacity filter stays neutral.
VmSpec AsymLatencySpec() {
  VmSpec spec = MakeSimpleVmSpec("vm", 4);
  for (int i = 0; i < 4; ++i) {
    TimeNs period = i < 2 ? MsToNs(2) : MsToNs(16);
    spec.vcpus[i].bw_quota = period / 2;
    spec.vcpus[i].bw_period = period;
  }
  return spec;
}

class BvsFixture : public ::testing::Test {
 protected:
  BvsFixture() : sim_(77), machine_(&sim_, FlatSpec(8)) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(BvsFixture, PicksLowLatencyVcpuForSmallTask) {
  Vm vm(&sim_, &machine_, AsymLatencySpec());
  Vcap vcap(&vm.kernel());
  Vact vact(&vm.kernel());
  Bvs bvs(&vm.kernel(), &vcap, &vact);
  // Best-effort hogs keep all vCPUs demanded so latency is measurable.
  std::vector<std::unique_ptr<HogBehavior>> hogs;
  for (int i = 0; i < 4; ++i) {
    hogs.push_back(std::make_unique<HogBehavior>());
    Task* t = vm.kernel().CreateTask("be", TaskPolicy::kIdle, hogs.back().get(),
                                     CpuMask::Single(i));
    vm.kernel().StartTask(t);
  }
  vcap.Start();
  vact.Start();
  sim_.RunFor(SecToNs(5));

  // A small task (util starts at the 512 seed and decays with sleeping; use
  // a fresh task woken rarely so PELT is small).
  EventWorkerBehavior worker(WorkAtCapacity(kCapacityScale, UsToNs(50)));
  Task* small = vm.kernel().CreateTask("small", TaskPolicy::kNormal, &worker);
  vm.kernel().StartTask(small);
  sim_.RunFor(SecToNs(1));  // Let its PELT decay to "small".

  int choice = bvs.SelectVcpu(small, /*prev_cpu=*/3, /*waker_cpu=*/-1);
  ASSERT_GE(choice, 0);
  EXPECT_LT(choice, 2) << "bvs picked a high-latency vCPU";
}

TEST_F(BvsFixture, IgnoresCpuIntensiveTasks) {
  Vm vm(&sim_, &machine_, AsymLatencySpec());
  Vcap vcap(&vm.kernel());
  Vact vact(&vm.kernel());
  Bvs bvs(&vm.kernel(), &vcap, &vact);
  vcap.Start();
  vact.Start();
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(SecToNs(3));
  EXPECT_GT(t->util(), 400.0);
  EXPECT_EQ(bvs.SelectVcpu(t, 0, -1), -1);
}

TEST_F(BvsFixture, IgnoresSchedIdleTasks) {
  Vm vm(&sim_, &machine_, AsymLatencySpec());
  Vcap vcap(&vm.kernel());
  Vact vact(&vm.kernel());
  Bvs bvs(&vm.kernel(), &vcap, &vact);
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("be", TaskPolicy::kIdle, &hog);
  EXPECT_EQ(bvs.SelectVcpu(t, 0, -1), -1);
}

TEST_F(BvsFixture, FallsBackWithoutProbeResults) {
  Vm vm(&sim_, &machine_, AsymLatencySpec());
  Vcap vcap(&vm.kernel());
  Vact vact(&vm.kernel());
  Bvs bvs(&vm.kernel(), &vcap, &vact);
  EventWorkerBehavior worker(WorkAtCapacity(kCapacityScale, UsToNs(50)));
  Task* small = vm.kernel().CreateTask("small", TaskPolicy::kNormal, &worker);
  vm.kernel().StartTask(small);
  sim_.RunFor(MsToNs(500));  // Let its seeded PELT decay below the threshold.
  // Probers never started → no data → CFS fallback.
  EXPECT_EQ(bvs.SelectVcpu(small, 0, -1), -1);
  EXPECT_EQ(bvs.fallbacks(), 1u);
}

TEST_F(BvsFixture, AvoidsVcpusWithNormalWork) {
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  Vm vm(&sim_, &machine_, spec);
  Vcap vcap(&vm.kernel());
  Vact vact(&vm.kernel());
  Bvs bvs(&vm.kernel(), &vcap, &vact);
  vcap.Start();
  vact.Start();
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(SecToNs(3));
  EventWorkerBehavior worker(WorkAtCapacity(kCapacityScale, UsToNs(50)));
  Task* small = vm.kernel().CreateTask("small", TaskPolicy::kNormal, &worker);
  vm.kernel().StartTask(small);
  sim_.RunFor(MsToNs(500));
  int choice = bvs.SelectVcpu(small, 0, -1);
  // Only vCPU 1 is free of normal work.
  EXPECT_TRUE(choice == 1 || choice == -1);
  EXPECT_NE(choice, 0);
}

}  // namespace
}  // namespace vsched
