#include <gtest/gtest.h>

#include "src/core/rwc.h"
#include "src/core/vsched.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

class RwcFixture : public ::testing::Test {
 protected:
  RwcFixture() : sim_(13), machine_(&sim_, FlatSpec(8)) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(RwcFixture, BansStragglerVcpu) {
  VmSpec spec = MakeSimpleVmSpec("vm", 4);
  spec.vcpus[3].bw_quota = MsToNs(1);  // 5% capacity → straggler
  spec.vcpus[3].bw_period = MsToNs(20);
  Vm vm(&sim_, &machine_, spec);
  Vcap vcap(&vm.kernel());
  Rwc rwc(&vm.kernel(), &vcap);
  rwc.Install();
  vcap.Start();
  sim_.RunFor(SecToNs(8));
  EXPECT_TRUE(rwc.straggler_bans().Test(3));
  EXPECT_EQ(rwc.straggler_bans().Count(), 1);
  EXPECT_TRUE(vm.kernel().straggler_banned().Test(3));
}

TEST_F(RwcFixture, NoBansOnSymmetricVm) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  Vcap vcap(&vm.kernel());
  Rwc rwc(&vm.kernel(), &vcap);
  rwc.Install();
  vcap.Start();
  sim_.RunFor(SecToNs(5));
  EXPECT_TRUE(rwc.straggler_bans().Empty());
  EXPECT_TRUE(rwc.stack_bans().Empty());
}

TEST_F(RwcFixture, StackBansKeepOnePerGroup) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  Vcap vcap(&vm.kernel());
  Rwc rwc(&vm.kernel(), &vcap);
  rwc.Install();
  GuestTopology topo = GuestTopology::FlatUma(4);
  topo.stack_mask[1] = CpuMask(0b0110);
  topo.stack_mask[2] = CpuMask(0b0110);
  rwc.OnTopology(topo);
  EXPECT_FALSE(rwc.stack_bans().Test(1));  // Lowest index kept.
  EXPECT_TRUE(rwc.stack_bans().Test(2));
  EXPECT_TRUE(vm.kernel().stack_banned().Test(2));
}

TEST_F(RwcFixture, StragglerRatioSweepable) {
  VmSpec spec = MakeSimpleVmSpec("vm", 4);
  spec.vcpus[3].bw_quota = MsToNs(6);  // 30% capacity
  spec.vcpus[3].bw_period = MsToNs(20);
  Vm vm(&sim_, &machine_, spec);
  Vcap vcap(&vm.kernel());
  RwcConfig config;
  config.straggler_ratio = 0.5;  // Aggressive threshold bans the 30% vCPU.
  Rwc rwc(&vm.kernel(), &vcap, config);
  rwc.Install();
  vcap.Start();
  sim_.RunFor(SecToNs(8));
  EXPECT_TRUE(rwc.straggler_bans().Test(3));
}

class VSchedFixture : public ::testing::Test {
 protected:
  VSchedFixture() : sim_(17), machine_(&sim_, FlatSpec(8)) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(VSchedFixture, CfsPresetCreatesNothing) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  VSched vs(&vm.kernel(), VSchedOptions::Cfs());
  vs.Start();
  EXPECT_EQ(vs.vcap(), nullptr);
  EXPECT_EQ(vs.vtop(), nullptr);
  EXPECT_EQ(vs.vact(), nullptr);
  EXPECT_EQ(vs.bvs(), nullptr);
  EXPECT_EQ(vs.ivh(), nullptr);
  EXPECT_EQ(vs.rwc(), nullptr);
}

TEST_F(VSchedFixture, EnhancedCfsHasProbersAndRwcOnly) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  VSched vs(&vm.kernel(), VSchedOptions::EnhancedCfs());
  EXPECT_NE(vs.vcap(), nullptr);
  EXPECT_NE(vs.vtop(), nullptr);
  EXPECT_NE(vs.vact(), nullptr);
  EXPECT_NE(vs.rwc(), nullptr);
  EXPECT_EQ(vs.bvs(), nullptr);
  EXPECT_EQ(vs.ivh(), nullptr);
}

TEST_F(VSchedFixture, FullPresetPublishesCapacitiesAndDomains) {
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].bw_quota = MsToNs(5);
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim_, &machine_, spec);
  VSched vs(&vm.kernel(), VSchedOptions::Full());
  vs.Start();
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(SecToNs(8));
  // The bridge pushed vcap's estimate into the kernel.
  EXPECT_NEAR(vm.kernel().CfsCapacityOf(0), 512.0, 120.0);
  EXPECT_NEAR(vm.kernel().CfsCapacityOf(1), 1024.0, 80.0);
  // vtop published a topology (both vCPUs in one socket here).
  EXPECT_TRUE(vs.vtop()->has_topology());
  EXPECT_EQ(vm.kernel().topology().llc_mask[0], CpuMask(0b11));
}

TEST_F(VSchedFixture, FullRunWithWorkloadStaysConsistent) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  Stressor comp(&sim_, "comp");
  comp.Start(&machine_, 2);
  VSched vs(&vm.kernel(), VSchedOptions::Full());
  vs.Start();
  std::vector<std::unique_ptr<PeriodicBehavior>> behaviors;
  std::vector<Task*> tasks;
  for (int i = 0; i < 6; ++i) {
    behaviors.push_back(
        std::make_unique<PeriodicBehavior>(WorkAtCapacity(kCapacityScale, MsToNs(1)), MsToNs(2)));
    Task* t = vm.kernel().CreateTask("p", TaskPolicy::kNormal, behaviors.back().get());
    vm.kernel().StartTask(t);
    tasks.push_back(t);
  }
  sim_.RunFor(SecToNs(10));
  // Work conservation still holds with all of vSched active (probers do
  // their own work, so compare task totals against task-attributed time).
  for (Task* t : tasks) {
    EXPECT_GT(t->total_exec_ns(), 0);
  }
  comp.Stop();
}

}  // namespace
}  // namespace vsched
