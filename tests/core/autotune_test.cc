#include "src/core/autotune.h"

#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/metrics/activity_trace.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TEST(AutoTuneTest, DeriveClampsSamplingPeriod) {
  VSchedOptions o = AutoTuner::Derive(VSchedOptions::Full(), /*max_inactive=*/1e6, /*duty=*/0.5,
                                      MsToNs(1));
  EXPECT_EQ(o.vcap.sampling_period, MsToNs(50));  // Lower clamp.
  o = AutoTuner::Derive(VSchedOptions::Full(), 400e6, 0.5, MsToNs(1));
  EXPECT_EQ(o.vcap.sampling_period, MsToNs(500));  // Upper clamp.
  o = AutoTuner::Derive(VSchedOptions::Full(), 50e6, 0.5, MsToNs(1));
  EXPECT_EQ(o.vcap.sampling_period, MsToNs(200));  // 4x the inactive period.
}

TEST(AutoTuneTest, DeriveScalesVtopTimeoutForLowDuty) {
  VSchedOptions normal = AutoTuner::Derive(VSchedOptions::Full(), 5e6, 0.5, MsToNs(1));
  VSchedOptions starved = AutoTuner::Derive(VSchedOptions::Full(), 5e6, 0.05, MsToNs(1));
  EXPECT_GT(starved.vtop.pair.timeout_attempts, normal.vtop.pair.timeout_attempts * 4);
}

TEST(AutoTuneTest, DeriveTiesIvhThresholdToTick) {
  VSchedOptions o = AutoTuner::Derive(VSchedOptions::Full(), 5e6, 0.5, MsToNs(4));
  EXPECT_EQ(o.ivh.migration_threshold, MsToNs(8));
}

TEST(AutoTuneTest, CalibrationMeasuresTheHost) {
  Simulation sim(61);
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 4;
  topo.threads_per_core = 1;
  HostMachine machine(&sim, topo);
  VmSpec spec = MakeSimpleVmSpec("vm", 4);
  for (auto& p : spec.vcpus) {
    p.bw_quota = MsToNs(30);  // 30 ms on / 30 ms off → long inactive periods
    p.bw_period = MsToNs(60);
  }
  Vm vm(&sim, &machine, spec);
  // Demand so activity is observable.
  std::vector<std::unique_ptr<HogBehavior>> hogs;
  for (int i = 0; i < 4; ++i) {
    hogs.push_back(std::make_unique<HogBehavior>());
    Task* t = vm.kernel().CreateTask("h", TaskPolicy::kNormal, hogs.back().get(),
                                     CpuMask::Single(i));
    vm.kernel().StartTask(t);
  }
  AutoTuner tuner(&vm.kernel());
  bool done = false;
  VSchedOptions tuned;
  tuner.Calibrate(SecToNs(3), VSchedOptions::Full(), [&](VSchedOptions o) {
    tuned = o;
    done = true;
  });
  sim.RunFor(SecToNs(4));
  ASSERT_TRUE(done);
  // 30 ms inactive periods → the sampling window must stretch beyond the
  // Table-1 default of 100 ms.
  EXPECT_GT(tuned.vcap.sampling_period, MsToNs(50));
  EXPECT_LE(tuned.vcap.sampling_period, MsToNs(500));
}

TEST(ActivityTraceTest, CapturesStallsAndRuns) {
  Simulation sim(63);
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 2;
  topo.threads_per_core = 1;
  HostMachine machine(&sim, topo);
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].bw_quota = MsToNs(5);
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim, &machine, spec);
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  ActivityTrace trace(&vm.kernel(), UsToNs(100));
  trace.Start();
  sim.RunFor(MsToNs(100));
  trace.Stop();
  // The hog runs ~50% and stalls ~50% on vCPU 0; vCPU 1 never runs a task.
  EXPECT_NEAR(trace.RunningFraction(0), 0.5, 0.1);
  EXPECT_NEAR(trace.StalledFraction(), 0.5, 0.1);
  EXPECT_DOUBLE_EQ(trace.RunningFraction(1), 0.0);
  std::string render = trace.Render(50);
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_NE(render.find('x'), std::string::npos);
}

TEST(ActivityTraceTest, ClearResetsTimeline) {
  Simulation sim(64);
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 1;
  topo.threads_per_core = 1;
  HostMachine machine(&sim, topo);
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 1));
  ActivityTrace trace(&vm.kernel(), UsToNs(500));
  trace.Start();
  sim.RunFor(MsToNs(10));
  EXPECT_GT(trace.samples(), 0u);
  trace.Clear();
  EXPECT_EQ(trace.samples(), 0u);
}

}  // namespace
}  // namespace vsched
