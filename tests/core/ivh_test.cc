#include "src/core/ivh.h"

#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

class IvhFixture : public ::testing::Test {
 protected:
  IvhFixture() : sim_(99), machine_(&sim_, FlatSpec(8)) {}

  // 2 vCPUs: vCPU0 shaped 5 ms on / 5 ms off; vCPU1 dedicated and unused.
  VmSpec StalledSpec() {
    VmSpec spec = MakeSimpleVmSpec("vm", 2);
    spec.vcpus[0].bw_quota = MsToNs(5);
    spec.vcpus[0].bw_period = MsToNs(10);
    return spec;
  }

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(IvhFixture, HarvestsUnusedVcpu) {
  Vm vm(&sim_, &machine_, StalledSpec());
  Vcap vcap(&vm.kernel());
  Vact vact(&vm.kernel());
  Ivh ivh(&vm.kernel(), &vcap, &vact);
  ivh.Install();
  // vcap is intentionally NOT started: without its probers the hog is never
  // preempted, so stock CFS has no opportunity to move the running task —
  // exactly the stalled-running-task premise (§2.3). ivh must do it.
  vact.Start();

  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(SecToNs(3));  // Let vact learn vCPU0's latency.
  TimeNs exec_before = t->total_exec_ns();
  t->set_allowed(CpuMask::FirstN(2));
  sim_.RunFor(SecToNs(2));
  double progress =
      static_cast<double>(t->total_exec_ns() - exec_before) / static_cast<double>(SecToNs(2));
  // Without harvesting the task progresses 50%; ivh moves it to the unused
  // dedicated vCPU where it runs nearly continuously.
  EXPECT_GT(progress, 0.8);
  EXPECT_GT(ivh.completed(), 0u);
}

TEST_F(IvhFixture, LeavesDedicatedVcpusAlone) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  Vcap vcap(&vm.kernel());
  Vact vact(&vm.kernel());
  Ivh ivh(&vm.kernel(), &vcap, &vact);
  ivh.Install();
  vcap.Start();
  vact.Start();
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog);
  vm.kernel().StartTask(t);
  sim_.RunFor(SecToNs(3));
  // Source has no inactive periods → nothing to harvest.
  EXPECT_EQ(ivh.attempts(), 0u);
}

TEST_F(IvhFixture, IgnoresSmallTasks) {
  Vm vm(&sim_, &machine_, StalledSpec());
  Vcap vcap(&vm.kernel());
  Vact vact(&vm.kernel());
  Ivh ivh(&vm.kernel(), &vcap, &vact);
  ivh.Install();
  vcap.Start();
  vact.Start();
  // Light periodic task: PELT util stays low.
  PeriodicBehavior light(WorkAtCapacity(kCapacityScale, UsToNs(200)), MsToNs(5));
  Task* t = vm.kernel().CreateTask("light", TaskPolicy::kNormal, &light, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(SecToNs(3));
  EXPECT_EQ(ivh.attempts(), 0u);
}

TEST_F(IvhFixture, ActivityAwareBeatsUnaware) {
  // Both vCPUs shaped with anti-phased activity; the activity-aware variant
  // should waste less time on migration delay.
  auto run_with = [&](bool aware, uint64_t seed) {
    Simulation sim(seed);
    HostMachine machine(&sim, FlatSpec(8));
    VmSpec spec = MakeSimpleVmSpec("vm", 2);
    spec.vcpus[0].bw_quota = MsToNs(5);
    spec.vcpus[0].bw_period = MsToNs(10);
    spec.vcpus[1].bw_quota = MsToNs(7);
    spec.vcpus[1].bw_period = MsToNs(10);
    Vm vm(&sim, &machine, spec);
    Vcap vcap(&vm.kernel());
    Vact vact(&vm.kernel());
    IvhConfig config;
    config.activity_aware = aware;
    Ivh ivh(&vm.kernel(), &vcap, &vact, config);
    ivh.Install();
    vcap.Start();
    vact.Start();
    HogBehavior hog;
    Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog);
    vm.kernel().StartTask(t);
    sim.RunFor(SecToNs(5));
    return t->total_exec_ns();
  };
  TimeNs aware = run_with(true, 5);
  TimeNs unaware = run_with(false, 5);
  EXPECT_GE(aware, unaware);
}

TEST_F(IvhFixture, HandshakeTimesOutWhenTargetNeverActivates) {
  // Target vCPU exists but its hardware thread is monopolized by an RT
  // stressor → pre-wake can never deliver; the handshake must abandon.
  VmSpec spec = StalledSpec();
  // Disable CFS's capacity-driven (active) balancing entirely so ivh's
  // handshake is the only mechanism that could move the task.
  spec.mutable_guest_params().active_balance_interval = SecToNs(1000);
  spec.mutable_guest_params().imbalance_pct = 1e9;
  Vm vm(&sim_, &machine_, spec);
  Stressor rt(&sim_, "rt", 1024.0, /*rt=*/true);
  rt.Start(&machine_, 1);
  Vcap vcap(&vm.kernel());
  Vact vact(&vm.kernel());
  Ivh ivh(&vm.kernel(), &vcap, &vact);
  ivh.Install();
  vact.Start();
  HogBehavior hog;
  // Pin to vCPU 0 while vact learns, then widen so ivh can try vCPU 1.
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(SecToNs(3));
  t->set_allowed(CpuMask::FirstN(2));
  sim_.RunFor(SecToNs(4));
  EXPECT_GT(ivh.abandoned(), 0u);
  EXPECT_EQ(t->cpu(), 0);  // Never successfully moved.
  rt.Stop();
}

}  // namespace
}  // namespace vsched
