// Full-stack integration tests: the reference VMs boot with the full vSched
// stack, probers converge to ground truth, rwc bans match it, the techniques
// deliver their headline effects end-to-end, and the whole stack is
// deterministic.
#include <gtest/gtest.h>

#include "src/runner/run_context.h"
#include "src/core/vsched.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/throughput_app.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TEST(IntegrationTest, RcvmProbersConvergeToGroundTruth) {
  RunContext ctx = MakeRun(RcvmHostTopology(), MakeRcvmSpec(), VSchedOptions::Full(), 2024);
  ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  // A light background so the system is realistic but not saturated.
  TaskParallelParams bg;
  bg.threads = 12;
  bg.chunk_mean = UsToNs(400);
  bg.policy = TaskPolicy::kIdle;
  TaskParallelApp background(&ctx.kernel(), bg);
  background.Start();
  ctx.sim->RunFor(SecToNs(12));

  Vcap* vcap = ctx.vsched->vcap();
  // Capacity ordering: hc (0-3) > lc (4-7) > stragglers (8-9).
  double hc = (vcap->CapacityOf(0) + vcap->CapacityOf(2)) / 2;
  double lc = (vcap->CapacityOf(4) + vcap->CapacityOf(6)) / 2;
  double straggler = vcap->CapacityOf(8);
  EXPECT_GT(hc, lc * 1.5);
  EXPECT_GT(lc, straggler * 3);

  // Latency ordering: hl classes (0,1 and 4,5) above ll classes (2,3 / 6,7).
  Vact* vact = ctx.vsched->vact();
  EXPECT_GT(vact->LatencyOf(0), vact->LatencyOf(2) * 1.5);
  EXPECT_GT(vact->LatencyOf(4), vact->LatencyOf(6) * 1.5);

  // Topology: the stacked pair is found; SMT pairs match the pinning.
  ASSERT_TRUE(ctx.vsched->vtop()->has_topology());
  const GuestTopology& topo = ctx.vsched->vtop()->probed_topology();
  EXPECT_TRUE(topo.stack_mask[10].Test(11));
  EXPECT_TRUE(topo.smt_mask[0].Test(1));
  EXPECT_TRUE(topo.smt_mask[2].Test(3));

  // rwc: stragglers banned for normal tasks, one of the stacked pair banned.
  EXPECT_TRUE(ctx.kernel().straggler_banned().Test(8));
  EXPECT_TRUE(ctx.kernel().straggler_banned().Test(9));
  EXPECT_TRUE(ctx.kernel().stack_banned().Test(11));
  EXPECT_FALSE(ctx.kernel().stack_banned().Test(10));
  background.Stop();
}

TEST(IntegrationTest, HpvmProbersSeparateSockets) {
  RunContext ctx = MakeRun(HpvmHostTopology(), MakeHpvmSpec(), VSchedOptions::Full(), 2025);
  ShapeHpvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  ctx.sim->RunFor(SecToNs(12));
  ASSERT_TRUE(ctx.vsched->vtop()->has_topology());
  const GuestTopology& topo = ctx.vsched->vtop()->probed_topology();
  // Each group of 8 vCPUs shares one LLC domain; groups are disjoint.
  for (int g = 0; g < 4; ++g) {
    CpuMask expected;
    for (int i = 0; i < 8; ++i) {
      expected.Set(g * 8 + i);
    }
    EXPECT_EQ(topo.llc_mask[g * 8], expected) << "group " << g;
  }
  // No stacking, no straggler bans.
  EXPECT_TRUE(ctx.kernel().stack_banned().Empty());
  EXPECT_TRUE(ctx.kernel().straggler_banned().Empty());
}

TEST(IntegrationTest, VschedBeatsCfsOnConstrainedHost) {
  // End-to-end: a straggler-and-stacking host; a synchronization-heavy
  // workload must run measurably better under full vSched.
  auto run = [](VSchedOptions options) {
    RunContext ctx = MakeRun(RcvmHostTopology(), MakeRcvmSpec(), options, 31337);
    ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
    MeasuredRun r = RunWorkload(ctx, "streamcluster", 12, SecToNs(6), SecToNs(8));
    return r.result.throughput;
  };
  double cfs = run(VSchedOptions::Cfs());
  double full = run(VSchedOptions::Full());
  EXPECT_GT(full, cfs * 1.2);
}

TEST(IntegrationTest, VschedCutsTailLatencyOnConstrainedHost) {
  auto run = [](VSchedOptions options) {
    RunContext ctx = MakeRun(RcvmHostTopology(), MakeRcvmSpec(), options, 31338);
    ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
    LatencyApp app(&ctx.kernel(), LatencyParamsFor("masstree", 12, 0.05));
    MeasuredRun r = RunWorkloadObj(ctx, &app, SecToNs(6), SecToNs(8));
    return r.result.p95_ns;
  };
  double cfs = run(VSchedOptions::Cfs());
  double full = run(VSchedOptions::Full());
  EXPECT_LT(full, cfs * 0.8);
}

TEST(IntegrationTest, TopologyChangeIsTrackedWithinSeconds) {
  RunContext ctx = MakeRun(RcvmHostTopology(), MakeRcvmSpec(), VSchedOptions::Full(), 99);
  ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  ctx.sim->RunFor(SecToNs(10));
  ASSERT_TRUE(ctx.kernel().stack_banned().Test(11));
  // The hypervisor un-stacks vCPU 11 onto a free hardware thread.
  ctx.vm->PinVcpu(11, 12);
  ctx.sim->RunFor(SecToNs(10));
  EXPECT_FALSE(ctx.kernel().stack_banned().Test(11));
  EXPECT_EQ(ctx.vsched->vtop()->probed_topology().stack_mask[10].Count(), 1);
}

TEST(IntegrationTest, FullStackIsDeterministic) {
  auto signature = [](uint64_t seed) {
    RunContext ctx = MakeRun(RcvmHostTopology(), MakeRcvmSpec(), VSchedOptions::Full(), seed);
    ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
    auto w = MakeWorkload(&ctx.kernel(), "canneal", 12);
    w->Start();
    ctx.sim->RunFor(SecToNs(6));
    uint64_t sig = w->Result().completed;
    sig = sig * 1000003 + ctx.kernel().counters().context_switches.value();
    sig = sig * 1000003 + ctx.kernel().counters().migrations.value();
    sig = sig * 1000003 + static_cast<uint64_t>(ctx.vsched->vcap()->CapacityOf(3));
    w->Stop();
    return sig;
  };
  EXPECT_EQ(signature(12345), signature(12345));
  EXPECT_NE(signature(12345), signature(54321));
}

TEST(IntegrationTest, ProbersKeepWorkingUnderChurn) {
  // Workloads starting/stopping constantly must not wedge the probers.
  RunContext ctx = MakeRun(RcvmHostTopology(), MakeRcvmSpec(), VSchedOptions::Full(), 555);
  ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  Rng rng = ctx.sim->ForkRng();
  for (int round = 0; round < 6; ++round) {
    auto w = MakeWorkload(&ctx.kernel(), round % 2 == 0 ? "radix" : "silo",
                          static_cast<int>(rng.UniformInt(2, 12)));
    w->Start();
    ctx.sim->RunFor(SecToNs(2));
    w->Stop();
    ctx.sim->RunFor(MsToNs(300));
  }
  EXPECT_GT(ctx.vsched->vcap()->windows_completed(), 8);
  EXPECT_GT(ctx.vsched->vtop()->validations_run(), 2);
  EXPECT_TRUE(ctx.vsched->vact()->has_results());
}

}  // namespace
}  // namespace vsched
