// Randomized stress tests: long scenarios that mutate the host (re-pinning,
// frequency changes, bandwidth re-shaping, stressor churn) and the guest
// (bans, workload start/stop) while the full vSched stack runs, checking
// global invariants throughout. These are the "failure injection" tests:
// every mutation is a hypervisor-side event the guest must absorb.
#include <gtest/gtest.h>

#include "src/core/vsched.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "src/workloads/catalog.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

class StressScenario : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressScenario, SurvivesRandomHypervisorEvents) {
  Simulation sim(GetParam());
  TopologySpec topo;
  topo.sockets = 2;
  topo.cores_per_socket = 4;
  topo.threads_per_core = 2;
  HostMachine machine(&sim, topo);
  HostTopology host_topo(topo);
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 10));
  VSched vsched(&vm.kernel(), VSchedOptions::Full());
  vsched.Start();
  Rng rng = sim.ForkRng();

  std::vector<std::unique_ptr<Stressor>> stressors;
  std::vector<std::unique_ptr<Workload>> workloads;
  const std::vector<std::string> names = {"silo", "canneal", "dedup", "fio", "radix"};

  for (int step = 0; step < 60; ++step) {
    double action = rng.NextDouble();
    if (action < 0.2) {
      // Start a workload.
      if (workloads.size() < 3) {
        const std::string& name = names[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(names.size()) - 1))];
        workloads.push_back(
            MakeWorkload(&vm.kernel(), name, static_cast<int>(rng.UniformInt(1, 10))));
        workloads.back()->Start();
      }
    } else if (action < 0.35) {
      // Stop a workload.
      if (!workloads.empty()) {
        workloads.front()->Stop();
        sim.RunFor(MsToNs(50));  // Let tasks drain before dropping behaviors.
        workloads.erase(workloads.begin());
      }
    } else if (action < 0.5) {
      // Hypervisor re-pins a random vCPU.
      int vcpu = static_cast<int>(rng.UniformInt(0, 9));
      int tid = static_cast<int>(rng.UniformInt(0, host_topo.num_threads() - 1));
      vm.PinVcpu(vcpu, tid);
    } else if (action < 0.62) {
      // DVFS on a random core.
      machine.SetCoreFreq(static_cast<int>(rng.UniformInt(0, host_topo.num_cores() - 1)),
                          rng.Uniform(0.4, 2.0));
    } else if (action < 0.74) {
      // Co-tenant churn.
      if (stressors.size() < 6 && rng.Bernoulli(0.7)) {
        stressors.push_back(std::make_unique<Stressor>(&sim, "s", rng.Uniform(256, 4096)));
        stressors.back()->Start(&machine,
                                static_cast<int>(rng.UniformInt(0, host_topo.num_threads() - 1)));
      } else if (!stressors.empty()) {
        stressors.front()->Stop();
        stressors.erase(stressors.begin());
      }
    } else if (action < 0.86) {
      // Bandwidth re-shaping of a random vCPU.
      int vcpu = static_cast<int>(rng.UniformInt(0, 9));
      if (rng.Bernoulli(0.5)) {
        TimeNs period = static_cast<TimeNs>(rng.Uniform(4, 20) * kNsPerMs);
        vm.SetVcpuBandwidth(vcpu, static_cast<TimeNs>(rng.Uniform(0.2, 0.9) *
                                                      static_cast<double>(period)),
                            period);
      } else {
        vm.ClearVcpuBandwidth(vcpu);
      }
    }
    // Otherwise: just run.
    sim.RunFor(MsToNs(static_cast<int64_t>(rng.Uniform(50, 250))));

    // Invariants after every step.
    GuestKernel& kernel = vm.kernel();
    TimeNs task_total = 0;
    for (const auto& t : kernel.tasks()) {
      task_total += t->total_exec_ns();
    }
    TimeNs vcpu_total = 0;
    for (int c = 0; c < kernel.num_vcpus(); ++c) {
      vcpu_total += kernel.vcpu(c).busy_ns();
    }
    ASSERT_EQ(task_total, vcpu_total) << "work conservation broke at step " << step;
    for (const auto& t : kernel.tasks()) {
      int placements = 0;
      for (int c = 0; c < kernel.num_vcpus(); ++c) {
        placements += kernel.vcpu(c).rq().Contains(t.get()) ? 1 : 0;
        placements += kernel.vcpu(c).current() == t.get() ? 1 : 0;
      }
      ASSERT_LE(placements, 1) << t->name() << " at step " << step;
    }
  }
  // The probers must still be alive and producing results at the end.
  EXPECT_GE(vsched.vcap()->windows_completed(), 5);
  EXPECT_TRUE(vsched.vact()->has_results());
  for (auto& w : workloads) {
    w->Stop();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressScenario, ::testing::Values(1001, 2002, 3003, 4004));

TEST(MultiVmTest, VmsAreIsolated) {
  // Two guest kernels share the host: counters and accounting stay per-VM,
  // and the host time each VM receives is complementary.
  Simulation sim(77);
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 2;
  topo.threads_per_core = 1;
  HostMachine machine(&sim, topo);
  Vm vm_a(&sim, &machine, MakeSimpleVmSpec("a", 2));
  Vm vm_b(&sim, &machine, MakeSimpleVmSpec("b", 2));
  HogBehavior ha;
  HogBehavior hb;
  Task* ta = vm_a.kernel().CreateTask("a", TaskPolicy::kNormal, &ha, CpuMask::Single(0));
  Task* tb = vm_b.kernel().CreateTask("b", TaskPolicy::kNormal, &hb, CpuMask::Single(0));
  vm_a.kernel().StartTask(ta);
  vm_b.kernel().StartTask(tb);
  sim.RunFor(SecToNs(2));
  // The two vCPU0s share hardware thread 0 evenly.
  EXPECT_NEAR(static_cast<double>(ta->total_exec_ns()) / static_cast<double>(sim.now()), 0.5,
              0.05);
  EXPECT_NEAR(static_cast<double>(tb->total_exec_ns()) / static_cast<double>(sim.now()), 0.5,
              0.05);
  // Each guest sees ~50% steal on its vCPU 0 and none on its idle vCPU 1.
  EXPECT_GT(vm_a.kernel().vcpu(0).StealClock(sim.now()), MsToNs(800));
  EXPECT_EQ(vm_a.kernel().vcpu(1).StealClock(sim.now()), 0);
  // Counters are independent.
  EXPECT_EQ(vm_b.kernel().counters().migrations.value(), 0u);
}

TEST(MultiVmTest, VSchedInOneVmDoesNotDisturbAnotherIdleVm) {
  Simulation sim(78);
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 4;
  topo.threads_per_core = 1;
  HostMachine machine(&sim, topo);
  Vm busy(&sim, &machine, MakeSimpleVmSpec("busy", 4));
  Vm quiet(&sim, &machine, MakeSimpleVmSpec("quiet", 4));
  VSched vsched(&busy.kernel(), VSchedOptions::Full());
  vsched.Start();
  auto w = MakeWorkload(&busy.kernel(), "canneal", 4);
  w->Start();
  sim.RunFor(SecToNs(3));
  // The quiet VM's kernel never scheduled anything.
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(quiet.kernel().vcpu(c).busy_ns(), 0);
  }
  EXPECT_EQ(quiet.kernel().counters().context_switches.value(), 0u);
  w->Stop();
}

}  // namespace
}  // namespace vsched
