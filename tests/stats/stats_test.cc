#include "src/stats/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(EmaTest, FirstSampleInitializes) {
  Ema ema(0.3);
  EXPECT_FALSE(ema.has_value());
  ema.Add(10.0);
  EXPECT_TRUE(ema.has_value());
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(EmaTest, BlendsTowardNewSamples) {
  Ema ema(0.5);
  ema.Add(0.0);
  ema.Add(100.0);
  EXPECT_DOUBLE_EQ(ema.value(), 50.0);
  ema.Add(100.0);
  EXPECT_DOUBLE_EQ(ema.value(), 75.0);
}

TEST(EmaTest, HalfLifeDecaysHistoryByHalf) {
  // "50% per 2 periods" (Table 1): after 2 updates with sample 0, an initial
  // value of 100 should retain weight 0.5 → value 50.
  Ema ema = Ema::WithHalfLife(2.0);
  ema.Add(100.0);
  ema.Add(0.0);
  ema.Add(0.0);
  EXPECT_NEAR(ema.value(), 50.0, 1e-9);
}

TEST(EmaTest, SmoothsSpikes) {
  Ema ema = Ema::WithHalfLife(2.0);
  for (int i = 0; i < 10; ++i) {
    ema.Add(100.0);
  }
  ema.Add(1000.0);  // One-sample spike.
  EXPECT_LT(ema.value(), 400.0);
  EXPECT_GT(ema.value(), 100.0);
}

TEST(EmaTest, ResetClearsState) {
  Ema ema(0.5);
  ema.Add(10);
  ema.Reset();
  EXPECT_FALSE(ema.has_value());
}

TEST(DistributionTest, EmptyIsZero) {
  Distribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.P95(), 0.0);
}

TEST(DistributionTest, BasicMoments) {
  Distribution d;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    d.Add(v);
  }
  EXPECT_DOUBLE_EQ(d.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.Min(), 1.0);
  EXPECT_DOUBLE_EQ(d.Max(), 5.0);
  EXPECT_DOUBLE_EQ(d.Sum(), 15.0);
  EXPECT_NEAR(d.Stddev(), std::sqrt(2.5), 1e-12);
}

TEST(DistributionTest, QuantilesInterpolate) {
  Distribution d;
  for (int i = 0; i <= 100; ++i) {
    d.Add(i);
  }
  EXPECT_DOUBLE_EQ(d.P50(), 50.0);
  EXPECT_DOUBLE_EQ(d.P95(), 95.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 100.0);
}

TEST(DistributionTest, QuantileOfSingleSample) {
  Distribution d;
  d.Add(7.0);
  EXPECT_DOUBLE_EQ(d.P95(), 7.0);
}

TEST(DistributionTest, AddAfterQuantileStillSorted) {
  Distribution d;
  d.Add(5.0);
  d.Add(1.0);
  EXPECT_DOUBLE_EQ(d.Min(), 1.0);
  d.Add(0.5);
  EXPECT_DOUBLE_EQ(d.Min(), 0.5);
}

TEST(DistributionTest, CountAboveIsStrict) {
  Distribution d;
  EXPECT_EQ(d.CountAbove(0.0), 0u);
  for (double s : {1.0, 2.0, 2.0, 3.0, 5.0}) {
    d.Add(s);
  }
  EXPECT_EQ(d.CountAbove(0.0), 5u);
  EXPECT_EQ(d.CountAbove(2.0), 2u);  // strictly greater
  EXPECT_EQ(d.CountAbove(4.0), 1u);
  EXPECT_EQ(d.CountAbove(5.0), 0u);
}

TEST(HistogramTest, BucketsAndFractions) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.7);
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(1), 2.0);
  EXPECT_NEAR(h.Fraction(1), 2.0 / 3.0, 1e-12);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(50.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(9), 1.0);
}

TEST(HistogramTest, WeightedSamples) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0, 2.5);
  EXPECT_DOUBLE_EQ(h.bucket_weight(1), 2.5);
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.5);
}

TEST(HistogramTest, BucketBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(TimeSeriesTest, WindowMean) {
  TimeSeries ts;
  ts.Add(10, 1.0);
  ts.Add(20, 2.0);
  ts.Add(30, 3.0);
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(10, 30), 1.5);
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(0, 100), 2.0);
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(40, 50), 0.0);
}

TEST(TimeWeightedValueTest, MeanOverPiecewiseConstant) {
  TimeWeightedValue v;
  v.Set(0, 10.0);
  v.Set(100, 20.0);
  // 10 for 100 ns, then 20 for 100 ns.
  EXPECT_DOUBLE_EQ(v.MeanUntil(200), 15.0);
}

TEST(TimeWeightedValueTest, CurrentReflectsLastSet) {
  TimeWeightedValue v;
  v.Set(0, 5.0);
  v.Set(50, 7.0);
  EXPECT_DOUBLE_EQ(v.current(), 7.0);
}

TEST(CounterTest, IncAndReset) {
  Counter c;
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace vsched
