// Parameterized accuracy sweeps for the vProbers: vcap across capacity
// grids (bandwidth- and DVFS-induced), vact across latency grids, and vtop
// against randomly generated ground-truth topologies.
#include <cmath>

#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/probe/vact.h"
#include "src/probe/vcap.h"
#include "src/probe/vtop.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

// ---------------------------------------------------------------------------
// vcap: probed capacity tracks bandwidth-shaped ground truth.
// ---------------------------------------------------------------------------

class VcapBandwidth : public ::testing::TestWithParam<double> {};

TEST_P(VcapBandwidth, ProbesShapedCapacity) {
  double fraction = GetParam();
  Simulation sim(41);
  HostMachine machine(&sim, FlatSpec(2));
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].bw_quota = static_cast<TimeNs>(fraction * MsToNs(10));
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim, &machine, spec);
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim.RunFor(SecToNs(6));
  EXPECT_NEAR(vcap.CapacityOf(0) / kCapacityScale, fraction, 0.1) << "fraction " << fraction;
}

INSTANTIATE_TEST_SUITE_P(Fractions, VcapBandwidth, ::testing::Values(0.2, 0.35, 0.5, 0.7, 0.9));

class VcapFreq : public ::testing::TestWithParam<double> {};

TEST_P(VcapFreq, HeavyPhaseSeesFrequency) {
  double freq = GetParam();
  Simulation sim(43);
  HostMachine machine(&sim, FlatSpec(2));
  machine.SetCoreFreq(0, freq);
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 2));
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim.RunFor(SecToNs(3));
  EXPECT_NEAR(vcap.CapacityOf(0) / kCapacityScale, freq, 0.08) << "freq " << freq;
  // Steal-based estimates cannot see frequency; the heavy phase must.
  EXPECT_NEAR(vcap.last_sample(0).core_capacity / kCapacityScale, freq, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Freqs, VcapFreq, ::testing::Values(0.25, 0.5, 0.75, 1.0, 1.5));

// ---------------------------------------------------------------------------
// vact: probed latency tracks the shaped inactive period.
// ---------------------------------------------------------------------------

class VactLatency : public ::testing::TestWithParam<TimeNs> {};

TEST_P(VactLatency, LatencyMatchesInactivePeriod) {
  TimeNs inactive = GetParam();
  Simulation sim(47);
  HostMachine machine(&sim, FlatSpec(1));
  VmSpec spec = MakeSimpleVmSpec("vm", 1);
  spec.vcpus[0].bw_quota = inactive;           // symmetric on/off
  spec.vcpus[0].bw_period = 2 * inactive;
  Vm vm(&sim, &machine, spec);
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  Vact vact(&vm.kernel());
  vact.Start();
  sim.RunFor(SecToNs(4));
  EXPECT_NEAR(vact.LatencyOf(0), static_cast<double>(inactive),
              0.25 * static_cast<double>(inactive))
      << "inactive " << NsToMs(inactive) << " ms";
}

INSTANTIATE_TEST_SUITE_P(Periods, VactLatency,
                         ::testing::Values(MsToNs(2), MsToNs(4), MsToNs(8), MsToNs(12)));

// ---------------------------------------------------------------------------
// vtop: recovered topology matches randomly generated ground truth.
// ---------------------------------------------------------------------------

struct VtopCase {
  uint64_t seed;
  int vcpus;
};

class VtopRandomTopology : public ::testing::TestWithParam<VtopCase> {};

TEST_P(VtopRandomTopology, RecoversGroundTruth) {
  VtopCase c = GetParam();
  Simulation sim(c.seed);
  TopologySpec host;
  host.sockets = 2;
  host.cores_per_socket = 5;
  host.threads_per_core = 2;
  HostMachine machine(&sim, host);
  HostTopology topo(host);
  Rng rng = sim.ForkRng();

  // Random pinning; allow up to one stacked pair by reusing a thread.
  VmSpec spec = MakeSimpleVmSpec("vm", c.vcpus);
  std::vector<int> tids;
  for (int i = 0; i < c.vcpus; ++i) {
    int tid;
    if (i > 0 && rng.Bernoulli(0.15)) {
      tid = tids[static_cast<size_t>(rng.UniformInt(0, i - 1))];  // stack
    } else {
      do {
        tid = static_cast<int>(rng.UniformInt(0, topo.num_threads() - 1));
      } while (std::find(tids.begin(), tids.end(), tid) != tids.end());
    }
    tids.push_back(tid);
    spec.vcpus[i].tid = tid;
  }
  Vm vm(&sim, &machine, spec);
  Vtop vtop(&vm.kernel());
  bool done = false;
  vtop.RunFullProbe([&] { done = true; });
  sim.RunFor(SecToNs(30));
  ASSERT_TRUE(done) << "probe did not converge";

  const GuestTopology& probed = vtop.probed_topology();
  for (int a = 0; a < c.vcpus; ++a) {
    for (int b = 0; b < c.vcpus; ++b) {
      bool same_thread = tids[a] == tids[b];
      bool same_core = topo.CoreOf(tids[a]) == topo.CoreOf(tids[b]);
      bool same_socket = topo.SocketOf(tids[a]) == topo.SocketOf(tids[b]);
      EXPECT_EQ(probed.stack_mask[a].Test(b), same_thread) << a << "," << b;
      EXPECT_EQ(probed.smt_mask[a].Test(b), same_core) << a << "," << b;
      EXPECT_EQ(probed.llc_mask[a].Test(b), same_socket) << a << "," << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, VtopRandomTopology,
                         ::testing::Values(VtopCase{1, 6}, VtopCase{2, 6}, VtopCase{3, 8},
                                           VtopCase{4, 10}, VtopCase{5, 12}, VtopCase{6, 16}));

// ---------------------------------------------------------------------------
// vtop under interference: busy vCPUs must not be misread as stacked when
// timeout extension is enabled.
// ---------------------------------------------------------------------------

TEST(VtopInterference, BusyPairsNotMisreadAsStacked) {
  Simulation sim(777);
  TopologySpec host = FlatSpec(4);
  HostMachine machine(&sim, host);
  VmSpec spec = MakeSimpleVmSpec("vm", 4);
  for (auto& p : spec.vcpus) {
    p.bw_quota = MsToNs(3);
    p.bw_period = MsToNs(10);  // 30% duty: little overlap between pairs
  }
  Vm vm(&sim, &machine, spec);
  // CPU-bound workload keeps all vCPUs demanded (worst case for overlap).
  std::vector<std::unique_ptr<HogBehavior>> hogs;
  for (int i = 0; i < 4; ++i) {
    hogs.push_back(std::make_unique<HogBehavior>());
    Task* t = vm.kernel().CreateTask("h", TaskPolicy::kNormal, hogs.back().get(),
                                     CpuMask::Single(i));
    vm.kernel().StartTask(t);
  }
  Vtop vtop(&vm.kernel());
  bool done = false;
  vtop.RunFullProbe([&] { done = true; });
  sim.RunFor(SecToNs(60));
  ASSERT_TRUE(done);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(vtop.probed_topology().stack_mask[i].Count(), 1) << "vcpu " << i;
  }
}

}  // namespace
}  // namespace vsched
