// Direct PairProbe behaviour: measurement noise bounds, interference from
// user workloads, lifecycle, and the never-co-run ⇒ stacked rule.
#include <cmath>

#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/probe/pair_probe.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec TwoSocket() {
  TopologySpec spec;
  spec.sockets = 2;
  spec.cores_per_socket = 2;
  spec.threads_per_core = 2;
  return spec;
}

PairProbeResult ProbeOnce(Vm& vm, Simulation& sim, int a, int b, PairProbeConfig config = {}) {
  PairProbeResult result;
  bool done = false;
  PairProbe probe(&vm.kernel(), a, b, config, [&](const PairProbeResult& r) {
    result = r;
    done = true;
  });
  probe.Start();
  sim.RunFor(SecToNs(20));
  EXPECT_TRUE(done);
  return result;
}

TEST(PairProbeTest, NoiseStaysWithinConfiguredBound) {
  Simulation sim(71);
  HostMachine machine(&sim, TwoSocket());
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[1].tid = 2;  // same socket, other core → 48 ns class
  Vm vm(&sim, &machine, spec);
  PairProbeConfig config;
  config.noise = 0.08;
  PairProbeResult r = ProbeOnce(vm, sim, 0, 1, config);
  EXPECT_GE(r.latency_ns, 48.0 * (1.0 - config.noise) - 0.5);
  EXPECT_LE(r.latency_ns, 48.0 * (1.0 + config.noise) + 0.5);
}

TEST(PairProbeTest, SucceedsDespiteBusyWorkload) {
  Simulation sim(72);
  HostMachine machine(&sim, TwoSocket());
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[1].tid = 4;  // cross socket
  Vm vm(&sim, &machine, spec);
  // CPU hogs on both vCPUs: the probers time-share with them.
  HogBehavior h0;
  HogBehavior h1;
  Task* t0 = vm.kernel().CreateTask("h0", TaskPolicy::kNormal, &h0, CpuMask::Single(0));
  Task* t1 = vm.kernel().CreateTask("h1", TaskPolicy::kNormal, &h1, CpuMask::Single(1));
  vm.kernel().StartTask(t0);
  vm.kernel().StartTask(t1);
  sim.RunFor(MsToNs(20));
  PairProbeResult r = ProbeOnce(vm, sim, 0, 1);
  EXPECT_FALSE(std::isinf(r.latency_ns));
  EXPECT_GT(r.latency_ns, 85.0);
}

TEST(PairProbeTest, StackedNeedsExhaustedExtensions) {
  Simulation sim(73);
  HostMachine machine(&sim, TwoSocket());
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[1].tid = 0;  // stacked
  Vm vm(&sim, &machine, spec);
  PairProbeResult r = ProbeOnce(vm, sim, 0, 1);
  EXPECT_TRUE(std::isinf(r.latency_ns));
  EXPECT_EQ(r.extensions, PairProbeConfig{}.max_extensions);
  EXPECT_EQ(r.transfers, 0.0);
}

TEST(PairProbeTest, AnyTransferDisprovesStacking) {
  // Two vCPUs at very low duty (tiny overlap): the probe must classify them
  // by the rare transfers it does see, not call them stacked.
  Simulation sim(74);
  HostMachine machine(&sim, TwoSocket());
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].tid = 0;
  spec.vcpus[1].tid = 2;
  spec.vcpus[0].bw_quota = MsToNs(1);
  spec.vcpus[0].bw_period = MsToNs(12);
  spec.vcpus[1].bw_quota = MsToNs(1);
  spec.vcpus[1].bw_period = MsToNs(14);  // different periods → drifting phases
  Vm vm(&sim, &machine, spec);
  PairProbeResult r = ProbeOnce(vm, sim, 0, 1);
  EXPECT_FALSE(std::isinf(r.latency_ns)) << "low-duty pair misread as stacked";
}

TEST(PairProbeTest, DurationReflectsWaitingForCoActivity) {
  Simulation sim(75);
  HostMachine machine(&sim, TwoSocket());
  // Dedicated pair: near-instant. Shaped pair: must wait for overlap.
  VmSpec spec = MakeSimpleVmSpec("vm", 4);
  spec.vcpus[1].tid = 2;
  spec.vcpus[2].tid = 4;
  spec.vcpus[3].tid = 6;
  spec.vcpus[2].bw_quota = MsToNs(2);
  spec.vcpus[2].bw_period = MsToNs(10);
  spec.vcpus[3].bw_quota = MsToNs(2);
  spec.vcpus[3].bw_period = MsToNs(10);
  Vm vm(&sim, &machine, spec);
  // Busy workloads drain the shaped vCPUs' quotas so the probe must wait
  // for genuinely overlapping active windows.
  HogBehavior h2;
  HogBehavior h3;
  Task* t2 = vm.kernel().CreateTask("h2", TaskPolicy::kNormal, &h2, CpuMask::Single(2));
  Task* t3 = vm.kernel().CreateTask("h3", TaskPolicy::kNormal, &h3, CpuMask::Single(3));
  vm.kernel().StartTask(t2);
  vm.kernel().StartTask(t3);
  sim.RunFor(MsToNs(50));
  PairProbeResult fast = ProbeOnce(vm, sim, 0, 1);
  PairProbeResult slow = ProbeOnce(vm, sim, 2, 3);
  EXPECT_LT(fast.duration, MsToNs(1));
  EXPECT_GT(slow.duration, fast.duration * 3);
}

TEST(PairProbeTest, CanDestroyOnlyAfterSpinnersExit) {
  Simulation sim(76);
  HostMachine machine(&sim, TwoSocket());
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[1].tid = 2;
  Vm vm(&sim, &machine, spec);
  bool done = false;
  PairProbe probe(&vm.kernel(), 0, 1, PairProbeConfig{}, [&](const PairProbeResult&) {
    done = true;
  });
  probe.Start();
  EXPECT_FALSE(probe.CanDestroy());
  sim.RunFor(SecToNs(1));
  ASSERT_TRUE(done);
  EXPECT_TRUE(probe.CanDestroy());
}

}  // namespace
}  // namespace vsched
