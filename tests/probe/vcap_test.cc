#include "src/probe/vcap.h"

#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

class VcapFixture : public ::testing::Test {
 protected:
  VcapFixture() : sim_(21), machine_(&sim_, FlatSpec(8)) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(VcapFixture, DedicatedVcpuProbesFullCapacity) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim_.RunFor(SecToNs(3));
  ASSERT_TRUE(vcap.has_results());
  EXPECT_NEAR(vcap.CapacityOf(0), kCapacityScale, 40.0);
  EXPECT_NEAR(vcap.CapacityOf(1), kCapacityScale, 40.0);
}

TEST_F(VcapFixture, BandwidthCapReflectedInCapacity) {
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].bw_quota = MsToNs(5);  // 50% share
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim_, &machine_, spec);
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim_.RunFor(SecToNs(6));
  EXPECT_NEAR(vcap.CapacityOf(0), 512.0, 80.0);
  EXPECT_NEAR(vcap.CapacityOf(1), kCapacityScale, 40.0);
}

TEST_F(VcapFixture, FrequencyAsymmetryNeedsHeavyPhase) {
  // Core frequency halved: invisible to steal time, only the heavy phase's
  // work-rate measurement can see it.
  machine_.SetCoreFreq(1, 0.5);
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim_.RunFor(SecToNs(3));
  EXPECT_NEAR(vcap.CapacityOf(0), 1024.0, 60.0);
  EXPECT_NEAR(vcap.CapacityOf(1), 512.0, 60.0);
  EXPECT_NEAR(vcap.last_sample(1).core_capacity, 512.0, 60.0);
}

TEST_F(VcapFixture, HostCompetitionHalvesCapacity) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  Stressor competitor(&sim_, "comp");
  competitor.Start(&machine_, 0);
  // A busy workload so the vCPU contends all the time.
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim_.RunFor(SecToNs(8));
  EXPECT_NEAR(vcap.CapacityOf(0), 512.0, 100.0);
  EXPECT_GT(vcap.last_sample(0).steal_fraction, 0.3);
  competitor.Stop();
}

TEST_F(VcapFixture, EmaSmoothsCapacityStep) {
  VmSpec spec = MakeSimpleVmSpec("vm", 1);
  Vm vm(&sim_, &machine_, spec);
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim_.RunFor(SecToNs(3));
  double before = vcap.CapacityOf(0);
  EXPECT_NEAR(before, 1024.0, 40.0);
  // Step the capacity down to ~25%.
  vm.SetVcpuBandwidth(0, MsToNs(5), MsToNs(20));
  sim_.RunFor(SecToNs(1) + MsToNs(200));
  double after_one = vcap.CapacityOf(0);
  // One window in: the EMA has moved but not converged.
  EXPECT_LT(after_one, before - 50.0);
  EXPECT_GT(after_one, 300.0);
  sim_.RunFor(SecToNs(8));
  EXPECT_NEAR(vcap.CapacityOf(0), 256.0, 90.0);
}

TEST_F(VcapFixture, LightProbingBarelyDisturbsWorkload) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim_.RunFor(SecToNs(10));
  // Light windows are SCHED_IDLE; only heavy windows (2 of 10s here) share.
  // Expect > 85% of the CPU went to the workload.
  double share = static_cast<double>(t->total_exec_ns()) / static_cast<double>(sim_.now());
  EXPECT_GT(share, 0.85);
}

TEST_F(VcapFixture, MedianCapacity) {
  VmSpec spec = MakeSimpleVmSpec("vm", 4);
  spec.vcpus[0].bw_quota = MsToNs(2);
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim_, &machine_, spec);
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim_.RunFor(SecToNs(3));
  // Three full-capacity vCPUs, one at 20% → median near full.
  EXPECT_GT(vcap.MedianCapacity(), 900.0);
}

TEST_F(VcapFixture, SkipMaskSuppressesProbing) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  Vcap vcap(&vm.kernel());
  vcap.SetSkipMask(CpuMask::Single(1));
  vcap.Start();
  sim_.RunFor(SecToNs(3));
  // Skipped vCPU was never touched: no prober execution there.
  EXPECT_EQ(vm.kernel().vcpu(1).busy_ns(), 0);
  EXPECT_GT(vm.kernel().vcpu(0).busy_ns(), 0);
}

TEST_F(VcapFixture, StopHaltsSampling) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim_.RunFor(SecToNs(2));
  int windows = vcap.windows_completed();
  vcap.Stop();
  sim_.RunFor(SecToNs(2));
  EXPECT_EQ(vcap.windows_completed(), windows);
}

}  // namespace
}  // namespace vsched
