#include "src/probe/vact.h"

#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/probe/vcap.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

class VactFixture : public ::testing::Test {
 protected:
  VactFixture() : sim_(33), machine_(&sim_, FlatSpec(4)) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(VactFixture, DedicatedBusyVcpuHasNearZeroLatency) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  Vact vact(&vm.kernel());
  vact.Start();
  sim_.RunFor(SecToNs(3));
  ASSERT_TRUE(vact.has_results());
  EXPECT_LT(vact.LatencyOf(0), static_cast<double>(UsToNs(100)));
}

TEST_F(VactFixture, BandwidthShapingYieldsExpectedLatency) {
  // 5 ms on / 5 ms off: average inactive period ≈ 5 ms.
  VmSpec spec = MakeSimpleVmSpec("vm", 1);
  spec.vcpus[0].bw_quota = MsToNs(5);
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim_, &machine_, spec);
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  Vact vact(&vm.kernel());
  vact.Start();
  sim_.RunFor(SecToNs(4));
  EXPECT_NEAR(vact.LatencyOf(0), static_cast<double>(MsToNs(5)),
              static_cast<double>(MsToNs(1)));
  EXPECT_NEAR(vact.ActivePeriodOf(0), static_cast<double>(MsToNs(5)),
              static_cast<double>(MsToNs(1)));
  // ~100 preemptions per 1 s window.
  EXPECT_NEAR(vact.LastWindowPreemptions(0), 100, 10);
}

TEST_F(VactFixture, LatencyScalesWithInactivePeriod) {
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].bw_quota = MsToNs(4);
  spec.vcpus[0].bw_period = MsToNs(8);  // 4 ms inactive periods
  spec.vcpus[1].bw_quota = MsToNs(8);
  spec.vcpus[1].bw_period = MsToNs(16);  // 8 ms inactive periods
  Vm vm(&sim_, &machine_, spec);
  HogBehavior hog_a;
  HogBehavior hog_b;
  Task* a = vm.kernel().CreateTask("a", TaskPolicy::kNormal, &hog_a, CpuMask::Single(0));
  Task* b = vm.kernel().CreateTask("b", TaskPolicy::kNormal, &hog_b, CpuMask::Single(1));
  vm.kernel().StartTask(a);
  vm.kernel().StartTask(b);
  Vact vact(&vm.kernel());
  vact.Start();
  sim_.RunFor(SecToNs(4));
  double lat0 = vact.LatencyOf(0);
  double lat1 = vact.LatencyOf(1);
  EXPECT_NEAR(lat1 / lat0, 2.0, 0.4);
}

TEST_F(VactFixture, QueryStateSeesActiveVcpu) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  Vact vact(&vm.kernel());
  vact.Start();
  sim_.RunFor(MsToNs(100));
  VcpuStateView view = vact.QueryState(0);
  EXPECT_FALSE(view.inactive);
}

TEST_F(VactFixture, QueryStateDetectsPreemptedVcpu) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  Vact vact(&vm.kernel());
  vact.Start();
  sim_.RunFor(MsToNs(100));
  Stressor rt(&sim_, "rt", 1024.0, /*rt=*/true);
  rt.Start(&machine_, 0);
  sim_.RunFor(MsToNs(20));
  VcpuStateView view = vact.QueryState(0);
  EXPECT_TRUE(view.inactive);
  // The heartbeat froze when the RT stressor took over.
  EXPECT_LE(view.since, sim_.now() - MsToNs(15));
  rt.Stop();
  sim_.RunFor(MsToNs(20));
  EXPECT_FALSE(vact.QueryState(0).inactive);
}

TEST_F(VactFixture, StateChangeTrackedViaStealJumps) {
  VmSpec spec = MakeSimpleVmSpec("vm", 1);
  spec.vcpus[0].bw_quota = MsToNs(10);
  spec.vcpus[0].bw_period = MsToNs(20);
  Vm vm(&sim_, &machine_, spec);
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  Vact vact(&vm.kernel());
  vact.Start();
  sim_.RunFor(SecToNs(2) + MsToNs(3));
  VcpuStateView view = vact.QueryState(0);
  if (!view.inactive) {
    // "Since" must be recent: within the current 10 ms active stint.
    EXPECT_GE(view.since, sim_.now() - MsToNs(12));
  }
}

TEST_F(VactFixture, MedianLatencyAcrossVcpus) {
  VmSpec spec = MakeSimpleVmSpec("vm", 3);
  spec.vcpus[2].bw_quota = MsToNs(4);
  spec.vcpus[2].bw_period = MsToNs(8);
  Vm vm(&sim_, &machine_, spec);
  std::vector<std::unique_ptr<HogBehavior>> hogs;
  for (int i = 0; i < 3; ++i) {
    hogs.push_back(std::make_unique<HogBehavior>());
    Task* t = vm.kernel().CreateTask("h", TaskPolicy::kNormal, hogs.back().get(),
                                     CpuMask::Single(i));
    vm.kernel().StartTask(t);
  }
  Vact vact(&vm.kernel());
  vact.Start();
  sim_.RunFor(SecToNs(4));
  // Two dedicated vCPUs (latency ~0) and one shaped: median ~0.
  EXPECT_LT(vact.MedianLatency(), static_cast<double>(MsToNs(1)));
  EXPECT_GT(vact.LatencyOf(2), static_cast<double>(MsToNs(2)));
}

}  // namespace
}  // namespace vsched
