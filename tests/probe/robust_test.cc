// Tests for the shared probe-robustness primitives (src/probe/robust.h):
// confidence scoring from accept/reject/drop outcomes and the outlier band.
#include "src/probe/robust.h"

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(ConfidenceTrackerTest, StartsFullyConfident) {
  ConfidenceTracker tracker(4);
  EXPECT_DOUBLE_EQ(tracker.confidence(), 1.0);
  EXPECT_EQ(tracker.consecutive_rejects(), 0);
}

TEST(ConfidenceTrackerTest, OutcomeScoresAreAveraged) {
  ConfidenceTracker tracker(4);
  tracker.RecordAccepted();  // 1.0
  tracker.RecordRejected();  // 0.25
  tracker.RecordDropped();   // 0.0
  tracker.RecordAccepted();  // 1.0
  EXPECT_DOUBLE_EQ(tracker.confidence(), (1.0 + 0.25 + 0.0 + 1.0) / 4.0);
  EXPECT_EQ(tracker.accepted(), 2u);
  EXPECT_EQ(tracker.rejected(), 1u);
  EXPECT_EQ(tracker.dropped(), 1u);
}

TEST(ConfidenceTrackerTest, SustainedDropsReachZero) {
  ConfidenceTracker tracker(8);
  for (int i = 0; i < 8; ++i) {
    tracker.RecordDropped();
  }
  EXPECT_DOUBLE_EQ(tracker.confidence(), 0.0);
}

TEST(ConfidenceTrackerTest, WindowSlidesPastOldOutcomes) {
  ConfidenceTracker tracker(4);
  for (int i = 0; i < 4; ++i) {
    tracker.RecordDropped();
  }
  ASSERT_DOUBLE_EQ(tracker.confidence(), 0.0);
  // Four accepts push the drops out of the window entirely.
  for (int i = 0; i < 4; ++i) {
    tracker.RecordAccepted();
  }
  EXPECT_DOUBLE_EQ(tracker.confidence(), 1.0);
}

TEST(ConfidenceTrackerTest, ConsecutiveRejectsResetOnAccept) {
  ConfidenceTracker tracker(8);
  tracker.RecordRejected();
  tracker.RecordRejected();
  EXPECT_EQ(tracker.consecutive_rejects(), 2);
  tracker.RecordAccepted();
  EXPECT_EQ(tracker.consecutive_rejects(), 0);
  // Drops are not rejects: the counter tracks outlier streaks only.
  tracker.RecordRejected();
  tracker.RecordDropped();
  EXPECT_EQ(tracker.consecutive_rejects(), 1);
}

TEST(ConfidenceTrackerTest, ResetClearsTheWindow) {
  ConfidenceTracker tracker(4);
  tracker.RecordDropped();
  tracker.RecordRejected();
  tracker.Reset();
  EXPECT_DOUBLE_EQ(tracker.confidence(), 1.0);
  EXPECT_EQ(tracker.consecutive_rejects(), 0);
}

TEST(OutlierBandTest, AcceptsWithinRatio) {
  EXPECT_TRUE(WithinOutlierBand(100.0, 100.0, 4.0));
  EXPECT_TRUE(WithinOutlierBand(390.0, 100.0, 4.0));
  EXPECT_TRUE(WithinOutlierBand(26.0, 100.0, 4.0));
}

TEST(OutlierBandTest, RejectsBeyondRatioEitherDirection) {
  EXPECT_FALSE(WithinOutlierBand(500.0, 100.0, 4.0));
  EXPECT_FALSE(WithinOutlierBand(20.0, 100.0, 4.0));
}

TEST(OutlierBandTest, NonPositiveValuesAcceptEverything) {
  // No estimate yet (or a degenerate sample): nothing to compare against.
  EXPECT_TRUE(WithinOutlierBand(1e9, 0.0, 4.0));
  EXPECT_TRUE(WithinOutlierBand(1e9, -1.0, 4.0));
  EXPECT_TRUE(WithinOutlierBand(0.0, 100.0, 4.0));
}

}  // namespace
}  // namespace vsched
