#include "src/probe/vtop.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/probe/pair_probe.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TopologySpec TwoSocketSmt() {
  TopologySpec spec;
  spec.sockets = 2;
  spec.cores_per_socket = 4;
  spec.threads_per_core = 2;
  return spec;
}

class VtopFixture : public ::testing::Test {
 protected:
  VtopFixture() : sim_(55), machine_(&sim_, TwoSocketSmt()) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(VtopFixture, PairProbeMeasuresSmtLatency) {
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].tid = 0;
  spec.vcpus[1].tid = 1;  // SMT siblings
  Vm vm(&sim_, &machine_, spec);
  PairProbeResult result;
  bool done = false;
  PairProbe probe(&vm.kernel(), 0, 1, PairProbeConfig{}, [&](const PairProbeResult& r) {
    result = r;
    done = true;
  });
  probe.Start();
  sim_.RunFor(SecToNs(1));
  ASSERT_TRUE(done);
  EXPECT_LT(result.latency_ns, 10.0);
  EXPECT_GE(result.transfers, 500);
}

TEST_F(VtopFixture, PairProbeDetectsStackedPair) {
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].tid = 0;
  spec.vcpus[1].tid = 0;  // stacked
  Vm vm(&sim_, &machine_, spec);
  PairProbeResult result;
  bool done = false;
  PairProbe probe(&vm.kernel(), 0, 1, PairProbeConfig{}, [&](const PairProbeResult& r) {
    result = r;
    done = true;
  });
  probe.Start();
  sim_.RunFor(SecToNs(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(std::isinf(result.latency_ns));
  EXPECT_GT(result.extensions, 0);  // Timeout was extended before deciding.
}

TEST_F(VtopFixture, PairProbeCrossSocketLatency) {
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].tid = 0;
  spec.vcpus[1].tid = 8;  // other socket
  Vm vm(&sim_, &machine_, spec);
  double latency = 0;
  bool done = false;
  PairProbe probe(&vm.kernel(), 0, 1, PairProbeConfig{}, [&](const PairProbeResult& r) {
    latency = r.latency_ns;
    done = true;
  });
  probe.Start();
  sim_.RunFor(SecToNs(1));
  ASSERT_TRUE(done);
  EXPECT_GT(latency, 80.0);
  EXPECT_LT(latency, 140.0);
}

// The Figure 10(b) configuration: vCPU0-3 two SMT pairs in socket 0;
// vCPU4/5 an SMT pair in socket 1; vCPU6/7 stacked in socket 1.
VmSpec Fig10bSpec() {
  VmSpec spec = MakeSimpleVmSpec("vm", 8);
  spec.vcpus[0].tid = 0;
  spec.vcpus[1].tid = 1;
  spec.vcpus[2].tid = 2;
  spec.vcpus[3].tid = 3;
  spec.vcpus[4].tid = 8;
  spec.vcpus[5].tid = 9;
  spec.vcpus[6].tid = 10;
  spec.vcpus[7].tid = 10;  // stacked
  return spec;
}

TEST_F(VtopFixture, FullProbeRecoversFig10bTopology) {
  Vm vm(&sim_, &machine_, Fig10bSpec());
  Vtop vtop(&vm.kernel());
  bool done = false;
  vtop.RunFullProbe([&] { done = true; });
  sim_.RunFor(SecToNs(10));
  ASSERT_TRUE(done);
  const GuestTopology& topo = vtop.probed_topology();
  // SMT pairs.
  EXPECT_TRUE(topo.smt_mask[0].Test(1));
  EXPECT_FALSE(topo.smt_mask[0].Test(2));
  EXPECT_TRUE(topo.smt_mask[2].Test(3));
  EXPECT_TRUE(topo.smt_mask[4].Test(5));
  // Stacked pair shares a hardware thread (and hence a "core group").
  EXPECT_TRUE(topo.stack_mask[6].Test(7));
  EXPECT_EQ(topo.stack_mask[6].Count(), 2);
  EXPECT_EQ(topo.stack_mask[0].Count(), 1);
  // Sockets.
  EXPECT_EQ(topo.llc_mask[0], CpuMask(0b00001111));
  EXPECT_EQ(topo.llc_mask[5], CpuMask(0b11110000));
}

TEST_F(VtopFixture, MatrixLatenciesAreOrdered) {
  Vm vm(&sim_, &machine_, Fig10bSpec());
  Vtop vtop(&vm.kernel());
  bool done = false;
  vtop.RunFullProbe([&] { done = true; });
  sim_.RunFor(SecToNs(10));
  ASSERT_TRUE(done);
  double smt = vtop.MatrixAt(0, 1);
  double socket = vtop.MatrixAt(0, 2);
  double cross = vtop.MatrixAt(0, 4);
  EXPECT_LT(smt, 12.0);
  EXPECT_GT(socket, 30.0);
  EXPECT_LT(socket, 70.0);
  EXPECT_GT(cross, 85.0);
  EXPECT_TRUE(std::isinf(vtop.MatrixAt(6, 7)));
}

TEST_F(VtopFixture, InferenceSkipsStackedPairs) {
  Vm vm(&sim_, &machine_, Fig10bSpec());
  Vtop vtop(&vm.kernel());
  bool done = false;
  vtop.RunFullProbe([&] { done = true; });
  sim_.RunFor(SecToNs(10));
  ASSERT_TRUE(done);
  // vCPU7's relations to 4 and 5 are inferable from vCPU6's.
  EXPECT_GT(vtop.pairs_inferred(), 0);
}

TEST_F(VtopFixture, ValidationPassesOnStableTopologyAndIsFaster) {
  Vm vm(&sim_, &machine_, Fig10bSpec());
  Vtop vtop(&vm.kernel());
  bool full_done = false;
  vtop.RunFullProbe([&] { full_done = true; });
  sim_.RunFor(SecToNs(10));
  ASSERT_TRUE(full_done);
  bool ok = false;
  bool validated = false;
  vtop.RunValidation([&](bool result) {
    ok = result;
    validated = true;
  });
  sim_.RunFor(SecToNs(10));
  ASSERT_TRUE(validated);
  EXPECT_TRUE(ok);
  EXPECT_LT(vtop.last_validate_duration(), vtop.last_full_duration());
}

TEST_F(VtopFixture, ValidationFailsAfterRepinning) {
  Vm vm(&sim_, &machine_, Fig10bSpec());
  Vtop vtop(&vm.kernel());
  bool full_done = false;
  vtop.RunFullProbe([&] { full_done = true; });
  sim_.RunFor(SecToNs(10));
  ASSERT_TRUE(full_done);
  // Move vCPU1 to the other socket: the believed SMT pair (0,1) is now
  // cross-socket.
  vm.PinVcpu(1, 12);
  bool ok = true;
  bool validated = false;
  vtop.RunValidation([&](bool result) {
    ok = result;
    validated = true;
  });
  sim_.RunFor(SecToNs(10));
  ASSERT_TRUE(validated);
  EXPECT_FALSE(ok);
}

TEST_F(VtopFixture, PeriodicLoopReprobesAfterChange) {
  Vm vm(&sim_, &machine_, Fig10bSpec());
  VtopConfig config;
  config.probe_interval = MsToNs(500);
  Vtop vtop(&vm.kernel(), config);
  int topo_updates = 0;
  GuestTopology latest;
  vtop.SetTopologyCallback([&](const GuestTopology& t) {
    ++topo_updates;
    latest = t;
  });
  vtop.Start();
  sim_.RunFor(SecToNs(4));
  EXPECT_EQ(topo_updates, 1);
  // Unstack vCPU7 onto a free core in socket 1.
  vm.PinVcpu(7, 12);
  sim_.RunFor(SecToNs(8));
  vtop.Stop();
  ASSERT_GE(topo_updates, 2);
  EXPECT_EQ(latest.stack_mask[6].Count(), 1);
  EXPECT_EQ(latest.stack_mask[7].Count(), 1);
  EXPECT_TRUE(latest.llc_mask[7].Test(4));
}

TEST_F(VtopFixture, SingleVcpuTopologyTrivial) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  Vtop vtop(&vm.kernel());
  bool done = false;
  vtop.RunFullProbe([&] { done = true; });
  sim_.RunFor(SecToNs(1));
  ASSERT_TRUE(done);
  EXPECT_EQ(vtop.probed_topology().num_vcpus(), 1);
}

}  // namespace
}  // namespace vsched
