#include "src/cluster/sharded_fleet.h"

#include <gtest/gtest.h>

#include "src/base/time.h"
#include "src/cluster/fleet_spec.h"
#include "src/core/config.h"
#include "src/fault/fault_plan.h"
#include "src/sim/shard_mailbox.h"

namespace vsched {
namespace {

constexpr uint64_t kSeed = 0x5AA3D;

FleetSpec Tiny() {
  FleetSpec spec;
  EXPECT_TRUE(LookupFleetSpec("tiny", &spec));
  return spec;
}

FleetTotals RunSharded(const FleetSpec& spec, const VSchedOptions& options, int shards,
                       TimeNs horizon, uint64_t seed = kSeed, const FaultPlan* plan = nullptr) {
  ShardedFleet fleet(spec, seed, options, shards, plan);
  fleet.Run(horizon);
  return fleet.totals();
}

void ExpectTotalsEqual(const FleetTotals& a, const FleetTotals& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.slo_violations, b.slo_violations);
  EXPECT_EQ(a.fleet_p50_ns, b.fleet_p50_ns);
  EXPECT_EQ(a.fleet_p99_ns, b.fleet_p99_ns);
  EXPECT_EQ(a.fleet_mean_ns, b.fleet_mean_ns);
  EXPECT_EQ(a.tenant_p99_max_ns, b.tenant_p99_max_ns);
  EXPECT_EQ(a.vms_placed, b.vms_placed);
  EXPECT_EQ(a.vms_departed, b.vms_departed);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.batch_chunks, b.batch_chunks);
  EXPECT_EQ(a.hosts_booted, b.hosts_booted);
  EXPECT_EQ(a.hosts_shutdown, b.hosts_shutdown);
  EXPECT_EQ(a.host_util_mean, b.host_util_mean);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.fault_applied, b.fault_applied);
}

TEST(ShardMailbox, DrainsInCanonicalDueOriginSeqOrder) {
  ShardMailbox mailbox;
  std::vector<int> order;
  // Posted deliberately out of order: a later due first, two origins
  // interleaved at the same due, and same-origin messages relying on seq.
  mailbox.Post(MsToNs(2), ShardMailbox::kControlPlane, [&] { order.push_back(5); });
  mailbox.Post(MsToNs(1), 1, [&] { order.push_back(3); });
  mailbox.Post(MsToNs(1), ShardMailbox::kControlPlane, [&] { order.push_back(1); });
  mailbox.Post(MsToNs(1), 1, [&] { order.push_back(4); });
  mailbox.Post(MsToNs(1), ShardMailbox::kControlPlane, [&] { order.push_back(2); });
  EXPECT_EQ(mailbox.next_due(), MsToNs(1));

  EXPECT_EQ(mailbox.DrainUpTo(MsToNs(1)), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(mailbox.pending(), 1u);
  EXPECT_EQ(mailbox.DrainUpTo(MsToNs(2)), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ShardMailbox, FollowUpPostsDeliverInTheSameDrain) {
  ShardMailbox mailbox;
  std::vector<int> order;
  mailbox.Post(MsToNs(1), ShardMailbox::kControlPlane, [&] {
    order.push_back(1);
    // A handler chaining another same-barrier action (boot completing and
    // immediately placing, say) must not wait a whole extra window.
    mailbox.Post(MsToNs(1), ShardMailbox::kControlPlane, [&] { order.push_back(2); });
  });
  EXPECT_EQ(mailbox.DrainUpTo(MsToNs(1)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ShardedFleet, LookaheadWindowIsControlLatencyGcd) {
  // tiny: gcd(10ms control, 20ms boot, 10ms copy, 1ms downtime) = 1ms, and
  // the tiny preset splits 4 hosts into two 2-host cells.
  ShardedFleet fleet(Tiny(), kSeed, VSchedOptions::Cfs(), /*shards=*/1);
  EXPECT_EQ(fleet.window(), MsToNs(1));
  EXPECT_EQ(fleet.num_cells(), 2);
}

TEST(ShardedFleet, TinyLifecycleCoversPlacementChurnAndPower) {
  FleetTotals t = RunSharded(Tiny(), VSchedOptions::Cfs(), /*shards=*/2, MsToNs(1000));

  // Same lifecycle coverage the sequential engine's tiny smoke pins: all
  // VMs placed, churn departs nearly all of them, and consolidation,
  // power-down, and real traffic all occur.
  EXPECT_EQ(t.vms_placed, 10);
  EXPECT_EQ(t.vms_rejected, 0);
  EXPECT_GE(t.vms_departed, 8);
  EXPECT_GT(t.requests, 0u);
  EXPECT_GT(t.fleet_p99_ns, t.fleet_p50_ns);
  EXPECT_GT(t.migrations, 0u);
  EXPECT_GT(t.hosts_shutdown, 0);
  EXPECT_GT(t.energy_j, 0);
  EXPECT_GT(t.host_util_mean, 0);
}

TEST(ShardedFleet, TotalsAreIdenticalAtAnyShardCount) {
  // The determinism contract of --shards: the partition into cells is fixed
  // by the spec, so the worker-thread count may not change a single total —
  // including the floating-point ones, whose accumulation order is pinned.
  FleetTotals one = RunSharded(Tiny(), VSchedOptions::Full(), 1, MsToNs(800));
  FleetTotals two = RunSharded(Tiny(), VSchedOptions::Full(), 2, MsToNs(800));
  FleetTotals four = RunSharded(Tiny(), VSchedOptions::Full(), 4, MsToNs(800));
  ExpectTotalsEqual(one, two);
  ExpectTotalsEqual(one, four);
}

TEST(ShardedFleet, ChaosReplayIsIdenticalAcrossShardCounts) {
  FaultPlan plan;
  ASSERT_TRUE(LookupFaultPlan("everything", &plan));
  FleetTotals one = RunSharded(Tiny(), VSchedOptions::Full(), 1, MsToNs(800), kSeed, &plan);
  FleetTotals four = RunSharded(Tiny(), VSchedOptions::Full(), 4, MsToNs(800), kSeed, &plan);
  EXPECT_GT(one.fault_applied, 0u);
  ExpectTotalsEqual(one, four);
}

TEST(ShardedFleet, DifferentSeedsDiffer) {
  FleetTotals a = RunSharded(Tiny(), VSchedOptions::Cfs(), 2, MsToNs(600), 1);
  FleetTotals b = RunSharded(Tiny(), VSchedOptions::Cfs(), 2, MsToNs(600), 2);
  EXPECT_NE(a.requests, b.requests);
}

TEST(ShardedFleet, MigrationStaysWithinTheCell) {
  // The cell is the migration domain: after any number of consolidations,
  // every tenant's host must still belong to the cell range it was placed
  // into (host ids are contiguous per cell).
  FleetSpec spec = Tiny();
  ShardedFleet fleet(spec, kSeed, VSchedOptions::Cfs(), /*shards=*/2);
  fleet.Run(MsToNs(1000));
  EXPECT_GT(fleet.totals().migrations, 0u);
  for (int id = 0; id < fleet.num_tenants(); ++id) {
    const TenantVm& tenant = fleet.tenant(id);
    if (tenant.host_id < 0) {
      continue;  // never placed
    }
    EXPECT_LT(tenant.host_id, spec.hosts);
  }
}

TEST(ShardedFleet, PerCellEventBudgetTripsDeterministically) {
  FleetSpec spec = Tiny();
  ShardedFleet a(spec, kSeed, VSchedOptions::Cfs(), /*shards=*/1);
  a.SetEventBudgetPerCell(2000);
  EXPECT_THROW(a.Run(MsToNs(1000)), SimBudgetExceeded);

  // Parallel execution rethrows the same (lowest-cell) trip; dispatched
  // event counts at the abort point match because cells stop at the same
  // windows.
  ShardedFleet b(spec, kSeed, VSchedOptions::Cfs(), /*shards=*/4);
  b.SetEventBudgetPerCell(2000);
  EXPECT_THROW(b.Run(MsToNs(1000)), SimBudgetExceeded);
}

}  // namespace
}  // namespace vsched
