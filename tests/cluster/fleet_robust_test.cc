// Fleet-level robustness: under chaos or an adversarial co-tenant, guests
// running with robust.enabled must actually take their degradation paths —
// pessimistic capacity publishes, quarantine, and component degradation
// (IVH pause / RWC freeze) — and the fleet must surface those in its totals
// rather than silently absorbing them. Clean fleets must stay silent.
#include <gtest/gtest.h>

#include "src/base/time.h"
#include "src/cluster/fleet.h"
#include "src/cluster/fleet_spec.h"
#include "src/cluster/sharded_fleet.h"
#include "src/core/config.h"
#include "src/fault/fault_plan.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

constexpr uint64_t kSeed = 0xB0B57;

FleetSpec Tiny() {
  FleetSpec spec;
  EXPECT_TRUE(LookupFleetSpec("tiny", &spec));
  return spec;
}

// Guest stack with the anti-evasion layer armed. The probing cadence is
// taken from the FleetSpec (the Fleet ctor overrides the vcap/vact knobs),
// so only the robust switch matters here.
VSchedOptions RobustGuest() {
  VSchedOptions options = VSchedOptions::Full();
  options.robust.enabled = true;
  return options;
}

// Tiny's population churns every ~150 ms — a tenant lives for about one
// probe window, far too short for any plausibility streak. Detection needs
// tenants that survive the horizon, so pin the same hosts under a small
// immortal population instead.
FleetSpec LongLived() {
  FleetSpec spec = Tiny();
  spec.name = "tiny-longlived";
  spec.vms = 6;
  spec.arrival_window = MsToNs(50);
  spec.vm_lifetime_mean = 0;  // live to the horizon
  return spec;
}

FaultPlan Plan(const std::string& name) {
  FaultPlan plan;
  EXPECT_TRUE(LookupFaultPlan(name, &plan));
  return plan;
}

FleetTotals RunFleet(const FleetSpec& spec, const VSchedOptions& options,
                     const FaultPlan* plan, TimeNs horizon = SecToNs(4)) {
  Simulation sim(kSeed);
  Fleet fleet(&sim, spec, options, plan);
  fleet.Start();
  sim.RunFor(horizon);
  fleet.Finish();
  return fleet.totals();
}

TEST(FleetRobustTest, CleanRobustFleetReportsNoDetections) {
  FleetTotals t = RunFleet(Tiny(), RobustGuest(), nullptr);
  EXPECT_EQ(t.adversary_activations, 0u);
  EXPECT_EQ(t.degraded_tenants, 0);
  EXPECT_EQ(t.pessimistic_publishes, 0u);
  EXPECT_EQ(t.quarantine_events, 0u);
}

TEST(FleetRobustTest, ChaosFleetFiresDegradationPaths) {
  FaultPlan plan = Plan("everything");
  FleetTotals t = RunFleet(LongLived(), RobustGuest(), &plan);

  // Chaos hosts injure a quarter of the fleet; at least one robust guest
  // must notice (degradation transition) and contain (pessimistic publish
  // or quarantine) rather than publishing the corrupted view unchanged.
  EXPECT_GT(t.fault_applied, 0u);
  EXPECT_GT(t.degraded_tenants, 0);
  EXPECT_GT(t.pessimistic_publishes + t.quarantine_events, 0u);
}

TEST(FleetRobustTest, AdversarialTenantsDetectedOnlyWithRobustOn) {
  FaultPlan plan = Plan("adversary-all");

  VSchedOptions off = RobustGuest();
  off.robust.enabled = false;
  FleetTotals blind = RunFleet(LongLived(), off, &plan);
  EXPECT_GT(blind.adversary_activations, 0u);
  EXPECT_EQ(blind.degraded_tenants, 0);
  EXPECT_EQ(blind.pessimistic_publishes, 0u);
  EXPECT_EQ(blind.quarantine_events, 0u);

  FleetTotals armed = RunFleet(LongLived(), RobustGuest(), &plan);
  EXPECT_GT(armed.adversary_activations, 0u);
  // The combined attack must trip at least one guest's degradation tracker
  // (IVH pause / RWC freeze / quarantine all count as transitions).
  EXPECT_GT(armed.degraded_tenants, 0);
}

// The detection aggregates are integer sums, so the sharded engine must
// merge them identically for any shard count — the property the
// --adversary fleet rows' byte-compare rests on.
TEST(FleetRobustTest, ShardedDetectionTotalsMatchAcrossShardCounts) {
  FaultPlan plan = Plan("adversary-all");
  auto run = [&](int shards) {
    ShardedFleet fleet(LongLived(), kSeed, RobustGuest(), shards, &plan);
    fleet.Run(SecToNs(3));
    return fleet.totals();
  };
  FleetTotals s1 = run(1);
  FleetTotals s3 = run(3);
  EXPECT_EQ(s1.adversary_activations, s3.adversary_activations);
  EXPECT_EQ(s1.degraded_tenants, s3.degraded_tenants);
  EXPECT_EQ(s1.pessimistic_publishes, s3.pessimistic_publishes);
  EXPECT_EQ(s1.quarantine_events, s3.quarantine_events);
  EXPECT_GT(s1.adversary_activations, 0u);
}

}  // namespace
}  // namespace vsched
