#include "src/cluster/placement.h"

#include <gtest/gtest.h>

namespace vsched {
namespace {

HostLoadView Host(int id, bool on, int committed, int capacity) {
  HostLoadView v;
  v.host_id = id;
  v.accepts_vms = on;
  v.committed_vcpus = committed;
  v.capacity_vcpus = capacity;
  return v;
}

TEST(GreedyLoad, PicksLeastCommittedRatio) {
  GreedyLoadPolicy policy;
  std::vector<HostLoadView> hosts = {
      Host(0, true, 12, 16),
      Host(1, true, 4, 16),
      Host(2, true, 8, 16),
  };
  EXPECT_EQ(policy.Pick(hosts, 4, -1), 1);
}

TEST(GreedyLoad, TiesBreakOnLowestHostId) {
  GreedyLoadPolicy policy;
  std::vector<HostLoadView> hosts = {
      Host(0, true, 4, 16),
      Host(1, true, 4, 16),
      Host(2, true, 4, 16),
  };
  EXPECT_EQ(policy.Pick(hosts, 2, -1), 0);
}

TEST(GreedyLoad, SkipsPoweredOffAndFullHosts) {
  GreedyLoadPolicy policy;
  std::vector<HostLoadView> hosts = {
      Host(0, false, 0, 16),   // off: most attractive load, but not accepting
      Host(1, true, 15, 16),   // on, but 4 vCPUs do not fit
      Host(2, true, 10, 16),
  };
  EXPECT_EQ(policy.Pick(hosts, 4, -1), 2);
}

TEST(GreedyLoad, HonorsExcludeHost) {
  GreedyLoadPolicy policy;
  std::vector<HostLoadView> hosts = {
      Host(0, true, 2, 16),
      Host(1, true, 6, 16),
  };
  EXPECT_EQ(policy.Pick(hosts, 2, /*exclude_host=*/0), 1);
}

TEST(GreedyLoad, ReturnsMinusOneWhenNothingFits) {
  GreedyLoadPolicy policy;
  std::vector<HostLoadView> hosts = {
      Host(0, false, 0, 16),
      Host(1, true, 14, 16),
  };
  EXPECT_EQ(policy.Pick(hosts, 4, -1), -1);
}

TEST(BestFit, PicksMostCommittedThatStillFits) {
  BestFitPolicy policy;
  std::vector<HostLoadView> hosts = {
      Host(0, true, 4, 16),
      Host(1, true, 13, 16),  // fullest, but 4 vCPUs do not fit
      Host(2, true, 10, 16),  // fullest that fits
  };
  EXPECT_EQ(policy.Pick(hosts, 4, -1), 2);
}

TEST(BestFit, TiesBreakOnLowestHostId) {
  BestFitPolicy policy;
  std::vector<HostLoadView> hosts = {
      Host(0, true, 8, 16),
      Host(1, true, 8, 16),
  };
  EXPECT_EQ(policy.Pick(hosts, 4, -1), 0);
}

TEST(PlacementFactory, KnownNamesAndUnknownName) {
  auto greedy = MakePlacementPolicy("greedy-load");
  ASSERT_NE(greedy, nullptr);
  EXPECT_STREQ(greedy->name(), "greedy-load");

  auto best = MakePlacementPolicy("best-fit");
  ASSERT_NE(best, nullptr);
  EXPECT_STREQ(best->name(), "best-fit");

  EXPECT_EQ(MakePlacementPolicy("round-robin"), nullptr);
}

}  // namespace
}  // namespace vsched
