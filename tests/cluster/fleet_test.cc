#include "src/cluster/fleet.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/base/time.h"
#include "src/cluster/fleet_spec.h"
#include "src/core/config.h"
#include "src/fault/fault_plan.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

constexpr uint64_t kSeed = 0xF1EE7;

FleetSpec Tiny() {
  FleetSpec spec;
  EXPECT_TRUE(LookupFleetSpec("tiny", &spec));
  return spec;
}

// Runs a fleet to the horizon and returns its frozen totals.
FleetTotals RunFleet(const FleetSpec& spec, const VSchedOptions& options,
                     TimeNs horizon, uint64_t seed = kSeed,
                     const FaultPlan* plan = nullptr) {
  Simulation sim(seed);
  Fleet fleet(&sim, spec, options, plan);
  fleet.Start();
  sim.RunFor(horizon);
  fleet.Finish();
  return fleet.totals();
}

TEST(Fleet, TinyLifecycleCoversPlacementChurnAndPower) {
  FleetTotals t = RunFleet(Tiny(), VSchedOptions::Cfs(), MsToNs(1000));

  // All 10 VMs arrive within the 100 ms window and the 150 ms mean lifetime
  // means essentially all depart inside a 1 s horizon.
  EXPECT_EQ(t.vms_placed, 10);
  EXPECT_EQ(t.vms_rejected, 0);
  EXPECT_GE(t.vms_departed, 8);

  EXPECT_GT(t.requests, 0u);
  EXPECT_GT(t.fleet_p99_ns, t.fleet_p50_ns);

  // The tiny preset is tuned so boots, consolidation migrations, and idle
  // power-downs all occur; CI smoke (.github/workflows/ci.yml) relies on the
  // nonzero-migration property too.
  EXPECT_GT(t.migrations, 0u);
  EXPECT_GT(t.hosts_shutdown, 0);
  EXPECT_GE(t.hosts_on_at_end, Tiny().min_hosts_on);
  EXPECT_GT(t.energy_j, 0);
  EXPECT_GT(t.host_util_mean, 0);
}

TEST(Fleet, SameSeedReplaysIdentically) {
  FleetTotals a = RunFleet(Tiny(), VSchedOptions::Full(), MsToNs(600));
  FleetTotals b = RunFleet(Tiny(), VSchedOptions::Full(), MsToNs(600));

  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.slo_violations, b.slo_violations);
  EXPECT_EQ(a.fleet_p50_ns, b.fleet_p50_ns);
  EXPECT_EQ(a.fleet_p99_ns, b.fleet_p99_ns);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.batch_chunks, b.batch_chunks);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.host_util_mean, b.host_util_mean);
}

TEST(Fleet, DifferentSeedsDiffer) {
  FleetTotals a = RunFleet(Tiny(), VSchedOptions::Cfs(), MsToNs(600), 1);
  FleetTotals b = RunFleet(Tiny(), VSchedOptions::Cfs(), MsToNs(600), 2);
  // Arrival times, lifetimes, and service draws all come from the fleet's
  // forked RNG stream, so distinct seeds must not collide.
  EXPECT_NE(a.requests, b.requests);
}

// Regression: tenants depart (and migrate) mid-simulation while vSched
// guests have IVH handshakes and rescheduling IPIs in flight. Tearing down
// a tenant used to leave [this]-capturing closures in pending-IPI queues
// and After events, which a later bandwidth reshape on a surviving tenant
// would drain into freed Ivh/GuestKernel objects (use-after-free; caught
// under ASan). The tiny preset's churn plus Full options reproduces it.
TEST(Fleet, MidSimTeardownWithVschedGuestsInFlight) {
  FleetSpec spec = Tiny();
  // Faster probing widens the window where a departure races a handshake.
  spec.probe_interval = MsToNs(20);
  spec.probe_window = MsToNs(1);
  FleetTotals t = RunFleet(spec, VSchedOptions::Full(), MsToNs(1000));
  EXPECT_GE(t.vms_departed, 8);
  EXPECT_GT(t.migrations, 0u);
}

// Returns the largest per-host committed-vCPU count at the horizon.
int MaxCommitted(const FleetSpec& spec, uint64_t seed = kSeed) {
  Simulation sim(seed);
  Fleet fleet(&sim, spec, VSchedOptions::Cfs());
  fleet.Start();
  sim.RunFor(MsToNs(400));
  // Sample commits before Finish(): teardown vacates every tenant's threads.
  int max_committed = 0;
  for (int id = 0; id < spec.hosts; ++id) {
    max_committed = std::max(max_committed, fleet.host(id).committed_vcpus);
  }
  fleet.Finish();
  EXPECT_EQ(fleet.totals().vms_placed, 10);
  return max_committed;
}

TEST(Fleet, BestFitPlacementConcentratesLoad) {
  FleetSpec spread = Tiny();
  spread.vm_lifetime_mean = 0;   // keep everyone alive: pure placement test
  spread.consolidate_below = 0;  // no migration assist either
  FleetSpec packed = spread;
  packed.placement = "best-fit";

  // best-fit drives its fullest host strictly higher than the spreading
  // default does (tiny: 20 vCPUs over two On hosts of capacity 12 end up
  // 12/8 packed vs. 10/10 spread), which is the point of the policy axis.
  EXPECT_GT(MaxCommitted(packed), MaxCommitted(spread));
}

TEST(Fleet, FaultPlanAppliesAndReplays) {
  FaultPlan plan;
  ASSERT_TRUE(LookupFaultPlan("everything", &plan));
  FleetTotals a = RunFleet(Tiny(), VSchedOptions::Full(), MsToNs(800), kSeed, &plan);
  FleetTotals b = RunFleet(Tiny(), VSchedOptions::Full(), MsToNs(800), kSeed, &plan);
  EXPECT_GT(a.fault_applied, 0u);
  EXPECT_EQ(a.fault_applied, b.fault_applied);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.fleet_p99_ns, b.fleet_p99_ns);
}

}  // namespace
}  // namespace vsched
