#include "src/sim/simulation.h"

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(SimulationTest, RunForAdvancesClock) {
  Simulation sim(1);
  sim.RunFor(MsToNs(5));
  EXPECT_EQ(sim.now(), MsToNs(5));
  sim.RunFor(MsToNs(5));
  EXPECT_EQ(sim.now(), MsToNs(10));
}

TEST(SimulationTest, AfterSchedulesRelative) {
  Simulation sim(1);
  sim.RunFor(100);
  TimeNs fired_at = -1;
  sim.After(50, [&] { fired_at = sim.now(); });
  sim.RunFor(1000);
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulationTest, PeriodicFiresRepeatedly) {
  Simulation sim(1);
  int count = 0;
  sim.Every(MsToNs(1), [&] { ++count; });
  sim.RunFor(MsToNs(10));
  EXPECT_EQ(count, 10);
}

TEST(SimulationTest, CancelPeriodicStopsFiring) {
  Simulation sim(1);
  int count = 0;
  auto* handle = sim.Every(MsToNs(1), [&] { ++count; });
  sim.RunFor(MsToNs(5));
  sim.CancelPeriodic(handle);
  sim.RunFor(MsToNs(5));
  EXPECT_EQ(count, 5);
}

TEST(SimulationTest, CancelPeriodicFromInsideCallback) {
  Simulation sim(1);
  int count = 0;
  Simulation::PeriodicHandle* handle = nullptr;
  handle = sim.Every(MsToNs(1), [&] {
    if (++count == 3) {
      sim.CancelPeriodic(handle);
    }
  });
  sim.RunFor(MsToNs(10));
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, ForkRngDeterministic) {
  Simulation a(99);
  Simulation b(99);
  Rng ra = a.ForkRng();
  Rng rb = b.ForkRng();
  EXPECT_EQ(ra.NextU64(), rb.NextU64());
}

}  // namespace
}  // namespace vsched
