#include "src/sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.NextEventTime(), kTimeInfinity);
  EXPECT_FALSE(q.RunOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  while (q.RunOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, EqualTimestampsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  while (q.RunOne()) {
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, AdvancesClockToEventTime) {
  EventQueue q;
  TimeNs seen = -1;
  q.ScheduleAt(42, [&] { seen = q.now(); });
  q.RunOne();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(q.RunOne());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  EventId id = q.ScheduleAt(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(EventId()));
}

TEST(EventQueueTest, CancelAfterExecutionReturnsFalse) {
  EventQueue q;
  EventId id = q.ScheduleAt(1, [] {});
  q.RunOne();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(10, [&] { ++count; });
  q.ScheduleAt(20, [&] { ++count; });
  q.ScheduleAt(30, [&] { ++count; });
  q.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 20);
  q.RunUntil(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      q.ScheduleAfter(10, chain);
    }
  };
  q.ScheduleAt(0, chain);
  q.RunUntil(1000);
  EXPECT_EQ(depth, 5);
}

TEST(EventQueueTest, ScheduleAtNowRunsImmediatelyNext) {
  EventQueue q;
  q.ScheduleAt(10, [] {});
  q.RunOne();
  bool ran = false;
  q.ScheduleAt(q.now(), [&] { ran = true; });
  q.RunOne();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueueTest, PendingCountTracksLiveEvents) {
  EventQueue q;
  EventId a = q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunOne();
  EXPECT_EQ(q.PendingCount(), 0u);
}

TEST(EventQueueTest, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  int ran = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.ScheduleAt(i, [&] { ++ran; }));
  }
  for (int i = 0; i < 1000; i += 2) {
    q.Cancel(ids[i]);
  }
  q.RunUntil(2000);
  EXPECT_EQ(ran, 500);
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.RunOne();
  EXPECT_DEATH(q.ScheduleAt(50, [] {}), "past");
}

}  // namespace
}  // namespace vsched
