#include "src/sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/base/perf_counters.h"

namespace vsched {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.NextEventTime(), kTimeInfinity);
  EXPECT_FALSE(q.RunOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  while (q.RunOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, EqualTimestampsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  while (q.RunOne()) {
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, AdvancesClockToEventTime) {
  EventQueue q;
  TimeNs seen = -1;
  q.ScheduleAt(42, [&] { seen = q.now(); });
  q.RunOne();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(q.RunOne());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  EventId id = q.ScheduleAt(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(EventId()));
}

TEST(EventQueueTest, CancelAfterExecutionReturnsFalse) {
  EventQueue q;
  EventId id = q.ScheduleAt(1, [] {});
  q.RunOne();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(10, [&] { ++count; });
  q.ScheduleAt(20, [&] { ++count; });
  q.ScheduleAt(30, [&] { ++count; });
  q.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 20);
  q.RunUntil(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      q.ScheduleAfter(10, chain);
    }
  };
  q.ScheduleAt(0, chain);
  q.RunUntil(1000);
  EXPECT_EQ(depth, 5);
}

TEST(EventQueueTest, ScheduleAtNowRunsImmediatelyNext) {
  EventQueue q;
  q.ScheduleAt(10, [] {});
  q.RunOne();
  bool ran = false;
  q.ScheduleAt(q.now(), [&] { ran = true; });
  q.RunOne();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueueTest, PendingCountTracksLiveEvents) {
  EventQueue q;
  EventId a = q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunOne();
  EXPECT_EQ(q.PendingCount(), 0u);
}

TEST(EventQueueTest, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  int ran = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.ScheduleAt(i, [&] { ++ran; }));
  }
  for (int i = 0; i < 1000; i += 2) {
    q.Cancel(ids[i]);
  }
  q.RunUntil(2000);
  EXPECT_EQ(ran, 500);
}

TEST(EventQueueTest, ConstInspectionDoesNotMutate) {
  EventQueue q;
  const EventQueue& cq = q;
  EXPECT_TRUE(cq.Empty());
  EXPECT_EQ(cq.NextEventTime(), kTimeInfinity);
  EventId id = q.ScheduleAt(5, [] {});
  EXPECT_FALSE(cq.Empty());
  EXPECT_EQ(cq.NextEventTime(), 5);
  q.Cancel(id);
  EXPECT_TRUE(cq.Empty());
  EXPECT_EQ(cq.NextEventTime(), kTimeInfinity);
  EXPECT_EQ(cq.PendingCount(), 0u);
}

TEST(EventQueueTest, StaleIdAfterSlotReuseMisses) {
  EventQueue q;
  EventId a = q.ScheduleAt(10, [] {});
  EXPECT_TRUE(q.Cancel(a));
  // The next schedule recycles a's pool slot; the generation tag must keep
  // the stale handle from cancelling the new occupant.
  bool ran = false;
  EventId b = q.ScheduleAt(20, [&] { ran = true; });
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_TRUE(q.RunOne());
  EXPECT_TRUE(ran);
  EXPECT_FALSE(q.Cancel(b));
}

TEST(EventQueueTest, SelfCancelDuringExecutionMisses) {
  EventQueue q;
  int runs = 0;
  EventId id;
  id = q.ScheduleAt(5, [&] {
    ++runs;
    EXPECT_FALSE(q.Cancel(id));
  });
  EXPECT_TRUE(q.RunOne());
  EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, CancelledSlotIsRecycledNotLeaked) {
  EventQueue q;
  // Far more schedule/cancel cycles than one slab holds: without free-list
  // recycling this would allocate ~40 slabs; with it, exactly one.
  PerfCounters counters;
  PerfCounters::Scope scope(&counters);
  EventQueue pooled;
  for (int i = 0; i < 10000; ++i) {
    EventId id = pooled.ScheduleAt(i, [] {});
    EXPECT_TRUE(pooled.Cancel(id));
  }
  EXPECT_EQ(counters.event_slab_allocs, 1u);
  EXPECT_EQ(counters.events_cancelled, 10000u);
}

TEST(EventQueueTest, OversizedCaptureFallsBackToHeap) {
  PerfCounters counters;
  PerfCounters::Scope scope(&counters);
  EventQueue q;
  struct Big {
    uint64_t words[16];  // 128 bytes: over the inline buffer
  };
  Big big{};
  big.words[15] = 7;
  uint64_t seen = 0;
  q.ScheduleAt(1, [big, &seen] { seen = big.words[15]; });
  EXPECT_EQ(counters.callback_heap_allocs, 1u);
  EXPECT_TRUE(q.RunOne());
  EXPECT_EQ(seen, 7u);
}

TEST(EventQueueTest, InlineCaptureDoesNotHeapAllocate) {
  PerfCounters counters;
  PerfCounters::Scope scope(&counters);
  EventQueue q;
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    q.ScheduleAt(i, [&hits] { ++hits; });
  }
  while (q.RunOne()) {
  }
  EXPECT_EQ(hits, 100);
  EXPECT_EQ(counters.callback_heap_allocs, 0u);
  EXPECT_EQ(counters.events_executed, 100u);
  EXPECT_EQ(counters.events_scheduled, 100u);
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.RunOne();
  EXPECT_DEATH(q.ScheduleAt(50, [] {}), "past");
}

}  // namespace
}  // namespace vsched
