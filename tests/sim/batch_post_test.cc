// Differential tests for the batched scheduling entry points: a
// EventQueue::PostBatch of N events and a TimerWheel::ArmBatch of N arms
// must produce byte-for-byte the dispatch sequence of N single
// ScheduleAt/Arm calls made in the same order. Both claims rest on dispatch
// being a total order — (when, seq) for the heap, (deadline, TimerId) for
// the wheel — independent of internal container shape, so the tests drive
// randomized mixed workloads and compare full dispatch traces.
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/timer_wheel.h"

namespace vsched {
namespace {

// Tagged dispatch record: (time fired, tag assigned at scheduling time).
using Trace = std::vector<std::pair<TimeNs, int>>;

Trace DrainQueue(EventQueue& q) {
  Trace trace;
  while (q.RunOne()) {
  }
  return trace;
}

TEST(PostBatchTest, MatchesSinglePostsExactly) {
  // One queue schedules via N singles, the other via PostBatch, from
  // identical random draws; their dispatch traces must be identical.
  Rng rng(0xBA7C);
  for (int round = 0; round < 20; ++round) {
    EventQueue singles;
    EventQueue batched;
    Trace trace_singles;
    Trace trace_batched;

    // A shared prefix of individually scheduled events, some cancelled, so
    // the batch lands in a non-trivial heap with a live free list.
    const int prefix = static_cast<int>(rng.UniformInt(0, 40));
    std::vector<EventId> cancel_singles;
    std::vector<EventId> cancel_batched;
    for (int i = 0; i < prefix; ++i) {
      TimeNs when = rng.UniformInt(0, UsToNs(100));
      int tag = 1000 + i;
      EventId a = singles.ScheduleAt(when, [&trace_singles, &singles, tag] {
        trace_singles.emplace_back(singles.now(), tag);
      });
      EventId b = batched.ScheduleAt(when, [&trace_batched, &batched, tag] {
        trace_batched.emplace_back(batched.now(), tag);
      });
      if (rng.UniformInt(0, 3) == 0) {
        cancel_singles.push_back(a);
        cancel_batched.push_back(b);
      }
    }
    for (size_t i = 0; i < cancel_singles.size(); ++i) {
      EXPECT_TRUE(singles.Cancel(cancel_singles[i]));
      EXPECT_TRUE(batched.Cancel(cancel_batched[i]));
    }

    // The batch itself: duplicate timestamps on purpose (FIFO among equals
    // is the property most at risk from heap-shape differences).
    const int n = static_cast<int>(rng.UniformInt(1, 200));
    std::vector<TimeNs> whens;
    for (int i = 0; i < n; ++i) {
      whens.push_back(rng.UniformInt(0, UsToNs(50)));
    }
    for (int i = 0; i < n; ++i) {
      singles.ScheduleAt(whens[static_cast<size_t>(i)], [&trace_singles, &singles, i] {
        trace_singles.emplace_back(singles.now(), i);
      });
    }
    batched.PostBatch(whens, [&trace_batched, &batched](size_t i) {
      return [&trace_batched, &batched, i] {
        trace_batched.emplace_back(batched.now(), static_cast<int>(i));
      };
    });
    EXPECT_EQ(singles.PendingCount(), batched.PendingCount());

    // A suffix of singles posted after the batch: seq numbering must have
    // advanced identically on both sides.
    const int suffix = static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < suffix; ++i) {
      TimeNs when = rng.UniformInt(0, UsToNs(100));
      int tag = 2000 + i;
      singles.ScheduleAt(when, [&trace_singles, &singles, tag] {
        trace_singles.emplace_back(singles.now(), tag);
      });
      batched.ScheduleAt(when, [&trace_batched, &batched, tag] {
        trace_batched.emplace_back(batched.now(), tag);
      });
    }

    DrainQueue(singles);
    DrainQueue(batched);
    EXPECT_EQ(trace_singles, trace_batched) << "round " << round;
  }
}

TEST(PostBatchTest, BothHeapRepairStrategiesPreserveOrder) {
  // Small batch on a large heap takes the per-element sift-up path; large
  // batch on a small heap takes the Floyd rebuild. Same trace either way.
  for (int big_heap = 0; big_heap <= 1; ++big_heap) {
    EventQueue singles;
    EventQueue batched;
    Trace ts;
    Trace tb;
    const int existing = big_heap ? 500 : 4;
    for (int i = 0; i < existing; ++i) {
      TimeNs when = 10 + 7 * i;
      singles.ScheduleAt(when, [&ts, &singles, i] { ts.emplace_back(singles.now(), i); });
      batched.ScheduleAt(when, [&tb, &batched, i] { tb.emplace_back(batched.now(), i); });
    }
    std::vector<TimeNs> whens;
    const int n = big_heap ? 8 : 300;  // < existing/8 vs >= existing/8
    for (int i = 0; i < n; ++i) {
      whens.push_back(5 + 11 * (i % 97));
    }
    for (int i = 0; i < n; ++i) {
      singles.ScheduleAt(whens[static_cast<size_t>(i)],
                         [&ts, &singles, i] { ts.emplace_back(singles.now(), 10000 + i); });
    }
    batched.PostBatch(whens, [&tb, &batched](size_t i) {
      return [&tb, &batched, i] { tb.emplace_back(batched.now(), 10000 + static_cast<int>(i)); };
    });
    DrainQueue(singles);
    DrainQueue(batched);
    EXPECT_EQ(ts, tb) << "big_heap=" << big_heap;
  }
}

void DrainWheel(TimerWheel& wheel, TimeNs until) {
  for (;;) {
    TimeNs next = wheel.NextDeadlineAtMost(until);
    if (next == kTimeInfinity) {
      return;
    }
    wheel.RunOne(next);
  }
}

TEST(ArmBatchTest, MatchesSingleArmsExactly) {
  // Two wheels with identically registered timers; one armed by N Arm
  // calls, the other by one ArmBatch over the same (id, when) list. The
  // list includes re-arms of already-armed timers and deadlines spanning
  // the ready-heap horizon, near buckets, and multi-cascade far buckets.
  Rng rng(0xA8B7);
  for (int round = 0; round < 10; ++round) {
    TimerWheel s2;
    TimerWheel b2;
    Trace ts;
    Trace tb;
    const int kTimers = 64;
    std::vector<TimerId> ids_s;
    std::vector<TimerId> ids_b;
    for (int i = 0; i < kTimers; ++i) {
      // Tag with the timer index; the fire timestamp is recovered from the
      // armed deadline (read before dispatch pops it) via DrainWheel order,
      // so equal traces mean equal (deadline, id) dispatch sequences.
      ids_s.push_back(s2.Register([&ts, &s2, i] { ts.emplace_back(s2.fired_count(), i); }));
      ids_b.push_back(b2.Register([&tb, &b2, i] { tb.emplace_back(b2.fired_count(), i); }));
    }

    // Pre-arm a random subset individually on both wheels.
    for (int i = 0; i < kTimers; ++i) {
      if (rng.UniformInt(0, 1) == 0) {
        TimeNs when = 1 + rng.UniformInt(0, MsToNs(20));
        s2.Arm(ids_s[static_cast<size_t>(i)], when);
        b2.Arm(ids_b[static_cast<size_t>(i)], when);
      }
    }

    // The batch: random ids (some already armed — ArmBatch must re-arm),
    // deadlines spread across wheel bands.
    const int n = static_cast<int>(rng.UniformInt(1, 100));
    std::vector<std::pair<TimerId, TimeNs>> batch_b;
    std::vector<std::pair<size_t, TimeNs>> draws;
    for (int i = 0; i < n; ++i) {
      size_t idx = static_cast<size_t>(rng.UniformInt(0, kTimers - 1));
      int band = static_cast<int>(rng.UniformInt(0, 2));
      TimeNs when = band == 0   ? 1 + rng.UniformInt(0, UsToNs(60))   // ready horizon
                    : band == 1 ? UsToNs(70) + rng.UniformInt(0, MsToNs(4))  // level-1
                                : MsToNs(5) + rng.UniformInt(0, MsToNs(200));  // cascades
      draws.emplace_back(idx, when);
    }
    for (const auto& [idx, when] : draws) {
      s2.Arm(ids_s[idx], when);
    }
    for (const auto& [idx, when] : draws) {
      batch_b.emplace_back(ids_b[idx], when);
    }
    b2.ArmBatch(batch_b);
    EXPECT_EQ(s2.ArmedCount(), b2.ArmedCount());

    DrainWheel(s2, MsToNs(300));
    DrainWheel(b2, MsToNs(300));
    EXPECT_EQ(ts, tb) << "round " << round;
    EXPECT_EQ(s2.fired_count(), b2.fired_count());
    EXPECT_EQ(s2.ArmedCount(), 0u);
  }
}

}  // namespace
}  // namespace vsched
