// Randomized differential test: the pooled/heap-indexed EventQueue against a
// naive ordered-map reference model, over schedule/cancel/run traces.
//
// The reference model is deliberately trivial — an ordered map keyed by
// (timestamp, schedule order) — so any disagreement in execution order,
// pending counts, next-event times, or cancellation results indicts the real
// queue's slab pool, free list, generation tags, or 4-ary heap.
#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/event_queue.h"

namespace vsched {
namespace {

struct RefModel {
  // (when, schedule order) -> tag. Mirrors the queue's FIFO-at-equal-times
  // contract because schedule order increments monotonically.
  std::map<std::pair<TimeNs, uint64_t>, int> pending;
  uint64_t next_order = 0;

  std::pair<TimeNs, uint64_t> Insert(TimeNs when, int tag) {
    auto key = std::make_pair(when, next_order++);
    pending.emplace(key, tag);
    return key;
  }

  TimeNs NextTime() const { return pending.empty() ? kTimeInfinity : pending.begin()->first.first; }

  // Pops the next (time, FIFO) event's tag; -1 when empty.
  int PopNext() {
    if (pending.empty()) {
      return -1;
    }
    int tag = pending.begin()->second;
    pending.erase(pending.begin());
    return tag;
  }
};

struct LiveHandle {
  EventId id;
  std::pair<TimeNs, uint64_t> key;
};

class EventQueueStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EventQueueStressTest, MatchesReferenceModel) {
  std::mt19937_64 rng(GetParam());
  EventQueue q;
  RefModel ref;
  std::vector<LiveHandle> cancellable;
  std::vector<int> executed;
  int next_tag = 0;

  auto schedule_one = [&] {
    TimeNs when = q.now() + static_cast<TimeNs>(rng() % 64);
    int tag = next_tag++;
    EventId id = q.ScheduleAt(when, [&executed, tag] { executed.push_back(tag); });
    auto key = ref.Insert(when, tag);
    if (rng() % 2 == 0) {
      cancellable.push_back(LiveHandle{id, key});
    }
  };

  for (int op = 0; op < 10000; ++op) {
    uint64_t r = rng() % 100;
    if (r < 45) {
      schedule_one();
    } else if (r < 60 && !cancellable.empty()) {
      size_t i = rng() % cancellable.size();
      LiveHandle handle = cancellable[i];
      cancellable.erase(cancellable.begin() + i);
      // The handle may already have fired; the model says which.
      bool still_pending = ref.pending.erase(handle.key) > 0;
      EXPECT_EQ(q.Cancel(handle.id), still_pending);
      EXPECT_FALSE(q.Cancel(handle.id)) << "double-cancel must miss";
    } else if (r < 62) {
      EXPECT_FALSE(q.Cancel(EventId()));
    } else {
      size_t executed_before = executed.size();
      int want = ref.PopNext();
      bool ran = q.RunOne();
      EXPECT_EQ(ran, want >= 0);
      if (ran) {
        ASSERT_EQ(executed.size(), executed_before + 1);
        EXPECT_EQ(executed.back(), want);
      }
    }
    ASSERT_EQ(q.PendingCount(), ref.pending.size());
    ASSERT_EQ(q.NextEventTime(), ref.NextTime());
    ASSERT_EQ(q.Empty(), ref.pending.empty());
  }

  // Drain: the remaining execution order must match the model exactly.
  for (int want = ref.PopNext(); want >= 0; want = ref.PopNext()) {
    ASSERT_TRUE(q.RunOne());
    ASSERT_EQ(executed.back(), want);
  }
  EXPECT_FALSE(q.RunOne());
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.PendingCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueStressTest,
                         ::testing::Values(1u, 2u, 3u, 0xDEADBEEFu));

}  // namespace
}  // namespace vsched
