#include "src/sim/rng.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsIndependentOfLaterParentDraws) {
  Rng parent1(7);
  Rng child1 = parent1.Fork();
  Rng parent2(7);
  Rng child2 = parent2.Fork();
  // Children agree regardless of what the parents do afterwards.
  parent1.NextU64();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(42);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(42);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(10.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(42);
  double sum = 0;
  double sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LogNormalMatchesMeanAndCv) {
  Rng rng(42);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.LogNormal(2.0, 0.5);
    EXPECT_GT(v, 0.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.05);
}

TEST(RngTest, LogNormalZeroCvIsConstant) {
  Rng rng(42);
  EXPECT_DOUBLE_EQ(rng.LogNormal(3.0, 0.0), 3.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(42);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace vsched
