// TimerWheel unit tests plus the differential stress against the 4-ary event
// heap: under a random schedule/cancel/advance workload the wheel must
// produce exactly the dispatch sequence the heap backend would.
#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

// Drains every wheel timer with deadline <= `until`, appending deadlines to
// `fired` via the timers' own callbacks (registered by the caller).
void DrainUntil(TimerWheel& wheel, TimeNs until) {
  for (;;) {
    TimeNs next = wheel.NextDeadlineAtMost(until);
    if (next == kTimeInfinity) {
      return;
    }
    wheel.RunOne(next);
  }
}

TEST(TimerWheel, FiresAtExactDeadline) {
  TimerWheel wheel;
  std::vector<TimeNs> fired;
  TimerId id = wheel.Register([&] { fired.push_back(TimeNs{12345}); });
  wheel.Arm(id, 12345);
  EXPECT_TRUE(wheel.IsArmed(id));
  EXPECT_EQ(wheel.ArmedAt(id), 12345);
  EXPECT_EQ(wheel.NextDeadlineAtMost(12344), kTimeInfinity);
  EXPECT_EQ(wheel.NextDeadlineAtMost(12345), 12345);
  wheel.RunOne(12345);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_FALSE(wheel.IsArmed(id));
  EXPECT_EQ(wheel.ArmedAt(id), kTimeInfinity);
}

TEST(TimerWheel, SameDeadlineFiresInRegistrationOrder) {
  TimerWheel wheel;
  std::vector<int> order;
  TimerId a = wheel.Register([&] { order.push_back(0); });
  TimerId b = wheel.Register([&] { order.push_back(1); });
  TimerId c = wheel.Register([&] { order.push_back(2); });
  // Arm in scrambled order: dispatch is by (deadline, id), not arm order.
  wheel.Arm(c, MsToNs(5));
  wheel.Arm(a, MsToNs(5));
  wheel.Arm(b, MsToNs(5));
  DrainUntil(wheel, MsToNs(5));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  (void)a;
  (void)b;
  (void)c;
}

TEST(TimerWheel, FarDeadlineCascadesDownToExactFiring) {
  TimerWheel wheel;
  std::vector<TimeNs> fired;
  // Deep into level 5 territory: crosses several cascades on the way down.
  const TimeNs kWhen = (TimeNs{1} << 42) + 777;
  TimerId id = wheel.Register([&] { fired.push_back(kWhen); });
  wheel.Arm(id, kWhen);
  // A near probe must not disturb it (and must stay cheap / bounded).
  EXPECT_EQ(wheel.NextDeadlineAtMost(MsToNs(1)), kTimeInfinity);
  EXPECT_TRUE(wheel.IsArmed(id));
  EXPECT_EQ(wheel.NextDeadlineAtMost(kWhen - 1), kTimeInfinity);
  EXPECT_EQ(wheel.NextDeadlineAtMost(kWhen), kWhen);
  wheel.RunOne(kWhen);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(wheel.ArmedCount(), 0u);
}

TEST(TimerWheel, CancelInBucketAndReArm) {
  TimerWheel wheel;
  int fires = 0;
  TimerId id = wheel.Register([&] { ++fires; });
  wheel.Arm(id, MsToNs(3));
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id));  // already disarmed
  EXPECT_EQ(wheel.NextDeadlineAtMost(MsToNs(10)), kTimeInfinity);
  wheel.Arm(id, MsToNs(7));
  DrainUntil(wheel, MsToNs(10));
  EXPECT_EQ(fires, 1);
}

TEST(TimerWheel, CancelAfterPromotionToReady) {
  TimerWheel wheel;
  int fires = 0;
  TimerId victim = wheel.Register([&] { ++fires; });
  TimerId keeper = wheel.Register([&] { ++fires; });
  wheel.Arm(victim, MsToNs(2));
  wheel.Arm(keeper, MsToNs(2) + 100);
  // The probe may pull both into the ready heap; cancelling afterwards must
  // still win (lazy invalidation).
  EXPECT_EQ(wheel.NextDeadlineAtMost(MsToNs(3)), MsToNs(2));
  EXPECT_TRUE(wheel.Cancel(victim));
  EXPECT_EQ(wheel.NextDeadlineAtMost(MsToNs(3)), MsToNs(2) + 100);
  wheel.RunOne(MsToNs(2) + 100);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(wheel.ArmedCount(), 0u);
}

TEST(TimerWheel, ReArmMovesTheDeadline) {
  TimerWheel wheel;
  std::vector<TimeNs> fired;
  TimerId id = wheel.Register([&] { fired.push_back(wheel.ArmedAt(id)); });
  wheel.Arm(id, MsToNs(1));
  wheel.Arm(id, MsToNs(4));  // re-arm replaces, never duplicates
  EXPECT_EQ(wheel.ArmedCount(), 1u);
  EXPECT_EQ(wheel.NextDeadlineAtMost(MsToNs(2)), kTimeInfinity);
  EXPECT_EQ(wheel.NextDeadlineAtMost(MsToNs(4)), MsToNs(4));
  wheel.RunOne(MsToNs(4));
  EXPECT_EQ(fired.size(), 1u);
}

TEST(TimerWheel, PeriodicSelfReArmFromCallback) {
  TimerWheel wheel;
  int fires = 0;
  TimerId id = kInvalidTimerId;
  id = wheel.Register([&] {
    ++fires;
    // fired_count() is already incremented for this firing, so the next grid
    // point is one period further.
    wheel.Arm(id, static_cast<TimeNs>(wheel.fired_count() + 1) * MsToNs(1));
  });
  wheel.Arm(id, MsToNs(1));
  DrainUntil(wheel, MsToNs(10));
  EXPECT_EQ(fires, 10);
  EXPECT_TRUE(wheel.IsArmed(id));
  EXPECT_EQ(wheel.ArmedAt(id), MsToNs(11));
}

TEST(TimerWheel, UnregisterRecyclesIdsLifo) {
  TimerWheel wheel;
  TimerId a = wheel.Register([] {});
  TimerId b = wheel.Register([] {});
  EXPECT_NE(a, kInvalidTimerId);
  EXPECT_NE(b, a);
  wheel.Arm(b, MsToNs(1));
  wheel.Unregister(b);  // cancels implicitly
  EXPECT_EQ(wheel.ArmedCount(), 0u);
  TimerId c = wheel.Register([] {});
  EXPECT_EQ(c, b);  // LIFO reuse keeps id sequences deterministic
  // A recycled slot must not fire the previous owner's pending state.
  EXPECT_EQ(wheel.NextDeadlineAtMost(MsToNs(10)), kTimeInfinity);
}

TEST(TimerWheel, StillFiresAtTracksDispatchPosition) {
  TimerWheel wheel;
  std::vector<std::pair<TimerId, bool>> seen;
  TimerId a = wheel.Register([&] { seen.emplace_back(a, wheel.StillFiresAt(a, MsToNs(1))); });
  TimerId b = wheel.Register([&] { seen.emplace_back(b, wheel.StillFiresAt(b, MsToNs(1))); });
  wheel.Arm(a, MsToNs(1));
  wheel.Arm(b, MsToNs(1));
  // Before any dispatch at t, every id still fires at t.
  EXPECT_TRUE(wheel.StillFiresAt(a, MsToNs(1)));
  DrainUntil(wheel, MsToNs(1));
  ASSERT_EQ(seen.size(), 2u);
  // Inside each callback the firing timer itself has been passed already.
  EXPECT_FALSE(seen[0].second);
  EXPECT_FALSE(seen[1].second);
  EXPECT_FALSE(wheel.StillFiresAt(a, MsToNs(1)));
  EXPECT_FALSE(wheel.StillFiresAt(b, MsToNs(1)));
  EXPECT_TRUE(wheel.StillFiresAt(b, MsToNs(2)));  // future instants unaffected
}

// ---------------------------------------------------------------------------
// Differential stress: wheel vs the 4-ary heap, identical dispatch sequences.
// ---------------------------------------------------------------------------

// One logical timer mirrored across both backends. Deadlines are kept unique
// so (when) alone fixes the global order in both structures; same-deadline
// ordering has its own unit test above (the heap breaks such ties by
// schedule order, the wheel by id — deliberately not comparable under
// random arm order).
struct MirroredTimer {
  TimerId timer = kInvalidTimerId;
  EventId event;
  TimeNs deadline = kTimeInfinity;
  bool armed = false;
};

TEST(TimerWheelDifferential, RandomOpsMatchHeapBackend) {
  constexpr int kTimers = 64;
  constexpr int kOps = 10000;
  TimerWheel wheel;
  EventQueue heap;
  Rng rng(0x7EE1);

  std::vector<MirroredTimer> timers(kTimers);
  std::vector<std::pair<TimeNs, int>> wheel_fired;
  std::vector<std::pair<TimeNs, int>> heap_fired;
  std::vector<TimeNs> used_deadlines;

  for (int i = 0; i < kTimers; ++i) {
    timers[i].timer = wheel.Register([&, i] {
      wheel_fired.emplace_back(timers[i].deadline, i);
      timers[i].armed = false;
    });
  }

  TimeNs now = 0;
  auto unique_deadline = [&](TimeNs want) {
    while (std::find(used_deadlines.begin(), used_deadlines.end(), want) !=
           used_deadlines.end()) {
      ++want;
    }
    used_deadlines.push_back(want);
    return want;
  };

  for (int op = 0; op < kOps; ++op) {
    int roll = static_cast<int>(rng.UniformInt(0, 9));
    int i = static_cast<int>(rng.UniformInt(0, kTimers - 1));
    MirroredTimer& t = timers[i];
    if (roll < 5) {
      // Arm (or re-arm) with a delta spanning sub-bucket to multi-level
      // distances: 2^0 .. 2^36 ns.
      int magnitude = static_cast<int>(rng.UniformInt(0, 36));
      TimeNs delta = 1 + static_cast<TimeNs>(rng.UniformInt(0, (TimeNs{1} << magnitude)));
      TimeNs when = unique_deadline(now + delta);
      if (t.armed) {
        wheel.Cancel(t.timer);
        heap.Cancel(t.event);
      }
      t.deadline = when;
      t.armed = true;
      wheel.Arm(t.timer, when);
      t.event = heap.ScheduleAt(when, [&, i] {
        heap_fired.emplace_back(timers[i].deadline, i);
      });
    } else if (roll < 7) {
      // Cancel.
      if (t.armed) {
        EXPECT_TRUE(wheel.Cancel(t.timer));
        EXPECT_TRUE(heap.Cancel(t.event));
        t.armed = false;
      }
    } else {
      // Advance both backends through the same window.
      TimeNs until = now + static_cast<TimeNs>(rng.UniformInt(0, MsToNs(40)));
      DrainUntil(wheel, until);
      heap.RunUntil(until);
      now = until;
      ASSERT_EQ(wheel_fired.size(), heap_fired.size()) << "after op " << op;
    }
  }
  // Flush everything still pending.
  DrainUntil(wheel, kTimeInfinity - 1);
  heap.RunUntil(kTimeInfinity - 1);

  ASSERT_EQ(wheel_fired.size(), heap_fired.size());
  EXPECT_EQ(wheel_fired, heap_fired);
  EXPECT_EQ(wheel.ArmedCount(), 0u);
  EXPECT_EQ(heap.PendingCount(), 0u);
}

// The same invariant one level up: Simulation::Every (wheel-backed) against a
// hand-scheduled heap chain produces the same firing timeline.
TEST(TimerWheelDifferential, PeriodicMatchesHeapChain) {
  Simulation sim(1);
  std::vector<TimeNs> wheel_ticks;
  sim.Every(MsToNs(1), [&] { wheel_ticks.push_back(sim.now()); });

  EventQueue heap;
  std::vector<TimeNs> heap_ticks;
  std::function<void()> chain = [&] {
    heap_ticks.push_back(heap.now());
    heap.ScheduleAfter(MsToNs(1), [&] { chain(); });
  };
  heap.ScheduleAfter(MsToNs(1), [&] { chain(); });

  sim.RunFor(MsToNs(100));
  heap.RunUntil(MsToNs(100));
  EXPECT_EQ(wheel_ticks, heap_ticks);
  EXPECT_EQ(wheel_ticks.size(), 100u);
}

}  // namespace
}  // namespace vsched
