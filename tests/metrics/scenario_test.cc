#include "src/metrics/scenario.h"

#include <gtest/gtest.h>

#include "src/workloads/catalog.h"

namespace vsched {
namespace {

TEST(ScenarioTest, ParseDuration) {
  TimeNs out = 0;
  EXPECT_TRUE(ScenarioRunner::ParseDuration("500us", &out));
  EXPECT_EQ(out, UsToNs(500));
  EXPECT_TRUE(ScenarioRunner::ParseDuration("10ms", &out));
  EXPECT_EQ(out, MsToNs(10));
  EXPECT_TRUE(ScenarioRunner::ParseDuration("2s", &out));
  EXPECT_EQ(out, SecToNs(2));
  EXPECT_TRUE(ScenarioRunner::ParseDuration("123", &out));
  EXPECT_EQ(out, 123);
  EXPECT_TRUE(ScenarioRunner::ParseDuration("1.5ms", &out));
  EXPECT_EQ(out, 1'500'000);
  EXPECT_FALSE(ScenarioRunner::ParseDuration("10m", &out));
  EXPECT_FALSE(ScenarioRunner::ParseDuration("fast", &out));
}

TEST(ScenarioTest, RunsACompleteScript) {
  ScenarioRunner runner(7);
  const char* script = R"(
# comment line
host sockets=1 cores=4 smt=1
stressor tid=0
vm vcpus=4
bandwidth vcpu=1 quota=5ms period=10ms
vsched preset=full
workload name=silo threads=4
run 3s
)";
  ASSERT_TRUE(runner.RunScript(script)) << runner.error();
  EXPECT_EQ(runner.sim()->now(), SecToNs(3));
  ASSERT_EQ(runner.workloads().size(), 1u);
  EXPECT_GT(runner.workloads()[0]->Result().completed, 100u);
  EXPECT_NE(runner.vsched(), nullptr);
}

TEST(ScenarioTest, OrderingErrors) {
  {
    ScenarioRunner runner;
    EXPECT_FALSE(runner.RunScript("vm vcpus=2\n"));
    EXPECT_NE(runner.error().find("before 'host'"), std::string::npos);
  }
  {
    ScenarioRunner runner;
    EXPECT_FALSE(runner.RunScript("host cores=2\nworkload name=silo threads=1\n"));
    EXPECT_NE(runner.error().find("before 'vm'"), std::string::npos);
  }
  {
    ScenarioRunner runner;
    EXPECT_FALSE(runner.RunScript("host cores=2\nhost cores=2\n"));
  }
}

TEST(ScenarioTest, RejectsUnknownDirectiveAndWorkload) {
  ScenarioRunner runner;
  EXPECT_FALSE(runner.RunScript("host cores=2\nfrobnicate x=1\n"));
  EXPECT_NE(runner.error().find("unknown directive"), std::string::npos);
  ScenarioRunner runner2;
  EXPECT_FALSE(runner2.RunScript("host cores=2\nvm vcpus=2\nworkload name=doom threads=2\n"));
  EXPECT_NE(runner2.error().find("unknown workload"), std::string::npos);
}

TEST(ScenarioTest, ErrorsCarryLineNumbers) {
  ScenarioRunner runner;
  EXPECT_FALSE(runner.RunScript("host cores=2\n\nrun nonsense\n"));
  EXPECT_NE(runner.error().find("line 3"), std::string::npos);
}

TEST(ScenarioTest, PinAndEevdfOptions) {
  ScenarioRunner runner(9);
  const char* script = R"(
host sockets=2 cores=2 smt=2
vm vcpus=4 pin=0,4,1,4 eevdf
run 10ms
)";
  ASSERT_TRUE(runner.RunScript(script)) << runner.error();
  EXPECT_EQ(runner.vm()->thread(0).tid(), 0);
  EXPECT_EQ(runner.vm()->thread(1).tid(), 4);
  EXPECT_EQ(runner.vm()->thread(3).tid(), 4);  // stacked with vCPU 1
  EXPECT_TRUE(runner.vm()->kernel().params().use_eevdf);
}

TEST(ScenarioTest, GranAndFreqDirectives) {
  ScenarioRunner runner(10);
  const char* script = R"(
host sockets=1 cores=2 smt=1
gran tid=0 min=8ms wakeup=2ms
freq core=1 mult=0.5
vm vcpus=2
run 1ms
)";
  ASSERT_TRUE(runner.RunScript(script)) << runner.error();
  EXPECT_EQ(runner.vm()->kernel().machine()->sched(0).params().min_granularity, MsToNs(8));
  EXPECT_EQ(runner.vm()->kernel().machine()->sched(0).params().wakeup_granularity, MsToNs(2));
  EXPECT_DOUBLE_EQ(runner.vm()->kernel().machine()->CoreFreq(1), 0.5);
}

TEST(NiceLevelTest, WeightTableAndFairness) {
  EXPECT_DOUBLE_EQ(NiceToWeight(0), 1024.0);
  EXPECT_DOUBLE_EQ(NiceToWeight(-20), 88761.0);
  EXPECT_DOUBLE_EQ(NiceToWeight(19), 15.0);
  // Each nice step ≈ 1.25x.
  EXPECT_NEAR(NiceToWeight(-1) / NiceToWeight(0), 1.25, 0.01);
  EXPECT_NEAR(NiceToWeight(0) / NiceToWeight(1), 1.25, 0.01);
}

}  // namespace
}  // namespace vsched
