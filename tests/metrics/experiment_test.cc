#include "src/metrics/experiment.h"

#include <gtest/gtest.h>

#include "src/host/machine.h"
#include "src/probe/vcap.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TEST(ExperimentTest, RcvmSpecMatchesPaperLayout) {
  VmSpec spec = MakeRcvmSpec();
  ASSERT_EQ(spec.vcpus.size(), 12u);
  // Five SMT pairs.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(spec.vcpus[i].tid, i);
  }
  // Stacked pair.
  EXPECT_EQ(spec.vcpus[10].tid, spec.vcpus[11].tid);
}

TEST(ExperimentTest, RcvmClassRatios) {
  // hc ≈ 2× lc capacity; ll ≈ 1/3 hl latency (inactive period).
  auto cap = [](VcpuClassShape s) { return 1024.0 / (1024.0 + s.competitor_weight); };
  auto lat = [](VcpuClassShape s) {
    // Inactive period: `gran` when we outweigh the competitor, else scaled.
    return s.competitor_weight <= 1024.0
               ? static_cast<double>(s.granularity)
               : static_cast<double>(s.granularity) * s.competitor_weight / 1024.0;
  };
  EXPECT_NEAR(cap(HchlShape()) / cap(LchlShape()), 2.0, 0.1);
  EXPECT_NEAR(cap(HcllShape()) / cap(LcllShape()), 2.0, 0.1);
  EXPECT_NEAR(lat(LchlShape()) / lat(HcllShape()), 3.0, 0.2);
  EXPECT_NEAR(lat(HchlShape()) / lat(LcllShape()), 3.0, 0.2);
  EXPECT_LT(cap(StragglerShape()), 0.1);
}

TEST(ExperimentTest, HpvmSpecMatchesPaperLayout) {
  VmSpec spec = MakeHpvmSpec();
  TopologySpec host = HpvmHostTopology();
  HostTopology topo(host);
  ASSERT_EQ(spec.vcpus.size(), 32u);
  // Each group of 8 lives in its own socket.
  for (int group = 0; group < 4; ++group) {
    int socket = topo.SocketOf(spec.vcpus[group * 8].tid);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(topo.SocketOf(spec.vcpus[group * 8 + i].tid), socket);
    }
  }
  // No stacked vCPUs in hpvm.
  for (size_t a = 0; a < spec.vcpus.size(); ++a) {
    for (size_t b = a + 1; b < spec.vcpus.size(); ++b) {
      EXPECT_NE(spec.vcpus[a].tid, spec.vcpus[b].tid);
    }
  }
}

TEST(ExperimentTest, RcvmBootsAndProbesShapedCapacities) {
  Simulation sim(71);
  HostMachine machine(&sim, RcvmHostTopology());
  std::vector<std::unique_ptr<Stressor>> stressors;
  ShapeRcvmHost(&sim, &machine, stressors);
  Vm vm(&sim, &machine, MakeRcvmSpec());
  Vcap vcap(&vm.kernel());
  vcap.Start();
  sim.RunFor(SecToNs(8));
  // hc classes probe roughly 2x the lc classes.
  double hc = (vcap.CapacityOf(0) + vcap.CapacityOf(2)) / 2;
  double lc = (vcap.CapacityOf(4) + vcap.CapacityOf(6)) / 2;
  EXPECT_NEAR(hc / lc, 2.0, 0.5);
  // Stragglers far below everything.
  EXPECT_LT(vcap.CapacityOf(8), 0.25 * lc);
}

TEST(ExperimentTest, GeoMean) {
  EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-9);
  EXPECT_NEAR(GeoMean({2.0, 2.0, 2.0}), 2.0, 1e-9);
}

TEST(ExperimentTest, TotalWorkDoneAccumulates) {
  Simulation sim(5);
  HostMachine machine(&sim, RcvmHostTopology());
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 2));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim.RunFor(SecToNs(1));
  // One dedicated vCPU busy at full capacity for 1 s.
  EXPECT_NEAR(TotalWorkDone(vm.kernel()), kCapacityScale * 1e9, kCapacityScale * 1e7);
}

TEST(ExperimentTest, TablePrinterFormats) {
  EXPECT_EQ(TablePrinter::Fmt(1.2345, 2), "1.23");
  EXPECT_EQ(TablePrinter::Pct(42.0, 0), "42%");
}

}  // namespace
}  // namespace vsched
