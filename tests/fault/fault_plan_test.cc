// Tests for the canned FaultPlan registry (src/fault/fault_plan.h).
#include "src/fault/fault_plan.h"

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(FaultPlanTest, NoneIsTheEmptyPlan) {
  FaultPlan plan;
  ASSERT_TRUE(LookupFaultPlan("none", &plan));
  EXPECT_EQ(plan.name, "none");
  EXPECT_TRUE(plan.Empty());
}

TEST(FaultPlanTest, UnknownNameIsRejected) {
  FaultPlan plan;
  EXPECT_FALSE(LookupFaultPlan("no-such-plan", &plan));
  EXPECT_FALSE(LookupFaultPlan("", &plan));
}

TEST(FaultPlanTest, EveryListedNameResolves) {
  std::vector<std::string> names = FaultPlanNames();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "none");
  for (const std::string& name : names) {
    FaultPlan plan;
    ASSERT_TRUE(LookupFaultPlan(name, &plan)) << name;
    EXPECT_EQ(plan.name, name);
    if (name != "none") {
      EXPECT_FALSE(plan.Empty()) << name;
    }
  }
}

TEST(FaultPlanTest, ArrivalSpecActivityFollowsRate) {
  FaultArrivalSpec spec;
  EXPECT_FALSE(spec.active());
  spec.rate_per_sec = 2.0;
  EXPECT_TRUE(spec.active());
}

TEST(FaultPlanTest, InterferenceBurstDrivesProbesBelowLowConfidence) {
  // The acceptance scenario relies on this plan dropping enough samples to
  // push window confidence (accepted=1.0, dropped=0.0) under the default
  // low-confidence threshold of 0.5.
  FaultPlan plan;
  ASSERT_TRUE(LookupFaultPlan("interference-burst", &plan));
  EXPECT_TRUE(plan.steal.arrival.active());
  EXPECT_TRUE(plan.storm.arrival.active());
  EXPECT_TRUE(plan.probe.active());
  EXPECT_GT(plan.probe.drop_probability, 0.5);
}

TEST(FaultPlanTest, ProbeChaosTouchesOnlyProbes) {
  FaultPlan plan;
  ASSERT_TRUE(LookupFaultPlan("probe-chaos", &plan));
  EXPECT_TRUE(plan.probe.active());
  EXPECT_FALSE(plan.steal.arrival.active());
  EXPECT_FALSE(plan.storm.arrival.active());
  EXPECT_FALSE(plan.droop.arrival.active());
  EXPECT_FALSE(plan.bandwidth.arrival.active());
}

TEST(FaultPlanTest, EverythingEnablesEveryClass) {
  FaultPlan plan;
  ASSERT_TRUE(LookupFaultPlan("everything", &plan));
  EXPECT_TRUE(plan.steal.arrival.active());
  EXPECT_TRUE(plan.storm.arrival.active());
  EXPECT_TRUE(plan.droop.arrival.active());
  EXPECT_TRUE(plan.bandwidth.arrival.active());
  EXPECT_TRUE(plan.probe.active());
}

}  // namespace
}  // namespace vsched
