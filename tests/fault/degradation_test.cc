// Tests for the degradation bookkeeping (src/fault/degradation.h) and for
// the end-to-end graceful-degradation path: a fault plan aggressive enough
// to starve the probes must flip the core into its documented fallbacks —
// pessimistic capacity, paused harvesting, frozen bans — without crashing.
#include "src/fault/degradation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/vsched.h"
#include "src/fault/fault_injector.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TEST(DegradationTrackerTest, TransitionsCountEntriesOnly) {
  DegradationTracker tracker;
  EXPECT_FALSE(tracker.AnyDegraded());
  tracker.SetState(DegradedComponent::kCapacity, true, 100);
  tracker.SetState(DegradedComponent::kCapacity, true, 200);  // no-op
  EXPECT_EQ(tracker.transitions(), 1u);
  EXPECT_TRUE(tracker.IsDegraded(DegradedComponent::kCapacity));
  tracker.SetState(DegradedComponent::kCapacity, false, 300);
  EXPECT_EQ(tracker.transitions(), 1u);  // recovery is not an entry
  tracker.SetState(DegradedComponent::kCapacity, true, 400);
  EXPECT_EQ(tracker.transitions(), 2u);
}

TEST(DegradationTrackerTest, TimeDegradedAccumulatesOpenAndClosedIntervals) {
  DegradationTracker tracker;
  tracker.SetState(DegradedComponent::kHarvest, true, 100);
  tracker.SetState(DegradedComponent::kHarvest, false, 350);
  EXPECT_EQ(tracker.TimeDegraded(DegradedComponent::kHarvest, 1000), 250);
  // A still-open interval accrues up to `now`.
  tracker.SetState(DegradedComponent::kHarvest, true, 600);
  EXPECT_EQ(tracker.TimeDegraded(DegradedComponent::kHarvest, 1000), 250 + 400);
  // Components are independent.
  EXPECT_EQ(tracker.TimeDegraded(DegradedComponent::kBans, 1000), 0);
}

TEST(DegradationTrackerTest, EventsRecordEveryTransition) {
  DegradationTracker tracker;
  tracker.SetState(DegradedComponent::kTopology, true, 10);
  tracker.SetState(DegradedComponent::kTopology, true, 20);  // no-op: no event
  tracker.SetState(DegradedComponent::kTopology, false, 30);
  ASSERT_EQ(tracker.events().size(), 2u);
  EXPECT_EQ(tracker.events()[0].at, 10);
  EXPECT_TRUE(tracker.events()[0].degraded);
  EXPECT_EQ(tracker.events()[1].at, 30);
  EXPECT_FALSE(tracker.events()[1].degraded);
}

TEST(DegradationTrackerTest, ComponentNamesAreStable) {
  EXPECT_STREQ(DegradedComponentName(DegradedComponent::kCapacity), "capacity");
  EXPECT_STREQ(DegradedComponentName(DegradedComponent::kTopology), "topology");
  EXPECT_STREQ(DegradedComponentName(DegradedComponent::kPlacement), "placement");
  EXPECT_STREQ(DegradedComponentName(DegradedComponent::kHarvest), "harvest");
  EXPECT_STREQ(DegradedComponentName(DegradedComponent::kBans), "bans");
}

// ---------------------------------------------------------------------------
// End-to-end: probe starvation flips the core into its fallback modes.

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

TEST(DegradationIntegrationTest, ProbeStarvationDegradesTheCoreWithoutCrashing) {
  Simulation sim(/*seed=*/11);
  HostMachine machine(&sim, FlatSpec(4));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));

  // Drop (nearly) every probe sample: confidence must collapse well below
  // the 0.5 threshold on every prober.
  FaultPlan plan;
  plan.name = "starve";
  plan.probe.drop_probability = 0.95;
  FaultInjector injector(&sim, &machine, &vm, plan);
  injector.Start();
  vm.kernel().set_fault_injector(&injector);

  VSchedOptions options = VSchedOptions::Full();
  options.robust.enabled = true;
  VSched vsched(&vm.kernel(), options);
  vsched.Start();
  sim.RunFor(SecToNs(6));

  const DegradationTracker& degradation = vsched.degradation();
  EXPECT_GT(degradation.transitions(), 0u);
  EXPECT_TRUE(degradation.IsDegraded(DegradedComponent::kCapacity));
  EXPECT_GT(degradation.TimeDegraded(DegradedComponent::kCapacity, sim.now()), 0);
  // The documented fallbacks are engaged: BVS declines placement, IVH pauses,
  // RWC freezes its ban verdicts.
  EXPECT_TRUE(vsched.bvs()->degraded());
  EXPECT_TRUE(vsched.ivh()->degraded());
  EXPECT_TRUE(vsched.rwc()->frozen());
  // Published capacities stay finite — degraded, never NaN.
  for (int cpu = 0; cpu < 4; ++cpu) {
    EXPECT_TRUE(std::isfinite(vsched.vcap()->CapacityOf(cpu)));
    EXPECT_TRUE(std::isfinite(vsched.vcap()->ConfidenceOf(cpu)));
  }
  EXPECT_LT(vsched.vcap()->MedianConfidence(), 0.5);

  injector.Stop();
  vsched.Stop();
}

TEST(DegradationIntegrationTest, CleanRunNeverDegrades) {
  Simulation sim(/*seed=*/11);
  HostMachine machine(&sim, FlatSpec(4));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
  VSchedOptions options = VSchedOptions::Full();
  options.robust.enabled = true;  // robust on, but no injector: no faults
  VSched vsched(&vm.kernel(), options);
  vsched.Start();
  sim.RunFor(SecToNs(6));
  EXPECT_EQ(vsched.degradation().transitions(), 0u);
  EXPECT_FALSE(vsched.degradation().AnyDegraded());
  EXPECT_FALSE(vsched.bvs()->degraded());
  EXPECT_DOUBLE_EQ(vsched.vcap()->MedianConfidence(), 1.0);
  vsched.Stop();
}

TEST(DegradationIntegrationTest, CoreRecoversWhenFaultsStop) {
  Simulation sim(/*seed=*/13);
  HostMachine machine(&sim, FlatSpec(4));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));

  FaultPlan plan;
  plan.name = "starve-then-recover";
  plan.probe.drop_probability = 0.95;
  plan.horizon = SecToNs(4);  // injection quiesces after 4 s
  FaultInjector injector(&sim, &machine, &vm, plan);
  injector.Start();
  vm.kernel().set_fault_injector(&injector);

  VSchedOptions options = VSchedOptions::Full();
  options.robust.enabled = true;
  VSched vsched(&vm.kernel(), options);
  vsched.Start();
  sim.RunFor(SecToNs(4));
  EXPECT_TRUE(vsched.degradation().IsDegraded(DegradedComponent::kCapacity));
  // Faults over: confidence windows refill with accepted samples and the
  // core must leave its fallback modes.
  sim.RunFor(SecToNs(12));
  EXPECT_FALSE(vsched.degradation().IsDegraded(DegradedComponent::kCapacity));
  EXPECT_FALSE(vsched.bvs()->degraded());
  EXPECT_FALSE(vsched.rwc()->frozen());
  EXPECT_GT(vsched.vcap()->MedianConfidence(), 0.5);

  injector.Stop();
  vsched.Stop();
}

}  // namespace
}  // namespace vsched
