// Tests for the deterministic fault injector (src/fault/fault_injector.h):
// seeded replay, horizon/quiescence, probe hooks, and clean teardown.
#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

FaultPlan Plan(const std::string& name) {
  FaultPlan plan;
  EXPECT_TRUE(LookupFaultPlan(name, &plan));
  return plan;
}

// Runs `plan` on a fresh world for `dur` and returns the applied-fault
// ledger. Probe chaos only fires when probes query, so this exercises the
// host-side classes (steal, storm, droop, bandwidth).
FaultStats RunPlan(uint64_t seed, const FaultPlan& plan, TimeNs dur) {
  Simulation sim(seed);
  HostMachine machine(&sim, FlatSpec(4));
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].bw_quota = MsToNs(8);
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim, &machine, spec);
  FaultInjector injector(&sim, &machine, &vm, plan);
  injector.Start();
  sim.RunFor(dur);
  injector.Stop();
  return injector.stats();
}

TEST(FaultInjectorTest, SameSeedAndPlanReplayIdentically) {
  FaultPlan plan = Plan("everything");
  FaultStats a = RunPlan(7, plan, SecToNs(5));
  FaultStats b = RunPlan(7, plan, SecToNs(5));
  EXPECT_EQ(a.steal_bursts, b.steal_bursts);
  EXPECT_EQ(a.stressor_storms, b.stressor_storms);
  EXPECT_EQ(a.freq_droops, b.freq_droops);
  EXPECT_EQ(a.bandwidth_jitters, b.bandwidth_jitters);
  EXPECT_GT(a.total_applied(), 0u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultPlan plan = Plan("everything");
  FaultStats a = RunPlan(7, plan, SecToNs(5));
  FaultStats b = RunPlan(8, plan, SecToNs(5));
  // Counts of independent Poisson processes almost surely differ; require at
  // least one class to (the test seed pair is fixed, so this is stable).
  EXPECT_TRUE(a.steal_bursts != b.steal_bursts || a.stressor_storms != b.stressor_storms ||
              a.freq_droops != b.freq_droops || a.bandwidth_jitters != b.bandwidth_jitters);
}

TEST(FaultInjectorTest, EmptyPlanNeverActivates) {
  Simulation sim(3);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, Plan("none"));
  injector.Start();
  EXPECT_FALSE(injector.active());
  sim.RunFor(SecToNs(1));
  EXPECT_EQ(injector.stats().total_applied(), 0u);
}

TEST(FaultInjectorTest, HorizonQuiescesInjection) {
  FaultPlan plan;
  plan.name = "bounded";
  plan.droop.arrival = {/*rate_per_sec=*/50.0, MsToNs(1), MsToNs(2)};
  plan.start = MsToNs(100);
  plan.horizon = MsToNs(200);

  Simulation sim(5);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, plan);
  injector.Start();
  sim.RunFor(MsToNs(100));
  EXPECT_EQ(injector.stats().freq_droops, 0u);  // quiescent before start
  sim.RunFor(MsToNs(250));
  uint64_t at_horizon = injector.stats().freq_droops;
  EXPECT_GT(at_horizon, 0u);
  sim.RunFor(SecToNs(1));
  EXPECT_EQ(injector.stats().freq_droops, at_horizon);  // quiescent after
  // Interventions in flight at the horizon still ended: frequencies restored.
  for (int core = 0; core < 2; ++core) {
    EXPECT_DOUBLE_EQ(machine.CoreFreq(core), 1.0);
  }
}

TEST(FaultInjectorTest, StopRestoresDroopedFrequencies) {
  FaultPlan plan;
  plan.name = "droops";
  plan.droop.arrival = {/*rate_per_sec=*/100.0, SecToNs(10), SecToNs(10)};
  Simulation sim(9);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, plan);
  injector.Start();
  sim.RunFor(MsToNs(500));
  ASSERT_GT(injector.stats().freq_droops, 0u);
  // Long-duration droops are still open mid-run...
  bool any_drooped = machine.CoreFreq(0) < 1.0 || machine.CoreFreq(1) < 1.0;
  EXPECT_TRUE(any_drooped);
  injector.Stop();
  for (int core = 0; core < 2; ++core) {
    EXPECT_DOUBLE_EQ(machine.CoreFreq(core), 1.0);
  }
}

TEST(FaultInjectorTest, InactiveInjectorLeavesProbeHooksInert) {
  Simulation sim(2);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, Plan("probe-chaos"));
  // Never started: hooks must pass samples through untouched.
  EXPECT_FALSE(injector.DropSample(ProbePoint::kVcapWindow));
  EXPECT_DOUBLE_EQ(injector.CorruptSample(ProbePoint::kPairLatency, 123.0), 123.0);
  EXPECT_EQ(injector.stats().total_applied(), 0u);
}

TEST(FaultInjectorTest, CertainDropAlwaysDropsAndCounts) {
  FaultPlan plan;
  plan.name = "drop-all";
  plan.probe.drop_probability = 1.0;
  Simulation sim(2);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, plan);
  injector.Start();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.DropSample(ProbePoint::kVactTick));
  }
  EXPECT_EQ(injector.stats().samples_dropped, 10u);
  // Corruption class is off: values pass through.
  EXPECT_DOUBLE_EQ(injector.CorruptSample(ProbePoint::kVcapWindow, 42.0), 42.0);
}

TEST(FaultInjectorTest, CorruptionStaysWithinTheConfiguredFactor) {
  FaultPlan plan;
  plan.name = "corrupt-all";
  plan.probe.corrupt_probability = 1.0;
  plan.probe.corrupt_factor = 3.0;
  Simulation sim(4);
  HostMachine machine(&sim, FlatSpec(2));
  FaultInjector injector(&sim, &machine, /*vm=*/nullptr, plan);
  injector.Start();
  for (int i = 0; i < 200; ++i) {
    double v = injector.CorruptSample(ProbePoint::kVcapWindow, 100.0);
    EXPECT_GE(v, 100.0 / 3.0 - 1e-9);
    EXPECT_LE(v, 100.0 * 3.0 + 1e-9);
  }
  EXPECT_EQ(injector.stats().samples_corrupted, 200u);
}

}  // namespace
}  // namespace vsched
