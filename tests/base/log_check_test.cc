#include <gtest/gtest.h>

#include "src/base/check.h"
#include "src/base/log.h"

namespace vsched {
namespace {

TEST(LogTest, LevelFilterRoundTrips) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Filtered-out logging must be side-effect free (smoke).
  VSCHED_LOG(kDebug) << "suppressed " << 42;
  SetLogLevel(LogLevel::kNone);
  VSCHED_LOG(kError) << "also suppressed";
  SetLogLevel(original);
}

TEST(CheckTest, PassingCheckIsSilent) {
  VSCHED_CHECK(1 + 1 == 2);
  VSCHED_CHECK_MSG(true, "never shown");
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(VSCHED_CHECK(false), "VSCHED_CHECK failed");
  EXPECT_DEATH(VSCHED_CHECK_MSG(false, "context here"), "context here");
}

TEST(DcheckTest, CompiledPerBuildType) {
#ifdef NDEBUG
  VSCHED_DCHECK(false);  // Compiled out in release builds.
  SUCCEED();
#else
  EXPECT_DEATH(VSCHED_DCHECK(false), "VSCHED_CHECK failed");
#endif
}

}  // namespace
}  // namespace vsched
