#include "src/base/perf_counters.h"

#include <thread>

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(PerfCountersTest, CurrentIsNeverNull) { EXPECT_NE(PerfCounters::Current(), nullptr); }

TEST(PerfCountersTest, ScopeInstallsAndRestores) {
  PerfCounters* before = PerfCounters::Current();
  PerfCounters mine;
  {
    PerfCounters::Scope scope(&mine);
    EXPECT_EQ(PerfCounters::Current(), &mine);
    ++PerfCounters::Current()->events_executed;
  }
  EXPECT_EQ(PerfCounters::Current(), before);
  EXPECT_EQ(mine.events_executed, 1u);
}

TEST(PerfCountersTest, ScopesNest) {
  PerfCounters outer;
  PerfCounters inner;
  PerfCounters::Scope outer_scope(&outer);
  {
    PerfCounters::Scope inner_scope(&inner);
    ++PerfCounters::Current()->rq_picks;
  }
  ++PerfCounters::Current()->rq_picks;
  EXPECT_EQ(inner.rq_picks, 1u);
  EXPECT_EQ(outer.rq_picks, 1u);
}

TEST(PerfCountersTest, ThreadsHaveIndependentSinks) {
  PerfCounters mine;
  PerfCounters::Scope scope(&mine);
  PerfCounters theirs;
  std::thread t([&] {
    // A fresh thread starts on its own default sink, not this thread's scope.
    EXPECT_NE(PerfCounters::Current(), &mine);
    PerfCounters::Scope inner(&theirs);
    ++PerfCounters::Current()->events_scheduled;
  });
  t.join();
  EXPECT_EQ(theirs.events_scheduled, 1u);
  EXPECT_EQ(mine.events_scheduled, 0u);
}

TEST(PerfCountersTest, ResetClearsAllTallies) {
  PerfCounters c;
  c.events_executed = 5;
  c.rq_enqueues = 7;
  c.callback_heap_allocs = 3;
  c.Reset();
  EXPECT_EQ(c.events_executed, 0u);
  EXPECT_EQ(c.rq_enqueues, 0u);
  EXPECT_EQ(c.callback_heap_allocs, 0u);
}

}  // namespace
}  // namespace vsched
