#include "src/base/time.h"

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(UsToNs(3), 3000);
  EXPECT_EQ(MsToNs(2), 2'000'000);
  EXPECT_EQ(SecToNs(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(NsToMs(MsToNs(7)), 7.0);
  EXPECT_DOUBLE_EQ(NsToSec(SecToNs(3)), 3.0);
}

TEST(TimeTest, WorkAtCapacityIsLinear) {
  EXPECT_DOUBLE_EQ(WorkAtCapacity(kCapacityScale, 100), 1024.0 * 100);
  EXPECT_DOUBLE_EQ(WorkAtCapacity(512.0, 100), 512.0 * 100);
  EXPECT_DOUBLE_EQ(WorkAtCapacity(kCapacityScale, 0), 0.0);
}

TEST(TimeTest, TimeToCompleteRoundTrips) {
  Work w = WorkAtCapacity(kCapacityScale, MsToNs(5));
  EXPECT_EQ(TimeToComplete(w, kCapacityScale), MsToNs(5));
  // Half speed → double time.
  EXPECT_EQ(TimeToComplete(w, kCapacityScale / 2), MsToNs(10));
}

TEST(TimeTest, TimeToCompleteCeils) {
  // 1 work unit at capacity 1024 takes a full nanosecond (ceil).
  EXPECT_EQ(TimeToComplete(1.0, kCapacityScale), 1);
  EXPECT_EQ(TimeToComplete(1025.0, kCapacityScale), 2);
}

TEST(TimeTest, TimeToCompleteEdgeCases) {
  EXPECT_EQ(TimeToComplete(0.0, kCapacityScale), 0);
  EXPECT_EQ(TimeToComplete(-5.0, kCapacityScale), 0);
  EXPECT_EQ(TimeToComplete(100.0, 0.0), kTimeInfinity);
  EXPECT_EQ(TimeToComplete(100.0, -1.0), kTimeInfinity);
}

TEST(TimeTest, InfinityIsAdditionSafe) {
  TimeNs t = kTimeInfinity;
  EXPECT_GT(t + SecToNs(100000), 0);  // No overflow for sane offsets.
}

}  // namespace
}  // namespace vsched
