// Acceptance tests for the deception matrix (src/runner/deception.h): runs
// the single-VM adversary protocol through ExecuteRun and asserts the
// headline of docs/ROBUSTNESS.md — every attack materially deceives at
// least one vSched component with the robust layer off, and the same attack
// is detected and mitigated (or degraded) with it on. Thresholds carry wide
// margins below the measured values so they hold across toolchains while
// still failing if an attack or a detector regresses to a no-op.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/base/time.h"
#include "src/runner/spec.h"

namespace vsched {
namespace {

// One protocol run: attack x robust, at the sweep's reference cadence but a
// shorter horizon than the bench default to keep ctest fast. The signatures
// asserted below were calibrated at this exact (seed, warmup, measure).
RunMetrics RunCell(const std::string& attack, bool robust) {
  RunSpec spec;
  spec.family = ExperimentFamily::kAdversary;
  spec.workload = attack;
  spec.config = "vsched";
  spec.seed = 0xAD5E7;
  spec.warmup = MsToNs(500);
  spec.measure = SecToNs(1);
  spec.robust_override = robust ? 1 : 0;
  spec.fault_plan = attack == "none" ? "none" : "adversary-" + attack;
  return ExecuteRun(spec);
}

TEST(DeceptionMatrixTest, CleanBaselineHasNoFalsePositives) {
  RunMetrics off = RunCell("none", false);
  RunMetrics on = RunCell("none", true);

  // No adversary: full delivery, no detections in either mode. The robust
  // layer must not cry wolf on a clean host.
  EXPECT_GT(off.Get("dx_gt_delivered_mean"), 0.99);
  EXPECT_EQ(off.Get("dx_adversary_activations"), 0);
  for (const RunMetrics* m : {&off, &on}) {
    EXPECT_EQ(m->Get("dx_implausible_windows"), 0);
    EXPECT_EQ(m->Get("dx_quarantine_events"), 0);
    EXPECT_EQ(m->Get("dx_act_subthreshold_windows"), 0);
    EXPECT_EQ(m->Get("dx_gt_stragglers"), 0);
  }
  // The topology probe completes on a clean host — the reference the
  // steal-attack paralysis is measured against.
  EXPECT_GE(on.Get("dx_topo_full_probes"), 1);
}

TEST(DeceptionMatrixTest, CycleStealerBlindsVactAndParalyzesVtop) {
  RunMetrics off = RunCell("steal", false);

  // Ground truth: ~15% of every vCPU's time is stolen.
  EXPECT_LT(off.Get("dx_gt_delivered_mean"), 0.92);
  EXPECT_GT(off.Get("dx_gt_steal_frac_mean"), 0.05);
  // Deceived: vact publishes zero latency (every per-tick steal jump is
  // under the qualification threshold), so IVH never fires, and the pair
  // probes never complete a full topology probe (probe paralysis).
  EXPECT_EQ(off.Get("dx_act_latency_ns"), 0);
  EXPECT_EQ(off.Get("dx_ivh_attempts"), 0);
  EXPECT_EQ(off.Get("dx_topo_full_probes"), 0);

  RunMetrics on = RunCell("steal", true);
  // Detected: the sub-threshold-theft plausibility check attributes the
  // stolen time, so the published latency becomes materially nonzero.
  EXPECT_GT(on.Get("dx_act_subthreshold_windows"), 20);
  EXPECT_GT(on.Get("dx_act_latency_ns"), 1e6);
}

TEST(DeceptionMatrixTest, ProbeEvaderInflatesVcapAndHidesStragglers) {
  RunMetrics off = RunCell("evade", false);

  // Ground truth: the first-half victims are starved far below the mean.
  EXPECT_LT(off.Get("dx_gt_delivered_min"), 0.4);
  EXPECT_GE(off.Get("dx_gt_stragglers"), 2);
  // Deceived: vcap over-credits a starved vCPU (estimate far above its
  // delivered fraction) and RWC, fed those estimates, bans nobody.
  EXPECT_GT(off.Get("dx_cap_err_max"), 0.25);
  EXPECT_EQ(off.Get("dx_rwc_straggler_bans"), 0);

  RunMetrics on = RunCell("evade", true);
  // Detected: off-window steal corroboration flags the windows implausible,
  // quarantines the vCPUs, and substitutes the corroborated (pessimistic)
  // view — which restores RWC's straggler bans and kills the over-credit.
  EXPECT_GE(on.Get("dx_implausible_windows"), 2);
  EXPECT_GE(on.Get("dx_quarantine_events"), 1);
  EXPECT_GE(on.Get("dx_pessimistic_publishes"), 1);
  EXPECT_GE(on.Get("dx_rwc_straggler_bans"), 2);
  EXPECT_LT(on.Get("dx_cap_err_max"), 0.15);
  EXPECT_GT(on.Get("dx_degraded_quarantine_ms"), 10);
}

TEST(DeceptionMatrixTest, RefillBursterTriggersFalseBansAndIvhChurn) {
  RunMetrics off = RunCell("burst", false);

  // Ground truth: heavy interference, but no vCPU is a straggler by the
  // delivered-fraction criterion — the burst hits everyone evenly.
  EXPECT_LT(off.Get("dx_gt_delivered_mean"), 0.8);
  EXPECT_EQ(off.Get("dx_gt_stragglers"), 0);
  // Deceived: the window-synchronized bursts make vcap's samples wildly
  // uneven, so RWC bans healthy vCPUs and IVH churns on phantom latency.
  EXPECT_GE(off.Get("dx_rwc_straggler_bans"), 1);
  EXPECT_GT(off.Get("dx_ivh_attempts"), 20);

  RunMetrics on = RunCell("burst", true);
  // Detected: the refill-aligned steal fails the plausibility check in
  // bulk; quarantine + pessimistic publishes take over the capacity view.
  EXPECT_GE(on.Get("dx_implausible_windows"), 10);
  EXPECT_GE(on.Get("dx_quarantine_events"), 1);
  EXPECT_GE(on.Get("dx_pessimistic_publishes"), 5);
  EXPECT_GT(on.Get("dx_degraded_quarantine_ms"), 50);
}

// The matrix is a deterministic artifact: re-running a cell reproduces every
// metric bit-for-bit (the property the jobs-1-vs-2 CI byte-compare relies
// on, asserted here at the ExecuteRun level where it is cheapest to debug).
TEST(DeceptionMatrixTest, CellsReplayBitForBit) {
  for (const char* attack : {"steal", "evade", "burst"}) {
    RunMetrics a = RunCell(attack, true);
    RunMetrics b = RunCell(attack, true);
    ASSERT_EQ(a.values.size(), b.values.size()) << attack;
    for (size_t i = 0; i < a.values.size(); ++i) {
      EXPECT_EQ(a.values[i].first, b.values[i].first) << attack;
      EXPECT_EQ(a.values[i].second, b.values[i].second)
          << attack << " metric " << a.values[i].first;
    }
  }
}

}  // namespace
}  // namespace vsched
