// Unit tests for the adversarial co-tenant drivers (src/adversary/):
// victim resolution, driver lifecycle, seeded determinism, and the canned
// fault-plan registrations that deliver them.
#include "src/adversary/adversary.h"

#include <gtest/gtest.h>

#include "src/adversary/adversary_spec.h"
#include "src/base/time.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

std::vector<HwThreadId> AllThreads(int n) {
  std::vector<HwThreadId> v;
  for (int t = 0; t < n; ++t) {
    v.push_back(static_cast<HwThreadId>(t));
  }
  return v;
}

TEST(AdversaryTest, ResolveVictimCountCoversAllHalfAndClamp) {
  EXPECT_EQ(ResolveVictimCount(0, 8), 8);   // all
  EXPECT_EQ(ResolveVictimCount(-1, 8), 4);  // first half
  EXPECT_EQ(ResolveVictimCount(-1, 5), 3);  // half rounds up
  EXPECT_EQ(ResolveVictimCount(3, 8), 3);   // explicit
  EXPECT_EQ(ResolveVictimCount(12, 8), 8);  // clamped to available
}

TEST(AdversaryTest, MakeAdversariesBuildsOneDriverPerEnabledClass) {
  Simulation sim(1);
  HostMachine machine(&sim, FlatSpec(4));
  AdversarySpec spec;
  EXPECT_FALSE(spec.active());
  EXPECT_TRUE(MakeAdversaries(&sim, &machine, AllThreads(4), spec).empty());

  spec.steal.enabled = true;
  spec.burst.enabled = true;
  EXPECT_TRUE(spec.active());
  auto drivers = MakeAdversaries(&sim, &machine, AllThreads(4), spec);
  ASSERT_EQ(drivers.size(), 2u);
  EXPECT_EQ(drivers[0]->name(), "adv-steal");
  EXPECT_EQ(drivers[1]->name(), "adv-burst");
}

// Each driver, started alone, attaches a stressor per victim (activations)
// and survives Stop() twice (idempotent teardown).
TEST(AdversaryTest, DriversActivateAndStopIdempotently) {
  AdversarySpec all;
  all.steal.enabled = true;
  all.evade.enabled = true;
  all.burst.enabled = true;

  Simulation sim(2);
  HostMachine machine(&sim, FlatSpec(4));
  auto drivers = MakeAdversaries(&sim, &machine, AllThreads(4), all);
  ASSERT_EQ(drivers.size(), 3u);
  for (auto& d : drivers) {
    d->Start(0, SecToNs(1));
  }
  sim.RunFor(SecToNs(1));
  for (auto& d : drivers) {
    EXPECT_GT(d->activations(), 0u) << d->name();
    d->Stop();
    d->Stop();  // idempotent
  }
}

// The attack pattern is a pure function of (seed, spec): two worlds with the
// same seed replay the same activation counts.
TEST(AdversaryTest, SameSeedReplaysIdentically) {
  auto run = [](uint64_t seed) {
    AdversarySpec spec;
    spec.evade.enabled = true;
    Simulation sim(seed);
    HostMachine machine(&sim, FlatSpec(4));
    auto drivers = MakeAdversaries(&sim, &machine, AllThreads(4), spec);
    for (auto& d : drivers) {
      d->Start(0, 0);
    }
    sim.RunFor(SecToNs(2));
    uint64_t total = 0;
    for (auto& d : drivers) {
      total += d->activations();
      d->Stop();
    }
    return total;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(AdversaryTest, CannedPlansRegisterEachAttackAndTheCombo) {
  FaultPlan plan;
  ASSERT_TRUE(LookupFaultPlan("adversary-steal", &plan));
  EXPECT_TRUE(plan.adversary.steal.enabled);
  EXPECT_FALSE(plan.adversary.evade.enabled);

  ASSERT_TRUE(LookupFaultPlan("adversary-evade", &plan));
  EXPECT_TRUE(plan.adversary.evade.enabled);

  ASSERT_TRUE(LookupFaultPlan("adversary-burst", &plan));
  EXPECT_TRUE(plan.adversary.burst.enabled);

  ASSERT_TRUE(LookupFaultPlan("adversary-all", &plan));
  EXPECT_TRUE(plan.adversary.steal.enabled);
  EXPECT_TRUE(plan.adversary.evade.enabled);
  EXPECT_TRUE(plan.adversary.burst.enabled);
  EXPECT_TRUE(plan.adversary.active());
}

// The FaultInjector is the delivery vehicle: an adversary plan attached to a
// guest targets the guest's pinned threads, counts activations, and replays.
TEST(AdversaryTest, InjectorDeliversAdversariesAgainstGuest) {
  auto run = [](uint64_t seed) {
    FaultPlan plan;
    EXPECT_TRUE(LookupFaultPlan("adversary-all", &plan));
    Simulation sim(seed);
    HostMachine machine(&sim, FlatSpec(4));
    Vm vm(&sim, &machine, MakeSimpleVmSpec("victim", 4));
    FaultInjector injector(&sim, &machine, &vm, plan);
    injector.Start();
    sim.RunFor(SecToNs(1));
    injector.Stop();
    return injector.adversary_activations();
  };
  uint64_t a = run(11);
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, run(11));
}

}  // namespace
}  // namespace vsched
