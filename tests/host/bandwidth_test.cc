#include <gtest/gtest.h>

#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TopologySpec OneCoreSpec() {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = 1;
  spec.threads_per_core = 1;
  return spec;
}

class BandwidthFixture : public ::testing::Test {
 protected:
  BandwidthFixture() : sim_(1), machine_(&sim_, OneCoreSpec()) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(BandwidthFixture, QuotaCapsRuntime) {
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(5), MsToNs(10));  // 50% cap.
  s.Start(&machine_, 0);
  sim_.RunFor(SecToNs(1));
  TimeNs now = sim_.now();
  EXPECT_NEAR(static_cast<double>(s.ran_ns(now)) / static_cast<double>(now), 0.5, 0.01);
  s.Stop();
}

TEST_F(BandwidthFixture, ThrottledTimeCountsAsSteal) {
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(2), MsToNs(10));  // 20% cap.
  s.Start(&machine_, 0);
  sim_.RunFor(MsToNs(100));
  TimeNs now = sim_.now();
  // Wants to run the whole time; 80% of it is stolen (throttled).
  EXPECT_NEAR(static_cast<double>(s.steal_ns(now)) / static_cast<double>(now), 0.8, 0.02);
  s.Stop();
}

TEST_F(BandwidthFixture, AlternatingActiveInactivePattern) {
  // quota=5ms, period=10ms with no competitor: the entity runs exactly 5 ms
  // then is throttled exactly 5 ms, repeating — the Figure 3 host setup.
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(5), MsToNs(10));
  s.Start(&machine_, 0);
  sim_.RunFor(MsToNs(5) - 1);
  EXPECT_TRUE(s.running());
  sim_.RunFor(2);
  EXPECT_FALSE(s.running());
  EXPECT_TRUE(s.throttled());
  sim_.RunFor(MsToNs(5));
  EXPECT_TRUE(s.running());
  s.Stop();
}

TEST_F(BandwidthFixture, UnusedQuotaDoesNotAccumulate) {
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(5), MsToNs(10));
  s.StartDutyCycle(&machine_, 0, MsToNs(1), MsToNs(99));  // Mostly idle.
  sim_.RunFor(SecToNs(1));
  TimeNs idle_ran = s.ran_ns(sim_.now());
  EXPECT_NEAR(static_cast<double>(idle_ran), MsToNs(10), static_cast<double>(MsToNs(2)));
  s.Stop();
}

TEST_F(BandwidthFixture, QuotaEqualPeriodNeverThrottles) {
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(10), MsToNs(10));
  s.Start(&machine_, 0);
  sim_.RunFor(MsToNs(100));
  EXPECT_EQ(s.ran_ns(sim_.now()), MsToNs(100));
  EXPECT_FALSE(s.throttled());
  s.Stop();
}

TEST_F(BandwidthFixture, BandwidthInteractsWithCompetition) {
  // Capped entity competes with an uncapped one: it gets at most its quota;
  // the competitor absorbs the rest.
  Stressor capped(&sim_, "capped");
  capped.SetBandwidth(MsToNs(2), MsToNs(10));
  Stressor free_entity(&sim_, "free");
  capped.Start(&machine_, 0);
  free_entity.Start(&machine_, 0);
  sim_.RunFor(SecToNs(1));
  TimeNs now = sim_.now();
  double capped_share = static_cast<double>(capped.ran_ns(now)) / static_cast<double>(now);
  double free_share = static_cast<double>(free_entity.ran_ns(now)) / static_cast<double>(now);
  EXPECT_LE(capped_share, 0.21);
  EXPECT_NEAR(capped_share + free_share, 1.0, 0.01);
  capped.Stop();
  free_entity.Stop();
}

TEST_F(BandwidthFixture, ReattachAfterStopResetsThrottle) {
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(1), MsToNs(10));
  s.Start(&machine_, 0);
  sim_.RunFor(MsToNs(2));
  EXPECT_TRUE(s.throttled());
  s.Stop();
  EXPECT_FALSE(s.throttled());
  s.Start(&machine_, 0);
  EXPECT_TRUE(s.running());
  s.Stop();
}

}  // namespace
}  // namespace vsched
