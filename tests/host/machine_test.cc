#include "src/host/machine.h"

#include <gtest/gtest.h>

#include "src/host/stressor.h"
#include "src/host/vcpu_thread.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TopologySpec SmtSpec() {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = 2;
  spec.threads_per_core = 2;
  spec.smt_factor = 0.6;
  return spec;
}

class MachineFixture : public ::testing::Test {
 protected:
  MachineFixture() : sim_(1), machine_(&sim_, SmtSpec()) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(MachineFixture, IdleThreadFullSpeed) {
  EXPECT_DOUBLE_EQ(machine_.SpeedOf(0), kCapacityScale);
}

TEST_F(MachineFixture, SmtContentionReducesSpeed) {
  Stressor s(&sim_, "s");
  s.Start(&machine_, 1);  // Sibling of thread 0.
  EXPECT_DOUBLE_EQ(machine_.SpeedOf(0), kCapacityScale * 0.6);
  EXPECT_DOUBLE_EQ(machine_.SpeedOf(2), kCapacityScale);  // Other core unaffected.
  s.Stop();
  EXPECT_DOUBLE_EQ(machine_.SpeedOf(0), kCapacityScale);
}

TEST_F(MachineFixture, FreqScalesSpeed) {
  machine_.SetCoreFreq(0, 0.5);
  EXPECT_DOUBLE_EQ(machine_.SpeedOf(0), kCapacityScale * 0.5);
  EXPECT_DOUBLE_EQ(machine_.SpeedOf(1), kCapacityScale * 0.5);
  EXPECT_DOUBLE_EQ(machine_.SpeedOf(2), kCapacityScale);
}

TEST_F(MachineFixture, FreqAndSmtCompose) {
  machine_.SetCoreFreq(0, 2.0);
  Stressor s(&sim_, "s");
  s.Start(&machine_, 1);
  EXPECT_DOUBLE_EQ(machine_.SpeedOf(0), kCapacityScale * 2.0 * 0.6);
  s.Stop();
}

class RecordingClient : public VcpuHostClient {
 public:
  void OnVcpuScheduledIn(TimeNs now) override {
    ++in_count;
    last_in = now;
  }
  void OnVcpuScheduledOut(TimeNs now) override {
    ++out_count;
    last_out = now;
  }
  void OnVcpuRateChanged(TimeNs) override { ++rate_count; }

  int in_count = 0;
  int out_count = 0;
  int rate_count = 0;
  TimeNs last_in = -1;
  TimeNs last_out = -1;
};

TEST_F(MachineFixture, VcpuThreadNotifiesClientOnActivity) {
  VcpuThread vcpu("vcpu0");
  RecordingClient client;
  vcpu.BindClient(&client);
  machine_.Attach(&vcpu, 0);
  EXPECT_EQ(client.in_count, 0);
  vcpu.GuestWake();
  EXPECT_EQ(client.in_count, 1);
  EXPECT_TRUE(vcpu.active());
  sim_.RunFor(MsToNs(1));
  vcpu.GuestHalt();
  EXPECT_EQ(client.out_count, 1);
  EXPECT_EQ(client.last_out, sim_.now());
  machine_.sched(0).Detach(&vcpu);
}

TEST_F(MachineFixture, VcpuPreemptedByCompetitorSeesOutAndIn) {
  VcpuThread vcpu("vcpu0");
  RecordingClient client;
  vcpu.BindClient(&client);
  machine_.Attach(&vcpu, 0);
  vcpu.GuestWake();
  Stressor competitor(&sim_, "comp");
  competitor.Start(&machine_, 0);
  sim_.RunFor(MsToNs(50));
  // The vCPU was descheduled and rescheduled repeatedly.
  EXPECT_GT(client.out_count, 2);
  EXPECT_GT(client.in_count, 2);
  EXPECT_GT(vcpu.steal_ns(sim_.now()), MsToNs(10));
  competitor.Stop();
  vcpu.GuestHalt();
  machine_.sched(0).Detach(&vcpu);
}

TEST_F(MachineFixture, SiblingBusyTogglesDeliverRateChanges) {
  VcpuThread vcpu("vcpu0");
  RecordingClient client;
  vcpu.BindClient(&client);
  machine_.Attach(&vcpu, 0);
  vcpu.GuestWake();
  Stressor sibling(&sim_, "sib");
  sibling.StartDutyCycle(&machine_, 1, MsToNs(2), MsToNs(2));
  sim_.RunFor(MsToNs(20));
  EXPECT_GE(client.rate_count, 8);
  sibling.Stop();
  vcpu.GuestHalt();
  machine_.sched(0).Detach(&vcpu);
}

TEST_F(MachineFixture, MoveRelocatesEntity) {
  VcpuThread vcpu("vcpu0");
  machine_.Attach(&vcpu, 0);
  vcpu.GuestWake();
  EXPECT_EQ(vcpu.tid(), 0);
  machine_.Move(&vcpu, 3);
  EXPECT_EQ(vcpu.tid(), 3);
  EXPECT_TRUE(vcpu.running());
  EXPECT_FALSE(machine_.sched(0).busy());
  EXPECT_TRUE(machine_.sched(3).busy());
  vcpu.GuestHalt();
  machine_.sched(3).Detach(&vcpu);
}

TEST_F(MachineFixture, PausedEntityStaysAttachedAndAccruesSteal) {
  VcpuThread vcpu("vcpu0");
  machine_.Attach(&vcpu, 0);
  vcpu.GuestWake();
  sim_.RunFor(MsToNs(10));
  EXPECT_TRUE(vcpu.running());

  // Pause (migration downtime): dequeued but still attached, tid valid.
  vcpu.SetPaused(true);
  EXPECT_FALSE(vcpu.running());
  EXPECT_TRUE(vcpu.attached());
  EXPECT_EQ(vcpu.tid(), 0);
  EXPECT_FALSE(machine_.sched(0).busy());
  TimeNs steal_before = vcpu.steal_ns(sim_.now());
  sim_.RunFor(MsToNs(5));
  // Paused pending demand reads as steal, exactly what a guest sees.
  EXPECT_EQ(vcpu.steal_ns(sim_.now()) - steal_before, MsToNs(5));

  // Demand changes while paused must not enqueue the entity.
  vcpu.GuestHalt();
  vcpu.GuestWake();
  sim_.RunFor(MsToNs(1));
  EXPECT_FALSE(vcpu.running());

  // Unpause: pending demand resumes immediately.
  vcpu.SetPaused(false);
  EXPECT_TRUE(vcpu.running());
  TimeNs ran_before = vcpu.ran_ns(sim_.now());
  sim_.RunFor(MsToNs(5));
  EXPECT_EQ(vcpu.ran_ns(sim_.now()) - ran_before, MsToNs(5));
  vcpu.GuestHalt();
  machine_.sched(0).Detach(&vcpu);
}

TEST_F(MachineFixture, SharedTopologyAndParamsConstructor) {
  auto topo = std::make_shared<const HostTopology>(SmtSpec());
  auto params = std::make_shared<const HostSchedParams>();
  HostMachine a(&sim_, topo, params);
  HostMachine b(&sim_, topo, params);
  EXPECT_EQ(&a.topology(), topo.get());
  EXPECT_EQ(a.shared_topology().get(), b.shared_topology().get());
  EXPECT_EQ(a.num_threads(), 4);
  // set_params copies on write: thread 0's snapshot diverges, thread 1 keeps
  // referencing the shared one.
  HostSchedParams tweaked = *params;
  tweaked.min_granularity = MsToNs(1);
  a.sched(0).set_params(tweaked);
  EXPECT_EQ(a.sched(0).params().min_granularity, MsToNs(1));
  EXPECT_EQ(a.sched(1).params().min_granularity, params->min_granularity);
}

TEST_F(MachineFixture, StackedVcpusNeverRunSimultaneously) {
  VcpuThread a("a");
  VcpuThread b("b");
  machine_.Attach(&a, 0);
  machine_.Attach(&b, 0);
  a.GuestWake();
  b.GuestWake();
  for (int i = 0; i < 100; ++i) {
    sim_.RunFor(UsToNs(500));
    EXPECT_FALSE(a.running() && b.running());
  }
  TimeNs now = sim_.now();
  EXPECT_EQ(a.ran_ns(now) + b.ran_ns(now), now);
  a.GuestHalt();
  b.GuestHalt();
  machine_.sched(0).Detach(&a);
  machine_.sched(0).Detach(&b);
}

}  // namespace
}  // namespace vsched
