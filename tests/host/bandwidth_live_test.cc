// Tests for CpuSched::SetBandwidthLive: changing a CFS bandwidth cap on a
// *running* entity (the fault injector's bandwidth-jitter primitive) without
// detaching it, including cap imposition, tightening, and removal.
#include <gtest/gtest.h>

#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TopologySpec OneCoreSpec() {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = 1;
  spec.threads_per_core = 1;
  return spec;
}

class BandwidthLiveFixture : public ::testing::Test {
 protected:
  BandwidthLiveFixture() : sim_(1), machine_(&sim_, OneCoreSpec()) {}

  // Share of the window [from, now) the entity actually ran.
  static double ShareSince(const Stressor& s, TimeNs from, TimeNs now, TimeNs ran_at_from) {
    return static_cast<double>(s.ran_ns(now) - ran_at_from) / static_cast<double>(now - from);
  }

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(BandwidthLiveFixture, ImposesACapOnAnUncappedRunningEntity) {
  Stressor s(&sim_, "s");
  s.Start(&machine_, 0);
  sim_.RunFor(MsToNs(100));
  ASSERT_FALSE(s.has_bandwidth());
  TimeNs from = sim_.now();
  TimeNs ran = s.ran_ns(from);
  machine_.sched(0).SetBandwidthLive(&s, MsToNs(2), MsToNs(10));  // 20% cap
  sim_.RunFor(SecToNs(1));
  EXPECT_TRUE(s.has_bandwidth());
  EXPECT_NEAR(ShareSince(s, from, sim_.now(), ran), 0.2, 0.02);
  s.Stop();
}

TEST_F(BandwidthLiveFixture, TightensAnExistingCapMidPeriod) {
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(8), MsToNs(10));  // 80%
  s.Start(&machine_, 0);
  sim_.RunFor(MsToNs(103));  // mid-period on the staggered refill grid
  TimeNs from = sim_.now();
  TimeNs ran = s.ran_ns(from);
  machine_.sched(0).SetBandwidthLive(&s, MsToNs(3), MsToNs(10));  // → 30%
  sim_.RunFor(SecToNs(1));
  EXPECT_NEAR(ShareSince(s, from, sim_.now(), ran), 0.3, 0.03);
  s.Stop();
}

TEST_F(BandwidthLiveFixture, RemovingTheCapUnthrottlesImmediately) {
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(2), MsToNs(10));  // 20%
  s.Start(&machine_, 0);
  // Run until mid-throttle: 2ms of quota burns within the first period.
  sim_.RunFor(MsToNs(5));
  ASSERT_TRUE(s.throttled());
  TimeNs from = sim_.now();
  TimeNs ran = s.ran_ns(from);
  machine_.sched(0).SetBandwidthLive(&s, 0, 0);  // uncapped
  EXPECT_FALSE(s.throttled());
  sim_.RunFor(SecToNs(1));
  EXPECT_FALSE(s.has_bandwidth());
  EXPECT_NEAR(ShareSince(s, from, sim_.now(), ran), 1.0, 0.01);
  s.Stop();
}

TEST_F(BandwidthLiveFixture, RestoringTheOriginalCapRestoresTheOriginalShare) {
  // The injector's end-of-jitter path: scale the quota down, then put the
  // original (quota, period) back and expect the original behaviour.
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(5), MsToNs(10));  // 50%
  s.Start(&machine_, 0);
  sim_.RunFor(MsToNs(200));
  machine_.sched(0).SetBandwidthLive(&s, MsToNs(1), MsToNs(10));  // jitter: 10%
  sim_.RunFor(MsToNs(200));
  machine_.sched(0).SetBandwidthLive(&s, MsToNs(5), MsToNs(10));  // restore
  TimeNs from = sim_.now();
  TimeNs ran = s.ran_ns(from);
  sim_.RunFor(SecToNs(1));
  EXPECT_NEAR(ShareSince(s, from, sim_.now(), ran), 0.5, 0.02);
  s.Stop();
}

TEST_F(BandwidthLiveFixture, UsageResetGrantsAFreshQuota) {
  // SetBandwidthLive resets bw_used_: an entity throttled under the old cap
  // immediately gets the new quota rather than staying throttled until the
  // next refill.
  Stressor s(&sim_, "s");
  s.SetBandwidth(MsToNs(1), MsToNs(100));
  s.Start(&machine_, 0);
  sim_.RunFor(MsToNs(10));
  ASSERT_TRUE(s.throttled());
  machine_.sched(0).SetBandwidthLive(&s, MsToNs(1), MsToNs(100));
  EXPECT_TRUE(s.running());  // fresh quota, running again right now
  s.Stop();
}

}  // namespace
}  // namespace vsched
