// Parameterized property tests for the host scheduler: fairness across
// weight ratios, bandwidth-cap accuracy across the quota/period grid,
// latency shaping by granularity, and time conservation under random mixes.
#include <gtest/gtest.h>

#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TopologySpec OneCore() {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = 1;
  spec.threads_per_core = 1;
  return spec;
}

// ---------------------------------------------------------------------------
// Fairness: two entities' runtime split matches their weight ratio.
// ---------------------------------------------------------------------------

class WeightFairness : public ::testing::TestWithParam<double> {};

TEST_P(WeightFairness, ShareMatchesWeightRatio) {
  double ratio = GetParam();
  Simulation sim(1);
  HostMachine machine(&sim, OneCore());
  Stressor heavy(&sim, "heavy", 1024.0 * ratio);
  Stressor light(&sim, "light", 1024.0);
  heavy.Start(&machine, 0);
  light.Start(&machine, 0);
  sim.RunFor(SecToNs(3));
  TimeNs now = sim.now();
  double rh = static_cast<double>(heavy.ran_ns(now));
  double rl = static_cast<double>(light.ran_ns(now));
  double expected = ratio / (ratio + 1.0);
  EXPECT_NEAR(rh / (rh + rl), expected, 0.03) << "weight ratio " << ratio;
  heavy.Stop();
  light.Stop();
}

INSTANTIATE_TEST_SUITE_P(Ratios, WeightFairness,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0));

// ---------------------------------------------------------------------------
// Bandwidth: achieved runtime fraction equals quota/period across the grid.
// ---------------------------------------------------------------------------

struct BwCase {
  double fraction;
  TimeNs period;
};

class BandwidthGrid : public ::testing::TestWithParam<BwCase> {};

TEST_P(BandwidthGrid, RuntimeMatchesQuotaFraction) {
  BwCase c = GetParam();
  Simulation sim(2);
  HostMachine machine(&sim, OneCore());
  Stressor s(&sim, "s");
  s.SetBandwidth(static_cast<TimeNs>(c.fraction * static_cast<double>(c.period)), c.period);
  s.Start(&machine, 0);
  sim.RunFor(SecToNs(2));
  TimeNs now = sim.now();
  double achieved = static_cast<double>(s.ran_ns(now)) / static_cast<double>(now);
  EXPECT_NEAR(achieved, c.fraction, 0.02)
      << "fraction " << c.fraction << " period " << NsToMs(c.period) << " ms";
  // Steal accounts the complement (the entity always wants to run).
  double stolen = static_cast<double>(s.steal_ns(now)) / static_cast<double>(now);
  EXPECT_NEAR(stolen, 1.0 - c.fraction, 0.02);
  s.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BandwidthGrid,
    ::testing::Values(BwCase{0.1, MsToNs(10)}, BwCase{0.25, MsToNs(10)}, BwCase{0.5, MsToNs(10)},
                      BwCase{0.75, MsToNs(10)}, BwCase{0.9, MsToNs(10)}, BwCase{0.5, MsToNs(4)},
                      BwCase{0.5, MsToNs(20)}, BwCase{0.3, MsToNs(50)}, BwCase{0.05, MsToNs(20)}));

// ---------------------------------------------------------------------------
// Granularity shapes the inactive stint of an equal-weight competitor pair.
// ---------------------------------------------------------------------------

class GranularityShaping : public ::testing::TestWithParam<TimeNs> {};

TEST_P(GranularityShaping, InactiveStintTracksMinGranularity) {
  TimeNs gran = GetParam();
  Simulation sim(3);
  HostSchedParams params;
  params.min_granularity = gran;
  params.wakeup_granularity = gran;
  HostMachine machine(&sim, OneCore(), params);
  Stressor a(&sim, "a");
  Stressor b(&sim, "b");
  a.Start(&machine, 0);
  b.Start(&machine, 0);
  // Sample a's running state and record stint lengths.
  sim.RunFor(MsToNs(50));
  TimeNs inactive_start = -1;
  std::vector<TimeNs> inactive_stints;
  TimeNs step = gran / 20;
  for (int i = 0; i < 4000 && inactive_stints.size() < 40; ++i) {
    sim.RunFor(step);
    if (!a.running() && inactive_start < 0) {
      inactive_start = sim.now();
    } else if (a.running() && inactive_start >= 0) {
      inactive_stints.push_back(sim.now() - inactive_start);
      inactive_start = -1;
    }
  }
  ASSERT_GE(inactive_stints.size(), 10u);
  double mean = 0;
  for (TimeNs t : inactive_stints) {
    mean += static_cast<double>(t);
  }
  mean /= static_cast<double>(inactive_stints.size());
  // Equal weights → the competitor runs one-to-two slices per rotation
  // (vruntime ties resolve by staying), so the inactive stint is between
  // gran and 2×gran and scales linearly with the knob.
  EXPECT_GE(mean, 0.8 * static_cast<double>(gran));
  EXPECT_LE(mean, 2.4 * static_cast<double>(gran));
  a.Stop();
  b.Stop();
}

INSTANTIATE_TEST_SUITE_P(Grans, GranularityShaping,
                         ::testing::Values(MsToNs(1), MsToNs(2), MsToNs(4), MsToNs(8),
                                           MsToNs(16)));

// ---------------------------------------------------------------------------
// Conservation under a random mix of duty-cycled entities.
// ---------------------------------------------------------------------------

class RandomMixConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomMixConservation, ThreadTimeIsPartitioned) {
  Simulation sim(GetParam());
  HostMachine machine(&sim, OneCore());
  Rng rng = sim.ForkRng();
  std::vector<std::unique_ptr<Stressor>> entities;
  for (int i = 0; i < 6; ++i) {
    entities.push_back(
        std::make_unique<Stressor>(&sim, "e" + std::to_string(i), rng.Uniform(256, 4096)));
    if (rng.Bernoulli(0.5)) {
      entities.back()->StartDutyCycle(&machine, 0,
                                      static_cast<TimeNs>(rng.Uniform(1, 10) * kNsPerMs),
                                      static_cast<TimeNs>(rng.Uniform(1, 10) * kNsPerMs));
    } else {
      entities.back()->Start(&machine, 0);
    }
  }
  sim.RunFor(SecToNs(2));
  TimeNs now = sim.now();
  // Invariants: runtime+steal+halted == elapsed for each entity; total
  // runtime never exceeds wall time; at least one always-on entity → busy.
  TimeNs total_ran = 0;
  for (auto& e : entities) {
    EXPECT_EQ(e->ran_ns(now) + e->steal_ns(now) + e->halted_ns(now), now) << e->name();
    total_ran += e->ran_ns(now);
  }
  EXPECT_LE(total_ran, now);
  for (auto& e : entities) {
    e->Stop();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMixConservation,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------------
// SMT speed invariants across sibling states and frequencies.
// ---------------------------------------------------------------------------

struct SmtCase {
  double freq;
  bool sibling_busy;
};

class SmtSpeed : public ::testing::TestWithParam<SmtCase> {};

TEST_P(SmtSpeed, SpeedFormulaHolds) {
  SmtCase c = GetParam();
  Simulation sim(5);
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = 1;
  spec.threads_per_core = 2;
  spec.smt_factor = 0.6;
  HostMachine machine(&sim, spec);
  machine.SetCoreFreq(0, c.freq);
  std::unique_ptr<Stressor> sibling;
  if (c.sibling_busy) {
    sibling = std::make_unique<Stressor>(&sim, "sib");
    sibling->Start(&machine, 1);
  }
  double expected = kCapacityScale * c.freq * (c.sibling_busy ? 0.6 : 1.0);
  EXPECT_DOUBLE_EQ(machine.SpeedOf(0), expected);
  if (sibling != nullptr) {
    sibling->Stop();
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, SmtSpeed,
                         ::testing::Values(SmtCase{1.0, false}, SmtCase{1.0, true},
                                           SmtCase{0.5, false}, SmtCase{0.5, true},
                                           SmtCase{2.0, false}, SmtCase{2.0, true}));

}  // namespace
}  // namespace vsched
