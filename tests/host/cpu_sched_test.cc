#include "src/host/cpu_sched.h"

#include <gtest/gtest.h>

#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TopologySpec OneCoreSpec() {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = 1;
  spec.threads_per_core = 1;
  return spec;
}

class HostFixture : public ::testing::Test {
 protected:
  HostFixture() : sim_(1), machine_(&sim_, OneCoreSpec()) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(HostFixture, SingleEntityRunsImmediately) {
  Stressor s(&sim_, "s");
  s.Start(&machine_, 0);
  EXPECT_TRUE(s.running());
  sim_.RunFor(MsToNs(100));
  EXPECT_EQ(s.ran_ns(sim_.now()), MsToNs(100));
  EXPECT_EQ(s.steal_ns(sim_.now()), 0);
  s.Stop();
}

TEST_F(HostFixture, TwoEqualEntitiesShareFairly) {
  Stressor a(&sim_, "a");
  Stressor b(&sim_, "b");
  a.Start(&machine_, 0);
  b.Start(&machine_, 0);
  sim_.RunFor(SecToNs(1));
  TimeNs now = sim_.now();
  double ra = static_cast<double>(a.ran_ns(now));
  double rb = static_cast<double>(b.ran_ns(now));
  EXPECT_NEAR(ra / (ra + rb), 0.5, 0.02);
  // While one runs, the other accrues steal.
  EXPECT_GT(a.steal_ns(now), MsToNs(400));
  a.Stop();
  b.Stop();
}

TEST_F(HostFixture, WeightsSkewTheShares) {
  Stressor heavy(&sim_, "heavy", /*weight=*/3072.0);
  Stressor light(&sim_, "light", /*weight=*/1024.0);
  heavy.Start(&machine_, 0);
  light.Start(&machine_, 0);
  sim_.RunFor(SecToNs(2));
  TimeNs now = sim_.now();
  double rh = static_cast<double>(heavy.ran_ns(now));
  double rl = static_cast<double>(light.ran_ns(now));
  EXPECT_NEAR(rh / (rh + rl), 0.75, 0.03);
  heavy.Stop();
  light.Stop();
}

TEST_F(HostFixture, RtEntityStarvesFairTier) {
  Stressor rt(&sim_, "rt", 1024.0, /*rt=*/true);
  Stressor fair(&sim_, "fair");
  fair.Start(&machine_, 0);
  sim_.RunFor(MsToNs(10));
  rt.Start(&machine_, 0);
  EXPECT_TRUE(rt.running());
  EXPECT_FALSE(fair.running());
  sim_.RunFor(MsToNs(100));
  TimeNs now = sim_.now();
  EXPECT_EQ(fair.ran_ns(now), MsToNs(10));
  EXPECT_EQ(rt.ran_ns(now), MsToNs(100));
  rt.Stop();
  fair.Stop();
}

TEST_F(HostFixture, RtPreemptsImmediatelyOnWake) {
  Stressor fair(&sim_, "fair");
  fair.Start(&machine_, 0);
  sim_.RunFor(UsToNs(100));
  Stressor rt(&sim_, "rt", 1024.0, /*rt=*/true);
  rt.Start(&machine_, 0);
  // No wakeup-granularity wait for the RT tier.
  EXPECT_TRUE(rt.running());
  rt.Stop();
  fair.Stop();
}

TEST_F(HostFixture, DutyCycleStressorTogglesDemand) {
  Stressor s(&sim_, "s");
  s.StartDutyCycle(&machine_, 0, MsToNs(5), MsToNs(5));
  sim_.RunFor(MsToNs(100));
  TimeNs now = sim_.now();
  // 50% duty cycle alone on the thread → runs half the time.
  EXPECT_NEAR(static_cast<double>(s.ran_ns(now)) / static_cast<double>(now), 0.5, 0.01);
  EXPECT_EQ(s.steal_ns(now), 0);
  s.Stop();
}

TEST_F(HostFixture, DetachedEntityStopsAccruing) {
  Stressor s(&sim_, "s");
  s.Start(&machine_, 0);
  sim_.RunFor(MsToNs(10));
  s.Stop();
  TimeNs ran = s.ran_ns(sim_.now());
  sim_.RunFor(MsToNs(10));
  EXPECT_EQ(s.ran_ns(sim_.now()), ran);
  EXPECT_FALSE(machine_.sched(0).busy());
}

TEST_F(HostFixture, SleeperGetsWakeupCreditNotStarved) {
  Stressor hog(&sim_, "hog");
  hog.Start(&machine_, 0);
  sim_.RunFor(SecToNs(1));
  // A late joiner must not monopolize the CPU to "catch up" a full second of
  // vruntime, nor be starved.
  Stressor late(&sim_, "late");
  late.Start(&machine_, 0);
  TimeNs t0 = sim_.now();
  sim_.RunFor(MsToNs(200));
  TimeNs now = sim_.now();
  double share = static_cast<double>(late.ran_ns(now)) / static_cast<double>(now - t0);
  EXPECT_GT(share, 0.35);
  EXPECT_LT(share, 0.65);
  hog.Stop();
  late.Stop();
}

TEST_F(HostFixture, RunnableCountAndCurrent) {
  Stressor a(&sim_, "a");
  Stressor b(&sim_, "b");
  EXPECT_EQ(machine_.sched(0).runnable_count(), 0u);
  a.Start(&machine_, 0);
  b.Start(&machine_, 0);
  EXPECT_EQ(machine_.sched(0).runnable_count(), 2u);
  EXPECT_NE(machine_.sched(0).current(), nullptr);
  a.Stop();
  b.Stop();
}

TEST_F(HostFixture, ConservationOfThreadTime) {
  Stressor a(&sim_, "a");
  Stressor b(&sim_, "b");
  Stressor c(&sim_, "c", 2048.0);
  a.Start(&machine_, 0);
  b.Start(&machine_, 0);
  c.Start(&machine_, 0);
  sim_.RunFor(SecToNs(1));
  TimeNs now = sim_.now();
  TimeNs total = a.ran_ns(now) + b.ran_ns(now) + c.ran_ns(now);
  // The thread is never idle: total runtime equals elapsed time.
  EXPECT_EQ(total, now);
  a.Stop();
  b.Stop();
  c.Stop();
}

}  // namespace
}  // namespace vsched
