#include "src/host/topology.h"

#include <gtest/gtest.h>

namespace vsched {
namespace {

TopologySpec SmallSpec() {
  TopologySpec spec;
  spec.sockets = 2;
  spec.cores_per_socket = 2;
  spec.threads_per_core = 2;
  return spec;
}

TEST(TopologyTest, Counts) {
  HostTopology topo(SmallSpec());
  EXPECT_EQ(topo.num_sockets(), 2);
  EXPECT_EQ(topo.num_cores(), 4);
  EXPECT_EQ(topo.num_threads(), 8);
}

TEST(TopologyTest, CoreAndSocketMapping) {
  HostTopology topo(SmallSpec());
  EXPECT_EQ(topo.CoreOf(0), 0);
  EXPECT_EQ(topo.CoreOf(1), 0);
  EXPECT_EQ(topo.CoreOf(2), 1);
  EXPECT_EQ(topo.SocketOf(0), 0);
  EXPECT_EQ(topo.SocketOf(3), 0);
  EXPECT_EQ(topo.SocketOf(4), 1);
  EXPECT_EQ(topo.SocketOf(7), 1);
}

TEST(TopologyTest, Siblings) {
  HostTopology topo(SmallSpec());
  EXPECT_EQ(topo.SiblingOf(0), 1);
  EXPECT_EQ(topo.SiblingOf(1), 0);
  EXPECT_EQ(topo.SiblingOf(6), 7);
}

TEST(TopologyTest, NoSiblingWithoutSmt) {
  TopologySpec spec = SmallSpec();
  spec.threads_per_core = 1;
  HostTopology topo(spec);
  EXPECT_EQ(topo.SiblingOf(0), -1);
  EXPECT_EQ(topo.num_threads(), 4);
}

TEST(TopologyTest, ThreadsOfCore) {
  HostTopology topo(SmallSpec());
  auto threads = topo.ThreadsOfCore(1);
  ASSERT_EQ(threads.size(), 2u);
  EXPECT_EQ(threads[0], 2);
  EXPECT_EQ(threads[1], 3);
}

TEST(TopologyTest, DistanceClasses) {
  HostTopology topo(SmallSpec());
  EXPECT_EQ(topo.DistanceClass(0, 0), HwDistance::kSame);
  EXPECT_EQ(topo.DistanceClass(0, 1), HwDistance::kSmtSibling);
  EXPECT_EQ(topo.DistanceClass(0, 2), HwDistance::kSameSocket);
  EXPECT_EQ(topo.DistanceClass(0, 4), HwDistance::kCrossSocket);
}

TEST(TopologyTest, CacheLatenciesOrdered) {
  HostTopology topo(SmallSpec());
  double smt = topo.CacheLatencyNs(0, 1);
  double socket = topo.CacheLatencyNs(0, 2);
  double cross = topo.CacheLatencyNs(0, 4);
  EXPECT_LT(smt, socket);
  EXPECT_LT(socket, cross);
}

}  // namespace
}  // namespace vsched
