#include "src/guest/cpumask.h"

#include <vector>

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(CpuMaskTest, BasicSetTestClear) {
  CpuMask m;
  EXPECT_TRUE(m.Empty());
  m.Set(3);
  m.Set(63);
  EXPECT_TRUE(m.Test(3));
  EXPECT_TRUE(m.Test(63));
  EXPECT_FALSE(m.Test(4));
  EXPECT_EQ(m.Count(), 2);
  m.Clear(3);
  EXPECT_FALSE(m.Test(3));
}

TEST(CpuMaskTest, FirstN) {
  EXPECT_EQ(CpuMask::FirstN(0).Count(), 0);
  EXPECT_EQ(CpuMask::FirstN(5).Count(), 5);
  EXPECT_EQ(CpuMask::FirstN(64).Count(), 64);
  EXPECT_TRUE(CpuMask::FirstN(5).Test(4));
  EXPECT_FALSE(CpuMask::FirstN(5).Test(5));
}

TEST(CpuMaskTest, FirstAndNextFrom) {
  CpuMask m;
  EXPECT_EQ(m.First(), -1);
  m.Set(2);
  m.Set(7);
  EXPECT_EQ(m.First(), 2);
  EXPECT_EQ(m.NextFrom(0), 2);
  EXPECT_EQ(m.NextFrom(3), 7);
  EXPECT_EQ(m.NextFrom(8), -1);
}

TEST(CpuMaskTest, Operators) {
  CpuMask a = CpuMask::FirstN(4);
  CpuMask b = CpuMask::Single(2) | CpuMask::Single(5);
  CpuMask both = a & b;
  EXPECT_EQ(both.Count(), 1);
  EXPECT_TRUE(both.Test(2));
  CpuMask inv = ~a & CpuMask::FirstN(6);
  EXPECT_EQ(inv.Count(), 2);
  EXPECT_TRUE(inv.Test(4));
  EXPECT_TRUE(inv.Test(5));
}

TEST(CpuMaskTest, Iteration) {
  CpuMask m = CpuMask::Single(1) | CpuMask::Single(9) | CpuMask::Single(33);
  std::vector<int> seen;
  for (int cpu : m) {
    seen.push_back(cpu);
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 9, 33}));
}

TEST(CpuMaskTest, IterationEmpty) {
  CpuMask m;
  for (int cpu : m) {
    (void)cpu;
    FAIL() << "empty mask iterated";
  }
}

}  // namespace
}  // namespace vsched
