// Property tests on guest-kernel invariants under randomized workload soups:
// work conservation, runqueue membership consistency, vruntime monotonicity,
// ban enforcement, and fair sharing across task/vCPU ratios.
#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

// ---------------------------------------------------------------------------
// Random workload soup: invariants hold at every sampled instant.
// ---------------------------------------------------------------------------

class WorkloadSoup : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkloadSoup, KernelInvariantsHold) {
  Simulation sim(GetParam());
  HostMachine machine(&sim, FlatSpec(6));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 6));
  GuestKernel& kernel = vm.kernel();
  Rng rng = sim.ForkRng();

  // A co-tenant on half the threads to exercise activity transitions.
  std::vector<std::unique_ptr<Stressor>> stressors;
  for (int c = 0; c < 3; ++c) {
    stressors.push_back(std::make_unique<Stressor>(&sim, "s"));
    stressors.back()->Start(&machine, c);
  }

  std::vector<std::unique_ptr<TaskBehavior>> behaviors;
  std::vector<Task*> tasks;
  for (int i = 0; i < 12; ++i) {
    double kind = rng.NextDouble();
    if (kind < 0.4) {
      behaviors.push_back(std::make_unique<HogBehavior>(
          WorkAtCapacity(kCapacityScale, static_cast<TimeNs>(rng.Uniform(0.2, 3) * kNsPerMs))));
    } else if (kind < 0.8) {
      behaviors.push_back(std::make_unique<PeriodicBehavior>(
          WorkAtCapacity(kCapacityScale, static_cast<TimeNs>(rng.Uniform(0.1, 2) * kNsPerMs)),
          static_cast<TimeNs>(rng.Uniform(0.5, 4) * kNsPerMs)));
    } else {
      behaviors.push_back(std::make_unique<HogBehavior>(
          WorkAtCapacity(kCapacityScale, UsToNs(300))));
    }
    TaskPolicy policy = rng.Bernoulli(0.25) ? TaskPolicy::kIdle : TaskPolicy::kNormal;
    Task* t = kernel.CreateTask("t" + std::to_string(i), policy, behaviors.back().get());
    kernel.StartTask(t);
    tasks.push_back(t);
  }

  std::vector<double> last_vruntime(tasks.size(), 0);
  for (int step = 0; step < 40; ++step) {
    sim.RunFor(MsToNs(25));
    // (1) Each task is in a consistent place: running on exactly the vCPU it
    // claims, or queued exactly once, never both.
    for (Task* t : tasks) {
      int queued_on = -1;
      int queued_count = 0;
      int running_on = -1;
      for (int c = 0; c < kernel.num_vcpus(); ++c) {
        if (kernel.vcpu(c).rq().Contains(t)) {
          queued_on = c;
          ++queued_count;
        }
        if (kernel.vcpu(c).current() == t) {
          running_on = c;
        }
      }
      EXPECT_LE(queued_count, 1) << t->name();
      switch (t->state()) {
        case TaskState::kRunning:
          EXPECT_EQ(running_on, t->cpu()) << t->name();
          EXPECT_EQ(queued_count, 0) << t->name();
          break;
        case TaskState::kRunnable:
          EXPECT_EQ(queued_on, t->cpu()) << t->name();
          EXPECT_EQ(running_on, -1) << t->name();
          break;
        default:
          EXPECT_EQ(queued_count, 0) << t->name();
          EXPECT_EQ(running_on, -1) << t->name();
          break;
      }
    }
    // (2) vruntime is monotone per task.
    for (size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_GE(tasks[i]->vruntime(), last_vruntime[i]) << tasks[i]->name();
      last_vruntime[i] = tasks[i]->vruntime();
    }
  }

  // (3) Work conservation: time attributed to tasks equals vCPU busy time.
  TimeNs task_total = 0;
  for (const auto& t : kernel.tasks()) {
    task_total += t->total_exec_ns();
  }
  TimeNs vcpu_total = 0;
  for (int c = 0; c < kernel.num_vcpus(); ++c) {
    vcpu_total += kernel.vcpu(c).busy_ns();
  }
  EXPECT_EQ(task_total, vcpu_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSoup, ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------------
// Ban enforcement holds continuously while bans are active.
// ---------------------------------------------------------------------------

class BanEnforcement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BanEnforcement, BannedVcpusNeverRunIneligibleTasks) {
  Simulation sim(GetParam());
  HostMachine machine(&sim, FlatSpec(6));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 6));
  GuestKernel& kernel = vm.kernel();
  std::vector<std::unique_ptr<HogBehavior>> behaviors;
  for (int i = 0; i < 8; ++i) {
    behaviors.push_back(std::make_unique<HogBehavior>(WorkAtCapacity(kCapacityScale, UsToNs(700))));
    Task* t = kernel.CreateTask("hog" + std::to_string(i),
                                i % 3 == 0 ? TaskPolicy::kIdle : TaskPolicy::kNormal,
                                behaviors.back().get());
    kernel.StartTask(t);
  }
  sim.RunFor(MsToNs(50));
  kernel.SetBans(/*straggler=*/CpuMask::Single(4), /*stack=*/CpuMask::Single(5));
  sim.RunFor(MsToNs(20));  // Allow evacuation to finish.
  int violations = 0;
  kernel.AddTickHook([&](GuestVcpu* v, TimeNs) {
    Task* curr = v->current();
    if (curr == nullptr) {
      return;
    }
    if (v->index() == 5 && !curr->exempt_all_bans()) {
      ++violations;
    }
    if (v->index() == 4 && curr->policy() == TaskPolicy::kNormal &&
        !curr->exempt_straggler_ban() && !curr->exempt_all_bans()) {
      ++violations;
    }
  });
  sim.RunFor(SecToNs(1));
  EXPECT_EQ(violations, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BanEnforcement, ::testing::Values(7, 17, 27));

// ---------------------------------------------------------------------------
// Fair sharing across task/vCPU ratios: N hogs on M vCPUs each get ~M/N.
// ---------------------------------------------------------------------------

struct ShareCase {
  int tasks;
  int vcpus;
};

class FairShare : public ::testing::TestWithParam<ShareCase> {};

TEST_P(FairShare, HogsSplitCapacityEvenly) {
  ShareCase c = GetParam();
  Simulation sim(9);
  HostMachine machine(&sim, FlatSpec(c.vcpus));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", c.vcpus));
  std::vector<std::unique_ptr<HogBehavior>> behaviors;
  std::vector<Task*> tasks;
  for (int i = 0; i < c.tasks; ++i) {
    behaviors.push_back(std::make_unique<HogBehavior>());
    Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, behaviors.back().get());
    vm.kernel().StartTask(t);
    tasks.push_back(t);
  }
  sim.RunFor(SecToNs(3));
  double expected = std::min(1.0, static_cast<double>(c.vcpus) / c.tasks);
  for (Task* t : tasks) {
    double share = static_cast<double>(t->total_exec_ns()) / static_cast<double>(sim.now());
    EXPECT_NEAR(share, expected, 0.15 * expected + 0.02)
        << c.tasks << " tasks on " << c.vcpus << " vCPUs";
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, FairShare,
                         ::testing::Values(ShareCase{2, 4}, ShareCase{4, 4}, ShareCase{8, 4},
                                           ShareCase{6, 3}, ShareCase{12, 4}, ShareCase{3, 8}));

// ---------------------------------------------------------------------------
// PELT tracks duty cycles across a parameter sweep inside the live kernel.
// ---------------------------------------------------------------------------

class PeltDuty : public ::testing::TestWithParam<double> {};

TEST_P(PeltDuty, UtilConvergesToDuty) {
  double duty = GetParam();
  Simulation sim(3);
  HostMachine machine(&sim, FlatSpec(2));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 2));
  TimeNs run = static_cast<TimeNs>(duty * 8 * kNsPerMs);
  TimeNs sleep = MsToNs(8) - run;
  PeriodicBehavior b(WorkAtCapacity(kCapacityScale, run), sleep);
  Task* t = vm.kernel().CreateTask("p", TaskPolicy::kNormal, &b, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim.RunFor(SecToNs(2));
  EXPECT_NEAR(t->UtilAt(sim.now()) / kCapacityScale, duty, 0.12) << "duty " << duty;
}

INSTANTIATE_TEST_SUITE_P(Duties, PeltDuty, ::testing::Values(0.125, 0.25, 0.5, 0.75));

}  // namespace
}  // namespace vsched
