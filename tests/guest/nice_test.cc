// Nice-level scheduling: the CFS weight table shapes CPU shares.
#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec OneCore() {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = 1;
  spec.threads_per_core = 1;
  return spec;
}

struct NiceCase {
  int nice_a;
  int nice_b;
};

class NiceShares : public ::testing::TestWithParam<NiceCase> {};

TEST_P(NiceShares, SharesFollowWeightTable) {
  NiceCase c = GetParam();
  Simulation sim(21);
  HostMachine machine(&sim, OneCore());
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 1));
  HogBehavior ha;
  HogBehavior hb;
  Task* ta = vm.kernel().CreateTask("a", TaskPolicy::kNormal, &ha, CpuMask::Single(0));
  Task* tb = vm.kernel().CreateTask("b", TaskPolicy::kNormal, &hb, CpuMask::Single(0));
  ta->set_nice(c.nice_a);
  tb->set_nice(c.nice_b);
  vm.kernel().StartTask(ta);
  vm.kernel().StartTask(tb);
  sim.RunFor(SecToNs(2));
  double wa = NiceToWeight(c.nice_a);
  double wb = NiceToWeight(c.nice_b);
  double expected = wa / (wa + wb);
  double ra = static_cast<double>(ta->total_exec_ns());
  double rb = static_cast<double>(tb->total_exec_ns());
  EXPECT_NEAR(ra / (ra + rb), expected, 0.05)
      << "nice " << c.nice_a << " vs " << c.nice_b;
}

INSTANTIATE_TEST_SUITE_P(Pairs, NiceShares,
                         ::testing::Values(NiceCase{0, 0}, NiceCase{-5, 0}, NiceCase{0, 5},
                                           NiceCase{-10, 10}, NiceCase{-1, 1}));

TEST(NiceTest, HighNiceStillRunsEventually) {
  Simulation sim(22);
  HostMachine machine(&sim, OneCore());
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 1));
  HogBehavior important;
  HogBehavior background;
  Task* ti = vm.kernel().CreateTask("imp", TaskPolicy::kNormal, &important, CpuMask::Single(0));
  Task* tbg = vm.kernel().CreateTask("bg", TaskPolicy::kNormal, &background, CpuMask::Single(0));
  ti->set_nice(-20);
  tbg->set_nice(19);
  vm.kernel().StartTask(ti);
  vm.kernel().StartTask(tbg);
  sim.RunFor(SecToNs(2));
  // weight 15 vs 88761: bg gets ~0.017% but is never fully starved.
  EXPECT_GT(tbg->total_exec_ns(), 0);
  EXPECT_GT(ti->total_exec_ns(), 100 * tbg->total_exec_ns());
}

TEST(NiceDeathTest, RejectsOutOfRangeNice) {
  Simulation sim(23);
  HostMachine machine(&sim, OneCore());
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 1));
  HogBehavior h;
  Task* t = vm.kernel().CreateTask("t", TaskPolicy::kNormal, &h);
  EXPECT_DEATH(t->set_nice(20), "nice");
  EXPECT_DEATH(t->set_nice(-21), "nice");
}

}  // namespace
}  // namespace vsched
