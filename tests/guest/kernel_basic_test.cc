// Core guest-kernel behaviour: execution, fairness, policies, accounting.
#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

class KernelFixture : public ::testing::Test {
 protected:
  KernelFixture() : sim_(7), machine_(&sim_, FlatSpec(8)) {}

  std::unique_ptr<Vm> MakeVm(int vcpus) {
    return std::make_unique<Vm>(&sim_, &machine_, MakeSimpleVmSpec("vm", vcpus));
  }

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(KernelFixture, SingleTaskCompletesInExpectedTime) {
  auto vm = MakeVm(1);
  // 10 ms of work at full capacity.
  FixedWorkBehavior b(WorkAtCapacity(kCapacityScale, MsToNs(10)));
  Task* t = vm->kernel().CreateTask("t", TaskPolicy::kNormal, &b);
  vm->kernel().StartTask(t);
  sim_.RunFor(MsToNs(100));
  ASSERT_TRUE(b.done());
  EXPECT_EQ(b.finished_at(), MsToNs(10));
  EXPECT_EQ(t->state(), TaskState::kFinished);
  EXPECT_EQ(t->total_exec_ns(), MsToNs(10));
}

TEST_F(KernelFixture, VcpuHaltsWhenIdle) {
  auto vm = MakeVm(1);
  FixedWorkBehavior b(WorkAtCapacity(kCapacityScale, MsToNs(1)));
  Task* t = vm->kernel().CreateTask("t", TaskPolicy::kNormal, &b);
  vm->kernel().StartTask(t);
  sim_.RunFor(MsToNs(50));
  EXPECT_TRUE(b.done());
  // After the task exits, the vCPU thread halts (no host demand).
  EXPECT_FALSE(vm->thread(0).wants_to_run());
  EXPECT_TRUE(vm->kernel().vcpu(0).IsIdle());
}

TEST_F(KernelFixture, TwoHogsOnOneVcpuShareFairly) {
  auto vm = MakeVm(1);
  HogBehavior a;
  HogBehavior b;
  Task* ta = vm->kernel().CreateTask("a", TaskPolicy::kNormal, &a, CpuMask::Single(0));
  Task* tb = vm->kernel().CreateTask("b", TaskPolicy::kNormal, &b, CpuMask::Single(0));
  vm->kernel().StartTask(ta);
  vm->kernel().StartTask(tb);
  sim_.RunFor(SecToNs(1));
  double ra = static_cast<double>(ta->total_exec_ns());
  double rb = static_cast<double>(tb->total_exec_ns());
  EXPECT_NEAR(ra / (ra + rb), 0.5, 0.03);
  EXPECT_GT(vm->kernel().counters().context_switches.value(), 100u);
}

TEST_F(KernelFixture, SchedIdleYieldsToNormal) {
  auto vm = MakeVm(1);
  HogBehavior idle_hog;
  HogBehavior normal_hog;
  Task* ti = vm->kernel().CreateTask("idle", TaskPolicy::kIdle, &idle_hog, CpuMask::Single(0));
  vm->kernel().StartTask(ti);
  sim_.RunFor(MsToNs(10));
  Task* tn = vm->kernel().CreateTask("norm", TaskPolicy::kNormal, &normal_hog, CpuMask::Single(0));
  vm->kernel().StartTask(tn);
  TimeNs idle_before = ti->total_exec_ns();
  sim_.RunFor(SecToNs(1));
  // The SCHED_IDLE task gets (almost) nothing while a normal hog runs.
  EXPECT_LT(ti->total_exec_ns() - idle_before, MsToNs(20));
  EXPECT_GT(tn->total_exec_ns(), MsToNs(950));
}

TEST_F(KernelFixture, SchedIdleHarvestsWhenNormalSleeps) {
  auto vm = MakeVm(1);
  HogBehavior idle_hog;
  // Normal task: 1 ms work, 3 ms sleep → 25% duty.
  PeriodicBehavior periodic(WorkAtCapacity(kCapacityScale, MsToNs(1)), MsToNs(3));
  Task* ti = vm->kernel().CreateTask("idle", TaskPolicy::kIdle, &idle_hog, CpuMask::Single(0));
  Task* tn = vm->kernel().CreateTask("norm", TaskPolicy::kNormal, &periodic, CpuMask::Single(0));
  vm->kernel().StartTask(ti);
  vm->kernel().StartTask(tn);
  sim_.RunFor(SecToNs(1));
  // Best-effort harvests the ~75% the periodic task leaves idle.
  EXPECT_GT(ti->total_exec_ns(), MsToNs(650));
  EXPECT_NEAR(static_cast<double>(tn->total_exec_ns()), MsToNs(250),
              static_cast<double>(MsToNs(30)));
}

TEST_F(KernelFixture, WakePlacementSpreadsAcrossIdleVcpus) {
  auto vm = MakeVm(4);
  std::vector<std::unique_ptr<HogBehavior>> behaviors;
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    behaviors.push_back(std::make_unique<HogBehavior>());
    Task* t = vm->kernel().CreateTask("hog", TaskPolicy::kNormal, behaviors.back().get());
    vm->kernel().StartTask(t);
    tasks.push_back(t);
  }
  sim_.RunFor(MsToNs(200));
  // All four hogs should enjoy a whole vCPU each.
  for (Task* t : tasks) {
    EXPECT_GT(t->total_exec_ns(), MsToNs(190));
  }
}

TEST_F(KernelFixture, LoadBalancerResolvesOverload) {
  auto vm = MakeVm(4);
  // Pin-free hogs started while vCPU 0 is the only busy one: place 8 hogs,
  // then verify each gets roughly half a vCPU (8 tasks / 4 vCPUs).
  std::vector<std::unique_ptr<HogBehavior>> behaviors;
  std::vector<Task*> tasks;
  for (int i = 0; i < 8; ++i) {
    behaviors.push_back(std::make_unique<HogBehavior>());
    Task* t = vm->kernel().CreateTask("hog", TaskPolicy::kNormal, behaviors.back().get());
    vm->kernel().StartTask(t);
    tasks.push_back(t);
  }
  sim_.RunFor(SecToNs(2));
  for (Task* t : tasks) {
    double share = static_cast<double>(t->total_exec_ns()) / static_cast<double>(SecToNs(2));
    EXPECT_NEAR(share, 0.5, 0.12) << t->name();
  }
}

TEST_F(KernelFixture, PushBalanceFillsIdleVcpu) {
  auto vm = MakeVm(2);
  // Both hogs forced initially onto vCPU 0 via affinity, then widen it; the
  // push/pull balancer should move one to the idle vCPU 1.
  HogBehavior a;
  HogBehavior b;
  Task* ta = vm->kernel().CreateTask("a", TaskPolicy::kNormal, &a, CpuMask::Single(0));
  Task* tb = vm->kernel().CreateTask("b", TaskPolicy::kNormal, &b, CpuMask::Single(0));
  vm->kernel().StartTask(ta);
  vm->kernel().StartTask(tb);
  sim_.RunFor(MsToNs(10));
  ta->set_allowed(CpuMask::FirstN(2));
  tb->set_allowed(CpuMask::FirstN(2));
  sim_.RunFor(MsToNs(500));
  TimeNs total = ta->total_exec_ns() + tb->total_exec_ns();
  // With balancing both run nearly continuously: ~10ms shared + ~500ms each.
  EXPECT_GT(total, MsToNs(900));
  EXPECT_GT(vm->kernel().counters().migrations.value(), 0u);
}

TEST_F(KernelFixture, StealClockGrowsUnderHostContention) {
  auto vm = MakeVm(1);
  Stressor competitor(&sim_, "comp");
  competitor.Start(&machine_, 0);
  HogBehavior hog;
  Task* t = vm->kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm->kernel().StartTask(t);
  sim_.RunFor(SecToNs(1));
  TimeNs now = sim_.now();
  // vCPU shares the core ~50/50 with the competitor.
  EXPECT_NEAR(static_cast<double>(t->total_exec_ns()) / static_cast<double>(now), 0.5, 0.05);
  EXPECT_GT(vm->kernel().vcpu(0).StealClock(now), MsToNs(400));
  competitor.Stop();
}

TEST_F(KernelFixture, QueueDelayIsMeasured) {
  auto vm = MakeVm(1);
  HogBehavior hog;
  Task* th = vm->kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm->kernel().StartTask(th);
  sim_.RunFor(MsToNs(10));
  EventWorkerBehavior worker(WorkAtCapacity(kCapacityScale, UsToNs(100)));
  Task* tw = vm->kernel().CreateTask("w", TaskPolicy::kNormal, &worker, CpuMask::Single(0));
  vm->kernel().StartTask(tw);
  sim_.RunFor(MsToNs(10));
  vm->kernel().WakeTask(tw);
  sim_.RunFor(MsToNs(50));
  EXPECT_EQ(worker.handled(), 1);
  // It had to wait for the hog to be preempted.
  EXPECT_GT(tw->last_queue_delay(), 0);
  EXPECT_LT(tw->last_queue_delay(), MsToNs(5));
}

TEST_F(KernelFixture, WorkConservationAcrossTasks) {
  auto vm = MakeVm(3);
  std::vector<std::unique_ptr<PeriodicBehavior>> behaviors;
  std::vector<Task*> tasks;
  for (int i = 0; i < 6; ++i) {
    behaviors.push_back(
        std::make_unique<PeriodicBehavior>(WorkAtCapacity(kCapacityScale, MsToNs(2)), MsToNs(1)));
    Task* t = vm->kernel().CreateTask("p", TaskPolicy::kNormal, behaviors.back().get());
    vm->kernel().StartTask(t);
    tasks.push_back(t);
  }
  sim_.RunFor(SecToNs(1));
  TimeNs task_total = 0;
  for (Task* t : tasks) {
    task_total += t->total_exec_ns();
  }
  TimeNs vcpu_total = 0;
  for (int i = 0; i < 3; ++i) {
    vcpu_total += vm->kernel().vcpu(i).busy_ns();
  }
  EXPECT_EQ(task_total, vcpu_total);
}

TEST_F(KernelFixture, PeltConvergesToDutyCycle) {
  auto vm = MakeVm(2);
  HogBehavior hog;
  PeriodicBehavior light(WorkAtCapacity(kCapacityScale, MsToNs(1)), MsToNs(9));
  Task* th = vm->kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  Task* tl = vm->kernel().CreateTask("light", TaskPolicy::kNormal, &light, CpuMask::Single(1));
  vm->kernel().StartTask(th);
  vm->kernel().StartTask(tl);
  sim_.RunFor(SecToNs(1));
  EXPECT_GT(th->util(), 0.9 * kCapacityScale);
  EXPECT_LT(tl->util(), 0.3 * kCapacityScale);
  EXPECT_GT(tl->util(), 0.02 * kCapacityScale);
}

TEST_F(KernelFixture, DeterministicAcrossRuns) {
  // Behaviors draw random burst sizes from the kernel RNG, so different
  // seeds explore different schedules while equal seeds must match exactly.
  auto run_once = [](uint64_t seed) {
    Simulation sim(seed);
    HostMachine machine(&sim, FlatSpec(4));
    Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
    std::vector<std::unique_ptr<LambdaBehavior>> behaviors;
    for (int i = 0; i < 6; ++i) {
      behaviors.push_back(std::make_unique<LambdaBehavior>([](TaskContext& ctx, RunReason r) {
        if (r == RunReason::kBurstComplete) {
          return TaskAction::Sleep(UsToNs(500));
        }
        double ms = ctx.kernel->rng().Uniform(0.5, 3.0);
        return TaskAction::Run(WorkAtCapacity(kCapacityScale, static_cast<TimeNs>(ms * kNsPerMs)));
      }));
      Task* t = vm.kernel().CreateTask("p", TaskPolicy::kNormal, behaviors.back().get());
      vm.kernel().StartTask(t);
    }
    sim.RunFor(SecToNs(1));
    uint64_t sig = vm.kernel().counters().context_switches.value() * 1000003 +
                   vm.kernel().counters().migrations.value() * 17 +
                   vm.kernel().counters().wakeup_ipis.value();
    return sig;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

}  // namespace
}  // namespace vsched
