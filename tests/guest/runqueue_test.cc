#include "src/guest/runqueue.h"

#include <gtest/gtest.h>

#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

class RunqueueTest : public ::testing::Test {
 protected:
  Task* Make(uint64_t id, TaskPolicy policy) {
    tasks_.push_back(std::make_unique<Task>(id, "t" + std::to_string(id), policy, &behavior_,
                                            CpuMask::FirstN(1)));
    return tasks_.back().get();
  }

  HogBehavior behavior_;
  std::vector<std::unique_ptr<Task>> tasks_;
};

TEST_F(RunqueueTest, EmptyQueue) {
  Runqueue rq;
  EXPECT_TRUE(rq.empty());
  EXPECT_EQ(rq.Pick(), nullptr);
  EXPECT_FALSE(rq.OnlyIdleTasks());
  EXPECT_DOUBLE_EQ(rq.load(), 0.0);
}

TEST_F(RunqueueTest, PicksMinVruntime) {
  Runqueue rq;
  Task* a = Make(1, TaskPolicy::kNormal);
  Task* b = Make(2, TaskPolicy::kNormal);
  rq.Enqueue(a);
  rq.Enqueue(b);
  // Equal vruntime (0): tie-break by id → a.
  EXPECT_EQ(rq.Pick(), a);
  rq.Dequeue(a);
  EXPECT_EQ(rq.Pick(), b);
}

TEST_F(RunqueueTest, NormalBeatsIdlePolicy) {
  Runqueue rq;
  Task* idle = Make(1, TaskPolicy::kIdle);
  Task* normal = Make(2, TaskPolicy::kNormal);
  rq.Enqueue(idle);
  EXPECT_TRUE(rq.OnlyIdleTasks());
  rq.Enqueue(normal);
  EXPECT_FALSE(rq.OnlyIdleTasks());
  EXPECT_EQ(rq.Pick(), normal);
}

TEST_F(RunqueueTest, LoadCountsOnlyNormalTasks) {
  Runqueue rq;
  Task* idle = Make(1, TaskPolicy::kIdle);
  Task* normal = Make(2, TaskPolicy::kNormal);
  rq.Enqueue(idle);
  EXPECT_DOUBLE_EQ(rq.load(), 0.0);
  rq.Enqueue(normal);
  EXPECT_DOUBLE_EQ(rq.load(), 1024.0);
  rq.Dequeue(normal);
  EXPECT_DOUBLE_EQ(rq.load(), 0.0);
}

TEST_F(RunqueueTest, CountsByClass) {
  Runqueue rq;
  rq.Enqueue(Make(1, TaskPolicy::kIdle));
  rq.Enqueue(Make(2, TaskPolicy::kIdle));
  rq.Enqueue(Make(3, TaskPolicy::kNormal));
  EXPECT_EQ(rq.size(), 3u);
  EXPECT_EQ(rq.idle_count(), 2u);
  EXPECT_EQ(rq.normal_count(), 1u);
}

TEST_F(RunqueueTest, ContainsTracksMembership) {
  Runqueue rq;
  Task* a = Make(1, TaskPolicy::kNormal);
  EXPECT_FALSE(rq.Contains(a));
  rq.Enqueue(a);
  EXPECT_TRUE(rq.Contains(a));
  rq.Dequeue(a);
  EXPECT_FALSE(rq.Contains(a));
}

TEST_F(RunqueueTest, MinVruntimeMonotone) {
  Runqueue rq;
  rq.RaiseMinVruntime(10.0);
  rq.RaiseMinVruntime(5.0);
  EXPECT_DOUBLE_EQ(rq.min_vruntime(), 10.0);
}

TEST_F(RunqueueTest, ForEachVisitsAll) {
  Runqueue rq;
  rq.Enqueue(Make(1, TaskPolicy::kNormal));
  rq.Enqueue(Make(2, TaskPolicy::kIdle));
  int visits = 0;
  rq.ForEach([&](Task*) { ++visits; });
  EXPECT_EQ(visits, 2);
}

}  // namespace
}  // namespace vsched
