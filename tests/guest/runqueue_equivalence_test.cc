// Differential test: the flat sorted-vector Runqueue — now carrying its
// ordering keys (vruntime, vdeadline, id) inline in each entry, snapshotted
// at Enqueue — against an oracle that re-implements the std::set-based
// structure it originally replaced, over random enqueue/dequeue traces. Pick
// results (CFS and EEVDF), counts, load sums, and membership must agree at
// every step — both the vector swap and the inline-key snapshots are pure
// data-layout changes, so any divergence is a bug. The trace deliberately
// mutates keys only while tasks are dequeued (the shared invariant that
// makes snapshotting sound; AuditVerify enforces it).
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/guest/runqueue.h"
#include "src/guest/task.h"

namespace vsched {
namespace {

struct NoopBehavior : TaskBehavior {
  TaskAction Next(TaskContext&, RunReason) override { return TaskAction::Exit(); }
};

// Byte-for-byte reimplementation of the pre-swap Runqueue semantics on the
// original node-based containers.
class SetOracle {
 public:
  explicit SetOracle(bool eevdf) : eevdf_(eevdf) {}

  void Enqueue(Task* task) {
    if (task->policy() == TaskPolicy::kIdle) {
      idle_.insert(task);
    } else {
      normal_.insert(task);
      load_ += task->weight();
    }
  }

  void Dequeue(Task* task) {
    if (task->policy() == TaskPolicy::kIdle) {
      idle_.erase(task);
    } else {
      normal_.erase(task);
      load_ -= task->weight();
      if (normal_.empty()) {
        load_ = 0;
      }
    }
  }

  bool Contains(const Task* task) const {
    Task* mutable_task = const_cast<Task*>(task);
    return task->policy() == TaskPolicy::kIdle ? idle_.count(mutable_task) > 0
                                               : normal_.count(mutable_task) > 0;
  }

  double load() const { return load_; }
  size_t size() const { return normal_.size() + idle_.size(); }
  bool OnlyIdleTasks() const { return normal_.empty() && !idle_.empty(); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Task* t : normal_) {
      fn(t);
    }
    for (Task* t : idle_) {
      fn(t);
    }
  }

  Task* Pick() const {
    if (eevdf_) {
      return PickEevdf();
    }
    Task* best = nullptr;
    if (!normal_.empty()) {
      best = *normal_.begin();
    }
    if (!idle_.empty()) {
      Task* idle_best = *idle_.begin();
      if (best == nullptr || idle_best->vruntime() < best->vruntime()) {
        best = idle_best;
      }
    }
    return best;
  }

 private:
  struct ByVruntime {
    bool operator()(const Task* a, const Task* b) const {
      if (a->vruntime() != b->vruntime()) {
        return a->vruntime() < b->vruntime();
      }
      return a->id() < b->id();
    }
  };

  Task* PickEevdf() const {
    double avg = 0;
    int n = 0;
    for (const Task* t : normal_) {
      avg += t->vruntime();
      ++n;
    }
    for (const Task* t : idle_) {
      avg += t->vruntime();
      ++n;
    }
    if (n == 0) {
      return nullptr;
    }
    avg /= n;
    Task* best = nullptr;
    Task* min_vr = nullptr;
    auto consider = [&](Task* t) {
      if (min_vr == nullptr || t->vruntime() < min_vr->vruntime()) {
        min_vr = t;
      }
      if (t->vruntime() <= avg + 1e-6 &&
          (best == nullptr || t->vdeadline() < best->vdeadline())) {
        best = t;
      }
    };
    for (Task* t : normal_) {
      consider(t);
    }
    for (Task* t : idle_) {
      consider(t);
    }
    return best != nullptr ? best : min_vr;
  }

  bool eevdf_;
  std::set<Task*, ByVruntime> normal_;
  std::set<Task*, ByVruntime> idle_;
  double load_ = 0;
};

class RunqueueEquivalenceTest : public ::testing::TestWithParam<bool> {
 protected:
  Task* Make(uint64_t id, TaskPolicy policy) {
    tasks_.push_back(std::make_unique<Task>(id, "t" + std::to_string(id), policy, &behavior_,
                                            CpuMask::FirstN(1)));
    return tasks_.back().get();
  }

  NoopBehavior behavior_;
  std::vector<std::unique_ptr<Task>> tasks_;
};

TEST_P(RunqueueEquivalenceTest, RandomTraceAgreesWithSetOracle) {
  const bool eevdf = GetParam();
  std::mt19937_64 rng(eevdf ? 0xEE5Fu : 0xCF5u);
  auto uniform = [&](double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(rng() % (1u << 20)) / (1u << 20));
  };

  Runqueue rq;
  rq.SetEevdf(eevdf);
  SetOracle oracle(eevdf);

  const int kTasks = 40;
  std::vector<Task*> queued;
  std::vector<Task*> idle_pool;
  for (int i = 0; i < kTasks; ++i) {
    TaskPolicy policy = i % 4 == 3 ? TaskPolicy::kIdle : TaskPolicy::kNormal;
    Task* t = Make(i + 1, policy);
    if (policy == TaskPolicy::kNormal) {
      t->set_nice(static_cast<int>(rng() % 7) - 3);  // mixed weights
    }
    idle_pool.push_back(t);
  }

  for (int op = 0; op < 5000; ++op) {
    bool do_enqueue = queued.empty() || (!idle_pool.empty() && rng() % 2 == 0);
    if (do_enqueue) {
      size_t i = rng() % idle_pool.size();
      Task* t = idle_pool[i];
      idle_pool.erase(idle_pool.begin() + i);
      // Mutate ordering keys only while dequeued (the shared invariant).
      // Occasionally duplicate another queued task's vruntime to exercise
      // the (vruntime, id) tie-break.
      if (!queued.empty() && rng() % 8 == 0) {
        TaskAccess::SetVruntime(t, queued[rng() % queued.size()]->vruntime());
      } else {
        TaskAccess::SetVruntime(t, uniform(0, 1e6));
      }
      TaskAccess::SetVdeadline(t, uniform(0, 1e6));
      rq.Enqueue(t);
      oracle.Enqueue(t);
      queued.push_back(t);
    } else {
      size_t i = rng() % queued.size();
      Task* t = queued[i];
      queued.erase(queued.begin() + i);
      rq.Dequeue(t);
      oracle.Dequeue(t);
      idle_pool.push_back(t);
    }

    ASSERT_EQ(rq.Pick(), oracle.Pick()) << "op " << op;
    ASSERT_EQ(rq.size(), oracle.size());
    ASSERT_EQ(rq.OnlyIdleTasks(), oracle.OnlyIdleTasks());
    ASSERT_DOUBLE_EQ(rq.load(), oracle.load());
    Task* probe = tasks_[rng() % tasks_.size()].get();
    ASSERT_EQ(rq.Contains(probe), oracle.Contains(probe));
    // ForEach must visit in the oracle's order: normal ascending, then idle.
    std::vector<Task*> visited;
    rq.ForEach([&](Task* t) { visited.push_back(t); });
    std::vector<Task*> expected;
    oracle.ForEach([&](Task* t) { expected.push_back(t); });
    ASSERT_EQ(visited, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, RunqueueEquivalenceTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "Eevdf" : "Cfs";
                         });

}  // namespace
}  // namespace vsched
