// Vm wrapper lifecycle: pinning, bandwidth re-shaping at runtime, teardown
// while workloads are live, and spec validation.
#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

TEST(VmTest, SimpleSpecPinsOneToOne) {
  VmSpec spec = MakeSimpleVmSpec("x", 4, /*first_tid=*/2);
  ASSERT_EQ(spec.vcpus.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spec.vcpus[i].tid, 2 + i);
  }
}

TEST(VmTest, PinVcpuMovesLiveVcpu) {
  Simulation sim(91);
  HostMachine machine(&sim, FlatSpec(4));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 2));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("h", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim.RunFor(MsToNs(10));
  machine.SetCoreFreq(3, 2.0);
  vm.PinVcpu(0, 3);
  EXPECT_EQ(vm.thread(0).tid(), 3);
  // The running task keeps executing — now at double speed.
  TimeNs exec_before = t->total_exec_ns();
  Work work_before = vm.kernel().vcpu(0).work_done();
  sim.RunFor(MsToNs(10));
  EXPECT_EQ(t->total_exec_ns() - exec_before, MsToNs(10));
  EXPECT_NEAR(vm.kernel().vcpu(0).work_done() - work_before,
              WorkAtCapacity(2 * kCapacityScale, MsToNs(10)),
              WorkAtCapacity(kCapacityScale, UsToNs(100)));
}

TEST(VmTest, BandwidthReshapeWhileRunning) {
  Simulation sim(92);
  HostMachine machine(&sim, FlatSpec(2));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 1));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("h", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim.RunFor(MsToNs(100));
  TimeNs full_exec = t->total_exec_ns();
  EXPECT_EQ(full_exec, MsToNs(100));
  vm.SetVcpuBandwidth(0, MsToNs(2), MsToNs(10));
  sim.RunFor(MsToNs(200));
  TimeNs capped_exec = t->total_exec_ns() - full_exec;
  EXPECT_NEAR(static_cast<double>(capped_exec), MsToNs(40), static_cast<double>(MsToNs(8)));
  vm.ClearVcpuBandwidth(0);
  TimeNs before = t->total_exec_ns();
  sim.RunFor(MsToNs(100));
  EXPECT_EQ(t->total_exec_ns() - before, MsToNs(100));
}

TEST(VmTest, MigrateToMachineMovesAllVcpus) {
  Simulation sim(95);
  HostMachine src(&sim, FlatSpec(4));
  HostMachine dst(&sim, FlatSpec(4));
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].bw_quota = MsToNs(5);
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim, &src, spec);
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("h", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim.RunFor(MsToNs(20));
  TimeNs exec_before = t->total_exec_ns();
  EXPECT_GT(exec_before, 0);

  // Downtime blackout, then the atomic cross-machine commit.
  vm.SetPausedAll(true);
  sim.RunFor(MsToNs(3));
  EXPECT_EQ(t->total_exec_ns(), exec_before);
  vm.MigrateToMachine(&dst, {2, 3});
  vm.SetPausedAll(false);

  EXPECT_EQ(vm.thread(0).tid(), 2);
  EXPECT_EQ(vm.thread(1).tid(), 3);
  EXPECT_FALSE(src.sched(0).busy());
  sim.RunFor(MsToNs(40));
  // The hog keeps running on the destination, still under its 50% cap.
  EXPECT_GT(t->total_exec_ns(), exec_before);
  EXPECT_TRUE(vm.thread(0).has_bandwidth());
  // Teardown detaches from the *destination* machine cleanly.
}

TEST(VmTest, SharedGuestParamsSnapshotAndCopyOnWrite) {
  auto shared = std::make_shared<const GuestParams>();
  VmSpec a = MakeSimpleVmSpec("a", 1);
  VmSpec b = MakeSimpleVmSpec("b", 1);
  a.guest_params = shared;
  b.guest_params = shared;
  // Copy-on-write: tweaking b leaves a (and the shared snapshot) untouched.
  b.mutable_guest_params().use_eevdf = true;
  EXPECT_EQ(a.guest_params.get(), shared.get());
  EXPECT_NE(b.guest_params.get(), shared.get());
  EXPECT_FALSE(shared->use_eevdf);
  EXPECT_TRUE(b.guest_params->use_eevdf);
  EXPECT_FALSE(a.guest_params_or_default().use_eevdf);

  Simulation sim(96);
  HostMachine machine(&sim, FlatSpec(2));
  Vm vm_a(&sim, &machine, a);
  EXPECT_EQ(&vm_a.kernel().params(), shared.get());  // no per-VM copy
  VmSpec d = MakeSimpleVmSpec("d", 1, 1);
  Vm vm_d(&sim, &machine, d);  // null snapshot → defaults
  EXPECT_EQ(vm_d.kernel().params().tick_period, MsToNs(1));
}

TEST(VmTest, TeardownWithLiveWorkloadIsClean) {
  Simulation sim(93);
  HostMachine machine(&sim, FlatSpec(2));
  auto hog = std::make_unique<HogBehavior>();
  {
    Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 2));
    Task* t = vm.kernel().CreateTask("h", TaskPolicy::kNormal, hog.get());
    vm.kernel().StartTask(t);
    sim.RunFor(MsToNs(50));
    // Vm destructor runs here with the hog still current.
  }
  // The host threads are free again; the simulation continues cleanly.
  EXPECT_FALSE(machine.sched(0).busy());
  EXPECT_FALSE(machine.sched(1).busy());
  sim.RunFor(MsToNs(50));
}

TEST(VmDeathTest, EmptySpecRejected) {
  Simulation sim(94);
  HostMachine machine(&sim, FlatSpec(1));
  VmSpec spec;
  spec.name = "empty";
  EXPECT_DEATH({ Vm vm(&sim, &machine, spec); }, "");
}

}  // namespace
}  // namespace vsched
