// PeltArena equivalence: a signal allocated from the arena must be
// bit-identical in behaviour to a standalone PeltSignal — the arena is pure
// storage relocation, never arithmetic. Also pins address stability across
// chunk growth (Task holds raw pointers) and that kernel-created tasks
// actually draw from the arena.
#include <vector>

#include <gtest/gtest.h>

#include "src/base/time.h"
#include "src/guest/guest_kernel.h"
#include "src/guest/pelt.h"
#include "src/guest/pelt_arena.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/rng.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TEST(PeltArenaTest, ArenaSignalMatchesStandaloneBitForBit) {
  PeltArena arena;
  Rng rng(0x9E17);
  for (int round = 0; round < 8; ++round) {
    TimeNs half_life = MsToNs(1 + rng.UniformInt(0, 63));
    PeltSignal plain(half_life);
    PeltSignal* from_arena = arena.Allocate(half_life);
    TimeNs now = 0;
    for (int step = 0; step < 500; ++step) {
      now += rng.UniformInt(0, MsToNs(3));
      int roll = static_cast<int>(rng.UniformInt(0, 9));
      bool active = rng.UniformInt(0, 1) == 1;
      if (roll == 0) {
        double seed = static_cast<double>(rng.UniformInt(0, 1024));
        plain.Seed(now, seed);
        from_arena->Seed(now, seed);
      } else {
        plain.Update(now, active);
        from_arena->Update(now, active);
      }
      // Exact comparison on purpose: identical code over identical state
      // must produce identical bits, or the arena is not pure storage.
      ASSERT_EQ(plain.util(), from_arena->util()) << "round " << round << " step " << step;
      TimeNs probe = now + rng.UniformInt(0, MsToNs(100));
      ASSERT_EQ(plain.UtilAt(probe, active), from_arena->UtilAt(probe, active));
    }
  }
}

TEST(PeltArenaTest, AddressesStableAcrossChunkGrowth) {
  PeltArena arena;
  std::vector<PeltSignal*> signals;
  const size_t n = PeltArena::kChunkSize * 3 + 7;
  for (size_t i = 0; i < n; ++i) {
    PeltSignal* s = arena.Allocate();
    s->Seed(0, static_cast<double>(i));
    signals.push_back(s);
  }
  EXPECT_EQ(arena.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(signals[i]->util(), static_cast<double>(i)) << i;
  }
}

TEST(PeltArenaTest, KernelTasksDrawFromArenaWithUnchangedUtil) {
  // A kernel-created task's utilization trajectory must match the pre-arena
  // behaviour: seeded to half capacity at creation, then standard PELT under
  // load. A standalone-constructed task (inline fallback signal) driven by
  // an identical simulation must agree exactly.
  auto run = [] {
    Simulation sim(7);
    TopologySpec topo;
    topo.sockets = 1;
    topo.cores_per_socket = 1;
    topo.threads_per_core = 1;
    HostMachine machine(&sim, topo);
    Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 1));
    HogBehavior hog;
    Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
    vm.kernel().StartTask(t);
    std::vector<double> trace;
    for (int i = 0; i < 20; ++i) {
      sim.RunFor(MsToNs(10));
      trace.push_back(t->UtilAt(sim.now()));
    }
    return trace;
  };
  std::vector<double> a = run();
  std::vector<double> b = run();
  ASSERT_EQ(a, b);
  // Converges toward full capacity under a hog, from the half-capacity seed.
  EXPECT_GT(a.back(), 900.0);
  EXPECT_LT(a.front(), 700.0);
}

}  // namespace
}  // namespace vsched
