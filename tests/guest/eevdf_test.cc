// EEVDF pick-policy tests: fairness parity with CFS mode, latency behaviour,
// and — the §4 portability claim — the full vSched stack working unchanged
// on top of the EEVDF scheduler.
#include <gtest/gtest.h>

#include "src/core/vsched.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

VmSpec EevdfVm(int vcpus) {
  VmSpec spec = MakeSimpleVmSpec("vm", vcpus);
  spec.mutable_guest_params().use_eevdf = true;
  return spec;
}

TEST(EevdfTest, TwoHogsShareFairly) {
  Simulation sim(11);
  HostMachine machine(&sim, FlatSpec(1));
  Vm vm(&sim, &machine, EevdfVm(1));
  HogBehavior a;
  HogBehavior b;
  Task* ta = vm.kernel().CreateTask("a", TaskPolicy::kNormal, &a, CpuMask::Single(0));
  Task* tb = vm.kernel().CreateTask("b", TaskPolicy::kNormal, &b, CpuMask::Single(0));
  vm.kernel().StartTask(ta);
  vm.kernel().StartTask(tb);
  sim.RunFor(SecToNs(1));
  double ra = static_cast<double>(ta->total_exec_ns());
  double rb = static_cast<double>(tb->total_exec_ns());
  EXPECT_NEAR(ra / (ra + rb), 0.5, 0.05);
}

TEST(EevdfTest, SchedIdleStillSubordinate) {
  Simulation sim(12);
  HostMachine machine(&sim, FlatSpec(1));
  Vm vm(&sim, &machine, EevdfVm(1));
  HogBehavior normal;
  HogBehavior idle;
  Task* tn = vm.kernel().CreateTask("n", TaskPolicy::kNormal, &normal, CpuMask::Single(0));
  Task* ti = vm.kernel().CreateTask("i", TaskPolicy::kIdle, &idle, CpuMask::Single(0));
  vm.kernel().StartTask(tn);
  vm.kernel().StartTask(ti);
  sim.RunFor(SecToNs(1));
  // Weight-3 entities get only a sliver under EEVDF too.
  EXPECT_LT(ti->total_exec_ns(), MsToNs(30));
  EXPECT_GT(tn->total_exec_ns(), MsToNs(950));
}

TEST(EevdfTest, WakerGetsPromptService) {
  // A periodic small task competing with a hog should be served with small
  // dispatch delays (eligible + early deadline on wake).
  Simulation sim(13);
  HostMachine machine(&sim, FlatSpec(1));
  Vm vm(&sim, &machine, EevdfVm(1));
  HogBehavior hog;
  PeriodicBehavior light(WorkAtCapacity(kCapacityScale, UsToNs(100)), MsToNs(5));
  Task* th = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  Task* tl = vm.kernel().CreateTask("light", TaskPolicy::kNormal, &light, CpuMask::Single(0));
  vm.kernel().StartTask(th);
  vm.kernel().StartTask(tl);
  sim.RunFor(SecToNs(2));
  EXPECT_GT(light.completed(), 300);
  EXPECT_LT(tl->last_queue_delay(), MsToNs(3));
}

TEST(EevdfTest, DeterministicAndDistinctFromCfs) {
  // Per-task execution/wait profile plus the context-switch count: a full
  // behavioural fingerprint, so "distinct" cannot pass or fail on a
  // coincidental collision of one scalar. The workload mixes SCHED_NORMAL
  // and SCHED_IDLE entities: with unequal weights the (vruntime) and
  // (vdeadline) orderings genuinely diverge, so the two policies must pick
  // differently (equal-weight queues can degenerate to identical picks).
  auto run = [](bool eevdf, uint64_t seed) {
    Simulation sim(seed);
    HostMachine machine(&sim, FlatSpec(2));
    VmSpec spec = MakeSimpleVmSpec("vm", 2);
    spec.mutable_guest_params().use_eevdf = eevdf;
    Vm vm(&sim, &machine, spec);
    std::vector<std::unique_ptr<PeriodicBehavior>> behaviors;
    std::vector<Task*> tasks;
    for (int i = 0; i < 5; ++i) {
      behaviors.push_back(std::make_unique<PeriodicBehavior>(
          WorkAtCapacity(kCapacityScale, UsToNs(400 + 100 * i)), UsToNs(300)));
      TaskPolicy policy = (i % 2 == 1) ? TaskPolicy::kIdle : TaskPolicy::kNormal;
      Task* t = vm.kernel().CreateTask("p", policy, behaviors.back().get());
      vm.kernel().StartTask(t);
      tasks.push_back(t);
    }
    sim.RunFor(SecToNs(1));
    std::vector<uint64_t> fingerprint;
    for (Task* t : tasks) {
      fingerprint.push_back(static_cast<uint64_t>(t->total_exec_ns()));
      fingerprint.push_back(static_cast<uint64_t>(t->queue_wait_total_ns()));
    }
    fingerprint.push_back(vm.kernel().counters().context_switches.value());
    return fingerprint;
  };
  EXPECT_EQ(run(true, 5), run(true, 5));
  // The policies genuinely schedule differently.
  EXPECT_NE(run(true, 5), run(false, 5));
}

TEST(EevdfTest, VschedStackPortsUnchanged) {
  // The paper claims vSched "can be easily ported" to EEVDF: the probers and
  // techniques attach to placement/migration hooks, not to the pick policy.
  Simulation sim(14);
  HostMachine machine(&sim, FlatSpec(4));
  VmSpec spec = EevdfVm(2);
  spec.vcpus.push_back({2, 1024.0, 0, 0});
  spec.vcpus.push_back({3, 1024.0, 0, 0});
  spec.vcpus[0].bw_quota = MsToNs(5);
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim, &machine, spec);
  VSched vsched(&vm.kernel(), VSchedOptions::Full());
  vsched.Start();
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim.RunFor(SecToNs(4));
  t->set_allowed(CpuMask::FirstN(4));
  TimeNs before = t->total_exec_ns();
  sim.RunFor(SecToNs(2));
  // Probers work and ivh harvests onto an unshaped vCPU, under EEVDF.
  EXPECT_NEAR(vsched.vcap()->CapacityOf(0), 512.0, 120.0);
  EXPECT_GT(vsched.vact()->LatencyOf(0), static_cast<double>(MsToNs(2)));
  double progress = static_cast<double>(t->total_exec_ns() - before) /
                    static_cast<double>(SecToNs(2));
  EXPECT_GT(progress, 0.8);
}

}  // namespace
}  // namespace vsched
