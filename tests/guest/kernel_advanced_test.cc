// Misfit balance, bans/evacuation, RunOnVcpu, stacking, capacity estimates.
#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

class AdvancedFixture : public ::testing::Test {
 protected:
  AdvancedFixture() : sim_(11), machine_(&sim_, FlatSpec(8)) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(AdvancedFixture, MisfitTaskMigratesToHigherCapacityVcpu) {
  // vCPU 0 capped to 30%; vCPU 1 dedicated. With true capacities published
  // (as vcap would), the hog must move to vCPU 1.
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[0].bw_quota = MsToNs(3);
  spec.vcpus[0].bw_period = MsToNs(10);
  Vm vm(&sim_, &machine_, spec);
  vm.kernel().SetCapacityOverride(0, 0.3 * kCapacityScale);
  vm.kernel().SetCapacityOverride(1, kCapacityScale);
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog);
  // Force initial placement onto the weak vCPU.
  t->set_allowed(CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(MsToNs(20));
  t->set_allowed(CpuMask::FirstN(2));
  sim_.RunFor(MsToNs(300));
  EXPECT_EQ(t->cpu(), 1);
  EXPECT_GT(vm.kernel().counters().active_migrations.value(), 0u);
  // Near-full progress after the move.
  EXPECT_GT(t->total_exec_ns(), MsToNs(250));
}

TEST_F(AdvancedFixture, BansEvacuateQueuedAndRunningTasks) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  std::vector<std::unique_ptr<HogBehavior>> behaviors;
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    behaviors.push_back(std::make_unique<HogBehavior>());
    Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, behaviors.back().get());
    vm.kernel().StartTask(t);
    tasks.push_back(t);
  }
  sim_.RunFor(MsToNs(50));
  vm.kernel().SetBans(/*straggler=*/CpuMask::Single(3), /*stack=*/CpuMask::Single(2));
  sim_.RunFor(MsToNs(100));
  for (Task* t : tasks) {
    EXPECT_NE(t->cpu(), 2) << "stack-banned vCPU still hosts a task";
    EXPECT_NE(t->cpu(), 3) << "straggler-banned vCPU still hosts a normal task";
  }
  EXPECT_TRUE(vm.kernel().vcpu(2).IsIdle());
  EXPECT_TRUE(vm.kernel().vcpu(3).IsIdle());
}

TEST_F(AdvancedFixture, StragglerBanStillAllowsSchedIdle) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  vm.kernel().SetBans(CpuMask::Single(1), CpuMask::None());
  HogBehavior idle_hog;
  Task* t = vm.kernel().CreateTask("be", TaskPolicy::kIdle, &idle_hog, CpuMask::Single(1));
  vm.kernel().StartTask(t);
  sim_.RunFor(MsToNs(100));
  EXPECT_EQ(t->cpu(), 1);
  EXPECT_GT(t->total_exec_ns(), MsToNs(90));
}

TEST_F(AdvancedFixture, ExemptTaskIgnoresStackBan) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  vm.kernel().SetBans(CpuMask::None(), CpuMask::Single(1));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("probe", TaskPolicy::kNormal, &hog, CpuMask::Single(1));
  t->set_exempt_all_bans(true);
  vm.kernel().StartTask(t);
  sim_.RunFor(MsToNs(50));
  EXPECT_EQ(t->cpu(), 1);
  EXPECT_GT(t->total_exec_ns(), MsToNs(45));
}

TEST_F(AdvancedFixture, RunOnVcpuImmediateWhenActive) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(MsToNs(5));
  bool ran = false;
  TimeNs at = -1;
  vm.kernel().RunOnVcpu(0, [&] {
    ran = true;
    at = sim_.now();
  });
  TimeNs before = sim_.now();
  sim_.RunFor(MsToNs(1));
  EXPECT_TRUE(ran);
  EXPECT_LE(at - before, UsToNs(10));
}

TEST_F(AdvancedFixture, RunOnVcpuDeferredUntilActive) {
  // vCPU inactive due to a host RT stressor; the IPI function waits for it.
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(MsToNs(5));
  Stressor rt(&sim_, "rt", 1024.0, /*rt=*/true);
  rt.Start(&machine_, 0);
  sim_.RunFor(MsToNs(5));
  ASSERT_FALSE(vm.kernel().vcpu(0).active());
  bool ran = false;
  vm.kernel().RunOnVcpu(0, [&] { ran = true; });
  sim_.RunFor(MsToNs(5));
  EXPECT_FALSE(ran);
  rt.Stop();
  sim_.RunFor(MsToNs(5));
  EXPECT_TRUE(ran);
}

TEST_F(AdvancedFixture, RunOnVcpuKickPreWakesHaltedVcpu) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  sim_.RunFor(MsToNs(5));
  ASSERT_FALSE(vm.thread(0).wants_to_run());
  bool ran = false;
  vm.kernel().RunOnVcpu(0, [&] { ran = true; }, /*kick=*/true);
  sim_.RunFor(MsToNs(1));
  EXPECT_TRUE(ran);
  // After delivering the IPI with nothing to run, the vCPU halts again.
  sim_.RunFor(MsToNs(1));
  EXPECT_FALSE(vm.thread(0).wants_to_run());
}

TEST_F(AdvancedFixture, StackedVcpusMakeHalfProgress) {
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  spec.vcpus[1].tid = 0;  // Stack both vCPUs on hardware thread 0.
  Vm vm(&sim_, &machine_, spec);
  HogBehavior a;
  HogBehavior b;
  Task* ta = vm.kernel().CreateTask("a", TaskPolicy::kNormal, &a, CpuMask::Single(0));
  Task* tb = vm.kernel().CreateTask("b", TaskPolicy::kNormal, &b, CpuMask::Single(1));
  vm.kernel().StartTask(ta);
  vm.kernel().StartTask(tb);
  sim_.RunFor(SecToNs(1));
  EXPECT_NEAR(static_cast<double>(ta->total_exec_ns()), MsToNs(500),
              static_cast<double>(MsToNs(50)));
  EXPECT_NEAR(static_cast<double>(tb->total_exec_ns()), MsToNs(500),
              static_cast<double>(MsToNs(50)));
}

TEST_F(AdvancedFixture, CfsCapacityTracksStealWhileBusy) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  Stressor competitor(&sim_, "comp");
  competitor.Start(&machine_, 0);
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(SecToNs(2));
  // ~50% steal → estimate near 512.
  EXPECT_NEAR(vm.kernel().CfsCapacityOf(0), 512.0, 120.0);
  competitor.Stop();
}

TEST_F(AdvancedFixture, CfsCapacityDriftsUpWhileIdle) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  Stressor competitor(&sim_, "comp");
  competitor.Start(&machine_, 0);
  HogBehavior hog;
  FixedWorkBehavior finite(WorkAtCapacity(kCapacityScale, MsToNs(500)));
  Task* t = vm.kernel().CreateTask("t", TaskPolicy::kNormal, &finite, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  // 500 ms of work at a ~50% share finishes around t=1 s; sample while busy.
  sim_.RunFor(MsToNs(900));
  ASSERT_FALSE(finite.done());
  double busy_estimate = vm.kernel().CfsCapacityOf(0);
  EXPECT_LT(busy_estimate, 700.0);
  sim_.RunFor(SecToNs(3));  // Task done; idle: steal becomes invisible.
  ASSERT_TRUE(finite.done());
  EXPECT_GT(vm.kernel().CfsCapacityOf(0), 950.0);
  competitor.Stop();
}

TEST_F(AdvancedFixture, CapacityOverrideWinsOverEstimate) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 1));
  vm.kernel().SetCapacityOverride(0, 333.0);
  EXPECT_DOUBLE_EQ(vm.kernel().CfsCapacityOf(0), 333.0);
  vm.kernel().ClearCapacityOverrides();
  EXPECT_GT(vm.kernel().CfsCapacityOf(0), 900.0);
}

TEST_F(AdvancedFixture, RebuildSchedDomainsChangesPlacementDomain) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  GuestTopology topo;
  CpuMask left = CpuMask(0b0011);
  CpuMask right = CpuMask(0b1100);
  for (int i = 0; i < 4; ++i) {
    topo.smt_mask.push_back(CpuMask::Single(i));
    topo.llc_mask.push_back(i < 2 ? left : right);
    topo.stack_mask.push_back(CpuMask::Single(i));
  }
  vm.kernel().RebuildSchedDomains(topo);
  EXPECT_EQ(vm.kernel().topology().llc_mask[0], left);
  EXPECT_EQ(vm.kernel().topology().llc_mask[3], right);
}

TEST_F(AdvancedFixture, MigrateRunningTaskFailsWhenSourceInactive) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(MsToNs(5));
  Stressor rt(&sim_, "rt", 1024.0, /*rt=*/true);
  rt.Start(&machine_, 0);
  sim_.RunFor(MsToNs(2));
  ASSERT_FALSE(vm.kernel().vcpu(0).active());
  t->set_allowed(CpuMask::FirstN(2));
  EXPECT_FALSE(vm.kernel().MigrateRunningTask(t, 0, 1));
  rt.Stop();
}

TEST_F(AdvancedFixture, CommPenaltyScalesWithDistance) {
  TopologySpec spec;
  spec.sockets = 2;
  spec.cores_per_socket = 2;
  spec.threads_per_core = 2;
  HostMachine machine2(&sim_, spec);
  VmSpec vmspec = MakeSimpleVmSpec("vm", 4);
  vmspec.vcpus[0].tid = 0;
  vmspec.vcpus[1].tid = 1;  // SMT sibling of 0
  vmspec.vcpus[2].tid = 2;  // other core, same socket
  vmspec.vcpus[3].tid = 4;  // other socket
  Vm vm(&sim_, &machine2, vmspec);
  Work smt = vm.kernel().CommWorkPenalty(0, 1, 10);
  Work sock = vm.kernel().CommWorkPenalty(0, 2, 10);
  Work cross = vm.kernel().CommWorkPenalty(0, 3, 10);
  EXPECT_LT(smt, sock);
  EXPECT_LT(sock, cross);
  EXPECT_TRUE(vm.kernel().CrossSocketPhysical(0, 3));
  EXPECT_FALSE(vm.kernel().CrossSocketPhysical(0, 2));
}

TEST_F(AdvancedFixture, SelectHookOverridesPlacement) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  vm.kernel().set_select_hook([](Task*, int, int) { return 3; });
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog);
  vm.kernel().StartTask(t);
  EXPECT_EQ(t->cpu(), 3);
}

TEST_F(AdvancedFixture, TickHookFiresOnActiveVcpus) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  int hook_calls = 0;
  vm.kernel().AddTickHook([&](GuestVcpu*, TimeNs) { ++hook_calls; });
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim_.RunFor(MsToNs(100));
  // Only vCPU 0 is busy; vCPU 1 is halted and receives no ticks.
  EXPECT_GE(hook_calls, 95);
  EXPECT_LE(hook_calls, 105);
}

}  // namespace
}  // namespace vsched
