// Small reusable task behaviors for kernel tests.
#ifndef TESTS_GUEST_TEST_BEHAVIORS_H_
#define TESTS_GUEST_TEST_BEHAVIORS_H_

#include <functional>

#include "src/base/time.h"
#include "src/guest/task.h"
#include "src/sim/simulation.h"

namespace vsched {

// Runs a fixed amount of work, then exits. Records the completion time.
class FixedWorkBehavior : public TaskBehavior {
 public:
  explicit FixedWorkBehavior(Work total) : total_(total) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override {
    if (reason == RunReason::kStarted) {
      return TaskAction::Run(total_);
    }
    finished_at_ = ctx.sim->now();
    done_ = true;
    return TaskAction::Exit();
  }

  bool done() const { return done_; }
  TimeNs finished_at() const { return finished_at_; }

 private:
  Work total_;
  bool done_ = false;
  TimeNs finished_at_ = -1;
};

// CPU hog: runs bursts of `chunk` work forever.
class HogBehavior : public TaskBehavior {
 public:
  explicit HogBehavior(Work chunk = 1024.0 * kNsPerMs) : chunk_(chunk) {}

  TaskAction Next(TaskContext&, RunReason) override {
    ++bursts_;
    return TaskAction::Run(chunk_);
  }

  int bursts() const { return bursts_; }

 private:
  Work chunk_;
  int bursts_ = 0;
};

// Duty-cycled task: run `work`, sleep `sleep`, repeat (optionally bounded).
class PeriodicBehavior : public TaskBehavior {
 public:
  PeriodicBehavior(Work work, TimeNs sleep, int repeats = -1)
      : work_(work), sleep_(sleep), repeats_(repeats) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override {
    (void)ctx;
    switch (reason) {
      case RunReason::kStarted:
      case RunReason::kSleepExpired:
      case RunReason::kEventWake:
        return TaskAction::Run(work_);
      case RunReason::kBurstComplete:
        ++completed_;
        if (repeats_ > 0 && completed_ >= repeats_) {
          return TaskAction::Exit();
        }
        return TaskAction::Sleep(sleep_);
    }
    return TaskAction::Exit();
  }

  int completed() const { return completed_; }

 private:
  Work work_;
  TimeNs sleep_;
  int repeats_;
  int completed_ = 0;
};

// Waits for events; each wake runs `work` then waits again.
class EventWorkerBehavior : public TaskBehavior {
 public:
  explicit EventWorkerBehavior(Work work) : work_(work) {}

  TaskAction Next(TaskContext&, RunReason reason) override {
    switch (reason) {
      case RunReason::kStarted:
        return TaskAction::WaitEvent();
      case RunReason::kEventWake:
        return TaskAction::Run(work_);
      case RunReason::kBurstComplete:
        ++handled_;
        return TaskAction::WaitEvent();
      case RunReason::kSleepExpired:
        return TaskAction::WaitEvent();
    }
    return TaskAction::Exit();
  }

  int handled() const { return handled_; }

 private:
  Work work_;
  int handled_ = 0;
};

// Fully scriptable behavior.
class LambdaBehavior : public TaskBehavior {
 public:
  using Fn = std::function<TaskAction(TaskContext&, RunReason)>;
  explicit LambdaBehavior(Fn fn) : fn_(std::move(fn)) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override { return fn_(ctx, reason); }

 private:
  Fn fn_;
};

}  // namespace vsched

#endif  // TESTS_GUEST_TEST_BEHAVIORS_H_
