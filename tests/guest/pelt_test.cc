#include "src/guest/pelt.h"

#include <gtest/gtest.h>

namespace vsched {
namespace {

TEST(PeltTest, ConvergesToFullWhenAlwaysRunning) {
  PeltSignal p;
  p.Seed(0, 0);
  for (int i = 1; i <= 500; ++i) {
    p.Update(MsToNs(i), /*active=*/true);
  }
  EXPECT_GT(p.util(), 0.99 * kCapacityScale);
}

TEST(PeltTest, ConvergesToZeroWhenIdle) {
  PeltSignal p;
  p.Seed(0, kCapacityScale);
  for (int i = 1; i <= 500; ++i) {
    p.Update(MsToNs(i), /*active=*/false);
  }
  EXPECT_LT(p.util(), 0.01 * kCapacityScale);
}

TEST(PeltTest, HalfLifeIs32Ms) {
  PeltSignal p;
  p.Seed(0, kCapacityScale);
  p.Update(MsToNs(32), /*active=*/false);
  EXPECT_NEAR(p.util(), kCapacityScale / 2, 1.0);
}

TEST(PeltTest, ConvergesToDutyCycle) {
  PeltSignal p;
  p.Seed(0, 0);
  // 25% duty: 1 ms on, 3 ms off.
  TimeNs t = 0;
  for (int i = 0; i < 1000; ++i) {
    t += MsToNs(1);
    p.Update(t, /*active=*/true);
    t += MsToNs(3);
    p.Update(t, /*active=*/false);
  }
  EXPECT_NEAR(p.util() / kCapacityScale, 0.25, 0.05);
}

TEST(PeltTest, ZeroDtIsNoop) {
  PeltSignal p;
  p.Seed(100, 500);
  p.Update(100, true);
  EXPECT_DOUBLE_EQ(p.util(), 500);
}

}  // namespace
}  // namespace vsched
