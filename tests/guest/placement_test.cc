// Targeted tests of the wake-placement paths in SelectTaskRqCfs: idle-core
// preference, SCHED_IDLE-queues-count-as-idle, the asymmetric-capacity
// first-fit, wake-affinity pulls across LLC domains, and self-affinity
// enforcement.
#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"
#include "tests/guest/test_behaviors.h"

namespace vsched {
namespace {

TopologySpec SmtHost(int cores, int sockets = 1) {
  TopologySpec spec;
  spec.sockets = sockets;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 2;
  return spec;
}

GuestTopology SmtTopology(int num_vcpus, int vcpus_per_socket) {
  GuestTopology topo;
  for (int i = 0; i < num_vcpus; ++i) {
    CpuMask smt;
    smt.Set(i ^ 1);  // sibling pairs (0,1), (2,3), ...
    smt.Set(i);
    topo.smt_mask.push_back(smt);
    CpuMask llc;
    int base = (i / vcpus_per_socket) * vcpus_per_socket;
    for (int j = 0; j < vcpus_per_socket; ++j) {
      llc.Set(base + j);
    }
    topo.llc_mask.push_back(llc);
    topo.stack_mask.push_back(CpuMask::Single(i));
  }
  return topo;
}

TEST(PlacementTest, IdleCorePreferredOverBusySibling) {
  Simulation sim(1);
  HostMachine machine(&sim, SmtHost(2));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
  vm.kernel().RebuildSchedDomains(SmtTopology(4, 4));
  // Occupy vCPU 0: its sibling (vCPU 1) is idle but on a busy core.
  HogBehavior hog;
  Task* t0 = vm.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(t0);
  sim.RunFor(MsToNs(5));
  // New tasks must land on core 1 (vCPUs 2/3), not on vCPU 1.
  HogBehavior hog2;
  Task* t1 = vm.kernel().CreateTask("hog2", TaskPolicy::kNormal, &hog2);
  vm.kernel().StartTask(t1);
  EXPECT_TRUE(t1->cpu() == 2 || t1->cpu() == 3) << "landed on " << t1->cpu();
}

TEST(PlacementTest, WithoutSmtTopologySiblingLooksFine) {
  Simulation sim(2);
  HostMachine machine(&sim, SmtHost(2));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
  // Default flat/UMA view: place many tasks and confirm siblings of busy
  // vCPUs are used even when whole cores idle (the Fig 12 CFS failure).
  std::vector<std::unique_ptr<HogBehavior>> hogs;
  bool sibling_used_while_core_idle = false;
  for (int i = 0; i < 2; ++i) {
    hogs.push_back(std::make_unique<HogBehavior>());
    Task* t = vm.kernel().CreateTask("h", TaskPolicy::kNormal, hogs.back().get());
    vm.kernel().StartTask(t);
    sim.RunFor(MsToNs(2));
  }
  // With 2 tasks on 4 vCPUs (2 cores), flat placement may co-locate them on
  // siblings; run several trials by adding/removing a third task.
  int core0 = (vm.kernel().vcpu(0).current() != nullptr) +
              (vm.kernel().vcpu(1).current() != nullptr);
  int core1 = (vm.kernel().vcpu(2).current() != nullptr) +
              (vm.kernel().vcpu(3).current() != nullptr);
  sibling_used_while_core_idle = (core0 == 2 && core1 == 0) || (core0 == 0 && core1 == 2);
  // Not guaranteed every seed, but the scan must at least not *always* avoid
  // siblings; this seed does co-locate (fixed by the chosen rotor/seed).
  EXPECT_TRUE(sibling_used_while_core_idle || core0 + core1 == 2);
}

TEST(PlacementTest, SchedIdleQueueCountsAsIdleForNormalWakes) {
  Simulation sim(3);
  HostMachine machine(&sim, SmtHost(2));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
  // Best-effort hogs everywhere.
  std::vector<std::unique_ptr<HogBehavior>> be;
  for (int i = 0; i < 4; ++i) {
    be.push_back(std::make_unique<HogBehavior>());
    Task* t = vm.kernel().CreateTask("be", TaskPolicy::kIdle, be.back().get(),
                                     CpuMask::Single(i));
    vm.kernel().StartTask(t);
  }
  sim.RunFor(MsToNs(10));
  // A normal wake must not pile onto one vCPU: spread over distinct vCPUs.
  std::vector<std::unique_ptr<HogBehavior>> normals;
  std::vector<int> cpus;
  for (int i = 0; i < 4; ++i) {
    normals.push_back(std::make_unique<HogBehavior>());
    Task* t = vm.kernel().CreateTask("n", TaskPolicy::kNormal, normals.back().get());
    vm.kernel().StartTask(t);
    cpus.push_back(t->cpu());
    sim.RunFor(MsToNs(1));
  }
  std::sort(cpus.begin(), cpus.end());
  EXPECT_EQ(std::unique(cpus.begin(), cpus.end()) - cpus.begin(), 4);
}

TEST(PlacementTest, AsymFirstFitTakesFittingNotMaximal) {
  Simulation sim(4);
  HostMachine machine(&sim, SmtHost(4));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 8));
  // Declare asymmetric capacities via overrides (vcap's doing).
  for (int i = 0; i < 8; ++i) {
    vm.kernel().SetCapacityOverride(i, i < 6 ? 512.0 : 1024.0);
  }
  ASSERT_TRUE(vm.kernel().AsymCapacityKnown());
  // A small task (util << 512) fits everywhere: first-fit means it does NOT
  // have to land on the 1024s.
  EventWorkerBehavior worker(WorkAtCapacity(kCapacityScale, UsToNs(50)));
  Task* t = vm.kernel().CreateTask("small", TaskPolicy::kNormal, &worker);
  vm.kernel().StartTask(t);
  sim.RunFor(MsToNs(500));  // PELT decays to "small".
  vm.kernel().WakeTask(t);
  sim.RunFor(MsToNs(1));
  EXPECT_GE(t->cpu(), 0);

  // A big task (util ~1024) only fits on the strong vCPUs.
  HogBehavior hog;
  Task* big = vm.kernel().CreateTask("big", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  vm.kernel().StartTask(big);
  sim.RunFor(MsToNs(200));  // util converges high on vCPU 0
  big->set_allowed(CpuMask::FirstN(8));
  sim.RunFor(MsToNs(100));  // misfit active balance moves it
  EXPECT_GE(big->cpu(), 6) << "misfit task stayed on a weak vCPU";
}

TEST(PlacementTest, WakeAffinityPullsCrossLlcSleeperToWaker) {
  Simulation sim(5);
  HostMachine machine(&sim, SmtHost(2, /*sockets=*/2));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 8));
  vm.kernel().RebuildSchedDomains(SmtTopology(8, 4));
  // Sleeper previously ran on vCPU 6 (socket 1).
  EventWorkerBehavior worker(WorkAtCapacity(kCapacityScale, UsToNs(100)));
  Task* sleeper = vm.kernel().CreateTask("sleeper", TaskPolicy::kNormal, &worker,
                                         CpuMask::Single(6));
  vm.kernel().StartTask(sleeper);
  vm.kernel().WakeTask(sleeper);
  sim.RunFor(MsToNs(5));
  ASSERT_EQ(sleeper->cpu(), 6);
  sleeper->set_allowed(CpuMask::FirstN(8));
  // Woken by vCPU 1 (socket 0): placement must pull it into socket 0.
  vm.kernel().WakeTask(sleeper, /*waker_cpu=*/1);
  EXPECT_LT(sleeper->cpu(), 4) << "stayed in the remote socket";
}

TEST(PlacementTest, SelfAffinityChangeMovesRunningTask) {
  Simulation sim(6);
  HostMachine machine(&sim, SmtHost(2));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
  // Behavior that re-pins itself to vCPU 3 after its first burst.
  LambdaBehavior b([](TaskContext& ctx, RunReason reason) {
    if (reason == RunReason::kBurstComplete && ctx.task->cpu() != 3) {
      ctx.task->set_allowed(CpuMask::Single(3));
    }
    return TaskAction::Run(WorkAtCapacity(kCapacityScale, MsToNs(1)));
  });
  Task* t = vm.kernel().CreateTask("pinner", TaskPolicy::kNormal, &b, CpuMask::Single(0));
  vm.kernel().StartTask(t);
  sim.RunFor(MsToNs(10));
  EXPECT_EQ(t->cpu(), 3);
  EXPECT_GT(t->total_exec_ns(), MsToNs(8));
}

TEST(PlacementTest, EffectiveAllowedFallsBackWhenFullyBanned) {
  Simulation sim(7);
  HostMachine machine(&sim, SmtHost(1));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 2));
  HogBehavior hog;
  Task* t = vm.kernel().CreateTask("t", TaskPolicy::kNormal, &hog, CpuMask::Single(1));
  // Ban the only vCPU the task may use: the fallback keeps it schedulable.
  vm.kernel().SetBans(CpuMask::None(), CpuMask::Single(1));
  EXPECT_TRUE(vm.kernel().EffectiveAllowed(t).Test(1));
  vm.kernel().StartTask(t);
  sim.RunFor(MsToNs(20));
  EXPECT_GT(t->total_exec_ns(), 0);
}

}  // namespace
}  // namespace vsched
