#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/workloads/catalog.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/micro.h"
#include "src/workloads/throughput_app.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

class WorkloadFixture : public ::testing::Test {
 protected:
  WorkloadFixture() : sim_(123), machine_(&sim_, FlatSpec(8)) {}

  Simulation sim_;
  HostMachine machine_;
};

TEST_F(WorkloadFixture, LatencyAppLowLoadLatencyNearService) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  LatencyAppParams p;
  p.workers = 4;
  p.arrival_rate_per_sec = 200;
  p.service_mean = UsToNs(300);
  p.service_cv = 0.0;
  LatencyApp app(&vm.kernel(), p);
  app.Start();
  sim_.RunFor(SecToNs(5));
  WorkloadResult r = app.Result();
  EXPECT_NEAR(r.throughput, 200.0, 20.0);
  // Dedicated idle vCPUs: p95 ≈ service time (+ small dispatch cost).
  EXPECT_LT(r.p95_ns, static_cast<double>(UsToNs(400)));
  EXPECT_GT(r.p95_ns, static_cast<double>(UsToNs(290)));
}

TEST_F(WorkloadFixture, LatencyAppBreakdownConsistent) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  LatencyAppParams p;
  p.workers = 2;
  p.arrival_rate_per_sec = 100;
  p.service_mean = UsToNs(200);
  LatencyApp app(&vm.kernel(), p);
  app.Start();
  sim_.RunFor(SecToNs(3));
  // end-to-end >= queue + service on average (app-queue wait adds more).
  double e2e = app.end_to_end().Mean();
  double parts = app.queue_time().Mean() + app.service_time().Mean();
  EXPECT_GE(e2e + 1.0, parts);
  EXPECT_GT(app.service_time().Mean(), 0.0);
}

TEST_F(WorkloadFixture, LatencyAppStopEndsWork) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 2));
  LatencyAppParams p;
  p.workers = 2;
  p.arrival_rate_per_sec = 500;
  LatencyApp app(&vm.kernel(), p);
  app.Start();
  sim_.RunFor(SecToNs(1));
  app.Stop();
  sim_.RunFor(MsToNs(100));
  uint64_t done = app.Result().completed;
  sim_.RunFor(SecToNs(1));
  EXPECT_EQ(app.Result().completed, done);
  EXPECT_TRUE(vm.kernel().vcpu(0).IsIdle());
  EXPECT_TRUE(vm.kernel().vcpu(1).IsIdle());
}

TEST_F(WorkloadFixture, BarrierAppIterationRate) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  BarrierAppParams p;
  p.threads = 4;
  p.chunk_mean = MsToNs(1);
  p.chunk_cv = 0.0;
  p.comm_lines = 0;
  BarrierApp app(&vm.kernel(), p);
  app.Start();
  sim_.RunFor(SecToNs(2));
  // Perfectly balanced 1 ms chunks on 4 dedicated vCPUs → ~1000 iter/s.
  EXPECT_NEAR(app.Result().throughput, 1000.0, 100.0);
}

TEST_F(WorkloadFixture, BarrierAppImbalanceSlowsIterations) {
  auto run_cv = [&](double cv, uint64_t seed) {
    Simulation sim(seed);
    HostMachine machine(&sim, FlatSpec(8));
    Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
    BarrierAppParams p;
    p.threads = 4;
    p.chunk_mean = MsToNs(1);
    p.chunk_cv = cv;
    BarrierApp app(&vm.kernel(), p);
    app.Start();
    sim.RunFor(SecToNs(2));
    return app.Result().throughput;
  };
  EXPECT_GT(run_cv(0.0, 5), run_cv(0.6, 5) * 1.1);
}

TEST_F(WorkloadFixture, BarrierAppFixedIterationsFinish) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  BarrierAppParams p;
  p.threads = 4;
  p.chunk_mean = UsToNs(500);
  p.max_iterations = 100;
  BarrierApp app(&vm.kernel(), p);
  app.Start();
  sim_.RunFor(SecToNs(5));
  EXPECT_TRUE(app.finished());
  EXPECT_EQ(app.iterations_done(), 100);
  EXPECT_GT(app.finish_time(), 0);
}

TEST_F(WorkloadFixture, PipelineThroughputBoundedBySlowestStage) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 6));
  PipelineAppParams p;
  p.stages = {{2, UsToNs(200), 0.0}, {2, MsToNs(1), 0.0}, {2, UsToNs(200), 0.0}};
  p.window = 8;
  p.comm_lines = 0;
  PipelineApp app(&vm.kernel(), p);
  app.Start();
  sim_.RunFor(SecToNs(2));
  // Bottleneck: 2 workers × 1 ms → 2000 items/s.
  EXPECT_NEAR(app.Result().throughput, 2000.0, 250.0);
}

TEST_F(WorkloadFixture, TaskParallelScalesWithThreads) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 8));
  TaskParallelParams p;
  p.threads = 8;
  p.chunk_mean = MsToNs(1);
  p.chunk_cv = 0.0;
  TaskParallelApp app(&vm.kernel(), p);
  app.Start();
  sim_.RunFor(SecToNs(2));
  EXPECT_NEAR(app.Result().throughput, 8000.0, 500.0);
}

TEST_F(WorkloadFixture, HackbenchDeliversMessages) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 8));
  HackbenchParams p;
  p.groups = 2;
  p.pairs_per_group = 2;
  Hackbench app(&vm.kernel(), p);
  app.Start();
  sim_.RunFor(SecToNs(1));
  EXPECT_GT(app.Result().completed, 1000u);
}

TEST_F(WorkloadFixture, FioIsIoBound) {
  Vm vm(&sim_, &machine_, MakeSimpleVmSpec("vm", 4));
  FioParams p;
  p.threads = 4;
  Fio app(&vm.kernel(), p);
  app.Start();
  sim_.RunFor(SecToNs(1));
  EXPECT_GT(app.Result().completed, 1000u);
  // CPU per op is small: the vCPUs stay mostly idle.
  TimeNs busy = 0;
  for (int i = 0; i < 4; ++i) {
    busy += vm.kernel().vcpu(i).busy_ns();
  }
  EXPECT_LT(busy, SecToNs(1));
}

TEST_F(WorkloadFixture, SelfMigrationPreventsStalledTask) {
  // The Figure 3 experiment: 4 vCPUs each active 5 ms per 10 ms. A single
  // CPU-bound thread achieves ~50% in default mode; circular self-migration
  // every 4 ms nearly doubles utilization.
  auto run_mode = [&](bool migrate) {
    Simulation sim(9);
    HostMachine machine(&sim, FlatSpec(4));
    VmSpec spec = MakeSimpleVmSpec("vm", 4);
    for (int i = 0; i < 4; ++i) {
      spec.vcpus[i].bw_quota = MsToNs(5);
      spec.vcpus[i].bw_period = MsToNs(10);
    }
    Vm vm(&sim, &machine, spec);
    SelfMigratingParams p;
    p.migrate = migrate;
    SelfMigratingTask app(&vm.kernel(), p);
    app.Start();
    sim.RunFor(SecToNs(5));
    return app.Result().throughput;  // utilization %
  };
  double stock = run_mode(false);
  double migrating = run_mode(true);
  EXPECT_NEAR(stock, 50.0, 8.0);
  EXPECT_GT(migrating, stock * 1.5);
}

TEST_F(WorkloadFixture, CatalogInstantiatesEveryFig18Workload) {
  for (const std::string& name : Fig18WorkloadNames()) {
    Simulation sim(3);
    HostMachine machine(&sim, FlatSpec(8));
    Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 8));
    auto w = MakeWorkload(&vm.kernel(), name, 8);
    ASSERT_NE(w, nullptr) << name;
    w->Start();
    sim.RunFor(MsToNs(500));
    WorkloadResult r = w->Result();
    EXPECT_GT(r.throughput + static_cast<double>(r.completed), 0.0)
        << name << " made no progress";
    w->Stop();
    sim.RunFor(MsToNs(100));
  }
}

TEST_F(WorkloadFixture, Fig18ListHas31Workloads) {
  EXPECT_EQ(Fig18WorkloadNames().size(), 31u);
}

TEST_F(WorkloadFixture, MetricKindsClassified) {
  EXPECT_EQ(MetricFor("silo"), MetricKind::kP95Latency);
  EXPECT_EQ(MetricFor("canneal"), MetricKind::kThroughput);
  EXPECT_EQ(MetricFor("nginx"), MetricKind::kThroughput);
}

}  // namespace
}  // namespace vsched
