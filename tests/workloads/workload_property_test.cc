// Property tests on the workload models: throughput scaling, queueing
// sanity, pipeline bottleneck laws, closed-loop conservation, and catalog
// coverage under both reference VMs.
#include <gtest/gtest.h>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/metrics/experiment.h"
#include "src/sim/simulation.h"
#include "src/workloads/catalog.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/throughput_app.h"

namespace vsched {
namespace {

TopologySpec FlatSpec(int cores) {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = cores;
  spec.threads_per_core = 1;
  return spec;
}

// ---------------------------------------------------------------------------
// TaskParallel throughput scales with threads until vCPUs saturate.
// ---------------------------------------------------------------------------

class TaskParallelScaling : public ::testing::TestWithParam<int> {};

TEST_P(TaskParallelScaling, ThroughputMatchesMinThreadsVcpus) {
  int threads = GetParam();
  const int kVcpus = 4;
  Simulation sim(31);
  HostMachine machine(&sim, FlatSpec(kVcpus));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", kVcpus));
  TaskParallelParams p;
  p.threads = threads;
  p.chunk_mean = MsToNs(1);
  p.chunk_cv = 0.0;
  TaskParallelApp app(&vm.kernel(), p);
  app.Start();
  sim.RunFor(SecToNs(2));
  double expected = 1000.0 * std::min(threads, kVcpus);
  EXPECT_NEAR(app.Result().throughput, expected, 0.08 * expected) << threads << " threads";
}

INSTANTIATE_TEST_SUITE_P(Threads, TaskParallelScaling, ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Open-loop latency app: throughput equals the offered load below
// saturation; mean latency stays near service time at low utilization.
// ---------------------------------------------------------------------------

class OpenLoopLoad : public ::testing::TestWithParam<double> {};

TEST_P(OpenLoopLoad, ServesOfferedLoad) {
  double rate = GetParam();
  Simulation sim(32);
  HostMachine machine(&sim, FlatSpec(4));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
  LatencyAppParams p;
  p.workers = 4;
  p.arrival_rate_per_sec = rate;
  p.service_mean = UsToNs(200);
  p.service_cv = 0.1;
  LatencyApp app(&vm.kernel(), p);
  app.Start();
  sim.RunFor(SecToNs(5));
  EXPECT_NEAR(app.Result().throughput, rate, 0.06 * rate + 10);
  // Utilization = rate * 0.2ms / 4 workers; low utilizations → latency near
  // the bare service time.
  if (rate * 0.0002 / 4 < 0.3) {
    EXPECT_LT(app.Result().mean_ns, 2.0 * UsToNs(200) + UsToNs(50));
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, OpenLoopLoad, ::testing::Values(100.0, 1000.0, 4000.0));

// ---------------------------------------------------------------------------
// Closed-loop latency app: completed counts are conserved and throughput
// follows Little's law (connections = throughput × mean latency).
// ---------------------------------------------------------------------------

class ClosedLoopLaw : public ::testing::TestWithParam<int> {};

TEST_P(ClosedLoopLaw, LittlesLawHolds) {
  int connections = GetParam();
  Simulation sim(33);
  HostMachine machine(&sim, FlatSpec(4));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
  LatencyAppParams p;
  p.workers = 8;
  p.service_mean = UsToNs(300);
  p.service_cv = 0.1;
  p.closed_loop = true;
  p.connections = connections;
  LatencyApp app(&vm.kernel(), p);
  app.Start();
  sim.RunFor(SecToNs(2));
  app.ResetStats();
  sim.RunFor(SecToNs(4));
  WorkloadResult r = app.Result();
  ASSERT_GT(r.completed, 100u);
  double little = r.throughput * (r.mean_ns / 1e9);
  EXPECT_NEAR(little, connections, 0.2 * connections) << connections << " connections";
}

INSTANTIATE_TEST_SUITE_P(Connections, ClosedLoopLaw, ::testing::Values(2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Pipeline: throughput is set by the bottleneck stage across shapes.
// ---------------------------------------------------------------------------

struct PipelineCase {
  TimeNs bottleneck;
  int workers;
};

class PipelineBottleneck : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineBottleneck, ThroughputTracksBottleneck) {
  PipelineCase c = GetParam();
  Simulation sim(34);
  HostMachine machine(&sim, FlatSpec(8));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 8));
  PipelineAppParams p;
  p.stages = {{2, UsToNs(100), 0.0}, {c.workers, c.bottleneck, 0.0}, {2, UsToNs(100), 0.0}};
  p.window = 12;
  p.comm_lines = 0;
  PipelineApp app(&vm.kernel(), p);
  app.Start();
  sim.RunFor(SecToNs(1));
  app.ResetStats();
  sim.RunFor(SecToNs(3));
  double expected = static_cast<double>(c.workers) * 1e9 / static_cast<double>(c.bottleneck);
  EXPECT_NEAR(app.Result().throughput, expected, 0.15 * expected);
}

INSTANTIATE_TEST_SUITE_P(Cases, PipelineBottleneck,
                         ::testing::Values(PipelineCase{MsToNs(1), 1}, PipelineCase{MsToNs(1), 2},
                                           PipelineCase{UsToNs(500), 2},
                                           PipelineCase{MsToNs(2), 3}));

// ---------------------------------------------------------------------------
// Barrier app: iteration rate is the slowest thread's chunk rate.
// ---------------------------------------------------------------------------

TEST(BarrierLawTest, RateIsBoundedByStraggler) {
  Simulation sim(35);
  HostMachine machine(&sim, FlatSpec(4));
  machine.SetCoreFreq(3, 0.5);  // one slow vCPU
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 4));
  BarrierAppParams p;
  p.threads = 4;
  p.chunk_mean = MsToNs(1);
  p.chunk_cv = 0.0;
  BarrierApp app(&vm.kernel(), p);
  app.Start();
  sim.RunFor(SecToNs(2));
  // The slow thread takes 2 ms per chunk → ~500 iter/s.
  EXPECT_NEAR(app.Result().throughput, 500.0, 75.0);
}

// ---------------------------------------------------------------------------
// Every catalog workload runs on both reference VMs without wedging.
// ---------------------------------------------------------------------------

class CatalogOnReferenceVms : public ::testing::TestWithParam<bool> {};

TEST_P(CatalogOnReferenceVms, AllWorkloadsProgress) {
  bool rcvm = GetParam();
  for (const std::string& name : Fig18WorkloadNames()) {
    Simulation sim(36);
    HostMachine machine(&sim, rcvm ? RcvmHostTopology() : HpvmHostTopology());
    std::vector<std::unique_ptr<Stressor>> stressors;
    if (rcvm) {
      ShapeRcvmHost(&sim, &machine, stressors);
    } else {
      ShapeHpvmHost(&sim, &machine, stressors);
    }
    Vm vm(&sim, &machine, rcvm ? MakeRcvmSpec() : MakeHpvmSpec());
    auto w = MakeWorkload(&vm.kernel(), name, vm.num_vcpus());
    w->Start();
    sim.RunFor(MsToNs(400));
    WorkloadResult r = w->Result();
    EXPECT_GT(r.throughput + static_cast<double>(r.completed), 0.0)
        << name << " stuck on " << (rcvm ? "rcvm" : "hpvm");
    w->Stop();
  }
}

INSTANTIATE_TEST_SUITE_P(Vms, CatalogOnReferenceVms, ::testing::Values(true, false));

}  // namespace
}  // namespace vsched
