// Figure 18: overall improvement in the resource-constrained VM (rcvm).
//
// All 31 workloads run with threads == vCPUs under three configurations:
// stock CFS, enhanced CFS (vProbers + rwc feeding the existing heuristics),
// and full vSched (bvs + ivh on top). rcvm has four vCPU quality classes,
// two stragglers, and a stacked pair (§5.1). The 93 runs are sharded across
// worker threads (--jobs N, default: hardware concurrency); results are
// identical to a serial sweep.
#include <chrono>
#include <cstdio>

#include "bench/bench_args.h"
#include "src/metrics/experiment.h"
#include "src/runner/report.h"
#include "src/runner/runner.h"
#include "src/runner/spec.h"

using namespace vsched;

int main(int argc, char** argv) {
  PrintBanner("Figure 18", "rcvm: CFS vs enhanced CFS vs vSched (31 workloads)");
  ExperimentSpec sweep = OverallSweep(ExperimentFamily::kOverallRcvm);
  RunnerOptions options;
  options.jobs = JobsArg(argc, argv);
  options.on_run_done = [](const RunResult&) { std::fprintf(stderr, "."); };
  auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = Runner(options).Run(sweep);
  auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  std::fprintf(stderr, "\n");
  PrintOverallReport("rcvm", results);
  std::printf("\nPaper (Fig 18): enhanced CFS 1.4x lower latency / +59%% throughput;\n"
              "vSched 1.6x lower latency / +69%% throughput on average vs CFS.\n");
  PrintRunSummary(results, elapsed.count());
  return 0;
}
