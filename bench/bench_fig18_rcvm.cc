// Figure 18: overall improvement in the resource-constrained VM (rcvm).
//
// All 31 workloads run with threads == vCPUs under three configurations:
// stock CFS, enhanced CFS (vProbers + rwc feeding the existing heuristics),
// and full vSched (bvs + ivh on top). rcvm has four vCPU quality classes,
// two stragglers, and a stacked pair (§5.1).
#include "bench/fig18_common.h"

using namespace vsched;

int main() {
  PrintBanner("Figure 18", "rcvm: CFS vs enhanced CFS vs vSched (31 workloads)");
  RunOverallExperiment("rcvm", RcvmHostTopology(), MakeRcvmSpec(), 0xF16'18, /*rcvm=*/true);
  std::printf("\nPaper (Fig 18): enhanced CFS 1.4x lower latency / +59%% throughput;\n"
              "vSched 1.6x lower latency / +69%% throughput on average vs CFS.\n");
  return 0;
}
