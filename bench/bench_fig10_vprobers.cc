// Figure 10: accuracy of vcap and vtop.
//
// (a) A vCPU's capacity is stepped over time; the probed EMA capacity must
//     track the trend while smoothing spikes.
// (b) An 8-vCPU VM spanning all topology hierarchies (two SMT pairs in
//     socket 0; an SMT pair and a stacked pair in socket 1); the probed
//     cache-line transfer latency matrix distinguishes every level.
#include <cmath>
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/probe/vtop.h"
#include "tests/guest/test_behaviors.h"

using namespace vsched;

namespace {

void RunEmaTracking() {
  std::printf("\n(a) Actual vs probed EMA capacity over a capacity schedule:\n");
  VmSpec spec = MakeSimpleVmSpec("vm", 2);
  RunContext ctx = MakeRun(FlatHost(4), std::move(spec), VSchedOptions::EnhancedCfs(), 0xF16'10);
  // A busy workload so steal is continuously observable.
  HogBehavior hog;
  Task* t = ctx.kernel().CreateTask("hog", TaskPolicy::kNormal, &hog, CpuMask::Single(0));
  ctx.kernel().StartTask(t);

  struct Phase {
    TimeNs duration;
    double share;  // fraction of the core given to vCPU 0
  };
  // A step down, a spike, then recovery — mirrors Fig 10(a)'s shape.
  const std::vector<Phase> phases = {
      {SecToNs(30), 1.0}, {SecToNs(30), 0.45}, {SecToNs(4), 1.0},  // short spike
      {SecToNs(26), 0.45}, {SecToNs(30), 0.75}, {SecToNs(30), 0.25}};

  TablePrinter table({"t (s)", "actual capacity", "probed EMA capacity"});
  TimeNs t0 = ctx.sim->now();
  for (const Phase& phase : phases) {
    if (phase.share >= 1.0) {
      ctx.vm->ClearVcpuBandwidth(0);
    } else {
      TimeNs period = MsToNs(10);
      ctx.vm->SetVcpuBandwidth(
          0, static_cast<TimeNs>(phase.share * static_cast<double>(period)), period);
    }
    TimeNs end = ctx.sim->now() + phase.duration;
    while (ctx.sim->now() < end) {
      ctx.sim->RunFor(SecToNs(5));
      table.AddRow({TablePrinter::Fmt(NsToSec(ctx.sim->now() - t0), 0),
                    TablePrinter::Fmt(phase.share * kCapacityScale, 0),
                    TablePrinter::Fmt(ctx.vsched->vcap()->CapacityOf(0), 0)});
    }
  }
  table.Print();
}

void RunMatrix() {
  std::printf("\n(b) Probed cache-line transfer latency matrix (ns; inf = stacked):\n");
  TopologySpec host;
  host.sockets = 2;
  host.cores_per_socket = 4;
  host.threads_per_core = 2;
  VmSpec spec = MakeSimpleVmSpec("vm", 8);
  spec.vcpus[0].tid = 0;
  spec.vcpus[1].tid = 1;  // SMT pair, socket 0
  spec.vcpus[2].tid = 2;
  spec.vcpus[3].tid = 3;  // SMT pair, socket 0
  spec.vcpus[4].tid = 8;
  spec.vcpus[5].tid = 9;  // SMT pair, socket 1
  spec.vcpus[6].tid = 10;
  spec.vcpus[7].tid = 10;  // stacked, socket 1
  RunContext ctx = MakeRun(host, std::move(spec), VSchedOptions::Cfs(), 0xF16'1B);
  Vtop vtop(&ctx.kernel());
  bool done = false;
  vtop.RunFullProbe([&] { done = true; });
  ctx.sim->RunFor(SecToNs(20));
  if (!done) {
    std::printf("probe did not finish!\n");
    return;
  }
  std::printf("      ");
  for (int j = 0; j < 8; ++j) {
    std::printf("%8d", j);
  }
  std::printf("\n");
  for (int i = 0; i < 8; ++i) {
    std::printf("vcpu%d ", i);
    for (int j = 0; j < 8; ++j) {
      double lat = vtop.MatrixAt(i, j);
      if (i == j) {
        std::printf("%8s", "0");
      } else if (std::isinf(lat)) {
        std::printf("%8s", "inf");
      } else if (lat < 0) {
        std::printf("%8s", "?");
      } else {
        std::printf("%8.0f", lat);
      }
    }
    std::printf("\n");
  }
  std::printf("\nClasses: <20 ns SMT sibling, <80 ns same socket, >=80 ns cross socket,\n"
              "inf stacked. Paper (Fig 10b): ~6 / ~48 / ~112 ns / inf.\n");
  std::printf("Probed stacking groups: ");
  const GuestTopology& topo = vtop.probed_topology();
  for (int i = 0; i < 8; ++i) {
    if (topo.stack_mask[i].Count() > 1 && topo.stack_mask[i].First() == i) {
      std::printf("{");
      for (int m : topo.stack_mask[i]) {
        std::printf(" %d", m);
      }
      std::printf(" } ");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintBanner("Figure 10", "Accuracy of vcap (EMA capacity) and vtop (latency matrix)");
  RunEmaTracking();
  RunMatrix();
  return 0;
}
