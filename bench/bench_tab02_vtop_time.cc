// Table 2: vtop probing time — full probe vs validation, rcvm vs hpvm.
// Also ablates the timeout-extension heuristic: without extensions, busy
// non-stacked pairs are misidentified as stacked.
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/probe/vtop.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

struct Timing {
  TimeNs full;
  TimeNs validate;
  int misidentified_stacks;
};

Timing RunConfig(bool rcvm, int max_extensions) {
  TopologySpec host = rcvm ? RcvmHostTopology() : HpvmHostTopology();
  VmSpec spec = rcvm ? MakeRcvmSpec() : MakeHpvmSpec();
  int n = static_cast<int>(spec.vcpus.size());
  // Ground truth stacking: count pairs sharing a hardware thread.
  std::vector<int> tid_of(n);
  for (int i = 0; i < n; ++i) {
    tid_of[i] = spec.vcpus[i].tid;
  }
  RunContext ctx = MakeRun(host, std::move(spec), VSchedOptions::Cfs(), 0xAB'02 + rcvm);
  // A light background workload (probing never happens on an idle system).
  TaskParallelParams bg;
  bg.name = "bg";
  bg.threads = n;
  bg.chunk_mean = UsToNs(500);
  bg.policy = TaskPolicy::kIdle;
  TaskParallelApp background(&ctx.kernel(), bg);
  background.Start();

  VtopConfig config;
  config.pair.max_extensions = max_extensions;
  Vtop vtop(&ctx.kernel(), config);
  bool done = false;
  vtop.RunFullProbe([&] { done = true; });
  ctx.sim->RunFor(SecToNs(60));
  Timing t{};
  if (!done) {
    std::printf("  (full probe timed out)\n");
    return t;
  }
  t.full = vtop.last_full_duration();
  bool vdone = false;
  vtop.RunValidation([&](bool) { vdone = true; });
  ctx.sim->RunFor(SecToNs(60));
  t.validate = vdone ? vtop.last_validate_duration() : 0;

  // Misidentification check: probed stack groups vs ground truth.
  const GuestTopology& topo = vtop.probed_topology();
  int errors = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      bool truth = tid_of[a] == tid_of[b];
      bool probed = topo.stack_mask[a].Test(b);
      if (truth != probed) {
        ++errors;
      }
    }
  }
  t.misidentified_stacks = errors;
  background.Stop();
  return t;
}

}  // namespace

int main() {
  PrintBanner("Table 2", "vtop probing time (full vs validation)");
  TablePrinter table({"Config", "full (ms)", "validate (ms)", "stacking errors"});
  for (bool rcvm : {true, false}) {
    Timing t = RunConfig(rcvm, /*max_extensions=*/3);
    std::string name = rcvm ? "rcvm" : "hpvm";
    table.AddRow({name, TablePrinter::Fmt(NsToMs(t.full), 0),
                  TablePrinter::Fmt(NsToMs(t.validate), 0),
                  std::to_string(t.misidentified_stacks)});
  }
  table.Print();
  std::printf("\nPaper (Table 2): rcvm 547/388 ms, hpvm 665/160 ms — validation is faster,\n"
              "and rcvm validation is slower than hpvm's because confirming the stacked\n"
              "pair requires waiting out the (extended) transfer timeout.\n");

  std::printf("\nAblation: timeout extension disabled (max_extensions = 0):\n");
  TablePrinter t2({"Config", "full (ms)", "stacking errors"});
  for (bool rcvm : {true, false}) {
    Timing t = RunConfig(rcvm, /*max_extensions=*/0);
    t2.AddRow({rcvm ? "rcvm" : "hpvm", TablePrinter::Fmt(NsToMs(t.full), 0),
               std::to_string(t.misidentified_stacks)});
  }
  t2.Print();
  std::printf("(Without extensions, probes give up early and misidentify busy vCPU pairs\n"
              "with little active overlap as stacked.)\n");
  return 0;
}
