// Figure 14 + Table 3: latency reduction with biased vCPU selection (bvs).
//
// A 16-vCPU VM overcommitted with a competitor VM on 16 cores; the host
// granularity knobs give half the vCPUs 2× lower latency than the other
// half at symmetric (50%) capacity. Tailbench services run with and without
// bvs (vProbers enabled in both), with and without SCHED_IDLE best-effort
// tasks. Table 3 breaks Masstree's p95 down into queue/service/end-to-end
// and ablates bvs's vCPU-state check.
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

VSchedOptions WithBvs(bool enable_bvs, bool check_state = true) {
  VSchedOptions o = VSchedOptions::EnhancedCfs();
  o.use_rwc = false;  // No stragglers/stacking in this setup.
  o.use_bvs = enable_bvs;
  o.bvs.check_state = check_state;
  return o;
}

struct BvsRun {
  double p95;
  double mean;
  double queue_p95;
  double service_p95;
  double e2e_p95;
};

BvsRun RunOne(const std::string& app_name, bool bvs_on, bool best_effort, bool check_state) {
  RunContext ctx = MakeRun(FlatHost(16), MakeSimpleVmSpec("vm", 16),
                           WithBvs(bvs_on, check_state), 0xF16'14);
  // Competitor VM on every core; low-latency half vs high-latency half via
  // the host scheduling granularities (capacity stays 50% everywhere).
  for (int c = 0; c < 16; ++c) {
    ctx.AddStressor(c);
    HostSchedParams params;
    params.min_granularity = (c < 8) ? MsToNs(4) : MsToNs(8);
    params.wakeup_granularity = params.min_granularity;
    ctx.machine->sched(c).set_params(params);
  }
  std::unique_ptr<TaskParallelApp> background;
  if (best_effort) {
    TaskParallelParams bp;
    bp.name = "best-effort";
    bp.threads = 16;
    bp.chunk_mean = MsToNs(1);
    bp.policy = TaskPolicy::kIdle;
    background = std::make_unique<TaskParallelApp>(&ctx.kernel(), bp);
    background->Start();
  }
  // Low offered load so runqueue latency dominates (as in §5.4).
  LatencyApp app(&ctx.kernel(), LatencyParamsFor(app_name, /*workers=*/8, /*load_factor=*/0.015));
  app.Start();
  ctx.sim->RunFor(SecToNs(4));  // vProbers warm-up.
  app.ResetStats();
  ctx.sim->RunFor(SecToNs(12));
  BvsRun r;
  r.p95 = app.Result().p95_ns;
  r.mean = app.Result().mean_ns;
  r.queue_p95 = app.queue_time().P95();
  r.service_p95 = app.service_time().P95();
  r.e2e_p95 = app.end_to_end().P95();
  app.Stop();
  if (background != nullptr) {
    background->Stop();
  }
  return r;
}

}  // namespace

int main() {
  PrintBanner("Figure 14", "p95 latency with/without bvs (normalized to bvs off)");
  const std::vector<std::string> apps = {"img-dnn", "masstree", "silo", "specjbb", "xapian"};
  for (bool best_effort : {false, true}) {
    std::printf("\n%s best-effort tasks:\n", best_effort ? "With" : "Without");
    TablePrinter table({"App", "p95 w/o (ms)", "p95 w/ (ms)", "p95 ratio", "mean ratio"});
    double sum_reduction = 0;
    for (const auto& app : apps) {
      BvsRun off = RunOne(app, false, best_effort, true);
      BvsRun on = RunOne(app, true, best_effort, true);
      table.AddRow({app, TablePrinter::Fmt(off.p95 / 1e6, 2), TablePrinter::Fmt(on.p95 / 1e6, 2),
                    TablePrinter::Pct(100.0 * on.p95 / off.p95),
                    TablePrinter::Pct(100.0 * on.mean / off.mean)});
      sum_reduction += 1.0 - on.p95 / off.p95;
    }
    table.Print();
    std::printf("Average p95 reduction: %.0f%% (paper: 42%% on average)\n",
                100.0 * sum_reduction / static_cast<double>(apps.size()));
  }

  PrintBanner("Table 3", "Masstree p95 breakdown (ms)");
  TablePrinter t3({"Setting", "Queue", "Service", "End-to-end"});
  for (bool best_effort : {false, true}) {
    BvsRun off = RunOne("masstree", false, best_effort, true);
    BvsRun on = RunOne("masstree", true, best_effort, true);
    std::string suffix = best_effort ? " (best-effort)" : " (no best-effort)";
    t3.AddRow({"No bvs" + suffix, TablePrinter::Fmt(off.queue_p95 / 1e6, 2),
               TablePrinter::Fmt(off.service_p95 / 1e6, 2),
               TablePrinter::Fmt(off.e2e_p95 / 1e6, 2)});
    if (best_effort) {
      BvsRun nostate = RunOne("masstree", true, true, /*check_state=*/false);
      t3.AddRow({"bvs (no state check)", TablePrinter::Fmt(nostate.queue_p95 / 1e6, 2),
                 TablePrinter::Fmt(nostate.service_p95 / 1e6, 2),
                 TablePrinter::Fmt(nostate.e2e_p95 / 1e6, 2)});
    }
    t3.AddRow({"bvs" + suffix, TablePrinter::Fmt(on.queue_p95 / 1e6, 2),
               TablePrinter::Fmt(on.service_p95 / 1e6, 2),
               TablePrinter::Fmt(on.e2e_p95 / 1e6, 2)});
  }
  t3.Print();
  std::printf("\nPaper (Table 3): bvs cuts queue time 44-70%%; skipping the state check\n"
              "raises it again on sched_idle vCPUs.\n");
  return 0;
}
