// Figure 21: vSched overhead when the accurate abstraction cannot help.
//
// A 16-vCPU VM dedicatedly hosted on 16 cores in one socket: vCPUs are
// always active, symmetric, UMA — exactly what the default abstraction
// claims. Any performance difference between CFS and vSched is pure
// overhead (probing cost).
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/workloads/latency_app.h"

using namespace vsched;

namespace {

double RunOne(const std::string& name, bool vsched_on) {
  RunContext ctx = MakeRun(FlatHost(16), MakeSimpleVmSpec("vm", 16),
                           vsched_on ? VSchedOptions::Full() : VSchedOptions::Cfs(), 0xF16'21);
  MeasuredRun run;
  if (MetricFor(name) == MetricKind::kP95Latency) {
    LatencyApp app(&ctx.kernel(), LatencyParamsFor(name, 16, 0.1));
    run = RunWorkloadObj(ctx, &app, SecToNs(5), SecToNs(10));
  } else {
    run = RunWorkload(ctx, name, 16, SecToNs(5), SecToNs(10));
  }
  return Performance(name, run.result);
}

}  // namespace

int main() {
  PrintBanner("Figure 21", "vSched overhead on a dedicated symmetric VM");
  const std::vector<std::string> apps = {
      "blackscholes", "bodytrack", "canneal", "dedup",   "facesim",  "streamcluster",
      "fft",          "ocean_cp",  "radix",   "img-dnn", "moses",    "masstree",
      "silo",         "shore",     "specjbb", "sphinx",  "xapian"};
  TablePrinter table({"Workload", "kind", "degradation (vSched vs CFS)"});
  double sum = 0;
  for (const std::string& app : apps) {
    double cfs = RunOne(app, false);
    double vs = RunOne(app, true);
    double degradation = 100.0 * (1.0 - vs / cfs);
    sum += degradation;
    table.AddRow({app, MetricFor(app) == MetricKind::kP95Latency ? "p95" : "tput",
                  TablePrinter::Pct(degradation, 2)});
  }
  table.Print();
  std::printf("\nAverage degradation: %.2f%% (paper: 0.7%% on average; negative values\n"
              "mean vSched was marginally faster).\n",
              sum / static_cast<double>(apps.size()));
  return 0;
}
