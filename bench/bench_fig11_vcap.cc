// Figure 11: accurate vCPU capacity improves capacity-aware scheduling.
//
// (a) Asymmetric capacity: a 16-vCPU VM where the last 4 vCPUs have 2×
//     higher capacity. Sysbench with 4 CPU-bound threads should spend its
//     time on the high-capacity vCPUs — but stock CFS cannot see them.
// (b) Symmetric capacity: equal vCPUs; steal-based phantom asymmetry causes
//     adverse migrations under stock CFS, which vcap suppresses.
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

// Options: probers without bvs/ivh/rwc so the effect isolates vcap.
VSchedOptions VcapOnly() {
  VSchedOptions o = VSchedOptions::EnhancedCfs();
  o.use_vtop = false;
  o.use_rwc = false;
  return o;
}

struct AsymResult {
  double high_cap_share_pct;  // fraction of execution on the 4 strong vCPUs
  double throughput;
};

AsymResult RunAsym(bool with_vcap) {
  // Capacity asymmetry via DVFS: cores 0-11 at half frequency.
  VmSpec spec = MakeSimpleVmSpec("vm", 16);
  RunContext ctx = MakeRun(FlatHost(16), std::move(spec),
                           with_vcap ? VcapOnly() : VSchedOptions::Cfs(), 0xF16'11);
  for (int c = 0; c < 12; ++c) {
    ctx.machine->SetCoreFreq(c, 0.5);
  }
  TaskParallelParams p;
  p.name = "sysbench";
  p.threads = 4;
  p.chunk_mean = UsToNs(100);
  p.chunk_cv = 0.02;
  TaskParallelApp app(&ctx.kernel(), p);
  app.Start();
  ctx.sim->RunFor(SecToNs(8));  // Warm-up (vcap needs a heavy window).
  app.ResetStats();
  std::vector<TimeNs> exec_before(16);
  for (Task* t : app.tasks()) {
    for (int c = 0; c < 16; ++c) {
      exec_before[c] += t->exec_on(c);
    }
  }
  ctx.sim->RunFor(SecToNs(20));
  std::vector<TimeNs> exec_after(16);
  for (Task* t : app.tasks()) {
    for (int c = 0; c < 16; ++c) {
      exec_after[c] += t->exec_on(c);
    }
  }
  TimeNs high = 0;
  TimeNs total = 0;
  for (int c = 0; c < 16; ++c) {
    TimeNs e = exec_after[c] - exec_before[c];
    total += e;
    if (c >= 12) {
      high += e;
    }
  }
  AsymResult r;
  r.high_cap_share_pct =
      total > 0 ? 100.0 * static_cast<double>(high) / static_cast<double>(total) : 0;
  r.throughput = app.Result().throughput;
  app.Stop();
  return r;
}

struct SymResult {
  double migrations_per_thread;
  double throughput;
};

SymResult RunSym(bool with_vcap) {
  VmSpec spec = MakeSimpleVmSpec("vm", 16);
  RunContext ctx = MakeRun(FlatHost(16), std::move(spec),
                           with_vcap ? VcapOnly() : VSchedOptions::Cfs(), 0xF16'21);
  // Half-capacity everywhere (a competing VM's worth of contention), equal.
  for (int c = 0; c < 16; ++c) {
    ctx.AddStressor(c);
  }
  TaskParallelParams p;
  p.name = "sysbench";
  p.threads = 4;
  p.chunk_mean = UsToNs(100);
  p.chunk_cv = 0.02;
  TaskParallelApp app(&ctx.kernel(), p);
  app.Start();
  ctx.sim->RunFor(SecToNs(8));
  app.ResetStats();
  uint64_t migr_before = 0;
  for (Task* t : app.tasks()) {
    migr_before += t->migrations();
  }
  ctx.sim->RunFor(SecToNs(40));
  uint64_t migr = 0;
  for (Task* t : app.tasks()) {
    migr += t->migrations();
  }
  SymResult r;
  r.migrations_per_thread = static_cast<double>(migr - migr_before) / 4.0;
  r.throughput = app.Result().throughput;
  app.Stop();
  return r;
}

}  // namespace

int main() {
  PrintBanner("Figure 11", "Impact of accurate vCPU capacity (vcap)");

  std::printf("\n(a) Asymmetric capacity (last 4 vCPUs 2x stronger), Sysbench x4 threads:\n");
  AsymResult cfs = RunAsym(false);
  AsymResult vcap = RunAsym(true);
  TablePrinter t1({"Config", "time on high-capacity vCPUs", "throughput (events/s)"});
  t1.AddRow({"CFS", TablePrinter::Pct(cfs.high_cap_share_pct), TablePrinter::Fmt(cfs.throughput, 0)});
  t1.AddRow({"CFS + VCAP", TablePrinter::Pct(vcap.high_cap_share_pct),
             TablePrinter::Fmt(vcap.throughput, 0)});
  t1.Print();
  std::printf("Throughput gain with vcap: %.0f%% (paper: 32%%, 44%% -> 81%% placement)\n",
              100.0 * (vcap.throughput / cfs.throughput - 1.0));

  std::printf("\n(b) Symmetric capacity (all vCPUs 50%%), migrations over 40 s:\n");
  SymResult scfs = RunSym(false);
  SymResult svcap = RunSym(true);
  TablePrinter t2({"Config", "migrations/thread", "throughput (events/s)"});
  t2.AddRow({"CFS", TablePrinter::Fmt(scfs.migrations_per_thread, 0),
             TablePrinter::Fmt(scfs.throughput, 0)});
  t2.AddRow({"CFS + VCAP", TablePrinter::Fmt(svcap.migrations_per_thread, 0),
             TablePrinter::Fmt(svcap.throughput, 0)});
  t2.Print();
  std::printf("Migration reduction with vcap: %.0f%% (paper: 74%%, 4%% higher throughput)\n",
              100.0 * (1.0 - svcap.migrations_per_thread /
                                 std::max(1.0, scfs.migrations_per_thread)));
  return 0;
}
