// Table 1: chosen values of vSched tunables.
#include <cstdio>

#include "src/core/config.h"
#include "src/metrics/experiment.h"

using namespace vsched;

int main() {
  PrintBanner("Table 1", "Chosen values of vSched tunables");
  VSchedOptions o = VSchedOptions::Full();
  TablePrinter table({"Tunable", "Description", "Value"});
  table.AddRow({"vcap.sampling_period", "vcap sampling period",
                TablePrinter::Fmt(NsToMs(o.vcap.sampling_period), 0) + " ms"});
  table.AddRow({"vcap.light_interval", "vcap light sampling frequency",
                "every " + TablePrinter::Fmt(NsToSec(o.vcap.light_interval), 0) + " s"});
  table.AddRow({"vcap.heavy_every", "vcap heavy sampling frequency",
                "every " + std::to_string(o.vcap.heavy_every) + " light samplings"});
  table.AddRow({"vcap.ema_half_life_periods", "vcap EMA decay factor",
                "50% per " + TablePrinter::Fmt(o.vcap.ema_half_life_periods, 0) + " periods"});
  table.AddRow({"vtop.probe_interval", "vtop sampling frequency",
                "every " + TablePrinter::Fmt(NsToSec(o.vtop.probe_interval), 0) + " s"});
  table.AddRow({"vtop.pair.target_transfers", "vtop targeted cache transfers",
                std::to_string(o.vtop.pair.target_transfers) + " times"});
  table.AddRow({"vtop.pair.timeout_attempts", "vtop cache transfer timeout",
                std::to_string(o.vtop.pair.timeout_attempts) + " transfer attempts"});
  table.AddRow({"ivh.migration_threshold", "ivh migration threshold",
                "after " + TablePrinter::Fmt(NsToMs(o.ivh.migration_threshold), 0) + " ms"});
  table.Print();
  std::printf("\nPaper (Table 1): 100 ms / 1 s / 5 / 50%% per 2 / 2 s / 500 / 15000 / 2 ms\n");
  return 0;
}
