// Figure 16: vSched responds quickly to vCPU changes.
//
// A 16-vCPU VM serves Nginx while the host goes through four phases:
// dedicated → overcommitted (competing VM) → asymmetric capacity →
// resource-constrained (stacked pair + two very weak vCPUs). Live
// throughput is reported per second for CFS and vSched.
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/workloads/latency_app.h"

using namespace vsched;

namespace {

constexpr TimeNs kPhase = SecToNs(30);

TimeSeries RunSchedule(bool vsched_on) {
  HostSchedParams host;
  host.min_granularity = MsToNs(4);
  host.wakeup_granularity = MsToNs(4);
  RunContext ctx = MakeRun(FlatHost(16), MakeSimpleVmSpec("vm", 16),
                           vsched_on ? VSchedOptions::Full() : VSchedOptions::Cfs(),
                           0xF16'16, host);
  LatencyAppParams p = LatencyParamsFor("nginx", 24, 0.375);
  p.report_interval = SecToNs(1);
  // wrk-style closed-loop client: throughput tracks latency.
  p.closed_loop = true;
  p.connections = 16;
  p.comm_lines = 300;
  LatencyApp app(&ctx.kernel(), p);
  app.Start();

  // Phase 1: dedicated.
  ctx.sim->RunFor(kPhase);

  // Phase 2: overcommitted — a competing VM on every core.
  for (int c = 0; c < 16; ++c) {
    ctx.AddStressor(c);
  }
  ctx.sim->RunFor(kPhase);

  // Phase 3: asymmetric — half the vCPUs get 2x higher capacity (weight).
  for (int i = 0; i < 8; ++i) {
    ctx.stressors[i]->Stop();
  }
  for (int i = 0; i < 8; ++i) {
    // Competing entity with 1/3 weight → our vCPU gets ~75% (2x of 37.5%).
    ctx.stressors[i] = std::make_unique<Stressor>(ctx.sim.get(), "light", 341.0);
    ctx.stressors[i]->Start(ctx.machine.get(), i);
  }
  ctx.sim->RunFor(kPhase);

  // Phase 4: constrained — stack vCPU 14 onto vCPU 15's thread and starve
  // vCPUs 12/13 with host RT stressors.
  ctx.vm->PinVcpu(14, 15);
  for (int c = 12; c <= 13; ++c) {
    ctx.stressors.push_back(std::make_unique<Stressor>(ctx.sim.get(), "rt", 1024.0, true));
    ctx.stressors.back()->StartDutyCycle(ctx.machine.get(), c, MsToNs(19), MsToNs(1));
  }
  ctx.sim->RunFor(kPhase);

  app.Stop();
  return app.live_throughput();
}

}  // namespace

int main() {
  PrintBanner("Figure 16", "Nginx live throughput across host phases (requests/s)");
  TimeSeries cfs = RunSchedule(false);
  TimeSeries vsched = RunSchedule(true);
  TablePrinter table({"Phase", "window (s)", "CFS", "vSched", "vSched/CFS"});
  const char* names[4] = {"Dedicated", "Overcommitted", "Asymmetric", "Constrained"};
  for (int phase = 0; phase < 4; ++phase) {
    // Skip the first 5 s of each phase (adaptation transient) for the mean.
    TimeNs from = phase * kPhase + SecToNs(5);
    TimeNs to = (phase + 1) * kPhase;
    double c = cfs.MeanInWindow(from, to);
    double v = vsched.MeanInWindow(from, to);
    char window[32];
    std::snprintf(window, sizeof(window), "%d-%d", static_cast<int>(NsToSec(from)),
                  static_cast<int>(NsToSec(to)));
    table.AddRow({names[phase], window, TablePrinter::Fmt(c, 0), TablePrinter::Fmt(v, 0),
                  TablePrinter::Pct(c > 0 ? 100.0 * v / c : 0, 0)});
  }
  table.Print();

  std::printf("\nLive series (5 s buckets, requests/s):\n");
  TablePrinter series({"t (s)", "CFS", "vSched"});
  for (int t = 5; t <= 120; t += 5) {
    series.AddRow({std::to_string(t),
                   TablePrinter::Fmt(cfs.MeanInWindow(SecToNs(t - 5), SecToNs(t)), 0),
                   TablePrinter::Fmt(vsched.MeanInWindow(SecToNs(t - 5), SecToNs(t)), 0)});
  }
  series.Print();
  std::printf("\nPaper (Fig 16): parity when dedicated; vSched holds higher throughput when\n"
              "overcommitted (ivh), tracks capacity asymmetry, and recovers quickly in the\n"
              "constrained phase by hiding problematic vCPUs (rwc).\n");
  return 0;
}
