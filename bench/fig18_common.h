// Shared driver for the Figure 18/19 overall-improvement experiments.
#ifndef BENCH_FIG18_COMMON_H_
#define BENCH_FIG18_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/workloads/latency_app.h"

namespace vsched {

struct OverallRow {
  std::string name;
  bool latency_sensitive;
  double cfs;
  double enhanced;
  double full;
};

inline void RunOverallExperiment(const std::string& banner_id, const TopologySpec& host,
                                 const VmSpec& vm_spec, uint64_t seed, bool rcvm) {
  int threads = static_cast<int>(vm_spec.vcpus.size());
  std::vector<OverallRow> rows;
  for (const std::string& name : Fig18WorkloadNames()) {
    OverallRow row;
    row.name = name;
    row.latency_sensitive = MetricFor(name) == MetricKind::kP95Latency;
    double* slots[3] = {&row.cfs, &row.enhanced, &row.full};
    VSchedOptions options[3] = {VSchedOptions::Cfs(), VSchedOptions::EnhancedCfs(),
                                VSchedOptions::Full()};
    for (int i = 0; i < 3; ++i) {
      RunContext ctx = MakeRun(host, vm_spec, options[i], seed);
      if (rcvm) {
        ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
      } else {
        ShapeHpvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
      }
      MeasuredRun run;
      if (row.latency_sensitive) {
        // Low offered load: tail latency, not queueing for workers, is the
        // object of measurement (§5.1 reduces arrival rates similarly).
        LatencyApp app(&ctx.kernel(), LatencyParamsFor(name, threads, 0.05));
        run = RunWorkloadObj(ctx, &app, SecToNs(5), SecToNs(10));
      } else {
        run = RunWorkload(ctx, name, threads, SecToNs(5), SecToNs(10));
      }
      *slots[i] = Performance(name, run.result);
    }
    rows.push_back(row);
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");

  TablePrinter table({"Workload", "kind", "CFS", "Enhanced CFS", "vSched"});
  std::vector<double> tput_enh, tput_full, lat_enh, lat_full;
  for (const OverallRow& row : rows) {
    double enh = row.cfs > 0 ? 100.0 * row.enhanced / row.cfs : 0;
    double full = row.cfs > 0 ? 100.0 * row.full / row.cfs : 0;
    table.AddRow({row.name, row.latency_sensitive ? "p95" : "tput", TablePrinter::Pct(100.0, 0),
                  TablePrinter::Pct(enh, 0), TablePrinter::Pct(full, 0)});
    if (row.cfs > 0 && row.enhanced > 0 && row.full > 0) {
      (row.latency_sensitive ? lat_enh : tput_enh).push_back(row.enhanced / row.cfs);
      (row.latency_sensitive ? lat_full : tput_full).push_back(row.full / row.cfs);
    }
  }
  table.Print();
  std::printf("\n%s summary (normalized performance vs CFS, higher is better; for\n"
              "latency-sensitive apps the metric is 1/p95):\n", banner_id.c_str());
  std::printf("  throughput-oriented: enhanced CFS %.0f%%, vSched %.0f%%\n",
              100.0 * GeoMean(tput_enh), 100.0 * GeoMean(tput_full));
  std::printf("  latency-sensitive:   enhanced CFS %.0f%% (%.2fx p95 reduction), vSched %.0f%%"
              " (%.2fx p95 reduction)\n",
              100.0 * GeoMean(lat_enh), GeoMean(lat_enh), 100.0 * GeoMean(lat_full),
              GeoMean(lat_full));
}

}  // namespace vsched

#endif  // BENCH_FIG18_COMMON_H_
