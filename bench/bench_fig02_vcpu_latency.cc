// Figure 2: the impact of vCPU latency on latency-sensitive workloads.
//
// A 32-vCPU VM whose vCPUs are shaped to 50% capacity with inactive periods
// of 2/4/8/16 ms runs Tailbench-style services at a low arrival rate. The
// p95 tail latency is reported normalized to the 16 ms configuration (lower
// is better), with and without SCHED_IDLE best-effort background tasks. The
// 24 runs are sharded across worker threads (--jobs N, default: hardware
// concurrency); results are identical to a serial sweep.
#include <chrono>
#include <cstdio>

#include "bench/bench_args.h"
#include "src/metrics/experiment.h"
#include "src/runner/report.h"
#include "src/runner/runner.h"
#include "src/runner/spec.h"

using namespace vsched;

int main(int argc, char** argv) {
  PrintBanner("Figure 2", "Impact of vCPU latency on p95 tail latency (normalized to 16 ms)");
  ExperimentSpec sweep = VcpuLatencySweep();
  RunnerOptions options;
  options.jobs = JobsArg(argc, argv);
  options.on_run_done = [](const RunResult&) { std::fprintf(stderr, "."); };
  auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = Runner(options).Run(sweep);
  auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  std::fprintf(stderr, "\n");
  PrintVcpuLatencyReport(results);
  std::printf("\nPaper: p95 grows up to ~20x from 2 ms to 16 ms vCPU latency.\n");
  PrintRunSummary(results, elapsed.count());
  return 0;
}
