// Figure 2: the impact of vCPU latency on latency-sensitive workloads.
//
// A 32-vCPU VM whose vCPUs are shaped to 50% capacity with inactive periods
// of 2/4/8/16 ms runs Tailbench-style services at a low arrival rate. The
// p95 tail latency is reported normalized to the 16 ms configuration (lower
// is better), with and without SCHED_IDLE best-effort background tasks.
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

double RunOne(const std::string& app_name, TimeNs vcpu_latency, bool best_effort) {
  const int kVcpus = 32;
  VmSpec spec = MakeSimpleVmSpec("vm", kVcpus);
  // A co-located VM stresses every core (Sysbench in the paper); the host
  // granularity knobs shape how long a runnable vCPU waits for the
  // competitor's slice — i.e. the vCPU latency — without changing capacity.
  HostSchedParams host;
  host.min_granularity = vcpu_latency;
  host.wakeup_granularity = vcpu_latency;
  RunContext ctx = MakeRun(FlatHost(kVcpus), std::move(spec), VSchedOptions::Cfs(),
                           /*seed=*/0xF16'02 + vcpu_latency, host);
  for (int c = 0; c < kVcpus; ++c) {
    ctx.AddStressor(c);
  }
  std::unique_ptr<TaskParallelApp> background;
  if (best_effort) {
    TaskParallelParams bp;
    bp.name = "best-effort";
    bp.threads = kVcpus;
    bp.chunk_mean = MsToNs(1);
    bp.policy = TaskPolicy::kIdle;
    background = std::make_unique<TaskParallelApp>(&ctx.kernel(), bp);
    background->Start();
  }
  MeasuredRun run = RunWorkload(ctx, app_name, /*threads=*/8, SecToNs(2), SecToNs(10));
  if (background != nullptr) {
    background->Stop();
  }
  return run.result.p95_ns;
}

}  // namespace

int main() {
  PrintBanner("Figure 2", "Impact of vCPU latency on p95 tail latency (normalized to 16 ms)");
  const std::vector<std::string> apps = {"img-dnn", "silo", "specjbb"};
  const std::vector<TimeNs> latencies = {MsToNs(2), MsToNs(4), MsToNs(8), MsToNs(16)};

  for (bool best_effort : {false, true}) {
    std::printf("\n%s best-effort tasks:\n", best_effort ? "With" : "Without");
    TablePrinter table({"App", "2 ms", "4 ms", "8 ms", "16 ms", "p95@2ms", "p95@16ms"});
    for (const std::string& app : apps) {
      std::map<TimeNs, double> p95;
      for (TimeNs lat : latencies) {
        p95[lat] = RunOne(app, lat, best_effort);
      }
      double base = p95[MsToNs(16)];
      table.AddRow({app, TablePrinter::Pct(100 * p95[MsToNs(2)] / base),
                    TablePrinter::Pct(100 * p95[MsToNs(4)] / base),
                    TablePrinter::Pct(100 * p95[MsToNs(8)] / base), TablePrinter::Pct(100.0),
                    TablePrinter::Fmt(NsToMs(static_cast<TimeNs>(p95[MsToNs(2)])), 2) + " ms",
                    TablePrinter::Fmt(NsToMs(static_cast<TimeNs>(base)), 2) + " ms"});
    }
    table.Print();
  }
  std::printf("\nPaper: p95 grows up to ~20x from 2 ms to 16 ms vCPU latency.\n");
  return 0;
}
