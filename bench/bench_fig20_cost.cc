// Figure 20: the cost of vSched — total cycles and cycles-per-second.
//
// Fixed amounts of work run to completion on rcvm and hpvm under CFS and
// full vSched. "Cycles" is the VM's total executed work over the run
// (probers and harvesting included); CPS is cycles per second of run time —
// higher CPS means higher vCPU utilization. vSched should finish sooner,
// spending slightly more cycles at a much higher CPS.
#include <cstdio>
#include <memory>

#include "src/runner/run_context.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

struct CostResult {
  double cycles;
  double cps;
  double seconds;
};

CostResult RunOne(const std::string& name, bool rcvm, bool vsched_on) {
  TopologySpec host = rcvm ? RcvmHostTopology() : HpvmHostTopology();
  VmSpec spec = rcvm ? MakeRcvmSpec() : MakeHpvmSpec();
  int threads = static_cast<int>(spec.vcpus.size());
  RunContext ctx = MakeRun(host, std::move(spec),
                           vsched_on ? VSchedOptions::Full() : VSchedOptions::Cfs(), 0xF16'20);
  if (rcvm) {
    ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  } else {
    ShapeHpvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  }
  GuestKernel& kernel = ctx.kernel();

  std::unique_ptr<Workload> workload;
  std::function<bool()> finished;
  if (name == "bodytrack" || name == "lu_cb") {
    BarrierAppParams p;
    p.name = name;
    p.threads = threads;
    p.chunk_mean = name == "bodytrack" ? MsToNs(2) : UsToNs(800);
    p.chunk_cv = 0.25;
    p.comm_lines = 250;
    p.max_iterations = name == "bodytrack" ? 1000 : 2500;
    auto app = std::make_unique<BarrierApp>(&kernel, p);
    BarrierApp* raw = app.get();
    finished = [raw] { return raw->finished(); };
    workload = std::move(app);
  } else if (name == "swaptions") {
    TaskParallelParams p;
    p.name = name;
    p.threads = threads;
    p.chunk_mean = MsToNs(10);
    p.chunk_cv = 0.2;
    p.max_chunks = threads * 60;
    auto app = std::make_unique<TaskParallelApp>(&kernel, p);
    TaskParallelApp* raw = app.get();
    int target = p.max_chunks;
    finished = [raw, target] { return raw->chunks_done() >= static_cast<uint64_t>(target); };
    workload = std::move(app);
  } else {
    // Latency-sensitive: a closed-loop client issues a fixed request count.
    LatencyAppParams p = LatencyParamsFor(name, threads, 0.05);
    p.closed_loop = true;
    p.connections = threads / 4;
    auto app = std::make_unique<LatencyApp>(&kernel, p);
    LatencyApp* raw = app.get();
    uint64_t target = name == "sphinx" ? 2000 : 20000;
    finished = [raw, target] { return raw->Result().completed >= target; };
    workload = std::move(app);
  }

  workload->Start();
  TimeNs start = ctx.sim->now();
  Work work_before = TotalWorkDone(kernel);
  while (!finished() && ctx.sim->now() - start < SecToNs(120)) {
    ctx.sim->RunFor(MsToNs(100));
  }
  CostResult r;
  r.seconds = NsToSec(ctx.sim->now() - start);
  r.cycles = TotalWorkDone(kernel) - work_before;
  r.cps = r.cycles / r.seconds;
  workload->Stop();
  return r;
}

}  // namespace

int main() {
  PrintBanner("Figure 20", "vSched cost: total cycles and CPS (work units, fixed work)");
  const std::vector<std::string> apps = {"bodytrack", "swaptions", "lu_cb",
                                         "img-dnn",   "specjbb",   "sphinx"};
  for (bool rcvm : {false, true}) {
    std::printf("\n%s:\n", rcvm ? "RCVM" : "HPVM");
    TablePrinter table({"App", "time CFS (s)", "time vSched (s)", "Δcycles", "ΔCPS"});
    for (const std::string& app : apps) {
      CostResult cfs = RunOne(app, rcvm, false);
      CostResult vs = RunOne(app, rcvm, true);
      table.AddRow({app, TablePrinter::Fmt(cfs.seconds, 1), TablePrinter::Fmt(vs.seconds, 1),
                    TablePrinter::Pct(100.0 * (vs.cycles / cfs.cycles - 1.0), 1),
                    TablePrinter::Pct(100.0 * (vs.cps / cfs.cps - 1.0), 1)});
    }
    table.Print();
  }
  std::printf("\nPaper (Fig 20): throughput-oriented workloads +5.5%% cycles / +38%% CPS;\n"
              "latency-sensitive +50.5%% cycles / +81%% CPS (they are ~8.4x lighter, so\n"
              "the absolute cost stays small).\n");
  return 0;
}
