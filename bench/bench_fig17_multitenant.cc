// Figure 17: vSched maintains QoS under realistic multi-tenant interference.
//
// A 16-vCPU Nginx VM shares 16 cores with co-located VMs whose workloads
// change over time: intermittent (facesim + ferret), consistent (swaptions
// + raytrace), then transient (four latency-sensitive VMs). Nginx's live
// throughput is compared between CFS and vSched, and the co-tenants'
// degradation under vSched is reported.
#include <cstdio>
#include <memory>

#include "src/runner/run_context.h"
#include "src/workloads/latency_app.h"

using namespace vsched;

namespace {

constexpr TimeNs kPhase = SecToNs(40);

struct PhaseResult {
  double nginx;                 // primary VM requests/s in the phase
  double cotenant_performance;  // sum of co-tenant throughputs (or 1/p95)
};

struct ScheduleResult {
  PhaseResult intermittent;
  PhaseResult consistent;
  PhaseResult transient_phase;
  TimeSeries live;
};

// One co-located VM with its own (stock CFS) guest kernel and workload.
struct Tenant {
  std::unique_ptr<Vm> vm;
  std::unique_ptr<Workload> workload;
};

Tenant MakeTenant(RunContext& ctx, const std::string& app, int vcpus) {
  Tenant t;
  t.vm = std::make_unique<Vm>(ctx.sim.get(), ctx.machine.get(),
                              MakeSimpleVmSpec("tenant-" + app, vcpus));
  t.workload = MakeWorkload(&t.vm->kernel(), app, vcpus);
  t.workload->Start();
  return t;
}

ScheduleResult RunSchedule(bool vsched_on) {
  HostSchedParams host;
  host.min_granularity = MsToNs(4);
  host.wakeup_granularity = MsToNs(4);
  RunContext ctx = MakeRun(FlatHost(16), MakeSimpleVmSpec("vm", 16),
                           vsched_on ? VSchedOptions::Full() : VSchedOptions::Cfs(),
                           0xF16'17, host);
  LatencyAppParams p = LatencyParamsFor("nginx", 24, 0.375);
  p.report_interval = SecToNs(1);
  p.closed_loop = true;
  p.connections = 16;
  p.comm_lines = 300;
  LatencyApp nginx(&ctx.kernel(), p);
  nginx.Start();
  ScheduleResult result;

  // Phase 1: intermittent interference (synchronization-intensive).
  {
    Tenant facesim = MakeTenant(ctx, "facesim", 16);
    Tenant ferret = MakeTenant(ctx, "ferret", 16);
    ctx.sim->RunFor(SecToNs(5));
    facesim.workload->ResetStats();
    ferret.workload->ResetStats();
    TimeNs from = ctx.sim->now();
    ctx.sim->RunFor(kPhase - SecToNs(5));
    result.intermittent.nginx = nginx.live_throughput().MeanInWindow(from, ctx.sim->now());
    result.intermittent.cotenant_performance =
        facesim.workload->Result().throughput + ferret.workload->Result().throughput;
    facesim.workload->Stop();
    ferret.workload->Stop();
    ctx.sim->RunFor(MsToNs(200));
  }

  // Phase 2: consistent interference (computation-intensive).
  {
    Tenant swaptions = MakeTenant(ctx, "swaptions", 16);
    Tenant raytrace = MakeTenant(ctx, "raytrace", 16);
    ctx.sim->RunFor(SecToNs(5));
    swaptions.workload->ResetStats();
    raytrace.workload->ResetStats();
    TimeNs from = ctx.sim->now();
    ctx.sim->RunFor(kPhase - SecToNs(5));
    result.consistent.nginx = nginx.live_throughput().MeanInWindow(from, ctx.sim->now());
    result.consistent.cotenant_performance =
        swaptions.workload->Result().throughput + raytrace.workload->Result().throughput;
    swaptions.workload->Stop();
    raytrace.workload->Stop();
    ctx.sim->RunFor(MsToNs(200));
  }

  // Phase 3: transient interference (latency-sensitive small tasks).
  {
    std::vector<Tenant> tenants;
    for (const std::string& app : {std::string("masstree"), std::string("silo"),
                                   std::string("img-dnn"), std::string("specjbb")}) {
      tenants.push_back(MakeTenant(ctx, app, 16));
    }
    ctx.sim->RunFor(SecToNs(5));
    for (Tenant& t : tenants) {
      t.workload->ResetStats();
    }
    TimeNs from = ctx.sim->now();
    ctx.sim->RunFor(kPhase - SecToNs(5));
    result.transient_phase.nginx = nginx.live_throughput().MeanInWindow(from, ctx.sim->now());
    double inv_p95_sum = 0;
    for (Tenant& t : tenants) {
      double p95 = t.workload->Result().p95_ns;
      inv_p95_sum += p95 > 0 ? 1e9 / p95 : 0;
      t.workload->Stop();
    }
    result.transient_phase.cotenant_performance = inv_p95_sum;
  }

  nginx.Stop();
  result.live = nginx.live_throughput();
  return result;
}

}  // namespace

int main() {
  PrintBanner("Figure 17", "Nginx QoS under varying multi-tenant interference");
  ScheduleResult cfs = RunSchedule(false);
  ScheduleResult vs = RunSchedule(true);

  TablePrinter table({"Phase", "Nginx CFS", "Nginx vSched", "gain", "co-tenant degradation"});
  auto row = [&](const char* name, const PhaseResult& c, const PhaseResult& v) {
    double degradation =
        c.cotenant_performance > 0
            ? 100.0 * (1.0 - v.cotenant_performance / c.cotenant_performance)
            : 0;
    table.AddRow({name, TablePrinter::Fmt(c.nginx, 0), TablePrinter::Fmt(v.nginx, 0),
                  TablePrinter::Pct(100.0 * (v.nginx / c.nginx - 1.0), 1),
                  TablePrinter::Pct(degradation, 1)});
  };
  row("Intermittent (facesim+ferret)", cfs.intermittent, vs.intermittent);
  row("Consistent (swaptions+raytrace)", cfs.consistent, vs.consistent);
  row("Transient (4 latency VMs)", cfs.transient_phase, vs.transient_phase);
  table.Print();

  std::printf("\nPaper (Fig 17): +15%% under intermittent (1.2%% co-tenant slowdown), +24%%\n"
              "under consistent (~2%% slowdown), parity under transient with a small p95\n"
              "improvement for the co-located latency VMs.\n");
  return 0;
}
