# ctest script: the sharded (PDES) fleet engine is deterministic in its
# worker-thread count. Run with:
#   cmake -DVSCHED_RUN=<binary> -DWORK_DIR=<dir> -P vsched_run_fleet_sharded.cmake
#
# Asserts:
#   1. A tiny-fleet sweep on the sharded engine emits byte-identical JSONL at
#      --shards 1, 2, and 4. The host partition into cells is fixed by the
#      FleetSpec (tiny: two 2-host cells), shard-crossing interactions travel
#      as (due, origin, seq)-ordered mailbox messages applied at lookahead
#      barriers, and per-cell RNG streams derive from the root seed in cell
#      order — so the thread count is unobservable, the same guarantee class
#      as the runner's --jobs (see docs/PERF.md, "Sharded fleet execution").
#   2. The same holds with a chaos plan armed: fault injectors live inside
#      cells and replay byte-identically at any shard count.

function(run_fleet out)
  execute_process(
      COMMAND ${VSCHED_RUN} --fleet tiny ${ARGN} --out ${out}
      RESULT_VARIABLE rc
      OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "vsched_run --fleet tiny ${ARGN} failed (rc=${rc})")
  endif()
endfunction()

function(expect_identical a b what)
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
      RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endfunction()

# --- 1. byte-identical across shard counts -----------------------------------
run_fleet(${WORK_DIR}/fleet_s1.jsonl --shards 1)
run_fleet(${WORK_DIR}/fleet_s2.jsonl --shards 2)
run_fleet(${WORK_DIR}/fleet_s4.jsonl --shards 4)
expect_identical(${WORK_DIR}/fleet_s1.jsonl ${WORK_DIR}/fleet_s2.jsonl
                 "sharded fleet JSONL differs between --shards=1 and --shards=2")
expect_identical(${WORK_DIR}/fleet_s1.jsonl ${WORK_DIR}/fleet_s4.jsonl
                 "sharded fleet JSONL differs between --shards=1 and --shards=4")

# --- 2. chaos-plan replay across shard counts --------------------------------
run_fleet(${WORK_DIR}/fleet_chaos_s1.jsonl --shards 1 --fault-plan everything)
run_fleet(${WORK_DIR}/fleet_chaos_s4.jsonl --shards 4 --fault-plan everything)
expect_identical(${WORK_DIR}/fleet_chaos_s1.jsonl ${WORK_DIR}/fleet_chaos_s4.jsonl
                 "chaos sharded fleet differs between --shards=1 and --shards=4")
