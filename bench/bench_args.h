// Minimal flag parsing shared by the runner-backed bench binaries.
#ifndef BENCH_BENCH_ARGS_H_
#define BENCH_BENCH_ARGS_H_

#include <cstdlib>
#include <cstring>
#include <string>

namespace vsched {

// Value of "--name N" or "--name=N" in argv, else `fallback`.
inline long FlagValue(int argc, char** argv, const char* name, long fallback) {
  std::string flag = std::string("--") + name;
  std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i] && i + 1 < argc) {
      return std::atol(argv[i + 1]);
    }
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

// Worker threads for a bench: "--jobs N", default 0 (hardware concurrency).
inline int JobsArg(int argc, char** argv) {
  return static_cast<int>(FlagValue(argc, argv, "jobs", 0));
}

}  // namespace vsched

#endif  // BENCH_BENCH_ARGS_H_
