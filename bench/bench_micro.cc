// Micro-benchmarks of the simulator substrate itself (google-benchmark):
// event-queue throughput, guest scheduler hot paths, prober costs. These
// are not paper artifacts; they track the engine's own performance.
#include <benchmark/benchmark.h>

#include "src/runner/run_context.h"
#include "src/sim/event_queue.h"
#include "src/workloads/throughput_app.h"

namespace vsched {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  EventQueue q;
  int64_t dummy = 0;
  for (auto _ : state) {
    q.ScheduleAfter(1, [&dummy] { ++dummy; });
    q.RunOne();
  }
  benchmark::DoNotOptimize(dummy);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueCancel(benchmark::State& state) {
  EventQueue q;
  for (auto _ : state) {
    EventId id = q.ScheduleAfter(1000, [] {});
    q.Cancel(id);
  }
  // Drain lazily-deleted heap entries.
  q.RunUntil(q.now() + 2000);
}
BENCHMARK(BM_EventQueueCancel);

void BM_SimSecondIdleVm(benchmark::State& state) {
  // Cost of simulating one second of an idle 16-vCPU VM (ticks only).
  for (auto _ : state) {
    Simulation sim(1);
    HostMachine machine(&sim, FlatHost(16));
    Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", 16));
    sim.RunFor(SecToNs(1));
    benchmark::DoNotOptimize(sim.now());
  }
}
BENCHMARK(BM_SimSecondIdleVm)->Unit(benchmark::kMillisecond);

void BM_SimSecondBusyVm(benchmark::State& state) {
  // One second of a fully loaded 16-vCPU VM with vSched active.
  for (auto _ : state) {
    RunContext ctx = MakeRun(FlatHost(16), MakeSimpleVmSpec("vm", 16),
                             VSchedOptions::Full(), 1);
    TaskParallelParams p;
    p.threads = 16;
    p.chunk_mean = MsToNs(1);
    TaskParallelApp app(&ctx.kernel(), p);
    app.Start();
    ctx.sim->RunFor(SecToNs(1));
    app.Stop();
    benchmark::DoNotOptimize(ctx.sim->now());
  }
}
BENCHMARK(BM_SimSecondBusyVm)->Unit(benchmark::kMillisecond);

void BM_WakePlacement(benchmark::State& state) {
  // select_task_rq cost at various VM sizes.
  Simulation sim(1);
  HostMachine machine(&sim, FlatHost(32, 2));
  Vm vm(&sim, &machine, MakeSimpleVmSpec("vm", static_cast<int>(state.range(0))));
  TaskParallelParams p;
  p.threads = 2;
  p.chunk_mean = MsToNs(1);
  TaskParallelApp app(&vm.kernel(), p);
  app.Start();
  sim.RunFor(MsToNs(10));
  // Benchmark the placement decision for a fresh task via the hook-free path.
  for (auto _ : state) {
    sim.RunFor(MsToNs(1));
    benchmark::DoNotOptimize(vm.kernel().counters().context_switches.value());
  }
  app.Stop();
}
BENCHMARK(BM_WakePlacement)->Arg(8)->Arg(32);

}  // namespace
}  // namespace vsched

BENCHMARK_MAIN();
