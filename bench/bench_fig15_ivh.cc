// Figure 15 + Table 4: increased throughput with intra-VM harvesting (ivh).
//
// A 16-vCPU VM overcommitted so every vCPU gets 50% of its core in 5 ms
// slices. Throughput-oriented workloads run with 1..16 threads; ivh
// harvests the unused vCPUs for the stalled running tasks. Table 4 ablates
// the activity-aware (pre-wake) migration on canneal.
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

// Overcommit like the paper: a competing VM on the same 16 cores (WFQ
// sharing, each vCPU gets ~50% of its core in multi-ms slices).
RunContext MakeOvercommitted(VSchedOptions options, uint64_t seed) {
  HostSchedParams host;
  host.min_granularity = MsToNs(5);
  host.wakeup_granularity = MsToNs(5);
  RunContext ctx = MakeRun(FlatHost(16), MakeSimpleVmSpec("vm", 16), options, seed, host);
  for (int c = 0; c < 16; ++c) {
    ctx.AddStressor(c);
  }
  return ctx;
}

VSchedOptions WithIvh(bool enable, bool activity_aware = true) {
  VSchedOptions o = VSchedOptions::EnhancedCfs();
  o.use_rwc = false;
  o.use_ivh = enable;
  o.ivh.activity_aware = activity_aware;
  return o;
}

double RunOne(const std::string& app_name, int threads, bool ivh_on) {
  RunContext ctx = MakeOvercommitted(WithIvh(ivh_on), 0xF16'15);
  MeasuredRun run = RunWorkload(ctx, app_name, threads, SecToNs(4), SecToNs(10));
  return run.result.throughput;
}

// Canneal with a fixed amount of work: execution time comparison (Table 4).
double CannealExecTime(int threads, bool activity_aware) {
  RunContext ctx = MakeOvercommitted(WithIvh(true, activity_aware), 0xF16'25);
  // Native-input canneal: long compute phases between synchronizations, so
  // running tasks actually face the stalled-running-task problem.
  BarrierAppParams p;
  p.name = "canneal";
  p.threads = threads;
  p.chunk_mean = MsToNs(20);
  p.chunk_cv = 0.3;
  p.comm_lines = 600;
  p.max_iterations = 100;
  BarrierApp app(&ctx.kernel(), p);
  app.Start();
  ctx.sim->RunFor(SecToNs(60));
  if (!app.finished()) {
    return NsToSec(ctx.sim->now());
  }
  return NsToSec(app.finish_time());
}

}  // namespace

int main() {
  PrintBanner("Figure 15", "Throughput improvement with ivh (overcommitted 16-vCPU VM)");
  const std::vector<std::string> apps = {"streamcluster", "canneal", "blackscholes",
                                         "dedup",         "radix",   "fft",
                                         "pbzip2"};
  const std::vector<int> thread_counts = {1, 2, 4, 8, 16};
  TablePrinter table({"App", "1 thr", "2 thr", "4 thr", "8 thr", "16 thr"});
  std::vector<double> all;
  for (const auto& app : apps) {
    std::vector<std::string> row = {app};
    for (int threads : thread_counts) {
      double off = RunOne(app, threads, false);
      double on = RunOne(app, threads, true);
      double improvement = off > 0 ? 100.0 * (on / off - 1.0) : 0;
      all.push_back(improvement);
      row.push_back(TablePrinter::Pct(improvement, 0));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(Improvement over ivh disabled. Paper: up to 82%%, largest with few\n"
              "threads and many unused vCPUs; 17%% average even at 16 threads.)\n");

  PrintBanner("Table 4", "Canneal execution time (s): activity-aware vs -unaware ivh");
  TablePrinter t4({"#Threads", "ivh (activity-unaware)", "ivh (activity-aware)"});
  for (int threads : {1, 2, 4, 8}) {
    double unaware = CannealExecTime(threads, false);
    double aware = CannealExecTime(threads, true);
    t4.AddRow({std::to_string(threads), TablePrinter::Fmt(unaware, 1),
               TablePrinter::Fmt(aware, 1)});
  }
  t4.Print();
  std::printf("\nPaper (Table 4): activity-aware migration is consistently faster because\n"
              "pre-waking the target avoids migration delays onto inactive vCPUs.\n");
  return 0;
}
