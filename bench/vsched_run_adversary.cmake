# ctest script: the adversary deception matrix is a deterministic artifact.
# Run with:
#   cmake -DVSCHED_RUN=<binary> -DWORK_DIR=<dir> -P vsched_run_adversary.cmake
#
# Three invariants (docs/ROBUSTNESS.md):
#   1. The --adversary sweep is byte-identical across --jobs 1 and --jobs 2:
#      every cell (attack x robust, single-VM and fleet) is a pure function
#      of its RunSpec.
#   2. The matrix actually measures something: attack rows carry the dx_*
#      deception metrics and nonzero adversary activations.
#   3. A robust=off attack row differs from its robust=on twin — the
#      hardening layer is not a no-op under attack (it IS a no-op on the
#      clean "none" rows, covered by tests/adversary/deception_test.cc).

set(common_args --adversary --warmup-ms 200 --measure-ms 500)

function(run_sweep out)
  execute_process(
      COMMAND ${VSCHED_RUN} ${ARGN} --out ${out}
      RESULT_VARIABLE rc
      OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "vsched_run ${ARGN} exited ${rc}")
  endif()
endfunction()

function(expect_identical a b what)
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
      RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} differs from ${b}")
  endif()
endfunction()

# --- 1. matrix replay across job counts ------------------------------------
run_sweep(${WORK_DIR}/adv_j1.jsonl ${common_args} --jobs 1)
run_sweep(${WORK_DIR}/adv_j2.jsonl ${common_args} --jobs 2)
expect_identical(${WORK_DIR}/adv_j1.jsonl ${WORK_DIR}/adv_j2.jsonl
                 "adversary matrix diverges across --jobs")

# --- 2. the rows measured an actual attack ---------------------------------
file(READ ${WORK_DIR}/adv_j1.jsonl adv_rows)
if(NOT adv_rows MATCHES "\"dx_cap_err_mean\":")
  message(FATAL_ERROR "adversary sweep emitted no deception metrics")
endif()
if(NOT adv_rows MATCHES "\"dx_adversary_activations\": *[1-9]")
  message(FATAL_ERROR "no adversary ever activated in the sweep")
endif()

# --- 3. hardening must change the picture under attack ---------------------
# The cycle-stealer's signature: with robust off, vact publishes exactly zero
# latency against real theft; with robust on, the sub-threshold plausibility
# check attributes it, so the same cell publishes a nonzero estimate.
run_sweep(${WORK_DIR}/adv_steal_off.jsonl
          ${common_args} --filter "adversary/steal/vsched/robust=off")
run_sweep(${WORK_DIR}/adv_steal_on.jsonl
          ${common_args} --filter "adversary/steal/vsched/robust=on")
file(READ ${WORK_DIR}/adv_steal_off.jsonl steal_off)
file(READ ${WORK_DIR}/adv_steal_on.jsonl steal_on)
if(NOT steal_off MATCHES "\"dx_act_latency_ns\": *0[,}]")
  message(FATAL_ERROR "robust=off cycle-steal row should leave vact blind")
endif()
if(steal_on MATCHES "\"dx_act_latency_ns\": *0[,}]")
  message(FATAL_ERROR "robust=on cycle-steal row still publishes zero vact "
                      "latency — the hardening layer did nothing")
endif()
