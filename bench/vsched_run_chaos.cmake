# ctest script: chaos sweeps are deterministic and resumable. Run with:
#   cmake -DVSCHED_RUN=<binary> -DWORK_DIR=<dir> -P vsched_run_chaos.cmake
#
# Three invariants (docs/ROBUSTNESS.md):
#   1. `--fault-plan none` is byte-identical to no flag at all — the fault
#      layer is provably inert when unused.
#   2. The same (seed, plan) chaos sweep is byte-identical across --jobs 1
#      and --jobs 2: injection is driven entirely by per-run seeded RNG.
#   3. `--resume` of a partial checkpoint completes only the missing cells
#      and reproduces the uninterrupted file byte for byte.

set(common_args --experiment fig02 --filter img-dnn --warmup-ms 50 --measure-ms 200)

function(run_sweep out rc_expected)
  execute_process(
      COMMAND ${VSCHED_RUN} ${ARGN} --out ${out}
      RESULT_VARIABLE rc
      OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL ${rc_expected})
    message(FATAL_ERROR "vsched_run ${ARGN} exited ${rc}, expected ${rc_expected}")
  endif()
endfunction()

function(expect_identical a b what)
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
      RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} differs from ${b}")
  endif()
endfunction()

# --- 1. plan "none" is the clean run, byte for byte ------------------------
run_sweep(${WORK_DIR}/chaos_clean.jsonl 0 ${common_args})
run_sweep(${WORK_DIR}/chaos_none.jsonl 0 ${common_args} --fault-plan none)
expect_identical(${WORK_DIR}/chaos_clean.jsonl ${WORK_DIR}/chaos_none.jsonl
                 "--fault-plan none is not inert")

# --- 2. chaos replay across job counts -------------------------------------
run_sweep(${WORK_DIR}/chaos_j1.jsonl 0 ${common_args}
          --fault-plan interference-burst --jobs 1)
run_sweep(${WORK_DIR}/chaos_j2.jsonl 0 ${common_args}
          --fault-plan interference-burst --jobs 2)
expect_identical(${WORK_DIR}/chaos_j1.jsonl ${WORK_DIR}/chaos_j2.jsonl
                 "chaos sweep diverges across --jobs")

# The plan must actually have injected faults, or this test proves nothing.
file(READ ${WORK_DIR}/chaos_j1.jsonl chaos_rows)
if(NOT chaos_rows MATCHES "\"fault_applied\":")
  message(FATAL_ERROR "interference-burst sweep recorded no fault metrics")
endif()

# --- 3. resume completes only the missing cells ----------------------------
# A partial checkpoint: just the img-dnn/lat=2ms cells of the same sweep.
run_sweep(${WORK_DIR}/chaos_partial.jsonl 0
          --experiment fig02 --filter lat=2ms --warmup-ms 50 --measure-ms 200
          --fault-plan interference-burst)
execute_process(
    COMMAND ${VSCHED_RUN} ${common_args} --fault-plan interference-burst
            --resume ${WORK_DIR}/chaos_partial.jsonl
            --out ${WORK_DIR}/chaos_resumed.jsonl
    RESULT_VARIABLE resume_rc
    OUTPUT_QUIET ERROR_QUIET)
if(NOT resume_rc EQUAL 0)
  message(FATAL_ERROR "--resume run failed (rc=${resume_rc})")
endif()
expect_identical(${WORK_DIR}/chaos_resumed.jsonl ${WORK_DIR}/chaos_j1.jsonl
                 "resumed sweep differs from the uninterrupted run")
