# ctest script: --tickless must not change a single output byte. Tick elision
# and dormant bandwidth refills only skip firings that are provable no-ops, so
# the JSONL rows of a sweep byte-compare across the two modes. Run with:
#   cmake -DVSCHED_RUN=<binary> -DWORK_DIR=<dir> -P vsched_run_tickless.cmake
#
# Two slices cover both execution paths: fig02 (flat VM, host-granularity
# shaping — exercises guest NOHZ on mostly-idle vCPUs) and fig18_rcvm
# (bandwidth-capped vCPU classes — exercises dormant host refill timers).

function(run_pair experiment filter tag)
  set(common_args --experiment ${experiment} --filter ${filter}
                  --warmup-ms 50 --measure-ms 200)

  execute_process(
      COMMAND ${VSCHED_RUN} ${common_args} --out ${WORK_DIR}/${tag}_ticking.jsonl
      RESULT_VARIABLE ticking_rc
      OUTPUT_QUIET ERROR_QUIET)
  if(NOT ticking_rc EQUAL 0)
    message(FATAL_ERROR "${tag}: ticking vsched_run failed (rc=${ticking_rc})")
  endif()

  execute_process(
      COMMAND ${VSCHED_RUN} ${common_args} --tickless
              --out ${WORK_DIR}/${tag}_tickless.jsonl
      RESULT_VARIABLE tickless_rc
      OUTPUT_QUIET ERROR_QUIET)
  if(NOT tickless_rc EQUAL 0)
    message(FATAL_ERROR "${tag}: tickless vsched_run failed (rc=${tickless_rc})")
  endif()

  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/${tag}_ticking.jsonl ${WORK_DIR}/${tag}_tickless.jsonl
      RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "${tag}: JSONL differs with --tickless")
  endif()
endfunction()

run_pair(fig02 img-dnn tl_fig02)
run_pair(fig18_rcvm canneal tl_fig18)
