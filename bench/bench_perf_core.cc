// bench_perf_core: the perf-regression harness for the simulator's hottest
// data structures (the DES event queue, the CFS/EEVDF runqueue, and the
// hierarchical timer wheel), the tickless idle path, plus one end-to-end
// Figure 18 cell as a whole-stack canary.
//
//   bench_perf_core [--out FILE] [--baseline FILE] [--max-regress F]
//                   [--jobs N] [--events N] [--rq-ops N] [--timer-fires N]
//                   [--idle-ms N] [--fleet-ms N] [--quick]
//
// Emits one JSON object (schema below) to --out (default stdout). With
// --baseline, re-reads a previously emitted JSON (e.g. the committed
// BENCH_core.json) and exits non-zero when events/sec or ops/sec regressed
// by more than --max-regress (default 0.25), or the fig18 cell slowed by
// more than the same factor. See docs/PERF.md.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/perf_counters.h"
#include "src/base/time.h"
#include "src/cluster/fleet.h"
#include "src/cluster/fleet_spec.h"
#include "src/cluster/sharded_fleet.h"
#include "src/guest/runqueue.h"
#include "src/guest/task.h"
#include "src/runner/result_sink.h"
#include "src/runner/run_context.h"
#include "src/runner/runner.h"
#include "src/runner/spec.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/timer_wheel.h"

using namespace vsched;

namespace {

struct BenchOptions {
  std::string out;
  std::string baseline;
  double max_regress = 0.25;
  int jobs = 1;
  uint64_t events = 4'000'000;
  uint64_t rq_ops = 2'000'000;
  uint64_t timer_fires = 2'000'000;
  uint64_t idle_ms = 4'000;
  uint64_t fleet_ms = 1'000;
};

int64_t WallNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Event churn: steady-state schedule/cancel/fire mix modeled on what a
// simulation does per dispatch — every fired event schedules a successor, and
// a quarter of firings cancel-and-replace a pending timer (preemption-timer
// re-arming is the simulator's dominant cancel source).
// ---------------------------------------------------------------------------

struct ChurnCtx {
  EventQueue* q = nullptr;
  Rng* rng = nullptr;
  std::vector<EventId>* timers = nullptr;
  uint64_t fired = 0;
  uint64_t refill_until = 0;
};

void ChurnFire(ChurnCtx* c) {
  ++c->fired;
  if (c->fired >= c->refill_until) {
    return;  // drain phase: stop replenishing
  }
  TimeNs delay = 1 + static_cast<TimeNs>(c->rng->NextU64() % 1000);
  c->q->ScheduleAfter(delay, [c] { ChurnFire(c); });
  if (c->rng->NextU64() % 4 == 0) {
    size_t slot = c->rng->NextU64() % c->timers->size();
    c->q->Cancel((*c->timers)[slot]);
    (*c->timers)[slot] = c->q->ScheduleAfter(delay + 7, [c] { ChurnFire(c); });
  }
}

struct ChurnResult {
  uint64_t events = 0;
  int64_t wall_ns = 0;
  double events_per_sec = 0;
};

ChurnResult RunEventChurn(uint64_t target_events) {
  EventQueue q;
  Rng rng(0xC0FEu);
  std::vector<EventId> timers;
  ChurnCtx ctx;
  ctx.q = &q;
  ctx.rng = &rng;
  ctx.timers = &timers;
  ctx.refill_until = target_events;
  const int kPending = 2048;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPending; ++i) {
    TimeNs delay = 1 + static_cast<TimeNs>(rng.NextU64() % 1000);
    if (i % 4 == 0) {
      timers.push_back(q.ScheduleAfter(delay, [&ctx] { ChurnFire(&ctx); }));
    } else {
      q.ScheduleAfter(delay, [&ctx] { ChurnFire(&ctx); });
    }
  }
  while (q.RunOne()) {
  }
  ChurnResult r;
  r.events = q.executed_count();
  r.wall_ns = WallNs(start);
  r.events_per_sec =
      r.wall_ns > 0 ? static_cast<double>(r.events) * 1e9 / static_cast<double>(r.wall_ns) : 0;
  return r;
}

// ---------------------------------------------------------------------------
// Runqueue churn: pick/dequeue/advance/re-enqueue cycles over a mixed-depth
// queue, the exact per-dispatch sequence the guest kernel performs. Depth 16
// matches the observed per-vCPU queue depths in the fig18/fig19 deployments.
// ---------------------------------------------------------------------------

struct NoopBehavior : TaskBehavior {
  TaskAction Next(TaskContext&, RunReason) override { return TaskAction::Exit(); }
};

struct RqChurnResult {
  uint64_t ops = 0;
  int64_t wall_ns = 0;
  double ops_per_sec = 0;
};

RqChurnResult RunRunqueueChurn(uint64_t target_ops, bool eevdf) {
  NoopBehavior behavior;
  Rng rng(0xBEEFu);
  std::vector<std::unique_ptr<Task>> tasks;
  const int kDepth = 16;
  for (int i = 0; i < kDepth; ++i) {
    TaskPolicy policy = i % 5 == 4 ? TaskPolicy::kIdle : TaskPolicy::kNormal;
    tasks.push_back(std::make_unique<Task>(i + 1, "t" + std::to_string(i), policy, &behavior,
                                           CpuMask::FirstN(1)));
    TaskAccess::SetVruntime(tasks.back().get(), rng.Uniform(0, 1e6));
    TaskAccess::SetVdeadline(tasks.back().get(), rng.Uniform(0, 1e6));
  }
  Runqueue rq;
  rq.SetEevdf(eevdf);
  for (auto& t : tasks) {
    rq.Enqueue(t.get());
  }
  auto start = std::chrono::steady_clock::now();
  uint64_t ops = 0;
  while (ops < target_ops) {
    Task* t = rq.Pick();
    rq.Dequeue(t);
    TaskAccess::SetVruntime(t, t->vruntime() + rng.Uniform(1e3, 1e5));
    TaskAccess::SetVdeadline(t, t->vdeadline() + rng.Uniform(1e3, 1e5));
    rq.RaiseMinVruntime(t->vruntime());
    rq.Enqueue(t);
    ++ops;
  }
  RqChurnResult r;
  r.ops = ops;
  r.wall_ns = WallNs(start);
  r.ops_per_sec =
      r.wall_ns > 0 ? static_cast<double>(ops) * 1e9 / static_cast<double>(r.wall_ns) : 0;
  return r;
}

// ---------------------------------------------------------------------------
// Timer churn: the periodic-timer pattern the tickless work moved off the
// main heap — 256 periodic timers with mixed periods, every firing re-arms
// itself, and every 16th firing cancel-and-re-arms a random victim. The same
// logical workload runs once on the hierarchical timer wheel and once on the
// heap-backed event queue, so the section is its own before/after ledger.
// ---------------------------------------------------------------------------

struct TimerChurnResult {
  uint64_t fires = 0;
  int64_t wall_ns = 0;  // timer wheel
  double ops_per_sec = 0;
  int64_t heap_wall_ns = 0;  // event-queue backend, same logical workload
  double heap_ops_per_sec = 0;
  double speedup = 0;
};

// Periods between ~51us and ~1.6ms, slightly detuned so buckets stay mixed.
TimeNs ChurnPeriod(int i) {
  return static_cast<TimeNs>((i % 32 + 1) * 51'200 + 1'024 * (i % 7));
}

TimerChurnResult RunTimerChurn(uint64_t target_fires) {
  const int kTimers = 256;
  TimerChurnResult r;

  {
    TimerWheel wheel;
    Rng rng(0x77EE1u);
    std::vector<TimerId> ids(kTimers);
    std::vector<TimeNs> deadline(kTimers, 0);
    uint64_t fires = 0;
    for (int i = 0; i < kTimers; ++i) {
      ids[i] = wheel.Register([&, i] {
        deadline[i] += ChurnPeriod(i);
        wheel.Arm(ids[i], deadline[i]);
        ++fires;
        if (fires % 16 == 0) {
          int victim = static_cast<int>(rng.NextU64() % kTimers);
          if (victim != i && wheel.Cancel(ids[victim])) {
            deadline[victim] = deadline[i] + 2 * ChurnPeriod(victim);
            wheel.Arm(ids[victim], deadline[victim]);
          }
        }
      });
    }
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kTimers; ++i) {
      deadline[i] = ChurnPeriod(i);
      wheel.Arm(ids[i], deadline[i]);
    }
    while (fires < target_fires) {
      TimeNs when = wheel.NextDeadlineAtMost(kTimeInfinity - 1);
      wheel.RunOne(when);
    }
    r.fires = fires;
    r.wall_ns = WallNs(start);
  }

  {
    EventQueue q;
    Rng rng(0x77EE1u);
    std::vector<EventId> eids(kTimers);
    std::vector<TimeNs> deadline(kTimers, 0);
    std::vector<std::function<void()>> fns(kTimers);
    uint64_t fires = 0;
    for (int i = 0; i < kTimers; ++i) {
      fns[i] = [&, i] {
        deadline[i] += ChurnPeriod(i);
        eids[i] = q.ScheduleAt(deadline[i], fns[i]);
        ++fires;
        if (fires % 16 == 0) {
          int victim = static_cast<int>(rng.NextU64() % kTimers);
          if (victim != i && q.Cancel(eids[victim])) {
            deadline[victim] = deadline[i] + 2 * ChurnPeriod(victim);
            eids[victim] = q.ScheduleAt(deadline[victim], fns[victim]);
          }
        }
      };
    }
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kTimers; ++i) {
      deadline[i] = ChurnPeriod(i);
      eids[i] = q.ScheduleAt(deadline[i], fns[i]);
    }
    while (fires < target_fires) {
      q.RunOne();
    }
    r.heap_wall_ns = WallNs(start);
  }

  r.ops_per_sec = r.wall_ns > 0
                      ? static_cast<double>(r.fires) * 1e9 / static_cast<double>(r.wall_ns)
                      : 0;
  r.heap_ops_per_sec =
      r.heap_wall_ns > 0
          ? static_cast<double>(r.fires) * 1e9 / static_cast<double>(r.heap_wall_ns)
          : 0;
  r.speedup = r.heap_ops_per_sec > 0 ? r.ops_per_sec / r.heap_ops_per_sec : 0;
  return r;
}

// ---------------------------------------------------------------------------
// Idle tick: a mostly-idle 32-vCPU VM (a 2-thread workload, 30 vCPUs idle) —
// the shape where NOHZ-style elision pays. The same deployment runs once with
// tickless on and once off; the ratio of simulated-time rates is the elision
// speedup and, like timer_churn, doubles as this section's pre-PR ledger.
// ---------------------------------------------------------------------------

struct IdleTickResult {
  double sim_ms = 0;
  int64_t wall_ns = 0;          // tickless
  int64_t wall_ns_ticking = 0;  // periodic ticks everywhere
  double sim_ms_per_sec = 0;
  double sim_ms_per_sec_ticking = 0;
  uint64_t ticks_avoided = 0;  // timer firings the tickless pass never ran
  double speedup = 0;
};

IdleTickResult RunIdleTick(TimeNs sim_time) {
  auto one_pass = [&](bool tickless, uint64_t* fires) -> int64_t {
    PerfCounters counters;
    PerfCounters::Scope scope(&counters);
    VmSpec vm_spec = MakeSimpleVmSpec("vm", 32);
    vm_spec.mutable_guest_params().tickless = tickless;
    HostSchedParams host;
    host.tickless = tickless;
    // Stock CFS: vSched's probers deliberately keep idle vCPUs warm, which is
    // the opposite of the idle shape this section measures.
    RunContext ctx =
        MakeRun(FlatHost(32), std::move(vm_spec), VSchedOptions::Cfs(), /*seed=*/0x1D1Eu, host);
    auto workload = MakeWorkload(&ctx.kernel(), "matmul", /*threads=*/2);
    workload->Start();
    ctx.sim->RunFor(MsToNs(100));  // settle: balancing moves the threads apart
    auto start = std::chrono::steady_clock::now();
    ctx.sim->RunFor(sim_time);
    int64_t wall = WallNs(start);
    workload->Stop();
    *fires = counters.timer_fires;
    return wall;
  };
  IdleTickResult r;
  r.sim_ms = static_cast<double>(sim_time) / 1e6;
  uint64_t fires_ticking = 0;
  uint64_t fires_tickless = 0;
  r.wall_ns_ticking = one_pass(/*tickless=*/false, &fires_ticking);
  r.wall_ns = one_pass(/*tickless=*/true, &fires_tickless);
  r.ticks_avoided = fires_ticking > fires_tickless ? fires_ticking - fires_tickless : 0;
  r.sim_ms_per_sec =
      r.wall_ns > 0 ? r.sim_ms * 1e9 / static_cast<double>(r.wall_ns) : 0;
  r.sim_ms_per_sec_ticking =
      r.wall_ns_ticking > 0 ? r.sim_ms * 1e9 / static_cast<double>(r.wall_ns_ticking) : 0;
  r.speedup = r.sim_ms_per_sec_ticking > 0 ? r.sim_ms_per_sec / r.sim_ms_per_sec_ticking : 0;
  return r;
}

// ---------------------------------------------------------------------------
// Fleet: the rack preset (64 hosts, 256 VMs x 4 vCPUs) under vSched guests —
// the cluster control plane plus a few hundred live guest stacks in one
// Simulation. This is the scaling story for src/cluster/: sim-ms/sec here
// bounds how big a fleet the dc preset can sweep in reasonable wall time.
// ---------------------------------------------------------------------------

struct FleetBenchResult {
  double sim_ms = 0;
  int64_t wall_ns = 0;
  double sim_ms_per_sec = 0;
  uint64_t requests = 0;
  uint64_t migrations = 0;
  int vms_placed = 0;
};

FleetBenchResult RunFleetSmall(TimeNs sim_time) {
  FleetSpec spec;
  bool ok = LookupFleetSpec("rack", &spec);
  if (!ok) {
    std::fprintf(stderr, "bench_perf_core: rack fleet preset missing\n");
    std::exit(1);
  }
  Simulation sim(/*seed=*/0xF1EE7u);
  Fleet fleet(&sim, spec, VSchedOptions::Full());
  auto start = std::chrono::steady_clock::now();
  fleet.Start();
  sim.RunFor(sim_time);
  fleet.Finish();
  FleetBenchResult r;
  r.wall_ns = WallNs(start);
  r.sim_ms = static_cast<double>(sim_time) / 1e6;
  r.sim_ms_per_sec = r.wall_ns > 0 ? r.sim_ms * 1e9 / static_cast<double>(r.wall_ns) : 0;
  r.requests = fleet.totals().requests;
  r.migrations = fleet.totals().migrations;
  r.vms_placed = fleet.totals().vms_placed;
  // A fleet bench that stops exercising live migration is measuring a
  // different (cheaper) workload while still reporting under the same name:
  // the number silently drifts optimistic and the baseline gate compares
  // apples to oranges. That happened once — a consolidation dest-picker bug
  // zeroed migrations for months — so fail loudly, not quietly.
  if (r.migrations == 0) {
    std::fprintf(stderr,
                 "bench_perf_core: fleet_small completed with zero migrations; the "
                 "consolidation path is no longer exercised and sim-ms/sec is not "
                 "comparable with the baseline\n");
    std::exit(1);
  }
  return r;
}

// Same rack-scale fleet on the sharded PDES engine (vsched_run --shards).
// Reported per shard count: on a multi-core box the spread shows parallel
// scaling; on a single-core box it isolates the engine's serial overhead
// (barrier loop + mailbox) and the cache benefit of per-cell event queues.
FleetBenchResult RunFleetSmallSharded(TimeNs sim_time, int shards) {
  FleetSpec spec;
  bool ok = LookupFleetSpec("rack", &spec);
  if (!ok) {
    std::fprintf(stderr, "bench_perf_core: rack fleet preset missing\n");
    std::exit(1);
  }
  auto start = std::chrono::steady_clock::now();
  ShardedFleet fleet(spec, /*seed=*/0xF1EE7u, VSchedOptions::Full(), shards);
  fleet.Run(sim_time);
  FleetBenchResult r;
  r.wall_ns = WallNs(start);
  r.sim_ms = static_cast<double>(sim_time) / 1e6;
  r.sim_ms_per_sec = r.wall_ns > 0 ? r.sim_ms * 1e9 / static_cast<double>(r.wall_ns) : 0;
  r.requests = fleet.totals().requests;
  r.migrations = fleet.totals().migrations;
  r.vms_placed = fleet.totals().vms_placed;
  if (r.migrations == 0) {
    std::fprintf(stderr,
                 "bench_perf_core: fleet_small_sharded completed with zero migrations; "
                 "the sharded consolidation path is no longer exercised\n");
    std::exit(1);
  }
  return r;
}

// ---------------------------------------------------------------------------
// End-to-end canary: a small fig18 cell through the real runner, so the
// harness notices regressions the microbenches can't see (kernel, workloads,
// metrics plumbing).
// ---------------------------------------------------------------------------

struct CellResult {
  int runs = 0;
  int64_t wall_ns = 0;
  double wall_ms = 0;
};

CellResult RunFig18Cell(int jobs) {
  ExperimentSpec sweep = OverallSweep(ExperimentFamily::kOverallRcvm);
  sweep.Filter("canneal");
  for (RunSpec& run : sweep.runs) {
    run.warmup = MsToNs(500);
    run.measure = SecToNs(10);
  }
  RunnerOptions options;
  options.jobs = jobs;
  auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = Runner(options).Run(sweep);
  CellResult r;
  r.wall_ns = WallNs(start);
  r.wall_ms = static_cast<double>(r.wall_ns) / 1e6;
  for (const RunResult& result : results) {
    if (!result.ok) {
      std::fprintf(stderr, "bench_perf_core: run %s failed: %s\n", result.spec.Id().c_str(),
                   result.error.c_str());
      std::exit(1);
    }
    ++r.runs;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Baseline comparison: finds `"key":<number>` after `"section"` in a JSON
// blob previously emitted by this binary. Deliberately tiny — the schema is
// ours and flat; a regression gate does not need a JSON library.
// ---------------------------------------------------------------------------

bool FindJsonNumber(const std::string& text, const std::string& section, const std::string& key,
                    double* out) {
  size_t at = text.find("\"" + section + "\"");
  if (at == std::string::npos) {
    return false;
  }
  at = text.find("\"" + key + "\":", at);
  if (at == std::string::npos) {
    return false;
  }
  at += key.size() + 3;
  *out = std::strtod(text.c_str() + at, nullptr);
  return true;
}

// Returns 0 when every rate stayed within the allowed regression, 1 otherwise.
int CompareBaseline(const std::string& path, double max_regress, const ChurnResult& churn,
                    const RqChurnResult& rq, const TimerChurnResult& timer,
                    const IdleTickResult& idle, const FleetBenchResult& fleet,
                    const FleetBenchResult& sharded, const CellResult& cell) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_perf_core: cannot open baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  int failures = 0;
  auto check_rate = [&](const char* section, const char* key, double current) {
    double base = 0;
    if (!FindJsonNumber(text, section, key, &base) || base <= 0) {
      std::fprintf(stderr, "  %s.%s: no baseline value, skipping\n", section, key);
      return;
    }
    double ratio = current / base;
    bool ok = ratio >= 1.0 - max_regress;
    std::fprintf(stderr, "  %s.%s: %.3g vs baseline %.3g (%.2fx) %s\n", section, key, current,
                 base, ratio, ok ? "ok" : "REGRESSED");
    if (!ok) {
      ++failures;
    }
  };
  std::fprintf(stderr, "baseline comparison vs %s (max regression %.0f%%):\n", path.c_str(),
               max_regress * 100);
  check_rate("event_churn", "events_per_sec", churn.events_per_sec);
  check_rate("runqueue_churn", "ops_per_sec", rq.ops_per_sec);
  check_rate("timer_churn", "ops_per_sec", timer.ops_per_sec);
  check_rate("idle_tick", "sim_ms_per_sec", idle.sim_ms_per_sec);
  check_rate("fleet_small", "sim_ms_per_sec", fleet.sim_ms_per_sec);
  check_rate("fleet_small_sharded", "sim_ms_per_sec", sharded.sim_ms_per_sec);
  // For wall clock, lower is better: compare inverted.
  check_rate("fig18_cell", "cells_per_sec",
             cell.wall_ns > 0 ? 1e9 / static_cast<double>(cell.wall_ns) : 0);
  return failures == 0 ? 0 : 1;
}

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: bench_perf_core [options]\n"
               "  --out FILE        write the JSON result to FILE (default stdout)\n"
               "  --baseline FILE   compare against FILE; exit 1 on regression\n"
               "  --max-regress F   allowed fractional regression (default 0.25)\n"
               "  --jobs N          worker threads for the fig18 cell (default 1)\n"
               "  --events N        event-churn event count (default 4000000)\n"
               "  --rq-ops N        runqueue-churn op count (default 2000000)\n"
               "  --timer-fires N   timer-churn firing count (default 2000000)\n"
               "  --idle-ms N       idle-tick simulated milliseconds (default 4000)\n"
               "  --fleet-ms N      fleet_small simulated milliseconds (default 1000)\n"
               "  --quick           1/4 size run for smoke testing\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_perf_core: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--baseline") {
      opt.baseline = value();
    } else if (arg == "--max-regress") {
      opt.max_regress = std::strtod(value(), nullptr);
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(value());
    } else if (arg == "--events") {
      opt.events = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--rq-ops") {
      opt.rq_ops = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--timer-fires") {
      opt.timer_fires = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--idle-ms") {
      opt.idle_ms = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--fleet-ms") {
      opt.fleet_ms = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--quick") {
      opt.events /= 4;
      opt.rq_ops /= 4;
      opt.timer_fires /= 4;
      opt.idle_ms /= 4;
      opt.fleet_ms /= 4;
    } else {
      std::fprintf(stderr, "bench_perf_core: unknown flag %s\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }

  std::fprintf(stderr, "event churn: %llu events...\n",
               static_cast<unsigned long long>(opt.events));
  ChurnResult churn = RunEventChurn(opt.events);
  std::fprintf(stderr, "  %.3g events/sec\n", churn.events_per_sec);

  std::fprintf(stderr, "runqueue churn (cfs): %llu ops...\n",
               static_cast<unsigned long long>(opt.rq_ops));
  RqChurnResult rq_cfs = RunRunqueueChurn(opt.rq_ops, /*eevdf=*/false);
  std::fprintf(stderr, "  %.3g ops/sec\n", rq_cfs.ops_per_sec);

  std::fprintf(stderr, "runqueue churn (eevdf): %llu ops...\n",
               static_cast<unsigned long long>(opt.rq_ops / 4));
  RqChurnResult rq_eevdf = RunRunqueueChurn(opt.rq_ops / 4, /*eevdf=*/true);
  std::fprintf(stderr, "  %.3g ops/sec\n", rq_eevdf.ops_per_sec);

  std::fprintf(stderr, "timer churn: %llu fires (wheel, then heap oracle)...\n",
               static_cast<unsigned long long>(opt.timer_fires));
  TimerChurnResult timer = RunTimerChurn(opt.timer_fires);
  std::fprintf(stderr, "  %.3g fires/sec wheel, %.3g heap (%.2fx)\n", timer.ops_per_sec,
               timer.heap_ops_per_sec, timer.speedup);

  std::fprintf(stderr, "idle tick: %llu sim-ms, 32 vCPUs mostly idle...\n",
               static_cast<unsigned long long>(opt.idle_ms));
  IdleTickResult idle = RunIdleTick(MsToNs(static_cast<TimeNs>(opt.idle_ms)));
  std::fprintf(stderr, "  %.3g sim-ms/sec tickless, %.3g ticking (%.2fx, %llu ticks avoided)\n",
               idle.sim_ms_per_sec, idle.sim_ms_per_sec_ticking, idle.speedup,
               static_cast<unsigned long long>(idle.ticks_avoided));

  std::fprintf(stderr, "fleet_small: rack preset (64 hosts, 256 VMs), %llu sim-ms...\n",
               static_cast<unsigned long long>(opt.fleet_ms));
  FleetBenchResult fleet = RunFleetSmall(MsToNs(static_cast<TimeNs>(opt.fleet_ms)));
  std::fprintf(stderr, "  %.3g sim-ms/sec (%llu requests, %llu migrations, %d VMs placed)\n",
               fleet.sim_ms_per_sec, static_cast<unsigned long long>(fleet.requests),
               static_cast<unsigned long long>(fleet.migrations), fleet.vms_placed);

  std::fprintf(stderr, "fleet_small_sharded: same rack preset on the PDES engine...\n");
  FleetBenchResult shard1 = RunFleetSmallSharded(MsToNs(static_cast<TimeNs>(opt.fleet_ms)), 1);
  FleetBenchResult shard2 = RunFleetSmallSharded(MsToNs(static_cast<TimeNs>(opt.fleet_ms)), 2);
  FleetBenchResult shard4 = RunFleetSmallSharded(MsToNs(static_cast<TimeNs>(opt.fleet_ms)), 4);
  std::fprintf(stderr,
               "  %.3g sim-ms/sec @1 shard, %.3g @2, %.3g @4 (%llu requests, "
               "%llu migrations)\n",
               shard1.sim_ms_per_sec, shard2.sim_ms_per_sec, shard4.sim_ms_per_sec,
               static_cast<unsigned long long>(shard4.requests),
               static_cast<unsigned long long>(shard4.migrations));

  std::fprintf(stderr, "fig18 cell (canneal x 3 configs, jobs=%d)...\n", opt.jobs);
  CellResult cell = RunFig18Cell(opt.jobs);
  std::fprintf(stderr, "  %d runs in %.1f ms\n", cell.runs, cell.wall_ms);

  std::ostringstream json;
  json << "{\n";
  json << "  \"schema\": 1,\n";
  json << "  \"event_churn\": {\"events\": " << churn.events << ", \"wall_ns\": " << churn.wall_ns
       << ", \"events_per_sec\": " << JsonNumber(churn.events_per_sec) << "},\n";
  json << "  \"runqueue_churn\": {\"ops\": " << rq_cfs.ops << ", \"wall_ns\": " << rq_cfs.wall_ns
       << ", \"ops_per_sec\": " << JsonNumber(rq_cfs.ops_per_sec) << "},\n";
  json << "  \"runqueue_churn_eevdf\": {\"ops\": " << rq_eevdf.ops
       << ", \"wall_ns\": " << rq_eevdf.wall_ns
       << ", \"ops_per_sec\": " << JsonNumber(rq_eevdf.ops_per_sec) << "},\n";
  json << "  \"timer_churn\": {\"fires\": " << timer.fires << ", \"wall_ns\": " << timer.wall_ns
       << ", \"ops_per_sec\": " << JsonNumber(timer.ops_per_sec)
       << ", \"heap_wall_ns\": " << timer.heap_wall_ns
       << ", \"heap_ops_per_sec\": " << JsonNumber(timer.heap_ops_per_sec)
       << ", \"speedup\": " << JsonNumber(timer.speedup) << "},\n";
  json << "  \"idle_tick\": {\"sim_ms\": " << JsonNumber(idle.sim_ms)
       << ", \"wall_ns\": " << idle.wall_ns
       << ", \"sim_ms_per_sec\": " << JsonNumber(idle.sim_ms_per_sec)
       << ", \"wall_ns_ticking\": " << idle.wall_ns_ticking
       << ", \"sim_ms_per_sec_ticking\": " << JsonNumber(idle.sim_ms_per_sec_ticking)
       << ", \"ticks_avoided\": " << idle.ticks_avoided
       << ", \"speedup\": " << JsonNumber(idle.speedup) << "},\n";
  json << "  \"fleet_small\": {\"sim_ms\": " << JsonNumber(fleet.sim_ms)
       << ", \"wall_ns\": " << fleet.wall_ns
       << ", \"sim_ms_per_sec\": " << JsonNumber(fleet.sim_ms_per_sec)
       << ", \"requests\": " << fleet.requests << ", \"migrations\": " << fleet.migrations
       << ", \"vms_placed\": " << fleet.vms_placed << "},\n";
  json << "  \"fleet_small_sharded\": {\"sim_ms\": " << JsonNumber(shard4.sim_ms)
       << ", \"shards\": 4, \"wall_ns\": " << shard4.wall_ns
       << ", \"sim_ms_per_sec\": " << JsonNumber(shard4.sim_ms_per_sec)
       << ", \"requests\": " << shard4.requests << ", \"migrations\": " << shard4.migrations
       << ", \"vms_placed\": " << shard4.vms_placed << "},\n";
  json << "  \"fleet_shard_scaling\": {\"sim_ms_per_sec_s1\": " << JsonNumber(shard1.sim_ms_per_sec)
       << ", \"sim_ms_per_sec_s2\": " << JsonNumber(shard2.sim_ms_per_sec)
       << ", \"sim_ms_per_sec_s4\": " << JsonNumber(shard4.sim_ms_per_sec) << "},\n";
  json << "  \"fig18_cell\": {\"runs\": " << cell.runs << ", \"jobs\": " << opt.jobs
       << ", \"wall_ns\": " << cell.wall_ns << ", \"wall_ms\": " << JsonNumber(cell.wall_ms)
       << ", \"cells_per_sec\": "
       << JsonNumber(cell.wall_ns > 0 ? 1e9 / static_cast<double>(cell.wall_ns) : 0)
       << "}\n";
  json << "}\n";

  if (opt.out.empty()) {
    std::fputs(json.str().c_str(), stdout);
  } else {
    std::ofstream out(opt.out, std::ios::out | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_perf_core: cannot open %s\n", opt.out.c_str());
      return 1;
    }
    out << json.str();
  }

  if (!opt.baseline.empty()) {
    return CompareBaseline(opt.baseline, opt.max_regress, churn, rq_cfs, timer, idle, fleet,
                           shard4, cell);
  }
  return 0;
}
