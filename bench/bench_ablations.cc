// Ablations of vSched design choices beyond the paper's own tables:
//  (1) vcap EMA smoothing — raw samples cause migration churn;
//  (2) rwc straggler-threshold sweep — where hiding a weak vCPU pays off;
//  (3) scheduler portability — vSched's gains under CFS-pick vs EEVDF-pick;
//  (4) tunable auto-configuration (§6) — derived vs Table-1 defaults.
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/core/autotune.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

// --------------------------------------------------------------------------
// (1) EMA ablation: a fluctuating-capacity vCPU; count capacity-driven
// migrations with EMA smoothing vs raw last-sample capacities.
// --------------------------------------------------------------------------

void RunEmaAblation() {
  std::printf("\n(1) vcap EMA smoothing vs raw samples (fluctuating capacity):\n");
  TablePrinter table({"capacity signal", "migrations (20 s)", "throughput (events/s)"});
  for (bool use_ema : {true, false}) {
    VSchedOptions o = VSchedOptions::EnhancedCfs();
    o.use_vtop = false;
    o.use_rwc = false;
    if (!use_ema) {
      // Half-life of a tiny fraction of a period ≈ no smoothing.
      o.vcap.ema_half_life_periods = 0.05;
    }
    RunContext ctx = MakeRun(FlatHost(8), MakeSimpleVmSpec("vm", 8), o, 0xAB'1);
    // Capacity fluctuation: duty-cycled competitors with multi-second phases.
    for (int c = 0; c < 4; ++c) {
      ctx.stressors.push_back(std::make_unique<Stressor>(ctx.sim.get(), "flux"));
      ctx.stressors.back()->StartDutyCycle(ctx.machine.get(), c, MsToNs(700), MsToNs(900));
    }
    TaskParallelParams p;
    p.name = "sysbench";
    p.threads = 4;
    p.chunk_mean = UsToNs(100);
    TaskParallelApp app(&ctx.kernel(), p);
    app.Start();
    ctx.sim->RunFor(SecToNs(6));
    app.ResetStats();
    uint64_t migr_before = ctx.kernel().counters().migrations.value() +
                           ctx.kernel().counters().active_migrations.value();
    ctx.sim->RunFor(SecToNs(20));
    uint64_t migr = ctx.kernel().counters().migrations.value() +
                    ctx.kernel().counters().active_migrations.value() - migr_before;
    table.AddRow({use_ema ? "EMA (50% per 2 periods)" : "raw last sample",
                  std::to_string(migr), TablePrinter::Fmt(app.Result().throughput, 0)});
    app.Stop();
  }
  table.Print();
  std::printf("(EMA's value here is steadier placement: slightly higher throughput under\n"
              "fluctuating capacity. Fig 10(a) shows the smoothing-vs-lag trade-off.)\n");
}

// --------------------------------------------------------------------------
// (2) rwc straggler-ratio sweep on a barrier workload.
// --------------------------------------------------------------------------

void RunRwcSweep() {
  std::printf("\n(2) rwc straggler-threshold sweep (canneal on rcvm-like host):\n");
  TablePrinter table({"straggler_ratio", "banned vCPUs", "throughput (iter/s)"});
  for (double ratio : {0.0, 0.05, 0.1, 0.25, 0.5}) {
    VSchedOptions o = VSchedOptions::EnhancedCfs();
    o.rwc.straggler_ratio = ratio;
    RunContext ctx = MakeRun(RcvmHostTopology(), MakeRcvmSpec(), o, 0xAB'2);
    ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
    MeasuredRun run = RunWorkload(ctx, "canneal", 12, SecToNs(6), SecToNs(8));
    table.AddRow({TablePrinter::Fmt(ratio, 2),
                  std::to_string(ctx.kernel().straggler_banned().Count()),
                  TablePrinter::Fmt(run.result.throughput, 0)});
  }
  table.Print();
  std::printf("(0 → never ban: stragglers gate every barrier. Moderate thresholds ban the\n"
              "2.5%% vCPUs; aggressive ones also ban useful low-capacity vCPUs.)\n");
}

// --------------------------------------------------------------------------
// (3) CFS-pick vs EEVDF-pick under the full vSched stack.
// --------------------------------------------------------------------------

void RunEevdfComparison() {
  std::printf("\n(3) vSched gains under CFS vs EEVDF pick policies (rcvm, streamcluster):\n");
  TablePrinter table({"pick policy", "CFS-sched (iter/s)", "vSched (iter/s)", "gain"});
  for (bool eevdf : {false, true}) {
    double base = 0;
    double full = 0;
    for (bool vsched_on : {false, true}) {
      VmSpec spec = MakeRcvmSpec();
      spec.mutable_guest_params().use_eevdf = eevdf;
      RunContext ctx = MakeRun(RcvmHostTopology(), std::move(spec),
                               vsched_on ? VSchedOptions::Full() : VSchedOptions::Cfs(), 0xAB'3);
      ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
      MeasuredRun run = RunWorkload(ctx, "streamcluster", 12, SecToNs(6), SecToNs(8));
      (vsched_on ? full : base) = run.result.throughput;
    }
    table.AddRow({eevdf ? "EEVDF" : "CFS", TablePrinter::Fmt(base, 0),
                  TablePrinter::Fmt(full, 0),
                  TablePrinter::Pct(100.0 * (full / base - 1.0), 0)});
  }
  table.Print();
  std::printf("(vSched attaches to placement/migration hooks, not the pick policy: its\n"
              "gains carry over to EEVDF — the paper's §4 portability claim.)\n");
}

// --------------------------------------------------------------------------
// (4) Auto-tuned tunables vs Table-1 defaults on a slow-slice host.
// --------------------------------------------------------------------------

void RunAutotune() {
  std::printf("\n(4) auto-configured tunables (§6) on a host with 30 ms inactive periods:\n");
  TablePrinter table({"tunables", "vcap window (ms)", "probed capacity error"});
  for (bool tuned : {false, true}) {
    Simulation sim(0xAB'4);
    HostMachine machine(&sim, *[] {
      static TopologySpec t;
      t.sockets = 1;
      t.cores_per_socket = 4;
      t.threads_per_core = 1;
      return &t;
    }());
    VmSpec spec = MakeSimpleVmSpec("vm", 4);
    for (auto& p : spec.vcpus) {
      p.bw_quota = MsToNs(30);
      p.bw_period = MsToNs(60);  // 50% capacity, 30 ms inactive periods
    }
    Vm vm(&sim, &machine, spec);
    TaskParallelParams bp;
    bp.threads = 4;
    bp.chunk_mean = MsToNs(1);
    TaskParallelApp load(&vm.kernel(), bp);
    load.Start();

    VSchedOptions options = VSchedOptions::Full();
    if (tuned) {
      AutoTuner tuner(&vm.kernel());
      bool done = false;
      tuner.Calibrate(SecToNs(3), options, [&](VSchedOptions o) {
        options = o;
        done = true;
      });
      sim.RunFor(SecToNs(4));
      if (!done) {
        continue;
      }
    }
    VSched vsched(&vm.kernel(), options);
    vsched.Start();
    sim.RunFor(SecToNs(10));
    double err = 0;
    for (int i = 0; i < 4; ++i) {
      err += std::abs(vsched.vcap()->CapacityOf(i) - 512.0) / 512.0;
    }
    table.AddRow({tuned ? "auto-tuned" : "Table-1 defaults",
                  TablePrinter::Fmt(NsToMs(options.vcap.sampling_period), 0),
                  TablePrinter::Pct(100.0 * err / 4, 1)});
    load.Stop();
  }
  table.Print();
  std::printf("(The auto-tuner sizes the window to ~2x the measured inactive period so\n"
              "every vCPU executes at least once per window, §6.)\n");
}

}  // namespace

int main() {
  PrintBanner("Ablations", "design-choice ablations beyond the paper's tables");
  RunEmaAblation();
  RunRwcSweep();
  RunEevdfComparison();
  RunAutotune();
  return 0;
}
