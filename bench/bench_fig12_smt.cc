// Figure 12: effective SMT-aware scheduling with vtop.
//
// A 32-vCPU VM pinned to 16 SMT sibling pairs.
// (a) Underloaded: Sysbench with 16 CPU-bound threads. Without SMT topology
//     CFS stacks threads onto sibling hardware threads while whole cores
//     idle; with vtop the idle-core-first wake path uses 15–16 cores.
// (b) Mixed workloads: CPU-intensive Matmul with memory/I/O-bound Nginx or
//     Fio; accurate SMT topology resolves sibling resource conflicts.
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/micro.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

VSchedOptions VtopOnly() {
  VSchedOptions o = VSchedOptions::EnhancedCfs();
  o.use_vcap = false;
  o.use_rwc = false;
  return o;
}

RunContext MakeSmtVm(bool with_vtop, uint64_t seed) {
  VmSpec spec = MakeSimpleVmSpec("vm", 32);  // tids 0..31 = 16 SMT pairs
  return MakeRun(FlatHost(16, /*threads_per_core=*/2), std::move(spec),
                 with_vtop ? VtopOnly() : VSchedOptions::Cfs(), seed);
}

Histogram RunUnderloaded(bool with_vtop) {
  RunContext ctx = MakeSmtVm(with_vtop, 0xF16'12);
  TaskParallelParams p;
  p.name = "sysbench";
  p.threads = 16;
  p.chunk_mean = UsToNs(100);
  p.chunk_cv = 0.02;
  TaskParallelApp app(&ctx.kernel(), p);
  app.Start();
  ctx.sim->RunFor(SecToNs(5));  // Warm-up; vtop needs one full probe.
  Histogram hist(8.5, 16.5, 8);  // buckets 9..16
  for (int s = 0; s < 1500; ++s) {
    ctx.sim->RunFor(MsToNs(10));
    int active_cores = 0;
    for (int core = 0; core < 16; ++core) {
      bool busy = ctx.kernel().vcpu(2 * core).current() != nullptr ||
                  ctx.kernel().vcpu(2 * core + 1).current() != nullptr;
      // Exclude pure prober activity for a fair count.
      if (busy) {
        ++active_cores;
      }
    }
    hist.Add(active_cores);
  }
  app.Stop();
  return hist;
}

struct MixedResult {
  double matmul;
  double other;
};

MixedResult RunMixed(bool with_vtop, const std::string& other) {
  RunContext ctx = MakeSmtVm(with_vtop, 0xF16'22);
  auto matmul = MakeWorkload(&ctx.kernel(), "matmul", 16);
  auto partner = MakeWorkload(&ctx.kernel(), other, 16);
  matmul->Start();
  partner->Start();
  ctx.sim->RunFor(SecToNs(5));
  matmul->ResetStats();
  partner->ResetStats();
  ctx.sim->RunFor(SecToNs(15));
  MixedResult r;
  r.matmul = matmul->Result().throughput;
  r.other = Performance(other, partner->Result());
  matmul->Stop();
  partner->Stop();
  return r;
}

}  // namespace

int main() {
  PrintBanner("Figure 12", "SMT-aware scheduling with vtop (32 vCPUs on 16 SMT pairs)");

  std::printf("\n(a) Active-core distribution, Sysbench x16 threads (%% of samples):\n");
  Histogram cfs = RunUnderloaded(false);
  Histogram vtop = RunUnderloaded(true);
  TablePrinter t1({"Cores", "CFS", "CFS + VTOP"});
  double cfs_mean = 0;
  double vtop_mean = 0;
  for (size_t b = 0; b < cfs.bucket_count(); ++b) {
    int cores = 9 + static_cast<int>(b);
    t1.AddRow({std::to_string(cores), TablePrinter::Pct(100 * cfs.Fraction(b)),
               TablePrinter::Pct(100 * vtop.Fraction(b))});
    cfs_mean += cores * cfs.Fraction(b);
    vtop_mean += cores * vtop.Fraction(b);
  }
  t1.Print();
  std::printf("Mean active cores: CFS %.1f vs CFS+VTOP %.1f (paper: 11-12 vs 15-16)\n",
              cfs_mean, vtop_mean);

  std::printf("\n(b) Mixed workloads (normalized throughput, CFS = 100%%):\n");
  TablePrinter t2({"Mix", "Matmul (CFS)", "Matmul (+VTOP)", "Partner (CFS)", "Partner (+VTOP)"});
  for (const std::string& other : {std::string("nginx"), std::string("fio")}) {
    MixedResult base = RunMixed(false, other);
    MixedResult opt = RunMixed(true, other);
    t2.AddRow({"matmul + " + other, TablePrinter::Pct(100.0),
               TablePrinter::Pct(100.0 * opt.matmul / base.matmul), TablePrinter::Pct(100.0),
               TablePrinter::Pct(100.0 * opt.other / base.other)});
  }
  t2.Print();
  std::printf("\nPaper: up to +18%% Matmul, +5%% Nginx, no Fio degradation.\n");
  return 0;
}
