// Figure 4: non-work-conserving policies beat strict work conservation when
// problematic idle vCPUs exist.
//
// Left: one vCPU of a 16-vCPU VM is starved by a host RT task (straggler);
// excluding it from placement improves synchronization-heavy throughput.
// Right: vCPUs stacked in pairs on 8 cores; excluding one vCPU per pair
// avoids double-scheduling costs, and with a low-priority best-effort
// workload present, avoids priority inversion entirely.
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

const std::vector<std::string> kApps = {"canneal", "dedup", "streamcluster"};

double RunStraggler(const std::string& app, bool work_conserving, double straggler_share) {
  VmSpec spec = MakeSimpleVmSpec("vm", 16);
  RunContext ctx = MakeRun(FlatHost(16), std::move(spec), VSchedOptions::Cfs(), 0xF16'04);
  // A host-side high-priority task starves vCPU 15's hardware thread.
  ctx.stressors.push_back(std::make_unique<Stressor>(ctx.sim.get(), "rt", 1024.0, /*rt=*/true));
  TimeNs on = static_cast<TimeNs>((1.0 - straggler_share) * MsToNs(20));
  ctx.stressors.back()->StartDutyCycle(ctx.machine.get(), 15, on, MsToNs(20) - on);
  if (!work_conserving) {
    ctx.kernel().SetBans(CpuMask::Single(15), CpuMask::None());
  }
  MeasuredRun run = RunWorkload(ctx, app, /*threads=*/16, SecToNs(2), SecToNs(8));
  return run.result.throughput;
}

double RunStacking(const std::string& app, bool work_conserving, bool with_best_effort) {
  VmSpec spec = MakeSimpleVmSpec("vm", 16);
  for (int i = 0; i < 16; ++i) {
    spec.vcpus[i].tid = i / 2;  // Stacked in pairs on 8 hardware threads.
  }
  RunContext ctx = MakeRun(FlatHost(8), std::move(spec), VSchedOptions::Cfs(), 0xF16'14);
  // Even vCPUs are the "kept" ones; odd vCPUs are their stack partners.
  CpuMask odd;
  for (int i = 1; i < 16; i += 2) {
    odd.Set(i);
  }
  std::unique_ptr<TaskParallelApp> background;
  int threads = 16;
  if (with_best_effort) {
    // Low-priority workload pinned to one vCPU of each stacking group.
    TaskParallelParams bp;
    bp.name = "best-effort";
    bp.threads = 8;
    bp.chunk_mean = MsToNs(2);
    bp.policy = TaskPolicy::kIdle;
    bp.allowed = odd;
    background = std::make_unique<TaskParallelApp>(&ctx.kernel(), bp);
    background->Start();
    threads = 8;
    if (!work_conserving) {
      // Exclude the vCPUs NOT running the low-priority workload: the
      // benchmark shares vCPUs with it, where guest priorities apply —
      // instead of landing on their stack partners where the host would
      // schedule the low-priority work against it (priority inversion).
      ctx.kernel().SetBans(CpuMask::None(), ~odd & CpuMask::FirstN(16));
    }
  } else if (!work_conserving) {
    ctx.kernel().SetBans(CpuMask::None(), odd);
  }
  MeasuredRun run = RunWorkload(ctx, app, threads, SecToNs(2), SecToNs(8));
  if (background != nullptr) {
    background->Stop();
  }
  return run.result.throughput;
}

}  // namespace

int main() {
  PrintBanner("Figure 4", "Work-conserving vs non-work-conserving placement");

  std::printf("\nStraggler vCPU (throughput normalized to non-work-conserving):\n");
  TablePrinter t1({"App", "work-conserving", "non-work-conserving"});
  for (const auto& app : kApps) {
    double wc = RunStraggler(app, true, 0.35);
    double nwc = RunStraggler(app, false, 0.35);
    t1.AddRow({app, TablePrinter::Pct(100 * wc / nwc), TablePrinter::Pct(100.0)});
  }
  t1.Print();

  std::printf("\nStacking vCPUs, no best-effort (normalized to non-work-conserving):\n");
  TablePrinter t2({"App", "work-conserving", "non-work-conserving"});
  for (const auto& app : kApps) {
    double wc = RunStacking(app, true, false);
    double nwc = RunStacking(app, false, false);
    t2.AddRow({app, TablePrinter::Pct(100 * wc / nwc), TablePrinter::Pct(100.0)});
  }
  t2.Print();

  std::printf("\nStacking vCPUs with low-priority best-effort (priority inversion):\n");
  TablePrinter t3({"App", "work-conserving", "non-work-conserving"});
  for (const auto& app : kApps) {
    double wc = RunStacking(app, true, true);
    double nwc = RunStacking(app, false, true);
    t3.AddRow({app, TablePrinter::Pct(100 * wc / nwc), TablePrinter::Pct(100.0)});
  }
  t3.Print();

  std::printf("\nAblation: rwc straggler threshold sweep (canneal, straggler share 5%%):\n");
  TablePrinter t4({"Excluded?", "Throughput (iter/s)"});
  t4.AddRow({"no (work-conserving)", TablePrinter::Fmt(RunStraggler("canneal", true, 0.35), 1)});
  t4.AddRow({"yes (banned)", TablePrinter::Fmt(RunStraggler("canneal", false, 0.35), 1)});
  t4.Print();

  std::printf("\nPaper: up to 43%% higher throughput excluding the straggler; up to 30%% for\n"
              "stacking; up to 6.7x with priority inversion present.\n");
  return 0;
}
