// Figure 3: proactive migration prevents the stalled running task.
//
// Two overcommitted 4-vCPU VMs (modelled as bandwidth shaping: every vCPU is
// active 5 ms then inactive 5 ms). A single CPU-bound thread runs in default
// mode (scheduler placement) and in migration mode (circularly re-pinning
// itself across vCPUs every 4 ms). Migration mode should roughly double
// vCPU utilization.
#include <cstdio>

#include "src/runner/run_context.h"
#include "src/metrics/activity_trace.h"
#include "src/workloads/micro.h"

using namespace vsched;

namespace {

struct ModeResult {
  double utilization_pct;
  uint64_t migrations;
  std::string timeline;
  double stalled_fraction;
};

ModeResult RunMode(bool migrate) {
  VmSpec spec = MakeSimpleVmSpec("vm", 4);
  for (auto& p : spec.vcpus) {
    p.bw_quota = MsToNs(5);
    p.bw_period = MsToNs(10);
  }
  RunContext ctx = MakeRun(FlatHost(4), std::move(spec), VSchedOptions::Cfs(), 0xF16'03);
  SelfMigratingParams p;
  p.migrate = migrate;
  p.hop_period = MsToNs(4);
  SelfMigratingTask app(&ctx.kernel(), p);
  app.Start();
  ctx.sim->RunFor(SecToNs(1));
  app.ResetStats();
  uint64_t migr_before = app.task()->migrations();
  // Trace a 60 ms window for the KernelShark-style timeline (Fig 3).
  ActivityTrace trace(&ctx.kernel(), UsToNs(100));
  trace.Start();
  ctx.sim->RunFor(MsToNs(60));
  trace.Stop();
  ctx.sim->RunFor(SecToNs(10) - MsToNs(60));
  ModeResult r;
  r.utilization_pct = app.Result().throughput;
  r.migrations = app.task()->migrations() - migr_before;
  r.timeline = trace.Render(96);
  r.stalled_fraction = trace.StalledFraction();
  app.Stop();
  return r;
}

}  // namespace

int main() {
  PrintBanner("Figure 3", "Stalled running task: default vs proactive self-migration");
  ModeResult def = RunMode(false);
  ModeResult mig = RunMode(true);
  TablePrinter table({"Mode", "vCPU utilization", "Migrations (10 s)"});
  table.AddRow({"default (no proactive migration)", TablePrinter::Pct(def.utilization_pct),
                std::to_string(def.migrations)});
  table.AddRow({"migration (hop every 4 ms)", TablePrinter::Pct(mig.utilization_pct),
                std::to_string(mig.migrations)});
  table.Print();
  std::printf("\nTimeline, default mode (60 ms; '#' running, 'x' stalled, ' ' inactive):\n%s",
              def.timeline.c_str());
  std::printf("stalled-running-task present in %.0f%% of samples\n", 100 * def.stalled_fraction);
  std::printf("\nTimeline, migration mode:\n%s", mig.timeline.c_str());
  std::printf("stalled-running-task present in %.0f%% of samples\n", 100 * mig.stalled_fraction);
  std::printf("\nUtilization ratio: %.2fx (paper: ~2x — the task is stalled 50%% of the time\n"
              "in default mode, while proactive migration keeps it on an active vCPU)\n",
              mig.utilization_pct / def.utilization_pct);
  return 0;
}
