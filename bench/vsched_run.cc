// vsched_run: unified CLI for the declarative experiment sweeps.
//
//   vsched_run [--experiment NAME] [--fleet PRESET] [--jobs N] [--seed S]
//              [--out FILE] [--filter SUBSTR] [--warmup-ms N] [--measure-ms N]
//              [--tickless] [--timings] [--audit] [--list]
//              [--fault-plan NAME] [--event-budget N] [--resume FILE] [--shards N]
//
// Experiments: fig18_rcvm (default), fig19_hpvm, fig02, all. --fleet PRESET
// instead sweeps a cluster-scale fleet (docs/CLUSTER.md) head-to-head
// {cfs, vsched}.
// JSONL rows go to --out (or stdout); the human report and wall-clock
// summary go to stdout (or stderr when rows occupy stdout). Rows are
// byte-identical for any --jobs value. SIGINT drains in-flight runs, flushes
// every finished row (a valid --resume checkpoint) and exits 130. See
// docs/RUNNER.md and docs/ROBUSTNESS.md.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/base/audit.h"
#include "src/cluster/fleet_spec.h"
#include "src/fault/fault_plan.h"
#include "src/runner/report.h"
#include "src/runner/result_sink.h"
#include "src/runner/resume.h"
#include "src/runner/runner.h"
#include "src/runner/spec.h"

using namespace vsched;

namespace {

std::atomic<bool> g_interrupted{false};

void OnSigint(int) { g_interrupted.store(true, std::memory_order_relaxed); }

struct CliOptions {
  std::string experiment = "fig18_rcvm";
  std::string fleet;  // non-empty: fleet preset sweep instead of --experiment
  bool adversary = false;  // adversarial co-tenant deception-matrix sweep
  int jobs = 0;
  uint64_t seed = 0;  // 0: each sweep's built-in default
  std::string out;    // empty: stdout
  std::string filter;
  long warmup_ms = -1;   // -1: sweep default
  long measure_ms = -1;  // -1: sweep default
  bool tickless = false;
  bool timings = false;
  bool audit = false;
  bool list = false;
  std::string fault_plan;       // empty: clean run
  uint64_t event_budget = 0;    // 0: no watchdog
  std::string resume;           // empty: fresh sweep
  int shards = 0;  // fleet runs: 0 = sequential engine, >= 1 = sharded PDES engine
};

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: vsched_run [options]\n"
               "  --experiment NAME  fig18_rcvm | fig19_hpvm | fig02 | all (default:"
               " fig18_rcvm)\n"
               "  --fleet PRESET     cluster-scale fleet sweep {cfs, vsched} over PRESET\n"
               "                     (see --list-fleets); replaces --experiment\n"
               "  --list-fleets      print the fleet preset names and exit\n"
               "  --adversary        adversarial co-tenant sweep: each scheduler attack\n"
               "                     (steal, evade, burst) with the robust layer off and\n"
               "                     on, single-VM plus tiny-fleet rows, emitting the\n"
               "                     dx_* deception matrix (docs/ROBUSTNESS.md);\n"
               "                     replaces --experiment\n"
               "  --jobs N           worker threads; 0 = hardware concurrency, 1 = serial\n"
               "  --seed S           base seed override (default: the sweep's own)\n"
               "  --out FILE         write JSONL rows to FILE instead of stdout\n"
               "  --filter SUBSTR    keep only runs whose id contains SUBSTR\n"
               "  --warmup-ms N      override per-run warmup (simulated ms)\n"
               "  --measure-ms N     override per-run measurement window (simulated ms)\n"
               "  --tickless         elide no-op periodic timers (NOHZ-style); rows are\n"
               "                     byte-identical with or without this flag, just faster\n"
               "  --timings          include per-row wall_ms (non-deterministic) in JSONL\n"
               "  --audit            verify core invariants after every mutation (slow);\n"
               "                     output stays byte-identical, violations abort\n"
               "  --list             print the selected run ids and exit\n"
               "  --fault-plan NAME  deterministic chaos plan for every run (see --list-plans);\n"
               "                     'none' is byte-identical to omitting the flag\n"
               "  --list-plans       print the canned fault plan names and exit\n"
               "  --event-budget N   per-run simulated-event watchdog; a run exceeding N\n"
               "                     events reports status=timeout instead of hanging\n"
               "  --shards N         fleet runs: execute each fleet on the sharded PDES\n"
               "                     engine with N worker threads (rows are byte-identical\n"
               "                     for every N >= 1); 0 = sequential engine (default)\n"
               "  --resume FILE      reuse ok rows from a previous JSONL output and execute\n"
               "                     only the missing/failed cells\n");
}

// Parses argv; returns false (after printing usage) on an unknown flag.
bool ParseArgs(int argc, char** argv, CliOptions& cli) {
  auto value = [&](int& i, const char** out_value) {
    if (i + 1 >= argc) {
      return false;
    }
    *out_value = argv[++i];
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const char* v = nullptr;
    std::string inline_value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      v = inline_value.c_str();
    }
    auto take = [&](const char* name) {
      if (arg != name) {
        return false;
      }
      if (v == nullptr && !value(i, &v)) {
        std::fprintf(stderr, "vsched_run: %s needs a value\n", name);
        std::exit(2);
      }
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      std::exit(0);
    } else if (arg == "--tickless") {
      cli.tickless = true;
    } else if (arg == "--timings") {
      cli.timings = true;
    } else if (arg == "--audit") {
      cli.audit = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--adversary") {
      cli.adversary = true;
    } else if (arg == "--list-plans") {
      for (const std::string& name : FaultPlanNames()) {
        std::printf("%s\n", name.c_str());
      }
      std::exit(0);
    } else if (arg == "--list-fleets") {
      for (const std::string& name : FleetSpecNames()) {
        std::printf("%s\n", name.c_str());
      }
      std::exit(0);
    } else if (take("--fleet")) {
      cli.fleet = v;
    } else if (take("--fault-plan")) {
      cli.fault_plan = v;
    } else if (take("--event-budget")) {
      cli.event_budget = std::strtoull(v, nullptr, 0);
    } else if (take("--shards")) {
      cli.shards = std::atoi(v);
    } else if (take("--resume")) {
      cli.resume = v;
    } else if (take("--experiment")) {
      cli.experiment = v;
    } else if (take("--jobs")) {
      cli.jobs = std::atoi(v);
    } else if (take("--seed")) {
      cli.seed = std::strtoull(v, nullptr, 0);
    } else if (take("--out")) {
      cli.out = v;
    } else if (take("--filter")) {
      cli.filter = v;
    } else if (take("--warmup-ms")) {
      cli.warmup_ms = std::atol(v);
    } else if (take("--measure-ms")) {
      cli.measure_ms = std::atol(v);
    } else {
      std::fprintf(stderr, "vsched_run: unknown flag %s\n", arg.c_str());
      Usage(stderr);
      return false;
    }
  }
  return true;
}

ExperimentSpec BuildSweep(const CliOptions& cli) {
  std::vector<ExperimentSpec> parts;
  if (cli.adversary) {
    parts.push_back(AdversarySweep(cli.seed));
  } else if (!cli.fleet.empty()) {
    std::vector<std::string> names = FleetSpecNames();
    if (std::find(names.begin(), names.end(), cli.fleet) == names.end()) {
      std::fprintf(stderr, "vsched_run: unknown fleet preset %s (see --list-fleets)\n",
                   cli.fleet.c_str());
      std::exit(2);
    }
    parts.push_back(FleetSweep(cli.fleet, cli.seed));
  } else {
    if (cli.experiment == "fig18_rcvm" || cli.experiment == "all") {
      parts.push_back(OverallSweep(ExperimentFamily::kOverallRcvm, cli.seed));
    }
    if (cli.experiment == "fig19_hpvm" || cli.experiment == "all") {
      parts.push_back(OverallSweep(ExperimentFamily::kOverallHpvm, cli.seed));
    }
    if (cli.experiment == "fig02" || cli.experiment == "all") {
      parts.push_back(VcpuLatencySweep(cli.seed));
    }
    if (parts.empty()) {
      std::fprintf(stderr, "vsched_run: unknown experiment %s\n", cli.experiment.c_str());
      std::exit(2);
    }
  }
  ExperimentSpec sweep;
  sweep.name = cli.adversary ? "adversary"
                             : (cli.fleet.empty() ? cli.experiment : "fleet_" + cli.fleet);
  for (ExperimentSpec& part : parts) {
    for (RunSpec& run : part.runs) {
      if (cli.warmup_ms >= 0) {
        run.warmup = MsToNs(cli.warmup_ms);
      }
      if (cli.measure_ms >= 0) {
        run.measure = MsToNs(cli.measure_ms);
      }
      run.tickless = cli.tickless;
      // Adversary rows own their fault plan (it IS the attack under test);
      // --fault-plan only applies to the other sweeps.
      if (run.family != ExperimentFamily::kAdversary) {
        run.fault_plan = cli.fault_plan;
      }
      run.event_budget = cli.event_budget;
      run.shards = cli.shards;
      sweep.runs.push_back(std::move(run));
    }
  }
  sweep.Filter(cli.filter);
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, cli)) {
    return 2;
  }
  if (cli.audit) {
    audit::SetEnabled(true);
  }
  if (!cli.fault_plan.empty()) {
    FaultPlan plan;
    if (!LookupFaultPlan(cli.fault_plan, &plan)) {
      std::fprintf(stderr, "vsched_run: unknown fault plan %s (see --list-plans)\n",
                   cli.fault_plan.c_str());
      return 2;
    }
  }
  ExperimentSpec sweep = BuildSweep(cli);
  if (cli.list) {
    for (const RunSpec& run : sweep.runs) {
      std::printf("%s\n", run.Id().c_str());
    }
    return 0;
  }
  if (sweep.runs.empty()) {
    std::fprintf(stderr, "vsched_run: no runs match the filter\n");
    return 1;
  }

  // JSONL rows claim stdout unless --out is given; human output then moves
  // to stderr so the stream stays machine-parseable.
  std::ofstream out_file;
  std::ostream* rows = &std::cout;
  std::FILE* human = stderr;
  if (!cli.out.empty()) {
    out_file.open(cli.out, std::ios::out | std::ios::trunc);
    if (!out_file) {
      std::fprintf(stderr, "vsched_run: cannot open %s\n", cli.out.c_str());
      return 1;
    }
    rows = &out_file;
    human = stdout;
  }

  // --resume: reuse rows the previous invocation already completed; only the
  // missing (or failed) cells execute.
  ResumeState resume;
  if (!cli.resume.empty()) {
    std::string error;
    if (!LoadResumeState(cli.resume, &resume, &error)) {
      std::fprintf(stderr, "vsched_run: --resume: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "resume: %zu completed row(s) reused from %s\n",
                 resume.completed.size(), cli.resume.c_str());
  }
  ExperimentSpec todo;
  todo.name = sweep.name;
  std::vector<int> todo_index;  // position of each todo run within the sweep
  for (size_t i = 0; i < sweep.runs.size(); ++i) {
    if (resume.completed.count(sweep.runs[i].Id()) == 0) {
      todo.runs.push_back(sweep.runs[i]);
      todo_index.push_back(static_cast<int>(i));
    }
  }

  std::signal(SIGINT, OnSigint);
  RunnerOptions options;
  options.jobs = cli.jobs;
  options.cancel = &g_interrupted;
  options.on_run_done = [&](const RunResult& result) {
    std::fputc(result.ok ? '.' : 'x', stderr);
  };
  auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = Runner(options).Run(todo);
  auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  std::fprintf(stderr, "\n");
  // Re-key executed results to their sweep positions so a resumed file is
  // byte-identical to an uninterrupted run of the full sweep.
  for (size_t j = 0; j < results.size(); ++j) {
    results[j].index = todo_index[j];
  }

  ResultSink::Options sink_options;
  sink_options.include_timing = cli.timings;
  ResultSink sink(rows, sink_options);
  int failed = 0;
  bool interrupted = g_interrupted.load(std::memory_order_relaxed);
  size_t next_result = 0;
  for (size_t i = 0; i < sweep.runs.size(); ++i) {
    auto cached = resume.completed.find(sweep.runs[i].Id());
    if (cached != resume.completed.end()) {
      // Byte-stable apart from the run index, which is re-keyed to this
      // sweep's position (the checkpoint may have numbered the cell under a
      // different --filter).
      *rows << RekeyRunIndex(cached->second, static_cast<int>(i)) << "\n";
      continue;
    }
    const RunResult& result = results[next_result++];
    // Cells that never started because of SIGINT are left out of the file:
    // the checkpoint then contains exactly the finished work, and --resume
    // picks up the rest.
    if (interrupted && !result.ok && result.error == "interrupted") {
      continue;
    }
    sink.Write(result);
    if (!result.ok) {
      ++failed;
    }
  }
  rows->flush();

  PrintRunSummary(results, elapsed.count(), human);
  if (interrupted) {
    std::fprintf(human, "interrupted: partial results flushed; rerun with --resume %s\n",
                 cli.out.empty() ? "<file>" : cli.out.c_str());
    return 130;
  }
  if (audit::Enabled()) {
    // The default handler aborts on the first violation, so reaching here
    // normally means zero; a custom handler may have let the run continue.
    std::fprintf(human, "audit: %llu invariant violation(s)\n",
                 static_cast<unsigned long long>(audit::ViolationCount()));
    if (audit::ViolationCount() != 0) {
      return 1;
    }
  }
  if (cli.timings) {
    uint64_t events = 0;
    uint64_t cb_heap_allocs = 0;
    uint64_t slab_allocs = 0;
    uint64_t picks = 0;
    uint64_t timer_fires = 0;
    uint64_t timer_cascades = 0;
    uint64_t ticks_elided = 0;
    for (const RunResult& result : results) {
      events += result.counters.events_executed;
      cb_heap_allocs += result.counters.callback_heap_allocs;
      slab_allocs += result.counters.event_slab_allocs;
      picks += result.counters.rq_picks;
      timer_fires += result.counters.timer_fires;
      timer_cascades += result.counters.timer_cascades;
      ticks_elided += result.counters.ticks_elided;
    }
    double secs = static_cast<double>(elapsed.count()) / 1e9;
    std::fprintf(human,
                 "core: %llu events (%.3g events/sec aggregate), %llu rq picks, "
                 "%llu callback heap allocs, %llu slab allocs\n",
                 static_cast<unsigned long long>(events),
                 secs > 0 ? static_cast<double>(events) / secs : 0,
                 static_cast<unsigned long long>(picks),
                 static_cast<unsigned long long>(cb_heap_allocs),
                 static_cast<unsigned long long>(slab_allocs));
    std::fprintf(human,
                 "timers: %llu fires, %llu cascades, %llu ticks elided%s\n",
                 static_cast<unsigned long long>(timer_fires),
                 static_cast<unsigned long long>(timer_cascades),
                 static_cast<unsigned long long>(ticks_elided),
                 cli.tickless ? " (--tickless)" : "");
  }
  return failed == 0 ? 0 : 1;
}
