# ctest script: vsched_run must emit byte-identical JSONL at --jobs=1 and
# --jobs=2. Run with:
#   cmake -DVSCHED_RUN=<binary> -DWORK_DIR=<dir> -P vsched_run_determinism.cmake
set(common_args --experiment fig02 --filter img-dnn
                --warmup-ms 50 --measure-ms 200)

execute_process(
    COMMAND ${VSCHED_RUN} ${common_args} --jobs 1 --out ${WORK_DIR}/det_serial.jsonl
    RESULT_VARIABLE serial_rc
    OUTPUT_QUIET ERROR_QUIET)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial vsched_run failed (rc=${serial_rc})")
endif()

execute_process(
    COMMAND ${VSCHED_RUN} ${common_args} --jobs 2 --out ${WORK_DIR}/det_sharded.jsonl
    RESULT_VARIABLE sharded_rc
    OUTPUT_QUIET ERROR_QUIET)
if(NOT sharded_rc EQUAL 0)
  message(FATAL_ERROR "sharded vsched_run failed (rc=${sharded_rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/det_serial.jsonl ${WORK_DIR}/det_sharded.jsonl
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "JSONL differs between --jobs=1 and --jobs=2")
endif()
