// Figure 19: overall improvement in the high-performance VM (hpvm).
//
// Same protocol as Figure 18 in the 32-vCPU, 4-socket hpvm whose first
// three vCPU groups mirror rcvm's quality classes and whose last group is
// dedicated (§5.1). The 93 runs are sharded across worker threads (--jobs N,
// default: hardware concurrency); results are identical to a serial sweep.
#include <chrono>
#include <cstdio>

#include "bench/bench_args.h"
#include "src/metrics/experiment.h"
#include "src/runner/report.h"
#include "src/runner/runner.h"
#include "src/runner/spec.h"

using namespace vsched;

int main(int argc, char** argv) {
  PrintBanner("Figure 19", "hpvm: CFS vs enhanced CFS vs vSched (31 workloads)");
  ExperimentSpec sweep = OverallSweep(ExperimentFamily::kOverallHpvm);
  RunnerOptions options;
  options.jobs = JobsArg(argc, argv);
  options.on_run_done = [](const RunResult&) { std::fprintf(stderr, "."); };
  auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = Runner(options).Run(sweep);
  auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  std::fprintf(stderr, "\n");
  PrintOverallReport("hpvm", results);
  std::printf("\nPaper (Fig 19): enhanced CFS 1.5x lower latency / +13%% throughput;\n"
              "vSched 2.3x lower latency / +18%% throughput on average vs CFS.\n");
  PrintRunSummary(results, elapsed.count());
  return 0;
}
