// Figure 19: overall improvement in the high-performance VM (hpvm).
//
// Same protocol as Figure 18 in the 32-vCPU, 4-socket hpvm whose first
// three vCPU groups mirror rcvm's quality classes and whose last group is
// dedicated (§5.1).
#include "bench/fig18_common.h"

using namespace vsched;

int main() {
  PrintBanner("Figure 19", "hpvm: CFS vs enhanced CFS vs vSched (31 workloads)");
  RunOverallExperiment("hpvm", HpvmHostTopology(), MakeHpvmSpec(), 0xF16'19, /*rcvm=*/false);
  std::printf("\nPaper (Fig 19): enhanced CFS 1.5x lower latency / +13%% throughput;\n"
              "vSched 2.3x lower latency / +18%% throughput on average vs CFS.\n");
  return 0;
}
