// Figure 13: effective LLC-aware optimizations with vtop.
//
// 32 vCPUs pinned across two sockets (16 + 16). Two instances of each
// communication-heavy benchmark run side by side; with the correct socket
// topology exposed, each instance's threads stay within one LLC domain:
// throughput rises, the IPC proxy improves (less work burned on cross-socket
// cache-line transfers), and cross-socket rescheduling IPIs collapse.
#include <cstdio>

#include "src/runner/run_context.h"

using namespace vsched;

namespace {

VSchedOptions VtopOnly() {
  VSchedOptions o = VSchedOptions::EnhancedCfs();
  o.use_vcap = false;
  o.use_rwc = false;
  return o;
}

struct LlcResult {
  double throughput;  // mean of the two instances
  double ipc;         // items per vCPU-busy-second (IPC proxy)
  double ipis;        // cross-socket wakeup IPIs per second
};

LlcResult RunPair(const std::string& app_name, bool with_vtop) {
  TopologySpec host = FlatHost(16, /*threads_per_core=*/1, /*sockets=*/2);
  VmSpec spec = MakeSimpleVmSpec("vm", 32);
  RunContext ctx = MakeRun(host, std::move(spec), with_vtop ? VtopOnly() : VSchedOptions::Cfs(),
                           0xF16'13);
  auto a = MakeWorkload(&ctx.kernel(), app_name, 16);
  auto b = MakeWorkload(&ctx.kernel(), app_name, 16);
  a->Start();
  b->Start();
  ctx.sim->RunFor(SecToNs(5));
  a->ResetStats();
  b->ResetStats();
  TimeNs busy_before = 0;
  for (int i = 0; i < 32; ++i) {
    busy_before += ctx.kernel().vcpu(i).busy_ns();
  }
  uint64_t ipi_before = ctx.kernel().counters().wakeup_ipis_cross_socket.value();
  const TimeNs kMeasure = SecToNs(15);
  ctx.sim->RunFor(kMeasure);
  TimeNs busy = -busy_before;
  for (int i = 0; i < 32; ++i) {
    busy += ctx.kernel().vcpu(i).busy_ns();
  }
  uint64_t ipis = ctx.kernel().counters().wakeup_ipis_cross_socket.value() - ipi_before;
  LlcResult r;
  double tput = (a->Result().throughput + b->Result().throughput) / 2.0;
  r.throughput = tput;
  r.ipc = busy > 0 ? 2.0 * tput / NsToSec(busy) * NsToSec(kMeasure) : 0;
  r.ipis = static_cast<double>(ipis) / NsToSec(kMeasure);
  a->Stop();
  b->Stop();
  return r;
}

}  // namespace

int main() {
  PrintBanner("Figure 13", "LLC-aware optimizations with vtop (2 instances per benchmark)");
  TablePrinter table({"App", "Throughput", "IPC proxy", "cross-socket IPIs"});
  for (const std::string& app : {std::string("dedup"), std::string("nginx"),
                                 std::string("hackbench")}) {
    LlcResult base = RunPair(app, false);
    LlcResult opt = RunPair(app, true);
    table.AddRow({app + " (CFS)", TablePrinter::Pct(100.0 * base.throughput / opt.throughput),
                  TablePrinter::Pct(100.0 * base.ipc / opt.ipc),
                  TablePrinter::Fmt(base.ipis, 0) + "/s"});
    table.AddRow({app + " (+VTOP)", TablePrinter::Pct(100.0), TablePrinter::Pct(100.0),
                  TablePrinter::Fmt(opt.ipis, 0) + "/s"});
  }
  table.Print();
  std::printf("\n(Normalized to the vtop-enabled run, as in the paper's Fig 13: CFS bars\n"
              "below 100%% throughput/IPC and far above 100%% IPIs indicate the benefit.)\n"
              "Paper: +26%% throughput, +14.5%% IPC, up to 99%% IPI reduction on average.\n");
  return 0;
}
