# ctest script: cluster-scale fleet sweeps are deterministic. Run with:
#   cmake -DVSCHED_RUN=<binary> -DWORK_DIR=<dir> -P vsched_run_fleet.cmake
#
# Asserts:
#   1. A tiny-fleet sweep (thousands of events across 4 hosts / 10 VMs of
#      control-plane + guest-stack interleaving) emits byte-identical JSONL
#      at --jobs 1 and --jobs 4.
#   2. A chaos fleet sweep (machine-level fault injectors armed on every
#      fourth host) replays byte-identically run over run — fault draws come
#      from the same forked RNG streams as everything else.

function(run_fleet out)
  execute_process(
      COMMAND ${VSCHED_RUN} --fleet tiny ${ARGN} --out ${out}
      RESULT_VARIABLE rc
      OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "vsched_run --fleet tiny ${ARGN} failed (rc=${rc})")
  endif()
endfunction()

function(expect_identical a b what)
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
      RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endfunction()

# --- 1. byte-identical across job counts ------------------------------------
run_fleet(${WORK_DIR}/fleet_j1.jsonl --jobs 1)
run_fleet(${WORK_DIR}/fleet_j4.jsonl --jobs 4)
expect_identical(${WORK_DIR}/fleet_j1.jsonl ${WORK_DIR}/fleet_j4.jsonl
                 "fleet JSONL differs between --jobs=1 and --jobs=4")

# --- 2. chaos fleet replay ---------------------------------------------------
run_fleet(${WORK_DIR}/fleet_chaos_a.jsonl --jobs 2 --fault-plan everything)
run_fleet(${WORK_DIR}/fleet_chaos_b.jsonl --jobs 2 --fault-plan everything)
expect_identical(${WORK_DIR}/fleet_chaos_a.jsonl ${WORK_DIR}/fleet_chaos_b.jsonl
                 "chaos fleet sweep does not replay byte-identically")
