
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/guest/cpumask_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/cpumask_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/cpumask_test.cc.o.d"
  "/root/repo/tests/guest/eevdf_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/eevdf_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/eevdf_test.cc.o.d"
  "/root/repo/tests/guest/kernel_advanced_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/kernel_advanced_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/kernel_advanced_test.cc.o.d"
  "/root/repo/tests/guest/kernel_basic_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/kernel_basic_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/kernel_basic_test.cc.o.d"
  "/root/repo/tests/guest/kernel_property_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/kernel_property_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/kernel_property_test.cc.o.d"
  "/root/repo/tests/guest/nice_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/nice_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/nice_test.cc.o.d"
  "/root/repo/tests/guest/pelt_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/pelt_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/pelt_test.cc.o.d"
  "/root/repo/tests/guest/placement_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/placement_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/placement_test.cc.o.d"
  "/root/repo/tests/guest/runqueue_equivalence_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/runqueue_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/runqueue_equivalence_test.cc.o.d"
  "/root/repo/tests/guest/runqueue_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/runqueue_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/runqueue_test.cc.o.d"
  "/root/repo/tests/guest/vm_wrapper_test.cc" "tests/CMakeFiles/guest_tests.dir/guest/vm_wrapper_test.cc.o" "gcc" "tests/CMakeFiles/guest_tests.dir/guest/vm_wrapper_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/runner/CMakeFiles/vsched_runner.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/metrics/CMakeFiles/vsched_metrics.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/cluster/CMakeFiles/vsched_cluster.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/core/CMakeFiles/vsched_core.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/probe/CMakeFiles/vsched_probe.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/fault/CMakeFiles/vsched_fault.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/workloads/CMakeFiles/vsched_workloads.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/guest/CMakeFiles/vsched_guest.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/host/CMakeFiles/vsched_host.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/sim/CMakeFiles/vsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/stats/CMakeFiles/vsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/base/CMakeFiles/vsched_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
