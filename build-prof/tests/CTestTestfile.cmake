# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-prof/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-prof/tests/base_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/sim_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/stats_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/host_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/workloads_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/metrics_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/core_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/probe_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/fault_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/runner_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/audit_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/lint_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build-prof/tests/guest_tests[1]_include.cmake")
