# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-prof/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(vsched_run_determinism "/usr/bin/cmake" "-DVSCHED_RUN=/root/repo/build-prof/bench/vsched_run" "-DWORK_DIR=/root/repo/build-prof/bench" "-P" "/root/repo/bench/vsched_run_determinism.cmake")
set_tests_properties(vsched_run_determinism PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(vsched_run_tickless "/usr/bin/cmake" "-DVSCHED_RUN=/root/repo/build-prof/bench/vsched_run" "-DWORK_DIR=/root/repo/build-prof/bench" "-P" "/root/repo/bench/vsched_run_tickless.cmake")
set_tests_properties(vsched_run_tickless PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;46;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(vsched_run_chaos "/usr/bin/cmake" "-DVSCHED_RUN=/root/repo/build-prof/bench/vsched_run" "-DWORK_DIR=/root/repo/build-prof/bench" "-P" "/root/repo/bench/vsched_run_chaos.cmake")
set_tests_properties(vsched_run_chaos PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;54;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(vsched_run_fleet "/usr/bin/cmake" "-DVSCHED_RUN=/root/repo/build-prof/bench/vsched_run" "-DWORK_DIR=/root/repo/build-prof/bench" "-P" "/root/repo/bench/vsched_run_fleet.cmake")
set_tests_properties(vsched_run_fleet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;62;add_test;/root/repo/bench/CMakeLists.txt;0;")
