
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/vsched_run.cc" "bench/CMakeFiles/vsched_run.dir/vsched_run.cc.o" "gcc" "bench/CMakeFiles/vsched_run.dir/vsched_run.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/runner/CMakeFiles/vsched_runner.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/metrics/CMakeFiles/vsched_metrics.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/cluster/CMakeFiles/vsched_cluster.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/core/CMakeFiles/vsched_core.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/probe/CMakeFiles/vsched_probe.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/fault/CMakeFiles/vsched_fault.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/workloads/CMakeFiles/vsched_workloads.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/guest/CMakeFiles/vsched_guest.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/host/CMakeFiles/vsched_host.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/sim/CMakeFiles/vsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/stats/CMakeFiles/vsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/base/CMakeFiles/vsched_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
