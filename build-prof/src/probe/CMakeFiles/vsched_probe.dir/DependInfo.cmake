
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probe/pair_probe.cc" "src/probe/CMakeFiles/vsched_probe.dir/pair_probe.cc.o" "gcc" "src/probe/CMakeFiles/vsched_probe.dir/pair_probe.cc.o.d"
  "/root/repo/src/probe/robust.cc" "src/probe/CMakeFiles/vsched_probe.dir/robust.cc.o" "gcc" "src/probe/CMakeFiles/vsched_probe.dir/robust.cc.o.d"
  "/root/repo/src/probe/vact.cc" "src/probe/CMakeFiles/vsched_probe.dir/vact.cc.o" "gcc" "src/probe/CMakeFiles/vsched_probe.dir/vact.cc.o.d"
  "/root/repo/src/probe/vcap.cc" "src/probe/CMakeFiles/vsched_probe.dir/vcap.cc.o" "gcc" "src/probe/CMakeFiles/vsched_probe.dir/vcap.cc.o.d"
  "/root/repo/src/probe/vtop.cc" "src/probe/CMakeFiles/vsched_probe.dir/vtop.cc.o" "gcc" "src/probe/CMakeFiles/vsched_probe.dir/vtop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/base/CMakeFiles/vsched_base.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/sim/CMakeFiles/vsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/stats/CMakeFiles/vsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/guest/CMakeFiles/vsched_guest.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/host/CMakeFiles/vsched_host.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/fault/CMakeFiles/vsched_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
