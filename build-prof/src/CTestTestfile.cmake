# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-prof/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sim")
subdirs("stats")
subdirs("host")
subdirs("guest")
subdirs("fault")
subdirs("probe")
subdirs("core")
subdirs("workloads")
subdirs("metrics")
subdirs("cluster")
subdirs("runner")
