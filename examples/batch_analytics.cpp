// Example: a batch analytics job on a bursty spot VM.
//
// A single-threaded (then multi-threaded) compute job runs in a VM whose
// vCPUs get 50% of their cores in multi-millisecond slices. Intra-VM
// harvesting migrates the running job away from soon-to-be-inactive vCPUs so
// it keeps making progress on whichever vCPU is currently active.
#include <cstdio>

#include "src/core/vsched.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/metrics/experiment.h"
#include "src/sim/simulation.h"
#include "src/workloads/throughput_app.h"

using namespace vsched;

namespace {

double RunJob(int threads, bool use_vsched) {
  Simulation sim(99);
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 8;
  topo.threads_per_core = 1;
  HostMachine machine(&sim, topo);
  HostSchedParams host;
  host.min_granularity = MsToNs(5);
  host.wakeup_granularity = MsToNs(5);
  for (int c = 0; c < 8; ++c) {
    machine.sched(c).set_params(host);
  }
  std::vector<std::unique_ptr<Stressor>> cotenants;
  for (int c = 0; c < 8; ++c) {
    cotenants.push_back(std::make_unique<Stressor>(&sim, "cotenant"));
    cotenants.back()->Start(&machine, c);
  }
  Vm vm(&sim, &machine, MakeSimpleVmSpec("batch", 8));
  VSched vsched(&vm.kernel(), use_vsched ? VSchedOptions::Full() : VSchedOptions::Cfs());
  vsched.Start();

  // Let the probers learn the host's behaviour before the job starts
  // (capacity/latency estimates need a couple of sampling windows).
  sim.RunFor(SecToNs(4));

  // A fixed batch: `threads` workers × 300 chunks of 5 ms.
  TaskParallelParams p;
  p.name = "analytics";
  p.threads = threads;
  p.chunk_mean = MsToNs(5);
  p.chunk_cv = 0.1;
  p.max_chunks = 300;
  TaskParallelApp job(&vm.kernel(), p);
  job.Start();
  TimeNs start = sim.now();
  while (job.chunks_done() < 300 && sim.now() - start < SecToNs(60)) {
    sim.RunFor(MsToNs(50));
  }
  return NsToSec(sim.now() - start);
}

}  // namespace

int main() {
  std::printf("Batch analytics on a 50%%-shared spot VM (fixed 1.5 s of work)\n\n");
  TablePrinter table({"Threads", "CFS (s)", "vSched (s)", "speedup"});
  for (int threads : {1, 2, 4}) {
    double cfs = RunJob(threads, false);
    double vs = RunJob(threads, true);
    table.AddRow({std::to_string(threads), TablePrinter::Fmt(cfs, 2), TablePrinter::Fmt(vs, 2),
                  TablePrinter::Fmt(cfs / vs, 2) + "x"});
  }
  table.Print();
  std::printf("\nWith few threads there are unused vCPUs whose active slices ivh can\n"
              "harvest; the job finishes markedly sooner.\n");
  return 0;
}
