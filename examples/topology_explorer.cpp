// Example: discovering a VM's real vCPU topology from inside the guest.
//
// Builds a deliberately scrambled pinning — SMT siblings, cross-socket
// spreads, and a stacked pair — then runs vtop's full probe and prints the
// measured cache-line latency matrix and the inferred schedule domains.
// Afterwards it re-pins a vCPU and shows the periodic validation catching
// the change.
#include <cmath>
#include <cstdio>

#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/probe/vtop.h"
#include "src/sim/simulation.h"

using namespace vsched;

namespace {

void PrintTopology(const GuestTopology& topo) {
  for (int i = 0; i < topo.num_vcpus(); ++i) {
    std::printf("  vcpu%-2d  core-group %03llx  socket %03llx  stack %03llx\n", i,
                static_cast<unsigned long long>(topo.smt_mask[i].bits()),
                static_cast<unsigned long long>(topo.llc_mask[i].bits()),
                static_cast<unsigned long long>(topo.stack_mask[i].bits()));
  }
}

}  // namespace

int main() {
  Simulation sim(2026);
  TopologySpec host;
  host.sockets = 2;
  host.cores_per_socket = 4;
  host.threads_per_core = 2;
  HostMachine machine(&sim, host);

  // A scrambled 10-vCPU pinning the guest knows nothing about.
  VmSpec spec = MakeSimpleVmSpec("explorer", 10);
  spec.vcpus[0].tid = 0;   // socket 0, core 0, thread 0
  spec.vcpus[1].tid = 8;   // socket 1!
  spec.vcpus[2].tid = 1;   // SMT sibling of vcpu0
  spec.vcpus[3].tid = 9;   // SMT sibling of vcpu1
  spec.vcpus[4].tid = 2;   // socket 0, core 1
  spec.vcpus[5].tid = 10;  // socket 1, core 5
  spec.vcpus[6].tid = 4;   // socket 0, core 2
  spec.vcpus[7].tid = 4;   // stacked with vcpu6!
  spec.vcpus[8].tid = 12;  // socket 1, core 6
  spec.vcpus[9].tid = 6;   // socket 0, core 3
  Vm vm(&sim, &machine, spec);

  Vtop vtop(&vm.kernel());
  bool done = false;
  vtop.RunFullProbe([&] { done = true; });
  sim.RunFor(SecToNs(20));
  if (!done) {
    std::printf("probe did not finish\n");
    return 1;
  }

  std::printf("Measured cache-line transfer latency matrix (ns; inf = stacked):\n      ");
  int n = vm.num_vcpus();
  for (int j = 0; j < n; ++j) {
    std::printf("%7d", j);
  }
  std::printf("\n");
  for (int i = 0; i < n; ++i) {
    std::printf("vcpu%-2d", i);
    for (int j = 0; j < n; ++j) {
      double lat = vtop.MatrixAt(i, j);
      if (i == j) {
        std::printf("%7s", "-");
      } else if (std::isinf(lat)) {
        std::printf("%7s", "inf");
      } else {
        std::printf("%7.0f", lat);
      }
    }
    std::printf("\n");
  }

  std::printf("\nInferred topology (full probe took %.0f ms, %d pair probes, %d inferred):\n",
              NsToMs(vtop.last_full_duration()), vtop.pair_probes_run(), vtop.pairs_inferred());
  PrintTopology(vtop.probed_topology());

  // Now the hypervisor "migrates" vcpu9 to socket 1 behind the guest's back.
  std::printf("\nRe-pinning vcpu9 to socket 1 and validating...\n");
  vm.PinVcpu(9, 14);
  bool ok = true;
  bool validated = false;
  vtop.RunValidation([&](bool result) {
    ok = result;
    validated = true;
  });
  sim.RunFor(SecToNs(10));
  std::printf("validation %s (took %.0f ms)\n", ok ? "PASSED (unexpected!)" : "FAILED as expected",
              NsToMs(vtop.last_validate_duration()));

  bool redone = false;
  vtop.RunFullProbe([&] { redone = true; });
  sim.RunFor(SecToNs(20));
  if (redone) {
    std::printf("\nRe-probed topology:\n");
    PrintTopology(vtop.probed_topology());
  }
  return 0;
}
