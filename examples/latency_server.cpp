// Example: a latency-critical request server on an overcommitted VM.
//
// Demonstrates how vSched's biased vCPU selection reduces tail latency when
// vCPUs have asymmetric latency, and how to read the Table-3-style
// queue/service breakdown from the workload library.
#include <cstdio>

#include "src/core/vsched.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "src/workloads/latency_app.h"

using namespace vsched;

namespace {

void RunServer(bool use_vsched) {
  Simulation sim(7);
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 8;
  topo.threads_per_core = 1;
  HostMachine machine(&sim, topo);

  // Competing VM on every core; the first four cores context-switch on a
  // finer grain → their vCPUs have 3x lower latency at equal capacity.
  std::vector<std::unique_ptr<Stressor>> cotenants;
  for (int c = 0; c < 8; ++c) {
    cotenants.push_back(std::make_unique<Stressor>(&sim, "cotenant"));
    cotenants.back()->Start(&machine, c);
    HostSchedParams params;
    params.min_granularity = c < 4 ? MsToNs(2) : MsToNs(6);
    params.wakeup_granularity = params.min_granularity;
    machine.sched(c).set_params(params);
  }

  Vm vm(&sim, &machine, MakeSimpleVmSpec("server", 8));
  VSched vsched(&vm.kernel(), use_vsched ? VSchedOptions::Full() : VSchedOptions::Cfs());
  vsched.Start();

  LatencyAppParams params;
  params.name = "api-server";
  params.workers = 8;
  params.service_mean = UsToNs(250);
  params.service_cv = 0.3;
  params.arrival_rate_per_sec = 1500;
  LatencyApp server(&vm.kernel(), params);
  server.Start();

  sim.RunFor(SecToNs(5));  // Warm-up: probers learn the vCPU classes.
  server.ResetStats();
  sim.RunFor(SecToNs(20));

  WorkloadResult r = server.Result();
  std::printf("%-8s p50 %6.2f ms   p95 %6.2f ms   p99 %6.2f ms   "
              "(queue p95 %.2f ms, service p95 %.2f ms)\n",
              use_vsched ? "vSched" : "CFS", r.p50_ns / 1e6, r.p95_ns / 1e6, r.p99_ns / 1e6,
              server.queue_time().P95() / 1e6, server.service_time().P95() / 1e6);
  server.Stop();
}

}  // namespace

int main() {
  std::printf("Latency server on an overcommitted 8-vCPU VM\n");
  std::printf("(4 low-latency vCPUs, 4 high-latency; 1500 req/s, 250 us requests)\n\n");
  RunServer(false);
  RunServer(true);
  std::printf("\nbvs steers request dispatch toward low-latency, soon-to-run vCPUs,\n"
              "cutting the runqueue-wait component of the tail.\n");
  return 0;
}
