// Example: run a scheduling scenario from a script — no C++ required.
//
//   ./build/examples/scenario_runner path/to/scenario.txt
//   ./build/examples/scenario_runner          (runs the built-in demo)
//
// See src/metrics/scenario.h for the directive grammar.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/metrics/scenario.h"

using namespace vsched;

namespace {

constexpr const char* kDemoScript = R"(# Demo: a 2x-overcommitted 8-vCPU VM running canneal and silo under vSched.
host sockets=1 cores=8 smt=1
gran tid=0 min=4ms
gran tid=1 min=4ms
gran tid=2 min=4ms
gran tid=3 min=4ms
stressor tid=0
stressor tid=1
stressor tid=2
stressor tid=3
vm vcpus=8
vsched preset=full
workload name=canneal threads=4
workload name=silo threads=4
run 2s        # warm-up: probers learn the host
report
run 10s
report
)";

}  // namespace

int main(int argc, char** argv) {
  std::string script;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    script = buffer.str();
  } else {
    std::printf("(no script given: running the built-in demo)\n\n%s\n---\n", kDemoScript);
    script = kDemoScript;
  }
  ScenarioRunner runner;
  if (!runner.RunScript(script)) {
    std::fprintf(stderr, "scenario error: %s\n", runner.error().c_str());
    return 1;
  }
  return 0;
}
