// Example: deploying vSched on an unknown platform with auto-configured
// tunables, on top of the EEVDF scheduler.
//
// A "spot" VM lands on a host whose slicing behaviour the guest has never
// seen (long 25 ms slices). The AutoTuner calibrates the Table-1 tunables
// from a few seconds of probing, then the full vSched stack starts — here on
// an EEVDF guest scheduler, demonstrating that the techniques are
// pick-policy agnostic.
#include <cstdio>

#include "src/core/autotune.h"
#include "src/core/vsched.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "src/workloads/catalog.h"

using namespace vsched;

int main() {
  Simulation sim(7);
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 8;
  topo.threads_per_core = 1;
  HostMachine machine(&sim, topo);

  // An unusual host: co-tenants everywhere with very coarse 25 ms slices.
  HostSchedParams host;
  host.min_granularity = MsToNs(25);
  host.wakeup_granularity = MsToNs(25);
  std::vector<std::unique_ptr<Stressor>> cotenants;
  for (int c = 0; c < 8; ++c) {
    machine.sched(c).set_params(host);
    cotenants.push_back(std::make_unique<Stressor>(&sim, "cotenant"));
    cotenants.back()->Start(&machine, c);
  }

  VmSpec spec = MakeSimpleVmSpec("spot", 8);
  spec.mutable_guest_params().use_eevdf = true;  // the guest runs EEVDF, not CFS
  Vm vm(&sim, &machine, spec);

  // Background demand so calibration can observe activity.
  auto load = MakeWorkload(&vm.kernel(), "radix", 8);
  load->Start();

  std::printf("Calibrating tunables on the unknown host (3 s of probing)...\n");
  AutoTuner tuner(&vm.kernel());
  std::unique_ptr<VSched> vsched;
  tuner.Calibrate(SecToNs(3), VSchedOptions::Full(), [&](VSchedOptions tuned) {
    std::printf("  vcap sampling period : %.0f ms (Table-1 default: 100 ms)\n",
                NsToMs(tuned.vcap.sampling_period));
    std::printf("  vcap light interval  : %.1f s\n", NsToSec(tuned.vcap.light_interval));
    std::printf("  vtop transfer timeout: %d attempts (default: 15000)\n",
                tuned.vtop.pair.timeout_attempts);
    std::printf("  ivh threshold        : %.0f ms\n", NsToMs(tuned.ivh.migration_threshold));
    vsched = std::make_unique<VSched>(&vm.kernel(), tuned);
    vsched->Start();
  });
  sim.RunFor(SecToNs(4));
  if (vsched == nullptr) {
    std::printf("calibration did not finish\n");
    return 1;
  }

  load->ResetStats();
  sim.RunFor(SecToNs(10));
  std::printf("\nradix on the EEVDF guest with auto-tuned vSched: %.0f iterations/s\n",
              load->Result().throughput);
  std::printf("probed capacities: ");
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    std::printf("%4.0f ", vsched->vcap()->CapacityOf(i));
  }
  std::printf("\nprobed latencies : ");
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    std::printf("%4.1f ", vsched->vact()->LatencyOf(i) / 1e6);
  }
  std::printf(" (ms)\n");
  load->Stop();
  return 0;
}
