// Quickstart: simulate a small cloud VM, probe its vCPU abstraction, and run
// a workload under stock CFS and under vSched.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/vsched.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "src/workloads/catalog.h"

using namespace vsched;

int main() {
  std::printf("vsched-sim quickstart\n=====================\n\n");

  // 1. A host: one socket, four SMT cores (8 hardware threads).
  Simulation sim(/*seed=*/42);
  TopologySpec topo;
  topo.sockets = 1;
  topo.cores_per_socket = 4;
  topo.threads_per_core = 2;
  HostMachine machine(&sim, topo);

  // 2. A co-tenant stresses half the hardware threads: vCPUs pinned there
  //    will be slow and bursty — but the guest can't see that by default.
  std::vector<std::unique_ptr<Stressor>> cotenants;
  for (int t = 0; t < 4; ++t) {
    cotenants.push_back(std::make_unique<Stressor>(&sim, "cotenant"));
    cotenants.back()->Start(&machine, t);
  }

  // 3. An 8-vCPU guest VM pinned 1:1, running full vSched.
  Vm vm(&sim, &machine, MakeSimpleVmSpec("demo", 8));
  VSched vsched(&vm.kernel(), VSchedOptions::Full());
  vsched.Start();

  // 4. A workload from the catalog: the canneal model, 8 threads.
  auto workload = MakeWorkload(&vm.kernel(), "canneal", 8);
  workload->Start();

  // 5. Simulate 10 seconds of virtual time (this takes milliseconds of real
  //    time) and inspect what the probers discovered.
  sim.RunFor(SecToNs(10));

  std::printf("Probed vCPU capacities (vcap, kCapacityScale units):\n  ");
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    std::printf("%5.0f", vsched.vcap()->CapacityOf(i));
  }
  std::printf("\nProbed vCPU latencies (vact, ms):\n  ");
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    std::printf("%5.1f", vsched.vact()->LatencyOf(i) / 1e6);
  }
  std::printf("\nProbed SMT sibling masks (vtop):\n  ");
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    std::printf(" %03llx", static_cast<unsigned long long>(
                              vsched.vtop()->probed_topology().smt_mask[i].bits()));
  }
  std::printf("\n\n");

  WorkloadResult result = workload->Result();
  std::printf("canneal under vSched: %.0f iterations/s (%llu iterations in 10 s)\n",
              result.throughput, static_cast<unsigned long long>(result.completed));
  std::printf("ivh migrations completed: %llu\n",
              static_cast<unsigned long long>(vsched.ivh()->completed()));
  workload->Stop();
  return 0;
}
