// Deterministic fault injector: turns a FaultPlan into seeded perturbation
// events on a live simulation.
//
// All randomness comes from one RNG stream forked off the simulation's root
// RNG at construction, and every intervention is an ordinary simulation
// event, so a chaos run replays byte-identically from (seed, plan). The
// injector never reaches into scheduler internals: it acts only through the
// public host surface (Stressor, HostMachine::SetCoreFreq,
// CpuSched::SetBandwidthLive) and through the registered probe injection
// points (DropSample/CorruptSample), which the vsched-lint
// `fault-injection-point` rule confines to the designated probe call sites.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/time.h"
#include "src/fault/fault_plan.h"
#include "src/host/stressor.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace vsched {

class AdversaryDriver;
class HostMachine;
class Simulation;
class Vm;

// The compiled-in probe injection points. Each probe consults the injector
// at exactly one place; AuditVerify checks that queries only arrive from
// registered points.
enum class ProbePoint : int {
  kVcapWindow = 0,   // vcap heavy-prober capacity sample (per vCPU, per window)
  kPairLatency = 1,  // pair-probe cache-line transfer observation
  kVactTick = 2,     // vact guest-tick steal-jump observation
};

inline constexpr int kNumProbePoints = 3;

struct FaultStats {
  uint64_t steal_bursts = 0;
  uint64_t stressor_storms = 0;
  uint64_t freq_droops = 0;
  uint64_t bandwidth_jitters = 0;
  uint64_t samples_dropped = 0;
  uint64_t samples_corrupted = 0;

  uint64_t total_applied() const {
    return steal_bursts + stressor_storms + freq_droops + bandwidth_jitters + samples_dropped +
           samples_corrupted;
  }
};

class FaultInjector {
 public:
  // `vm` may be null when no guest is attached (bandwidth jitter is then
  // disabled). The injector must be destroyed before `sim`.
  FaultInjector(Simulation* sim, HostMachine* machine, Vm* vm, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Begins injecting per the plan. Arrival processes start at
  // max(now, plan.start) and stop issuing new interventions past
  // start + horizon (when horizon > 0).
  void Start();

  // Cancels pending injector events and ends all in-flight interventions
  // (stressors stopped, frequencies and bandwidths restored).
  void Stop();

  bool active() const { return active_; }
  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  // Total adversarial co-tenant activations (stressor attach events) across
  // the plan's adversary drivers. Kept separate from the FaultStats ledger:
  // adversaries are persistent workloads, not point interventions, and they
  // draw nothing from the injector's RNG stream (so enabling them never
  // perturbs the replay of the stochastic classes).
  uint64_t adversary_activations() const;

  // --- probe injection points ----------------------------------------------
  // Called by the probes (and only the probes) at the registered points.
  // Both are no-ops returning "no fault" whenever the injector is inactive
  // or the plan's probe-chaos class is disabled, so a null/quiet injector
  // leaves probe behaviour untouched.

  // True when the sample at `point` should be discarded entirely.
  bool DropSample(ProbePoint point);

  // Returns `value`, possibly scaled by up to plan.probe.corrupt_factor in
  // either direction.
  double CorruptSample(ProbePoint point, double value);

  // Read-only invariants, called under the src/base/audit.h gate: the plan
  // cursor (time of the last applied intervention) is monotone and never in
  // the future, the stats ledger matches the cursor's event count, probe
  // queries only arrive from registered points, and no intervention stays
  // open after Stop().
  void AuditVerify() const;

 private:
  friend struct FaultInjectorTestAccess;

  struct ActiveDroop {
    int core = -1;
    double prev_freq = 1.0;
    bool open = false;
  };
  struct ActiveBandwidth {
    int vcpu = -1;
    TimeNs orig_quota = 0;
    TimeNs orig_period = 0;
    bool open = false;
  };

  bool WithinHorizon(TimeNs now) const;
  TimeNs DrawDuration(const FaultArrivalSpec& spec);
  TimeNs DrawGap(const FaultArrivalSpec& spec);
  // Records an applied intervention at time `now` on the plan cursor.
  void NoteApplied(TimeNs now);
  // Schedules fn at now + DrawGap and tracks the event for Stop().
  template <typename F>
  void ArmArrival(const FaultArrivalSpec& spec, F&& fn);
  void Track(EventId id) { scheduled_.push_back(id); }

  void OnStealArrival();
  void OnStormArrival();
  void OnDroopArrival();
  void OnBandwidthArrival();

  void EndDroop(size_t index);
  void EndBandwidth(size_t index);
  void EndBandwidthLocked(ActiveBandwidth& b);

  Stressor* AcquireStressor(std::vector<std::unique_ptr<Stressor>>* pool, double weight, bool rt,
                            const char* prefix);

  Simulation* sim_;
  HostMachine* machine_;
  Vm* vm_;
  FaultPlan plan_;
  Rng rng_;
  bool active_ = false;

  FaultStats stats_;
  // Plan cursor: time of the most recent applied intervention and how many
  // have been applied. AuditVerify checks it against stats_ and now().
  TimeNs last_applied_time_ = -1;
  uint64_t events_applied_ = 0;
  // Bitmask of registered probe injection points; all compiled-in points are
  // registered at construction. Only the audit-test backdoor mutates this.
  uint32_t registered_points_ = 0;

  // Every event the injector ever schedules, cancelled en masse by Stop().
  // EventIds are generation-tagged, so cancelling already-fired ones is a
  // safe no-op.
  std::vector<EventId> scheduled_;

  // Victim hardware threads for the adversary drivers: the guest's vCPU
  // threads when a VM is attached, else the first host threads (a
  // tenant-sized slice) — see StartAdversaries.
  std::vector<HwThreadId> AdversaryVictims() const;
  void StartAdversaries();

  std::vector<std::unique_ptr<Stressor>> burst_pool_;
  std::vector<std::unique_ptr<Stressor>> storm_pool_;
  std::vector<std::unique_ptr<AdversaryDriver>> adversaries_;
  std::vector<ActiveDroop> droops_;
  std::vector<ActiveBandwidth> bandwidths_;
  std::vector<char> droop_active_core_;   // per-core nesting guard
  std::vector<char> bw_active_vcpu_;      // per-vCPU nesting guard

  // Liveness token for posted event closures (the PR-6 pattern, enforced by
  // vsched-lint's event-lifetime rule). Must be the last member so it
  // expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
