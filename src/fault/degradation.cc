#include "src/fault/degradation.h"

#include "src/base/check.h"

namespace vsched {

const char* DegradedComponentName(DegradedComponent c) {
  switch (c) {
    case DegradedComponent::kCapacity:
      return "capacity";
    case DegradedComponent::kTopology:
      return "topology";
    case DegradedComponent::kPlacement:
      return "placement";
    case DegradedComponent::kHarvest:
      return "harvest";
    case DegradedComponent::kBans:
      return "bans";
    case DegradedComponent::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

void DegradationTracker::SetState(DegradedComponent component, bool degraded, TimeNs now) {
  ComponentState& s = states_[static_cast<size_t>(component)];
  if (s.degraded == degraded) {
    return;
  }
  s.degraded = degraded;
  if (degraded) {
    s.since = now;
    ++transitions_;
  } else {
    VSCHED_CHECK(now >= s.since);
    s.accumulated += now - s.since;
  }
  events_.push_back(DegradationEvent{now, component, degraded});
}

bool DegradationTracker::IsDegraded(DegradedComponent component) const {
  return states_[static_cast<size_t>(component)].degraded;
}

bool DegradationTracker::AnyDegraded() const {
  for (const ComponentState& s : states_) {
    if (s.degraded) {
      return true;
    }
  }
  return false;
}

TimeNs DegradationTracker::TimeDegraded(DegradedComponent component, TimeNs now) const {
  const ComponentState& s = states_[static_cast<size_t>(component)];
  TimeNs total = s.accumulated;
  if (s.degraded && now > s.since) {
    total += now - s.since;
  }
  return total;
}

}  // namespace vsched
