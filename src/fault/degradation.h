// Degradation bookkeeping for the graceful-fallback paths in src/core/.
//
// Each vSched component that can fall back (capacity publishing, topology
// placement, BVS placement, IVH harvesting, RWC bans) registers state
// transitions here; the tracker timestamps them and accumulates time spent
// degraded, so chaos runs can surface "how degraded was this cell" through
// the runner's metrics without the components growing their own ledgers.
#ifndef SRC_FAULT_DEGRADATION_H_
#define SRC_FAULT_DEGRADATION_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/base/time.h"

namespace vsched {

enum class DegradedComponent : int {
  kCapacity = 0,    // vcap low confidence → pessimistic capacity published
  kTopology = 1,    // vtop low confidence → topology-agnostic (flat UMA) domains
  kPlacement = 2,   // BVS degraded → guest-default placement (-1 fallback)
  kHarvest = 3,     // IVH degraded → harvesting paused
  kBans = 4,        // RWC degraded → ban set frozen
  kQuarantine = 5,  // anti-evasion: >= 1 vCPU's estimates replaced by the
                    // corroborated off-window view (implausible duty cycle)
};

inline constexpr int kNumDegradedComponents = 6;

const char* DegradedComponentName(DegradedComponent c);

struct DegradationEvent {
  TimeNs at = 0;
  DegradedComponent component = DegradedComponent::kCapacity;
  bool degraded = false;  // true = entered degraded state, false = recovered
};

class DegradationTracker {
 public:
  // Records a state change for `component` at time `now`. No-op when the
  // state is unchanged, so callers can report unconditionally each window.
  void SetState(DegradedComponent component, bool degraded, TimeNs now);

  bool IsDegraded(DegradedComponent component) const;
  bool AnyDegraded() const;

  // Total entries into the degraded state, across all components.
  uint64_t transitions() const { return transitions_; }

  // Cumulative simulated time spent degraded by `component`; components
  // still degraded accrue up to `now`.
  TimeNs TimeDegraded(DegradedComponent component, TimeNs now) const;

  const std::vector<DegradationEvent>& events() const { return events_; }

 private:
  struct ComponentState {
    bool degraded = false;
    TimeNs since = 0;        // time of the last entry into degraded
    TimeNs accumulated = 0;  // closed degraded intervals
  };

  std::array<ComponentState, kNumDegradedComponents> states_;
  std::vector<DegradationEvent> events_;
  uint64_t transitions_ = 0;
};

}  // namespace vsched

#endif  // SRC_FAULT_DEGRADATION_H_
