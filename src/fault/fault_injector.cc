#include "src/fault/fault_injector.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/adversary/adversary.h"
#include "src/base/audit.h"
#include "src/base/check.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {

namespace {
constexpr uint32_t kAllProbePoints = (1u << kNumProbePoints) - 1u;
// Floor for any imposed or scaled bandwidth quota, so jitter never creates a
// quota so small the vCPU effectively never runs.
constexpr TimeNs kMinJitterQuota = UsToNs(100);
}  // namespace

FaultInjector::FaultInjector(Simulation* sim, HostMachine* machine, Vm* vm, FaultPlan plan)
    : sim_(sim),
      machine_(machine),
      vm_(vm),
      plan_(std::move(plan)),
      rng_(sim->ForkRng()),
      registered_points_(kAllProbePoints) {
  droop_active_core_.assign(static_cast<size_t>(machine_->topology().num_cores()), 0);
  bw_active_vcpu_.assign(vm_ != nullptr ? static_cast<size_t>(vm_->num_vcpus()) : 0, 0);
}

FaultInjector::~FaultInjector() { Stop(); }

bool FaultInjector::WithinHorizon(TimeNs now) const {
  if (now < plan_.start) {
    return false;
  }
  return plan_.horizon <= 0 || now <= plan_.start + plan_.horizon;
}

TimeNs FaultInjector::DrawGap(const FaultArrivalSpec& spec) {
  const double gap_sec = rng_.Exponential(1.0 / spec.rate_per_sec);
  const auto gap = static_cast<TimeNs>(gap_sec * static_cast<double>(kNsPerSec));
  return std::max<TimeNs>(1, gap);
}

TimeNs FaultInjector::DrawDuration(const FaultArrivalSpec& spec) {
  return std::max<TimeNs>(1, rng_.UniformInt(spec.min_duration, spec.max_duration));
}

void FaultInjector::NoteApplied(TimeNs now) {
  VSCHED_AUDIT_CHECK(now >= last_applied_time_, "fault: plan cursor moved backwards");
  last_applied_time_ = now;
  ++events_applied_;
}

template <typename F>
void FaultInjector::ArmArrival(const FaultArrivalSpec& spec, F&& fn) {
  const TimeNs base = std::max(sim_->now(), plan_.start);
  const TimeNs at = base + DrawGap(spec);
  if (!WithinHorizon(at)) {
    return;
  }
  Track(sim_->At(at, std::forward<F>(fn)));
}

void FaultInjector::Start() {
  if (active_ || plan_.Empty()) {
    return;
  }
  active_ = true;
  // Arm in a fixed class order so the RNG draw sequence is plan-stable.
  if (plan_.steal.arrival.active()) {
    ArmArrival(plan_.steal.arrival, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnStealArrival();
  });
  }
  if (plan_.storm.arrival.active()) {
    ArmArrival(plan_.storm.arrival, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnStormArrival();
  });
  }
  if (plan_.droop.arrival.active()) {
    ArmArrival(plan_.droop.arrival, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnDroopArrival();
  });
  }
  if (plan_.bandwidth.arrival.active() && vm_ != nullptr && vm_->num_vcpus() > 0) {
    ArmArrival(plan_.bandwidth.arrival, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnBandwidthArrival();
  });
  }
  // Adversary drivers draw nothing from rng_, so arming them after the
  // stochastic classes leaves those classes' replay untouched.
  if (plan_.adversary.active()) {
    StartAdversaries();
  }
}

std::vector<HwThreadId> FaultInjector::AdversaryVictims() const {
  std::vector<HwThreadId> victims;
  if (vm_ != nullptr) {
    victims.reserve(static_cast<size_t>(vm_->num_vcpus()));
    for (int i = 0; i < vm_->num_vcpus(); ++i) {
      victims.push_back(vm_->thread(i).tid());
    }
    return victims;
  }
  // No guest attached (fleet hosts): the adversarial tenant spreads one
  // attacker task per hardware thread, so every co-located tenant vCPU has a
  // hostile sibling regardless of where the placement policy lands it.
  const int n = machine_->num_threads();
  for (int t = 0; t < n; ++t) {
    victims.push_back(static_cast<HwThreadId>(t));
  }
  return victims;
}

void FaultInjector::StartAdversaries() {
  if (adversaries_.empty()) {
    adversaries_ = MakeAdversaries(sim_, machine_, AdversaryVictims(), plan_.adversary);
  }
  const TimeNs end = plan_.horizon > 0 ? plan_.start + plan_.horizon : 0;
  for (auto& driver : adversaries_) {
    driver->Start(plan_.start, end);
  }
}

uint64_t FaultInjector::adversary_activations() const {
  uint64_t total = 0;
  for (const auto& driver : adversaries_) {
    total += driver->activations();
  }
  return total;
}

void FaultInjector::Stop() {
  for (EventId id : scheduled_) {
    sim_->Cancel(id);
  }
  scheduled_.clear();
  for (ActiveDroop& d : droops_) {
    if (d.open) {
      machine_->SetCoreFreq(d.core, d.prev_freq);
      d.open = false;
      droop_active_core_[static_cast<size_t>(d.core)] = 0;
    }
  }
  for (ActiveBandwidth& b : bandwidths_) {
    if (b.open) {
      EndBandwidthLocked(b);
    }
  }
  for (auto& s : burst_pool_) {
    s->Stop();
  }
  for (auto& s : storm_pool_) {
    s->Stop();
  }
  for (auto& driver : adversaries_) {
    driver->Stop();
  }
  active_ = false;
  if (audit::Enabled()) {
    AuditVerify();
  }
}

Stressor* FaultInjector::AcquireStressor(std::vector<std::unique_ptr<Stressor>>* pool,
                                         double weight, bool rt, const char* prefix) {
  for (auto& s : *pool) {
    if (!s->attached()) {
      return s.get();
    }
  }
  std::string name = std::string(prefix) + "-" + std::to_string(pool->size());
  pool->push_back(std::make_unique<Stressor>(sim_, std::move(name), weight, rt));
  return pool->back().get();
}

void FaultInjector::OnStealArrival() {
  if (!active_) {
    return;
  }
  const TimeNs now = sim_->now();
  if (!WithinHorizon(now)) {
    return;
  }
  const TimeNs dur = DrawDuration(plan_.steal.arrival);
  const auto tid = static_cast<HwThreadId>(rng_.UniformInt(0, machine_->num_threads() - 1));
  Stressor* s = AcquireStressor(&burst_pool_, plan_.steal.weight, plan_.steal.rt, "fault-burst");
  s->Start(machine_, tid);
  Track(sim_->After(dur, [s, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    s->Stop();
  }));
  ++stats_.steal_bursts;
  NoteApplied(now);
  if (audit::Enabled()) {
    AuditVerify();
  }
  ArmArrival(plan_.steal.arrival, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnStealArrival();
  });
}

void FaultInjector::OnStormArrival() {
  if (!active_) {
    return;
  }
  const TimeNs now = sim_->now();
  if (!WithinHorizon(now)) {
    return;
  }
  const TimeNs dur = DrawDuration(plan_.storm.arrival);
  const auto count =
      static_cast<int>(rng_.UniformInt(plan_.storm.min_stressors, plan_.storm.max_stressors));
  std::vector<Stressor*> started;
  started.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto tid = static_cast<HwThreadId>(rng_.UniformInt(0, machine_->num_threads() - 1));
    Stressor* s = AcquireStressor(&storm_pool_, /*weight=*/1024.0, /*rt=*/false, "fault-storm");
    s->StartDutyCycle(machine_, tid, plan_.storm.duty_on, plan_.storm.duty_off);
    started.push_back(s);
  }
  Track(sim_->After(dur, [started, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    for (Stressor* s : started) {
      s->Stop();
    }
  }));
  ++stats_.stressor_storms;
  NoteApplied(now);
  if (audit::Enabled()) {
    AuditVerify();
  }
  ArmArrival(plan_.storm.arrival, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnStormArrival();
  });
}

void FaultInjector::OnDroopArrival() {
  if (!active_) {
    return;
  }
  const TimeNs now = sim_->now();
  if (!WithinHorizon(now)) {
    return;
  }
  // Draw every parameter up front so the RNG stream has the same shape
  // whether or not the intervention is skipped by the nesting guard.
  const TimeNs dur = DrawDuration(plan_.droop.arrival);
  const auto core = static_cast<int>(rng_.UniformInt(0, machine_->topology().num_cores() - 1));
  const double mult = rng_.Uniform(plan_.droop.min_multiplier, plan_.droop.max_multiplier);
  if (droop_active_core_[static_cast<size_t>(core)] == 0) {
    droops_.push_back(ActiveDroop{core, machine_->CoreFreq(core), true});
    droop_active_core_[static_cast<size_t>(core)] = 1;
    machine_->SetCoreFreq(core, droops_.back().prev_freq * mult);
    const size_t index = droops_.size() - 1;
    Track(sim_->After(dur, [this, index, alive = std::weak_ptr<const bool>(alive_)] {
      if (alive.expired()) {
        return;
      }
      EndDroop(index);
    }));
    ++stats_.freq_droops;
    NoteApplied(now);
    if (audit::Enabled()) {
      AuditVerify();
    }
  }
  ArmArrival(plan_.droop.arrival, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnDroopArrival();
  });
}

void FaultInjector::EndDroop(size_t index) {
  ActiveDroop& d = droops_[index];
  if (!d.open) {
    return;
  }
  machine_->SetCoreFreq(d.core, d.prev_freq);
  d.open = false;
  droop_active_core_[static_cast<size_t>(d.core)] = 0;
}

void FaultInjector::OnBandwidthArrival() {
  if (!active_) {
    return;
  }
  const TimeNs now = sim_->now();
  if (!WithinHorizon(now)) {
    return;
  }
  const TimeNs dur = DrawDuration(plan_.bandwidth.arrival);
  const auto vcpu = static_cast<int>(rng_.UniformInt(0, vm_->num_vcpus() - 1));
  const double scale = rng_.Uniform(plan_.bandwidth.min_scale, plan_.bandwidth.max_scale);
  if (bw_active_vcpu_[static_cast<size_t>(vcpu)] == 0) {
    VcpuThread& t = vm_->thread(vcpu);
    const TimeNs orig_quota = t.has_bandwidth() ? t.bw_quota() : 0;
    const TimeNs orig_period = t.has_bandwidth() ? t.bw_period() : 0;
    const TimeNs period = orig_period > 0 ? orig_period : plan_.bandwidth.imposed_period;
    const TimeNs base_quota = orig_period > 0 ? orig_quota : period;
    const auto quota = std::max<TimeNs>(
        kMinJitterQuota, static_cast<TimeNs>(static_cast<double>(base_quota) * scale));
    machine_->sched(t.tid()).SetBandwidthLive(&t, quota, period);
    bandwidths_.push_back(ActiveBandwidth{vcpu, orig_quota, orig_period, true});
    bw_active_vcpu_[static_cast<size_t>(vcpu)] = 1;
    const size_t index = bandwidths_.size() - 1;
    Track(sim_->After(dur, [this, index, alive = std::weak_ptr<const bool>(alive_)] {
      if (alive.expired()) {
        return;
      }
      EndBandwidth(index);
    }));
    ++stats_.bandwidth_jitters;
    NoteApplied(now);
    if (audit::Enabled()) {
      AuditVerify();
    }
  }
  ArmArrival(plan_.bandwidth.arrival, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnBandwidthArrival();
  });
}

void FaultInjector::EndBandwidth(size_t index) {
  ActiveBandwidth& b = bandwidths_[index];
  if (!b.open) {
    return;
  }
  EndBandwidthLocked(b);
}

void FaultInjector::EndBandwidthLocked(ActiveBandwidth& b) {
  VcpuThread& t = vm_->thread(b.vcpu);
  machine_->sched(t.tid()).SetBandwidthLive(&t, b.orig_quota, b.orig_period);
  b.open = false;
  bw_active_vcpu_[static_cast<size_t>(b.vcpu)] = 0;
}

bool FaultInjector::DropSample(ProbePoint point) {
  VSCHED_AUDIT_CHECK((registered_points_ >> static_cast<int>(point)) & 1u,
                     "fault: probe query from unregistered injection point");
  if (!active_ || plan_.probe.drop_probability <= 0.0) {
    return false;
  }
  const TimeNs now = sim_->now();
  if (!WithinHorizon(now)) {
    return false;
  }
  if (!rng_.Bernoulli(plan_.probe.drop_probability)) {
    return false;
  }
  ++stats_.samples_dropped;
  NoteApplied(now);
  return true;
}

double FaultInjector::CorruptSample(ProbePoint point, double value) {
  VSCHED_AUDIT_CHECK((registered_points_ >> static_cast<int>(point)) & 1u,
                     "fault: probe query from unregistered injection point");
  if (!active_ || plan_.probe.corrupt_probability <= 0.0) {
    return value;
  }
  const TimeNs now = sim_->now();
  if (!WithinHorizon(now)) {
    return value;
  }
  if (!rng_.Bernoulli(plan_.probe.corrupt_probability)) {
    return value;
  }
  const double factor = std::max(1.0, plan_.probe.corrupt_factor);
  const double scale =
      rng_.Bernoulli(0.5) ? rng_.Uniform(1.0, factor) : 1.0 / rng_.Uniform(1.0, factor);
  ++stats_.samples_corrupted;
  NoteApplied(now);
  return value * scale;
}

void FaultInjector::AuditVerify() const {
  VSCHED_AUDIT_CHECK(last_applied_time_ <= sim_->now(), "fault: plan cursor is in the future");
  VSCHED_AUDIT_CHECK(events_applied_ == stats_.total_applied(),
                     "fault: plan cursor disagrees with the stats ledger");
  VSCHED_AUDIT_CHECK(registered_points_ == kAllProbePoints,
                     "fault: a probe injection point was unregistered");
  size_t open_droops = 0;
  for (const ActiveDroop& d : droops_) {
    open_droops += d.open ? 1 : 0;
  }
  size_t open_bandwidths = 0;
  for (const ActiveBandwidth& b : bandwidths_) {
    open_bandwidths += b.open ? 1 : 0;
  }
  VSCHED_AUDIT_CHECK(open_droops <= stats_.freq_droops,
                     "fault: more open droops than ever applied");
  VSCHED_AUDIT_CHECK(open_bandwidths <= stats_.bandwidth_jitters,
                     "fault: more open bandwidth jitters than ever applied");
  if (!active_) {
    VSCHED_AUDIT_CHECK(open_droops == 0 && open_bandwidths == 0,
                       "fault: intervention still open after Stop()");
    for (const auto& s : burst_pool_) {
      VSCHED_AUDIT_CHECK(!s->attached(), "fault: burst stressor still attached after Stop()");
    }
    for (const auto& s : storm_pool_) {
      VSCHED_AUDIT_CHECK(!s->attached(), "fault: storm stressor still attached after Stop()");
    }
  }
}

}  // namespace vsched
