// Declarative chaos schedules for deterministic fault injection.
//
// A FaultPlan names a set of host-side perturbation classes (steal bursts,
// stressor storms, frequency droops, bandwidth jitter, probe-sample chaos)
// with Poisson arrival rates and duration ranges. The plan is pure data; the
// FaultInjector turns it into concrete seeded events, so the same
// (seed, plan) pair always replays byte-identically.
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "src/adversary/adversary_spec.h"
#include "src/base/time.h"

namespace vsched {

// Poisson arrival process: interventions arrive with exponential gaps of
// mean 1/rate_per_sec, each lasting uniform [min_duration, max_duration].
// rate_per_sec == 0 disables the class.
struct FaultArrivalSpec {
  double rate_per_sec = 0.0;
  TimeNs min_duration = 0;
  TimeNs max_duration = 0;

  bool active() const { return rate_per_sec > 0.0; }
};

// A host RT task lands on a random hardware thread and monopolises it for
// the burst duration — the straggler-maker of PAPER.md §2.3 (Figure 4 left).
struct StealBurstSpec {
  FaultArrivalSpec arrival;
  double weight = 4096.0;
  bool rt = true;
};

// A batch of duty-cycled CFS stressors arrives at once on random hardware
// threads (co-tenant arrival storm, §5.8 transient interference).
struct StressorStormSpec {
  FaultArrivalSpec arrival;
  int min_stressors = 2;
  int max_stressors = 6;
  TimeNs duty_on = MsToNs(3);
  TimeNs duty_off = MsToNs(1);
};

// DVFS droop: a random core's frequency multiplier is scaled down for the
// duration, then restored.
struct FreqDroopSpec {
  FaultArrivalSpec arrival;
  double min_multiplier = 0.5;
  double max_multiplier = 0.9;
};

// CFS-bandwidth jitter: a random vCPU's quota is scaled (or, for an
// uncapped vCPU, a cap of scale×imposed_period is imposed) for the
// duration, then restored.
struct BandwidthJitterSpec {
  FaultArrivalSpec arrival;
  double min_scale = 0.3;
  double max_scale = 0.8;
  TimeNs imposed_period = MsToNs(100);
};

// Probe-sample chaos, applied at the registered injection points: a sample
// is dropped with drop_probability, else corrupted (scaled by up to
// corrupt_factor in either direction) with corrupt_probability.
struct ProbeChaosSpec {
  double drop_probability = 0.0;
  double corrupt_probability = 0.0;
  double corrupt_factor = 3.0;

  bool active() const { return drop_probability > 0.0 || corrupt_probability > 0.0; }
};

// Adversarial co-tenant attacks (strategic, not merely noisy) ride in the
// plan as an AdversarySpec; the specs and their drivers live in
// src/adversary/ (see adversary_spec.h for the taxonomy).

struct FaultPlan {
  std::string name;

  // Injection is quiescent before `start` and (when horizon > 0) after
  // start + horizon; interventions in flight at the horizon still end.
  TimeNs start = 0;
  TimeNs horizon = 0;

  StealBurstSpec steal;
  StressorStormSpec storm;
  FreqDroopSpec droop;
  BandwidthJitterSpec bandwidth;
  ProbeChaosSpec probe;
  AdversarySpec adversary;

  bool Empty() const {
    return !steal.arrival.active() && !storm.arrival.active() && !droop.arrival.active() &&
           !bandwidth.arrival.active() && !probe.active() && !adversary.active();
  }
};

// Canned plans, addressable from the CLI and the scenario language. "none"
// is the empty plan. Returns false when `name` is unknown.
bool LookupFaultPlan(const std::string& name, FaultPlan* out);

// Names of all canned plans, in a fixed order ("none" first).
std::vector<std::string> FaultPlanNames();

}  // namespace vsched

#endif  // SRC_FAULT_FAULT_PLAN_H_
