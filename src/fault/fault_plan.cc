#include "src/fault/fault_plan.h"

namespace vsched {

namespace {

FaultPlan NonePlan() {
  FaultPlan plan;
  plan.name = "none";
  return plan;
}

// Steal bursts plus stressor storms plus heavy probe chaos: the interference
// profile the degradation paths are designed against (acceptance scenario).
// Probe rates are chosen so window confidence (accepted=1.0, rejected=0.25,
// dropped=0.0) falls below the default low-confidence threshold of 0.5 and
// the core demonstrably enters its fallback modes.
FaultPlan InterferenceBurstPlan() {
  FaultPlan plan;
  plan.name = "interference-burst";
  plan.steal.arrival = {/*rate_per_sec=*/4.0, MsToNs(20), MsToNs(80)};
  plan.storm.arrival = {/*rate_per_sec=*/1.5, MsToNs(50), MsToNs(150)};
  plan.probe.drop_probability = 0.55;
  plan.probe.corrupt_probability = 0.25;
  plan.probe.corrupt_factor = 5.0;
  return plan;
}

FaultPlan BandwidthJitterPlan() {
  FaultPlan plan;
  plan.name = "bandwidth-jitter";
  plan.bandwidth.arrival = {/*rate_per_sec=*/3.0, MsToNs(30), MsToNs(120)};
  return plan;
}

FaultPlan FreqDroopPlan() {
  FaultPlan plan;
  plan.name = "freq-droop";
  plan.droop.arrival = {/*rate_per_sec=*/2.0, MsToNs(40), MsToNs(200)};
  return plan;
}

FaultPlan ProbeChaosPlan() {
  FaultPlan plan;
  plan.name = "probe-chaos";
  plan.probe.drop_probability = 0.50;
  plan.probe.corrupt_probability = 0.40;
  plan.probe.corrupt_factor = 6.0;
  return plan;
}

// Every class at once, at moderate rates: the stress plan for chaos sweeps.
FaultPlan EverythingPlan() {
  FaultPlan plan;
  plan.name = "everything";
  plan.steal.arrival = {/*rate_per_sec=*/2.0, MsToNs(20), MsToNs(60)};
  plan.storm.arrival = {/*rate_per_sec=*/1.0, MsToNs(40), MsToNs(120)};
  plan.droop.arrival = {/*rate_per_sec=*/1.5, MsToNs(30), MsToNs(150)};
  plan.bandwidth.arrival = {/*rate_per_sec=*/1.5, MsToNs(30), MsToNs(100)};
  plan.probe.drop_probability = 0.10;
  plan.probe.corrupt_probability = 0.10;
  plan.probe.corrupt_factor = 4.0;
  return plan;
}

// Adversarial co-tenant plans (ROADMAP item 2, src/adversary/). Each enables
// exactly one attack class with the defaults the deception-matrix sweep is
// calibrated against; "adversary-all" runs the three at once.
FaultPlan AdversaryStealPlan() {
  FaultPlan plan;
  plan.name = "adversary-steal";
  plan.adversary.steal.enabled = true;
  return plan;
}

FaultPlan AdversaryEvadePlan() {
  FaultPlan plan;
  plan.name = "adversary-evade";
  plan.adversary.evade.enabled = true;
  // Hit half the vCPUs so the untouched half keeps the medians honest —
  // the asymmetric straggler shape RWC is supposed to ban.
  plan.adversary.evade.victim_vcpus = -1;
  return plan;
}

FaultPlan AdversaryBurstPlan() {
  FaultPlan plan;
  plan.name = "adversary-burst";
  plan.adversary.burst.enabled = true;
  return plan;
}

FaultPlan AdversaryAllPlan() {
  FaultPlan plan;
  plan.name = "adversary-all";
  plan.adversary.steal.enabled = true;
  plan.adversary.evade.enabled = true;
  plan.adversary.evade.victim_vcpus = -1;
  plan.adversary.burst.enabled = true;
  return plan;
}

}  // namespace

bool LookupFaultPlan(const std::string& name, FaultPlan* out) {
  if (name == "none") {
    *out = NonePlan();
  } else if (name == "interference-burst") {
    *out = InterferenceBurstPlan();
  } else if (name == "bandwidth-jitter") {
    *out = BandwidthJitterPlan();
  } else if (name == "freq-droop") {
    *out = FreqDroopPlan();
  } else if (name == "probe-chaos") {
    *out = ProbeChaosPlan();
  } else if (name == "everything") {
    *out = EverythingPlan();
  } else if (name == "adversary-steal") {
    *out = AdversaryStealPlan();
  } else if (name == "adversary-evade") {
    *out = AdversaryEvadePlan();
  } else if (name == "adversary-burst") {
    *out = AdversaryBurstPlan();
  } else if (name == "adversary-all") {
    *out = AdversaryAllPlan();
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> FaultPlanNames() {
  return {"none",           "interference-burst", "bandwidth-jitter", "freq-droop",
          "probe-chaos",    "everything",         "adversary-steal",  "adversary-evade",
          "adversary-burst", "adversary-all"};
}

}  // namespace vsched
