#include "src/sim/simulation.h"

#include <memory>
#include <utility>

namespace vsched {

void Simulation::PeriodicHandle::Arm() {
  if (cancelled_) {
    return;
  }
  pending_ = sim_->After(period_, [this] {
    if (cancelled_) {
      return;
    }
    fn_();
    Arm();
  });
}

Simulation::PeriodicHandle* Simulation::Every(TimeNs period, std::function<void()> fn) {
  auto handle = std::make_unique<PeriodicHandle>(this, period, std::move(fn));
  PeriodicHandle* raw = handle.get();
  periodic_handles_.push_back(std::move(handle));
  raw->Arm();
  return raw;
}

void Simulation::CancelPeriodic(PeriodicHandle* handle) {
  handle->cancelled_ = true;
  Cancel(handle->pending_);
}

}  // namespace vsched
