#include "src/sim/simulation.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace vsched {

void Simulation::RunUntil(TimeNs deadline) {
  const TimeNs before = queue_.now();
  // Interleave the two backends. At equal timestamps the wheel's timer band
  // fires first (tw <= limit includes tw == tq), so periodic timers always
  // precede heap events at their instant — in both tickless modes, which is
  // what keeps the heap's sequence-number stream mode-invariant.
  for (;;) {
    const TimeNs tq = queue_.NextEventTime();
    const TimeNs limit = std::min(tq, deadline);
    const TimeNs tw = wheel_.NextDeadlineAtMost(limit);
    if (tw <= limit) {
      queue_.AdvanceClockTo(tw);
      ++events_dispatched_;
      if (event_budget_ != 0 && events_dispatched_ > event_budget_) {
        throw SimBudgetExceeded(event_budget_);
      }
      wheel_.RunOne(tw);
      if (audit::Enabled()) {
        wheel_.AuditVerify();
      }
      continue;
    }
    if (tq > deadline) {
      break;
    }
    last_heap_exec_time_ = tq;
    ++events_dispatched_;
    if (event_budget_ != 0 && events_dispatched_ > event_budget_) {
      throw SimBudgetExceeded(event_budget_);
    }
    queue_.RunOne();
  }
  queue_.AdvanceClockTo(deadline);
  VSCHED_AUDIT_CHECK(queue_.now() >= before, "simulation clock moved backwards");
  VSCHED_AUDIT_CHECK(deadline <= before || queue_.now() == deadline,
                     "RunUntil did not land on its deadline");
}

Simulation::PeriodicHandle* Simulation::Every(TimeNs period, std::function<void()> fn) {
  VSCHED_CHECK(period > 0);
  auto handle = std::make_unique<PeriodicHandle>(this, period, std::move(fn));
  PeriodicHandle* raw = handle.get();
  periodic_handles_.push_back(std::move(handle));
  // PeriodicHandle is Simulation-owned (periodic_handles_) and outlives every
  // timer the simulation can fire, so the raw capture cannot dangle.
  // vsched-lint: allow(event-lifetime)
  raw->timer_ = CreateTimer([raw] {
    if (raw->cancelled_) {
      return;
    }
    raw->fn_();
    if (!raw->cancelled_) {
      raw->sim_->ArmTimerAfter(raw->timer_, raw->period_);
    }
  });
  ArmTimerAfter(raw->timer_, period);
  return raw;
}

void Simulation::CancelPeriodic(PeriodicHandle* handle) {
  handle->cancelled_ = true;
  wheel_.Cancel(handle->timer_);
}

}  // namespace vsched
