#include "src/sim/simulation.h"

#include <memory>
#include <vector>

namespace vsched {
namespace {

// Periodic handles live until process exit; they are tiny and this keeps
// pointers stable for callers that cancel much later.
std::vector<std::unique_ptr<Simulation::PeriodicHandle>>& HandlePool() {
  static std::vector<std::unique_ptr<Simulation::PeriodicHandle>> pool;
  return pool;
}

}  // namespace

void Simulation::PeriodicHandle::Arm() {
  if (cancelled_) {
    return;
  }
  pending_ = sim_->After(period_, [this] {
    if (cancelled_) {
      return;
    }
    fn_();
    Arm();
  });
}

Simulation::PeriodicHandle* Simulation::Every(TimeNs period, std::function<void()> fn) {
  auto handle = std::make_unique<PeriodicHandle>(this, period, std::move(fn));
  PeriodicHandle* raw = handle.get();
  HandlePool().push_back(std::move(handle));
  raw->Arm();
  return raw;
}

void Simulation::CancelPeriodic(PeriodicHandle* handle) {
  handle->cancelled_ = true;
  Cancel(handle->pending_);
}

}  // namespace vsched
