// Hierarchical timing wheel for periodic and near-future timers.
//
// Linux's kernel/time/timer.c popularised this layout: levels of 64 buckets
// each, where level k buckets span 2^(10+6k) ns. Arming hashes a deadline to
// a bucket in O(1); as the dispatch cursor reaches a bucket at level k its
// timers cascade down to level k-1 (or into a small ready heap once they are
// inside level 0's horizon). Periodic re-arms — the simulator's dominant
// timer pattern after the tickless work — therefore never touch the main
// 4-ary event heap at all.
//
// Determinism contract. The wheel forms a "timer band" that the Simulation
// run loop drains *before* heap events at the same timestamp. Within the
// band, timers fire in (deadline, TimerId) order; TimerIds are assigned at
// Register() time and are stable across re-arms, so a construction-order
// registration sequence yields the same dispatch order whether or not any
// individual firing was elided in between (an elided firing schedules
// nothing and mutates nothing, so it cannot shift its neighbours). FIFO
// among same-deadline timers falls out of registration order the same way
// the heap's sequence numbers provided it.
//
// Cascades are deterministic: expanding a bucket re-inserts its timers in
// slot order, and slots only permute through explicit Cancel calls which are
// themselves deterministic. Cancel in a bucket is O(1) swap-remove via
// per-timer (level, bucket, slot) back-pointers; cancel in the ready heap is
// lazy (an epoch bump invalidates the entry in place).
#ifndef SRC_SIM_TIMER_WHEEL_H_
#define SRC_SIM_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/base/perf_counters.h"
#include "src/base/time.h"
#include "src/sim/event_callback.h"

namespace vsched {

// Stable handle for a registered timer. 0 is never a valid id.
using TimerId = uint32_t;
inline constexpr TimerId kInvalidTimerId = 0;

class TimerWheel {
 public:
  static constexpr int kLevels = 8;
  static constexpr int kLevelBits = 6;           // 64 buckets per level
  static constexpr int kBuckets = 1 << kLevelBits;
  static constexpr int kShift0 = 10;             // level-0 granularity: 1024 ns

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Registers a timer slot with its callback. The callback is stored once
  // and reused across every re-arm, so steady-state arming allocates
  // nothing. Ids are recycled LIFO by Unregister, which keeps id sequences
  // identical between runs that register/unregister in the same order.
  TimerId Register(EventCallback fn);

  // Cancels (if armed) and retires the id for reuse.
  void Unregister(TimerId id);

  // Arms (or re-arms) the timer to fire at `when`. `when` must not precede
  // the most recently dispatched deadline — the wheel never re-opens the
  // past. Arming at the currently dispatching timestamp is allowed; the
  // timer fires this instant iff its id is still ahead of the dispatch
  // position (see StillFiresAt).
  void Arm(TimerId id, TimeNs when);

  // Arms each (id, when) pair in index order — observably equivalent to N
  // Arm() calls (the band fires in (deadline, TimerId) order, which no
  // insertion order can change), but pays the lower-bound update and the
  // perf-counter traffic once per batch instead of per timer.
  void ArmBatch(const std::vector<std::pair<TimerId, TimeNs>>& items);

  // Disarms the timer. Returns true if it was armed.
  bool Cancel(TimerId id);

  bool IsArmed(TimerId id) const;

  // Deadline of an armed timer; kTimeInfinity if unarmed.
  TimeNs ArmedAt(TimerId id) const;

  // Returns the exact earliest pending deadline if it is <= `limit`, else
  // kTimeInfinity. Cascades buckets as needed, but never advances the
  // cursor past `limit` (or past the earliest ready deadline), so probing
  // with a near horizon stays cheap even when far-future timers exist.
  TimeNs NextDeadlineAtMost(TimeNs limit);

  // Pops and runs the earliest timer, which must have deadline `when` as
  // just returned by NextDeadlineAtMost. The callback may re-arm its own or
  // other timers.
  void RunOne(TimeNs when);

  // True if a timer re-armed *now* for deadline `when` (== the timestamp
  // currently being dispatched) would still fire this instant: the wheel
  // has not yet dispatched any timer at `when` with an id >= `id`. Used by
  // tickless re-arm logic to decide between "fire in natural band position
  // now" and "next grid point".
  bool StillFiresAt(TimerId id, TimeNs when) const {
    return !(fired_any_ && last_fire_when_ == when && last_fire_id_ >= id);
  }

  size_t ArmedCount() const { return armed_count_; }
  uint64_t fired_count() const { return fired_; }

  // Read-only invariant sweep (see src/base/audit.h): bucket membership
  // matches each deadline's level/bucket hash, occupancy bitmaps agree with
  // bucket contents, back-pointers are self-consistent, no armed timer is
  // lost or duplicated across cascades, and every live deadline is at or
  // after the last dispatched one (monotone dispatch).
  void AuditVerify() const;

 private:
  friend struct AuditTestAccess;

  enum class State : uint8_t { kIdle, kBucket, kReady };

  struct Timer {
    EventCallback fn;
    TimeNs deadline = kTimeInfinity;
    uint32_t epoch = 0;  // bumped on every arm/cancel/fire: invalidates ready entries
    State state = State::kIdle;
    bool registered = false;
    int8_t level = -1;
    uint8_t bucket = 0;
    uint32_t slot = 0;
  };

  // Ready heap entry. Ordered by (deadline, id) only: epochs differ between
  // elided and non-elided runs, but at most one entry per (deadline, id) is
  // live at a time, so their relative order among stale twins is never
  // observable.
  struct ReadyEntry {
    TimeNs deadline;
    TimerId id;
    uint32_t epoch;
  };

  static constexpr int Shift(int level) { return kShift0 + level * kLevelBits; }
  // Width of one bucket at `level`, in ns.
  static constexpr TimeNs BucketWidth(int level) { return TimeNs{1} << Shift(level); }

  Timer& At(TimerId id) { return timers_[id - 1]; }
  const Timer& At(TimerId id) const { return timers_[id - 1]; }

  std::vector<uint32_t>& Bucket(int level, int bucket) {
    return buckets_[static_cast<size_t>(level) * kBuckets + static_cast<size_t>(bucket)];
  }
  const std::vector<uint32_t>& Bucket(int level, int bucket) const {
    return buckets_[static_cast<size_t>(level) * kBuckets + static_cast<size_t>(bucket)];
  }

  // Places an armed timer into the right bucket (or the ready heap) given
  // the current cursor.
  void Insert(TimerId id, TimeNs when);
  void PushReady(TimerId id, TimeNs when);
  // Removes the timer from its bucket (state kBucket only).
  void RemoveFromBucket(TimerId id);
  // Drops stale ready entries; returns the earliest live ready deadline or
  // kTimeInfinity.
  TimeNs PruneReadyMin();
  // Moves every timer of bucket (level, b) — whose start is `start` ==
  // cursor_ after the caller advanced it — down a level or into ready.
  void ExpandBucket(int level, int bucket);
  // Absolute start time of the lap of bucket `b` at `level` that is at or
  // after the cursor (a bucket whose current-lap start has been passed
  // belongs to the next lap; an exactly-cursor-aligned start counts as the
  // current lap).
  TimeNs BucketStart(int level, int bucket) const;

  // deque: callbacks run in place out of a Timer slot, and a callback may
  // Register() new timers — slot addresses must survive growth.
  std::deque<Timer> timers_;
  std::vector<TimerId> free_ids_;  // LIFO recycling
  std::vector<uint32_t> buckets_[static_cast<size_t>(kLevels) * kBuckets];
  uint64_t occupancy_[kLevels] = {};
  std::vector<ReadyEntry> ready_;     // binary min-heap by (deadline, id)
  std::vector<uint32_t> expand_scratch_;
  TimeNs cursor_ = 0;                 // wheel horizon: all buckets start >= here
  // No armed deadline is below this. Arm lowers it (min-update); Cancel and
  // RunOne can only raise the true minimum, so it stays valid; a full probe
  // tightens it. Lets the run loop's per-heap-event probe exit in O(1)
  // between timer firings. Pure caching: never changes a probe's result.
  TimeNs lower_bound_ = 0;
  // No *bucketed* deadline is below this (kTimeInfinity while no bucket is
  // occupied). Insert min-updates it; cancels and cascades only raise the
  // true bucket minimum, so it stays a valid (if loose) bound until the next
  // full probe scan tightens it. Lets NextDeadlineAtMost answer straight
  // from the ready heap — the common case, since every firing timer passes
  // through ready — without scanning bucket occupancy at all.
  TimeNs bucket_lower_bound_ = kTimeInfinity;
  size_t armed_count_ = 0;
  uint64_t fired_ = 0;
  bool fired_any_ = false;
  TimeNs last_fire_when_ = 0;
  TimerId last_fire_id_ = kInvalidTimerId;
  // Cached once, like EventQueue does: Current() is a TLS read behind an
  // init guard, too hot to re-resolve on every arm/fire.
  PerfCounters* counters_ = PerfCounters::Current();
};

}  // namespace vsched

#endif  // SRC_SIM_TIMER_WHEEL_H_
