// The discrete-event core: a cancellable, deterministically-ordered queue of
// timestamped callbacks.
//
// Events at equal timestamps fire in scheduling order (FIFO), which makes
// whole-simulation runs reproducible. Storage is a slab-allocated pool of
// event nodes recycled through a free list, indexed by a 4-ary min-heap that
// tracks each node's heap position — so cancellation is a true O(log n)
// removal (no lazy-deletion skimming), scheduling in steady state performs
// zero allocations, and Empty()/NextEventTime() are const reads. Event ids
// are generation-tagged: a recycled slot invalidates stale handles.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/base/perf_counters.h"
#include "src/base/time.h"
#include "src/sim/event_callback.h"

namespace vsched {

using EventFn = EventCallback;

// Opaque handle for cancellation. Default-constructed ids are invalid.
// Encodes (pool slot + 1) in the high 32 bits and the slot's generation in
// the low 32, so a handle to an executed/cancelled event stays invalid even
// after the slot is recycled.
class EventId {
 public:
  EventId() = default;

  bool valid() const { return raw_ != 0; }
  void Invalidate() { raw_ = 0; }

  friend bool operator==(EventId a, EventId b) { return a.raw_ == b.raw_; }

 private:
  friend class EventQueue;
  explicit EventId(uint64_t raw) : raw_(raw) {}
  uint64_t raw_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulated time. Advances only inside RunOne().
  TimeNs now() const { return now_; }

  // Schedules `fn` at absolute time `when` (must be >= now()). Accepts any
  // void() callable; it is constructed directly inside the pool node, so the
  // common path does no intermediate moves and no allocation.
  template <typename F>
  EventId ScheduleAt(TimeNs when, F&& fn) {
    uint32_t index = BeginSchedule(when);
    Node& node = NodeAt(index);
    if constexpr (std::is_same_v<std::decay_t<F>, EventCallback>) {
      node.fn = std::forward<F>(fn);
    } else {
      node.fn.Emplace(std::forward<F>(fn));
    }
    return FinishSchedule(when, index);
  }

  // Schedules `fn` `delay` ns from now.
  template <typename F>
  EventId ScheduleAfter(TimeNs delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Bulk scheduling: equivalent to `for i: ScheduleAt(whens[i], make_fn(i))`
  // in index order — same node allocation, same sequence numbering, and
  // therefore the same dispatch order, because events fire in (when, seq)
  // order regardless of the heap's internal shape. The heap invariant is
  // restored once at the end (sift-up per element for small batches, a full
  // Floyd repair when the batch dominates the heap) instead of per insert.
  // Handles are deliberately not returned: batch-posted events cannot be
  // individually cancelled — use ScheduleAt when you need an EventId.
  template <typename MakeFn>
  void PostBatch(const std::vector<TimeNs>& whens, MakeFn&& make_fn) {
    for (size_t i = 0; i < whens.size(); ++i) {
      uint32_t index = BeginSchedule(whens[i]);
      NodeAt(index).fn.Emplace(make_fn(i));
      AppendUnsifted(whens[i], index);
    }
    RestoreHeap(whens.size());
  }

  // Cancels a pending event. Returns true if the event was still pending.
  bool Cancel(EventId id);

  // True when no live events remain.
  bool Empty() const { return heap_.empty(); }

  // Timestamp of the next live event, or kTimeInfinity when empty.
  TimeNs NextEventTime() const { return heap_.empty() ? kTimeInfinity : heap_[0].when; }

  // Pops and runs the next live event, advancing now(). Returns false when
  // the queue is empty.
  bool RunOne();

  // Runs events with timestamp <= deadline, then advances now() to deadline.
  void RunUntil(TimeNs deadline);

  // Moves the clock forward to `t` without running anything. `t` must not
  // skip a pending event. Used by Simulation's interleaved run loop to hand
  // the clock to the timer wheel between heap dispatches; no-op if t <= now.
  void AdvanceClockTo(TimeNs t) {
    if (t <= now_) {
      return;
    }
    VSCHED_CHECK_MSG(t <= NextEventTime(), "AdvanceClockTo would skip a pending event");
    now_ = t;
  }

  // Number of live (non-cancelled) pending events.
  size_t PendingCount() const { return heap_.size(); }

  // Total events executed so far (for perf accounting).
  uint64_t executed_count() const { return executed_; }

  // Full structural self-check, reported through src/base/audit.h: heap
  // ordering, heap_pos back-pointers, slab/free-list bookkeeping, and seq
  // uniqueness. Called automatically after every mutation while auditing is
  // enabled; safe (and O(capacity)) to call directly at any time.
  void AuditVerify() const;

 private:
  // Deliberate-corruption backdoor for the audit tests (tests/audit/); never
  // referenced by the library itself.
  friend struct AuditTestAccess;
  static constexpr uint32_t kSlabBits = 8;
  static constexpr uint32_t kSlabSize = 1u << kSlabBits;  // nodes per slab

  // One pooled event. `heap_pos` is -1 while the node sits on the free list;
  // `generation` advances on every release so stale EventIds miss.
  struct Node {
    EventCallback fn;
    uint32_t generation = 1;
    int32_t heap_pos = -1;
  };

  struct Slab {
    Node nodes[kSlabSize];
  };

  struct HeapSlot {
    TimeNs when;
    uint64_t seq;
    uint32_t node;
  };

  static bool Before(const HeapSlot& a, const HeapSlot& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  Node& NodeAt(uint32_t index) {
    return slabs_[index >> kSlabBits]->nodes[index & (kSlabSize - 1)];
  }
  const Node& NodeAt(uint32_t index) const {
    return slabs_[index >> kSlabBits]->nodes[index & (kSlabSize - 1)];
  }

  uint32_t AllocNode();
  void ReleaseNode(uint32_t index);

  // The non-template halves of ScheduleAt: past-check + node allocation,
  // then heap insertion + id minting.
  uint32_t BeginSchedule(TimeNs when);
  EventId FinishSchedule(TimeNs when, uint32_t index);

  // The non-template halves of PostBatch: append a slot without sifting,
  // then repair the heap invariant for the last `appended` slots.
  void AppendUnsifted(TimeNs when, uint32_t index);
  void RestoreHeap(size_t appended);

  // Index-tracking 4-ary heap primitives: every time a slot moves, the
  // owning node's heap_pos follows it.
  void Place(size_t pos, HeapSlot slot) {
    heap_[pos] = slot;
    NodeAt(slot.node).heap_pos = static_cast<int32_t>(pos);
  }
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void RemoveAt(size_t pos);

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::vector<HeapSlot> heap_;
  std::vector<std::unique_ptr<Slab>> slabs_;
  std::vector<uint32_t> free_;
  PerfCounters* counters_ = PerfCounters::Current();
};

}  // namespace vsched

#endif  // SRC_SIM_EVENT_QUEUE_H_
