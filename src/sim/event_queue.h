// The discrete-event core: a cancellable, deterministically-ordered queue of
// timestamped callbacks.
//
// Events at equal timestamps fire in scheduling order (FIFO), which makes
// whole-simulation runs reproducible. Cancellation is O(1) via lazy deletion:
// cancelled ids are dropped when they surface at the heap top.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/base/time.h"

namespace vsched {

using EventFn = std::function<void()>;

// Opaque handle for cancellation. Default-constructed ids are invalid.
class EventId {
 public:
  EventId() = default;

  bool valid() const { return raw_ != 0; }
  void Invalidate() { raw_ = 0; }

  friend bool operator==(EventId a, EventId b) { return a.raw_ == b.raw_; }

 private:
  friend class EventQueue;
  explicit EventId(uint64_t raw) : raw_(raw) {}
  uint64_t raw_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulated time. Advances only inside RunOne().
  TimeNs now() const { return now_; }

  // Schedules `fn` at absolute time `when` (must be >= now()).
  EventId ScheduleAt(TimeNs when, EventFn fn);

  // Schedules `fn` `delay` ns from now.
  EventId ScheduleAfter(TimeNs delay, EventFn fn) { return ScheduleAt(now_ + delay, std::move(fn)); }

  // Cancels a pending event. Returns true if the event was still pending.
  bool Cancel(EventId id);

  // True when no live events remain.
  bool Empty();

  // Timestamp of the next live event, or kTimeInfinity when empty.
  TimeNs NextEventTime();

  // Pops and runs the next live event, advancing now(). Returns false when
  // the queue is empty.
  bool RunOne();

  // Runs events with timestamp <= deadline, then advances now() to deadline.
  void RunUntil(TimeNs deadline);

  // Number of live (non-cancelled) pending events.
  size_t PendingCount() const { return live_.size(); }

  // Total events executed so far (for perf accounting).
  uint64_t executed_count() const { return executed_; }

 private:
  struct HeapEntry {
    TimeNs when;
    uint64_t seq;
    uint64_t id;
    // Min-heap by (when, seq): std::priority_queue is a max-heap, so invert.
    bool operator<(const HeapEntry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  // Drops cancelled entries from the heap top. Returns true if a live entry
  // remains on top.
  bool SkimCancelled();

  TimeNs now_ = 0;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<HeapEntry> heap_;
  std::unordered_map<uint64_t, EventFn> live_;
};

}  // namespace vsched

#endif  // SRC_SIM_EVENT_QUEUE_H_
