// Cross-shard message channel for the sharded (PDES) fleet execution mode.
//
// Sharded execution partitions a fleet into cells, each advancing its own
// Simulation inside conservative lookahead windows (docs/PERF.md, "Sharded
// fleet execution"). Anything that crosses a cell boundary — a VM arrival
// aimed at a cell's host, a migration phase, a boot completion — must not
// touch another cell's event queue or entity state directly; it travels as a
// timestamped message through this mailbox instead, and is applied at a
// window boundary while every cell is quiesced.
//
// Determinism contract: messages are applied in canonical
// (due_time, origin, sequence) order. The sequence number is per-origin, so
// the total order depends only on what each origin posted and when it was
// due — never on how origins' posts interleaved in wall-clock time or on how
// many worker threads execute the cells. This is what makes the JSONL output
// of `vsched_run --fleet --shards=N` byte-identical for every N, the same
// guarantee class as the runner's --jobs.
//
// Threading contract: Post() and DrainUpTo() are barrier-phase operations.
// They run on the coordinator thread while all cell workers are parked at a
// window boundary, so the mailbox needs no internal locking; a cell that
// wants to originate a message hands it to the coordinator at the barrier
// (with its own cell id as `origin`, keeping the canonical order
// origin-stable).
#ifndef SRC_SIM_SHARD_MAILBOX_H_
#define SRC_SIM_SHARD_MAILBOX_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/base/time.h"

namespace vsched {

class ShardMailbox {
 public:
  // Origin id for the fleet control plane itself (arrivals, migrations,
  // boots). Cells use their non-negative cell id.
  static constexpr int kControlPlane = -1;

  // Enqueues `apply` to run at the first barrier with time >= `due`.
  // Closures follow the control-plane capture discipline: slot *ids*, never
  // ClusterHost/TenantVm/cell pointers (vsched-lint's shard-crossing rule).
  void Post(TimeNs due, int origin, std::function<void()> apply) {
    VSCHED_CHECK_MSG(due >= drained_up_to_, "mailbox message due in an already-drained window");
    Message msg;
    msg.due = due;
    msg.origin = origin;
    msg.seq = NextSeq(origin);
    msg.apply = std::move(apply);
    heap_.push_back(std::move(msg));
    std::push_heap(heap_.begin(), heap_.end(), After);
  }

  // Applies every message with due <= `now` in (due, origin, seq) order and
  // returns how many ran. An applied message may Post() follow-ups; they are
  // delivered in this same drain when due <= `now`.
  size_t DrainUpTo(TimeNs now) {
    size_t applied = 0;
    while (!heap_.empty() && heap_.front().due <= now) {
      std::pop_heap(heap_.begin(), heap_.end(), After);
      Message msg = std::move(heap_.back());
      heap_.pop_back();
      msg.apply();
      ++applied;
    }
    drained_up_to_ = now;
    return applied;
  }

  size_t pending() const { return heap_.size(); }
  TimeNs next_due() const { return heap_.empty() ? kTimeInfinity : heap_.front().due; }

 private:
  struct Message {
    TimeNs due = 0;
    int origin = kControlPlane;
    uint64_t seq = 0;
    std::function<void()> apply;
  };

  // Min-heap on the canonical key. (due, origin, seq) is a total order:
  // seq is unique per origin.
  static bool After(const Message& a, const Message& b) {
    if (a.due != b.due) {
      return a.due > b.due;
    }
    if (a.origin != b.origin) {
      return a.origin > b.origin;
    }
    return a.seq > b.seq;
  }

  uint64_t NextSeq(int origin) {
    size_t slot = static_cast<size_t>(origin - kControlPlane);
    if (slot >= next_seq_.size()) {
      next_seq_.resize(slot + 1, 0);
    }
    return next_seq_[slot]++;
  }

  std::vector<Message> heap_;
  std::vector<uint64_t> next_seq_;  // per-origin counters, index origin+1
  TimeNs drained_up_to_ = 0;
};

}  // namespace vsched

#endif  // SRC_SIM_SHARD_MAILBOX_H_
