#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/base/audit.h"
#include "src/base/check.h"
#include "src/base/perf_counters.h"

namespace vsched {

namespace {

// std::push_heap/pop_heap build a max-heap under the comparator, so "greater
// by (deadline, id)" yields a min-heap. Epochs are deliberately excluded:
// stale entries' relative order is unobservable (they are skipped), and
// including them would make heap shape depend on arm/cancel history that
// differs between elided and non-elided runs.
struct ReadyGreater {
  bool operator()(const auto& a, const auto& b) const {
    if (a.deadline != b.deadline) {
      return a.deadline > b.deadline;
    }
    return a.id > b.id;
  }
};

}  // namespace

TimerId TimerWheel::Register(EventCallback fn) {
  TimerId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    timers_.emplace_back();
    id = static_cast<TimerId>(timers_.size());
  }
  Timer& t = At(id);
  // The epoch deliberately survives id recycling: any ready-heap entry left
  // over from the slot's previous owner must stay stale forever.
  t.fn = std::move(fn);
  t.deadline = kTimeInfinity;
  t.state = State::kIdle;
  t.registered = true;
  t.level = -1;
  VSCHED_CHECK(t.fn);
  return id;
}

void TimerWheel::Unregister(TimerId id) {
  VSCHED_CHECK(id != kInvalidTimerId && id <= timers_.size());
  Timer& t = At(id);
  VSCHED_CHECK_MSG(t.registered, "unregistering a timer twice");
  Cancel(id);
  t.registered = false;
  t.fn = EventCallback();
  free_ids_.push_back(id);
}

void TimerWheel::Arm(TimerId id, TimeNs when) {
  VSCHED_CHECK(id != kInvalidTimerId && id <= timers_.size());
  Timer& t = At(id);
  VSCHED_CHECK_MSG(t.registered, "arming an unregistered timer");
  VSCHED_CHECK(when >= 0 && when < kTimeInfinity);
  // The wheel never re-opens the past: dispatch order must stay monotone.
  VSCHED_CHECK_MSG(!fired_any_ || when >= last_fire_when_,
                   "timer armed before the last dispatched deadline");
  if (t.state != State::kIdle) {
    Cancel(id);
  }
  ++t.epoch;
  t.deadline = when;
  ++armed_count_;
  lower_bound_ = std::min(lower_bound_, when);
  ++counters_->timer_arms;
  Insert(id, when);
}

void TimerWheel::ArmBatch(const std::vector<std::pair<TimerId, TimeNs>>& items) {
  TimeNs batch_min = kTimeInfinity;
  for (const auto& [id, when] : items) {
    VSCHED_CHECK(id != kInvalidTimerId && id <= timers_.size());
    Timer& t = At(id);
    VSCHED_CHECK_MSG(t.registered, "arming an unregistered timer");
    VSCHED_CHECK(when >= 0 && when < kTimeInfinity);
    VSCHED_CHECK_MSG(!fired_any_ || when >= last_fire_when_,
                     "timer armed before the last dispatched deadline");
    if (t.state != State::kIdle) {
      Cancel(id);
    }
    ++t.epoch;
    t.deadline = when;
    ++armed_count_;
    batch_min = std::min(batch_min, when);
    Insert(id, when);
  }
  lower_bound_ = std::min(lower_bound_, batch_min);
  counters_->timer_arms += items.size();
}

bool TimerWheel::Cancel(TimerId id) {
  VSCHED_CHECK(id != kInvalidTimerId && id <= timers_.size());
  Timer& t = At(id);
  if (t.state == State::kIdle) {
    return false;
  }
  if (t.state == State::kBucket) {
    RemoveFromBucket(id);
  }
  // kReady: the epoch bump below turns the heap entry stale in place;
  // PruneReadyMin drops it when it surfaces.
  ++t.epoch;
  t.state = State::kIdle;
  t.deadline = kTimeInfinity;
  --armed_count_;
  ++counters_->timer_cancels;
  return true;
}

bool TimerWheel::IsArmed(TimerId id) const {
  VSCHED_CHECK(id != kInvalidTimerId && id <= timers_.size());
  return At(id).state != State::kIdle;
}

TimeNs TimerWheel::ArmedAt(TimerId id) const {
  VSCHED_CHECK(id != kInvalidTimerId && id <= timers_.size());
  return At(id).deadline;
}

void TimerWheel::Insert(TimerId id, TimeNs when) {
  Timer& t = At(id);
  for (int level = 0; level < kLevels; ++level) {
    const TimeNs d = (when >> Shift(level)) - (cursor_ >> Shift(level));
    if (d <= 0) {
      // At or behind the cursor's level-0 bucket: inside the dispatch
      // horizon, so the timer is ready now. Higher levels cannot reach
      // here — if d >= kBuckets at level k-1 then d >= 1 at level k.
      VSCHED_CHECK(level == 0);
      PushReady(id, when);
      return;
    }
    if (level == 0 && d < kBuckets) {
      // Within level 0's horizon the ready heap IS the level-0 stage:
      // buckets there would be near-singletons (the dominant timers are
      // ~1 ms periodics), so skipping them saves a cascade per firing and
      // the heap stays small (only timers due within ~65 us).
      PushReady(id, when);
      return;
    }
    if (d < kBuckets) {
      const int b = static_cast<int>((when >> Shift(level)) & (kBuckets - 1));
      std::vector<uint32_t>& bucket = Bucket(level, b);
      bucket_lower_bound_ = std::min(bucket_lower_bound_, when);
      t.state = State::kBucket;
      t.level = static_cast<int8_t>(level);
      t.bucket = static_cast<uint8_t>(b);
      t.slot = static_cast<uint32_t>(bucket.size());
      bucket.push_back(id);
      occupancy_[level] |= uint64_t{1} << b;
      return;
    }
  }
  VSCHED_CHECK_MSG(false, "timer deadline beyond the wheel horizon");
}

void TimerWheel::PushReady(TimerId id, TimeNs when) {
  Timer& t = At(id);
  t.state = State::kReady;
  t.level = -1;
  ready_.push_back(ReadyEntry{when, id, t.epoch});
  std::push_heap(ready_.begin(), ready_.end(), ReadyGreater{});
}

void TimerWheel::RemoveFromBucket(TimerId id) {
  Timer& t = At(id);
  std::vector<uint32_t>& bucket = Bucket(t.level, t.bucket);
  VSCHED_CHECK(t.slot < bucket.size() && bucket[t.slot] == id);
  const uint32_t moved = bucket.back();
  bucket[t.slot] = moved;
  At(moved).slot = t.slot;  // self-assignment when id was last: harmless
  bucket.pop_back();
  if (bucket.empty()) {
    occupancy_[t.level] &= ~(uint64_t{1} << t.bucket);
  }
  t.level = -1;
}

TimeNs TimerWheel::PruneReadyMin() {
  while (!ready_.empty()) {
    const ReadyEntry& e = ready_.front();
    const Timer& t = At(e.id);
    if (t.state == State::kReady && t.epoch == e.epoch) {
      return e.deadline;
    }
    std::pop_heap(ready_.begin(), ready_.end(), ReadyGreater{});
    ready_.pop_back();
  }
  return kTimeInfinity;
}

TimeNs TimerWheel::BucketStart(int level, int bucket) const {
  const int shift = Shift(level);
  const TimeNs cur_bucket = cursor_ >> shift;  // absolute bucket number
  TimeNs lap = cur_bucket >> kLevelBits;
  const int cur_idx = static_cast<int>(cur_bucket & (kBuckets - 1));
  const bool aligned = (cursor_ & (BucketWidth(level) - 1)) == 0;
  // A bucket whose current-lap start is already behind the cursor belongs to
  // the next lap; the cursor's own bucket counts as current only when the
  // cursor sits exactly on its start.
  if (bucket < cur_idx || (bucket == cur_idx && !aligned)) {
    ++lap;
  }
  return ((lap << kLevelBits) | bucket) << shift;
}

TimeNs TimerWheel::NextDeadlineAtMost(TimeNs limit) {
  if (armed_count_ == 0 || lower_bound_ > limit) {
    return kTimeInfinity;  // the run loop's steady state between firings
  }
  for (;;) {
    const TimeNs ready_min = PruneReadyMin();
    // Fast path off the bucket bound: when the ready heap's minimum is
    // strictly below every bucketed deadline, no bucket can hold the answer
    // (or an equal-deadline lower-id timer), so the scan below is skippable.
    // Strictness matters: at an exact tie a bucketed timer with a smaller id
    // must still cascade and fire first.
    const TimeNs fast_min = std::min(ready_min, bucket_lower_bound_);
    if (fast_min > limit) {
      lower_bound_ = fast_min;
      return kTimeInfinity;
    }
    if (ready_min < bucket_lower_bound_) {
      lower_bound_ = ready_min;
      return ready_min;
    }
    const TimeNs cap = std::min(ready_min, limit);
    // Earliest non-empty bucket across levels, lowest level winning ties
    // (its timers cascade furthest and may contain the true minimum).
    int best_level = -1;
    int best_bucket = 0;
    TimeNs best_start = kTimeInfinity;
    for (int level = 0; level < kLevels; ++level) {
      const uint64_t occ = occupancy_[level];
      if (occ == 0) {
        continue;
      }
      const int cur_idx = static_cast<int>((cursor_ >> Shift(level)) & (kBuckets - 1));
      const bool aligned = (cursor_ & (BucketWidth(level) - 1)) == 0;
      // Candidates still ahead in the current lap: indices > cur_idx, plus
      // cur_idx itself when the cursor sits exactly on its start.
      uint64_t ge = (occ >> cur_idx) << cur_idx;
      if (!aligned) {
        ge &= ~(uint64_t{1} << cur_idx);
      }
      const int b = ge != 0 ? std::countr_zero(ge) : std::countr_zero(occ);
      const TimeNs start = BucketStart(level, b);
      if (start < best_start) {
        best_start = start;
        best_level = level;
        best_bucket = b;
      }
    }
    if (best_level < 0 || best_start > cap) {
      // The scan just computed the exact earliest bucket start; cache it so
      // later probes take the fast path until bucket membership changes.
      bucket_lower_bound_ = best_start;
      if (ready_min <= limit) {
        lower_bound_ = ready_min;
        return ready_min;
      }
      // Nothing due: every bucketed timer is >= its bucket's start (all of
      // which are >= best_start) and every ready timer is >= ready_min, so
      // this tightened bound short-circuits probes until `limit` reaches it.
      lower_bound_ = std::min(ready_min, best_start);
      return kTimeInfinity;
    }
    // Advance the horizon to this bucket and cascade it down. Bounded by
    // `cap`, so far-future buckets are never expanded by a near probe.
    cursor_ = best_start;
    ExpandBucket(best_level, best_bucket);
  }
}

void TimerWheel::ExpandBucket(int level, int bucket) {
  std::vector<uint32_t>& b = Bucket(level, bucket);
  expand_scratch_.clear();
  expand_scratch_.swap(b);
  occupancy_[level] &= ~(uint64_t{1} << bucket);
  ++counters_->timer_cascades;
  // Re-insert in slot order: cascades are deterministic because slot order
  // only changes through deterministic Cancel swap-removes.
  for (const uint32_t id : expand_scratch_) {
    Timer& t = At(id);
    t.level = -1;
    Insert(id, t.deadline);
  }
}

void TimerWheel::RunOne(TimeNs when) {
  const TimeNs ready_min = PruneReadyMin();
  VSCHED_CHECK_MSG(ready_min == when, "TimerWheel::RunOne deadline mismatch");
  const ReadyEntry top = ready_.front();
  std::pop_heap(ready_.begin(), ready_.end(), ReadyGreater{});
  ready_.pop_back();
  Timer& t = At(top.id);
  t.state = State::kIdle;
  t.deadline = kTimeInfinity;
  ++t.epoch;
  --armed_count_;
  fired_any_ = true;
  last_fire_when_ = when;
  last_fire_id_ = top.id;
  ++fired_;
  ++counters_->timer_fires;
  // Runs in place out of the (address-stable) slot; may re-arm any timer,
  // including this one.
  t.fn();
}

void TimerWheel::AuditVerify() const {
  if (!audit::Enabled()) {
    return;
  }
  // Buckets: occupancy bits, back-pointers, and deadline-to-bucket hashing.
  size_t in_buckets = 0;
  for (int level = 0; level < kLevels; ++level) {
    for (int b = 0; b < kBuckets; ++b) {
      const std::vector<uint32_t>& bucket = Bucket(level, b);
      VSCHED_AUDIT_CHECK(((occupancy_[level] >> b) & 1) == (bucket.empty() ? 0u : 1u),
                         "timer wheel: occupancy bit disagrees with bucket contents");
      for (size_t slot = 0; slot < bucket.size(); ++slot) {
        ++in_buckets;
        const TimerId id = bucket[slot];
        const bool valid_id = id != kInvalidTimerId && id <= timers_.size();
        VSCHED_AUDIT_CHECK(valid_id, "timer wheel: bucket holds an invalid timer id");
        if (!valid_id) {
          continue;
        }
        const Timer& t = At(id);
        VSCHED_AUDIT_CHECK(t.registered && t.state == State::kBucket,
                           "timer wheel: bucketed timer is not in kBucket state");
        VSCHED_AUDIT_CHECK(t.level == level && t.bucket == b && t.slot == slot,
                           "timer wheel: back-pointer disagrees with bucket position");
        VSCHED_AUDIT_CHECK(((t.deadline >> Shift(level)) & (kBuckets - 1)) == b,
                           "timer wheel: deadline hashes to a different bucket at this level");
        const TimeNs start = BucketStart(level, b);
        VSCHED_AUDIT_CHECK(start <= t.deadline && t.deadline - start < BucketWidth(level),
                           "timer wheel: deadline outside its bucket span (lost across cascade)");
        VSCHED_AUDIT_CHECK(!fired_any_ || t.deadline >= last_fire_when_,
                           "timer wheel: armed deadline precedes the last dispatch");
        VSCHED_AUDIT_CHECK(t.deadline >= lower_bound_,
                           "timer wheel: armed deadline below the cached lower bound");
        VSCHED_AUDIT_CHECK(t.deadline >= bucket_lower_bound_,
                           "timer wheel: bucketed deadline below the cached bucket bound");
      }
    }
  }
  // Ready heap: live entries are consistent, ahead of the dispatch point,
  // exactly one per kReady timer, and in heap order.
  size_t live_ready = 0;
  std::vector<uint32_t> live_per_id(timers_.size(), 0);
  for (const ReadyEntry& e : ready_) {
    const bool valid_id = e.id != kInvalidTimerId && e.id <= timers_.size();
    VSCHED_AUDIT_CHECK(valid_id, "timer wheel: ready entry holds an invalid timer id");
    if (!valid_id) {
      continue;
    }
    const Timer& t = At(e.id);
    if (t.state != State::kReady || t.epoch != e.epoch) {
      continue;  // stale: skipped by dispatch, exempt from invariants
    }
    ++live_ready;
    ++live_per_id[e.id - 1];
    VSCHED_AUDIT_CHECK(t.deadline == e.deadline,
                       "timer wheel: live ready entry disagrees with its timer's deadline");
    VSCHED_AUDIT_CHECK(!fired_any_ || e.deadline >= last_fire_when_,
                       "timer wheel: ready deadline precedes the last dispatch");
    VSCHED_AUDIT_CHECK(e.deadline >= lower_bound_,
                       "timer wheel: ready deadline below the cached lower bound");
  }
  for (size_t i = 1; i < ready_.size(); ++i) {
    const ReadyEntry& parent = ready_[(i - 1) / 2];
    const ReadyEntry& child = ready_[i];
    VSCHED_AUDIT_CHECK(!ReadyGreater{}(parent, child),
                       "timer wheel: ready heap order violated");
  }
  for (size_t i = 0; i < timers_.size(); ++i) {
    const Timer& t = timers_[i];
    if (t.state == State::kReady) {
      VSCHED_AUDIT_CHECK(live_per_id[i] == 1,
                         "timer wheel: ready timer lost or duplicated in the ready heap");
    } else if (t.state == State::kBucket) {
      const bool placed = t.level >= 0 && t.level < kLevels &&
                          t.slot < Bucket(t.level, t.bucket).size() &&
                          Bucket(t.level, t.bucket)[t.slot] == i + 1;
      VSCHED_AUDIT_CHECK(placed, "timer wheel: bucketed timer missing from its bucket");
    }
  }
  VSCHED_AUDIT_CHECK(in_buckets + live_ready == armed_count_,
                     "timer wheel: armed count out of sync (timer lost across cascade)");
}

}  // namespace vsched
