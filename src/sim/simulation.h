// Top-level simulation context: clock + event queue + timer wheel + root RNG.
//
// Every simulated component (host scheduler, guest kernel, workloads,
// probers) holds a Simulation* and schedules its activity through it.
//
// Two timer backends share the clock (see docs/PERF.md, "Tickless
// simulation"):
//  - the 4-ary event heap (At/After) for one-shot and far-future events;
//  - the hierarchical timer wheel (CreateTimer/ArmTimerAt) for periodic and
//    near-future timers — scheduler ticks, bandwidth refills, Every().
// The run loop drains them in lockstep; at equal timestamps the wheel's
// "timer band" fires before heap events, and within the band timers fire in
// (deadline, TimerId) order. Both orderings are history-independent, which
// is what lets tickless elision skip firings without perturbing any
// neighbouring event (the byte-identical-JSONL contract).
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/base/audit.h"
#include "src/base/check.h"
#include "src/base/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/timer_wheel.h"

namespace vsched {

// Thrown by Simulation::RunUntil when the dispatched-event budget set via
// SetEventBudget is exhausted. A runaway run (livelocked event storm,
// pathological plan) trips this deterministically — the budget counts
// simulated events, not wall time — so the runner can record the cell as
// `timeout` and move on, reproducibly.
class SimBudgetExceeded : public std::runtime_error {
 public:
  explicit SimBudgetExceeded(uint64_t budget)
      : std::runtime_error("simulated event budget exceeded (" + std::to_string(budget) +
                           " events)") {}
};

class Simulation {
 public:
  explicit Simulation(uint64_t seed) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimeNs now() const { return queue_.now(); }
  EventQueue& queue() { return queue_; }
  TimerWheel& wheel() { return wheel_; }
  Rng& rng() { return rng_; }

  // Derives an independent RNG stream for a component.
  Rng ForkRng() { return rng_.Fork(); }

  template <typename F>
  EventId At(TimeNs when, F&& fn) {
    return queue_.ScheduleAt(when, std::forward<F>(fn));
  }
  template <typename F>
  EventId After(TimeNs delay, F&& fn) {
    return queue_.ScheduleAfter(delay, std::forward<F>(fn));
  }
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // --- timer-wheel backend -------------------------------------------------
  // A timer is a registered slot with a fixed callback, re-armed in place:
  // the natural shape for periodic work (no per-firing allocation, no stale
  // handle growth). Ids are stable until DestroyTimer.

  template <typename F>
  TimerId CreateTimer(F&& fn) {
    return wheel_.Register(EventCallback(std::forward<F>(fn)));
  }
  void DestroyTimer(TimerId id) { wheel_.Unregister(id); }

  void ArmTimerAt(TimerId id, TimeNs when) {
    VSCHED_CHECK_MSG(when >= now(), "cannot arm a timer in the past");
    wheel_.Arm(id, when);
  }
  void ArmTimerAfter(TimerId id, TimeNs delay) { ArmTimerAt(id, now() + delay); }
  bool CancelTimer(TimerId id) { return wheel_.Cancel(id); }
  bool TimerArmed(TimerId id) const { return wheel_.IsArmed(id); }

  // True if a wheel timer `id` armed *right now* for deadline `when` ==
  // now() would still fire at this instant, i.e. the current timestamp's
  // timer band has not yet passed the timer's (when, id) position and the
  // heap phase has not begun. Tickless re-arm logic uses this to decide
  // whether an elided periodic timer can still fire in its natural band
  // position this instant.
  bool TimerStillFiresAt(TimerId id, TimeNs when) const {
    if (when > now()) {
      return true;
    }
    if (last_heap_exec_time_ == when) {
      return false;  // heap phase at `when` has begun: the band is closed
    }
    return wheel_.StillFiresAt(id, when);
  }

  // Next firing time on the grid {origin + k*period, k >= 0} for a periodic
  // wheel timer being re-armed at now(): now() itself when now() sits on the
  // grid and the timer's band position this instant has not yet passed,
  // otherwise the next strictly-future grid point. This is what keeps an
  // elided-then-resumed periodic timer bit-identical to one that never
  // stopped. Requires now() >= origin.
  TimeNs NextGridPoint(TimeNs origin, TimeNs period, TimerId id) const {
    VSCHED_CHECK(period > 0 && now() >= origin);
    const TimeNs k = (now() - origin) / period;
    const TimeNs at_or_before = origin + k * period;
    if (at_or_before == now() && TimerStillFiresAt(id, now())) {
      return now();
    }
    return origin + (k + 1) * period;
  }

  // Deterministic watchdog: caps the total number of events + timer firings
  // this simulation may dispatch across all RunUntil calls; exceeding it
  // throws SimBudgetExceeded. 0 (the default) means unlimited. Pure
  // bookkeeping — a budget large enough never to trip changes nothing.
  void SetEventBudget(uint64_t budget) { event_budget_ = budget; }
  uint64_t events_dispatched() const { return events_dispatched_; }

  // Runs the simulation until `deadline`, then sets now() == deadline.
  void RunUntil(TimeNs deadline);

  // Runs `dur` more nanoseconds of simulated time.
  void RunFor(TimeNs dur) { RunUntil(now() + dur); }

  // Installs a repeating callback every `period` ns starting at now()+period
  // (wheel-backed). The callback keeps firing until the returned handle is
  // cancelled via CancelPeriodic. Handles stay valid across firings.
  class PeriodicHandle;
  PeriodicHandle* Every(TimeNs period, std::function<void()> fn);
  void CancelPeriodic(PeriodicHandle* handle);

  class PeriodicHandle {
   public:
    PeriodicHandle(Simulation* sim, TimeNs period, std::function<void()> fn)
        : sim_(sim), period_(period), fn_(std::move(fn)) {}

   private:
    friend class Simulation;

    Simulation* sim_;
    TimeNs period_;
    std::function<void()> fn_;
    TimerId timer_ = kInvalidTimerId;
    bool cancelled_ = false;
  };

 private:
  EventQueue queue_;
  TimerWheel wheel_;
  Rng rng_;
  // Timestamp of the most recent heap event dispatched; marks the timer
  // band at that instant as closed (see TimerStillFiresAt).
  TimeNs last_heap_exec_time_ = -1;
  uint64_t event_budget_ = 0;
  uint64_t events_dispatched_ = 0;
  // Handles live until the simulation dies; they are tiny and this keeps
  // pointers stable for callers that cancel much later. Keeping them per
  // simulation (not process-global) lets independent simulations run on
  // different threads without sharing mutable state.
  std::vector<std::unique_ptr<PeriodicHandle>> periodic_handles_;
};

}  // namespace vsched

#endif  // SRC_SIM_SIMULATION_H_
