// Top-level simulation context: clock + event queue + root RNG.
//
// Every simulated component (host scheduler, guest kernel, workloads,
// probers) holds a Simulation* and schedules its activity through it.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/audit.h"
#include "src/base/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace vsched {

class Simulation {
 public:
  explicit Simulation(uint64_t seed) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimeNs now() const { return queue_.now(); }
  EventQueue& queue() { return queue_; }
  Rng& rng() { return rng_; }

  // Derives an independent RNG stream for a component.
  Rng ForkRng() { return rng_.Fork(); }

  template <typename F>
  EventId At(TimeNs when, F&& fn) {
    return queue_.ScheduleAt(when, std::forward<F>(fn));
  }
  template <typename F>
  EventId After(TimeNs delay, F&& fn) {
    return queue_.ScheduleAfter(delay, std::forward<F>(fn));
  }
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs the simulation until `deadline`, then sets now() == deadline.
  void RunUntil(TimeNs deadline) {
    const TimeNs before = queue_.now();
    queue_.RunUntil(deadline);
    VSCHED_AUDIT_CHECK(queue_.now() >= before, "simulation clock moved backwards");
    VSCHED_AUDIT_CHECK(deadline <= before || queue_.now() == deadline,
                       "RunUntil did not land on its deadline");
  }

  // Runs `dur` more nanoseconds of simulated time.
  void RunFor(TimeNs dur) { queue_.RunUntil(queue_.now() + dur); }

  // Installs a repeating callback every `period` ns starting at now()+period.
  // The callback keeps firing until the returned handle is cancelled via
  // CancelPeriodic. Handles stay valid across firings.
  class PeriodicHandle;
  PeriodicHandle* Every(TimeNs period, std::function<void()> fn);
  void CancelPeriodic(PeriodicHandle* handle);

  class PeriodicHandle {
   public:
    PeriodicHandle(Simulation* sim, TimeNs period, std::function<void()> fn)
        : sim_(sim), period_(period), fn_(std::move(fn)) {}

   private:
    friend class Simulation;
    void Arm();

    Simulation* sim_;
    TimeNs period_;
    std::function<void()> fn_;
    EventId pending_;
    bool cancelled_ = false;
  };

 private:
  EventQueue queue_;
  Rng rng_;
  // Handles live until the simulation dies; they are tiny and this keeps
  // pointers stable for callers that cancel much later. Keeping them per
  // simulation (not process-global) lets independent simulations run on
  // different threads without sharing mutable state.
  std::vector<std::unique_ptr<PeriodicHandle>> periodic_handles_;
};

}  // namespace vsched

#endif  // SRC_SIM_SIMULATION_H_
