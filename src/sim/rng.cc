#include "src/sim/rng.h"

#include <cmath>

#include "src/base/check.h"

namespace vsched {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

Rng Rng::Fork() { return Rng(NextU64()); }

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  VSCHED_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full 64-bit range.
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double mean) {
  VSCHED_CHECK(mean > 0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) {
    u1 = 0x1.0p-53;
  }
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double mean, double cv) {
  VSCHED_CHECK(mean > 0);
  if (cv <= 0) {
    return mean;
  }
  double sigma2 = std::log(1.0 + cv * cv);
  double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(Normal(mu, std::sqrt(sigma2)));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace vsched
