#include "src/sim/event_queue.h"

#include <utility>

#include "src/base/audit.h"
#include "src/base/check.h"

namespace vsched {

namespace {

inline uint64_t PackId(uint32_t index, uint32_t generation) {
  return (static_cast<uint64_t>(index) + 1) << 32 | generation;
}

inline uint32_t IdIndex(uint64_t raw) { return static_cast<uint32_t>(raw >> 32) - 1; }
inline uint32_t IdGeneration(uint64_t raw) { return static_cast<uint32_t>(raw); }

}  // namespace

void EventQueue::AuditVerify() const {
  const uint32_t capacity = static_cast<uint32_t>(slabs_.size()) * kSlabSize;
  const size_t n = heap_.size();
  // Heap slots: 4-ary ordering, in-range node indices, back-pointer
  // agreement, and strictly increasing-unique sequence numbers.
  std::vector<char> on_heap(capacity, 0);
  for (size_t pos = 0; pos < n; ++pos) {
    const HeapSlot& slot = heap_[pos];
    if (pos > 0) {
      VSCHED_AUDIT_CHECK(!Before(slot, heap_[(pos - 1) / 4]),
                         "event heap: child orders before its parent");
    }
    VSCHED_AUDIT_CHECK(slot.node < capacity, "event heap: node index out of slab range");
    if (slot.node >= capacity) {
      continue;  // The remaining per-node checks would read out of bounds.
    }
    VSCHED_AUDIT_CHECK(!on_heap[slot.node], "event heap: node referenced twice");
    on_heap[slot.node] = 1;
    VSCHED_AUDIT_CHECK(NodeAt(slot.node).heap_pos == static_cast<int32_t>(pos),
                       "event heap: node heap_pos disagrees with its slot");
    VSCHED_AUDIT_CHECK(slot.seq < next_seq_, "event heap: seq from the future");
    VSCHED_AUDIT_CHECK(slot.when >= now_, "event heap: pending event in the past");
  }
  // Free list: disjoint from the heap, marked off-heap, no duplicates.
  std::vector<char> on_free(capacity, 0);
  for (uint32_t index : free_) {
    VSCHED_AUDIT_CHECK(index < capacity, "event free list: index out of slab range");
    if (index >= capacity) {
      continue;
    }
    VSCHED_AUDIT_CHECK(!on_free[index], "event free list: index listed twice");
    on_free[index] = 1;
    VSCHED_AUDIT_CHECK(!on_heap[index], "event free list: index also live on the heap");
    VSCHED_AUDIT_CHECK(NodeAt(index).heap_pos == -1,
                       "event free list: node still claims a heap position");
  }
}

uint32_t EventQueue::AllocNode() {
  if (free_.empty()) {
    uint32_t base = static_cast<uint32_t>(slabs_.size()) * kSlabSize;
    slabs_.push_back(std::make_unique<Slab>());
    ++counters_->event_slab_allocs;
    // Push in reverse so the lowest new index is handed out first.
    for (uint32_t i = kSlabSize; i-- > 0;) {
      free_.push_back(base + i);
    }
  }
  uint32_t index = free_.back();
  free_.pop_back();
  return index;
}

void EventQueue::ReleaseNode(uint32_t index) {
  Node& node = NodeAt(index);
  node.heap_pos = -1;
  ++node.generation;  // stale EventIds now miss
  free_.push_back(index);
}

void EventQueue::SiftUp(size_t pos) {
  HeapSlot slot = heap_[pos];
  while (pos > 0) {
    size_t parent = (pos - 1) / 4;
    if (!Before(slot, heap_[parent])) {
      break;
    }
    Place(pos, heap_[parent]);
    pos = parent;
  }
  Place(pos, slot);
}

void EventQueue::SiftDown(size_t pos) {
  HeapSlot slot = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    size_t first_child = pos * 4 + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], slot)) {
      break;
    }
    Place(pos, heap_[best]);
    pos = best;
  }
  Place(pos, slot);
}

void EventQueue::RemoveAt(size_t pos) {
  size_t last = heap_.size() - 1;
  if (pos != last) {
    Place(pos, heap_[last]);
  }
  heap_.pop_back();
  if (pos < heap_.size()) {
    // The relocated slot may belong either direction from `pos`.
    SiftDown(pos);
    SiftUp(pos);
  }
}

uint32_t EventQueue::BeginSchedule(TimeNs when) {
  VSCHED_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  return AllocNode();
}

EventId EventQueue::FinishSchedule(TimeNs when, uint32_t index) {
  Node& node = NodeAt(index);
  heap_.push_back(HeapSlot{when, next_seq_++, index});
  node.heap_pos = static_cast<int32_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
  ++counters_->events_scheduled;
  if (audit::Enabled()) {
    AuditVerify();
  }
  return EventId(PackId(index, node.generation));
}

void EventQueue::AppendUnsifted(TimeNs when, uint32_t index) {
  heap_.push_back(HeapSlot{when, next_seq_++, index});
  NodeAt(index).heap_pos = static_cast<int32_t>(heap_.size() - 1);
  ++counters_->events_scheduled;
}

void EventQueue::RestoreHeap(size_t appended) {
  if (appended == 0) {
    return;
  }
  const size_t n = heap_.size();
  if (n >= 2 && appended >= n / 8) {
    // The batch dominates: one Floyd pass over the whole heap is cheaper
    // than per-element sifts and yields a valid (if differently shaped)
    // heap — dispatch order is (when, seq), so the shape is unobservable.
    for (size_t pos = (n - 2) / 4 + 1; pos-- > 0;) {
      SiftDown(pos);
    }
  } else {
    // Small batch into a large heap: sift each appended slot up in append
    // order, exactly as N individual inserts would have.
    for (size_t pos = n - appended; pos < n; ++pos) {
      SiftUp(pos);
    }
  }
  if (audit::Enabled()) {
    AuditVerify();
  }
}

bool EventQueue::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  uint32_t index = IdIndex(id.raw_);
  if (index >= slabs_.size() * kSlabSize) {
    return false;
  }
  Node& node = NodeAt(index);
  if (node.heap_pos < 0 || node.generation != IdGeneration(id.raw_)) {
    return false;
  }
  RemoveAt(static_cast<size_t>(node.heap_pos));
  node.fn = EventCallback();
  ReleaseNode(index);
  ++counters_->events_cancelled;
  if (audit::Enabled()) {
    AuditVerify();
  }
  return true;
}

bool EventQueue::RunOne() {
  if (heap_.empty()) {
    return false;
  }
  if (audit::Enabled()) {
    AuditVerify();
    VSCHED_AUDIT_CHECK(heap_[0].when >= now_, "event dispatch would move the clock backwards");
  }
  HeapSlot top = heap_[0];
  Node& node = NodeAt(top.node);
  RemoveAt(0);
  // Off-heap from this point: a Cancel() of the in-flight id (self-cancel
  // from inside the callback is common) must miss, not remove a bystander.
  node.heap_pos = -1;
  VSCHED_CHECK(top.when >= now_);
  now_ = top.when;
  ++executed_;
  ++counters_->events_executed;
  // Invoke straight from pool storage — no move-out. The node is off both
  // the heap and the free list while running, so a callback that schedules
  // new events cannot clobber it, and Cancel() of the in-flight id is a
  // clean miss (heap_pos is already -1). Slab storage is stable, so the
  // reference survives any scheduling the callback does.
  node.fn();
  node.fn = EventCallback();
  ReleaseNode(top.node);
  return true;
}

void EventQueue::RunUntil(TimeNs deadline) {
  while (!heap_.empty() && heap_[0].when <= deadline) {
    RunOne();
  }
  if (deadline > now_) {
    now_ = deadline;
  }
  VSCHED_AUDIT_CHECK(heap_.empty() || heap_[0].when > deadline,
                     "RunUntil left a due event pending");
}

}  // namespace vsched
