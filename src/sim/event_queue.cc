#include "src/sim/event_queue.h"

#include <utility>

#include "src/base/check.h"

namespace vsched {

EventId EventQueue::ScheduleAt(TimeNs when, EventFn fn) {
  VSCHED_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  uint64_t id = next_id_++;
  heap_.push(HeapEntry{when, next_seq_++, id});
  live_.emplace(id, std::move(fn));
  return EventId(id);
}

bool EventQueue::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  return live_.erase(id.raw_) > 0;
}

bool EventQueue::SkimCancelled() {
  while (!heap_.empty() && live_.find(heap_.top().id) == live_.end()) {
    heap_.pop();
  }
  return !heap_.empty();
}

bool EventQueue::Empty() { return !SkimCancelled(); }

TimeNs EventQueue::NextEventTime() {
  if (!SkimCancelled()) {
    return kTimeInfinity;
  }
  return heap_.top().when;
}

bool EventQueue::RunOne() {
  if (!SkimCancelled()) {
    return false;
  }
  HeapEntry entry = heap_.top();
  heap_.pop();
  auto it = live_.find(entry.id);
  VSCHED_CHECK(it != live_.end());
  EventFn fn = std::move(it->second);
  live_.erase(it);
  VSCHED_CHECK(entry.when >= now_);
  now_ = entry.when;
  ++executed_;
  fn();
  return true;
}

void EventQueue::RunUntil(TimeNs deadline) {
  while (SkimCancelled() && heap_.top().when <= deadline) {
    RunOne();
  }
  if (deadline > now_) {
    now_ = deadline;
  }
}

}  // namespace vsched
