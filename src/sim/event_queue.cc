#include "src/sim/event_queue.h"

#include <utility>

#include "src/base/check.h"

namespace vsched {

namespace {

inline uint64_t PackId(uint32_t index, uint32_t generation) {
  return (static_cast<uint64_t>(index) + 1) << 32 | generation;
}

inline uint32_t IdIndex(uint64_t raw) { return static_cast<uint32_t>(raw >> 32) - 1; }
inline uint32_t IdGeneration(uint64_t raw) { return static_cast<uint32_t>(raw); }

}  // namespace

uint32_t EventQueue::AllocNode() {
  if (free_.empty()) {
    uint32_t base = static_cast<uint32_t>(slabs_.size()) * kSlabSize;
    slabs_.push_back(std::make_unique<Slab>());
    ++counters_->event_slab_allocs;
    // Push in reverse so the lowest new index is handed out first.
    for (uint32_t i = kSlabSize; i-- > 0;) {
      free_.push_back(base + i);
    }
  }
  uint32_t index = free_.back();
  free_.pop_back();
  return index;
}

void EventQueue::ReleaseNode(uint32_t index) {
  Node& node = NodeAt(index);
  node.heap_pos = -1;
  ++node.generation;  // stale EventIds now miss
  free_.push_back(index);
}

void EventQueue::SiftUp(size_t pos) {
  HeapSlot slot = heap_[pos];
  while (pos > 0) {
    size_t parent = (pos - 1) / 4;
    if (!Before(slot, heap_[parent])) {
      break;
    }
    Place(pos, heap_[parent]);
    pos = parent;
  }
  Place(pos, slot);
}

void EventQueue::SiftDown(size_t pos) {
  HeapSlot slot = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    size_t first_child = pos * 4 + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], slot)) {
      break;
    }
    Place(pos, heap_[best]);
    pos = best;
  }
  Place(pos, slot);
}

void EventQueue::RemoveAt(size_t pos) {
  size_t last = heap_.size() - 1;
  if (pos != last) {
    Place(pos, heap_[last]);
  }
  heap_.pop_back();
  if (pos < heap_.size()) {
    // The relocated slot may belong either direction from `pos`.
    SiftDown(pos);
    SiftUp(pos);
  }
}

uint32_t EventQueue::BeginSchedule(TimeNs when) {
  VSCHED_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  return AllocNode();
}

EventId EventQueue::FinishSchedule(TimeNs when, uint32_t index) {
  Node& node = NodeAt(index);
  heap_.push_back(HeapSlot{when, next_seq_++, index});
  node.heap_pos = static_cast<int32_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
  ++counters_->events_scheduled;
  return EventId(PackId(index, node.generation));
}

bool EventQueue::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  uint32_t index = IdIndex(id.raw_);
  if (index >= slabs_.size() * kSlabSize) {
    return false;
  }
  Node& node = NodeAt(index);
  if (node.heap_pos < 0 || node.generation != IdGeneration(id.raw_)) {
    return false;
  }
  RemoveAt(static_cast<size_t>(node.heap_pos));
  node.fn = EventCallback();
  ReleaseNode(index);
  ++counters_->events_cancelled;
  return true;
}

bool EventQueue::RunOne() {
  if (heap_.empty()) {
    return false;
  }
  HeapSlot top = heap_[0];
  Node& node = NodeAt(top.node);
  RemoveAt(0);
  // Off-heap from this point: a Cancel() of the in-flight id (self-cancel
  // from inside the callback is common) must miss, not remove a bystander.
  node.heap_pos = -1;
  VSCHED_CHECK(top.when >= now_);
  now_ = top.when;
  ++executed_;
  ++counters_->events_executed;
  // Invoke straight from pool storage — no move-out. The node is off both
  // the heap and the free list while running, so a callback that schedules
  // new events cannot clobber it, and Cancel() of the in-flight id is a
  // clean miss (heap_pos is already -1). Slab storage is stable, so the
  // reference survives any scheduling the callback does.
  node.fn();
  node.fn = EventCallback();
  ReleaseNode(top.node);
  return true;
}

void EventQueue::RunUntil(TimeNs deadline) {
  while (!heap_.empty() && heap_[0].when <= deadline) {
    RunOne();
  }
  if (deadline > now_) {
    now_ = deadline;
  }
}

}  // namespace vsched
