// Deterministic random number generation for the simulator.
//
// xoshiro256** seeded through SplitMix64. Every experiment takes an explicit
// seed so runs are bit-reproducible; sub-streams are derived with Fork() so
// adding a consumer does not perturb existing ones.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace vsched {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Derives an independent stream; deterministic given this stream's state.
  Rng Fork();

  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Standard Box-Muller normal scaled to (mean, stddev).
  double Normal(double mean, double stddev);

  // Log-normal parameterized by its own mean and coefficient of variation
  // (stddev / mean). cv == 0 degenerates to the constant `mean`.
  double LogNormal(double mean, double cv);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace vsched

#endif  // SRC_SIM_RNG_H_
