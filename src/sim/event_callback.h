// Small-buffer-optimized move-only callable for simulator events.
//
// std::function heap-allocates once captures exceed its (typically 16-byte)
// inline buffer, and simulator callbacks routinely capture two or three
// pointers plus a small value — just over that line. EventCallback keeps a
// 48-byte inline buffer so the steady-state event loop performs zero
// allocations; oversized callables still work via a counted heap fallback
// (PerfCounters::callback_heap_allocs, watched by bench_perf_core).
#ifndef SRC_SIM_EVENT_CALLBACK_H_
#define SRC_SIM_EVENT_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "src/base/perf_counters.h"

namespace vsched {

class EventCallback {
 public:
  // Large enough for several captured pointers plus a value or two, which
  // covers the simulator's scheduling callbacks.
  static constexpr size_t kInlineSize = 48;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventCallback> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    Construct(std::forward<F>(f));
  }

  // Destroys the current target (if any) and constructs `f` in place —
  // the zero-copy path EventQueue uses to build callbacks directly inside
  // pool nodes.
  template <typename F>
  void Emplace(F&& f) {
    Reset();
    Construct(std::forward<F>(f));
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct OpsTable {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static Fn* Inline(void* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }
  template <typename Fn>
  static Fn* Heap(void* storage) {
    return *std::launder(reinterpret_cast<Fn**>(storage));
  }

  template <typename Fn>
  static const OpsTable& InlineOps() {
    static constexpr OpsTable kOps = {
        [](void* s) { (*Inline<Fn>(s))(); },
        [](void* dst, void* src) {
          Fn* f = Inline<Fn>(src);
          new (dst) Fn(std::move(*f));
          f->~Fn();
        },
        [](void* s) { Inline<Fn>(s)->~Fn(); },
    };
    return kOps;
  }

  template <typename Fn>
  static const OpsTable& HeapOps() {
    static constexpr OpsTable kOps = {
        [](void* s) { (*Heap<Fn>(s))(); },
        [](void* dst, void* src) {
          *reinterpret_cast<Fn**>(dst) = Heap<Fn>(src);
        },
        [](void* s) { delete Heap<Fn>(s); },
    };
    return kOps;
  }

  template <typename F>
  void Construct(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (storage_) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>();
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(storage_)) = new Fn(std::forward<F>(f));
      ++PerfCounters::Current()->callback_heap_allocs;
      ops_ = &HeapOps<Fn>();
    }
  }

  void MoveFrom(EventCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const OpsTable* ops_ = nullptr;
};

}  // namespace vsched

#endif  // SRC_SIM_EVENT_CALLBACK_H_
