#include "src/stats/stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"

namespace vsched {

Ema Ema::WithHalfLife(double periods) {
  VSCHED_CHECK(periods > 0);
  // History weight (1 - alpha)^periods == 0.5.
  double alpha = 1.0 - std::pow(0.5, 1.0 / periods);
  return Ema(alpha);
}

void Ema::Add(double sample) {
  if (!initialized_) {
    value_ = sample;
    initialized_ = true;
    return;
  }
  value_ = alpha_ * sample + (1.0 - alpha_) * value_;
}

void Ema::Reset() {
  value_ = 0;
  initialized_ = false;
}

void Distribution::Add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Distribution::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::Sum() const {
  double total = 0;
  for (double s : samples_) {
    total += s;
  }
  return total;
}

double Distribution::Mean() const {
  if (samples_.empty()) {
    return 0;
  }
  return Sum() / static_cast<double>(samples_.size());
}

double Distribution::Min() const {
  Sort();
  return samples_.empty() ? 0 : samples_.front();
}

double Distribution::Max() const {
  Sort();
  return samples_.empty() ? 0 : samples_.back();
}

double Distribution::Stddev() const {
  if (samples_.size() < 2) {
    return 0;
  }
  double mean = Mean();
  double acc = 0;
  for (double s : samples_) {
    acc += (s - mean) * (s - mean);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Distribution::Quantile(double q) const {
  if (samples_.empty()) {
    return 0;
  }
  VSCHED_CHECK(q >= 0 && q <= 1);
  Sort();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Distribution::MergeFrom(const Distribution& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = samples_.empty();
}

size_t Distribution::CountAbove(double threshold) const {
  Sort();
  return static_cast<size_t>(samples_.end() -
                             std::upper_bound(samples_.begin(), samples_.end(), threshold));
}

void Distribution::Clear() {
  samples_.clear();
  sorted_ = true;
}

Histogram::Histogram(double lo, double hi, size_t buckets) : lo_(lo), hi_(hi), counts_(buckets, 0) {
  VSCHED_CHECK(hi > lo);
  VSCHED_CHECK(buckets > 0);
}

void Histogram::Add(double sample, double weight) {
  double span = hi_ - lo_;
  double rel = (sample - lo_) / span * static_cast<double>(counts_.size());
  int64_t idx = static_cast<int64_t>(rel);
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  counts_[static_cast<size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(size_t i) const { return bucket_lo(i + 1); }

double Histogram::Fraction(size_t i) const {
  if (total_ <= 0) {
    return 0;
  }
  return counts_[i] / total_;
}

void TimeSeries::Add(TimeNs t, double value) { points_.emplace_back(t, value); }

double TimeSeries::MeanInWindow(TimeNs from, TimeNs to) const {
  double sum = 0;
  size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= from && t < to) {
      sum += v;
      ++n;
    }
  }
  return n == 0 ? 0 : sum / static_cast<double>(n);
}

void TimeWeightedValue::Set(TimeNs now, double value) {
  if (started_) {
    VSCHED_CHECK(now >= last_change_);
    integral_ += current_ * static_cast<double>(now - last_change_);
  } else {
    start_ = now;
    started_ = true;
  }
  last_change_ = now;
  current_ = value;
}

double TimeWeightedValue::MeanUntil(TimeNs now) const {
  if (!started_ || now <= start_) {
    return current_;
  }
  double total = integral_ + current_ * static_cast<double>(now - last_change_);
  return total / static_cast<double>(now - start_);
}

}  // namespace vsched
