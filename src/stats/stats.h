// Streaming statistics used by probers, metrics, and benches.
#ifndef SRC_STATS_STATS_H_
#define SRC_STATS_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"

namespace vsched {

// Exponential moving average, as used by vcap for capacity smoothing
// (paper §3.1): new = alpha * sample + (1 - alpha) * old. `alpha` is derived
// from a decay specification like "50% per 2 periods".
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}

  // Alpha such that the weight of history halves every `periods` updates.
  static Ema WithHalfLife(double periods);

  void Add(double sample);
  bool has_value() const { return initialized_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }
  void Reset();

 private:
  double alpha_;
  double value_ = 0;
  bool initialized_ = false;
};

// Sample reservoir with exact quantiles. Simulation scale (at most a few
// million samples per run) makes exact storage affordable.
class Distribution {
 public:
  void Add(double sample);
  size_t count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  // q in [0,1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  // Samples strictly greater than `threshold` (SLO-violation counting).
  size_t CountAbove(double threshold) const;
  // Appends every sample of `other` (fleet-level aggregation across VMs).
  void MergeFrom(const Distribution& other);
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
  void Clear();

 private:
  void Sort() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
// the edge buckets. Used for e.g. the active-core-count histogram (Fig 12a).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double sample, double weight = 1.0);
  size_t bucket_count() const { return counts_.size(); }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;
  double bucket_weight(size_t i) const { return counts_[i]; }
  double total_weight() const { return total_; }
  // Fraction of total weight in bucket i (0 when empty).
  double Fraction(size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0;
};

// Named monotonic counter.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Time series of (t, value) points, e.g. live Nginx throughput (Fig 16/17).
class TimeSeries {
 public:
  void Add(TimeNs t, double value);
  size_t size() const { return points_.size(); }
  TimeNs time_at(size_t i) const { return points_[i].first; }
  double value_at(size_t i) const { return points_[i].second; }
  // Mean of values with time in [from, to).
  double MeanInWindow(TimeNs from, TimeNs to) const;

 private:
  std::vector<std::pair<TimeNs, double>> points_;
};

// Integrates a piecewise-constant signal over time; Mean() gives the
// time-weighted average. Used for e.g. ground-truth vCPU capacity.
class TimeWeightedValue {
 public:
  explicit TimeWeightedValue(TimeNs start = 0) : last_change_(start) {}

  void Set(TimeNs now, double value);
  // Total integral up to `now` divided by elapsed time.
  double MeanUntil(TimeNs now) const;
  double current() const { return current_; }

 private:
  TimeNs start_ = 0;
  TimeNs last_change_ = 0;
  double current_ = 0;
  double integral_ = 0;
  bool started_ = false;
};

}  // namespace vsched

#endif  // SRC_STATS_STATS_H_
