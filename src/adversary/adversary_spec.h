// Parameter sets for adversarial co-tenant workloads (ROADMAP item 2,
// grounded in "Scheduler Vulnerabilities and Attacks in Cloud Computing",
// PAPERS.md). Strategic attackers, as opposed to the merely-noisy fault
// classes: each spec is a deterministic phased activity pattern for a host
// scheduling entity, recording the attacker's *assumptions* about the victim
// (tick period, probe cadence, refill grid). Pure data — the drivers in
// src/adversary/adversary.h turn a spec into seeded simulation events, and
// never read probe or scheduler state (enforced by the vsched-lint
// `adversary-surface` rule).
#ifndef SRC_ADVERSARY_ADVERSARY_SPEC_H_
#define SRC_ADVERSARY_ADVERSARY_SPEC_H_

#include "src/base/time.h"

namespace vsched {

// Cycle-stealer: steals a slice of every guest accounting tick, sized to
// stay under vact's steal-jump threshold so the theft is never counted as a
// preemption and the vCPU looks responsive while losing `duty` of its time.
struct CycleStealSpec {
  bool enabled = false;
  TimeNs tick_period = MsToNs(1);  // assumed guest tick
  double duty = 0.15;              // stolen fraction of each tick
  TimeNs phase = 0;                // offset of the first theft slice
  int victim_vcpus = 0;            // first N vCPUs; 0 = all, -1 = first half
};

// Probe-evader: assumes the vcap sampling grid (window length + period) and
// goes quiet exactly while a capacity window could be open, hammering the
// victim the rest of the time — vcap and the pair probes see an idle host.
struct ProbeEvadeSpec {
  bool enabled = false;
  TimeNs window_period = MsToNs(100);  // assumed vcap sampling period
  TimeNs quiet_len = MsToNs(12);       // assumed window length + guard band
  TimeNs phase = 0;                    // offset of the assumed window grid
  double aggressiveness = 1.0;         // loud-phase duty in (0, 1]
  int victim_vcpus = 0;                // first N vCPUs; 0 = all, -1 = first half
};

// Refill-timed noisy neighbor: a bandwidth-capped co-tenant that spends its
// whole quota in one burst right after every refill — maximum instantaneous
// interference per token, timed against the CFS bandwidth refill grid.
struct RefillBurstSpec {
  bool enabled = false;
  TimeNs refill_period = MsToNs(20);  // the attacker's own cap period
  double quota_fraction = 0.35;       // quota as a fraction of the period
  TimeNs phase = 0;                   // offset of the attacker's arrival
  int victim_vcpus = 0;               // first N vCPUs; 0 = all, -1 = first half
};

struct AdversarySpec {
  CycleStealSpec steal;
  ProbeEvadeSpec evade;
  RefillBurstSpec burst;

  bool active() const { return steal.enabled || evade.enabled || burst.enabled; }
};

}  // namespace vsched

#endif  // SRC_ADVERSARY_ADVERSARY_SPEC_H_
