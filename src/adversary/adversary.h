// Adversarial co-tenant drivers: deterministic scheduler-attack workloads.
//
// Each driver turns one AdversarySpec into a phased activity pattern on host
// scheduling entities (Stressor), pinned to a fixed victim hardware-thread
// set. The drivers act ONLY through the public host surface — Stressor
// start/stop, duty cycles, and CFS bandwidth caps on their own entities.
// They never read probe estimates, scheduler internals, or detection state;
// the vsched-lint `adversary-surface` rule rejects any src/adversary/ code
// that so much as names those types. An attack is "smart" purely through the
// assumptions baked into its spec (tick period, probe cadence, refill grid),
// which is exactly the threat model of the scheduler-attack literature: the
// attacker knows the platform constants, not the victim's state.
#ifndef SRC_ADVERSARY_ADVERSARY_H_
#define SRC_ADVERSARY_ADVERSARY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/adversary/adversary_spec.h"
#include "src/base/time.h"
#include "src/host/stressor.h"
#include "src/host/topology.h"
#include "src/sim/event_queue.h"

namespace vsched {

class HostMachine;
class Simulation;

// Resolves a spec's victim_vcpus field against an available victim count:
// 0 selects all, -1 the first half (rounded up), N > 0 the first min(N, n).
int ResolveVictimCount(int victim_vcpus, int available);

// Base driver: owns one Stressor per victim hardware thread plus every
// event it schedules. Start() posts the class-specific launch; Stop()
// cancels pending events and detaches all stressors (idempotent).
class AdversaryDriver {
 public:
  AdversaryDriver(Simulation* sim, HostMachine* machine, std::vector<HwThreadId> victims,
                  std::string name);
  virtual ~AdversaryDriver();

  AdversaryDriver(const AdversaryDriver&) = delete;
  AdversaryDriver& operator=(const AdversaryDriver&) = delete;

  // Launches the attack. Activity begins no earlier than `at` (plus the
  // spec's phase); when `end` > 0 every entity is detached at `end`.
  virtual void Start(TimeNs at, TimeNs end) = 0;
  void Stop();

  const std::string& name() const { return name_; }
  // Stressor attach events fired so far (one per victim per launch).
  uint64_t activations() const { return activations_; }

 protected:
  // Creates (on first use) the stressor for victim slot `i`.
  Stressor* StressorFor(size_t i, double weight, bool rt);
  void Track(EventId id) { scheduled_.push_back(id); }
  void ArmStopAt(TimeNs end);

  Simulation* sim_;
  HostMachine* machine_;
  std::vector<HwThreadId> victims_;
  std::string name_;
  uint64_t activations_ = 0;

  std::vector<std::unique_ptr<Stressor>> stressors_;
  std::vector<EventId> scheduled_;

  // Liveness token for posted event closures (the PR-6 pattern, enforced by
  // vsched-lint's event-lifetime rule). Must be the last member so it
  // expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

// (1) Cycle-stealer: an RT entity steals `duty` of every assumed guest tick
// in one slice, so each per-tick steal jump stays below vact's qualification
// threshold and the theft never registers as a preemption.
class CycleStealer : public AdversaryDriver {
 public:
  CycleStealer(Simulation* sim, HostMachine* machine, std::vector<HwThreadId> victims,
               CycleStealSpec spec);
  void Start(TimeNs at, TimeNs end) override;

 private:
  CycleStealSpec spec_;
};

// (2) Probe-evader: an RT entity that is quiet during every assumed vcap
// window slot and monopolises the victim thread the rest of the period, so
// windowed probes observe a fictional idle host.
class ProbeEvader : public AdversaryDriver {
 public:
  ProbeEvader(Simulation* sim, HostMachine* machine, std::vector<HwThreadId> victims,
              ProbeEvadeSpec spec);
  void Start(TimeNs at, TimeNs end) override;

 private:
  ProbeEvadeSpec spec_;
};

// (3) Refill-timed noisy neighbor: an always-runnable RT entity under its
// own CFS bandwidth cap; it burns the full quota in one burst immediately
// after each refill, then throttles — maximum interference per token.
class RefillBurster : public AdversaryDriver {
 public:
  RefillBurster(Simulation* sim, HostMachine* machine, std::vector<HwThreadId> victims,
                RefillBurstSpec spec);
  void Start(TimeNs at, TimeNs end) override;

 private:
  RefillBurstSpec spec_;
};

// Instantiates one driver per enabled attack class in `spec`, all sharing
// the victim set. Used by the FaultInjector; also handy for tests.
std::vector<std::unique_ptr<AdversaryDriver>> MakeAdversaries(Simulation* sim,
                                                              HostMachine* machine,
                                                              std::vector<HwThreadId> victims,
                                                              const AdversarySpec& spec);

}  // namespace vsched

#endif  // SRC_ADVERSARY_ADVERSARY_H_
