#include "src/adversary/adversary.h"

#include <algorithm>
#include <utility>

#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {

namespace {
// RT weight for attack entities (weight is ignored in the RT class; this
// matches the fault layer's steal-burst default for the CFS fallback).
constexpr double kAttackWeight = 4096.0;
}  // namespace

int ResolveVictimCount(int victim_vcpus, int available) {
  if (available <= 0) {
    return 0;
  }
  if (victim_vcpus == 0) {
    return available;
  }
  if (victim_vcpus < 0) {
    return (available + 1) / 2;
  }
  return std::min(victim_vcpus, available);
}

AdversaryDriver::AdversaryDriver(Simulation* sim, HostMachine* machine,
                                 std::vector<HwThreadId> victims, std::string name)
    : sim_(sim), machine_(machine), victims_(std::move(victims)), name_(std::move(name)) {}

AdversaryDriver::~AdversaryDriver() { Stop(); }

void AdversaryDriver::Stop() {
  for (EventId id : scheduled_) {
    sim_->Cancel(id);
  }
  scheduled_.clear();
  for (auto& s : stressors_) {
    if (s != nullptr) {
      s->Stop();
    }
  }
}

Stressor* AdversaryDriver::StressorFor(size_t i, double weight, bool rt) {
  if (stressors_.size() <= i) {
    stressors_.resize(i + 1);
  }
  if (stressors_[i] == nullptr) {
    stressors_[i] = std::make_unique<Stressor>(
        sim_, name_ + "-" + std::to_string(victims_[i]), weight, rt);
  }
  return stressors_[i].get();
}

void AdversaryDriver::ArmStopAt(TimeNs end) {
  if (end <= 0) {
    return;
  }
  Track(sim_->At(end, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    for (auto& s : stressors_) {
      if (s != nullptr) {
        s->Stop();
      }
    }
  }));
}

// ---- CycleStealer -----------------------------------------------------------

CycleStealer::CycleStealer(Simulation* sim, HostMachine* machine, std::vector<HwThreadId> victims,
                           CycleStealSpec spec)
    : AdversaryDriver(sim, machine, std::move(victims), "adv-steal"), spec_(spec) {}

void CycleStealer::Start(TimeNs at, TimeNs end) {
  const TimeNs tick = std::max<TimeNs>(1, spec_.tick_period);
  const auto on = std::max<TimeNs>(
      1, static_cast<TimeNs>(static_cast<double>(tick) * std::clamp(spec_.duty, 0.0, 1.0)));
  const TimeNs off = std::max<TimeNs>(1, tick - on);
  const TimeNs launch = std::max(sim_->now(), at) + spec_.phase;
  Track(sim_->At(launch, [this, on, off, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    for (size_t i = 0; i < victims_.size(); ++i) {
      StressorFor(i, kAttackWeight, /*rt=*/true)
          ->StartDutyCycle(machine_, victims_[i], on, off);
      ++activations_;
    }
  }));
  ArmStopAt(end);
}

// ---- ProbeEvader ------------------------------------------------------------

ProbeEvader::ProbeEvader(Simulation* sim, HostMachine* machine, std::vector<HwThreadId> victims,
                         ProbeEvadeSpec spec)
    : AdversaryDriver(sim, machine, std::move(victims), "adv-evade"), spec_(spec) {}

void ProbeEvader::Start(TimeNs at, TimeNs end) {
  const TimeNs period = std::max<TimeNs>(2, spec_.window_period);
  const TimeNs quiet = std::clamp<TimeNs>(spec_.quiet_len, 1, period - 1);
  const double aggr = std::clamp(spec_.aggressiveness, 0.01, 1.0);
  const auto on = std::max<TimeNs>(
      1, static_cast<TimeNs>(static_cast<double>(period - quiet) * aggr));
  const TimeNs off = period - on;
  // Launch on the first loud-phase start at or after `at`: the duty cycle
  // begins ON at the call, so aligning the call to the end of an assumed
  // probe window keeps every quiet span covering a window slot exactly.
  const TimeNs base = std::max(sim_->now(), at);
  const TimeNs grid = spec_.phase + quiet;
  TimeNs k = (base - grid + period - 1) / period;
  if (k < 0) {
    k = 0;
  }
  const TimeNs launch = grid + k * period;
  Track(sim_->At(launch, [this, on, off, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    for (size_t i = 0; i < victims_.size(); ++i) {
      StressorFor(i, kAttackWeight, /*rt=*/true)
          ->StartDutyCycle(machine_, victims_[i], on, off);
      ++activations_;
    }
  }));
  ArmStopAt(end);
}

// ---- RefillBurster ----------------------------------------------------------

RefillBurster::RefillBurster(Simulation* sim, HostMachine* machine,
                             std::vector<HwThreadId> victims, RefillBurstSpec spec)
    : AdversaryDriver(sim, machine, std::move(victims), "adv-burst"), spec_(spec) {}

void RefillBurster::Start(TimeNs at, TimeNs end) {
  const TimeNs period = std::max<TimeNs>(2, spec_.refill_period);
  const auto quota = std::max<TimeNs>(
      1, static_cast<TimeNs>(static_cast<double>(period) *
                             std::clamp(spec_.quota_fraction, 0.0, 1.0)));
  const TimeNs launch = std::max(sim_->now(), at) + spec_.phase;
  // The cap must be configured while detached; attaching pins the refill
  // grid to the launch instant, so every burst lands right on a refill.
  for (size_t i = 0; i < victims_.size(); ++i) {
    StressorFor(i, kAttackWeight, /*rt=*/true)->SetBandwidth(quota, period);
  }
  Track(sim_->At(launch, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    for (size_t i = 0; i < victims_.size(); ++i) {
      StressorFor(i, kAttackWeight, /*rt=*/true)->Start(machine_, victims_[i]);
      ++activations_;
    }
  }));
  ArmStopAt(end);
}

// ---- Factory ----------------------------------------------------------------

std::vector<std::unique_ptr<AdversaryDriver>> MakeAdversaries(Simulation* sim,
                                                              HostMachine* machine,
                                                              std::vector<HwThreadId> victims,
                                                              const AdversarySpec& spec) {
  std::vector<std::unique_ptr<AdversaryDriver>> out;
  const int n = static_cast<int>(victims.size());
  auto subset = [&victims](int count) {
    return std::vector<HwThreadId>(victims.begin(), victims.begin() + count);
  };
  if (spec.steal.enabled) {
    out.push_back(std::make_unique<CycleStealer>(
        sim, machine, subset(ResolveVictimCount(spec.steal.victim_vcpus, n)), spec.steal));
  }
  if (spec.evade.enabled) {
    out.push_back(std::make_unique<ProbeEvader>(
        sim, machine, subset(ResolveVictimCount(spec.evade.victim_vcpus, n)), spec.evade));
  }
  if (spec.burst.enabled) {
    out.push_back(std::make_unique<RefillBurster>(
        sim, machine, subset(ResolveVictimCount(spec.burst.victim_vcpus, n)), spec.burst));
  }
  return out;
}

}  // namespace vsched
