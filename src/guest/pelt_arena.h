// Chunked arena for PELT signals.
//
// Task objects are a couple of cache lines each and are heap-allocated
// individually, so a classifier pass that touches every task's utilization
// (bvs small-task scans, ivh intensity checks, fleet consolidation sweeps)
// pays one cache miss per task. The arena packs the PeltSignal state of all
// of a kernel's tasks into contiguous chunks in task-creation order — the
// order those scans visit them — so consecutive signals share cache lines.
//
// Addresses are stable for the life of the arena (chunks never move), which
// is the property Task relies on to hold a raw PeltSignal*. Slots are never
// recycled: kernels create tasks append-only, and the arena dies with its
// kernel.
#ifndef SRC_GUEST_PELT_ARENA_H_
#define SRC_GUEST_PELT_ARENA_H_

#include <array>
#include <memory>
#include <vector>

#include "src/base/time.h"
#include "src/guest/pelt.h"

namespace vsched {

class PeltArena {
 public:
  static constexpr size_t kChunkSize = 64;

  PeltArena() = default;
  PeltArena(const PeltArena&) = delete;
  PeltArena& operator=(const PeltArena&) = delete;

  // Returns a fresh signal constructed with the given half-life. The pointer
  // stays valid until the arena is destroyed.
  PeltSignal* Allocate(TimeNs half_life = MsToNs(32)) {
    if (used_in_last_ == kChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
      used_in_last_ = 0;
    }
    PeltSignal* signal = &(*chunks_.back())[used_in_last_++];
    *signal = PeltSignal(half_life);
    return signal;
  }

  // Signals handed out so far (for tests/metrics).
  size_t size() const {
    return chunks_.empty() ? 0 : (chunks_.size() - 1) * kChunkSize + used_in_last_;
  }

 private:
  using Chunk = std::array<PeltSignal, kChunkSize>;

  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t used_in_last_ = kChunkSize;
};

}  // namespace vsched

#endif  // SRC_GUEST_PELT_ARENA_H_
