// Guest task model.
//
// A task alternates between run bursts (measured in work units), sleeps, and
// event waits, as directed by its TaskBehavior — the workload's logic. The
// guest kernel owns placement, runqueues, fairness, and migration; behaviors
// only decide what the task does next.
#ifndef SRC_GUEST_TASK_H_
#define SRC_GUEST_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/guest/cpumask.h"
#include "src/guest/pelt.h"

namespace vsched {

class GuestKernel;
class GuestVcpu;
class Simulation;
class Task;

// SCHED_NORMAL vs SCHED_IDLE (best-effort harvesting tasks, §2.3).
enum class TaskPolicy {
  kNormal,
  kIdle,
};

// CFS nice-to-weight table (kernel/sched/core.c sched_prio_to_weight).
// nice 0 → 1024; each step is ~1.25x.
double NiceToWeight(int nice);

enum class TaskState {
  kNew,       // created, not yet started
  kRunnable,  // on a runqueue
  kRunning,   // current on some vCPU
  kSleeping,  // timed sleep or event wait
  kFinished,
};

// What a task does next, returned by its behavior.
struct TaskAction {
  enum class Kind { kRun, kSleep, kWaitEvent, kExit };

  static TaskAction Run(Work work) { return {Kind::kRun, work, 0}; }
  static TaskAction Sleep(TimeNs dur) { return {Kind::kSleep, 0, dur}; }
  static TaskAction WaitEvent() { return {Kind::kWaitEvent, 0, 0}; }
  static TaskAction Exit() { return {Kind::kExit, 0, 0}; }

  Kind kind;
  Work work;
  TimeNs sleep_dur;
};

// Why the behavior is being asked for the next action.
enum class RunReason {
  kStarted,       // task's first action
  kBurstComplete, // previous run burst finished
  kSleepExpired,  // timed sleep ended
  kEventWake,     // another task/application woke it
};

struct TaskContext {
  Simulation* sim;
  GuestKernel* kernel;
  Task* task;
};

class TaskBehavior {
 public:
  virtual ~TaskBehavior() = default;
  virtual TaskAction Next(TaskContext& ctx, RunReason reason) = 0;
};

class Task {
 public:
  Task(uint64_t id, std::string name, TaskPolicy policy, TaskBehavior* behavior, CpuMask allowed);

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  TaskPolicy policy() const { return policy_; }
  TaskState state() const { return state_; }
  TaskBehavior* behavior() const { return behavior_; }

  // Scheduler weight: SCHED_IDLE gets the kernel's minimal weight (3);
  // normal tasks use the CFS nice-to-weight table.
  double weight() const { return policy_ == TaskPolicy::kIdle ? 3.0 : NiceToWeight(nice_); }

  // Nice level in [-20, 19]; affects the CFS weight of normal tasks.
  int nice() const { return nice_; }
  void set_nice(int nice);

  // Affinity the workload requested (cgroup bans are applied on top).
  CpuMask allowed() const { return allowed_; }
  void set_allowed(CpuMask mask) { allowed_ = mask; }

  // PELT utilization estimate in [0, kCapacityScale].
  double util() const { return pelt_->util(); }

  // Utilization decayed to `now` (read-only; sleeping/waiting counts as
  // inactive, running counts as active).
  double UtilAt(TimeNs now) const {
    return pelt_->UtilAt(now, state_ == TaskState::kRunning);
  }

  // CFS virtual runtime (read-only; the kernel maintains it).
  double vruntime() const { return vruntime_; }

  // EEVDF virtual deadline (maintained when the kernel runs in EEVDF mode).
  double vdeadline() const { return vdeadline_; }

  // vCPU currently hosting the task (running or queued), else last one.
  int cpu() const { return cpu_; }

  // Total time actually executed (vCPU active), i.e. excluding steal.
  TimeNs total_exec_ns() const { return total_exec_ns_; }

  // Execution time attributed to a given vCPU (Fig 11a's distribution).
  TimeNs exec_on(int cpu) const {
    return cpu < static_cast<int>(exec_per_cpu_.size()) ? exec_per_cpu_[cpu] : 0;
  }

  // Runqueue delay of the most recent dispatch (Table 3's "queue time").
  TimeNs last_queue_delay() const { return last_queue_delay_; }

  // Cumulative runqueue waiting time (workloads diff this around a request
  // to obtain the Table 3 queue-time breakdown).
  TimeNs queue_wait_total_ns() const { return queue_wait_total_ns_; }

  // How long the task has been running in its current stint (for ivh's
  // minimum-runtime threshold). Valid while kRunning.
  TimeNs stint_start() const { return stint_start_; }

  // Number of cross-runqueue migrations this task experienced.
  uint64_t migrations() const { return migrations_; }

  // Probe exemptions used by rwc (§3.4): vcap's light prober may still run on
  // straggler vCPUs; vtop's probers may run anywhere.
  bool exempt_straggler_ban() const { return exempt_straggler_ban_; }
  bool exempt_all_bans() const { return exempt_all_bans_; }
  void set_exempt_straggler_ban(bool v) { exempt_straggler_ban_ = v; }
  void set_exempt_all_bans(bool v) { exempt_all_bans_ = v; }

 private:
  friend class GuestKernel;
  friend class GuestVcpu;
  friend struct TaskAccess;

  const uint64_t id_;
  const std::string name_;
  const TaskPolicy policy_;
  TaskBehavior* const behavior_;
  CpuMask allowed_;

  TaskState state_ = TaskState::kNew;
  int nice_ = 0;
  int cpu_ = -1;
  int prev_cpu_ = -1;
  double vruntime_ = 0;
  double vdeadline_ = 0;
  // Points into the owning kernel's PeltArena for kernel-created tasks (set
  // by CreateTask, contiguous in creation order for scan locality); tasks
  // constructed standalone (tests, benches) fall back to the inline signal.
  PeltSignal own_pelt_;
  PeltSignal* pelt_ = &own_pelt_;

  Work burst_remaining_ = 0;
  TimeNs enqueue_time_ = 0;
  TimeNs last_queue_delay_ = 0;
  TimeNs queue_wait_total_ns_ = 0;
  TimeNs stint_start_ = 0;
  TimeNs total_exec_ns_ = 0;
  std::vector<TimeNs> exec_per_cpu_;
  uint64_t migrations_ = 0;
  TimeNs last_migration_time_ = -1;

  bool exempt_straggler_ban_ = false;
  bool exempt_all_bans_ = false;

  // Pending timed-wake event id lives in the kernel.
  uint64_t sleep_token_ = 0;
};

// White-box access for tests and microbenches that drive runqueue orderings
// directly; the kernel owns these fields in real simulations.
struct TaskAccess {
  static void SetVruntime(Task* task, double v) { task->vruntime_ = v; }
  static void SetVdeadline(Task* task, double v) { task->vdeadline_ = v; }
};

}  // namespace vsched

#endif  // SRC_GUEST_TASK_H_
