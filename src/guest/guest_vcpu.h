// Guest-side vCPU: runqueue, currently-running task, and the execution
// engine that advances task work at the hardware thread's effective speed
// while the vCPU is active at the host.
//
// The execution engine is segment-based: a segment opens when (task running ∧
// vCPU active) begins and closes on any change (host preemption, SMT/DVFS
// rate change, context switch). Work progresses at HostMachine::SpeedOf()
// during open segments only — a preempted vCPU's task is exactly the paper's
// "stalled running task" (§2.3).
#ifndef SRC_GUEST_GUEST_VCPU_H_
#define SRC_GUEST_GUEST_VCPU_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/base/time.h"
#include "src/guest/runqueue.h"
#include "src/guest/task.h"
#include "src/host/vcpu_thread.h"
#include "src/sim/timer_wheel.h"

namespace vsched {

class GuestKernel;
class HostMachine;
class Simulation;

class GuestVcpu : public VcpuHostClient {
 public:
  GuestVcpu(GuestKernel* kernel, int index, VcpuThread* thread);
  ~GuestVcpu() override;

  GuestVcpu(const GuestVcpu&) = delete;
  GuestVcpu& operator=(const GuestVcpu&) = delete;

  int index() const { return index_; }
  VcpuThread* thread() const { return thread_; }
  Runqueue& rq() { return rq_; }
  const Runqueue& rq() const { return rq_; }
  Task* current() const { return current_; }

  // Host-activity view (what a real guest can observe or infer).
  bool active() const { return thread_->active(); }
  TimeNs StealClock(TimeNs now) const { return thread_->steal_ns(now); }

  // Guest-scheduler idle: no current task and empty runqueue.
  bool IsIdle() const { return current_ == nullptr && rq_.empty(); }

  // When the vCPU last became guest-idle (valid while IsIdle()).
  TimeNs idle_since() const { return idle_since_; }

  // Total work units executed on this vCPU (the Fig 20 "cycles" proxy).
  Work work_done() const { return work_done_; }

  // Spin guards keep the vCPU demanding host time while a cross-vCPU
  // protocol (ivh's pull handshake) is in flight, even with an empty queue.
  void HoldSpin() {
    ++spin_holds_;
    UpdateHostDemand();
  }
  void ReleaseSpin() {
    VSCHED_CHECK(spin_holds_ > 0);
    --spin_holds_;
    UpdateHostDemand();
  }

  // Total time this vCPU was executing guest tasks.
  TimeNs busy_ns() const { return busy_ns_; }

  // CFS's own capacity estimate for this vCPU (possibly overridden by vcap
  // through the vSched bridge). Implemented in GuestKernel.
  double CfsCapacity() const;

  // VcpuHostClient:
  void OnVcpuScheduledIn(TimeNs now) override;
  void OnVcpuScheduledOut(TimeNs now) override;
  void OnVcpuRateChanged(TimeNs now) override;

 private:
  friend class GuestKernel;

  // Starts/stops accounting for (current task × active vCPU) intervals.
  void OpenSegment(TimeNs now);
  void CloseSegment(TimeNs now);
  // Folds the open segment into the task without closing it (tick sync).
  void SyncSegment(TimeNs now);

  void OnBurstComplete();

  // Re-evaluates what should run; performs the context switch. Only valid
  // while the vCPU is active (guest code executes).
  void Reschedule(TimeNs now);
  // Dispatches `next` (must be dequeued) as current.
  void Dispatch(Task* next, TimeNs now);
  // Moves current back to the runqueue (preemption) or leaves it off-queue.
  void PutCurrent(TimeNs now, bool requeue);

  // Updates the halted/wants-to-run demand signal toward the host.
  void UpdateHostDemand();

  GuestKernel* kernel_;
  Simulation* sim_;
  int index_;
  VcpuThread* thread_;
  Runqueue rq_;
  Task* current_ = nullptr;

  // Execution segment state. The burst-completion deadline is a wheel timer
  // registered once per vCPU and re-armed on every segment open: segments
  // open/close on every context switch and host preemption, which as heap
  // events made this one of the queue's hottest cancel/re-post pairs.
  bool segment_open_ = false;
  TimeNs segment_start_ = 0;
  double segment_speed_ = 0;
  TimerId completion_timer_ = kInvalidTimerId;

  bool resched_pending_ = false;
  TimeNs idle_since_ = 0;
  int spin_holds_ = 0;

  // Deferred function calls (IPIs) to execute when next active.
  std::vector<std::function<void()>> pending_ipis_;

  // Accounting.
  Work work_done_ = 0;
  TimeNs busy_ns_ = 0;

  // Raw CFS capacity estimation state (steal-based, §5.3).
  double cfs_cap_raw_ = kCapacityScale;
  TimeNs cfs_cap_last_update_ = 0;
  TimeNs cfs_cap_last_steal_ = 0;

  // Scheduler-tick bookkeeping.
  TimeNs last_tick_ = 0;
  TimeNs next_balance_ = 0;
  TimeNs next_active_balance_ = 0;

  // NOHZ state (tickless mode only): set when the periodic tick fired on an
  // inactive vCPU and went dormant; GuestKernel::ResumeTick re-arms on the
  // tick grid when the vCPU is scheduled back in.
  bool tick_stopped_ = false;
  TimeNs tick_stop_time_ = 0;

  // Liveness token for event closures (burst-completion events) posted to
  // the simulation: the closure no-ops once this vCPU is gone (the PR-6
  // pattern, enforced by vsched-lint's event-lifetime rule).
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_GUEST_GUEST_VCPU_H_
