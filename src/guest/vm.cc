#include "src/guest/vm.h"

#include "src/base/check.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {

GuestParams& VmSpec::mutable_guest_params() {
  auto copy = std::make_shared<GuestParams>(guest_params != nullptr ? *guest_params
                                                                    : GuestParams{});
  GuestParams& ref = *copy;
  guest_params = std::move(copy);
  return ref;
}

const GuestParams& VmSpec::guest_params_or_default() const {
  static const GuestParams kDefaults{};
  return guest_params != nullptr ? *guest_params : kDefaults;
}

Vm::Vm(Simulation* sim, HostMachine* machine, VmSpec spec)
    : sim_(sim), machine_(machine), spec_(std::move(spec)) {
  VSCHED_CHECK(!spec_.vcpus.empty());
  std::vector<VcpuThread*> raw_threads;
  for (size_t i = 0; i < spec_.vcpus.size(); ++i) {
    const VcpuPlacement& p = spec_.vcpus[i];
    auto thread = std::make_unique<VcpuThread>(spec_.name + "/vcpu" + std::to_string(i), p.weight);
    if (p.bw_quota > 0) {
      thread->SetBandwidth(p.bw_quota, p.bw_period);
    }
    machine_->Attach(thread.get(), p.tid);
    raw_threads.push_back(thread.get());
    threads_.push_back(std::move(thread));
  }
  kernel_ = std::make_unique<GuestKernel>(sim_, machine_, raw_threads, spec_.guest_params);
}

Vm::~Vm() {
  // Tear the kernel down first (cancels ticks and completion events), then
  // detach the vCPU threads from the host.
  kernel_.reset();
  for (auto& t : threads_) {
    t->SetWantsToRun(false);
    if (t->attached()) {
      machine_->sched(t->tid()).Detach(t.get());
    }
  }
}

void Vm::PinVcpu(int i, HwThreadId tid) {
  VSCHED_CHECK(i >= 0 && i < num_vcpus());
  machine_->Move(threads_[i].get(), tid);
}

void Vm::MigrateToMachine(HostMachine* dest, const std::vector<HwThreadId>& tids) {
  VSCHED_CHECK(dest != nullptr);
  VSCHED_CHECK(static_cast<int>(tids.size()) == num_vcpus());
  if (dest == machine_) {
    for (int i = 0; i < num_vcpus(); ++i) {
      PinVcpu(i, tids[i]);
      spec_.vcpus[static_cast<size_t>(i)].tid = tids[i];
    }
    return;
  }
  for (auto& t : threads_) {
    machine_->sched(t->tid()).Detach(t.get());
  }
  machine_ = dest;
  for (int i = 0; i < num_vcpus(); ++i) {
    spec_.vcpus[static_cast<size_t>(i)].tid = tids[i];
    dest->Attach(threads_[static_cast<size_t>(i)].get(), tids[i]);
  }
  kernel_->SetMachine(dest);
}

void Vm::SetPausedAll(bool paused) {
  for (auto& t : threads_) {
    t->SetPaused(paused);
  }
}

void Vm::SetVcpuBandwidth(int i, TimeNs quota, TimeNs period) {
  VSCHED_CHECK(i >= 0 && i < num_vcpus());
  VcpuThread* t = threads_[i].get();
  HwThreadId tid = t->tid();
  machine_->sched(tid).Detach(t);
  t->SetBandwidth(quota, period);
  machine_->sched(tid).Attach(t);
}

void Vm::ClearVcpuBandwidth(int i) {
  VSCHED_CHECK(i >= 0 && i < num_vcpus());
  VcpuThread* t = threads_[i].get();
  HwThreadId tid = t->tid();
  machine_->sched(tid).Detach(t);
  t->ClearBandwidth();
  machine_->sched(tid).Attach(t);
}

VmSpec MakeSimpleVmSpec(std::string name, int count, HwThreadId first_tid) {
  VmSpec spec;
  spec.name = std::move(name);
  for (int i = 0; i < count; ++i) {
    VcpuPlacement p;
    p.tid = first_tid + i;
    spec.vcpus.push_back(p);
  }
  return spec;
}

}  // namespace vsched
