#include "src/guest/vm.h"

#include "src/base/check.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {

Vm::Vm(Simulation* sim, HostMachine* machine, VmSpec spec)
    : sim_(sim), machine_(machine), spec_(std::move(spec)) {
  VSCHED_CHECK(!spec_.vcpus.empty());
  std::vector<VcpuThread*> raw_threads;
  for (size_t i = 0; i < spec_.vcpus.size(); ++i) {
    const VcpuPlacement& p = spec_.vcpus[i];
    auto thread = std::make_unique<VcpuThread>(spec_.name + "/vcpu" + std::to_string(i), p.weight);
    if (p.bw_quota > 0) {
      thread->SetBandwidth(p.bw_quota, p.bw_period);
    }
    machine_->Attach(thread.get(), p.tid);
    raw_threads.push_back(thread.get());
    threads_.push_back(std::move(thread));
  }
  kernel_ = std::make_unique<GuestKernel>(sim_, machine_, raw_threads, spec_.guest_params);
}

Vm::~Vm() {
  // Tear the kernel down first (cancels ticks and completion events), then
  // detach the vCPU threads from the host.
  kernel_.reset();
  for (auto& t : threads_) {
    t->SetWantsToRun(false);
    if (t->attached()) {
      machine_->sched(t->tid()).Detach(t.get());
    }
  }
}

void Vm::PinVcpu(int i, HwThreadId tid) {
  VSCHED_CHECK(i >= 0 && i < num_vcpus());
  machine_->Move(threads_[i].get(), tid);
}

void Vm::SetVcpuBandwidth(int i, TimeNs quota, TimeNs period) {
  VSCHED_CHECK(i >= 0 && i < num_vcpus());
  VcpuThread* t = threads_[i].get();
  HwThreadId tid = t->tid();
  machine_->sched(tid).Detach(t);
  t->SetBandwidth(quota, period);
  machine_->sched(tid).Attach(t);
}

void Vm::ClearVcpuBandwidth(int i) {
  VSCHED_CHECK(i >= 0 && i < num_vcpus());
  VcpuThread* t = threads_[i].get();
  HwThreadId tid = t->tid();
  machine_->sched(tid).Detach(t);
  t->ClearBandwidth();
  machine_->sched(tid).Attach(t);
}

VmSpec MakeSimpleVmSpec(std::string name, int count, HwThreadId first_tid) {
  VmSpec spec;
  spec.name = std::move(name);
  for (int i = 0; i < count; ++i) {
    VcpuPlacement p;
    p.tid = first_tid + i;
    spec.vcpus.push_back(p);
  }
  return spec;
}

}  // namespace vsched
