#include "src/guest/guest_vcpu.h"

#include <utility>

#include "src/base/check.h"
#include "src/guest/guest_kernel.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {

GuestVcpu::GuestVcpu(GuestKernel* kernel, int index, VcpuThread* thread)
    : kernel_(kernel), sim_(kernel->sim()), index_(index), thread_(thread) {
  thread_->BindClient(this);
  rq_.SetEevdf(kernel->params().use_eevdf);
  completion_timer_ = sim_->CreateTimer([this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnBurstComplete();
  });
}

GuestVcpu::~GuestVcpu() {
  sim_->DestroyTimer(completion_timer_);
  thread_->BindClient(nullptr);
}

double GuestVcpu::CfsCapacity() const { return kernel_->CfsCapacityOf(index_); }

void GuestVcpu::OnVcpuScheduledIn(TimeNs now) {
  kernel_->ResumeTick(index_);  // NOHZ: restart a stopped tick on its grid.
  if (current_ != nullptr) {
    OpenSegment(now);
  }
  if (!pending_ipis_.empty()) {
    std::vector<std::function<void()>> ipis;
    ipis.swap(pending_ipis_);
    for (auto& fn : ipis) {
      fn();
    }
  }
  if (resched_pending_ || (current_ == nullptr && !rq_.empty())) {
    Reschedule(now);
  } else if (current_ == nullptr) {
    // Pre-woken with nothing to do (e.g. an abandoned ivh handshake).
    UpdateHostDemand();
  }
}

void GuestVcpu::OnVcpuScheduledOut(TimeNs now) { CloseSegment(now); }

void GuestVcpu::OnVcpuRateChanged(TimeNs now) {
  if (segment_open_) {
    CloseSegment(now);
    OpenSegment(now);
  }
}

void GuestVcpu::OpenSegment(TimeNs now) {
  VSCHED_CHECK(!segment_open_);
  VSCHED_CHECK(current_ != nullptr);
  if (!active()) {
    return;  // Will open on the next OnVcpuScheduledIn.
  }
  // Guest PELT cannot observe steal: any host-inactive gap while this task
  // was current counts as running time (as it would on real Linux in a VM).
  // Designated PELT entry point: opening a running span.
  // vsched-lint: allow(pelt-eager-update)
  current_->pelt_->Update(now, /*active=*/true);
  segment_open_ = true;
  segment_start_ = now;
  segment_speed_ = kernel_->machine()->SpeedOf(thread_->tid());
  VSCHED_CHECK(segment_speed_ > 0);
  sim_->ArmTimerAfter(completion_timer_,
                      TimeToComplete(current_->burst_remaining_, segment_speed_));
}

void GuestVcpu::SyncSegment(TimeNs now) {
  if (!segment_open_) {
    return;
  }
  VSCHED_CHECK(current_ != nullptr);
  TimeNs delta = now - segment_start_;
  if (delta <= 0) {
    return;
  }
  segment_start_ = now;
  Work executed = segment_speed_ * static_cast<double>(delta);
  Task* t = current_;
  t->burst_remaining_ = std::max(0.0, t->burst_remaining_ - executed);
  t->total_exec_ns_ += delta;
  if (static_cast<int>(t->exec_per_cpu_.size()) <= index_) {
    t->exec_per_cpu_.resize(index_ + 1, 0);
  }
  t->exec_per_cpu_[index_] += delta;
  // vsched-lint: allow(raw-double-accum) — increments are exact small-int multiples; audited against drift
  t->vruntime_ += static_cast<double>(delta) * (kCapacityScale / t->weight());
  // Lazy PELT: the per-tick sync no longer writes the signal; the running
  // span folds in once, when the segment closes (CloseSegment below).
  rq_.RaiseMinVruntime(t->vruntime_);
  work_done_ += executed;
  busy_ns_ += delta;
  // The completion event stays valid: remaining work and remaining time
  // shrink together at the unchanged speed.
}

void GuestVcpu::CloseSegment(TimeNs now) {
  if (!segment_open_) {
    return;
  }
  SyncSegment(now);
  // Designated PELT entry point: fold the whole running span in one update
  // (the per-tick Update this replaces advanced the same exponential in
  // smaller steps — identical in the closed form).
  // vsched-lint: allow(pelt-eager-update)
  current_->pelt_->Update(now, /*active=*/true);
  segment_open_ = false;
  sim_->CancelTimer(completion_timer_);
}

void GuestVcpu::OnBurstComplete() {
  TimeNs now = sim_->now();
  VSCHED_CHECK(current_ != nullptr);
  CloseSegment(now);
  current_->burst_remaining_ = 0;
  Task* t = current_;
  TaskContext ctx{sim_, kernel_, t};
  TaskAction action = t->behavior()->Next(ctx, RunReason::kBurstComplete);
  kernel_->ApplyAction(t, action, /*on_cpu=*/true, now);
}

void GuestVcpu::Dispatch(Task* next, TimeNs now) {
  VSCHED_CHECK(current_ == nullptr);
  VSCHED_CHECK(next->state_ == TaskState::kRunnable);
  // Designated PELT entry point: close out the waiting interval.
  // vsched-lint: allow(pelt-eager-update)
  next->pelt_->Update(now, /*active=*/false);
  TimeNs delay = now - next->enqueue_time_;
  next->last_queue_delay_ = delay;
  next->queue_wait_total_ns_ += delay;
  next->state_ = TaskState::kRunning;
  next->cpu_ = index_;
  next->stint_start_ = now;
  // EEVDF: grant one slice worth of virtual time per dispatch.
  next->vdeadline_ = next->vruntime_ +
                     static_cast<double>(kernel_->params().min_granularity) *
                         (kCapacityScale / next->weight());
  current_ = next;
  kernel_->counters().context_switches.Inc();
  UpdateHostDemand();
  if (active()) {
    OpenSegment(now);
  }
}

void GuestVcpu::PutCurrent(TimeNs now, bool requeue) {
  VSCHED_CHECK(current_ != nullptr);
  CloseSegment(now);
  Task* prev = current_;
  current_ = nullptr;
  if (requeue) {
    prev->state_ = TaskState::kRunnable;
    prev->enqueue_time_ = now;
    // Designated PELT entry point: the preempted task starts waiting here.
    // vsched-lint: allow(pelt-eager-update)
    prev->pelt_->Update(now, /*active=*/false);
    rq_.Enqueue(prev);
  }
}

void GuestVcpu::Reschedule(TimeNs now) {
  resched_pending_ = false;
  if (current_ != nullptr) {
    SyncSegment(now);
  }
  Task* next = rq_.Pick();
  if (current_ == nullptr) {
    if (next != nullptr) {
      rq_.Dequeue(next);
      Dispatch(next, now);
    } else {
      idle_since_ = now;
      UpdateHostDemand();
      kernel_->NewIdleBalance(this, now);
    }
    return;
  }
  if (next != nullptr && kernel_->ShouldPreempt(current_, next)) {
    PutCurrent(now, /*requeue=*/true);
    rq_.Dequeue(next);
    Dispatch(next, now);
    return;
  }
  // Keep running; make sure the segment is open (burst boundaries close it).
  if (!segment_open_ && active() && current_->burst_remaining_ > 0) {
    OpenSegment(now);
  }
}

void GuestVcpu::UpdateHostDemand() {
  bool wants = current_ != nullptr || !rq_.empty() || !pending_ipis_.empty() || spin_holds_ > 0;
  if (wants) {
    thread_->GuestWake();
  } else {
    thread_->GuestHalt();
  }
}

}  // namespace vsched
