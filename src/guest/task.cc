#include "src/guest/task.h"

#include "src/base/check.h"

namespace vsched {

double NiceToWeight(int nice) {
  static const double kWeights[40] = {
      // -20 .. -11
      88761, 71755, 56483, 46273, 36291, 29154, 23254, 18705, 14949, 11916,
      // -10 .. -1
      9548, 7620, 6100, 4904, 3906, 3121, 2501, 1991, 1586, 1277,
      // 0 .. 9
      1024, 820, 655, 526, 423, 335, 272, 215, 172, 137,
      // 10 .. 19
      110, 87, 70, 56, 45, 36, 29, 23, 18, 15};
  VSCHED_CHECK(nice >= -20 && nice <= 19);
  return kWeights[nice + 20];
}

void Task::set_nice(int nice) {
  VSCHED_CHECK(nice >= -20 && nice <= 19);
  nice_ = nice;
}

Task::Task(uint64_t id, std::string name, TaskPolicy policy, TaskBehavior* behavior,
           CpuMask allowed)
    : id_(id), name_(std::move(name)), policy_(policy), behavior_(behavior), allowed_(allowed) {}

}  // namespace vsched
