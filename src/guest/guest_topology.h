// The vCPU topology as the guest kernel believes it to be.
//
// By default hypervisors expose vCPUs as symmetric UMA CPUs (§2.1): no SMT
// siblings and a single flat LLC domain. vtop rebuilds this structure with
// the probed reality (schedule-domain rebuild, §4). Stacked vCPUs are
// recorded so rwc can ban all but one per group.
#ifndef SRC_GUEST_GUEST_TOPOLOGY_H_
#define SRC_GUEST_GUEST_TOPOLOGY_H_

#include <vector>

#include "src/guest/cpumask.h"

namespace vsched {

struct GuestTopology {
  // Per-vCPU masks, each including the vCPU itself.
  std::vector<CpuMask> smt_mask;   // SMT-sibling schedule domain
  std::vector<CpuMask> llc_mask;   // LLC (socket) schedule domain
  std::vector<CpuMask> stack_mask; // vCPUs stacked on the same hardware thread

  // The default (inaccurate) abstraction: flat UMA, no siblings, no stacking.
  static GuestTopology FlatUma(int num_vcpus) {
    GuestTopology topo;
    CpuMask all = CpuMask::FirstN(num_vcpus);
    for (int i = 0; i < num_vcpus; ++i) {
      topo.smt_mask.push_back(CpuMask::Single(i));
      topo.llc_mask.push_back(all);
      topo.stack_mask.push_back(CpuMask::Single(i));
    }
    return topo;
  }

  int num_vcpus() const { return static_cast<int>(smt_mask.size()); }

  bool operator==(const GuestTopology& other) const {
    return smt_mask == other.smt_mask && llc_mask == other.llc_mask &&
           stack_mask == other.stack_mask;
  }
};

}  // namespace vsched

#endif  // SRC_GUEST_GUEST_TOPOLOGY_H_
