// Per-entity load tracking (PELT), continuous-time approximation.
//
// Linux PELT accumulates a geometric series over 1 ms segments with a 32 ms
// half-life. We track the same signal in closed form: on every state change
// the average decays by 2^(-dt/32ms) and accrues the new contribution. The
// signal converges to kCapacityScale × duty-cycle, exactly like the kernel's
// util_avg, which is what bvs and ivh consume to classify tasks (§3.2, §3.3).
#ifndef SRC_GUEST_PELT_H_
#define SRC_GUEST_PELT_H_

#include "src/base/time.h"

namespace vsched {

class PeltSignal {
 public:
  // `half_life` of the decaying average (Linux: 32 ms).
  explicit PeltSignal(TimeNs half_life = MsToNs(32)) : half_life_(half_life) {}

  // Advances the signal to `now` given that the entity has been in state
  // `active` (running/runnable for util purposes) since the last update.
  void Update(TimeNs now, bool active);

  // Current utilization in [0, kCapacityScale]. Call Update() first so the
  // value reflects `now`.
  double util() const { return util_; }

  // Utilization decayed to `now` assuming the entity stayed in `active`
  // state since the last update, without mutating the signal.
  double UtilAt(TimeNs now, bool active) const;

  // Seeds the signal (new tasks start with a modest util so they are neither
  // misclassified as tiny nor as hogs before any history exists).
  void Seed(TimeNs now, double util);

 private:
  TimeNs half_life_;
  TimeNs last_update_ = 0;
  double util_ = 0;
};

}  // namespace vsched

#endif  // SRC_GUEST_PELT_H_
