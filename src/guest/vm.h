// A virtual machine: vCPU threads pinned onto host hardware threads plus a
// guest kernel managing them.
//
// Per-vCPU host weight and CFS-bandwidth settings reproduce the paper's
// capacity/latency shaping (§5.1): quota f·P per period P makes a vCPU
// active for f·P then inactive for (1−f)·P when demand is continuous, i.e.
// capacity ≈ f and vCPU latency ≈ (1−f)·P.
#ifndef SRC_GUEST_VM_H_
#define SRC_GUEST_VM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/guest/guest_kernel.h"
#include "src/host/topology.h"
#include "src/host/vcpu_thread.h"

namespace vsched {

class HostMachine;
class Simulation;

struct VcpuPlacement {
  HwThreadId tid = 0;
  double weight = 1024.0;
  TimeNs bw_quota = 0;   // 0 → uncapped
  TimeNs bw_period = 0;
};

struct VmSpec {
  std::string name = "vm";
  std::vector<VcpuPlacement> vcpus;
  // Shared immutable snapshot; null means defaults. Fleet builders point
  // thousands of specs at one snapshot; per-spec tweaks go through
  // mutable_guest_params(), which copies on write.
  std::shared_ptr<const GuestParams> guest_params;

  // Returns a mutable copy owned by this spec (fresh defaults if unset).
  // The reference is invalidated by the next assignment to guest_params.
  GuestParams& mutable_guest_params();
  const GuestParams& guest_params_or_default() const;
};

class Vm {
 public:
  Vm(Simulation* sim, HostMachine* machine, VmSpec spec);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  const std::string& name() const { return spec_.name; }
  int num_vcpus() const { return static_cast<int>(threads_.size()); }
  GuestKernel& kernel() { return *kernel_; }
  const GuestKernel& kernel() const { return *kernel_; }
  VcpuThread& thread(int i) { return *threads_[i]; }

  // Re-pins a vCPU (vCPU/VM migration, Fig 16 phases).
  void PinVcpu(int i, HwThreadId tid);

  // Live VM migration commit point: atomically detaches every vCPU thread
  // from the current host and re-attaches it to `dest` at `tids` (one per
  // vCPU). Weights, bandwidth caps, pause state, and pending demand carry
  // over; the guest kernel is repointed at the destination. The caller
  // models copy latency and downtime around this call (src/cluster/).
  void MigrateToMachine(HostMachine* dest, const std::vector<HwThreadId>& tids);

  // Pauses/unpauses every vCPU thread (migration downtime blackout: paused
  // demand accumulates as steal, which is what the guest observes).
  void SetPausedAll(bool paused);

  // Re-shapes a vCPU's host bandwidth (capacity/latency change at runtime).
  void SetVcpuBandwidth(int i, TimeNs quota, TimeNs period);
  void ClearVcpuBandwidth(int i);

 private:
  Simulation* sim_;
  HostMachine* machine_;
  VmSpec spec_;
  std::vector<std::unique_ptr<VcpuThread>> threads_;
  std::unique_ptr<GuestKernel> kernel_;
};

// Convenience builder: `count` vCPUs pinned 1:1 starting at `first_tid`.
VmSpec MakeSimpleVmSpec(std::string name, int count, HwThreadId first_tid = 0);

}  // namespace vsched

#endif  // SRC_GUEST_VM_H_
