// The guest OS scheduler: a CFS-compatible kernel for one VM.
//
// Implements the Linux mechanisms vSched builds on (§2.2): per-vCPU
// runqueues with vruntime fairness and SCHED_IDLE subordination, PELT,
// wake-up CPU selection over schedule domains, periodic/idle load balancing,
// misfit active balance, steal-aware CFS capacity estimation, cgroup-cpuset
// banning, and scheduler-tick hooks. vSched (src/core) attaches to the hook
// points exactly where the paper inserts BPF hooks and its kernel module.
#ifndef SRC_GUEST_GUEST_KERNEL_H_
#define SRC_GUEST_GUEST_KERNEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/guest/cpumask.h"
#include "src/guest/guest_topology.h"
#include "src/guest/guest_vcpu.h"
#include "src/guest/pelt_arena.h"
#include "src/guest/task.h"
#include "src/sim/rng.h"
#include "src/sim/timer_wheel.h"
#include "src/stats/stats.h"

namespace vsched {

class FaultInjector;
class HostMachine;
class Simulation;
class VcpuThread;

struct GuestParams {
  // Pick policy: CFS (default) or EEVDF — demonstrates vSched's claim of
  // portability across fair schedulers (§4).
  bool use_eevdf = false;
  TimeNs tick_period = MsToNs(1);
  // NOHZ-style tick elision: an inactive (descheduled) vCPU stops its
  // periodic tick and re-arms on the grid when it is next scheduled in.
  // Elided firings are provable no-ops, so observable state — vruntime,
  // PELT, bvs/ivh classifications, stats, JSONL — is byte-identical either
  // way (enforced by the vsched_run_tickless ctest).
  bool tickless = false;
  // Guest CFS granularities (guest-side, distinct from the host's).
  TimeNs min_granularity = UsToNs(1500);
  TimeNs wakeup_granularity = UsToNs(1000);
  // Periodic load balance interval per vCPU.
  TimeNs balance_interval = MsToNs(4);
  // Busiest/local load ratio that triggers a pull.
  double imbalance_pct = 1.25;
  // Misfit active balance: task util above this fraction of the vCPU's
  // capacity marks it misfit; a target needs this much more capacity.
  double misfit_util_fraction = 0.8;
  double misfit_capacity_margin = 1.2;
  // Minimum gap between capacity-driven active-balance pushes per vCPU
  // (stands in for CFS's nr_balance_failed escalation).
  TimeNs active_balance_interval = MsToNs(32);
  // Balancer will not re-migrate a task this soon after its last migration
  // (CFS cache-hot / migration-cost analogue).
  TimeNs migration_cooldown = MsToNs(5);
  // Reschedule-IPI delivery delay to an active remote vCPU.
  TimeNs ipi_delay = UsToNs(5);
  // Capacity asymmetry ratio beyond which wake placement turns greedy on
  // capacity (mirrors CFS asym-capacity wake paths).
  double asym_capacity_ratio = 1.15;
  // Steal-based CFS capacity estimate smoothing half-life.
  TimeNs cfs_cap_half_life = MsToNs(100);
  // Idle vCPUs' estimates drift back to full capacity with this half-life
  // (steal is only observable while busy — the §5.3 mismatch).
  TimeNs cfs_cap_idle_drift_half_life = MsToNs(250);
};

// Aggregate scheduler counters for experiments.
struct KernelCounters {
  Counter migrations;          // queued-task pulls + wake rebalances
  Counter active_migrations;   // running-task (misfit/ivh) migrations
  Counter context_switches;
  Counter wakeup_ipis;             // reschedule IPIs to other vCPUs
  Counter wakeup_ipis_cross_socket;  // ... crossing physical sockets
};

class GuestKernel {
 public:
  // Primary constructor: params are a shared immutable snapshot, so a fleet
  // of thousands of VMs built from one spec holds one copy total. A null
  // snapshot means defaults.
  GuestKernel(Simulation* sim, HostMachine* machine, std::vector<VcpuThread*> threads,
              std::shared_ptr<const GuestParams> params);
  // Convenience for single-VM call sites.
  GuestKernel(Simulation* sim, HostMachine* machine, std::vector<VcpuThread*> threads,
              GuestParams params = GuestParams{});
  ~GuestKernel();

  GuestKernel(const GuestKernel&) = delete;
  GuestKernel& operator=(const GuestKernel&) = delete;

  Simulation* sim() const { return sim_; }
  HostMachine* machine() const { return machine_; }
  // Live VM migration: repoints the kernel at the destination host. The
  // caller (Vm::MigrateToMachine) must have re-attached every vCPU thread to
  // `machine` first; topology-derived caches are not kept across the switch.
  void SetMachine(HostMachine* machine) { machine_ = machine; }
  const GuestParams& params() const { return *params_; }
  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }
  GuestVcpu& vcpu(int i) { return *vcpus_[i]; }
  const GuestVcpu& vcpu(int i) const { return *vcpus_[i]; }
  KernelCounters& counters() { return counters_; }

  // ---- Task lifecycle (workload-facing) ----

  // Creates a task; the behavior must outlive it. `allowed` defaults to all.
  Task* CreateTask(std::string name, TaskPolicy policy, TaskBehavior* behavior,
                   CpuMask allowed = CpuMask(~0ULL));

  // Starts a new task: asks the behavior for its first action and places it.
  void StartTask(Task* task);

  // Wakes a task waiting on an event (no-op unless it is kSleeping on an
  // event wait). `waker_cpu` biases placement, -1 for external events.
  void WakeTask(Task* task, int waker_cpu = -1);

  // ---- Scheduler state (prober/vSched-facing) ----

  // Current simulated kernel clock (sched_clock analogue).
  TimeNs SchedClock() const;

  // The CFS capacity estimate used by all capacity-aware paths. Overridden
  // per-vCPU via SetCapacityOverride (the vSched kernel module).
  double CfsCapacityOf(int cpu) const;
  void SetCapacityOverride(int cpu, double capacity);
  void ClearCapacityOverrides();

  // Linux only enables misfit/asymmetric-capacity paths when the topology
  // declares distinct CPU capacities (SD_ASYM_CPUCAPACITY). In a VM that
  // happens only when vcap publishes real capacities via overrides.
  bool AsymCapacityKnown() const;

  // Schedule-domain rebuild (vtop → kernel module, §4).
  const GuestTopology& topology() const { return topology_; }
  void RebuildSchedDomains(const GuestTopology& topo);

  // cgroup-cpuset bans (rwc, §3.4). Straggler-banned vCPUs may still run
  // SCHED_IDLE and straggler-exempt tasks; stack-banned vCPUs only run
  // all-ban-exempt tasks (vtop probers). Applying bans evacuates newly
  // ineligible tasks.
  void SetBans(CpuMask straggler_banned, CpuMask stack_banned);
  CpuMask straggler_banned() const { return straggler_banned_; }
  CpuMask stack_banned() const { return stack_banned_; }

  // Affinity actually usable by `task` right now.
  CpuMask EffectiveAllowed(const Task* task) const;

  // Preemption rule shared by wakeups, burst boundaries, and ticks: a higher
  // class always preempts; within a class, `next` must lead by more than the
  // wakeup granularity in vruntime.
  bool ShouldPreempt(const Task* curr, const Task* next) const;

  // ---- Hooks (where the paper's BPF programs attach, §4) ----

  // Wake/fork placement override; return -1 to fall back to CFS. Receives
  // (task, prev_cpu, waker_cpu).
  using SelectHook = std::function<int(Task*, int, int)>;
  void set_select_hook(SelectHook hook) { select_hook_ = std::move(hook); }

  // Invoked on each scheduler tick of an *active* vCPU, after CFS tick work.
  using TickHook = std::function<void(GuestVcpu*, TimeNs)>;
  void AddTickHook(TickHook hook) { tick_hooks_.push_back(std::move(hook)); }

  // ---- Primitives vSched components build on ----

  // Runs `fn` in the context of vCPU `cpu`: after ipi_delay if it is active,
  // otherwise deferred until it next becomes active. If `kick` is set and
  // the vCPU is halted, it is woken (pre-wake, §3.3).
  void RunOnVcpu(int cpu, std::function<void()> fn, bool kick = false);

  // Migrates a queued (not running) task. Returns false if no longer queued.
  bool MigrateQueuedTask(Task* task, int to_cpu);

  // Migrates the running task of `from_cpu` onto `to_cpu` (stopper-style).
  // Returns false if `task` is no longer running there.
  bool MigrateRunningTask(Task* task, int from_cpu, int to_cpu);

  // Work-unit penalty for transferring `cache_lines` between the hardware
  // threads currently hosting two vCPUs (communication cost model, Fig 13).
  Work CommWorkPenalty(int from_cpu, int to_cpu, int cache_lines) const;

  // True if the two vCPUs' hardware threads are in different sockets now.
  bool CrossSocketPhysical(int cpu_a, int cpu_b) const;

  // ---- Fault injection (src/fault/) ----
  // The probes consult this at their registered injection points; null (the
  // default) means no chaos and leaves every probe path untouched.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // ---- Test/bench utilities ----
  Rng& rng() { return rng_; }
  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }

 private:
  friend class GuestVcpu;

  // CFS wake placement (select_task_rq_fair analogue).
  int SelectTaskRqCfs(Task* task, int prev_cpu, int waker_cpu);
  int ScanForIdle(CpuMask domain, bool want_idle_core, int scan_from);

  // Places and enqueues a runnable task, kicking the target vCPU.
  void EnqueueTask(Task* task, int cpu, bool wakeup, int waker_cpu);
  void SendReschedIpi(int from_cpu, int to_cpu);

  // Tick machinery.
  void OnTick(int cpu);
  void CfsTick(GuestVcpu* v, TimeNs now);
  void MisfitCheck(GuestVcpu* v, TimeNs now);
  // Re-arms a NOHZ-stopped tick on its grid; called when the vCPU is
  // scheduled back in. No-op unless the tick is stopped.
  void ResumeTick(int cpu);

  // Load balancing.
  void PeriodicBalance(GuestVcpu* v, TimeNs now);
  void NewIdleBalance(GuestVcpu* v, TimeNs now);
  bool TryPullInto(GuestVcpu* v, CpuMask domain, bool idle_pull, TimeNs now);

  // Behavior-action plumbing.
  void ApplyAction(Task* task, TaskAction action, bool on_cpu, TimeNs now, int waker_cpu = -1);
  void TimedWake(Task* task, uint64_t token);
  void CountIpi(int from_cpu, int to_cpu);
  void FinishTask(Task* task, TimeNs now);
  void EvacuateIneligible(TimeNs now);

  Simulation* sim_;
  HostMachine* machine_;
  std::shared_ptr<const GuestParams> params_;
  Rng rng_;

  std::vector<std::unique_ptr<GuestVcpu>> vcpus_;
  // Declared before tasks_: tasks hold raw pointers into the arena, so it
  // must be destroyed after them.
  PeltArena pelt_arena_;
  std::vector<std::unique_ptr<Task>> tasks_;
  uint64_t next_task_id_ = 1;
  uint64_t next_sleep_token_ = 1;

  GuestTopology topology_;
  std::vector<double> capacity_override_;  // <0 → none
  CpuMask straggler_banned_;
  CpuMask stack_banned_;

  SelectHook select_hook_;
  std::vector<TickHook> tick_hooks_;
  FaultInjector* fault_injector_ = nullptr;

  KernelCounters counters_;
  int scan_rotor_ = 0;

  // One registered wheel timer per vCPU, re-armed in place every period.
  // (This replaces a vector of per-firing heap EventIds, which kept stale
  // cancelled handles alive for the VM lifetime; a TimerId is a stable slot
  // that re-arming reclaims.) tick_origins_ pins each vCPU's tick grid so a
  // NOHZ-stopped tick resumes on exactly the phase it would have kept.
  std::vector<TimerId> tick_timers_;
  std::vector<TimeNs> tick_origins_;
  bool shutting_down_ = false;
  // IPI deliveries (RunOnVcpu, SendReschedIpi) are in-flight simulation
  // events holding raw GuestVcpu/kernel pointers. A VM destroyed
  // mid-simulation (fleet tenant departure) would leave them dangling, so
  // each delivery closure checks this token and no-ops once it expires.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_GUEST_GUEST_KERNEL_H_
