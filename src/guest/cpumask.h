// Set of vCPU indices, analogous to the kernel's cpumask_t. Supports VMs of
// up to 64 vCPUs (the paper's largest VM has 32).
#ifndef SRC_GUEST_CPUMASK_H_
#define SRC_GUEST_CPUMASK_H_

#include <bit>
#include <cstdint>

#include "src/base/check.h"

namespace vsched {

class CpuMask {
 public:
  constexpr CpuMask() = default;
  constexpr explicit CpuMask(uint64_t bits) : bits_(bits) {}

  static constexpr CpuMask None() { return CpuMask(0); }
  static CpuMask FirstN(int n) {
    VSCHED_CHECK(n >= 0 && n <= 64);
    return n == 64 ? CpuMask(~0ULL) : CpuMask((1ULL << n) - 1);
  }
  static CpuMask Single(int cpu) {
    VSCHED_CHECK(cpu >= 0 && cpu < 64);
    return CpuMask(1ULL << cpu);
  }

  bool Test(int cpu) const {
    VSCHED_CHECK(cpu >= 0 && cpu < 64);
    return (bits_ >> cpu) & 1;
  }
  void Set(int cpu) { bits_ |= (1ULL << cpu); }
  void Clear(int cpu) { bits_ &= ~(1ULL << cpu); }

  bool Empty() const { return bits_ == 0; }
  int Count() const { return std::popcount(bits_); }
  uint64_t bits() const { return bits_; }

  // Index of the lowest set bit, or -1 when empty.
  int First() const { return bits_ == 0 ? -1 : std::countr_zero(bits_); }

  // Index of the lowest set bit >= cpu, or -1.
  int NextFrom(int cpu) const {
    if (cpu >= 64) {
      return -1;
    }
    uint64_t masked = bits_ & (~0ULL << cpu);
    return masked == 0 ? -1 : std::countr_zero(masked);
  }

  friend CpuMask operator&(CpuMask a, CpuMask b) { return CpuMask(a.bits_ & b.bits_); }
  friend CpuMask operator|(CpuMask a, CpuMask b) { return CpuMask(a.bits_ | b.bits_); }
  friend CpuMask operator~(CpuMask a) { return CpuMask(~a.bits_); }
  friend bool operator==(CpuMask a, CpuMask b) { return a.bits_ == b.bits_; }

  // Iteration: for (int cpu : mask) { ... }
  class Iterator {
   public:
    Iterator(uint64_t bits) : bits_(bits) {}
    int operator*() const { return std::countr_zero(bits_); }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return bits_ != other.bits_; }

   private:
    uint64_t bits_;
  };
  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

 private:
  uint64_t bits_ = 0;
};

}  // namespace vsched

#endif  // SRC_GUEST_CPUMASK_H_
