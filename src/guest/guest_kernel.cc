#include "src/guest/guest_kernel.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/base/check.h"
#include "src/base/decay.h"
#include "src/base/log.h"
#include "src/base/perf_counters.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {
namespace {

// Class rank for preemption: normal tasks strictly dominate SCHED_IDLE.
int ClassRank(const Task* t) { return t->policy() == TaskPolicy::kNormal ? 1 : 0; }

}  // namespace

GuestKernel::GuestKernel(Simulation* sim, HostMachine* machine, std::vector<VcpuThread*> threads,
                         GuestParams params)
    : GuestKernel(sim, machine, std::move(threads),
                  std::make_shared<const GuestParams>(params)) {}

GuestKernel::GuestKernel(Simulation* sim, HostMachine* machine, std::vector<VcpuThread*> threads,
                         std::shared_ptr<const GuestParams> params)
    : sim_(sim),
      machine_(machine),
      params_(params != nullptr ? std::move(params) : std::make_shared<const GuestParams>()),
      rng_(sim->ForkRng()) {
  VSCHED_CHECK(!threads.empty());
  VSCHED_CHECK(threads.size() <= 64);
  int n = static_cast<int>(threads.size());
  for (int i = 0; i < n; ++i) {
    vcpus_.push_back(std::make_unique<GuestVcpu>(this, i, threads[i]));
  }
  topology_ = GuestTopology::FlatUma(n);
  capacity_override_.assign(n, -1.0);
  tick_timers_.reserve(static_cast<size_t>(n));
  tick_origins_.reserve(static_cast<size_t>(n));
  std::vector<std::pair<TimerId, TimeNs>> arm_batch;
  arm_batch.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Stagger ticks so all vCPUs do not interrupt at the same instant. The
    // first firing defines the vCPU's tick grid for the whole run.
    TimeNs offset = params_->tick_period + static_cast<TimeNs>(i) * 1777;
    tick_timers_.push_back(
        sim_->CreateTimer([this, i, alive = std::weak_ptr<const bool>(alive_)] {
          if (alive.expired()) {
            return;
          }
          OnTick(i);
        }));
    tick_origins_.push_back(sim_->now() + offset);
    arm_batch.emplace_back(tick_timers_.back(), tick_origins_.back());
  }
  sim_->wheel().ArmBatch(arm_batch);
}

GuestKernel::~GuestKernel() {
  shutting_down_ = true;
  for (TimerId id : tick_timers_) {
    sim_->DestroyTimer(id);
  }
}

TimeNs GuestKernel::SchedClock() const { return sim_->now(); }

// ---------------------------------------------------------------------------
// Task lifecycle
// ---------------------------------------------------------------------------

Task* GuestKernel::CreateTask(std::string name, TaskPolicy policy, TaskBehavior* behavior,
                              CpuMask allowed) {
  CpuMask clipped = allowed & CpuMask::FirstN(num_vcpus());
  VSCHED_CHECK_MSG(!clipped.Empty(), "task affinity excludes every vCPU");
  auto task =
      std::make_unique<Task>(next_task_id_++, std::move(name), policy, behavior, clipped);
  Task* raw = task.get();
  // Rebind the signal into the kernel's arena: creation order == scan order
  // for the classifier passes, so consecutive tasks' signals share lines.
  raw->pelt_ = pelt_arena_.Allocate();
  raw->pelt_->Seed(sim_->now(), kCapacityScale / 2);
  tasks_.push_back(std::move(task));
  return raw;
}

void GuestKernel::StartTask(Task* task) {
  VSCHED_CHECK(task->state_ == TaskState::kNew);
  TaskContext ctx{sim_, this, task};
  TaskAction action = task->behavior()->Next(ctx, RunReason::kStarted);
  task->state_ = TaskState::kSleeping;  // Neutral pre-state for ApplyAction.
  ApplyAction(task, action, /*on_cpu=*/false, sim_->now());
}

void GuestKernel::WakeTask(Task* task, int waker_cpu) {
  if (task->state_ != TaskState::kSleeping) {
    return;  // Wakeup on a runnable/running task is a no-op (like Linux).
  }
  // Cancel any pending timed wake.
  task->sleep_token_ = 0;
  TaskContext ctx{sim_, this, task};
  TaskAction action = task->behavior()->Next(ctx, RunReason::kEventWake);
  ApplyAction(task, action, /*on_cpu=*/false, sim_->now(), waker_cpu);
}

void GuestKernel::TimedWake(Task* task, uint64_t token) {
  if (task->state_ != TaskState::kSleeping || task->sleep_token_ != token) {
    return;  // Stale timer.
  }
  task->sleep_token_ = 0;
  TaskContext ctx{sim_, this, task};
  TaskAction action = task->behavior()->Next(ctx, RunReason::kSleepExpired);
  ApplyAction(task, action, /*on_cpu=*/false, sim_->now());
}

void GuestKernel::ApplyAction(Task* task, TaskAction action, bool on_cpu, TimeNs now,
                              int waker_cpu) {
  GuestVcpu* v = on_cpu ? vcpus_[task->cpu_].get() : nullptr;
  if (on_cpu) {
    VSCHED_CHECK(v->current_ == task);
  }
  switch (action.kind) {
    case TaskAction::Kind::kRun: {
      VSCHED_CHECK(action.work > 0);
      task->burst_remaining_ = action.work;
      if (on_cpu) {
        if (!EffectiveAllowed(task).Test(task->cpu_)) {
          // The behavior changed its own affinity (sched_setaffinity): move
          // the task off this vCPU before continuing.
          v->PutCurrent(now, /*requeue=*/false);
          task->state_ = TaskState::kRunnable;
          int dest = SelectTaskRqCfs(task, /*prev_cpu=*/-1, /*waker_cpu=*/-1);
          EnqueueTask(task, dest, /*wakeup=*/false, /*waker_cpu=*/v->index());
          v->Reschedule(now);
          return;
        }
        v->Reschedule(now);
      } else {
        task->state_ = TaskState::kRunnable;
        int cpu = -1;
        if (select_hook_) {
          cpu = select_hook_(task, task->prev_cpu_, waker_cpu);
        }
        if (cpu < 0) {
          cpu = SelectTaskRqCfs(task, task->prev_cpu_, waker_cpu);
        }
        EnqueueTask(task, cpu, /*wakeup=*/true, waker_cpu);
      }
      return;
    }
    case TaskAction::Kind::kSleep: {
      VSCHED_CHECK(action.sleep_dur >= 0);
      task->state_ = TaskState::kSleeping;
      uint64_t token = next_sleep_token_++;
      task->sleep_token_ = token;
      sim_->After(action.sleep_dur,
                  [this, task, token, alive = std::weak_ptr<const bool>(alive_)] {
                    if (alive.expired()) {
                      return;
                    }
                    TimedWake(task, token);
                  });
      if (on_cpu) {
        task->prev_cpu_ = task->cpu_;
        v->PutCurrent(now, /*requeue=*/false);
        v->Reschedule(now);
      }
      return;
    }
    case TaskAction::Kind::kWaitEvent: {
      task->state_ = TaskState::kSleeping;
      task->sleep_token_ = 0;
      if (on_cpu) {
        task->prev_cpu_ = task->cpu_;
        v->PutCurrent(now, /*requeue=*/false);
        v->Reschedule(now);
      }
      return;
    }
    case TaskAction::Kind::kExit: {
      if (on_cpu) {
        v->PutCurrent(now, /*requeue=*/false);
        FinishTask(task, now);
        v->Reschedule(now);
      } else {
        FinishTask(task, now);
      }
      return;
    }
  }
}

void GuestKernel::FinishTask(Task* task, TimeNs now) {
  (void)now;
  task->state_ = TaskState::kFinished;
  task->sleep_token_ = 0;
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

bool GuestKernel::ShouldPreempt(const Task* curr, const Task* next) const {
  if (ClassRank(next) != ClassRank(curr)) {
    return ClassRank(next) > ClassRank(curr);
  }
  double gran = static_cast<double>(params_->wakeup_granularity);
  return next->vruntime_ + gran < curr->vruntime_;
}

CpuMask GuestKernel::EffectiveAllowed(const Task* task) const {
  CpuMask m = task->allowed_ & CpuMask::FirstN(num_vcpus());
  if (!task->exempt_all_bans_) {
    m = m & ~stack_banned_;
    if (task->policy() == TaskPolicy::kNormal && !task->exempt_straggler_ban_) {
      m = m & ~straggler_banned_;
    }
  }
  if (m.Empty()) {
    // Never strand a task: fall back to its raw affinity.
    m = task->allowed_ & CpuMask::FirstN(num_vcpus());
  }
  return m;
}

namespace {

// Placement-idleness: like Linux's sched_idle_cpu(), a vCPU running only
// SCHED_IDLE work counts as idle for wake placement — a waking fair task
// preempts best-effort work immediately.
bool IdleForPlacement(const GuestVcpu& v, TaskPolicy policy) {
  (void)policy;
  if (v.IsIdle()) {
    return true;
  }
  bool current_idle = v.current() == nullptr || v.current()->policy() == TaskPolicy::kIdle;
  return current_idle && (v.rq().empty() || v.rq().OnlyIdleTasks());
}

}  // namespace

int GuestKernel::ScanForIdle(CpuMask domain, bool want_idle_core, int scan_from) {
  int n = num_vcpus();
  for (int k = 0; k < n; ++k) {
    int cpu = (scan_from + k) % n;
    if (!domain.Test(cpu)) {
      continue;
    }
    if (!vcpus_[cpu]->IsIdle()) {
      continue;
    }
    if (want_idle_core) {
      bool core_idle = true;
      for (int sib : topology_.smt_mask[cpu]) {
        if (!vcpus_[sib]->IsIdle()) {
          core_idle = false;
          break;
        }
      }
      if (!core_idle) {
        continue;
      }
    }
    return cpu;
  }
  return -1;
}

int GuestKernel::SelectTaskRqCfs(Task* task, int prev_cpu, int waker_cpu) {
  CpuMask allowed = EffectiveAllowed(task);
  VSCHED_CHECK(!allowed.Empty());

  int target = prev_cpu;
  if (target < 0) {
    target = waker_cpu;
  }
  // Wake-affine: if prev is outside the waker's LLC, pull toward the waker.
  if (waker_cpu >= 0 && prev_cpu >= 0 && !topology_.llc_mask[waker_cpu].Test(prev_cpu)) {
    target = waker_cpu;
  }
  if (target < 0 || !allowed.Test(target)) {
    target = allowed.First();
  }
  CpuMask domain = topology_.llc_mask[target] & allowed;
  if (domain.Empty()) {
    domain = allowed;
  }

  int scan_from = scan_rotor_;
  scan_rotor_ = (scan_rotor_ + 7) % std::max(1, num_vcpus());

  // Asymmetric-capacity path (select_idle_capacity): scan for the first
  // idle vCPU whose capacity fits the task's utilization; remember the
  // strongest seen as a fallback. Enabled only when the topology declares
  // asymmetric capacities — i.e. when vcap published them.
  if (AsymCapacityKnown()) {
    double need = task->UtilAt(sim_->now()) * 1.2;
    int best = -1;
    double best_cap = 0;
    for (int k = 0; k < num_vcpus(); ++k) {
      int cpu = (scan_from + k) % num_vcpus();
      if (!allowed.Test(cpu) || !IdleForPlacement(*vcpus_[cpu], task->policy())) {
        continue;
      }
      double c = CfsCapacityOf(cpu);
      if (c >= need) {
        return cpu;
      }
      if (c > best_cap) {
        best_cap = c;
        best = cpu;
      }
    }
    if (best >= 0) {
      return best;
    }
  }

  // Pass 1: a fully idle core in the domain (SMT-aware, needs vtop's masks).
  int cpu = ScanForIdle(domain, /*want_idle_core=*/true, scan_from);
  if (cpu >= 0) {
    return cpu;
  }
  // Pass 2: any idle vCPU in the domain.
  cpu = ScanForIdle(domain, /*want_idle_core=*/false, scan_from);
  if (cpu >= 0) {
    return cpu;
  }
  // Pass 2b: SCHED_IDLE-only queues count as idle for placement.
  for (int k = 0; k < num_vcpus(); ++k) {
    int c = (scan_from + k) % num_vcpus();
    if (domain.Test(c) && IdleForPlacement(*vcpus_[c], task->policy())) {
      return c;
    }
  }
  // Pass 3: least-loaded (normalized by capacity) in the domain.
  int best = target;
  double best_score = 1e300;
  for (int c : domain) {
    const GuestVcpu& v = *vcpus_[c];
    double load = v.rq().load() +
                  (v.current() != nullptr && v.current()->policy() == TaskPolicy::kNormal
                       ? v.current()->weight()
                       : 0.0);
    double score = load / std::max(1.0, CfsCapacityOf(c));
    if (score < best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

void GuestKernel::EnqueueTask(Task* task, int cpu, bool wakeup, int waker_cpu) {
  VSCHED_CHECK(cpu >= 0 && cpu < num_vcpus());
  VSCHED_CHECK(task->state_ == TaskState::kRunnable);
  TimeNs now = sim_->now();
  GuestVcpu& v = *vcpus_[cpu];

  if (task->cpu_ >= 0 && task->cpu_ != cpu) {
    ++task->migrations_;
    task->last_migration_time_ = now;
    counters_.migrations.Inc();
  }
  task->cpu_ = cpu;
  task->prev_cpu_ = cpu;
  task->enqueue_time_ = now;
  // Designated PELT entry point: closes the task's waiting/sleeping span.
  // vsched-lint: allow(pelt-eager-update)
  task->pelt_->Update(now, /*active=*/false);

  double credit = wakeup ? static_cast<double>(params_->min_granularity) : 0.0;
  task->vruntime_ = std::max(task->vruntime_, v.rq_.min_vruntime() - credit);
  task->vdeadline_ = task->vruntime_ + static_cast<double>(params_->min_granularity) *
                                           (kCapacityScale / task->weight());
  v.rq_.Enqueue(task);

  bool was_halted = !v.thread()->wants_to_run();
  if (was_halted && waker_cpu >= 0 && waker_cpu != cpu) {
    // Kicking a halted remote vCPU is an IPI (a hypercall wake on KVM),
    // regardless of how quickly the host then schedules it.
    CountIpi(waker_cpu, cpu);
  }
  v.resched_pending_ = true;
  v.UpdateHostDemand();  // May synchronously activate and dispatch.

  if (task->state_ != TaskState::kRunnable || task->cpu_ != cpu ||
      v.current_ == task) {
    return;  // Already dispatched during the synchronous activation.
  }
  if (v.active()) {
    if (waker_cpu == cpu) {
      // Same-CPU wakeup: the waking context may still be mid-decision in a
      // behavior ("preemption disabled"); reschedule once the current call
      // stack unwinds.
      GuestVcpu* vp = &v;
      sim_->After(0, [this, vp, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) {
          return;
        }
        if (vp->resched_pending_ && vp->active()) {
          vp->Reschedule(sim_->now());
        }
      });
    } else {
      SendReschedIpi(waker_cpu, cpu);
    }
  }
  // If attached-but-preempted, resched_pending_ already covers it.
}

void GuestKernel::CountIpi(int from_cpu, int to_cpu) {
  counters_.wakeup_ipis.Inc();
  if (from_cpu >= 0 && CrossSocketPhysical(from_cpu, to_cpu)) {
    counters_.wakeup_ipis_cross_socket.Inc();
  }
}

void GuestKernel::SendReschedIpi(int from_cpu, int to_cpu) {
  CountIpi(from_cpu, to_cpu);
  GuestVcpu* v = vcpus_[to_cpu].get();
  v->resched_pending_ = true;
  sim_->After(params_->ipi_delay,
              [this, v, alive = std::weak_ptr<const bool>(alive_)] {
                if (alive.expired()) {
                  return;  // VM destroyed while the IPI was in flight.
                }
                if (v->active() && v->resched_pending_) {
                  v->Reschedule(sim_->now());
                }
              });
}

void GuestKernel::RunOnVcpu(int cpu, std::function<void()> fn, bool kick) {
  GuestVcpu* v = vcpus_[cpu].get();
  if (v->active()) {
    sim_->After(params_->ipi_delay,
                [v, fn = std::move(fn),
                 alive = std::weak_ptr<const bool>(alive_)]() mutable {
                  if (alive.expired()) {
                    return;  // VM destroyed while the IPI was in flight.
                  }
                  if (v->active()) {
                    fn();
                  } else {
                    v->pending_ipis_.push_back(std::move(fn));
                    v->UpdateHostDemand();
                  }
                });
    return;
  }
  v->pending_ipis_.push_back(std::move(fn));
  if (kick) {
    v->thread()->GuestWake();  // Pre-wake: demand host time to deliver.
  }
}

// ---------------------------------------------------------------------------
// Migration
// ---------------------------------------------------------------------------

bool GuestKernel::MigrateQueuedTask(Task* task, int to_cpu) {
  if (task->state_ != TaskState::kRunnable) {
    return false;
  }
  GuestVcpu& from = *vcpus_[task->cpu_];
  if (!from.rq_.Contains(task)) {
    return false;
  }
  if (task->cpu_ == to_cpu) {
    return true;
  }
  from.rq_.Dequeue(task);
  from.UpdateHostDemand();
  EnqueueTask(task, to_cpu, /*wakeup=*/false, /*waker_cpu=*/-1);
  return true;
}

bool GuestKernel::MigrateRunningTask(Task* task, int from_cpu, int to_cpu) {
  GuestVcpu& from = *vcpus_[from_cpu];
  if (from.current_ != task || task->state_ != TaskState::kRunning) {
    return false;
  }
  if (!from.active()) {
    return false;  // Source preempted: the stopper cannot run; abandon.
  }
  TimeNs now = sim_->now();
  from.PutCurrent(now, /*requeue=*/false);
  task->state_ = TaskState::kRunnable;
  counters_.active_migrations.Inc();
  EnqueueTask(task, to_cpu, /*wakeup=*/false, /*waker_cpu=*/from_cpu);
  from.Reschedule(now);
  return true;
}

// ---------------------------------------------------------------------------
// Capacity
// ---------------------------------------------------------------------------

double GuestKernel::CfsCapacityOf(int cpu) const {
  if (capacity_override_[cpu] >= 0) {
    return capacity_override_[cpu];
  }
  const GuestVcpu& v = *vcpus_[cpu];
  double raw = v.cfs_cap_raw_;
  if (v.IsIdle()) {
    // Steal is invisible while idle: the estimate drifts back toward full
    // capacity — the very mismatch §5.3 demonstrates.
    TimeNs idle_for = sim_->now() - v.cfs_cap_last_update_;
    double decay = HalfLifeDecay(idle_for, params_->cfs_cap_idle_drift_half_life);
    return kCapacityScale + (raw - kCapacityScale) * decay;
  }
  return raw;
}

void GuestKernel::SetCapacityOverride(int cpu, double capacity) {
  VSCHED_CHECK(cpu >= 0 && cpu < num_vcpus());
  capacity_override_[cpu] = capacity;
}

void GuestKernel::ClearCapacityOverrides() {
  std::fill(capacity_override_.begin(), capacity_override_.end(), -1.0);
}

bool GuestKernel::AsymCapacityKnown() const {
  double min_cap = -1;
  double max_cap = -1;
  for (double c : capacity_override_) {
    if (c < 0) {
      continue;
    }
    if (min_cap < 0 || c < min_cap) {
      min_cap = c;
    }
    if (c > max_cap) {
      max_cap = c;
    }
  }
  if (min_cap < 0) {
    return false;
  }
  return max_cap > std::max(1.0, min_cap) * params_->asym_capacity_ratio;
}

void GuestKernel::RebuildSchedDomains(const GuestTopology& topo) {
  VSCHED_CHECK(topo.num_vcpus() == num_vcpus());
  topology_ = topo;
}

void GuestKernel::SetBans(CpuMask straggler_banned, CpuMask stack_banned) {
  straggler_banned_ = straggler_banned & CpuMask::FirstN(num_vcpus());
  stack_banned_ = stack_banned & CpuMask::FirstN(num_vcpus());
  EvacuateIneligible(sim_->now());
}

void GuestKernel::EvacuateIneligible(TimeNs now) {
  for (auto& vp : vcpus_) {
    GuestVcpu* v = vp.get();
    int cpu = v->index();
    // Collect queued tasks that may no longer live here.
    std::vector<Task*> to_move;
    v->rq_.ForEach([&](Task* t) {
      if (!EffectiveAllowed(t).Test(cpu)) {
        to_move.push_back(t);
      }
    });
    for (Task* t : to_move) {
      int dest = SelectTaskRqCfs(t, /*prev_cpu=*/-1, /*waker_cpu=*/-1);
      if (dest != cpu) {
        MigrateQueuedTask(t, dest);
      }
    }
    Task* curr = v->current_;
    if (curr != nullptr && !EffectiveAllowed(curr).Test(cpu)) {
      int dest = SelectTaskRqCfs(curr, /*prev_cpu=*/-1, /*waker_cpu=*/-1);
      if (dest != cpu) {
        if (v->active()) {
          MigrateRunningTask(curr, cpu, dest);
        } else {
          // Do it when the vCPU next runs (stopper needs the CPU).
          Task* task = curr;
          RunOnVcpu(cpu, [this, task, cpu, alive = std::weak_ptr<const bool>(alive_)] {
            if (alive.expired()) {
              return;
            }
            if (vcpus_[cpu]->current_ == task && !EffectiveAllowed(task).Test(cpu)) {
              int d = SelectTaskRqCfs(task, -1, -1);
              if (d != cpu) {
                MigrateRunningTask(task, cpu, d);
              }
            }
          });
        }
      }
    }
  }
  (void)now;
}

// ---------------------------------------------------------------------------
// Ticks
// ---------------------------------------------------------------------------

void GuestKernel::OnTick(int cpu) {
  if (shutting_down_) {
    return;
  }
  GuestVcpu* v = vcpus_[cpu].get();
  const TimerId timer = tick_timers_[static_cast<size_t>(cpu)];
  if (!v->active()) {
    // Tick interrupts are not delivered to a descheduled vCPU — this firing
    // mutates nothing. In tickless mode stop the tick entirely (NOHZ);
    // ResumeTick re-arms it on the same grid when the vCPU runs again.
    if (params_->tickless) {
      v->tick_stopped_ = true;
      v->tick_stop_time_ = sim_->now();
    } else {
      sim_->ArmTimerAfter(timer, params_->tick_period);
    }
    return;
  }
  sim_->ArmTimerAfter(timer, params_->tick_period);
  TimeNs now = sim_->now();
  CfsTick(v, now);
  for (auto& hook : tick_hooks_) {
    hook(v, now);
  }
  v->last_tick_ = now;
}

void GuestKernel::ResumeTick(int cpu) {
  GuestVcpu* v = vcpus_[static_cast<size_t>(cpu)].get();
  if (!v->tick_stopped_) {
    return;
  }
  v->tick_stopped_ = false;
  const TimerId timer = tick_timers_[static_cast<size_t>(cpu)];
  const TimeNs when = sim_->NextGridPoint(tick_origins_[static_cast<size_t>(cpu)],
                                          params_->tick_period, timer);
  // Every grid point between the stop and the resume would have been a
  // no-op firing on an inactive vCPU — those are the elided ticks.
  PerfCounters::Current()->ticks_elided +=
      static_cast<uint64_t>((when - v->tick_stop_time_) / params_->tick_period - 1);
  sim_->ArmTimerAt(timer, when);
}

void GuestKernel::CfsTick(GuestVcpu* v, TimeNs now) {
  v->SyncSegment(now);

  // Steal-based CFS capacity estimation (only observable while busy).
  TimeNs wall = now - v->cfs_cap_last_update_;
  if (wall > 0) {
    TimeNs steal_now = v->StealClock(now);
    TimeNs steal_delta = steal_now - v->cfs_cap_last_steal_;
    v->cfs_cap_last_steal_ = steal_now;
    v->cfs_cap_last_update_ = now;
    if (v->current_ != nullptr) {
      double frac = 1.0 - std::clamp(static_cast<double>(steal_delta) /
                                         static_cast<double>(wall),
                                     0.0, 1.0);
      double sample = kCapacityScale * frac;
      double alpha = 1.0 - HalfLifeDecay(wall, params_->cfs_cap_half_life);
      v->cfs_cap_raw_ += alpha * (sample - v->cfs_cap_raw_);
    }
  }

  // Preemption: immediate for class inversion, slice-based within a class.
  if (v->current_ != nullptr) {
    Task* next = v->rq_.Pick();
    if (next != nullptr) {
      bool class_inversion = ClassRank(next) > ClassRank(v->current_);
      TimeNs stint = now - v->current_->stint_start_;
      if (class_inversion || stint >= params_->min_granularity) {
        // At slice end the comparison is plain vruntime order.
        if (class_inversion || next->vruntime_ < v->current_->vruntime_) {
          v->PutCurrent(now, /*requeue=*/true);
          v->Reschedule(now);
        }
      }
    }
  }

  MisfitCheck(v, now);
  PeriodicBalance(v, now);
}

void GuestKernel::MisfitCheck(GuestVcpu* v, TimeNs now) {
  if (!AsymCapacityKnown()) {
    return;  // No declared capacity asymmetry → no misfit path (Linux).
  }
  Task* curr = v->current_;
  if (curr == nullptr || curr->policy() == TaskPolicy::kIdle) {
    return;
  }
  double cap = CfsCapacityOf(v->index());
  // Lazy PELT: evaluate at `now` without writing the signal back — the tick
  // path must not be a mutation point (see the pelt-eager-update lint rule).
  if (curr->pelt_->UtilAt(now, /*active=*/v->segment_open_) <
      params_->misfit_util_fraction * cap) {
    return;
  }
  CpuMask allowed = EffectiveAllowed(curr);
  int best = -1;
  double best_cap = cap * params_->misfit_capacity_margin;
  for (int c : allowed) {
    if (c == v->index() || !vcpus_[c]->IsIdle()) {
      continue;
    }
    double cc = CfsCapacityOf(c);
    if (cc > best_cap) {
      best_cap = cc;
      best = c;
    }
  }
  if (best >= 0) {
    MigrateRunningTask(curr, v->index(), best);
  }
}

// ---------------------------------------------------------------------------
// Load balancing
// ---------------------------------------------------------------------------

void GuestKernel::NewIdleBalance(GuestVcpu* v, TimeNs now) {
  if (shutting_down_) {
    return;
  }
  CpuMask allowed_all = CpuMask::FirstN(num_vcpus());
  if (TryPullInto(v, topology_.llc_mask[v->index()], /*idle_pull=*/true, now)) {
    return;
  }
  TryPullInto(v, allowed_all, /*idle_pull=*/true, now);
}

void GuestKernel::PeriodicBalance(GuestVcpu* v, TimeNs now) {
  if (now < v->next_balance_) {
    return;
  }
  v->next_balance_ = now + params_->balance_interval;

  // Pull phase: SMT domain, then LLC, then everything.
  if (TryPullInto(v, topology_.smt_mask[v->index()], /*idle_pull=*/false, now)) {
    return;
  }
  if (TryPullInto(v, topology_.llc_mask[v->index()], /*idle_pull=*/false, now)) {
    return;
  }
  if (TryPullInto(v, CpuMask::FirstN(num_vcpus()), /*idle_pull=*/false, now)) {
    return;
  }

  // Push phase (stands in for nohz idle balancing): if tasks wait here while
  // another vCPU idles, hand one over.
  if (v->rq_.normal_count() >= 1) {
    std::vector<Task*> queued;
    v->rq_.ForEach([&](Task* t) {
      if (t->policy() == TaskPolicy::kNormal) {
        queued.push_back(t);
      }
    });
    for (Task* t : queued) {
      if (t->last_migration_time_ >= 0 &&
          now - t->last_migration_time_ < params_->migration_cooldown) {
        continue;
      }
      CpuMask allowed = EffectiveAllowed(t);
      int dest = -1;
      for (int c : allowed) {
        if (c != v->index() && vcpus_[c]->IsIdle()) {
          dest = c;
          break;
        }
      }
      if (dest >= 0) {
        MigrateQueuedTask(t, dest);
        return;
      }
    }
  }

  // Capacity-driven active balance: if an idle vCPU looks substantially
  // stronger than this one (by the CFS capacity estimate — possibly a
  // steal-blind phantom, §5.3), push the running task there. Linux reaches
  // this through nr_balance_failed escalation; we rate-limit directly.
  Task* curr = v->current_;
  if (curr == nullptr || curr->policy() != TaskPolicy::kNormal) {
    return;
  }
  if (now < v->next_active_balance_) {
    return;
  }
  if (curr->last_migration_time_ >= 0 &&
      now - curr->last_migration_time_ < params_->migration_cooldown) {
    return;
  }
  double my_cap = CfsCapacityOf(v->index());
  CpuMask allowed = EffectiveAllowed(curr);
  for (int c : allowed) {
    if (c == v->index() || !vcpus_[c]->IsIdle()) {
      continue;
    }
    if (CfsCapacityOf(c) > my_cap * params_->imbalance_pct) {
      v->next_active_balance_ = now + params_->active_balance_interval;
      MigrateRunningTask(curr, v->index(), c);
      return;
    }
  }
}

bool GuestKernel::TryPullInto(GuestVcpu* v, CpuMask domain, bool idle_pull, TimeNs now) {
  (void)now;
  int me = v->index();
  double my_load = v->rq_.load();
  if (v->current_ != nullptr && v->current_->policy() == TaskPolicy::kNormal) {
    my_load += v->current_->weight();
  }
  double my_ratio = my_load / std::max(1.0, CfsCapacityOf(me));

  GuestVcpu* busiest = nullptr;
  double busiest_ratio = 0;
  for (int c : domain) {
    if (c == me) {
      continue;
    }
    GuestVcpu* src = vcpus_[c].get();
    if (src->rq_.normal_count() == 0) {
      continue;  // Nothing stealable (running task is not pulled here).
    }
    double load = src->rq_.load();
    if (src->current_ != nullptr && src->current_->policy() == TaskPolicy::kNormal) {
      load += src->current_->weight();
    }
    double ratio = load / std::max(1.0, CfsCapacityOf(c));
    if (ratio > busiest_ratio) {
      busiest_ratio = ratio;
      busiest = src;
    }
  }

  if (busiest != nullptr) {
    bool imbalanced = idle_pull || busiest_ratio > my_ratio * params_->imbalance_pct + 1e-9;
    if (imbalanced) {
      // Steal the task with the largest vruntime (coldest cache, CFS-style
      // detach from the tail) that is allowed here.
      TimeNs now_ts = sim_->now();
      Task* pick = nullptr;
      busiest->rq_.ForEach([&](Task* t) {
        if (t->policy() != TaskPolicy::kNormal) {
          return;
        }
        if (!EffectiveAllowed(t).Test(me)) {
          return;
        }
        if (t->last_migration_time_ >= 0 &&
            now_ts - t->last_migration_time_ < params_->migration_cooldown) {
          return;  // Cache-hot / recently migrated: leave it.
        }
        if (pick == nullptr || t->vruntime_ > pick->vruntime_) {
          pick = t;
        }
      });
      if (pick != nullptr) {
        MigrateQueuedTask(pick, me);
        return true;
      }
    }
  }

  // Idle pull of best-effort tasks: a completely idle vCPU may harvest a
  // queued SCHED_IDLE task so best-effort work spreads.
  if (idle_pull && v->IsIdle()) {
    for (int c : domain) {
      if (c == me) {
        continue;
      }
      GuestVcpu* src = vcpus_[c].get();
      if (src->rq_.idle_count() == 0) {
        continue;
      }
      Task* pick = nullptr;
      src->rq_.ForEach([&](Task* t) {
        if (t->policy() == TaskPolicy::kIdle && EffectiveAllowed(t).Test(me)) {
          if (pick == nullptr) {
            pick = t;
          }
        }
      });
      if (pick != nullptr) {
        MigrateQueuedTask(pick, me);
        return true;
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Communication model
// ---------------------------------------------------------------------------

Work GuestKernel::CommWorkPenalty(int from_cpu, int to_cpu, int cache_lines) const {
  HwThreadId a = vcpus_[from_cpu]->thread()->tid();
  HwThreadId b = vcpus_[to_cpu]->thread()->tid();
  double lat = machine_->topology().CacheLatencyNs(a, b);
  return static_cast<Work>(cache_lines) * lat * kCapacityScale;
}

bool GuestKernel::CrossSocketPhysical(int cpu_a, int cpu_b) const {
  HwThreadId a = vcpus_[cpu_a]->thread()->tid();
  HwThreadId b = vcpus_[cpu_b]->thread()->tid();
  return machine_->topology().SocketOf(a) != machine_->topology().SocketOf(b);
}

}  // namespace vsched
