// Per-vCPU CFS runqueue: runnable tasks ordered by vruntime.
//
// The currently running task is held by the vCPU, not the queue (enqueued
// only when preempted), mirroring CFS structure closely enough for the
// heuristics that matter here: min-vruntime pick, SCHED_IDLE subordination,
// and load sums for balancing.
//
// Storage is a pair of flat entry vectors kept sorted ascending by
// (vruntime, id) — binary-search insert, memmove erase. Each entry carries
// the ordering keys *inline* (vruntime, vdeadline, id) next to the Task
// pointer, snapshotted at Enqueue: the kernel only writes those fields while
// a task is running or immediately before Enqueue, never while queued (the
// invariant the ordered set this replaced always required, now re-checked by
// AuditVerify). Inline keys make the hot operations — binary-search
// comparisons on enqueue/dequeue and the EEVDF eligibility scan — straight
// contiguous reads with no Task dereference per element. Observed queue
// depths in the paper deployments are small (tens of tasks), where this
// layout beats pointer-chasing by a wide margin: the leftmost (minimum)
// entry is always front(), picks are O(1) cache-hot reads, and
// enqueue/dequeue touch one cache line per shifted element.
#ifndef SRC_GUEST_RUNQUEUE_H_
#define SRC_GUEST_RUNQUEUE_H_

#include <cstdint>
#include <vector>

#include "src/base/perf_counters.h"
#include "src/base/time.h"
#include "src/guest/task.h"

namespace vsched {

class Runqueue {
 public:
  // Selects the pick policy: CFS (leftmost vruntime) or EEVDF (earliest
  // eligible virtual deadline first). vSched is scheduler-agnostic (§4);
  // both policies share the same enqueue/placement machinery.
  void SetEevdf(bool enabled) { eevdf_ = enabled; }
  bool eevdf() const { return eevdf_; }

  void Enqueue(Task* task);
  void Dequeue(Task* task);
  bool Contains(const Task* task) const;

  // Next task to run: normal-policy tasks strictly before SCHED_IDLE ones,
  // minimum vruntime within a class. nullptr when empty.
  Task* Pick() const;

  size_t size() const { return normal_.size() + idle_.size(); }
  size_t normal_count() const { return normal_.size(); }
  size_t idle_count() const { return idle_.size(); }
  bool empty() const { return normal_.empty() && idle_.empty(); }

  // True when the queue holds only best-effort (SCHED_IDLE) tasks — the
  // "sched_idle vCPU" notion bvs keys on (Figure 8).
  bool OnlyIdleTasks() const { return normal_.empty() && !idle_.empty(); }

  // Sum of queued normal-task weights (for load balancing). Maintained as a
  // Neumaier-compensated sum so weight add/remove churn over long sweeps
  // cannot drift the total negative.
  double load() const { return load_ + load_comp_; }

  // Largest vruntime floor seen, used to place migrated-in tasks fairly.
  double min_vruntime() const { return min_vruntime_; }
  void RaiseMinVruntime(double v);

  // Full structural self-check, reported through src/base/audit.h: both
  // vectors sorted by (vruntime, id), every task filed under its policy
  // class, inline key snapshots still equal to each task's live fields (no
  // mutation-while-queued), and the Neumaier-compensated load within float
  // tolerance of an exact recompute. Runs automatically after every mutation
  // while auditing is enabled; safe to call directly at any time.
  void AuditVerify() const;

  // Steals the best migratable normal task matching `allowed_filter`
  // semantics; iteration helpers for the balancer. Visits normal tasks then
  // idle tasks, each in ascending (vruntime, id) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : normal_) {
      fn(e.task);
    }
    for (const Entry& e : idle_) {
      fn(e.task);
    }
  }

 private:
  // Deliberate-corruption backdoor for the audit tests (tests/audit/); never
  // referenced by the library itself.
  friend struct AuditTestAccess;

  // One queued task with its ordering keys snapshotted inline. Keys are
  // immutable while the task is queued, so the snapshot never goes stale.
  struct Entry {
    double vruntime;
    double vdeadline;
    uint64_t id;
    Task* task;
  };

  // Strict weak order on (vruntime, id); ids are unique, so keys are too.
  static bool Before(const Entry& a, const Entry& b) {
    if (a.vruntime != b.vruntime) {
      return a.vruntime < b.vruntime;
    }
    return a.id < b.id;
  }

  // Binary search for the exact position of `task` in a (vruntime, id)-sorted
  // entry vector; end() when absent.
  static std::vector<Entry>::const_iterator Find(const std::vector<Entry>& v, const Task* task);

  Task* PickEevdf() const;
  void AddLoad(double w);

  bool eevdf_ = false;
  std::vector<Entry> normal_;
  std::vector<Entry> idle_;
  double load_ = 0;
  double load_comp_ = 0;  // Neumaier compensation term
  double min_vruntime_ = 0;
  PerfCounters* counters_ = PerfCounters::Current();
};

}  // namespace vsched

#endif  // SRC_GUEST_RUNQUEUE_H_
