// The only file allowed to mutate a PeltSignal directly: every other caller
// goes through the designated lazy-evaluation entry points (segment
// open/close and dispatch transitions in guest_vcpu.cc, the wait-span close
// in guest_kernel.cc) or reads via UtilAt. The vsched-lint rule
// "pelt-eager-update" enforces this.
#include "src/guest/pelt.h"

#include "src/base/check.h"
#include "src/base/decay.h"

namespace vsched {

void PeltSignal::Update(TimeNs now, bool active) {
  VSCHED_CHECK(now >= last_update_);
  TimeNs dt = now - last_update_;
  if (dt == 0) {
    return;
  }
  last_update_ = now;
  double decay = HalfLifeDecay(dt, half_life_);
  double target = active ? kCapacityScale : 0.0;
  // Closed form of "decay old signal, accumulate `target` over dt".
  util_ = util_ * decay + target * (1.0 - decay);
}

double PeltSignal::UtilAt(TimeNs now, bool active) const {
  if (now <= last_update_) {
    return util_;
  }
  TimeNs dt = now - last_update_;
  double decay = HalfLifeDecay(dt, half_life_);
  double target = active ? kCapacityScale : 0.0;
  return util_ * decay + target * (1.0 - decay);
}

void PeltSignal::Seed(TimeNs now, double util) {
  last_update_ = now;
  util_ = util;
}

}  // namespace vsched
