#include "src/guest/pelt.h"

#include <cmath>

#include "src/base/check.h"

namespace vsched {

void PeltSignal::Update(TimeNs now, bool active) {
  VSCHED_CHECK(now >= last_update_);
  TimeNs dt = now - last_update_;
  if (dt == 0) {
    return;
  }
  last_update_ = now;
  double decay = std::exp2(-static_cast<double>(dt) / static_cast<double>(half_life_));
  double target = active ? kCapacityScale : 0.0;
  // Closed form of "decay old signal, accumulate `target` over dt".
  util_ = util_ * decay + target * (1.0 - decay);
}

double PeltSignal::UtilAt(TimeNs now, bool active) const {
  if (now <= last_update_) {
    return util_;
  }
  TimeNs dt = now - last_update_;
  double decay = std::exp2(-static_cast<double>(dt) / static_cast<double>(half_life_));
  double target = active ? kCapacityScale : 0.0;
  return util_ * decay + target * (1.0 - decay);
}

void PeltSignal::Seed(TimeNs now, double util) {
  last_update_ = now;
  util_ = util;
}

}  // namespace vsched
