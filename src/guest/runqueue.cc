#include "src/guest/runqueue.h"

#include <algorithm>
#include <cmath>

#include "src/base/audit.h"
#include "src/base/check.h"

namespace vsched {

// Relies on tasks never mutating vruntime while queued — the invariant the
// ordered containers have always required (and AuditVerify now re-checks
// against the snapshots).
std::vector<Runqueue::Entry>::const_iterator Runqueue::Find(const std::vector<Entry>& v,
                                                            const Task* task) {
  Entry key{task->vruntime(), task->vdeadline(), task->id(), nullptr};
  auto it = std::lower_bound(v.begin(), v.end(), key, Before);
  if (it != v.end() && it->task == task) {
    return it;
  }
  return v.end();
}

void Runqueue::AddLoad(double w) {
  // Neumaier's variant of Kahan summation: exact for the integer weight
  // table in use today, and bounded-error if weights ever become fractional.
  double sum = load_ + w;
  if (std::abs(load_) >= std::abs(w)) {
    load_comp_ += (load_ - sum) + w;  // vsched-lint: allow(raw-double-accum) — this IS the compensation term
  } else {
    load_comp_ += (w - sum) + load_;  // vsched-lint: allow(raw-double-accum) — this IS the compensation term
  }
  load_ = sum;
}

void Runqueue::Enqueue(Task* task) {
  ++counters_->rq_enqueues;
  std::vector<Entry>& v = task->policy() == TaskPolicy::kIdle ? idle_ : normal_;
  Entry entry{task->vruntime(), task->vdeadline(), task->id(), task};
  auto it = std::lower_bound(v.begin(), v.end(), entry, Before);
  VSCHED_CHECK(it == v.end() || it->task != task);  // double-enqueue
  v.insert(it, entry);
  if (task->policy() != TaskPolicy::kIdle) {
    AddLoad(task->weight());
  }
  if (audit::Enabled()) {
    AuditVerify();
  }
}

void Runqueue::Dequeue(Task* task) {
  ++counters_->rq_dequeues;
  std::vector<Entry>& v = task->policy() == TaskPolicy::kIdle ? idle_ : normal_;
  auto it = Find(v, task);
  VSCHED_CHECK(it != v.end());
  v.erase(it);
  if (task->policy() != TaskPolicy::kIdle) {
    AddLoad(-task->weight());
    VSCHED_DCHECK(load() >= -1e-9);
    if (normal_.empty()) {
      load_ = 0;  // Clear float dust.
      load_comp_ = 0;
    }
  }
  if (audit::Enabled()) {
    AuditVerify();
  }
}

bool Runqueue::Contains(const Task* task) const {
  const std::vector<Entry>& v = task->policy() == TaskPolicy::kIdle ? idle_ : normal_;
  return Find(v, task) != v.end();
}

Task* Runqueue::PickEevdf() const {
  // EEVDF: among *eligible* tasks (vruntime not ahead of the queue average),
  // pick the earliest virtual deadline. Falls back to the global minimum
  // vruntime when nothing is eligible (cannot happen with a consistent
  // average, but float dust is cheap to guard against). Inline keys make
  // both passes contiguous scans with no Task dereference.
  double avg = 0;
  int n = 0;
  for (const Entry& e : normal_) {
    avg += e.vruntime;
    ++n;
  }
  for (const Entry& e : idle_) {
    avg += e.vruntime;
    ++n;
  }
  if (n == 0) {
    return nullptr;
  }
  avg /= n;
  const Entry* best = nullptr;
  const Entry* min_vr = nullptr;
  auto consider = [&](const Entry& e) {
    if (min_vr == nullptr || e.vruntime < min_vr->vruntime) {
      min_vr = &e;
    }
    if (e.vruntime <= avg + 1e-6 && (best == nullptr || e.vdeadline < best->vdeadline)) {
      best = &e;
    }
  };
  for (const Entry& e : normal_) {
    consider(e);
  }
  for (const Entry& e : idle_) {
    consider(e);
  }
  return best != nullptr ? best->task : min_vr->task;
}

Task* Runqueue::Pick() const {
  ++counters_->rq_picks;
  if (audit::Enabled()) {
    AuditVerify();
  }
  if (eevdf_) {
    return PickEevdf();
  }
  // Leftmost by vruntime across both classes, like CFS's single rbtree:
  // SCHED_IDLE entities carry weight 3, so their vruntime advances ~341×
  // faster and they naturally receive only a sliver of CPU — but they are
  // not starved outright. Sorted storage makes both leftmosts front().
  const Entry* best = normal_.empty() ? nullptr : &normal_.front();
  if (!idle_.empty()) {
    const Entry* idle_best = &idle_.front();
    if (best == nullptr || idle_best->vruntime < best->vruntime) {
      best = idle_best;
    }
  }
  return best != nullptr ? best->task : nullptr;
}

void Runqueue::RaiseMinVruntime(double v) { min_vruntime_ = std::max(min_vruntime_, v); }

void Runqueue::AuditVerify() const {
  auto check_class = [](const std::vector<Entry>& v, bool want_idle, const char* label) {
    for (size_t i = 0; i < v.size(); ++i) {
      VSCHED_AUDIT_CHECK(v[i].task != nullptr, label);
      if (v[i].task == nullptr) {
        return;
      }
      VSCHED_AUDIT_CHECK((v[i].task->policy() == TaskPolicy::kIdle) == want_idle,
                         "runqueue: task filed under the wrong policy class");
      // Snapshot freshness: nothing may mutate ordering keys while queued.
      VSCHED_AUDIT_CHECK(v[i].vruntime == v[i].task->vruntime() &&
                             v[i].vdeadline == v[i].task->vdeadline() &&
                             v[i].id == v[i].task->id(),
                         "runqueue: inline key snapshot stale (task mutated while queued)");
      if (i > 0) {
        VSCHED_AUDIT_CHECK(Before(v[i - 1], v[i]),
                           "runqueue: tasks out of (vruntime, id) order");
      }
    }
  };
  check_class(normal_, /*want_idle=*/false, "runqueue: null task in normal class");
  check_class(idle_, /*want_idle=*/true, "runqueue: null task in idle class");
  // Sortedness makes front() the cached leftmost; re-derive it the hard way.
  if (!normal_.empty()) {
    const Entry* leftmost = &*std::min_element(normal_.begin(), normal_.end(), Before);
    VSCHED_AUDIT_CHECK(leftmost == &normal_.front(),
                       "runqueue: front() is not the leftmost normal task");
  }
  // The compensated load must track an exact recompute. Weights are small
  // integers today, so the tolerance is loose enough for any future
  // fractional weights yet tight enough to catch a missed add/remove (the
  // smallest weight in the table is 3).
  double exact = 0;
  for (const Entry& e : normal_) {
    exact += e.task->weight();
  }
  VSCHED_AUDIT_CHECK(std::abs(load() - exact) <= 1e-6 * std::max(1.0, exact),
                     "runqueue: compensated load diverged from exact recompute");
  VSCHED_AUDIT_CHECK(std::isfinite(min_vruntime_), "runqueue: min_vruntime not finite");
}

}  // namespace vsched
