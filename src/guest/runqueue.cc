#include "src/guest/runqueue.h"

#include <algorithm>

#include "src/base/check.h"

namespace vsched {

bool Runqueue::ByVruntime::operator()(const Task* a, const Task* b) const {
  if (a->vruntime() != b->vruntime()) {
    return a->vruntime() < b->vruntime();
  }
  return a->id() < b->id();
}

void Runqueue::Enqueue(Task* task) {
  if (task->policy() == TaskPolicy::kIdle) {
    VSCHED_CHECK(idle_.insert(task).second);
  } else {
    VSCHED_CHECK(normal_.insert(task).second);
    load_ += task->weight();
  }
}

void Runqueue::Dequeue(Task* task) {
  if (task->policy() == TaskPolicy::kIdle) {
    VSCHED_CHECK(idle_.erase(task) == 1);
  } else {
    VSCHED_CHECK(normal_.erase(task) == 1);
    load_ -= task->weight();
    if (normal_.empty()) {
      load_ = 0;  // Clear float dust.
    }
  }
}

bool Runqueue::Contains(const Task* task) const {
  Task* mutable_task = const_cast<Task*>(task);
  if (task->policy() == TaskPolicy::kIdle) {
    return idle_.find(mutable_task) != idle_.end();
  }
  return normal_.find(mutable_task) != normal_.end();
}

Task* Runqueue::PickEevdf() const {
  // EEVDF: among *eligible* tasks (vruntime not ahead of the queue average),
  // pick the earliest virtual deadline. Falls back to the global minimum
  // vruntime when nothing is eligible (cannot happen with a consistent
  // average, but float dust is cheap to guard against).
  double avg = 0;
  int n = 0;
  for (const Task* t : normal_) {
    avg += t->vruntime();
    ++n;
  }
  for (const Task* t : idle_) {
    avg += t->vruntime();
    ++n;
  }
  if (n == 0) {
    return nullptr;
  }
  avg /= n;
  Task* best = nullptr;
  Task* min_vr = nullptr;
  auto consider = [&](Task* t) {
    if (min_vr == nullptr || t->vruntime() < min_vr->vruntime()) {
      min_vr = t;
    }
    if (t->vruntime() <= avg + 1e-6 &&
        (best == nullptr || t->vdeadline() < best->vdeadline())) {
      best = t;
    }
  };
  for (Task* t : normal_) {
    consider(t);
  }
  for (Task* t : idle_) {
    consider(t);
  }
  return best != nullptr ? best : min_vr;
}

Task* Runqueue::Pick() const {
  if (eevdf_) {
    return PickEevdf();
  }
  // Leftmost by vruntime across both classes, like CFS's single rbtree:
  // SCHED_IDLE entities carry weight 3, so their vruntime advances ~341×
  // faster and they naturally receive only a sliver of CPU — but they are
  // not starved outright.
  Task* best = nullptr;
  if (!normal_.empty()) {
    best = *normal_.begin();
  }
  if (!idle_.empty()) {
    Task* idle_best = *idle_.begin();
    if (best == nullptr || idle_best->vruntime() < best->vruntime()) {
      best = idle_best;
    }
  }
  return best;
}

void Runqueue::RaiseMinVruntime(double v) { min_vruntime_ = std::max(min_vruntime_, v); }

}  // namespace vsched
