// Automatic tunable configuration (paper §6, "vSched Tunables
// Configuration"): the Table-1 values are derived from brief calibration
// probing instead of being hand-picked per platform.
//
// Rules, following the paper's guidance:
//  * the vcap sampling period must be long enough for every vCPU to execute
//    at least once → a small multiple of the largest observed inactive
//    period (clamped to [50 ms, 500 ms]);
//  * probing frequencies are set so vSched reacts to vCPU changes within
//    seconds;
//  * the EMA decay is kept at 50% per 2 periods to suppress migration churn;
//  * the ivh migration threshold tracks two scheduler ticks;
//  * vtop's transfer timeout grows with observed inactivity so stacking
//    detection stays reliable on low-duty vCPUs.
#ifndef SRC_CORE_AUTOTUNE_H_
#define SRC_CORE_AUTOTUNE_H_

#include <functional>
#include <memory>

#include "src/core/config.h"

namespace vsched {

class GuestKernel;
class Vact;
class Vcap;

class AutoTuner {
 public:
  explicit AutoTuner(GuestKernel* kernel);
  ~AutoTuner();

  AutoTuner(const AutoTuner&) = delete;
  AutoTuner& operator=(const AutoTuner&) = delete;

  // Runs calibration probing for `duration` of simulated time, then invokes
  // `done` with a tuned option set (based on `base`, typically Full()).
  void Calibrate(TimeNs duration, VSchedOptions base, std::function<void(VSchedOptions)> done);

  // Pure derivation from already-measured activity (exposed for tests):
  // `max_inactive_ns` — the largest average vCPU inactive period observed;
  // `min_duty` — the lowest active-time fraction across vCPUs.
  static VSchedOptions Derive(VSchedOptions base, double max_inactive_ns, double min_duty,
                              TimeNs guest_tick);

 private:
  GuestKernel* kernel_;
  std::unique_ptr<Vcap> vcap_;
  std::unique_ptr<Vact> vact_;
  // Liveness token for the measurement-end closure (the PR-6 pattern): the
  // tuner may be destroyed before the window elapses.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_CORE_AUTOTUNE_H_
