// Biased vCPU selection (bvs, §3.2).
//
// A wake-placement hook that matches small latency-sensitive tasks with
// vCPUs minimizing the extended runqueue latency, following the Figure 8
// heuristic: consider only high-capacity vCPUs; an empty-queue vCPU is
// acceptable when it has low vCPU latency and prolonged idleness; a
// sched_idle-only vCPU is acceptable when it is long-inactive with low
// latency (about to be rescheduled) or just became active (the task can run
// immediately within the remaining active period). First fit wins; if no
// vCPU qualifies, placement falls back to the CFS heuristic.
#ifndef SRC_CORE_BVS_H_
#define SRC_CORE_BVS_H_

#include "src/core/config.h"

namespace vsched {

class GuestKernel;
class GuestVcpu;
class Task;
class Vact;
class Vcap;

class Bvs {
 public:
  Bvs(GuestKernel* kernel, Vcap* vcap, Vact* vact, BvsConfig config = BvsConfig{});

  Bvs(const Bvs&) = delete;
  Bvs& operator=(const Bvs&) = delete;

  // Installs the select hook into the kernel.
  void Install();

  // The hook body (public for tests): returns the chosen vCPU or -1.
  int SelectVcpu(Task* task, int prev_cpu, int waker_cpu);

  // Degraded mode: probe confidence is too low to trust the latency-based
  // placement, so every selection falls back to the CFS heuristic (-1).
  void set_degraded(bool degraded) { degraded_ = degraded; }
  bool degraded() const { return degraded_; }

  uint64_t placements() const { return placements_; }
  uint64_t fallbacks() const { return fallbacks_; }

 private:
  bool AcceptableVcpu(const GuestVcpu& v, double median_cap, double median_lat);

  GuestKernel* kernel_;
  Vcap* vcap_;
  Vact* vact_;
  BvsConfig config_;
  bool degraded_ = false;
  uint64_t placements_ = 0;
  uint64_t fallbacks_ = 0;
  int rotor_ = 0;
};

}  // namespace vsched

#endif  // SRC_CORE_BVS_H_
