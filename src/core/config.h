// vSched tunables (paper Table 1) and feature selection.
#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include "src/base/time.h"
#include "src/probe/robust.h"
#include "src/probe/vact.h"
#include "src/probe/vcap.h"
#include "src/probe/vtop.h"

namespace vsched {

struct BvsConfig {
  // PELT util below this marks a task "small" (latency-sensitive candidate).
  double small_task_util = 200.0;
  // Candidate vCPUs need capacity >= median (runqueue-saturation guard).
  double capacity_margin = 0.95;
  // A vCPU qualifies as low-latency if its vCPU latency <= median × this.
  double latency_margin = 1.0;
  // "Prolonged idleness": guest-idle at least this long.
  TimeNs min_idle_time = UsToNs(200);
  // "Recently active": within this fraction of the average active period.
  double recent_active_fraction = 0.5;
  // Table 3 ablation: when false, the sched_idle-queue path skips the vCPU
  // state examination.
  bool check_state = true;
};

struct IvhConfig {
  // Minimum time the task must have run in its current stint (Table 1:
  // "after 2 milliseconds", aligned with 2 scheduler ticks).
  TimeNs migration_threshold = MsToNs(2);
  // Only CPU-intensive tasks are harvested.
  double cpu_intensive_util = 512.0;
  // The source vCPU must actually exhibit inactivity.
  double min_source_latency_ns = static_cast<double>(UsToNs(300));
  // Give up a handshake after this long.
  TimeNs handshake_timeout = MsToNs(10);
  // Table 4 ablation: pre-wake the target and wait for co-activity (true)
  // versus migrating blindly (false).
  bool activity_aware = true;
};

struct RwcConfig {
  // A vCPU is a straggler when its capacity is below mean × this ratio
  // (paper: "e.g. 10x lower").
  double straggler_ratio = 0.1;
  // Require this many completed vcap windows before judging stragglers.
  int min_windows = 2;
};

struct VSchedOptions {
  bool use_vcap = true;
  bool use_vtop = true;
  bool use_vact = true;
  bool use_bvs = true;
  bool use_ivh = true;
  bool use_rwc = true;

  VcapConfig vcap;
  VactConfig vact;
  VtopConfig vtop;
  BvsConfig bvs;
  IvhConfig ivh;
  RwcConfig rwc;

  // Graceful degradation under fault injection. When `robust.enabled`, the
  // settings are propagated into every prober config and the orchestrator
  // monitors probe confidence: low-confidence components fall back to
  // pessimistic capacities, topology-agnostic placement, CFS wake placement,
  // paused harvesting, and frozen straggler bans. Off by default — clean
  // runs are byte-identical to a build without the robustness layer.
  ProbeRobustConfig robust;

  // Stock Linux CFS: no probing, no new techniques.
  static VSchedOptions Cfs() {
    VSchedOptions o;
    o.use_vcap = o.use_vtop = o.use_vact = o.use_bvs = o.use_ivh = o.use_rwc = false;
    return o;
  }

  // "Enhanced CFS" (§5.6): vProbers + rwc feed the existing heuristics; the
  // activity-aware techniques (bvs, ivh) stay off.
  static VSchedOptions EnhancedCfs() {
    VSchedOptions o;
    o.use_bvs = false;
    o.use_ivh = false;
    return o;
  }

  // Full vSched.
  static VSchedOptions Full() { return VSchedOptions{}; }
};

}  // namespace vsched

#endif  // SRC_CORE_CONFIG_H_
