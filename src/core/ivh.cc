#include "src/core/ivh.h"

#include "src/base/check.h"
#include "src/guest/guest_kernel.h"
#include "src/probe/vact.h"
#include "src/probe/vcap.h"
#include "src/sim/simulation.h"

namespace vsched {

Ivh::Ivh(GuestKernel* kernel, Vcap* vcap, Vact* vact, IvhConfig config)
    : kernel_(kernel), vcap_(vcap), vact_(vact), config_(config) {
  handshakes_.resize(kernel_->num_vcpus());
}

void Ivh::Install() {
  kernel_->AddTickHook(
      [this, alive = std::weak_ptr<const bool>(alive_)](GuestVcpu* v, TimeNs now) {
        if (alive.expired()) {
          return;
        }
        OnTick(v, now);
      });
}

void Ivh::OnTick(GuestVcpu* v, TimeNs now) {
  int src = v->index();
  Handshake& hs = handshakes_[src];
  if (hs.inflight) {
    if (now - hs.started > config_.handshake_timeout) {
      ++abandoned_;
      FinishHandshake(src, /*success=*/false);
    }
    return;
  }
  if (degraded_) {
    return;  // Untrusted activity estimates: start no new harvests.
  }
  Task* curr = v->current();
  if (curr == nullptr || curr->policy() == TaskPolicy::kIdle) {
    return;
  }
  if (curr->UtilAt(now) < config_.cpu_intensive_util) {
    return;
  }
  if (now - curr->stint_start() < config_.migration_threshold) {
    return;
  }
  if (vact_->LatencyOf(src) < config_.min_source_latency_ns) {
    return;  // The source shows no inactivity: nothing to harvest around.
  }
  int dst = FindTarget(curr, src, now);
  if (dst < 0) {
    return;
  }
  ++attempts_;
  if (!config_.activity_aware) {
    // Ablation (Table 4): migrate blindly; the task may sit on an inactive
    // target's runqueue for a long migration delay.
    if (kernel_->MigrateRunningTask(curr, src, dst)) {
      ++completed_;
    } else {
      ++abandoned_;
    }
    return;
  }
  BeginHandshake(curr, src, dst, now);
}

int Ivh::FindTarget(Task* task, int src, TimeNs now) {
  CpuMask allowed = kernel_->EffectiveAllowed(task);
  double src_cap = vcap_->CapacityOf(src);
  int best = -1;
  int best_score = 1 << 30;
  for (int cpu : allowed) {
    if (cpu == src) {
      continue;
    }
    const GuestVcpu& t = kernel_->vcpu(cpu);
    // Target must be unused by normal work.
    bool free_of_normal =
        (t.current() == nullptr || t.current()->policy() == TaskPolicy::kIdle) &&
        t.rq().normal_count() == 0;
    if (!free_of_normal) {
      continue;
    }
    if (vcap_->CapacityOf(cpu) < 0.5 * src_cap) {
      continue;  // Too weak to be worth harvesting onto.
    }
    int score;
    if (!config_.activity_aware) {
      score = 0;
    } else {
      VcpuStateView state = vact_->QueryState(cpu);
      if (!state.inactive) {
        // Active with (at most) sched_idle work: migration can complete with
        // minimal delay.
        score = 0;
      } else {
        double inactive_for = static_cast<double>(now - state.since);
        double latency = vact_->LatencyOf(cpu);
        // Long-inactive targets are about to be rescheduled; short-inactive
        // ones may keep us waiting.
        score = inactive_for >= latency ? 1 : 2;
      }
    }
    if (score < best_score) {
      best_score = score;
      best = cpu;
      if (score == 0) {
        break;
      }
    }
  }
  return best;
}

void Ivh::BeginHandshake(Task* task, int src, int dst, TimeNs now) {
  Handshake& hs = handshakes_[src];
  hs.inflight = true;
  hs.id = next_id_++;
  hs.task = task;
  hs.src = src;
  hs.dst = dst;
  hs.started = now;
  hs.src_steal_at_start = kernel_->vcpu(src).StealClock(now);
  hs.target_holding = false;
  uint64_t id = hs.id;
  // Step 1: interrupt the target; pre-wake it if halted.
  kernel_->RunOnVcpu(
      dst,
      [this, src, id, alive = std::weak_ptr<const bool>(alive_)] {
        if (!alive.expired()) TargetActivated(src, id);
      },
      /*kick=*/true);
}

void Ivh::TargetActivated(int src, uint64_t id) {
  Handshake& hs = handshakes_[src];
  if (!hs.inflight || hs.id != id) {
    return;  // Stale: the handshake timed out or was replaced.
  }
  // Step 2: the target issues the pull request and spins until migration
  // completes (or the source abandons).
  hs.target_holding = true;
  kernel_->vcpu(hs.dst).HoldSpin();
  kernel_->RunOnVcpu(
      src,
      [this, src, id, alive = std::weak_ptr<const bool>(alive_)] {
        if (!alive.expired()) StopperRun(src, id);
      },
      /*kick=*/false);
}

void Ivh::StopperRun(int src, uint64_t id) {
  Handshake& hs = handshakes_[src];
  if (!hs.inflight || hs.id != id) {
    return;
  }
  TimeNs now = kernel_->sim()->now();
  GuestVcpu& v = kernel_->vcpu(src);
  // Abandon if the task already stalled (the pull request arrived late): a
  // steal-time increase on the source since the handshake began means the
  // task was preempted in the meantime, so there is no benefit left.
  TimeNs steal_now = v.StealClock(now);
  bool stalled = steal_now - hs.src_steal_at_start > UsToNs(50);
  bool still_running = v.current() == hs.task;
  if (!still_running || stalled) {
    ++abandoned_;
    FinishHandshake(src, /*success=*/false);
    return;
  }
  // Step 3: detach the running task and attach it to the target.
  if (kernel_->MigrateRunningTask(hs.task, src, hs.dst)) {
    ++completed_;
    FinishHandshake(src, /*success=*/true);
  } else {
    ++abandoned_;
    FinishHandshake(src, /*success=*/false);
  }
}

void Ivh::FinishHandshake(int src, bool success) {
  (void)success;
  Handshake& hs = handshakes_[src];
  VSCHED_CHECK(hs.inflight);
  if (hs.target_holding) {
    kernel_->vcpu(hs.dst).ReleaseSpin();
    hs.target_holding = false;
  }
  hs.inflight = false;
  hs.task = nullptr;
}

}  // namespace vsched
