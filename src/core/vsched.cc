#include "src/core/vsched.h"

#include "src/guest/guest_kernel.h"

namespace vsched {

VSched::VSched(GuestKernel* kernel, VSchedOptions options)
    : kernel_(kernel), options_(options) {
  if (options_.use_vcap) {
    vcap_ = std::make_unique<Vcap>(kernel_, options_.vcap);
  }
  if (options_.use_vact) {
    vact_ = std::make_unique<Vact>(kernel_, options_.vact);
  }
  if (options_.use_vtop) {
    vtop_ = std::make_unique<Vtop>(kernel_, options_.vtop);
  }
  if (options_.use_rwc && vcap_ != nullptr) {
    rwc_ = std::make_unique<Rwc>(kernel_, vcap_.get(), options_.rwc);
  }
  if (options_.use_bvs && vcap_ != nullptr && vact_ != nullptr) {
    bvs_ = std::make_unique<Bvs>(kernel_, vcap_.get(), vact_.get(), options_.bvs);
  }
  if (options_.use_ivh && vcap_ != nullptr && vact_ != nullptr) {
    ivh_ = std::make_unique<Ivh>(kernel_, vcap_.get(), vact_.get(), options_.ivh);
  }
}

VSched::~VSched() { Stop(); }

void VSched::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (vcap_ != nullptr) {
    // The bridge: publish probed EMA capacities into the kernel after each
    // sampling window (per-vCPU data update, §4).
    vcap_->AddWindowCallback([this](TimeNs, TimeNs, bool) { PublishCapacities(); });
  }
  if (rwc_ != nullptr) {
    rwc_->Install();
  }
  if (vtop_ != nullptr) {
    // The bridge: rebuild schedule domains on every published topology.
    vtop_->SetTopologyCallback([this](const GuestTopology& topo) {
      kernel_->RebuildSchedDomains(topo);
      if (rwc_ != nullptr) {
        rwc_->OnTopology(topo);
      }
    });
  }
  if (bvs_ != nullptr) {
    bvs_->Install();
  }
  if (ivh_ != nullptr) {
    ivh_->Install();
  }
  if (vcap_ != nullptr) {
    vcap_->Start();
  }
  if (vact_ != nullptr) {
    vact_->Start();
  }
  if (vtop_ != nullptr) {
    vtop_->Start();
  }
}

void VSched::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  if (vcap_ != nullptr) {
    vcap_->Stop();
  }
  if (vact_ != nullptr) {
    vact_->Stop();
  }
  if (vtop_ != nullptr) {
    vtop_->Stop();
  }
}

void VSched::PublishCapacities() {
  for (int i = 0; i < kernel_->num_vcpus(); ++i) {
    kernel_->SetCapacityOverride(i, vcap_->CapacityOf(i));
  }
}

}  // namespace vsched
