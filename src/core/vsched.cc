#include "src/core/vsched.h"

#include <algorithm>

#include "src/guest/guest_kernel.h"
#include "src/sim/simulation.h"

namespace vsched {

VSched::VSched(GuestKernel* kernel, VSchedOptions options)
    : kernel_(kernel), options_(options) {
  if (options_.robust.enabled) {
    // One switch arms the whole robustness layer: every prober screens its
    // samples and reports confidence.
    options_.vcap.robust = options_.robust;
    options_.vact.robust = options_.robust;
    options_.vtop.robust = options_.robust;
  }
  if (options_.use_vcap) {
    vcap_ = std::make_unique<Vcap>(kernel_, options_.vcap);
  }
  if (options_.use_vact) {
    vact_ = std::make_unique<Vact>(kernel_, options_.vact);
  }
  if (options_.use_vtop) {
    vtop_ = std::make_unique<Vtop>(kernel_, options_.vtop);
  }
  if (options_.use_rwc && vcap_ != nullptr) {
    rwc_ = std::make_unique<Rwc>(kernel_, vcap_.get(), options_.rwc);
  }
  if (options_.use_bvs && vcap_ != nullptr && vact_ != nullptr) {
    bvs_ = std::make_unique<Bvs>(kernel_, vcap_.get(), vact_.get(), options_.bvs);
  }
  if (options_.use_ivh && vcap_ != nullptr && vact_ != nullptr) {
    ivh_ = std::make_unique<Ivh>(kernel_, vcap_.get(), vact_.get(), options_.ivh);
  }
}

VSched::~VSched() { Stop(); }

void VSched::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (vcap_ != nullptr) {
    // The bridge: publish probed EMA capacities into the kernel after each
    // sampling window (per-vCPU data update, §4). The degradation check runs
    // first so a confidence collapse takes effect in the same window.
    vcap_->AddWindowCallback([this](TimeNs, TimeNs, bool) {
      EvaluateDegradation();
      PublishCapacities();
    });
  }
  if (rwc_ != nullptr) {
    rwc_->Install();
  }
  if (vtop_ != nullptr) {
    // The bridge: rebuild schedule domains on every published topology —
    // unless topology confidence is shot, in which case the documented
    // fallback is topology-agnostic (flat UMA) domains.
    vtop_->SetTopologyCallback([this](const GuestTopology& topo) {
      EvaluateDegradation();
      if (options_.robust.enabled && degradation_.IsDegraded(DegradedComponent::kTopology)) {
        kernel_->RebuildSchedDomains(GuestTopology::FlatUma(kernel_->num_vcpus()));
      } else {
        kernel_->RebuildSchedDomains(topo);
      }
      if (rwc_ != nullptr) {
        rwc_->OnTopology(topo);
      }
    });
  }
  if (bvs_ != nullptr) {
    bvs_->Install();
  }
  if (ivh_ != nullptr) {
    ivh_->Install();
  }
  if (vcap_ != nullptr) {
    vcap_->Start();
  }
  if (vact_ != nullptr) {
    vact_->Start();
  }
  if (vtop_ != nullptr) {
    vtop_->Start();
  }
}

void VSched::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  if (vcap_ != nullptr) {
    vcap_->Stop();
  }
  if (vact_ != nullptr) {
    vact_->Stop();
  }
  if (vtop_ != nullptr) {
    vtop_->Stop();
  }
}

void VSched::PublishCapacities() {
  const bool pessimistic =
      options_.robust.enabled && degradation_.IsDegraded(DegradedComponent::kCapacity);
  const double median = pessimistic ? vcap_->MedianCapacity() : 0.0;
  for (int i = 0; i < kernel_->num_vcpus(); ++i) {
    double cap = vcap_->CapacityOf(i);
    if (pessimistic && vcap_->ConfidenceOf(i) < options_.robust.low_confidence) {
      // Pessimistic fallback: never advertise an untrusted vCPU as stronger
      // than the median — overestimating capacity piles work onto what may
      // really be a straggler, underestimating merely spreads it.
      if (cap > median) {
        ++pessimistic_publishes_;
      }
      cap = std::min(cap, median);
    } else if (options_.robust.enabled && vcap_->Quarantined(i)) {
      // Quarantined vCPUs already publish the corroborated off-window view
      // (vcap substitutes the sample); count the containment here too.
      ++pessimistic_publishes_;
    }
    kernel_->SetCapacityOverride(i, cap);
  }
}

void VSched::EvaluateDegradation() {
  if (!options_.robust.enabled) {
    return;
  }
  TimeNs now = kernel_->sim()->now();
  const double low = options_.robust.low_confidence;
  const bool cap_bad = vcap_ != nullptr && vcap_->MedianConfidence() < low;
  const bool act_bad = vact_ != nullptr && vact_->MedianConfidence() < low;
  const bool topo_bad = vtop_ != nullptr && vtop_->TopologyConfidence() < low;

  degradation_.SetState(DegradedComponent::kCapacity, cap_bad, now);
  degradation_.SetState(DegradedComponent::kBans, cap_bad, now);
  if (rwc_ != nullptr) {
    rwc_->set_freeze(cap_bad);
  }
  // bvs needs both capacity and latency estimates; either collapsing sends
  // placement back to the CFS heuristic.
  degradation_.SetState(DegradedComponent::kPlacement, cap_bad || act_bad, now);
  if (bvs_ != nullptr) {
    bvs_->set_degraded(cap_bad || act_bad);
  }
  degradation_.SetState(DegradedComponent::kHarvest, act_bad, now);
  if (ivh_ != nullptr) {
    ivh_->set_degraded(act_bad);
  }

  // Anti-evasion quarantine: vcap's duty-cycle plausibility check feeds the
  // per-vCPU quarantine mask; surface it as its own degradation component so
  // chaos/adversary runs can report containment time.
  degradation_.SetState(DegradedComponent::kQuarantine,
                        vcap_ != nullptr && !vcap_->QuarantinedMask().Empty(), now);

  const bool was_topo = degradation_.IsDegraded(DegradedComponent::kTopology);
  degradation_.SetState(DegradedComponent::kTopology, topo_bad, now);
  if (topo_bad != was_topo && vtop_ != nullptr && vtop_->has_topology()) {
    // Transition between probed and topology-agnostic domains happens here;
    // steady-state publishes are handled by the topology callback.
    kernel_->RebuildSchedDomains(topo_bad ? GuestTopology::FlatUma(kernel_->num_vcpus())
                                          : vtop_->probed_topology());
  }
}

}  // namespace vsched
