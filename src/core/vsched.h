// The vSched orchestrator (Figure 5): wires vProbers (vcap, vact, vtop) into
// the guest kernel via the bridge (the paper's kernel module) and installs
// the optimization techniques (bvs, ivh, rwc) per the selected options.
//
// Three presets mirror the evaluation's configurations (§5.6):
//   * Cfs          — stock scheduler, inaccurate vCPU abstraction;
//   * EnhancedCfs  — vProbers feed the existing capacity/topology-aware
//                    heuristics, plus rwc;
//   * Full         — vSched with bvs and ivh on top.
#ifndef SRC_CORE_VSCHED_H_
#define SRC_CORE_VSCHED_H_

#include <memory>

#include "src/core/bvs.h"
#include "src/core/config.h"
#include "src/core/ivh.h"
#include "src/core/rwc.h"
#include "src/fault/degradation.h"
#include "src/probe/vact.h"
#include "src/probe/vcap.h"
#include "src/probe/vtop.h"

namespace vsched {

class GuestKernel;

class VSched {
 public:
  explicit VSched(GuestKernel* kernel, VSchedOptions options = VSchedOptions::Full());
  ~VSched();

  VSched(const VSched&) = delete;
  VSched& operator=(const VSched&) = delete;

  // Starts probers and installs hooks. Idempotent.
  void Start();
  void Stop();

  const VSchedOptions& options() const { return options_; }
  Vcap* vcap() { return vcap_.get(); }
  Vact* vact() { return vact_.get(); }
  Vtop* vtop() { return vtop_.get(); }
  Bvs* bvs() { return bvs_.get(); }
  Ivh* ivh() { return ivh_.get(); }
  Rwc* rwc() { return rwc_.get(); }

  // Degradation bookkeeping (only populated when options().robust.enabled).
  const DegradationTracker& degradation() const { return degradation_; }

  // Times PublishCapacities clamped a low-confidence vCPU to the median —
  // the pessimistic-capacity mitigation actually firing (tests/metrics).
  uint64_t pessimistic_publishes() const { return pessimistic_publishes_; }

 private:
  // The "kernel module": pushes probed capacities and schedule domains into
  // the kernel after each sampling window / topology probe.
  void PublishCapacities();

  // Re-reads probe confidences and flips each component between its normal
  // and degraded mode. No-op unless options().robust.enabled.
  void EvaluateDegradation();

  GuestKernel* kernel_;
  VSchedOptions options_;
  bool started_ = false;

  std::unique_ptr<Vcap> vcap_;
  std::unique_ptr<Vact> vact_;
  std::unique_ptr<Vtop> vtop_;
  std::unique_ptr<Bvs> bvs_;
  std::unique_ptr<Ivh> ivh_;
  std::unique_ptr<Rwc> rwc_;

  DegradationTracker degradation_;
  uint64_t pessimistic_publishes_ = 0;
};

}  // namespace vsched

#endif  // SRC_CORE_VSCHED_H_
