// Intra-VM harvesting (ivh, §3.3).
//
// A scheduler-tick hook that proactively migrates CPU-intensive running
// tasks away from vCPUs with inactive periods onto unused vCPUs, harvesting
// vCPU time that would otherwise be wasted on a stalled running task.
//
// The activity-aware migration follows Figure 9: (1) the source sends an
// interrupt that pre-wakes the target; (2) once active, the target issues a
// pull request and spins; (3) a stopper on the source detaches the running
// task and attaches it to the target. If the source is preempted before the
// pull request lands — i.e. the task already stalled — the migration is
// abandoned, as there would be no benefit.
#ifndef SRC_CORE_IVH_H_
#define SRC_CORE_IVH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/config.h"

namespace vsched {

class GuestKernel;
class GuestVcpu;
class Task;
class Vact;
class Vcap;

class Ivh {
 public:
  Ivh(GuestKernel* kernel, Vcap* vcap, Vact* vact, IvhConfig config = IvhConfig{});

  Ivh(const Ivh&) = delete;
  Ivh& operator=(const Ivh&) = delete;

  // Installs the tick hook.
  void Install();

  // Degraded mode: activity estimates are untrusted, so no new harvest
  // handshakes are started (in-flight ones still resolve or time out).
  void set_degraded(bool degraded) { degraded_ = degraded; }
  bool degraded() const { return degraded_; }

  uint64_t attempts() const { return attempts_; }
  uint64_t completed() const { return completed_; }
  uint64_t abandoned() const { return abandoned_; }

 private:
  struct Handshake {
    bool inflight = false;
    uint64_t id = 0;
    Task* task = nullptr;
    int src = -1;
    int dst = -1;
    TimeNs started = 0;
    TimeNs src_steal_at_start = 0;
    bool target_holding = false;
  };

  void OnTick(GuestVcpu* v, TimeNs now);
  int FindTarget(Task* task, int src, TimeNs now);
  void BeginHandshake(Task* task, int src, int dst, TimeNs now);
  void TargetActivated(int src, uint64_t id);
  void StopperRun(int src, uint64_t id);
  void FinishHandshake(int src, bool success);

  GuestKernel* kernel_;
  Vcap* vcap_;
  Vact* vact_;
  IvhConfig config_;
  bool degraded_ = false;
  std::vector<Handshake> handshakes_;  // one slot per source vCPU
  uint64_t next_id_ = 1;
  uint64_t attempts_ = 0;
  uint64_t completed_ = 0;
  uint64_t abandoned_ = 0;
  // Handshake steps travel through RunOnVcpu as [this]-capturing closures
  // that may sit in a vCPU's pending-IPI queue (or an in-flight IPI event)
  // past this Ivh's lifetime — fleet tenants tear their stack down
  // mid-simulation. Each closure holds a weak_ptr to this token and no-ops
  // once it expires.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_CORE_IVH_H_
