#include "src/core/autotune.h"

#include <algorithm>

#include "src/guest/guest_kernel.h"
#include "src/probe/vact.h"
#include "src/probe/vcap.h"
#include "src/sim/simulation.h"

namespace vsched {

AutoTuner::AutoTuner(GuestKernel* kernel) : kernel_(kernel) {}

AutoTuner::~AutoTuner() = default;

void AutoTuner::Calibrate(TimeNs duration, VSchedOptions base,
                          std::function<void(VSchedOptions)> done) {
  // Fast calibration probing: short windows back to back.
  VcapConfig vcap_config;
  vcap_config.sampling_period = MsToNs(50);
  vcap_config.light_interval = MsToNs(100);
  vcap_config.heavy_every = 4;
  vcap_ = std::make_unique<Vcap>(kernel_, vcap_config);
  VactConfig vact_config;
  vact_config.update_interval = MsToNs(250);
  vact_ = std::make_unique<Vact>(kernel_, vact_config);
  vcap_->Start();
  vact_->Start();
  kernel_->sim()->After(duration, [this, base, done = std::move(done),
                                   alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    double max_inactive = 0;
    double min_duty = 1.0;
    for (int cpu = 0; cpu < kernel_->num_vcpus(); ++cpu) {
      max_inactive = std::max(max_inactive, vact_->LatencyOf(cpu));
      min_duty = std::min(min_duty, vcap_->CapacityOf(cpu) / kCapacityScale);
    }
    vcap_->Stop();
    vact_->Stop();
    done(Derive(base, max_inactive, min_duty, kernel_->params().tick_period));
  });
}

VSchedOptions AutoTuner::Derive(VSchedOptions base, double max_inactive_ns, double min_duty,
                                TimeNs guest_tick) {
  VSchedOptions o = base;
  // Sampling period: several times the longest inactive period so every
  // vCPU executes a few times per window (a bare 2x leaves ~40% per-window
  // sampling error); clamped to [50 ms, 500 ms].
  TimeNs period = static_cast<TimeNs>(4.0 * max_inactive_ns);
  o.vcap.sampling_period = std::clamp<TimeNs>(period, MsToNs(50), MsToNs(500));
  // Probe cadence: respond to vCPU changes within seconds; keep the light
  // interval an order of magnitude above the window to bound cost.
  o.vcap.light_interval = std::clamp<TimeNs>(10 * o.vcap.sampling_period, SecToNs(1), SecToNs(5));
  o.vcap.heavy_every = 5;
  o.vcap.ema_half_life_periods = 2.0;  // "50% per 2 periods"
  // vtop: low-duty vCPUs need a longer transfer budget before a pair can be
  // called stacked (overlap scales with duty^2).
  double duty = std::clamp(min_duty, 0.02, 1.0);
  double scale = std::clamp(1.0 / (duty * duty * 16.0), 1.0, 16.0);
  o.vtop.pair.timeout_attempts = static_cast<int>(15000 * scale);
  o.vtop.probe_interval = SecToNs(2);
  // ivh: trigger within two scheduler ticks after rescheduling (paper §6).
  o.ivh.migration_threshold = 2 * guest_tick;
  // ivh only pays off when inactivity exists at all.
  o.ivh.min_source_latency_ns = std::max(0.3 * 1e6 / 2, max_inactive_ns * 0.05);
  return o;
}

}  // namespace vsched
