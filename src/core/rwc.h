// Relaxed work conservation (rwc, §3.4).
//
// Hides problematic vCPUs from task placement via cgroup-style bans:
//  * straggler vCPUs — capacity far below the mean (default 10×) — are
//    banned for normal tasks but may still run best-effort (SCHED_IDLE)
//    tasks, including vcap's light prober, so a capacity recovery is
//    noticed;
//  * all but one vCPU of each stacking group are banned entirely (only
//    vtop's probers are exempt, so stacking changes are still detected), and
//    vcap halts its sampling there.
#ifndef SRC_CORE_RWC_H_
#define SRC_CORE_RWC_H_

#include "src/core/config.h"
#include "src/guest/cpumask.h"

namespace vsched {

class GuestKernel;
class GuestTopology;
class Vcap;

class Rwc {
 public:
  Rwc(GuestKernel* kernel, Vcap* vcap, RwcConfig config = RwcConfig{});

  Rwc(const Rwc&) = delete;
  Rwc& operator=(const Rwc&) = delete;

  // Subscribes to vcap windows (straggler detection runs per window).
  void Install();

  // Called by the bridge whenever vtop publishes a topology.
  void OnTopology(const GuestTopology& topo);

  // Frozen mode: capacity estimates are untrusted, so straggler verdicts are
  // kept at their last trusted state instead of being recomputed (a vCPU
  // must not be banned — or unbanned — on corrupted measurements).
  void set_freeze(bool freeze) { freeze_ = freeze; }
  bool frozen() const { return freeze_; }

  CpuMask straggler_bans() const { return straggler_bans_; }
  CpuMask stack_bans() const { return stack_bans_; }

 private:
  void Reevaluate();

  GuestKernel* kernel_;
  Vcap* vcap_;
  RwcConfig config_;
  bool freeze_ = false;
  CpuMask straggler_bans_;
  CpuMask stack_bans_;
};

}  // namespace vsched

#endif  // SRC_CORE_RWC_H_
