#include "src/core/bvs.h"

#include "src/guest/guest_kernel.h"
#include "src/probe/vact.h"
#include "src/probe/vcap.h"
#include "src/sim/simulation.h"

namespace vsched {

Bvs::Bvs(GuestKernel* kernel, Vcap* vcap, Vact* vact, BvsConfig config)
    : kernel_(kernel), vcap_(vcap), vact_(vact), config_(config) {}

void Bvs::Install() {
  kernel_->set_select_hook(
      [this](Task* t, int prev, int waker) { return SelectVcpu(t, prev, waker); });
}

bool Bvs::AcceptableVcpu(const GuestVcpu& v, double median_cap, double median_lat) {
  int cpu = v.index();
  // High capacity first: prevent runqueue saturation on weak vCPUs.
  if (vcap_->CapacityOf(cpu) < median_cap * config_.capacity_margin) {
    return false;
  }
  double latency = vact_->LatencyOf(cpu);
  bool low_latency = latency <= median_lat * config_.latency_margin + 1.0;

  TimeNs now = kernel_->sim()->now();
  if (v.IsIdle()) {
    // Empty runqueue: low latency + prolonged idleness → wakes up quickly.
    return low_latency && (now - v.idle_since()) >= config_.min_idle_time;
  }
  bool only_idle_queue =
      (v.current() == nullptr || v.current()->policy() == TaskPolicy::kIdle) &&
      (v.rq().empty() || v.rq().OnlyIdleTasks());
  if (!only_idle_queue) {
    return false;  // Normal work present: placing here would queue behind it.
  }
  if (!config_.check_state) {
    // Ablation (Table 3): ignore the vCPU state, accept on latency alone.
    return low_latency;
  }
  VcpuStateView state = vact_->QueryState(cpu);
  if (state.inactive) {
    // Long-inactive with low latency: likely to become active soon.
    double inactive_for = static_cast<double>(now - state.since);
    return low_latency && inactive_for >= latency;
  }
  // Recently active sched_idle vCPU: the task starts immediately and can
  // finish within the remaining active period (the "blue path").
  double active_for = static_cast<double>(now - state.since);
  double avg_active = vact_->ActivePeriodOf(cpu);
  return active_for <= avg_active * config_.recent_active_fraction;
}

int Bvs::SelectVcpu(Task* task, int prev_cpu, int waker_cpu) {
  (void)prev_cpu;
  (void)waker_cpu;
  if (degraded_) {
    ++fallbacks_;
    return -1;  // Untrusted probe data: take the CFS path unconditionally.
  }
  TimeNs now_check = kernel_->sim()->now();
  if (task->policy() == TaskPolicy::kIdle || task->UtilAt(now_check) > config_.small_task_util) {
    return -1;  // Not a small latency-sensitive task: CFS path.
  }
  if (!vcap_->has_results()) {
    ++fallbacks_;
    return -1;
  }
  double median_cap = vcap_->MedianCapacity();
  double median_lat = vact_->MedianLatency();
  CpuMask allowed = kernel_->EffectiveAllowed(task);
  int n = kernel_->num_vcpus();
  int start = rotor_;
  rotor_ = (rotor_ + 1) % n;
  // First-fit over an aggressive, domain-unconstrained scan (§3.2: bvs is
  // not limited to the preferred LLC domain).
  for (int k = 0; k < n; ++k) {
    int cpu = (start + k) % n;
    if (!allowed.Test(cpu)) {
      continue;
    }
    if (AcceptableVcpu(kernel_->vcpu(cpu), median_cap, median_lat)) {
      ++placements_;
      return cpu;
    }
  }
  ++fallbacks_;
  return -1;
}

}  // namespace vsched
