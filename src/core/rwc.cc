#include "src/core/rwc.h"

#include "src/guest/guest_kernel.h"
#include "src/guest/guest_topology.h"
#include "src/probe/vcap.h"

namespace vsched {

Rwc::Rwc(GuestKernel* kernel, Vcap* vcap, RwcConfig config)
    : kernel_(kernel), vcap_(vcap), config_(config) {}

void Rwc::Install() {
  if (vcap_ != nullptr) {
    vcap_->AddWindowCallback([this](TimeNs, TimeNs, bool) { Reevaluate(); });
  }
}

void Rwc::OnTopology(const GuestTopology& topo) {
  // Keep the lowest-index vCPU of each stacking group; ban the rest.
  CpuMask bans;
  int n = topo.num_vcpus();
  for (int i = 0; i < n; ++i) {
    if (topo.stack_mask[i].Count() >= 2 && topo.stack_mask[i].First() != i) {
      bans.Set(i);
    }
  }
  stack_bans_ = bans;
  if (vcap_ != nullptr) {
    vcap_->SetSkipMask(stack_bans_);  // Halt sampling on banned stacked vCPUs.
  }
  Reevaluate();
}

void Rwc::Reevaluate() {
  if (freeze_) {
    // Keep the previous straggler verdicts; still propagate stack bans,
    // which come from the (separately gated) topology rather than vcap.
    kernel_->SetBans(straggler_bans_, stack_bans_);
    return;
  }
  CpuMask stragglers;
  if (vcap_ != nullptr && vcap_->windows_completed() >= config_.min_windows) {
    int n = kernel_->num_vcpus();
    double sum = 0;
    int counted = 0;
    for (int i = 0; i < n; ++i) {
      if (stack_bans_.Test(i)) {
        continue;
      }
      sum += vcap_->CapacityOf(i);
      ++counted;
    }
    if (counted > 0) {
      double mean = sum / counted;
      for (int i = 0; i < n; ++i) {
        if (stack_bans_.Test(i)) {
          continue;
        }
        if (vcap_->CapacityOf(i) < mean * config_.straggler_ratio) {
          stragglers.Set(i);
        }
      }
    }
  }
  straggler_bans_ = stragglers;
  kernel_->SetBans(straggler_bans_, stack_bans_);
}

}  // namespace vsched
