// Structured result output: one JSON object per run, one line per object.
//
// Rows contain only simulation-deterministic fields by default, so the JSONL
// stream for a sweep is byte-identical however many worker threads produced
// it; wall-clock timing is opt-in (`include_timing`) and lives in the human
// summary otherwise.
#ifndef SRC_RUNNER_RESULT_SINK_H_
#define SRC_RUNNER_RESULT_SINK_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/runner/runner.h"

namespace vsched {

// Escapes a string for inclusion in a JSON string literal (quotes, control
// characters, backslashes; non-ASCII bytes pass through untouched).
std::string JsonEscape(const std::string& s);

// Shortest round-trip decimal form of `value`; non-finite values become
// "null" (JSON has no NaN/Infinity).
std::string JsonNumber(double value);

// The JSONL row for one run (no trailing newline). Schema documented in
// docs/RUNNER.md.
std::string ResultRowJson(const RunResult& result, bool include_timing = false);

class ResultSink {
 public:
  struct Options {
    bool include_timing = false;  // adds "wall_ms" (non-deterministic) per row
  };

  explicit ResultSink(std::ostream* out);
  ResultSink(std::ostream* out, Options options);

  // Appends one row. Call in spec order for reproducible files.
  void Write(const RunResult& result);

  int rows_written() const { return rows_written_; }

 private:
  std::ostream* out_;
  Options options_;
  int rows_written_ = 0;
};

}  // namespace vsched

#endif  // SRC_RUNNER_RESULT_SINK_H_
