// Declarative experiment specs: a sweep is data, not a hand-written loop.
//
// A RunSpec names everything one simulation needs — deployment family, the
// workload, the scheduler configuration, the seed and the measurement window
// — so the Runner can shard a sweep across threads and any two executions of
// the same spec are bit-identical.
#ifndef SRC_RUNNER_SPEC_H_
#define SRC_RUNNER_SPEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/time.h"
#include "src/core/config.h"

namespace vsched {

// Which simulated deployment a run uses.
enum class ExperimentFamily {
  kOverallRcvm,  // Fig 18 protocol: rcvm (4 vCPU classes, stragglers, stacking)
  kOverallHpvm,  // Fig 19 protocol: hpvm (4 sockets, one dedicated group)
  kVcpuLatency,  // Fig 2 protocol: flat 32-vCPU VM with shaped vCPU latency
  kFleet,        // Cluster-scale fleet (src/cluster/): workload names a preset
  kAdversary,    // Adversarial co-tenant deception matrix (src/adversary/):
                 // workload names the attack (steal|evade|burst|all) or its
                 // fleet variant (fleet-steal|...)
};

// Stable short name used in run ids and JSONL rows.
const char* FamilyName(ExperimentFamily family);

// The scheduler configurations the overall sweeps compare, in column order.
struct SchedulerConfig {
  std::string name;  // "cfs" | "enhanced" | "vsched"
  VSchedOptions options;
};
const std::vector<SchedulerConfig>& SweepSchedulerConfigs();

// Options for a config name from SweepSchedulerConfigs(); throws
// std::invalid_argument for an unknown name.
VSchedOptions OptionsForConfig(const std::string& name);

struct RunSpec {
  ExperimentFamily family = ExperimentFamily::kOverallRcvm;
  std::string workload;
  std::string config = "cfs";
  uint64_t seed = 1;
  TimeNs warmup = SecToNs(5);
  TimeNs measure = SecToNs(10);

  // kVcpuLatency knobs (ignored by the overall families).
  TimeNs vcpu_latency = MsToNs(2);
  bool best_effort = false;

  // Tickless simulation (guest NOHZ tick elision + dormant host bandwidth
  // refills). Deliberately NOT part of Id(): rows must byte-compare across
  // the two modes, which is exactly what the vsched_run_tickless ctest and
  // the tickless CI job assert.
  bool tickless = false;

  // Named fault plan (src/fault/fault_plan.h) driving deterministic chaos
  // injection, or empty/"none" for a clean run. NOT part of Id(): a chaos
  // sweep resumes against its own checkpoint, and the resume matcher must
  // see the same ids a clean sweep would emit. The plan name is recorded per
  // row ("fault_plan") instead.
  std::string fault_plan;

  // Simulated-event watchdog: a run dispatching more than this many events
  // throws SimBudgetExceeded and the cell reports status "timeout" instead
  // of hanging the sweep. 0 disables the budget. Deterministic (counts
  // simulated events, not wall time), so also NOT part of Id().
  uint64_t event_budget = 0;

  // Robust-layer override, an explicit experiment axis for adversary rows:
  //  -1  legacy behavior (single-VM chaos runs auto-arm the degradation
  //      layer, fleets follow the scheduler config) — never appears in Id();
  //   0  force robust off (measure how far an attack deceives each
  //      component), Id() gains "/robust=off";
  //   1  force robust on (measure detection and mitigation), "/robust=on".
  int robust_override = -1;

  // Fleet execution engine: 0 runs the sequential control plane
  // (src/cluster/fleet.h); >= 1 runs the sharded PDES engine
  // (src/cluster/sharded_fleet.h) with this many worker threads. NOT part of
  // Id(): the sharded engine's output is byte-identical for every value
  // >= 1 (the vsched_run_fleet_sharded ctest), so `shards` is an execution
  // detail like --jobs, not an experiment axis. Ignored by non-fleet
  // families.
  int shards = 0;

  // Human/filterable identity, e.g. "fig18_rcvm/canneal/vsched" or
  // "fig02/img-dnn/cfs/lat=4ms+be".
  std::string Id() const;
};

struct ExperimentSpec {
  std::string name;
  std::vector<RunSpec> runs;

  // Keeps only runs whose Id() contains `substr` (empty keeps everything).
  void Filter(const std::string& substr);
};

// ---------------------------------------------------------------------------
// Sweep builders (the tables previously duplicated across bench binaries)
// ---------------------------------------------------------------------------

// Figure 18/19 protocol: all 31 workloads x {cfs, enhanced, vsched}. Every
// run uses the same `seed`, as the original serial benches did, so results
// stay comparable with the seed repo's output. Pass 0 for the bench default.
ExperimentSpec OverallSweep(ExperimentFamily family, uint64_t seed = 0,
                            TimeNs warmup = SecToNs(5), TimeNs measure = SecToNs(10));

// Figure 2 protocol: {img-dnn, silo, specjbb} x {2,4,8,16 ms} x {+-best
// effort} under stock CFS. Seeds derive as base_seed + vcpu_latency to match
// the original bench. Pass 0 for the bench default.
ExperimentSpec VcpuLatencySweep(uint64_t base_seed = 0, TimeNs warmup = SecToNs(2),
                                TimeNs measure = SecToNs(10));

// Fleet head-to-head: one cluster preset (src/cluster/fleet_spec.h) under
// {cfs, vsched} guest kernels — the same fleet, seed, arrivals, and traffic,
// differing only in whether guests run the vSched stack. "enhanced" is
// skipped: host-side shaping is not the axis a datacenter operator controls.
// For fleets warmup + measure is simply the horizon (tenant latency
// distributions cover the whole run; the fleet ramps from empty by design).
// Pass 0 for the preset-independent default seed.
ExperimentSpec FleetSweep(const std::string& preset, uint64_t seed = 0,
                          TimeNs warmup = MsToNs(0), TimeNs measure = SecToNs(2));

// Adversarial co-tenant deception matrix (docs/ROBUSTNESS.md): each canned
// attack (cycle-steal, probe-evade, refill-burst) runs twice — robust layer
// forced off (how far each component is deceived) and forced on (detection
// and degradation) — as a single reference VM under "vsched", plus a tiny
// fleet with one adversarial tenant per host. Pass 0 for the default seed.
ExperimentSpec AdversarySweep(uint64_t seed = 0, TimeNs warmup = SecToNs(1),
                              TimeNs measure = SecToNs(2));

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// Metrics produced by one run, in a stable emission order.
struct RunMetrics {
  std::vector<std::pair<std::string, double>> values;

  void Set(const std::string& key, double value);
  // Value for `key`, or `fallback` when absent.
  double Get(const std::string& key, double fallback = 0) const;
};

// Builds the deployment a spec describes, runs it on the calling thread, and
// returns its metrics. Deterministic: depends only on the spec. Throws on an
// unknown workload/config name.
RunMetrics ExecuteRun(const RunSpec& spec);

}  // namespace vsched

#endif  // SRC_RUNNER_SPEC_H_
