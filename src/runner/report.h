// Human-readable reports over runner results: the Figure 18/19 and Figure 2
// tables previously hand-rolled in each bench binary, plus the wall-clock
// summary every sweep prints (the perf baseline for trajectory tracking).
#ifndef SRC_RUNNER_REPORT_H_
#define SRC_RUNNER_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/runner/runner.h"

namespace vsched {

// Figure 18/19 table + normalized geomean summary. `banner_id` is "rcvm" or
// "hpvm". Expects the results of OverallSweep() (any filtered subset works;
// workloads missing a "cfs" baseline are skipped in the summary).
void PrintOverallReport(const std::string& banner_id, const std::vector<RunResult>& results);

// Figure 2 tables: p95 normalized to the 16 ms configuration, with and
// without best-effort tasks. Expects the results of VcpuLatencySweep().
void PrintVcpuLatencyReport(const std::vector<RunResult>& results);

// Execution summary: run/failure counts, per-run wall times (all runs when
// few, the slowest otherwise), the summed per-run wall time, and the elapsed
// wall time `elapsed_ns` measured around the whole sweep.
void PrintRunSummary(const std::vector<RunResult>& results, TimeNs elapsed_ns,
                     std::FILE* out = stdout);

}  // namespace vsched

#endif  // SRC_RUNNER_REPORT_H_
