// One fully-wired simulated deployment and measurement helpers, shared by the
// runner's spec executor and every hand-written bench binary.
//
// (Historically `bench/bench_common.h`; it moved into the runner subsystem so
// declarative RunSpecs and ad-hoc benches build runs the same way.)
#ifndef SRC_RUNNER_RUN_CONTEXT_H_
#define SRC_RUNNER_RUN_CONTEXT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/vsched.h"
#include "src/fault/fault_injector.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/metrics/experiment.h"
#include "src/sim/simulation.h"
#include "src/workloads/catalog.h"

namespace vsched {

// One fully-wired simulated deployment: host + VM + vSched configuration.
struct RunContext {
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<HostMachine> machine;
  std::unique_ptr<Vm> vm;
  std::unique_ptr<VSched> vsched;
  std::vector<std::unique_ptr<Stressor>> stressors;
  // Optional chaos driver (set by the spec executor when a fault plan is
  // active). Declared last so it is destroyed before the machine/VM it
  // perturbs.
  std::unique_ptr<FaultInjector> fault;

  GuestKernel& kernel() { return vm->kernel(); }

  // Adds a continuously-running competitor on hardware thread `tid`.
  void AddStressor(HwThreadId tid, double weight = 1024.0, bool rt = false) {
    stressors.push_back(std::make_unique<Stressor>(sim.get(), "comp", weight, rt));
    stressors.back()->Start(machine.get(), tid);
  }
};

inline RunContext MakeRun(const TopologySpec& topo, VmSpec vm_spec, VSchedOptions options,
                          uint64_t seed, HostSchedParams host_params = HostSchedParams{}) {
  RunContext ctx;
  ctx.sim = std::make_unique<Simulation>(seed);
  ctx.machine = std::make_unique<HostMachine>(ctx.sim.get(), topo, host_params);
  ctx.vm = std::make_unique<Vm>(ctx.sim.get(), ctx.machine.get(), std::move(vm_spec));
  ctx.vsched = std::make_unique<VSched>(&ctx.vm->kernel(), options);
  ctx.vsched->Start();
  return ctx;
}

// A flat VM spec: `n` vCPUs pinned 1:1 starting at hardware thread 0.
inline TopologySpec FlatHost(int cores, int threads_per_core = 1, int sockets = 1) {
  TopologySpec spec;
  spec.sockets = sockets;
  spec.cores_per_socket = cores;
  spec.threads_per_core = threads_per_core;
  return spec;
}

// Runs one named workload with warm-up and measurement phases; returns its
// result over the measurement window.
struct MeasuredRun {
  WorkloadResult result;
  Work work_done = 0;        // VM "cycles" over the measurement window
  TimeNs measured_ns = 0;
  uint64_t migrations = 0;
};

inline MeasuredRun RunWorkloadObj(RunContext& ctx, Workload* workload, TimeNs warmup,
                                  TimeNs measure) {
  workload->Start();
  ctx.sim->RunFor(warmup);
  workload->ResetStats();
  Work work_before = TotalWorkDone(ctx.kernel());
  uint64_t migr_before = ctx.kernel().counters().migrations.value() +
                         ctx.kernel().counters().active_migrations.value();
  ctx.sim->RunFor(measure);
  MeasuredRun out;
  out.result = workload->Result();
  out.work_done = TotalWorkDone(ctx.kernel()) - work_before;
  out.measured_ns = measure;
  out.migrations = ctx.kernel().counters().migrations.value() +
                   ctx.kernel().counters().active_migrations.value() - migr_before;
  workload->Stop();
  ctx.sim->RunFor(MsToNs(50));
  return out;
}

inline MeasuredRun RunWorkload(RunContext& ctx, const std::string& name, int threads,
                               TimeNs warmup, TimeNs measure) {
  auto workload = MakeWorkload(&ctx.kernel(), name, threads);
  return RunWorkloadObj(ctx, workload.get(), warmup, measure);
}

// Performance number for normalization: throughput for throughput apps,
// inverse p95 for latency apps (so "higher is better" uniformly).
inline double Performance(const std::string& name, const WorkloadResult& r) {
  if (MetricFor(name) == MetricKind::kP95Latency) {
    return r.p95_ns > 0 ? 1e9 / r.p95_ns : 0;
  }
  return r.throughput;
}

}  // namespace vsched

#endif  // SRC_RUNNER_RUN_CONTEXT_H_
