// Executes a fleet of independent RunSpecs in parallel.
//
// Each run builds its own Simulation/Rng from its spec, so runs share no
// mutable state and the result of a spec is independent of which thread ran
// it or in what order. Results come back in spec order, which makes the
// serialized output of `--jobs=N` byte-identical to `--jobs=1`.
#ifndef SRC_RUNNER_RUNNER_H_
#define SRC_RUNNER_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/perf_counters.h"
#include "src/base/time.h"
#include "src/runner/spec.h"

namespace vsched {

// Structured error taxonomy for one sweep cell (docs/ROBUSTNESS.md):
//   kOk       — completed on the first attempt;
//   kRetried  — completed, but only after at least one retry;
//   kDegraded — completed, but the core took a degradation fallback during
//               the run (only observable under a fault plan);
//   kTimeout  — the simulated event budget was exhausted (deterministic
//               watchdog; never retried — the same spec would hang again);
//   kFailed   — every attempt threw, or the run was cancelled.
enum class RunStatus { kOk, kRetried, kDegraded, kTimeout, kFailed };

// Stable lowercase name used in JSONL rows ("ok", "retried", ...).
const char* RunStatusName(RunStatus status);

struct RunResult {
  RunSpec spec;
  int index = 0;     // position within the ExperimentSpec
  int attempts = 0;  // 1 on first-try success
  bool ok = false;
  RunStatus status = RunStatus::kFailed;
  std::string error;   // what() of the last failure when !ok
  RunMetrics metrics;  // empty when !ok
  TimeNs wall_ns = 0;  // host wall-clock time of the last attempt
  // Hot-path tallies of the last attempt (events executed, allocations,
  // runqueue traffic). Deterministic given the spec; the derived events/sec
  // rate is not, so both surface only behind --timings.
  PerfCounters counters;
};

struct RunnerOptions {
  // Worker threads; 0 picks hardware concurrency, 1 runs inline on the
  // calling thread (the serial reference path).
  int jobs = 0;
  // A run whose execution throws is retried until it has been attempted
  // this many times; deterministic failures simply fail fast again, and
  // simulated-budget timeouts are never retried.
  int max_attempts = 2;
  // Wall-clock wait before each retry: starts at `retry_backoff`, grows by
  // `retry_backoff_multiplier` per attempt, is capped at `retry_backoff_cap`
  // and jittered by a stream seeded from (spec seed, index) so the waits are
  // reproducible for a given sweep. Zero disables the wait entirely.
  TimeNs retry_backoff = MsToNs(10);
  double retry_backoff_multiplier = 2.0;
  TimeNs retry_backoff_cap = MsToNs(500);
  // When non-null and set, runs that have not started yet complete
  // immediately as kFailed/"interrupted" instead of executing; runs already
  // in flight finish normally. Lets a SIGINT handler drain the sweep into a
  // valid partial JSONL checkpoint.
  std::atomic<bool>* cancel = nullptr;
  // Optional progress hook, invoked once per finished run (any thread, but
  // never concurrently; completion order, not spec order).
  std::function<void(const RunResult&)> on_run_done;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = RunnerOptions{});

  // Executes every run of `experiment`; the returned vector is parallel to
  // `experiment.runs` regardless of completion order.
  std::vector<RunResult> Run(const ExperimentSpec& experiment);

  // Executes one spec with the retry/backoff/cancel policy applied; used by
  // Run() and directly by tests.
  static RunResult RunOne(const RunSpec& spec, int index, const RunnerOptions& options);

 private:
  RunnerOptions options_;
};

}  // namespace vsched

#endif  // SRC_RUNNER_RUNNER_H_
