// Executes a fleet of independent RunSpecs in parallel.
//
// Each run builds its own Simulation/Rng from its spec, so runs share no
// mutable state and the result of a spec is independent of which thread ran
// it or in what order. Results come back in spec order, which makes the
// serialized output of `--jobs=N` byte-identical to `--jobs=1`.
#ifndef SRC_RUNNER_RUNNER_H_
#define SRC_RUNNER_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/perf_counters.h"
#include "src/base/time.h"
#include "src/runner/spec.h"

namespace vsched {

struct RunResult {
  RunSpec spec;
  int index = 0;     // position within the ExperimentSpec
  int attempts = 0;  // 1 on first-try success
  bool ok = false;
  std::string error;   // what() of the last failure when !ok
  RunMetrics metrics;  // empty when !ok
  TimeNs wall_ns = 0;  // host wall-clock time of the last attempt
  // Hot-path tallies of the last attempt (events executed, allocations,
  // runqueue traffic). Deterministic given the spec; the derived events/sec
  // rate is not, so both surface only behind --timings.
  PerfCounters counters;
};

struct RunnerOptions {
  // Worker threads; 0 picks hardware concurrency, 1 runs inline on the
  // calling thread (the serial reference path).
  int jobs = 0;
  // A run whose execution throws is retried until it has been attempted
  // this many times; deterministic failures simply fail fast again.
  int max_attempts = 2;
  // Optional progress hook, invoked once per finished run (any thread, but
  // never concurrently; completion order, not spec order).
  std::function<void(const RunResult&)> on_run_done;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = RunnerOptions{});

  // Executes every run of `experiment`; the returned vector is parallel to
  // `experiment.runs` regardless of completion order.
  std::vector<RunResult> Run(const ExperimentSpec& experiment);

  // Executes one spec with the retry policy applied; used by Run() and
  // directly by tests.
  static RunResult RunOne(const RunSpec& spec, int index, int max_attempts);

 private:
  RunnerOptions options_;
};

}  // namespace vsched

#endif  // SRC_RUNNER_RUNNER_H_
