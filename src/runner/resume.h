// Checkpoint/resume for sweeps: `vsched_run --resume FILE` reuses the rows a
// previous (possibly interrupted) invocation already completed and executes
// only the missing or failed cells.
//
// The checkpoint *is* the JSONL output file — no side-channel state. Rows
// are matched by their "id" field; only rows with "ok":true are reused, and
// they are re-emitted with the "run" index rewritten to the current sweep's
// position (a checkpoint taken under a different --filter numbers the same
// cell differently), so a resumed sweep's final file is byte-identical to an
// uninterrupted run of the same sweep.
#ifndef SRC_RUNNER_RESUME_H_
#define SRC_RUNNER_RESUME_H_

#include <string>
#include <unordered_map>

namespace vsched {

struct ResumeState {
  // Run id → verbatim JSONL row (no trailing newline) of a completed run.
  std::unordered_map<std::string, std::string> completed;
  int rows_seen = 0;     // total parseable rows in the checkpoint
  int rows_skipped = 0;  // rows ignored (not ok, or unparseable)
};

// Parses a prior JSONL output file. Returns false (with `error` set) when
// the file cannot be opened; malformed lines are counted in rows_skipped
// rather than failing the whole resume.
bool LoadResumeState(const std::string& path, ResumeState* state, std::string* error);

// Extracts the value of a top-level string field ("key":"value") from one
// JSONL row; returns the empty string when absent. Exposed for tests.
std::string JsonlStringField(const std::string& row, const std::string& key);

// True when the row contains `"ok":true`. Exposed for tests.
bool JsonlRowOk(const std::string& row);

// Rewrites the leading `{"run":N` of a JSONL row to the given sweep
// position; returns the row unchanged when it does not start with a run
// field. Reused checkpoint rows must be re-keyed to the *current* sweep.
std::string RekeyRunIndex(const std::string& row, int run);

}  // namespace vsched

#endif  // SRC_RUNNER_RESUME_H_
