#include "src/runner/report.h"

#include <algorithm>
#include <map>

#include "src/metrics/experiment.h"
#include "src/workloads/catalog.h"

namespace vsched {

void PrintOverallReport(const std::string& banner_id, const std::vector<RunResult>& results) {
  // Group by workload, preserving first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, std::map<std::string, double>> perf;  // workload -> config -> perf
  for (const RunResult& result : results) {
    if (!result.ok) {
      continue;
    }
    if (perf.find(result.spec.workload) == perf.end()) {
      order.push_back(result.spec.workload);
    }
    perf[result.spec.workload][result.spec.config] = result.metrics.Get("perf");
  }

  TablePrinter table({"Workload", "kind", "CFS", "Enhanced CFS", "vSched"});
  std::vector<double> tput_enh, tput_full, lat_enh, lat_full;
  for (const std::string& name : order) {
    const auto& by_config = perf[name];
    auto value = [&](const char* config) {
      auto it = by_config.find(config);
      return it == by_config.end() ? 0.0 : it->second;
    };
    double cfs = value("cfs"), enhanced = value("enhanced"), full = value("vsched");
    bool latency_sensitive = MetricFor(name) == MetricKind::kP95Latency;
    double enh_pct = cfs > 0 ? 100.0 * enhanced / cfs : 0;
    double full_pct = cfs > 0 ? 100.0 * full / cfs : 0;
    table.AddRow({name, latency_sensitive ? "p95" : "tput", TablePrinter::Pct(100.0, 0),
                  TablePrinter::Pct(enh_pct, 0), TablePrinter::Pct(full_pct, 0)});
    if (cfs > 0 && enhanced > 0 && full > 0) {
      (latency_sensitive ? lat_enh : tput_enh).push_back(enhanced / cfs);
      (latency_sensitive ? lat_full : tput_full).push_back(full / cfs);
    }
  }
  table.Print();
  std::printf("\n%s summary (normalized performance vs CFS, higher is better; for\n"
              "latency-sensitive apps the metric is 1/p95):\n", banner_id.c_str());
  if (!tput_enh.empty()) {
    std::printf("  throughput-oriented: enhanced CFS %.0f%%, vSched %.0f%%\n",
                100.0 * GeoMean(tput_enh), 100.0 * GeoMean(tput_full));
  }
  if (!lat_enh.empty()) {
    std::printf("  latency-sensitive:   enhanced CFS %.0f%% (%.2fx p95 reduction), vSched %.0f%%"
                " (%.2fx p95 reduction)\n",
                100.0 * GeoMean(lat_enh), GeoMean(lat_enh), 100.0 * GeoMean(lat_full),
                GeoMean(lat_full));
  }
}

void PrintVcpuLatencyReport(const std::vector<RunResult>& results) {
  for (bool best_effort : {false, true}) {
    // app -> vcpu latency -> p95
    std::vector<std::string> order;
    std::map<std::string, std::map<TimeNs, double>> p95;
    for (const RunResult& result : results) {
      if (!result.ok || result.spec.best_effort != best_effort) {
        continue;
      }
      if (p95.find(result.spec.workload) == p95.end()) {
        order.push_back(result.spec.workload);
      }
      p95[result.spec.workload][result.spec.vcpu_latency] = result.metrics.Get("p95_ns");
    }
    if (order.empty()) {
      continue;
    }
    std::printf("\n%s best-effort tasks:\n", best_effort ? "With" : "Without");
    TablePrinter table({"App", "2 ms", "4 ms", "8 ms", "16 ms", "p95@2ms", "p95@16ms"});
    for (const std::string& app : order) {
      auto& by_latency = p95[app];
      double base = by_latency[MsToNs(16)];
      if (base <= 0) {
        continue;
      }
      table.AddRow({app, TablePrinter::Pct(100 * by_latency[MsToNs(2)] / base),
                    TablePrinter::Pct(100 * by_latency[MsToNs(4)] / base),
                    TablePrinter::Pct(100 * by_latency[MsToNs(8)] / base), TablePrinter::Pct(100.0),
                    TablePrinter::Fmt(NsToMs(static_cast<TimeNs>(by_latency[MsToNs(2)])), 2) +
                        " ms",
                    TablePrinter::Fmt(NsToMs(static_cast<TimeNs>(base)), 2) + " ms"});
    }
    table.Print();
  }
}

void PrintRunSummary(const std::vector<RunResult>& results, TimeNs elapsed_ns, std::FILE* out) {
  int failures = 0, retried = 0, timeouts = 0, degraded = 0;
  TimeNs summed = 0;
  for (const RunResult& result : results) {
    summed += result.wall_ns;
    if (!result.ok) {
      ++failures;
    }
    if (result.attempts > 1) {
      ++retried;
    }
    if (result.status == RunStatus::kTimeout) {
      ++timeouts;
    }
    if (result.status == RunStatus::kDegraded) {
      ++degraded;
    }
  }

  std::vector<const RunResult*> by_wall;
  by_wall.reserve(results.size());
  for (const RunResult& result : results) {
    by_wall.push_back(&result);
  }
  std::stable_sort(by_wall.begin(), by_wall.end(),
                   [](const RunResult* a, const RunResult* b) { return a->wall_ns > b->wall_ns; });

  std::fprintf(out, "\nruns: %zu ok: %zu failed: %d retried: %d", results.size(),
               results.size() - failures, failures, retried);
  if (timeouts > 0) {
    std::fprintf(out, " timeout: %d", timeouts);
  }
  if (degraded > 0) {
    std::fprintf(out, " degraded: %d", degraded);
  }
  std::fprintf(out, "\n");
  // Per-run wall times: all of them when the sweep is small, else the tail
  // that dominates the wall clock.
  size_t shown = results.size() <= 24 ? by_wall.size() : std::min<size_t>(5, by_wall.size());
  const char* label = results.size() <= 24 ? "per-run wall time" : "slowest runs";
  std::fprintf(out, "%s:\n", label);
  for (size_t i = 0; i < shown; ++i) {
    std::fprintf(out, "  %8.1f ms  %s%s\n", static_cast<double>(by_wall[i]->wall_ns) / 1e6,
                 by_wall[i]->spec.Id().c_str(), by_wall[i]->ok ? "" : "  [FAILED]");
  }
  double elapsed_s = static_cast<double>(elapsed_ns) / 1e9;
  double summed_s = static_cast<double>(summed) / 1e9;
  std::fprintf(out, "total wall time: %.2f s elapsed (%.2f s summed across runs, %.2fx)\n",
               elapsed_s, summed_s, elapsed_s > 0 ? summed_s / elapsed_s : 0.0);
}

}  // namespace vsched
