#include "src/runner/resume.h"

#include <cctype>
#include <fstream>

namespace vsched {

std::string JsonlStringField(const std::string& row, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  size_t start = row.find(needle);
  if (start == std::string::npos) {
    return "";
  }
  start += needle.size();
  std::string out;
  for (size_t i = start; i < row.size(); ++i) {
    char c = row[i];
    if (c == '\\' && i + 1 < row.size()) {
      // Enough unescaping for run ids (which JsonEscape only touches for
      // quotes and backslashes); other escapes pass through verbatim.
      char next = row[i + 1];
      if (next == '"' || next == '\\') {
        out += next;
        ++i;
        continue;
      }
    }
    if (c == '"') {
      return out;
    }
    out += c;
  }
  return "";  // unterminated string: treat as absent
}

bool JsonlRowOk(const std::string& row) {
  return row.find("\"ok\":true") != std::string::npos;
}

std::string RekeyRunIndex(const std::string& row, int run) {
  const std::string prefix = "{\"run\":";
  if (row.compare(0, prefix.size(), prefix) != 0) {
    return row;
  }
  size_t end = prefix.size();
  while (end < row.size() && (std::isdigit(static_cast<unsigned char>(row[end])) != 0 ||
                              row[end] == '-')) {
    ++end;
  }
  return prefix + std::to_string(run) + row.substr(end);
}

bool LoadResumeState(const std::string& path, ResumeState* state, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::string id = JsonlStringField(line, "id");
    if (id.empty()) {
      ++state->rows_skipped;
      continue;
    }
    ++state->rows_seen;
    if (!JsonlRowOk(line)) {
      ++state->rows_skipped;  // failed/timeout/interrupted cells rerun
      continue;
    }
    // Last occurrence wins: a checkpoint appended across several partial
    // invocations resolves to its freshest row per id.
    state->completed[id] = line;
  }
  return true;
}

}  // namespace vsched
