#include "src/runner/deception.h"

#include <algorithm>
#include <cmath>

#include "src/core/vsched.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"

namespace vsched {

namespace {

// Ground-truth relation of two vCPUs from their pinned hardware threads —
// what vtop would publish if its probes were undisturbed.
VcpuRelation TrueRelation(const HostTopology& topo, HwThreadId a, HwThreadId b) {
  if (a == b) {
    return VcpuRelation::kStacked;
  }
  switch (topo.DistanceClass(a, b)) {
    case HwDistance::kSame:
      return VcpuRelation::kStacked;
    case HwDistance::kSmtSibling:
      return VcpuRelation::kSmtSibling;
    case HwDistance::kSameSocket:
      return VcpuRelation::kSameSocket;
    case HwDistance::kCrossSocket:
      return VcpuRelation::kCrossSocket;
  }
  return VcpuRelation::kUnknown;
}

}  // namespace

GroundTruthSnapshot CaptureGroundTruth(Vm& vm, TimeNs now) {
  GroundTruthSnapshot snap;
  snap.at = now;
  int n = vm.num_vcpus();
  snap.ran_ns.reserve(static_cast<size_t>(n));
  snap.steal_ns.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    snap.ran_ns.push_back(vm.thread(i).ran_ns(now));
    snap.steal_ns.push_back(vm.thread(i).steal_ns(now));
  }
  return snap;
}

void AppendDeceptionMetrics(const GroundTruthSnapshot& before,
                            const GroundTruthSnapshot& after, Vm& vm,
                            const HostMachine& machine, VSched& vsched,
                            uint64_t adversary_activations, RunMetrics& metrics) {
  const int n = vm.num_vcpus();

  // Ground truth: of the time each vCPU wanted the CPU during the window,
  // what fraction did the host actually deliver?
  std::vector<double> gt_delivered(static_cast<size_t>(n), 1.0);
  double gt_delivered_sum = 0;
  double gt_delivered_min = 1.0;
  double gt_steal_sum = 0;
  for (int i = 0; i < n; ++i) {
    const double dran = static_cast<double>(after.ran_ns[i] - before.ran_ns[i]);
    const double dsteal = static_cast<double>(after.steal_ns[i] - before.steal_ns[i]);
    const double demand = dran + dsteal;
    if (demand > 0) {
      gt_delivered[static_cast<size_t>(i)] = dran / demand;
    }
    gt_delivered_sum += gt_delivered[static_cast<size_t>(i)];
    gt_delivered_min = std::min(gt_delivered_min, gt_delivered[static_cast<size_t>(i)]);
    const double window = static_cast<double>(after.at - before.at);
    gt_steal_sum += window > 0 ? dsteal / window : 0;
  }
  metrics.Set("dx_gt_delivered_mean", n > 0 ? gt_delivered_sum / n : 1.0);
  metrics.Set("dx_gt_delivered_min", gt_delivered_min);
  metrics.Set("dx_gt_steal_frac_mean", n > 0 ? gt_steal_sum / n : 0);

  // vcap: capacity estimate (kCapacityScale units → fraction) vs delivered.
  double cap_est_sum = 0;
  double cap_err_sum = 0;
  double cap_err_max = -1.0;
  Vcap* vcap = vsched.vcap();
  for (int i = 0; i < n; ++i) {
    const double est =
        vcap != nullptr ? vcap->CapacityOf(i) / kCapacityScale : 1.0;
    const double err = est - gt_delivered[static_cast<size_t>(i)];
    cap_est_sum += est;
    cap_err_sum += err;
    cap_err_max = std::max(cap_err_max, err);
  }
  metrics.Set("dx_cap_est_mean", n > 0 ? cap_est_sum / n : 1.0);
  metrics.Set("dx_cap_err_mean", n > 0 ? cap_err_sum / n : 0);
  metrics.Set("dx_cap_err_max", n > 0 ? cap_err_max : 0);

  // vact: the published vCPU-latency picture (a stale/zero estimate against
  // nonzero ground-truth theft is the cycle-stealer's signature).
  Vact* vact = vsched.vact();
  metrics.Set("dx_act_latency_ns", vact != nullptr ? vact->MedianLatency() : 0);
  metrics.Set("dx_act_subthreshold_windows",
              vact != nullptr ? static_cast<double>(vact->subthreshold_windows()) : 0);

  // vtop: probed classification vs the pinned host topology.
  Vtop* vtop = vsched.vtop();
  int pairs_probed = 0;
  int pairs_wrong = 0;
  if (vtop != nullptr && vtop->has_topology()) {
    const HostTopology& topo = machine.topology();
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        const double latency = vtop->MatrixAt(a, b);
        if (latency < 0) {
          continue;  // never probed (nor inferred): no claim to score
        }
        ++pairs_probed;
        const HwThreadId ta = static_cast<HwThreadId>(vm.thread(a).tid());
        const HwThreadId tb = static_cast<HwThreadId>(vm.thread(b).tid());
        if (vtop->Classify(latency) != TrueRelation(topo, ta, tb)) {
          ++pairs_wrong;
        }
      }
    }
  }
  metrics.Set("dx_topo_pairs_probed", pairs_probed);
  metrics.Set("dx_topo_misclass_frac",
              pairs_probed > 0 ? static_cast<double>(pairs_wrong) / pairs_probed : 0);
  // Probe-loop liveness: an attack that keeps pair probes from ever
  // completing shows up here as zero full probes (topology denial), not as
  // misclassification.
  metrics.Set("dx_topo_full_probes",
              vtop != nullptr ? static_cast<double>(vtop->full_probes_run()) : 0);
  metrics.Set("dx_topo_validations",
              vtop != nullptr ? static_cast<double>(vtop->validations_run()) : 0);

  // Optimizations acting on (possibly deceived) estimates.
  Bvs* bvs = vsched.bvs();
  metrics.Set("dx_bvs_placements",
              bvs != nullptr ? static_cast<double>(bvs->placements()) : 0);
  metrics.Set("dx_bvs_fallbacks",
              bvs != nullptr ? static_cast<double>(bvs->fallbacks()) : 0);
  Ivh* ivh = vsched.ivh();
  metrics.Set("dx_ivh_attempts",
              ivh != nullptr ? static_cast<double>(ivh->attempts()) : 0);
  metrics.Set("dx_ivh_completed",
              ivh != nullptr ? static_cast<double>(ivh->completed()) : 0);
  Rwc* rwc = vsched.rwc();
  metrics.Set("dx_rwc_straggler_bans",
              rwc != nullptr ? static_cast<double>(rwc->straggler_bans().Count()) : 0);
  metrics.Set("dx_rwc_stack_bans",
              rwc != nullptr ? static_cast<double>(rwc->stack_bans().Count()) : 0);
  // Ground-truth stragglers by rwc's own criterion, applied to delivered
  // fractions instead of vcap estimates: bans below this count mean rwc was
  // blinded to real stragglers.
  int gt_stragglers = 0;
  const double gt_mean = n > 0 ? gt_delivered_sum / n : 1.0;
  const double ratio = vsched.options().rwc.straggler_ratio;
  for (int i = 0; i < n; ++i) {
    if (gt_delivered[static_cast<size_t>(i)] < gt_mean * ratio) {
      ++gt_stragglers;
    }
  }
  metrics.Set("dx_gt_stragglers", gt_stragglers);

  // Anti-evasion detectors (all zero unless robust.enabled).
  metrics.Set("dx_implausible_windows",
              vcap != nullptr ? static_cast<double>(vcap->implausible_windows()) : 0);
  metrics.Set("dx_quarantine_events",
              vcap != nullptr ? static_cast<double>(vcap->quarantine_events()) : 0);
  metrics.Set("dx_quarantined_at_end",
              vcap != nullptr ? static_cast<double>(vcap->QuarantinedMask().Count()) : 0);
  metrics.Set("dx_pessimistic_publishes",
              static_cast<double>(vsched.pessimistic_publishes()));
  metrics.Set("dx_reprobes",
              vtop != nullptr ? static_cast<double>(vtop->reprobes_scheduled()) : 0);
  metrics.Set("dx_degraded_quarantine_ms",
              static_cast<double>(vsched.degradation().TimeDegraded(
                  DegradedComponent::kQuarantine, after.at)) /
                  1e6);
  metrics.Set("dx_adversary_activations", static_cast<double>(adversary_activations));
}

}  // namespace vsched
