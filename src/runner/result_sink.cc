#include "src/runner/result_sink.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace vsched {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {
    return "null";
  }
  return std::string(buf, ptr);
}

std::string ResultRowJson(const RunResult& result, bool include_timing) {
  std::string row = "{";
  row += "\"run\":" + std::to_string(result.index);
  row += ",\"id\":\"" + JsonEscape(result.spec.Id()) + "\"";
  row += ",\"experiment\":\"" + JsonEscape(FamilyName(result.spec.family)) + "\"";
  row += ",\"workload\":\"" + JsonEscape(result.spec.workload) + "\"";
  row += ",\"config\":\"" + JsonEscape(result.spec.config) + "\"";
  row += ",\"seed\":" + std::to_string(result.spec.seed);
  // The empty "none" plan is a clean run; its rows must byte-compare against
  // rows produced with no plan at all.
  if (!result.spec.fault_plan.empty() && result.spec.fault_plan != "none") {
    row += ",\"fault_plan\":\"" + JsonEscape(result.spec.fault_plan) + "\"";
  }
  row += ",\"ok\":";
  row += result.ok ? "true" : "false";
  if (result.status != RunStatus::kOk) {
    row += ",\"status\":\"";
    row += RunStatusName(result.status);
    row += "\"";
  }
  row += ",\"attempts\":" + std::to_string(result.attempts);
  if (!result.ok) {
    row += ",\"error\":\"" + JsonEscape(result.error) + "\"";
  }
  row += ",\"metrics\":{";
  bool first = true;
  for (const auto& [key, value] : result.metrics.values) {
    if (!first) {
      row += ",";
    }
    first = false;
    row += "\"" + JsonEscape(key) + "\":" + JsonNumber(value);
  }
  row += "}";
  if (include_timing) {
    row += ",\"wall_ms\":" + JsonNumber(static_cast<double>(result.wall_ns) / 1e6);
    const PerfCounters& c = result.counters;
    double secs = static_cast<double>(result.wall_ns) / 1e9;
    row += ",\"events\":" + std::to_string(c.events_executed);
    row += ",\"events_per_sec\":" +
           JsonNumber(secs > 0 ? static_cast<double>(c.events_executed) / secs : 0);
    row += ",\"events_cancelled\":" + std::to_string(c.events_cancelled);
    row += ",\"cb_heap_allocs\":" + std::to_string(c.callback_heap_allocs);
    row += ",\"slab_allocs\":" + std::to_string(c.event_slab_allocs);
    row += ",\"rq_picks\":" + std::to_string(c.rq_picks);
    row += ",\"rq_enqueues\":" + std::to_string(c.rq_enqueues);
  }
  row += "}";
  return row;
}

ResultSink::ResultSink(std::ostream* out) : ResultSink(out, Options{}) {}

ResultSink::ResultSink(std::ostream* out, Options options) : out_(out), options_(options) {}

void ResultSink::Write(const RunResult& result) {
  *out_ << ResultRowJson(result, options_.include_timing) << "\n";
  ++rows_written_;
}

}  // namespace vsched
