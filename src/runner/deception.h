// The deception matrix: ground truth vs estimate, per attack and component.
//
// An adversarial co-tenant (src/adversary/) tries to make each vSched
// estimator publish a picture that disagrees with what the host actually
// delivered. This reporter quantifies the disagreement: host-side entity
// accounting over the measurement window is the ground truth, the probers'
// published estimates are the claim, and every dx_* metric is one cell of
// the (attack, component) matrix. It lives in the runner — not in
// src/adversary/ — because attack code is confined to the public host/guest
// surface (vsched-lint's adversary-surface rule) while this reporter must
// read every estimator.
//
// Interpretation (docs/ROBUSTNESS.md has the full matrix):
//   * dx_cap_err_*      — vcap capacity estimate minus delivered fraction;
//                         positive = the prober over-credits a stolen vCPU.
//   * dx_act_*          — vact's latency estimate vs the theft it missed.
//   * dx_topo_misclass  — fraction of probed vCPU pairs vtop classified
//                         differently from the pinned host topology.
//   * dx_bvs_* / dx_ivh_* / dx_rwc_* — optimization activity that acted on
//                         (possibly deceived) estimates.
//   * dx_implausible_windows, dx_quarantine_*, dx_subthreshold_windows,
//     dx_pessimistic_publishes, dx_reprobes — the anti-evasion detectors
//                         (nonzero only with robust.enabled).
#ifndef SRC_RUNNER_DECEPTION_H_
#define SRC_RUNNER_DECEPTION_H_

#include <vector>

#include "src/base/time.h"
#include "src/runner/spec.h"

namespace vsched {

class HostMachine;
class Vm;
class VSched;

// Host-side per-vCPU accounting at one instant; two snapshots bracket the
// measurement window.
struct GroundTruthSnapshot {
  TimeNs at = 0;
  std::vector<TimeNs> ran_ns;
  std::vector<TimeNs> steal_ns;
};

GroundTruthSnapshot CaptureGroundTruth(Vm& vm, TimeNs now);

// Appends the dx_* matrix rows for one run. Emits a fixed key set in a
// stable order regardless of configuration (absent components report 0), so
// adversary JSONL rows keep one schema across attacks and robust modes.
void AppendDeceptionMetrics(const GroundTruthSnapshot& before,
                            const GroundTruthSnapshot& after, Vm& vm,
                            const HostMachine& machine, VSched& vsched,
                            uint64_t adversary_activations, RunMetrics& metrics);

}  // namespace vsched

#endif  // SRC_RUNNER_DECEPTION_H_
