#include "src/runner/runner.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "src/base/thread_pool.h"
#include "src/sim/rng.h"
#include "src/sim/simulation.h"

namespace vsched {

namespace {

TimeNs WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* RunStatusName(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kRetried:
      return "retried";
    case RunStatus::kDegraded:
      return "degraded";
    case RunStatus::kTimeout:
      return "timeout";
    case RunStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {
  if (options_.max_attempts < 1) {
    options_.max_attempts = 1;
  }
}

RunResult Runner::RunOne(const RunSpec& spec, int index, const RunnerOptions& options) {
  RunResult result;
  result.spec = spec;
  result.index = index;
  if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
    result.attempts = 0;
    result.ok = false;
    result.status = RunStatus::kFailed;
    result.error = "interrupted";
    return result;
  }
  int max_attempts = std::max(1, options.max_attempts);
  // Retry waits are jittered from a stream seeded by the cell itself, so a
  // given sweep produces the same backoff sequence on every execution.
  Rng backoff_rng(spec.seed ^ (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(index + 1)));
  TimeNs backoff = options.retry_backoff;
  while (result.attempts < max_attempts) {
    ++result.attempts;
    result.counters.Reset();
    PerfCounters::Scope counters_scope(&result.counters);
    TimeNs start = WallNowNs();
    try {
      result.metrics = ExecuteRun(spec);
      result.wall_ns = WallNowNs() - start;
      result.ok = true;
      result.error.clear();
      if (result.metrics.Get("degraded_transitions", 0) > 0) {
        result.status = RunStatus::kDegraded;
      } else {
        result.status = result.attempts > 1 ? RunStatus::kRetried : RunStatus::kOk;
      }
      return result;
    } catch (const SimBudgetExceeded& e) {
      // Deterministic watchdog: the same spec would exhaust the same budget
      // on every retry, so fail the cell immediately.
      result.wall_ns = WallNowNs() - start;
      result.error = e.what();
      result.status = RunStatus::kTimeout;
      return result;
    } catch (const std::exception& e) {
      result.wall_ns = WallNowNs() - start;
      result.error = e.what();
    } catch (...) {
      result.wall_ns = WallNowNs() - start;
      result.error = "unknown exception";
    }
    result.status = RunStatus::kFailed;
    if (result.attempts < max_attempts && options.retry_backoff > 0) {
      double jitter = 0.5 + backoff_rng.NextDouble();  // [0.5, 1.5)
      TimeNs wait = std::min<TimeNs>(options.retry_backoff_cap,
                                     static_cast<TimeNs>(static_cast<double>(backoff) * jitter));
      std::this_thread::sleep_for(std::chrono::nanoseconds(wait));
      backoff = std::min<TimeNs>(
          options.retry_backoff_cap,
          static_cast<TimeNs>(static_cast<double>(backoff) * options.retry_backoff_multiplier));
    }
  }
  return result;
}

std::vector<RunResult> Runner::Run(const ExperimentSpec& experiment) {
  std::vector<RunResult> results;
  results.reserve(experiment.runs.size());

  if (options_.jobs == 1) {
    for (size_t i = 0; i < experiment.runs.size(); ++i) {
      results.push_back(RunOne(experiment.runs[i], static_cast<int>(i), options_));
      if (options_.on_run_done) {
        options_.on_run_done(results.back());
      }
    }
    return results;
  }

  std::mutex progress_mu;
  std::vector<std::future<RunResult>> futures;
  futures.reserve(experiment.runs.size());
  {
    ThreadPool pool(options_.jobs);
    for (size_t i = 0; i < experiment.runs.size(); ++i) {
      const RunSpec& spec = experiment.runs[i];
      int index = static_cast<int>(i);
      futures.push_back(pool.Submit([this, &spec, index, &progress_mu] {
        RunResult result = RunOne(spec, index, options_);
        if (options_.on_run_done) {
          std::lock_guard<std::mutex> lock(progress_mu);
          options_.on_run_done(result);
        }
        return result;
      }));
    }
    // Collect in spec order; output is independent of completion order.
    for (std::future<RunResult>& future : futures) {
      results.push_back(future.get());
    }
  }
  return results;
}

}  // namespace vsched
