#include "src/runner/runner.h"

#include <chrono>
#include <exception>
#include <future>
#include <mutex>
#include <utility>

#include "src/runner/thread_pool.h"

namespace vsched {

namespace {

TimeNs WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {
  if (options_.max_attempts < 1) {
    options_.max_attempts = 1;
  }
}

RunResult Runner::RunOne(const RunSpec& spec, int index, int max_attempts) {
  RunResult result;
  result.spec = spec;
  result.index = index;
  while (result.attempts < max_attempts) {
    ++result.attempts;
    result.counters.Reset();
    PerfCounters::Scope counters_scope(&result.counters);
    TimeNs start = WallNowNs();
    try {
      result.metrics = ExecuteRun(spec);
      result.wall_ns = WallNowNs() - start;
      result.ok = true;
      result.error.clear();
      return result;
    } catch (const std::exception& e) {
      result.wall_ns = WallNowNs() - start;
      result.error = e.what();
    } catch (...) {
      result.wall_ns = WallNowNs() - start;
      result.error = "unknown exception";
    }
  }
  return result;
}

std::vector<RunResult> Runner::Run(const ExperimentSpec& experiment) {
  std::vector<RunResult> results;
  results.reserve(experiment.runs.size());

  if (options_.jobs == 1) {
    for (size_t i = 0; i < experiment.runs.size(); ++i) {
      results.push_back(RunOne(experiment.runs[i], static_cast<int>(i), options_.max_attempts));
      if (options_.on_run_done) {
        options_.on_run_done(results.back());
      }
    }
    return results;
  }

  std::mutex progress_mu;
  std::vector<std::future<RunResult>> futures;
  futures.reserve(experiment.runs.size());
  {
    ThreadPool pool(options_.jobs);
    for (size_t i = 0; i < experiment.runs.size(); ++i) {
      const RunSpec& spec = experiment.runs[i];
      int index = static_cast<int>(i);
      int max_attempts = options_.max_attempts;
      futures.push_back(pool.Submit([this, &spec, index, max_attempts, &progress_mu] {
        RunResult result = RunOne(spec, index, max_attempts);
        if (options_.on_run_done) {
          std::lock_guard<std::mutex> lock(progress_mu);
          options_.on_run_done(result);
        }
        return result;
      }));
    }
    // Collect in spec order; output is independent of completion order.
    for (std::future<RunResult>& future : futures) {
      results.push_back(future.get());
    }
  }
  return results;
}

}  // namespace vsched
