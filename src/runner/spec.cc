#include "src/runner/spec.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/base/check.h"
#include "src/cluster/fleet.h"
#include "src/cluster/fleet_spec.h"
#include "src/cluster/sharded_fleet.h"
#include "src/fault/fault_plan.h"
#include "src/runner/deception.h"
#include "src/runner/run_context.h"
#include "src/sim/simulation.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/throughput_app.h"

namespace vsched {

const char* FamilyName(ExperimentFamily family) {
  switch (family) {
    case ExperimentFamily::kOverallRcvm:
      return "fig18_rcvm";
    case ExperimentFamily::kOverallHpvm:
      return "fig19_hpvm";
    case ExperimentFamily::kVcpuLatency:
      return "fig02";
    case ExperimentFamily::kFleet:
      return "fleet";
    case ExperimentFamily::kAdversary:
      return "adversary";
  }
  return "unknown";
}

const std::vector<SchedulerConfig>& SweepSchedulerConfigs() {
  static const std::vector<SchedulerConfig> kConfigs = {
      {"cfs", VSchedOptions::Cfs()},
      {"enhanced", VSchedOptions::EnhancedCfs()},
      {"vsched", VSchedOptions::Full()},
  };
  return kConfigs;
}

VSchedOptions OptionsForConfig(const std::string& name) {
  for (const SchedulerConfig& config : SweepSchedulerConfigs()) {
    if (config.name == name) {
      return config.options;
    }
  }
  throw std::invalid_argument("unknown scheduler config: " + name);
}

std::string RunSpec::Id() const {
  std::string id = std::string(FamilyName(family)) + "/" + workload + "/" + config;
  if (family == ExperimentFamily::kVcpuLatency) {
    id += "/lat=" + std::to_string(vcpu_latency / kNsPerMs) + "ms";
    if (best_effort) {
      id += "+be";
    }
  }
  // The robust axis appears only when explicitly forced (adversary rows);
  // legacy sweeps never set it, so their ids — and resume checkpoints —
  // are unchanged.
  if (robust_override >= 0) {
    id += robust_override == 1 ? "/robust=on" : "/robust=off";
  }
  return id;
}

void ExperimentSpec::Filter(const std::string& substr) {
  if (substr.empty()) {
    return;
  }
  runs.erase(std::remove_if(runs.begin(), runs.end(),
                            [&](const RunSpec& run) {
                              return run.Id().find(substr) == std::string::npos;
                            }),
             runs.end());
}

ExperimentSpec OverallSweep(ExperimentFamily family, uint64_t seed, TimeNs warmup,
                            TimeNs measure) {
  VSCHED_CHECK(family == ExperimentFamily::kOverallRcvm ||
               family == ExperimentFamily::kOverallHpvm);
  if (seed == 0) {
    seed = family == ExperimentFamily::kOverallRcvm ? 0xF16'18 : 0xF16'19;
  }
  ExperimentSpec experiment;
  experiment.name = FamilyName(family);
  for (const std::string& name : Fig18WorkloadNames()) {
    for (const SchedulerConfig& config : SweepSchedulerConfigs()) {
      RunSpec run;
      run.family = family;
      run.workload = name;
      run.config = config.name;
      run.seed = seed;
      run.warmup = warmup;
      run.measure = measure;
      experiment.runs.push_back(std::move(run));
    }
  }
  return experiment;
}

ExperimentSpec VcpuLatencySweep(uint64_t base_seed, TimeNs warmup, TimeNs measure) {
  if (base_seed == 0) {
    base_seed = 0xF16'02;
  }
  ExperimentSpec experiment;
  experiment.name = FamilyName(ExperimentFamily::kVcpuLatency);
  for (bool best_effort : {false, true}) {
    for (const char* app : {"img-dnn", "silo", "specjbb"}) {
      for (TimeNs latency : {MsToNs(2), MsToNs(4), MsToNs(8), MsToNs(16)}) {
        RunSpec run;
        run.family = ExperimentFamily::kVcpuLatency;
        run.workload = app;
        run.config = "cfs";
        run.seed = base_seed + static_cast<uint64_t>(latency);
        run.warmup = warmup;
        run.measure = measure;
        run.vcpu_latency = latency;
        run.best_effort = best_effort;
        experiment.runs.push_back(std::move(run));
      }
    }
  }
  return experiment;
}

ExperimentSpec FleetSweep(const std::string& preset, uint64_t seed, TimeNs warmup,
                          TimeNs measure) {
  FleetSpec fleet_spec;
  if (!LookupFleetSpec(preset, &fleet_spec)) {
    throw std::invalid_argument("unknown fleet preset: " + preset);
  }
  if (seed == 0) {
    seed = 0xF1EE7;
  }
  ExperimentSpec experiment;
  experiment.name = std::string(FamilyName(ExperimentFamily::kFleet)) + "_" + preset;
  for (const SchedulerConfig& config : SweepSchedulerConfigs()) {
    if (config.name == "enhanced") {
      continue;
    }
    RunSpec run;
    run.family = ExperimentFamily::kFleet;
    run.workload = preset;
    run.config = config.name;
    run.seed = seed;
    run.warmup = warmup;
    run.measure = measure;
    experiment.runs.push_back(std::move(run));
  }
  return experiment;
}

void RunMetrics::Set(const std::string& key, double value) {
  for (auto& entry : values) {
    if (entry.first == key) {
      entry.second = value;
      return;
    }
  }
  values.emplace_back(key, value);
}

double RunMetrics::Get(const std::string& key, double fallback) const {
  for (const auto& entry : values) {
    if (entry.first == key) {
      return entry.second;
    }
  }
  return fallback;
}

namespace {

// Resolves the spec's fault plan into `plan`; throws on an unknown name.
// Returns false for a clean run (no plan, or the empty "none" plan), in
// which case the execution path is byte-identical to a pre-fault-layer
// build: no injector, no robust probing.
bool ResolveFaultPlan(const RunSpec& spec, FaultPlan* plan) {
  if (spec.fault_plan.empty()) {
    return false;
  }
  if (!LookupFaultPlan(spec.fault_plan, plan)) {
    throw std::invalid_argument("unknown fault plan: " + spec.fault_plan);
  }
  return !plan->Empty();
}

// Whether a single-VM run arms the robust layer: an explicit override wins;
// otherwise the legacy rule applies (any active chaos plan arms it).
bool ResolveRobust(const RunSpec& spec, bool chaos) {
  if (spec.robust_override >= 0) {
    return spec.robust_override == 1;
  }
  return chaos;
}

// Arms the simulated-event watchdog and (for an active plan) the injector.
void ApplyFaults(const RunSpec& spec, bool chaos, const FaultPlan& plan, RunContext& ctx) {
  if (spec.event_budget > 0) {
    ctx.sim->SetEventBudget(spec.event_budget);
  }
  if (!chaos) {
    return;
  }
  ctx.fault =
      std::make_unique<FaultInjector>(ctx.sim.get(), ctx.machine.get(), ctx.vm.get(), plan);
  ctx.kernel().set_fault_injector(ctx.fault.get());
  ctx.fault->Start();
}

// Stops the injector and appends the fault/degradation tallies. Clean runs
// (no injector) add no keys, keeping their rows byte-identical.
void AppendFaultMetrics(RunContext& ctx, RunMetrics& metrics) {
  if (ctx.fault == nullptr) {
    return;
  }
  ctx.fault->Stop();
  const FaultStats& st = ctx.fault->stats();
  metrics.Set("fault_applied", static_cast<double>(st.total_applied()));
  metrics.Set("fault_steal_bursts", static_cast<double>(st.steal_bursts));
  metrics.Set("fault_storms", static_cast<double>(st.stressor_storms));
  metrics.Set("fault_droops", static_cast<double>(st.freq_droops));
  metrics.Set("fault_bw_jitters", static_cast<double>(st.bandwidth_jitters));
  metrics.Set("fault_samples_dropped", static_cast<double>(st.samples_dropped));
  metrics.Set("fault_samples_corrupted", static_cast<double>(st.samples_corrupted));
  const DegradationTracker& deg = ctx.vsched->degradation();
  TimeNs now = ctx.sim->now();
  metrics.Set("degraded_transitions", static_cast<double>(deg.transitions()));
  metrics.Set("degraded_capacity_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kCapacity, now)) / 1e6);
  metrics.Set("degraded_topology_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kTopology, now)) / 1e6);
  metrics.Set("degraded_placement_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kPlacement, now)) / 1e6);
  metrics.Set("degraded_harvest_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kHarvest, now)) / 1e6);
  metrics.Set("degraded_bans_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kBans, now)) / 1e6);
}

void FillMetrics(const RunSpec& spec, const MeasuredRun& run, RunMetrics& metrics) {
  metrics.Set("perf", Performance(spec.workload, run.result));
  metrics.Set("throughput", run.result.throughput);
  metrics.Set("p50_ns", run.result.p50_ns);
  metrics.Set("p95_ns", run.result.p95_ns);
  metrics.Set("p99_ns", run.result.p99_ns);
  metrics.Set("mean_ns", run.result.mean_ns);
  metrics.Set("completed", static_cast<double>(run.result.completed));
  metrics.Set("work_done", static_cast<double>(run.work_done));
  metrics.Set("migrations", static_cast<double>(run.migrations));
}

// Figure 18/19 protocol (previously bench/fig18_common.h): the reference VM
// under one scheduler configuration, one workload at threads == vCPUs.
RunMetrics ExecuteOverallRun(const RunSpec& spec) {
  bool rcvm = spec.family == ExperimentFamily::kOverallRcvm;
  TopologySpec host = rcvm ? RcvmHostTopology() : HpvmHostTopology();
  VmSpec vm_spec = rcvm ? MakeRcvmSpec() : MakeHpvmSpec();
  vm_spec.mutable_guest_params().tickless = spec.tickless;
  HostSchedParams host_params;
  host_params.tickless = spec.tickless;
  int threads = static_cast<int>(vm_spec.vcpus.size());
  FaultPlan plan;
  bool chaos = ResolveFaultPlan(spec, &plan);
  VSchedOptions options = OptionsForConfig(spec.config);
  if (ResolveRobust(spec, chaos)) {
    options.robust.enabled = true;  // chaos runs arm the degradation layer
  }
  RunContext ctx = MakeRun(host, std::move(vm_spec), options, spec.seed, host_params);
  ApplyFaults(spec, chaos, plan, ctx);
  if (rcvm) {
    ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  } else {
    ShapeHpvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  }
  MeasuredRun run;
  if (MetricFor(spec.workload) == MetricKind::kP95Latency) {
    // Low offered load: tail latency, not queueing for workers, is the
    // object of measurement (§5.1 reduces arrival rates similarly).
    LatencyApp app(&ctx.kernel(), LatencyParamsFor(spec.workload, threads, 0.05));
    run = RunWorkloadObj(ctx, &app, spec.warmup, spec.measure);
  } else {
    run = RunWorkload(ctx, spec.workload, threads, spec.warmup, spec.measure);
  }
  RunMetrics metrics;
  FillMetrics(spec, run, metrics);
  AppendFaultMetrics(ctx, metrics);
  return metrics;
}

// Figure 2 protocol (previously inline in bench_fig02_vcpu_latency): a flat
// 32-vCPU VM time-sharing every core with a stressor; the host granularity
// knobs shape how long a runnable vCPU waits for the competitor's slice —
// i.e. the vCPU latency — without changing capacity.
RunMetrics ExecuteVcpuLatencyRun(const RunSpec& spec) {
  const int kVcpus = 32;
  VmSpec vm_spec = MakeSimpleVmSpec("vm", kVcpus);
  vm_spec.mutable_guest_params().tickless = spec.tickless;
  HostSchedParams host;
  host.min_granularity = spec.vcpu_latency;
  host.wakeup_granularity = spec.vcpu_latency;
  host.tickless = spec.tickless;
  FaultPlan plan;
  bool chaos = ResolveFaultPlan(spec, &plan);
  VSchedOptions options = OptionsForConfig(spec.config);
  if (ResolveRobust(spec, chaos)) {
    options.robust.enabled = true;
  }
  RunContext ctx = MakeRun(FlatHost(kVcpus), std::move(vm_spec), options, spec.seed, host);
  ApplyFaults(spec, chaos, plan, ctx);
  for (int c = 0; c < kVcpus; ++c) {
    ctx.AddStressor(c);
  }
  std::unique_ptr<TaskParallelApp> background;
  if (spec.best_effort) {
    TaskParallelParams bp;
    bp.name = "best-effort";
    bp.threads = kVcpus;
    bp.chunk_mean = MsToNs(1);
    bp.policy = TaskPolicy::kIdle;
    background = std::make_unique<TaskParallelApp>(&ctx.kernel(), bp);
    background->Start();
  }
  MeasuredRun run = RunWorkload(ctx, spec.workload, /*threads=*/8, spec.warmup, spec.measure);
  if (background != nullptr) {
    background->Stop();
  }
  RunMetrics metrics;
  FillMetrics(spec, run, metrics);
  AppendFaultMetrics(ctx, metrics);
  return metrics;
}

// Cluster-scale fleet protocol (src/cluster/): thousands of hosts under one
// Simulation; spec.workload names a FleetSpec preset. The whole horizon is
// measured — a fleet ramps from empty (Poisson arrivals), so there is no
// steady state to warm into, and per-tenant distributions must cover each
// tenant's whole life to make SLO-violation counts meaningful.
RunMetrics ExecuteFleetRun(const RunSpec& spec) {
  FleetSpec fleet_spec;
  if (!LookupFleetSpec(spec.workload, &fleet_spec)) {
    throw std::invalid_argument("unknown fleet preset: " + spec.workload);
  }
  FaultPlan plan;
  bool chaos = ResolveFaultPlan(spec, &plan);
  TimeNs horizon = spec.warmup + spec.measure;
  // Fleets historically never auto-arm robust (the guest stack is the
  // head-to-head axis); only an explicit override changes that, so legacy
  // fleet rows stay byte-identical.
  VSchedOptions guest_options = OptionsForConfig(spec.config);
  if (spec.robust_override == 1) {
    guest_options.robust.enabled = true;
  }

  // spec.shards selects the execution engine, not the experiment: the
  // sharded PDES engine's totals are byte-identical for every shards >= 1,
  // so rows only record the engine family via their values, never the count.
  FleetTotals sharded_totals;
  const FleetTotals* totals = nullptr;
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Fleet> fleet;
  std::unique_ptr<ShardedFleet> sharded;
  if (spec.shards >= 1) {
    sharded = std::make_unique<ShardedFleet>(fleet_spec, spec.seed, guest_options,
                                             spec.shards, chaos ? &plan : nullptr, spec.tickless);
    if (spec.event_budget > 0) {
      sharded->SetEventBudgetPerCell(spec.event_budget);
    }
    sharded->Run(horizon);
    sharded_totals = sharded->totals();
    totals = &sharded_totals;
  } else {
    sim = std::make_unique<Simulation>(spec.seed);
    if (spec.event_budget > 0) {
      sim->SetEventBudget(spec.event_budget);
    }
    fleet = std::make_unique<Fleet>(sim.get(), fleet_spec, guest_options,
                                    chaos ? &plan : nullptr, spec.tickless);
    fleet->Start();
    sim->RunFor(horizon);
    fleet->Finish();
    totals = &fleet->totals();
  }

  const FleetTotals& t = *totals;
  RunMetrics metrics;
  metrics.Set("completed", static_cast<double>(t.requests));
  metrics.Set("throughput",
              static_cast<double>(t.requests) / (static_cast<double>(horizon) / 1e9));
  metrics.Set("p50_ns", t.fleet_p50_ns);
  metrics.Set("p95_ns", t.fleet_p95_ns);
  metrics.Set("p99_ns", t.fleet_p99_ns);
  metrics.Set("mean_ns", t.fleet_mean_ns);
  metrics.Set("slo_violations", static_cast<double>(t.slo_violations));
  metrics.Set("slo_violation_frac",
              t.requests > 0 ? static_cast<double>(t.slo_violations) /
                                   static_cast<double>(t.requests)
                             : 0);
  metrics.Set("tenant_p99_p50_ns", t.tenant_p99_p50_ns);
  metrics.Set("tenant_p99_p95_ns", t.tenant_p99_p95_ns);
  metrics.Set("tenant_p99_max_ns", t.tenant_p99_max_ns);
  metrics.Set("batch_chunks", static_cast<double>(t.batch_chunks));
  metrics.Set("vms_placed", static_cast<double>(t.vms_placed));
  metrics.Set("vms_rejected", static_cast<double>(t.vms_rejected));
  metrics.Set("vms_departed", static_cast<double>(t.vms_departed));
  metrics.Set("migrations", static_cast<double>(t.migrations));
  metrics.Set("hosts_booted", static_cast<double>(t.hosts_booted));
  metrics.Set("hosts_shutdown", static_cast<double>(t.hosts_shutdown));
  metrics.Set("hosts_on_at_end", static_cast<double>(t.hosts_on_at_end));
  metrics.Set("host_util_mean", t.host_util_mean);
  metrics.Set("energy_j", t.energy_j);
  if (chaos) {
    metrics.Set("fault_applied", static_cast<double>(t.fault_applied));
    // Fleet-level detection/containment aggregates; keyed only under an
    // active plan so clean fleet rows keep their pre-adversary schema.
    metrics.Set("adversary_activations", static_cast<double>(t.adversary_activations));
    metrics.Set("degraded_tenants", static_cast<double>(t.degraded_tenants));
    metrics.Set("pessimistic_publishes", static_cast<double>(t.pessimistic_publishes));
    metrics.Set("quarantine_events", static_cast<double>(t.quarantine_events));
  }
  return metrics;
}

// Adversarial co-tenant protocol (src/adversary/, docs/ROBUSTNESS.md): a
// reference VM runs a steady throughput victim while a canned
// scheduler-attack plan drives RT co-tenants on its hardware threads;
// host-side entity accounting over the measurement window is the ground
// truth the deception matrix scores each estimator against.
// spec.workload names the attack ("steal" | "evade" | "burst" | "all");
// "fleet-<attack>" instead runs the tiny fleet preset with one adversarial
// tenant per host (src/cluster/ FleetInjectorHost).
RunMetrics ExecuteAdversaryRun(const RunSpec& spec) {
  std::string attack = spec.workload;
  bool fleet_variant = attack.rfind("fleet-", 0) == 0;
  if (fleet_variant) {
    attack = attack.substr(6);
  }
  // "none" is the calibration row: same protocol, no attacker — the matrix
  // baseline every dx_* deception delta is read against.
  if (attack != "steal" && attack != "evade" && attack != "burst" && attack != "all" &&
      attack != "none") {
    throw std::invalid_argument("unknown adversary attack: " + spec.workload);
  }
  if (fleet_variant) {
    RunSpec fleet = spec;
    fleet.family = ExperimentFamily::kFleet;
    fleet.workload = "tiny";
    return ExecuteFleetRun(fleet);
  }

  // 2 sockets x 2 cores x 2 SMT threads: every vtop relation class exists,
  // so topology deception is scoreable. 8 vCPUs pinned 1:1 — no stacking.
  const int kVcpus = 8;
  TopologySpec host = FlatHost(/*cores=*/2, /*threads_per_core=*/2, /*sockets=*/2);
  VmSpec vm_spec = MakeSimpleVmSpec("vm", kVcpus);
  vm_spec.mutable_guest_params().tickless = spec.tickless;
  HostSchedParams host_params;
  host_params.tickless = spec.tickless;
  FaultPlan plan;
  bool chaos = ResolveFaultPlan(spec, &plan);
  VSchedOptions options = OptionsForConfig(spec.config);
  options.robust.enabled = ResolveRobust(spec, chaos);
  // Fast probe cadence so a short horizon spans many windows. The vcap grid
  // (10 ms window every 100 ms from t=0) is exactly the schedule the canned
  // probe-evader's quiet phase is tuned to cover — the attack only works
  // against a predictable grid, which is what the robust layer's window
  // jitter then takes away.
  options.vcap.sampling_period = MsToNs(10);
  options.vcap.light_interval = MsToNs(100);
  options.vcap.heavy_every = 4;
  options.vact.update_interval = MsToNs(100);
  options.vtop.probe_interval = MsToNs(500);
  // A laxer straggler bar than the paper's 10x: the probe-evader starves its
  // victims ~5x below the mean, which real operators would want banned —
  // whether rwc sees it is exactly the dx_rwc vs dx_gt_stragglers cell.
  options.rwc.straggler_ratio = 0.5;
  RunContext ctx = MakeRun(host, std::move(vm_spec), options, spec.seed, host_params);
  ApplyFaults(spec, chaos, plan, ctx);

  // Victim: a steady fine-grained throughput app on every vCPU, so each
  // vCPU has continuous demand and delivered-fraction ground truth is
  // well-defined for the whole window.
  auto workload = MakeWorkload(&ctx.kernel(), "sysbench", kVcpus);
  workload->Start();
  ctx.sim->RunFor(spec.warmup);
  workload->ResetStats();
  GroundTruthSnapshot before = CaptureGroundTruth(*ctx.vm, ctx.sim->now());
  Work work_before = TotalWorkDone(ctx.kernel());
  uint64_t migr_before = ctx.kernel().counters().migrations.value() +
                         ctx.kernel().counters().active_migrations.value();
  ctx.sim->RunFor(spec.measure);
  GroundTruthSnapshot after = CaptureGroundTruth(*ctx.vm, ctx.sim->now());

  RunMetrics metrics;
  WorkloadResult result = workload->Result();
  metrics.Set("perf", result.throughput);
  metrics.Set("throughput", result.throughput);
  metrics.Set("completed", static_cast<double>(result.completed));
  metrics.Set("work_done",
              static_cast<double>(TotalWorkDone(ctx.kernel()) - work_before));
  metrics.Set("migrations",
              static_cast<double>(ctx.kernel().counters().migrations.value() +
                                  ctx.kernel().counters().active_migrations.value() -
                                  migr_before));
  workload->Stop();
  uint64_t activations = ctx.fault != nullptr ? ctx.fault->adversary_activations() : 0;
  AppendDeceptionMetrics(before, after, *ctx.vm, *ctx.machine, *ctx.vsched, activations,
                         metrics);
  AppendFaultMetrics(ctx, metrics);
  return metrics;
}

}  // namespace

ExperimentSpec AdversarySweep(uint64_t seed, TimeNs warmup, TimeNs measure) {
  if (seed == 0) {
    seed = 0xAD5E7;
  }
  ExperimentSpec experiment;
  experiment.name = FamilyName(ExperimentFamily::kAdversary);
  const char* kAttacks[] = {"none", "steal", "evade", "burst"};
  for (bool fleet : {false, true}) {
    for (const char* attack : kAttacks) {
      for (int robust : {0, 1}) {
        RunSpec run;
        run.family = ExperimentFamily::kAdversary;
        run.workload = fleet ? std::string("fleet-") + attack : attack;
        run.config = "vsched";
        run.seed = seed;
        run.warmup = warmup;
        run.measure = measure;
        run.fault_plan = std::string(attack) == "none" ? std::string("none")
                                                       : std::string("adversary-") + attack;
        run.robust_override = robust;
        experiment.runs.push_back(std::move(run));
      }
    }
  }
  return experiment;
}

RunMetrics ExecuteRun(const RunSpec& spec) {
  // Bad names in hand-authored specs should surface as a failed RunResult,
  // not as the VSCHED_CHECK abort MakeWorkload would hit mid-simulation.
  // Fleet runs validate spec.workload against the preset registry instead;
  // adversary runs validate it against the attack names.
  if (spec.family != ExperimentFamily::kFleet &&
      spec.family != ExperimentFamily::kAdversary) {
    bool known = false;
    for (const CatalogEntry& entry : Catalog()) {
      if (entry.name == spec.workload) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument("unknown workload: " + spec.workload);
    }
  }
  switch (spec.family) {
    case ExperimentFamily::kOverallRcvm:
    case ExperimentFamily::kOverallHpvm:
      return ExecuteOverallRun(spec);
    case ExperimentFamily::kVcpuLatency:
      return ExecuteVcpuLatencyRun(spec);
    case ExperimentFamily::kFleet:
      return ExecuteFleetRun(spec);
    case ExperimentFamily::kAdversary:
      return ExecuteAdversaryRun(spec);
  }
  throw std::invalid_argument("unknown experiment family");
}

}  // namespace vsched
