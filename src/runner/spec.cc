#include "src/runner/spec.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/base/check.h"
#include "src/cluster/fleet.h"
#include "src/cluster/fleet_spec.h"
#include "src/cluster/sharded_fleet.h"
#include "src/fault/fault_plan.h"
#include "src/runner/run_context.h"
#include "src/sim/simulation.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/throughput_app.h"

namespace vsched {

const char* FamilyName(ExperimentFamily family) {
  switch (family) {
    case ExperimentFamily::kOverallRcvm:
      return "fig18_rcvm";
    case ExperimentFamily::kOverallHpvm:
      return "fig19_hpvm";
    case ExperimentFamily::kVcpuLatency:
      return "fig02";
    case ExperimentFamily::kFleet:
      return "fleet";
  }
  return "unknown";
}

const std::vector<SchedulerConfig>& SweepSchedulerConfigs() {
  static const std::vector<SchedulerConfig> kConfigs = {
      {"cfs", VSchedOptions::Cfs()},
      {"enhanced", VSchedOptions::EnhancedCfs()},
      {"vsched", VSchedOptions::Full()},
  };
  return kConfigs;
}

VSchedOptions OptionsForConfig(const std::string& name) {
  for (const SchedulerConfig& config : SweepSchedulerConfigs()) {
    if (config.name == name) {
      return config.options;
    }
  }
  throw std::invalid_argument("unknown scheduler config: " + name);
}

std::string RunSpec::Id() const {
  std::string id = std::string(FamilyName(family)) + "/" + workload + "/" + config;
  if (family == ExperimentFamily::kVcpuLatency) {
    id += "/lat=" + std::to_string(vcpu_latency / kNsPerMs) + "ms";
    if (best_effort) {
      id += "+be";
    }
  }
  return id;
}

void ExperimentSpec::Filter(const std::string& substr) {
  if (substr.empty()) {
    return;
  }
  runs.erase(std::remove_if(runs.begin(), runs.end(),
                            [&](const RunSpec& run) {
                              return run.Id().find(substr) == std::string::npos;
                            }),
             runs.end());
}

ExperimentSpec OverallSweep(ExperimentFamily family, uint64_t seed, TimeNs warmup,
                            TimeNs measure) {
  VSCHED_CHECK(family == ExperimentFamily::kOverallRcvm ||
               family == ExperimentFamily::kOverallHpvm);
  if (seed == 0) {
    seed = family == ExperimentFamily::kOverallRcvm ? 0xF16'18 : 0xF16'19;
  }
  ExperimentSpec experiment;
  experiment.name = FamilyName(family);
  for (const std::string& name : Fig18WorkloadNames()) {
    for (const SchedulerConfig& config : SweepSchedulerConfigs()) {
      RunSpec run;
      run.family = family;
      run.workload = name;
      run.config = config.name;
      run.seed = seed;
      run.warmup = warmup;
      run.measure = measure;
      experiment.runs.push_back(std::move(run));
    }
  }
  return experiment;
}

ExperimentSpec VcpuLatencySweep(uint64_t base_seed, TimeNs warmup, TimeNs measure) {
  if (base_seed == 0) {
    base_seed = 0xF16'02;
  }
  ExperimentSpec experiment;
  experiment.name = FamilyName(ExperimentFamily::kVcpuLatency);
  for (bool best_effort : {false, true}) {
    for (const char* app : {"img-dnn", "silo", "specjbb"}) {
      for (TimeNs latency : {MsToNs(2), MsToNs(4), MsToNs(8), MsToNs(16)}) {
        RunSpec run;
        run.family = ExperimentFamily::kVcpuLatency;
        run.workload = app;
        run.config = "cfs";
        run.seed = base_seed + static_cast<uint64_t>(latency);
        run.warmup = warmup;
        run.measure = measure;
        run.vcpu_latency = latency;
        run.best_effort = best_effort;
        experiment.runs.push_back(std::move(run));
      }
    }
  }
  return experiment;
}

ExperimentSpec FleetSweep(const std::string& preset, uint64_t seed, TimeNs warmup,
                          TimeNs measure) {
  FleetSpec fleet_spec;
  if (!LookupFleetSpec(preset, &fleet_spec)) {
    throw std::invalid_argument("unknown fleet preset: " + preset);
  }
  if (seed == 0) {
    seed = 0xF1EE7;
  }
  ExperimentSpec experiment;
  experiment.name = std::string(FamilyName(ExperimentFamily::kFleet)) + "_" + preset;
  for (const SchedulerConfig& config : SweepSchedulerConfigs()) {
    if (config.name == "enhanced") {
      continue;
    }
    RunSpec run;
    run.family = ExperimentFamily::kFleet;
    run.workload = preset;
    run.config = config.name;
    run.seed = seed;
    run.warmup = warmup;
    run.measure = measure;
    experiment.runs.push_back(std::move(run));
  }
  return experiment;
}

void RunMetrics::Set(const std::string& key, double value) {
  for (auto& entry : values) {
    if (entry.first == key) {
      entry.second = value;
      return;
    }
  }
  values.emplace_back(key, value);
}

double RunMetrics::Get(const std::string& key, double fallback) const {
  for (const auto& entry : values) {
    if (entry.first == key) {
      return entry.second;
    }
  }
  return fallback;
}

namespace {

// Resolves the spec's fault plan into `plan`; throws on an unknown name.
// Returns false for a clean run (no plan, or the empty "none" plan), in
// which case the execution path is byte-identical to a pre-fault-layer
// build: no injector, no robust probing.
bool ResolveFaultPlan(const RunSpec& spec, FaultPlan* plan) {
  if (spec.fault_plan.empty()) {
    return false;
  }
  if (!LookupFaultPlan(spec.fault_plan, plan)) {
    throw std::invalid_argument("unknown fault plan: " + spec.fault_plan);
  }
  return !plan->Empty();
}

// Arms the simulated-event watchdog and (for an active plan) the injector.
void ApplyFaults(const RunSpec& spec, bool chaos, const FaultPlan& plan, RunContext& ctx) {
  if (spec.event_budget > 0) {
    ctx.sim->SetEventBudget(spec.event_budget);
  }
  if (!chaos) {
    return;
  }
  ctx.fault =
      std::make_unique<FaultInjector>(ctx.sim.get(), ctx.machine.get(), ctx.vm.get(), plan);
  ctx.kernel().set_fault_injector(ctx.fault.get());
  ctx.fault->Start();
}

// Stops the injector and appends the fault/degradation tallies. Clean runs
// (no injector) add no keys, keeping their rows byte-identical.
void AppendFaultMetrics(RunContext& ctx, RunMetrics& metrics) {
  if (ctx.fault == nullptr) {
    return;
  }
  ctx.fault->Stop();
  const FaultStats& st = ctx.fault->stats();
  metrics.Set("fault_applied", static_cast<double>(st.total_applied()));
  metrics.Set("fault_steal_bursts", static_cast<double>(st.steal_bursts));
  metrics.Set("fault_storms", static_cast<double>(st.stressor_storms));
  metrics.Set("fault_droops", static_cast<double>(st.freq_droops));
  metrics.Set("fault_bw_jitters", static_cast<double>(st.bandwidth_jitters));
  metrics.Set("fault_samples_dropped", static_cast<double>(st.samples_dropped));
  metrics.Set("fault_samples_corrupted", static_cast<double>(st.samples_corrupted));
  const DegradationTracker& deg = ctx.vsched->degradation();
  TimeNs now = ctx.sim->now();
  metrics.Set("degraded_transitions", static_cast<double>(deg.transitions()));
  metrics.Set("degraded_capacity_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kCapacity, now)) / 1e6);
  metrics.Set("degraded_topology_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kTopology, now)) / 1e6);
  metrics.Set("degraded_placement_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kPlacement, now)) / 1e6);
  metrics.Set("degraded_harvest_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kHarvest, now)) / 1e6);
  metrics.Set("degraded_bans_ms",
              static_cast<double>(deg.TimeDegraded(DegradedComponent::kBans, now)) / 1e6);
}

void FillMetrics(const RunSpec& spec, const MeasuredRun& run, RunMetrics& metrics) {
  metrics.Set("perf", Performance(spec.workload, run.result));
  metrics.Set("throughput", run.result.throughput);
  metrics.Set("p50_ns", run.result.p50_ns);
  metrics.Set("p95_ns", run.result.p95_ns);
  metrics.Set("p99_ns", run.result.p99_ns);
  metrics.Set("mean_ns", run.result.mean_ns);
  metrics.Set("completed", static_cast<double>(run.result.completed));
  metrics.Set("work_done", static_cast<double>(run.work_done));
  metrics.Set("migrations", static_cast<double>(run.migrations));
}

// Figure 18/19 protocol (previously bench/fig18_common.h): the reference VM
// under one scheduler configuration, one workload at threads == vCPUs.
RunMetrics ExecuteOverallRun(const RunSpec& spec) {
  bool rcvm = spec.family == ExperimentFamily::kOverallRcvm;
  TopologySpec host = rcvm ? RcvmHostTopology() : HpvmHostTopology();
  VmSpec vm_spec = rcvm ? MakeRcvmSpec() : MakeHpvmSpec();
  vm_spec.mutable_guest_params().tickless = spec.tickless;
  HostSchedParams host_params;
  host_params.tickless = spec.tickless;
  int threads = static_cast<int>(vm_spec.vcpus.size());
  FaultPlan plan;
  bool chaos = ResolveFaultPlan(spec, &plan);
  VSchedOptions options = OptionsForConfig(spec.config);
  if (chaos) {
    options.robust.enabled = true;  // chaos runs arm the degradation layer
  }
  RunContext ctx = MakeRun(host, std::move(vm_spec), options, spec.seed, host_params);
  ApplyFaults(spec, chaos, plan, ctx);
  if (rcvm) {
    ShapeRcvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  } else {
    ShapeHpvmHost(ctx.sim.get(), ctx.machine.get(), ctx.stressors);
  }
  MeasuredRun run;
  if (MetricFor(spec.workload) == MetricKind::kP95Latency) {
    // Low offered load: tail latency, not queueing for workers, is the
    // object of measurement (§5.1 reduces arrival rates similarly).
    LatencyApp app(&ctx.kernel(), LatencyParamsFor(spec.workload, threads, 0.05));
    run = RunWorkloadObj(ctx, &app, spec.warmup, spec.measure);
  } else {
    run = RunWorkload(ctx, spec.workload, threads, spec.warmup, spec.measure);
  }
  RunMetrics metrics;
  FillMetrics(spec, run, metrics);
  AppendFaultMetrics(ctx, metrics);
  return metrics;
}

// Figure 2 protocol (previously inline in bench_fig02_vcpu_latency): a flat
// 32-vCPU VM time-sharing every core with a stressor; the host granularity
// knobs shape how long a runnable vCPU waits for the competitor's slice —
// i.e. the vCPU latency — without changing capacity.
RunMetrics ExecuteVcpuLatencyRun(const RunSpec& spec) {
  const int kVcpus = 32;
  VmSpec vm_spec = MakeSimpleVmSpec("vm", kVcpus);
  vm_spec.mutable_guest_params().tickless = spec.tickless;
  HostSchedParams host;
  host.min_granularity = spec.vcpu_latency;
  host.wakeup_granularity = spec.vcpu_latency;
  host.tickless = spec.tickless;
  FaultPlan plan;
  bool chaos = ResolveFaultPlan(spec, &plan);
  VSchedOptions options = OptionsForConfig(spec.config);
  if (chaos) {
    options.robust.enabled = true;
  }
  RunContext ctx = MakeRun(FlatHost(kVcpus), std::move(vm_spec), options, spec.seed, host);
  ApplyFaults(spec, chaos, plan, ctx);
  for (int c = 0; c < kVcpus; ++c) {
    ctx.AddStressor(c);
  }
  std::unique_ptr<TaskParallelApp> background;
  if (spec.best_effort) {
    TaskParallelParams bp;
    bp.name = "best-effort";
    bp.threads = kVcpus;
    bp.chunk_mean = MsToNs(1);
    bp.policy = TaskPolicy::kIdle;
    background = std::make_unique<TaskParallelApp>(&ctx.kernel(), bp);
    background->Start();
  }
  MeasuredRun run = RunWorkload(ctx, spec.workload, /*threads=*/8, spec.warmup, spec.measure);
  if (background != nullptr) {
    background->Stop();
  }
  RunMetrics metrics;
  FillMetrics(spec, run, metrics);
  AppendFaultMetrics(ctx, metrics);
  return metrics;
}

// Cluster-scale fleet protocol (src/cluster/): thousands of hosts under one
// Simulation; spec.workload names a FleetSpec preset. The whole horizon is
// measured — a fleet ramps from empty (Poisson arrivals), so there is no
// steady state to warm into, and per-tenant distributions must cover each
// tenant's whole life to make SLO-violation counts meaningful.
RunMetrics ExecuteFleetRun(const RunSpec& spec) {
  FleetSpec fleet_spec;
  if (!LookupFleetSpec(spec.workload, &fleet_spec)) {
    throw std::invalid_argument("unknown fleet preset: " + spec.workload);
  }
  FaultPlan plan;
  bool chaos = ResolveFaultPlan(spec, &plan);
  TimeNs horizon = spec.warmup + spec.measure;

  // spec.shards selects the execution engine, not the experiment: the
  // sharded PDES engine's totals are byte-identical for every shards >= 1,
  // so rows only record the engine family via their values, never the count.
  FleetTotals sharded_totals;
  const FleetTotals* totals = nullptr;
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Fleet> fleet;
  std::unique_ptr<ShardedFleet> sharded;
  if (spec.shards >= 1) {
    sharded = std::make_unique<ShardedFleet>(fleet_spec, spec.seed, OptionsForConfig(spec.config),
                                             spec.shards, chaos ? &plan : nullptr, spec.tickless);
    if (spec.event_budget > 0) {
      sharded->SetEventBudgetPerCell(spec.event_budget);
    }
    sharded->Run(horizon);
    sharded_totals = sharded->totals();
    totals = &sharded_totals;
  } else {
    sim = std::make_unique<Simulation>(spec.seed);
    if (spec.event_budget > 0) {
      sim->SetEventBudget(spec.event_budget);
    }
    fleet = std::make_unique<Fleet>(sim.get(), fleet_spec, OptionsForConfig(spec.config),
                                    chaos ? &plan : nullptr, spec.tickless);
    fleet->Start();
    sim->RunFor(horizon);
    fleet->Finish();
    totals = &fleet->totals();
  }

  const FleetTotals& t = *totals;
  RunMetrics metrics;
  metrics.Set("completed", static_cast<double>(t.requests));
  metrics.Set("throughput",
              static_cast<double>(t.requests) / (static_cast<double>(horizon) / 1e9));
  metrics.Set("p50_ns", t.fleet_p50_ns);
  metrics.Set("p95_ns", t.fleet_p95_ns);
  metrics.Set("p99_ns", t.fleet_p99_ns);
  metrics.Set("mean_ns", t.fleet_mean_ns);
  metrics.Set("slo_violations", static_cast<double>(t.slo_violations));
  metrics.Set("slo_violation_frac",
              t.requests > 0 ? static_cast<double>(t.slo_violations) /
                                   static_cast<double>(t.requests)
                             : 0);
  metrics.Set("tenant_p99_p50_ns", t.tenant_p99_p50_ns);
  metrics.Set("tenant_p99_p95_ns", t.tenant_p99_p95_ns);
  metrics.Set("tenant_p99_max_ns", t.tenant_p99_max_ns);
  metrics.Set("batch_chunks", static_cast<double>(t.batch_chunks));
  metrics.Set("vms_placed", static_cast<double>(t.vms_placed));
  metrics.Set("vms_rejected", static_cast<double>(t.vms_rejected));
  metrics.Set("vms_departed", static_cast<double>(t.vms_departed));
  metrics.Set("migrations", static_cast<double>(t.migrations));
  metrics.Set("hosts_booted", static_cast<double>(t.hosts_booted));
  metrics.Set("hosts_shutdown", static_cast<double>(t.hosts_shutdown));
  metrics.Set("hosts_on_at_end", static_cast<double>(t.hosts_on_at_end));
  metrics.Set("host_util_mean", t.host_util_mean);
  metrics.Set("energy_j", t.energy_j);
  if (chaos) {
    metrics.Set("fault_applied", static_cast<double>(t.fault_applied));
  }
  return metrics;
}

}  // namespace

RunMetrics ExecuteRun(const RunSpec& spec) {
  // Bad names in hand-authored specs should surface as a failed RunResult,
  // not as the VSCHED_CHECK abort MakeWorkload would hit mid-simulation.
  // Fleet runs validate spec.workload against the preset registry instead.
  if (spec.family != ExperimentFamily::kFleet) {
    bool known = false;
    for (const CatalogEntry& entry : Catalog()) {
      if (entry.name == spec.workload) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument("unknown workload: " + spec.workload);
    }
  }
  switch (spec.family) {
    case ExperimentFamily::kOverallRcvm:
    case ExperimentFamily::kOverallHpvm:
      return ExecuteOverallRun(spec);
    case ExperimentFamily::kVcpuLatency:
      return ExecuteVcpuLatencyRun(spec);
    case ExperimentFamily::kFleet:
      return ExecuteFleetRun(spec);
  }
  throw std::invalid_argument("unknown experiment family");
}

}  // namespace vsched
