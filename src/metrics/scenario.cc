#include "src/metrics/scenario.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "src/base/check.h"
#include "src/workloads/catalog.h"

namespace vsched {
namespace {

// Splits "key=value" tokens; bare tokens map to "true".
std::map<std::string, std::string> ParseArgs(std::istringstream& in) {
  std::map<std::string, std::string> args;
  std::string token;
  while (in >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      args[token] = "true";
    } else {
      args[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return args;
}

bool ParseInt(const std::string& text, int* out) {
  try {
    size_t pos = 0;
    *out = std::stoi(text, &pos);
    return pos == text.size();
  } catch (...) {
    return false;
  }
}

bool ParseDouble(const std::string& text, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(text, &pos);
    return pos == text.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

bool ScenarioRunner::ParseDuration(const std::string& text, TimeNs* out) {
  double value = 0;
  size_t pos = 0;
  try {
    value = std::stod(text, &pos);
  } catch (...) {
    return false;
  }
  std::string suffix = text.substr(pos);
  double scale;
  if (suffix == "ns" || suffix.empty()) {
    scale = 1;
  } else if (suffix == "us") {
    scale = 1e3;
  } else if (suffix == "ms") {
    scale = 1e6;
  } else if (suffix == "s") {
    scale = 1e9;
  } else {
    return false;
  }
  *out = static_cast<TimeNs>(value * scale);
  return true;
}

ScenarioRunner::ScenarioRunner(uint64_t seed) : seed_(seed) {}

ScenarioRunner::~ScenarioRunner() {
  // Destruction order: workloads → vsched → vm → stressors → machine → sim.
  for (auto& w : workloads_) {
    w->Stop();
  }
  workloads_.clear();
  vsched_.reset();
  fault_.reset();
  vm_.reset();
  stressors_.clear();
  machine_.reset();
  sim_.reset();
}

bool ScenarioRunner::Fail(const std::string& message) {
  error_ = message;
  return false;
}

bool ScenarioRunner::RunScript(const std::string& script) {
  std::istringstream lines(script);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (!RunLine(line)) {
      error_ = "line " + std::to_string(line_no) + ": " + error_;
      return false;
    }
  }
  return true;
}

bool ScenarioRunner::RunLine(const std::string& line) {
  std::string stripped = line.substr(0, line.find('#'));
  std::istringstream in(stripped);
  std::string directive;
  if (!(in >> directive)) {
    return true;  // blank / comment
  }
  auto args = ParseArgs(in);
  auto need = [&](const char* key, std::string* out) {
    auto it = args.find(key);
    if (it == args.end()) {
      return false;
    }
    *out = it->second;
    return true;
  };

  if (directive == "host") {
    if (sim_ != nullptr) {
      return Fail("host already declared");
    }
    TopologySpec topo;
    std::string v;
    int n;
    if (need("sockets", &v) && ParseInt(v, &n)) {
      topo.sockets = n;
    }
    if (need("cores", &v) && ParseInt(v, &n)) {
      topo.cores_per_socket = n;
    }
    if (need("smt", &v) && ParseInt(v, &n)) {
      topo.threads_per_core = n;
    }
    double f;
    if (need("smt_factor", &v) && ParseDouble(v, &f)) {
      topo.smt_factor = f;
    }
    sim_ = std::make_unique<Simulation>(seed_);
    machine_ = std::make_unique<HostMachine>(sim_.get(), topo);
    return true;
  }
  static const char* kKnown[] = {"gran",   "freq",     "stressor", "vm",    "bandwidth",
                                 "fault",  "vsched",   "workload", "run",   "report"};
  bool known = false;
  for (const char* k : kKnown) {
    if (directive == k) {
      known = true;
      break;
    }
  }
  if (!known) {
    return Fail("unknown directive '" + directive + "'");
  }
  if (sim_ == nullptr) {
    return Fail("'" + directive + "' before 'host'");
  }

  if (directive == "gran") {
    std::string v;
    int tid;
    TimeNs min_gran;
    if (!need("tid", &v) || !ParseInt(v, &tid)) {
      return Fail("gran requires tid=<t>");
    }
    if (!need("min", &v) || !ParseDuration(v, &min_gran)) {
      return Fail("gran requires min=<dur>");
    }
    HostSchedParams params;
    params.min_granularity = min_gran;
    params.wakeup_granularity = min_gran;
    TimeNs wakeup;
    if (need("wakeup", &v) && ParseDuration(v, &wakeup)) {
      params.wakeup_granularity = wakeup;
    }
    if (tid < 0 || tid >= machine_->num_threads()) {
      return Fail("gran: tid out of range");
    }
    machine_->sched(tid).set_params(params);
    return true;
  }
  if (directive == "freq") {
    std::string v;
    int core;
    double mult;
    if (!need("core", &v) || !ParseInt(v, &core) || !need("mult", &v) ||
        !ParseDouble(v, &mult)) {
      return Fail("freq requires core=<c> mult=<f>");
    }
    machine_->SetCoreFreq(core, mult);
    return true;
  }
  if (directive == "stressor") {
    std::string v;
    int tid;
    if (!need("tid", &v) || !ParseInt(v, &tid)) {
      return Fail("stressor requires tid=<t>");
    }
    double weight = 1024.0;
    if (need("weight", &v) && !ParseDouble(v, &weight)) {
      return Fail("bad weight");
    }
    bool rt = args.count("rt") > 0;
    stressors_.push_back(std::make_unique<Stressor>(sim_.get(), "stressor", weight, rt));
    TimeNs on;
    TimeNs off;
    std::string on_s;
    std::string off_s;
    if (need("on", &on_s) && need("off", &off_s) && ParseDuration(on_s, &on) &&
        ParseDuration(off_s, &off)) {
      stressors_.back()->StartDutyCycle(machine_.get(), tid, on, off);
    } else {
      stressors_.back()->Start(machine_.get(), tid);
    }
    return true;
  }
  if (directive == "vm") {
    if (vm_created_) {
      return Fail("vm already declared");
    }
    std::string v;
    int vcpus;
    if (!need("vcpus", &v) || !ParseInt(v, &vcpus)) {
      return Fail("vm requires vcpus=<n>");
    }
    VmSpec spec = MakeSimpleVmSpec("vm", vcpus);
    if (need("pin", &v)) {
      std::istringstream pins(v);
      std::string item;
      int i = 0;
      while (std::getline(pins, item, ',') && i < vcpus) {
        int tid;
        if (!ParseInt(item, &tid)) {
          return Fail("bad pin list");
        }
        spec.vcpus[i++].tid = tid;
      }
    }
    spec.mutable_guest_params().use_eevdf = args.count("eevdf") > 0;
    vm_ = std::make_unique<Vm>(sim_.get(), machine_.get(), std::move(spec));
    vm_created_ = true;
    return true;
  }
  if (vm_ == nullptr) {
    return Fail("'" + directive + "' before 'vm'");
  }

  if (directive == "bandwidth") {
    std::string v;
    int vcpu;
    TimeNs quota;
    TimeNs period;
    if (!need("vcpu", &v) || !ParseInt(v, &vcpu) || !need("quota", &v) ||
        !ParseDuration(v, &quota) || !need("period", &v) || !ParseDuration(v, &period)) {
      return Fail("bandwidth requires vcpu=<i> quota=<dur> period=<dur>");
    }
    if (vcpu < 0 || vcpu >= vm_->num_vcpus()) {
      return Fail("bandwidth: vcpu out of range");
    }
    vm_->SetVcpuBandwidth(vcpu, quota, period);
    return true;
  }
  if (directive == "fault") {
    if (fault_ != nullptr) {
      return Fail("fault already declared");
    }
    std::string name;
    if (!need("plan", &name)) {
      return Fail("fault requires plan=<name>");
    }
    FaultPlan plan;
    if (!LookupFaultPlan(name, &plan)) {
      return Fail("unknown fault plan '" + name + "'");
    }
    if (!plan.Empty()) {
      fault_ = std::make_unique<FaultInjector>(sim_.get(), machine_.get(), vm_.get(), plan);
      fault_->Start();
      vm_->kernel().set_fault_injector(fault_.get());
    }
    return true;
  }
  if (directive == "vsched") {
    std::string preset;
    if (!need("preset", &preset)) {
      return Fail("vsched requires preset=<cfs|enhanced|full>");
    }
    VSchedOptions options;
    if (preset == "cfs") {
      options = VSchedOptions::Cfs();
    } else if (preset == "enhanced") {
      options = VSchedOptions::EnhancedCfs();
    } else if (preset == "full") {
      options = VSchedOptions::Full();
    } else {
      return Fail("unknown preset '" + preset + "'");
    }
    options.robust.enabled = args.count("robust") > 0 || fault_ != nullptr;
    vsched_ = std::make_unique<VSched>(&vm_->kernel(), options);
    vsched_->Start();
    return true;
  }
  if (directive == "workload") {
    std::string name;
    std::string v;
    int threads;
    if (!need("name", &name) || !need("threads", &v) || !ParseInt(v, &threads)) {
      return Fail("workload requires name=<catalog-name> threads=<n>");
    }
    for (const CatalogEntry& e : Catalog()) {
      if (e.name == name) {
        workloads_.push_back(MakeWorkload(&vm_->kernel(), name, threads));
        workloads_.back()->Start();
        return true;
      }
    }
    return Fail("unknown workload '" + name + "'");
  }
  if (directive == "run") {
    std::istringstream rest(stripped);
    std::string skip;
    std::string dur_text;
    rest >> skip >> dur_text;
    TimeNs dur;
    if (!ParseDuration(dur_text, &dur)) {
      return Fail("run requires a duration, e.g. 'run 10s'");
    }
    sim_->RunFor(dur);
    return true;
  }
  if (directive == "report") {
    std::printf("t=%.2fs\n", NsToSec(sim_->now()));
    for (const auto& w : workloads_) {
      WorkloadResult r = w->Result();
      if (MetricFor(w->name()) == MetricKind::kP95Latency) {
        std::printf("  %-16s p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  (%llu requests)\n",
                    w->name().c_str(), r.p50_ns / 1e6, r.p95_ns / 1e6, r.p99_ns / 1e6,
                    static_cast<unsigned long long>(r.completed));
      } else {
        std::printf("  %-16s %.1f /s (%llu completed)\n", w->name().c_str(), r.throughput,
                    static_cast<unsigned long long>(r.completed));
      }
    }
    return true;
  }
  return Fail("unknown directive '" + directive + "'");
}

}  // namespace vsched
