// Activity tracing: a KernelShark-style sampled timeline of what each vCPU
// is doing (inactive / idle / which task), used by the Figure 3 bench and
// handy for debugging scheduling behaviour.
#ifndef SRC_METRICS_ACTIVITY_TRACE_H_
#define SRC_METRICS_ACTIVITY_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/sim/event_queue.h"

namespace vsched {

class GuestKernel;
class Simulation;

class ActivityTrace {
 public:
  // Samples all vCPUs of `kernel` every `sample_period`.
  ActivityTrace(GuestKernel* kernel, TimeNs sample_period = UsToNs(250));
  ~ActivityTrace();

  ActivityTrace(const ActivityTrace&) = delete;
  ActivityTrace& operator=(const ActivityTrace&) = delete;

  void Start();
  void Stop();
  void Clear();

  // Per-sample state of one vCPU.
  enum class State : uint8_t {
    kInactive,      // vCPU not running at the host
    kIdle,          // active but no guest task
    kRunningTask,   // active, running a normal task
    kRunningIdle,   // active, running a SCHED_IDLE task
    kStalled,       // inactive while a task is current ("stalled running task")
  };

  size_t samples() const { return timeline_.empty() ? 0 : timeline_[0].size(); }

  // Renders an ASCII timeline: one row per vCPU, one column per `stride`
  // samples over the trailing `columns` columns.
  //   '#' running a task   '.' idle   ' ' inactive   'x' stalled   '-' idle-class
  std::string Render(int columns = 100) const;

  // Fraction of samples in which some vCPU had a stalled running task.
  double StalledFraction() const;
  // Fraction of samples in which a given vCPU ran a normal task.
  double RunningFraction(int cpu) const;

 private:
  void Sample();

  GuestKernel* kernel_;
  Simulation* sim_;
  TimeNs period_;
  bool running_ = false;
  EventId event_;
  std::vector<std::vector<State>> timeline_;  // [vcpu][sample]

  // Liveness token for posted event closures (the PR-6 pattern, enforced by
  // vsched-lint's event-lifetime rule). Must be the last member so it
  // expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_METRICS_ACTIVITY_TRACE_H_
