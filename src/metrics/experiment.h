// Experiment harness shared by the benches: the paper's two reference VM
// configurations (§5.1), result accounting, and table formatting.
#ifndef SRC_METRICS_EXPERIMENT_H_
#define SRC_METRICS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/core/config.h"
#include "src/guest/vm.h"
#include "src/host/stressor.h"
#include "src/host/topology.h"

namespace vsched {

class GuestKernel;
class HostMachine;
class Simulation;

// ---------------------------------------------------------------------------
// Reference VMs (§5.1)
// ---------------------------------------------------------------------------

// Host topology able to hold rcvm: one socket, 8 SMT cores.
TopologySpec RcvmHostTopology();

// The resource-constrained VM: 12 vCPUs. vCPU0–9 pinned to 5 SMT sibling
// pairs; vCPU10/11 stacked on one hardware thread. vCPU0/1 hchl, 2/3 hcll,
// 4/5 lchl, 6/7 lcll (capacity ratio 2×, latency ratio 3×), vCPU8/9
// stragglers (~5% capacity).
VmSpec MakeRcvmSpec(GuestParams guest_params = GuestParams{});

// Host topology able to hold hpvm: 4 sockets × 5 SMT cores.
TopologySpec HpvmHostTopology();

// The high-performance VM: 32 vCPUs in 4 groups of 8, each group on 4 SMT
// pairs of its own socket. Groups 0–2 mirror rcvm's four vCPU classes
// (2× hchl, hcll, lchl, lcll per group); group 3 is dedicated.
VmSpec MakeHpvmSpec(GuestParams guest_params = GuestParams{});

// Per-class shaping used by the reference VMs: a co-located competitor of
// the given host weight time-shares the hardware thread (capacity =
// 1024/(1024+weight)), and the host granularities set the slice length and
// hence the vCPU latency. Weight 0 → dedicated.
struct VcpuClassShape {
  double competitor_weight;
  TimeNs granularity;
};
VcpuClassShape HchlShape();
VcpuClassShape HcllShape();
VcpuClassShape LchlShape();
VcpuClassShape LcllShape();
VcpuClassShape StragglerShape();

// Installs the competitors and host-scheduler knobs that give rcvm/hpvm
// their vCPU quality classes. Competitors are appended to `stressors`.
void ShapeRcvmHost(Simulation* sim, HostMachine* machine,
                   std::vector<std::unique_ptr<Stressor>>& stressors);
void ShapeHpvmHost(Simulation* sim, HostMachine* machine,
                   std::vector<std::unique_ptr<Stressor>>& stressors);

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

// Total work units executed by the VM (all vCPUs) — the Fig 20 "cycles".
Work TotalWorkDone(const GuestKernel& kernel);

// Geometric mean; entries must be positive.
double GeoMean(const std::vector<double>& values);

// ---------------------------------------------------------------------------
// Table formatting for bench output
// ---------------------------------------------------------------------------

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders with aligned columns to stdout.
  void Print() const;

  static std::string Fmt(double value, int precision = 2);
  static std::string Pct(double value, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner for a figure/table reproduction.
void PrintBanner(const std::string& id, const std::string& title);

}  // namespace vsched

#endif  // SRC_METRICS_EXPERIMENT_H_
