#include "src/metrics/activity_trace.h"

#include "src/guest/guest_kernel.h"
#include "src/sim/simulation.h"

namespace vsched {

ActivityTrace::ActivityTrace(GuestKernel* kernel, TimeNs sample_period)
    : kernel_(kernel), sim_(kernel->sim()), period_(sample_period) {
  timeline_.resize(kernel->num_vcpus());
}

ActivityTrace::~ActivityTrace() { Stop(); }

void ActivityTrace::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  event_ =
      sim_->After(period_, [this, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) {
          return;
        }
        Sample();
      });
}

void ActivityTrace::Stop() {
  running_ = false;
  sim_->Cancel(event_);
  event_.Invalidate();
}

void ActivityTrace::Clear() {
  for (auto& row : timeline_) {
    row.clear();
  }
}

void ActivityTrace::Sample() {
  for (int cpu = 0; cpu < kernel_->num_vcpus(); ++cpu) {
    const GuestVcpu& v = kernel_->vcpu(cpu);
    State s;
    if (!v.active()) {
      s = v.current() != nullptr ? State::kStalled : State::kInactive;
    } else if (v.current() == nullptr) {
      s = State::kIdle;
    } else if (v.current()->policy() == TaskPolicy::kIdle) {
      s = State::kRunningIdle;
    } else {
      s = State::kRunningTask;
    }
    timeline_[cpu].push_back(s);
  }
  if (running_) {
    event_ =
        sim_->After(period_, [this, alive = std::weak_ptr<const bool>(alive_)] {
          if (alive.expired()) {
            return;
          }
          Sample();
        });
  }
}

std::string ActivityTrace::Render(int columns) const {
  std::string out;
  size_t n = samples();
  if (n == 0) {
    return out;
  }
  size_t stride = std::max<size_t>(1, n / static_cast<size_t>(columns));
  for (size_t cpu = 0; cpu < timeline_.size(); ++cpu) {
    out += "vcpu" + std::to_string(cpu) + (cpu < 10 ? "  |" : " |");
    for (size_t c = 0; c + stride <= n; c += stride) {
      // Majority state within the bucket, with "stalled" winning ties.
      int counts[5] = {0, 0, 0, 0, 0};
      for (size_t i = c; i < c + stride; ++i) {
        ++counts[static_cast<int>(timeline_[cpu][i])];
      }
      State best = State::kInactive;
      int best_count = -1;
      for (int s = 0; s < 5; ++s) {
        if (counts[s] > best_count) {
          best_count = counts[s];
          best = static_cast<State>(s);
        }
      }
      if (counts[static_cast<int>(State::kStalled)] > 0) {
        best = State::kStalled;
      }
      switch (best) {
        case State::kInactive:
          out += ' ';
          break;
        case State::kIdle:
          out += '.';
          break;
        case State::kRunningTask:
          out += '#';
          break;
        case State::kRunningIdle:
          out += '-';
          break;
        case State::kStalled:
          out += 'x';
          break;
      }
    }
    out += "|\n";
  }
  return out;
}

double ActivityTrace::StalledFraction() const {
  size_t n = samples();
  if (n == 0) {
    return 0;
  }
  size_t stalled = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& row : timeline_) {
      if (row[i] == State::kStalled) {
        ++stalled;
        break;
      }
    }
  }
  return static_cast<double>(stalled) / static_cast<double>(n);
}

double ActivityTrace::RunningFraction(int cpu) const {
  const auto& row = timeline_[cpu];
  if (row.empty()) {
    return 0;
  }
  size_t running = 0;
  for (State s : row) {
    if (s == State::kRunningTask) {
      ++running;
    }
  }
  return static_cast<double>(running) / static_cast<double>(row.size());
}

}  // namespace vsched
