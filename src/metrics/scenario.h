// A small line-based scenario language for describing and running
// simulations without writing C++ — used by the scenario_runner example and
// handy for quick what-if experiments.
//
// Grammar (one directive per line; '#' starts a comment):
//
//   host sockets=<n> cores=<n> smt=<1|2> [smt_factor=<f>]
//   gran tid=<t> min=<dur> [wakeup=<dur>]        # host scheduler knobs
//   freq core=<c> mult=<f>                        # DVFS
//   stressor tid=<t> [weight=<w>] [rt] [on=<dur> off=<dur>]
//   vm vcpus=<n> [pin=<t0,t1,...>] [eevdf]
//   bandwidth vcpu=<i> quota=<dur> period=<dur>
//   fault plan=<name>                             # seeded fault injection
//   vsched preset=<cfs|enhanced|full> [robust]
//   workload name=<catalog-name> threads=<n>
//   run <dur>
//   report                                        # print workload results
//
// Durations accept ns/us/ms/s suffixes (e.g. "500us", "10ms", "2s").
#ifndef SRC_METRICS_SCENARIO_H_
#define SRC_METRICS_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/vsched.h"
#include "src/fault/fault_injector.h"
#include "src/guest/vm.h"
#include "src/host/machine.h"
#include "src/host/stressor.h"
#include "src/sim/simulation.h"
#include "src/workloads/workload.h"

namespace vsched {

class ScenarioRunner {
 public:
  explicit ScenarioRunner(uint64_t seed = 42);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  // Executes a full scenario script. Returns false (with `error()` set) on
  // the first malformed or out-of-order directive.
  bool RunScript(const std::string& script);

  // Executes a single directive line. Empty/comment lines are no-ops.
  bool RunLine(const std::string& line);

  const std::string& error() const { return error_; }

  // Accessors for programmatic inspection after a run.
  Simulation* sim() { return sim_.get(); }
  Vm* vm() { return vm_.get(); }
  VSched* vsched() { return vsched_.get(); }
  FaultInjector* fault() { return fault_.get(); }
  const std::vector<std::unique_ptr<Workload>>& workloads() const { return workloads_; }

  // Parses "123", "45us", "10ms", "2s" into nanoseconds; false on error.
  static bool ParseDuration(const std::string& text, TimeNs* out);

 private:
  bool Fail(const std::string& message);

  uint64_t seed_;
  std::string error_;
  std::unique_ptr<Simulation> sim_;
  std::unique_ptr<HostMachine> machine_;
  std::unique_ptr<Vm> vm_;
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<VSched> vsched_;
  std::vector<std::unique_ptr<Stressor>> stressors_;
  std::vector<std::unique_ptr<Workload>> workloads_;
  // Deferred VM configuration gathered before `vm` materializes it.
  bool vm_created_ = false;
};

}  // namespace vsched

#endif  // SRC_METRICS_SCENARIO_H_
