#include "src/metrics/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <cstdio>

#include "src/base/check.h"
#include "src/guest/guest_kernel.h"
#include "src/host/machine.h"

namespace vsched {

// Class shaping: hc = 70% capacity (competitor weight 439), lc = 35%
// (weight 1902), 2x apart; granularities give hl ≈ 6 ms inactive periods
// and ll ≈ 2 ms (3x apart). The inactive period is `gran` when our vCPU
// outweighs the competitor and `gran * weight/1024` otherwise.
VcpuClassShape HchlShape() { return {439.0, MsToNs(6)}; }
VcpuClassShape HcllShape() { return {439.0, MsToNs(2)}; }
VcpuClassShape LchlShape() { return {1902.0, UsToNs(3200)}; }
VcpuClassShape LcllShape() { return {1902.0, UsToNs(1080)}; }
VcpuClassShape StragglerShape() { return {39936.0, MsToNs(1)}; }

namespace {

void ApplyThreadShape(Simulation* sim, HostMachine* machine,
                      std::vector<std::unique_ptr<Stressor>>& stressors, HwThreadId tid,
                      VcpuClassShape shape) {
  HostSchedParams params;
  params.min_granularity = shape.granularity;
  params.wakeup_granularity = shape.granularity;
  machine->sched(tid).set_params(params);
  if (shape.competitor_weight > 0) {
    stressors.push_back(
        std::make_unique<Stressor>(sim, "cotenant", shape.competitor_weight));
    stressors.back()->Start(machine, tid);
  }
}

}  // namespace

void ShapeRcvmHost(Simulation* sim, HostMachine* machine,
                   std::vector<std::unique_ptr<Stressor>>& stressors) {
  const VcpuClassShape classes[4] = {HchlShape(), HcllShape(), LchlShape(), LcllShape()};
  for (int t = 0; t < 8; ++t) {
    ApplyThreadShape(sim, machine, stressors, t, classes[t / 2]);
  }
  ApplyThreadShape(sim, machine, stressors, 8, StragglerShape());
  ApplyThreadShape(sim, machine, stressors, 9, StragglerShape());
  // Thread 10 hosts the stacked pair: contended only by the two vCPUs.
}

void ShapeHpvmHost(Simulation* sim, HostMachine* machine,
                   std::vector<std::unique_ptr<Stressor>>& stressors) {
  const VcpuClassShape classes[4] = {HchlShape(), HcllShape(), LchlShape(), LcllShape()};
  const int threads_per_socket = 10;
  for (int group = 0; group < 3; ++group) {
    for (int i = 0; i < 8; ++i) {
      ApplyThreadShape(sim, machine, stressors, group * threads_per_socket + i, classes[i / 2]);
    }
  }
  // Group 3 (socket 3): dedicated, default knobs, no competitors.
}

TopologySpec RcvmHostTopology() {
  TopologySpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = 8;
  spec.threads_per_core = 2;
  return spec;
}

VmSpec MakeRcvmSpec(GuestParams guest_params) {
  VmSpec spec;
  spec.name = "rcvm";
  spec.guest_params = std::make_shared<const GuestParams>(guest_params);
  spec.vcpus.resize(12);
  // vCPU0–9 on five SMT pairs (hardware threads 0..9).
  for (int i = 0; i < 10; ++i) {
    spec.vcpus[i].tid = i;
  }
  // vCPU10/11 stacked on hardware thread 10 (core 5, first thread).
  spec.vcpus[10].tid = 10;
  spec.vcpus[11].tid = 10;
  // Quality classes come from host-side competitors: see ShapeRcvmHost.
  return spec;
}

TopologySpec HpvmHostTopology() {
  TopologySpec spec;
  spec.sockets = 4;
  spec.cores_per_socket = 5;
  spec.threads_per_core = 2;
  return spec;
}

VmSpec MakeHpvmSpec(GuestParams guest_params) {
  VmSpec spec;
  spec.name = "hpvm";
  spec.guest_params = std::make_shared<const GuestParams>(guest_params);
  spec.vcpus.resize(32);
  const int threads_per_socket = 10;  // 5 cores × 2 threads
  for (int group = 0; group < 4; ++group) {
    for (int i = 0; i < 8; ++i) {
      int vcpu = group * 8 + i;
      // 4 SMT pairs per group → hardware threads 0..7 of the socket.
      spec.vcpus[vcpu].tid = group * threads_per_socket + i;
      // Quality classes come from host-side competitors: see ShapeHpvmHost.
    }
  }
  return spec;
}

Work TotalWorkDone(const GuestKernel& kernel) {
  Work total = 0;
  for (int i = 0; i < kernel.num_vcpus(); ++i) {
    total += kernel.vcpu(i).work_done();
  }
  return total;
}

double GeoMean(const std::vector<double>& values) {
  VSCHED_CHECK(!values.empty());
  double log_sum = 0;
  for (double v : values) {
    VSCHED_CHECK(v > 0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  VSCHED_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s", static_cast<int>(widths[c] + 2), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  for (size_t i = 0; i < total; ++i) {
    std::printf("-");
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Pct(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, value);
  return buf;
}

void PrintBanner(const std::string& id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace vsched
