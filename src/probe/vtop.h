// vtop: the vCPU topology prober (§3.1).
//
// Builds the full vCPU distance matrix with pairwise cache-line probes
// (PairProbe), using the paper's three optimizations: (1) inference —
// relations of a stacked vCPU are copied from its partner instead of probed;
// (2) socket-first ordering — sockets are discovered with one probe chain,
// then intra-socket structure is probed in parallel across sockets; (3) a
// lightweight periodic validation that re-checks only representative pairs
// and triggers a full re-probe on mismatch.
#ifndef SRC_PROBE_VTOP_H_
#define SRC_PROBE_VTOP_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/time.h"
#include "src/guest/guest_topology.h"
#include "src/probe/pair_probe.h"
#include "src/probe/robust.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/stats/stats.h"

namespace vsched {

class GuestKernel;
class Simulation;

struct VtopConfig {
  TimeNs probe_interval = SecToNs(2);  // validation cadence (Table 1)
  // Classification thresholds on observed transfer latency (ns).
  double smt_threshold_ns = 20.0;
  double socket_threshold_ns = 80.0;
  PairProbeConfig pair;
  // Robust operation under fault injection: topology confidence scoring and
  // bounded re-probe backoff after failed validations. When enabled, the
  // robust settings are also propagated into the pair-probe config so
  // individual probes report per-probe confidence. Disabled by default.
  ProbeRobustConfig robust;
};

// Distance class derived from a measured latency.
enum class VcpuRelation { kUnknown, kStacked, kSmtSibling, kSameSocket, kCrossSocket };

class Vtop {
 public:
  Vtop(GuestKernel* kernel, VtopConfig config = VtopConfig{});
  ~Vtop();

  Vtop(const Vtop&) = delete;
  Vtop& operator=(const Vtop&) = delete;

  // Starts the periodic probe loop: one full probe, then validations that
  // escalate to full probes on mismatch.
  void Start();
  void Stop();

  // One-shot entry points (also used by the benches).
  void RunFullProbe(std::function<void()> done);
  void RunValidation(std::function<void(bool ok)> done);

  bool busy() const { return busy_; }
  bool has_topology() const { return has_topology_; }
  const GuestTopology& probed_topology() const { return topology_; }

  // Latency matrix (ns); kInfiniteLatency → stacked; <0 → never probed.
  double MatrixAt(int a, int b) const;
  VcpuRelation Classify(double latency_ns) const;

  TimeNs last_full_duration() const { return last_full_duration_; }
  TimeNs last_validate_duration() const { return last_validate_duration_; }
  int full_probes_run() const { return full_probes_run_; }
  int validations_run() const { return validations_run_; }
  int pair_probes_run() const { return pair_probes_run_; }
  int pairs_inferred() const { return pairs_inferred_; }

  // Confidence in the current topology, in [0, 1]; 1.0 while the robust
  // layer is disabled. Fed by per-probe sample survival and by validation
  // outcomes (a failed validation scores 0, a passed one scores 1).
  double TopologyConfidence() const;
  // Consecutive validation failures since the last pass (bounded re-probes).
  int consecutive_failed_validations() const { return reprobe_count_; }
  // Backoff re-probes scheduled so far (for tests/metrics).
  int reprobes_scheduled() const { return reprobes_scheduled_; }

  // Invoked whenever a full probe produced a (possibly changed) topology.
  void SetTopologyCallback(std::function<void(const GuestTopology&)> cb) {
    topology_callback_ = std::move(cb);
  }

 private:
  struct Expectation {
    int a;
    int b;
    VcpuRelation expect;
  };

  void ProbePair(int a, int b, std::function<void(double)> cont);
  // Runs `pairs` concurrently (they must be vCPU-disjoint); `cont` fires
  // when all are recorded in the matrix.
  void RunBatch(std::vector<std::pair<int, int>> pairs, std::function<void()> cont);
  void SweepFinishedProbes();

  void Record(int a, int b, double latency);
  bool TryInferFromStacking(int a, int b);

  // Full-probe phases.
  void PhaseAStep(int next_vcpu, int rep_index);
  void StartPhaseB();
  void PhaseBGroupStep(int group);
  void FinalizeFullProbe();

  // Validation.
  void BuildExpectations();
  void ValidationBatchStep(size_t batch_index);

  void ScheduleNextCycle();
  void OnCycle();
  void OnValidationFailed();

  GuestKernel* kernel_;
  Simulation* sim_;
  VtopConfig config_;
  int n_;

  bool running_ = false;
  bool busy_ = false;
  bool has_topology_ = false;
  GuestTopology topology_;
  std::vector<std::vector<double>> matrix_;

  // Full-probe working state.
  std::vector<int> socket_of_;          // group id per vCPU
  std::vector<std::vector<int>> groups_;  // socket groups
  std::function<void()> full_done_;
  TimeNs full_started_ = 0;
  int groups_outstanding_ = 0;
  std::vector<std::vector<std::pair<int, int>>> group_pending_;

  // Validation working state.
  std::vector<std::vector<Expectation>> validation_batches_;
  bool validation_ok_ = false;
  std::function<void(bool)> validate_done_;
  TimeNs validate_started_ = 0;

  std::vector<std::unique_ptr<PairProbe>> live_probes_;
  std::function<void(const GuestTopology&)> topology_callback_;
  EventId cycle_event_;

  TimeNs last_full_duration_ = 0;
  TimeNs last_validate_duration_ = 0;
  int full_probes_run_ = 0;
  int validations_run_ = 0;
  int pair_probes_run_ = 0;
  int pairs_inferred_ = 0;

  // Robust-layer state: smoothed topology confidence and bounded re-probe
  // backoff after consecutive validation failures. The RNG (cycle jitter)
  // is forked only when the robust layer is on, so clean runs keep the
  // simulation's fork order byte-identical.
  Ema confidence_ema_ = Ema::WithHalfLife(8.0);
  int reprobe_count_ = 0;
  int reprobes_scheduled_ = 0;
  std::optional<Rng> rng_;

  // Liveness token for posted event closures (the PR-6 pattern, enforced by
  // vsched-lint's event-lifetime rule). Must be the last member so it
  // expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_PROBE_VTOP_H_
