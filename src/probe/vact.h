// vact: the vCPU activity prober (§3.1).
//
// Kernel-side instrumentation on the scheduler tick provides two signals
// without any hypervisor support:
//  * a heartbeat timestamp per vCPU — a stale heartbeat means the vCPU is
//    not executing (preempted or halted);
//  * steal-time jumps — a tick that observes a large increase in steal time
//    since the previous tick means the vCPU was preempted and has just been
//    rescheduled; counting qualified jumps per window yields the average
//    inactive period, exposed as the new abstraction "vCPU latency".
#ifndef SRC_PROBE_VACT_H_
#define SRC_PROBE_VACT_H_

#include <memory>
#include <vector>

#include "src/base/time.h"
#include "src/probe/robust.h"
#include "src/sim/event_queue.h"
#include "src/stats/stats.h"

namespace vsched {

class GuestKernel;
class GuestVcpu;
class Simulation;

struct VactConfig {
  // Steal increase below this per tick is filtered as noise (instantaneous
  // host-system tasks).
  TimeNs steal_jump_threshold = UsToNs(200);
  // Heartbeat older than this many ticks → vCPU considered inactive.
  int inactive_after_ticks = 3;
  // Interval between latency-estimate updates.
  TimeNs update_interval = SecToNs(1);
  // Smoothing across windows.
  double ema_half_life_windows = 2.0;
  // Confidence scoring under fault injection (tick-sample dropout, stale
  // windows). Disabled by default.
  ProbeRobustConfig robust;
};

// Near-real-time activity of one vCPU as seen by an examiner.
struct VcpuStateView {
  bool inactive = false;
  TimeNs since = 0;  // when the current state (approximately) began
};

class Vact {
 public:
  Vact(GuestKernel* kernel, VactConfig config = VactConfig{});

  Vact(const Vact&) = delete;
  Vact& operator=(const Vact&) = delete;

  // Installs the tick instrumentation and the periodic latency updates.
  void Start();
  // Cancels the pending window event: the prober may be destroyed right
  // after (VM teardown mid-simulation) without leaving a dangling callback.
  void Stop();

  // Average vCPU inactive period — the "vCPU latency" abstraction (ns).
  double LatencyOf(int cpu) const;
  double MedianLatency() const;

  // Average vCPU active period between preemptions (ns).
  double ActivePeriodOf(int cpu) const;

  // Heartbeat-based state query (the new kernel function of §4).
  VcpuStateView QueryState(int cpu) const;

  // Confidence in the latency estimate, in [0, 1]; 1.0 while the robust
  // layer is disabled. Reflects recent windows: updated estimates score
  // high, windows with dropped tick samples or stale estimates score low.
  double ConfidenceOf(int cpu) const;
  double MedianConfidence() const;

  // Preemptions detected in the last completed window (for tests).
  int LastWindowPreemptions(int cpu) const { return last_window_preempts_[cpu]; }
  bool has_results() const { return windows_completed_ > 0; }

  // Anti-evasion detection: windows attributed to sub-threshold theft
  // (substantial steal, zero qualified jumps). Nonzero only with the robust
  // layer enabled — the cycle-stealer detection signal.
  int subthreshold_windows() const { return subthreshold_windows_; }

 private:
  void OnTick(GuestVcpu* v, TimeNs now);
  void OnWindowEnd();

  GuestKernel* kernel_;
  Simulation* sim_;
  VactConfig config_;
  bool running_ = false;
  bool hook_installed_ = false;
  int windows_completed_ = 0;
  EventId window_event_;

  std::vector<TimeNs> heartbeat_;
  std::vector<TimeNs> last_tick_steal_;
  std::vector<TimeNs> became_active_at_;
  std::vector<int> window_preempts_;
  std::vector<int> last_window_preempts_;
  std::vector<TimeNs> window_start_steal_;
  TimeNs window_start_ = 0;
  std::vector<Ema> latency_ema_;
  std::vector<Ema> active_period_ema_;
  std::vector<ConfidenceTracker> confidence_;
  std::vector<int> window_drops_;  // tick samples dropped this window
  std::vector<int> window_ticks_;  // ticks that fired this window (incl. drops)
  int subthreshold_windows_ = 0;   // windows attributed to sub-threshold theft

  // Liveness token for posted event closures (the PR-6 pattern, enforced by
  // vsched-lint's event-lifetime rule). Must be the last member so it
  // expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_PROBE_VACT_H_
