// vcap: the vCPU capacity prober (§3.1).
//
// Cooperative, multi-phase sampling. One prober task per vCPU keeps its vCPU
// busy during a sampling window. In light windows (SCHED_IDLE probers,
// default every second) only steal time is collected — the fraction of the
// window the vCPU wanted to run but was not executing. In heavy windows
// (normal-priority probers, every Nth light window) the prober additionally
// measures its own work rate while actually executing, which is the hosting
// core's capacity (including SMT contention and DVFS). Then:
//
//   vcpu_capacity = core_capacity × (1 − steal_fraction)
//
// smoothed with an EMA ("50% decay per 2 periods", Table 1).
#ifndef SRC_PROBE_VCAP_H_
#define SRC_PROBE_VCAP_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/base/time.h"
#include "src/guest/cpumask.h"
#include "src/probe/robust.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/guest/task.h"
#include "src/stats/stats.h"

namespace vsched {

class GuestKernel;
class Simulation;

struct VcapConfig {
  TimeNs sampling_period = MsToNs(100);  // window length
  TimeNs light_interval = SecToNs(1);    // window cadence
  int heavy_every = 5;                   // every Nth window is heavy
  double ema_half_life_periods = 2.0;    // "50% per 2 periods"
  // Work chunk per prober burst; small so windows end promptly.
  TimeNs chunk_ns = UsToNs(50);
  // Multiplicative measurement noise on each capacity sample (rdtsc and
  // steal-clock readings jitter on real VMs); the EMA smooths it out.
  double measurement_noise = 0.03;
  // Outlier rejection + confidence scoring under fault injection. Disabled
  // by default: clean runs take the original path bit-for-bit.
  ProbeRobustConfig robust;
};

// One sampling window's outcome for a vCPU (exposed for tests/benches).
struct VcapSample {
  double steal_fraction = 0;
  double core_capacity = kCapacityScale;
  double vcpu_capacity = kCapacityScale;
  bool heavy = false;
};

class Vcap {
 public:
  Vcap(GuestKernel* kernel, VcapConfig config = VcapConfig{});
  ~Vcap();

  Vcap(const Vcap&) = delete;
  Vcap& operator=(const Vcap&) = delete;

  // Begins periodic sampling.
  void Start();
  void Stop();
  bool running() const { return running_; }

  // Smoothed capacity estimate for a vCPU (kCapacityScale units).
  double CapacityOf(int cpu) const;
  double RawCapacityOf(int cpu) const;  // last un-smoothed sample
  double MedianCapacity() const;
  bool has_results() const { return windows_completed_ > 0; }
  int windows_completed() const { return windows_completed_; }
  const VcapSample& last_sample(int cpu) const { return last_samples_[cpu]; }

  // Confidence in the capacity estimate for a vCPU, in [0, 1]. Always 1.0
  // while the robust layer is disabled; under fault injection it reflects
  // the recent accept/reject/drop history of that vCPU's samples.
  double ConfidenceOf(int cpu) const;
  double MedianConfidence() const;

  // Skips probing on these vCPUs (rwc bans stack-banned vCPUs from vcap).
  void SetSkipMask(CpuMask mask) { skip_mask_ = mask; }

  // ---- Anti-evasion hardening (robust.enabled only) ----
  // The steal fraction observed *between* the two most recent windows — the
  // corroboration signal for the duty-cycle plausibility check. A
  // probe-evading co-tenant is quiet inside windows but loud outside them,
  // so a large off-window/in-window gap marks the window implausible.
  double OffWindowStealFrac(int cpu) const { return offwindow_steal_frac_[cpu]; }
  // vCPUs whose recent windows were persistently implausible; their
  // published estimates are replaced by the corroborated off-window view.
  CpuMask QuarantinedMask() const { return quarantined_; }
  bool Quarantined(int cpu) const { return quarantined_.Test(cpu); }
  int implausible_windows() const { return implausible_windows_; }
  int quarantine_events() const { return quarantine_events_; }

  // Fired at the end of each sampling window with [start, end). vact hooks
  // in here; the vSched bridge pushes capacities to the kernel.
  using WindowCallback = std::function<void(TimeNs start, TimeNs end, bool heavy)>;
  void AddWindowCallback(WindowCallback cb) { window_callbacks_.push_back(std::move(cb)); }

 private:
  class ProberBehavior;

  void BeginWindow();
  void EndWindow();

  GuestKernel* kernel_;
  Simulation* sim_;
  VcapConfig config_;
  Rng rng_;
  bool running_ = false;
  bool window_active_ = false;
  bool current_heavy_ = false;
  int windows_started_ = 0;
  int windows_completed_ = 0;
  TimeNs window_start_ = 0;
  EventId next_event_;

  CpuMask skip_mask_;
  std::vector<std::unique_ptr<ProberBehavior>> light_behaviors_;
  std::vector<std::unique_ptr<ProberBehavior>> heavy_behaviors_;
  std::vector<Task*> light_probers_;
  std::vector<Task*> heavy_probers_;

  // Window-start snapshots.
  std::vector<TimeNs> steal_at_start_;
  std::vector<TimeNs> exec_at_start_;
  std::vector<Work> prober_work_at_start_;

  // Anti-evasion state (all inert unless robust.enabled): steal clocks at
  // the end of the previous window, the off-window steal fraction derived
  // from them at the next window start, and the per-vCPU plausibility
  // streaks driving quarantine entry/release.
  TimeNs prev_window_end_ = -1;
  std::vector<TimeNs> steal_at_prev_end_;
  std::vector<double> offwindow_steal_frac_;
  std::vector<int> suspect_streak_;
  std::vector<int> clear_streak_;
  CpuMask quarantined_;
  int implausible_windows_ = 0;
  int quarantine_events_ = 0;

  std::vector<Ema> capacity_ema_;
  std::vector<ConfidenceTracker> confidence_;
  std::vector<double> core_capacity_;  // last heavy-phase core capacity
  std::vector<VcapSample> last_samples_;
  std::vector<WindowCallback> window_callbacks_;

  // Liveness token for posted event closures (the PR-6 pattern, enforced by
  // vsched-lint's event-lifetime rule). Must be the last member so it
  // expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_PROBE_VCAP_H_
