#include "src/probe/pair_probe.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/fault/fault_injector.h"
#include "src/guest/guest_kernel.h"
#include "src/host/machine.h"
#include "src/sim/simulation.h"

namespace vsched {

namespace {
// Cap on stored observations for the robust median: the first samples are an
// unbiased draw (corruption is i.i.d.), so a bounded prefix suffices.
constexpr size_t kMaxObservations = 128;
}  // namespace

// Spins in short bursts until the probe finishes.
class PairProbe::SpinBehavior : public TaskBehavior {
 public:
  explicit SpinBehavior(PairProbe* probe) : probe_(probe) {}

  TaskAction Next(TaskContext&, RunReason reason) override {
    if (reason == RunReason::kStarted) {
      return TaskAction::WaitEvent();
    }
    if (probe_->done_reported_) {
      return TaskAction::Exit();
    }
    return TaskAction::Run(WorkAtCapacity(kCapacityScale, UsToNs(20)));
  }

 private:
  PairProbe* probe_;
};

PairProbe::PairProbe(GuestKernel* kernel, int cpu_a, int cpu_b, PairProbeConfig config,
                     DoneCallback done)
    : kernel_(kernel),
      sim_(kernel->sim()),
      cpu_a_(cpu_a),
      cpu_b_(cpu_b),
      config_(config),
      done_(std::move(done)) {
  VSCHED_CHECK(cpu_a != cpu_b);
  current_timeout_ = config_.timeout_attempts;
  sample_timer_ = sim_->CreateTimer([this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    Sample();
  });
}

PairProbe::~PairProbe() { sim_->DestroyTimer(sample_timer_); }

bool PairProbe::CanDestroy() const {
  if (!done_reported_) {
    return false;
  }
  bool a_done = prober_a_ == nullptr || prober_a_->state() == TaskState::kFinished;
  bool b_done = prober_b_ == nullptr || prober_b_->state() == TaskState::kFinished;
  return a_done && b_done;
}

void PairProbe::Start() {
  started_at_ = sim_->now();
  behavior_a_ = std::make_unique<SpinBehavior>(this);
  behavior_b_ = std::make_unique<SpinBehavior>(this);
  prober_a_ = kernel_->CreateTask("vtop-" + std::to_string(cpu_a_) + "-" + std::to_string(cpu_b_),
                                  TaskPolicy::kNormal, behavior_a_.get(), CpuMask::Single(cpu_a_));
  prober_b_ = kernel_->CreateTask("vtop-" + std::to_string(cpu_b_) + "-" + std::to_string(cpu_a_),
                                  TaskPolicy::kNormal, behavior_b_.get(), CpuMask::Single(cpu_b_));
  prober_a_->set_exempt_all_bans(true);
  prober_b_->set_exempt_all_bans(true);
  kernel_->StartTask(prober_a_);
  kernel_->StartTask(prober_b_);
  kernel_->WakeTask(prober_a_);
  kernel_->WakeTask(prober_b_);
  sim_->ArmTimerAfter(sample_timer_, config_.sample_quantum);
}

void PairProbe::Sample() {
  const GuestVcpu& va = kernel_->vcpu(cpu_a_);
  const GuestVcpu& vb = kernel_->vcpu(cpu_b_);
  bool a_running = va.active() && va.current() == prober_a_;
  bool b_running = vb.active() && vb.current() == prober_b_;

  double quantum = static_cast<double>(config_.sample_quantum);
  if (a_running && b_running) {
    // Both probers execute: the line ping-pongs at the hardware latency of
    // the two vCPUs' current hardware threads.
    double lat = kernel_->machine()->topology().CacheLatencyNs(va.thread()->tid(),
                                                               vb.thread()->tid());
    double jitter = 1.0 + config_.noise * (kernel_->rng().NextDouble() * 2.0 - 1.0);
    double observed = lat * jitter;
    FaultInjector* injector = kernel_->fault_injector();
    bool dropped = false;
    if (injector != nullptr) {
      // vsched-lint: allow(fault-injection-point) — registered kPairLatency site
      if (injector->DropSample(ProbePoint::kPairLatency)) {
        dropped = true;  // the transfers of this quantum are lost
        ++samples_dropped_;
      } else {
        // vsched-lint: allow(fault-injection-point) — registered kPairLatency site
        observed = injector->CorruptSample(ProbePoint::kPairLatency, observed);
      }
    }
    if (!dropped) {
      ++samples_kept_;
      min_latency_seen_ = std::min(min_latency_seen_, observed);
      if (config_.robust.enabled && observations_.size() < kMaxObservations) {
        observations_.push_back(observed);
      }
      transfers_ += quantum / lat;
    }
    attempts_ += quantum / static_cast<double>(config_.attempt_period);
  } else if (a_running || b_running) {
    // One prober spins while the other is inactive or preempted.
    attempts_ += quantum / static_cast<double>(config_.attempt_period);
  }

  if (transfers_ >= config_.target_transfers) {
    Finish(min_latency_seen_);
    return;
  }
  if (attempts_ >= current_timeout_) {
    if (transfers_ >= config_.min_transfers_for_latency) {
      // Few-but-enough transfers: the lowest observed latency is reliable.
      Finish(min_latency_seen_);
      return;
    }
    if (extensions_ < config_.max_extensions) {
      ++extensions_;
      current_timeout_ *= 2;  // Extend: maybe the vCPUs simply never overlapped yet.
    } else if (transfers_ >= 1.0) {
      // Stacked vCPUs can NEVER run simultaneously: any successful transfer
      // disproves stacking, however rarely the pair overlaps.
      Finish(min_latency_seen_);
      return;
    } else {
      Finish(kInfiniteLatency);  // Stacked: they can never run simultaneously.
      return;
    }
  }
  sim_->ArmTimerAfter(sample_timer_, config_.sample_quantum);
}

void PairProbe::Finish(double latency) {
  VSCHED_CHECK(!done_reported_);
  done_reported_ = true;
  sim_->CancelTimer(sample_timer_);
  if (config_.robust.enabled && latency != kInfiniteLatency && !observations_.empty()) {
    // Median instead of minimum: a handful of corrupted-low observations
    // would otherwise make any pair look like SMT siblings.
    std::vector<double> sorted = observations_;
    std::sort(sorted.begin(), sorted.end());
    latency = sorted[(sorted.size() - 1) / 2];
  }
  // Let the spin tasks exit at their next burst boundary; stop demanding CPU.
  PairProbeResult result;
  result.cpu_a = cpu_a_;
  result.cpu_b = cpu_b_;
  result.latency_ns = latency;
  if (samples_dropped_ > 0) {
    result.confidence = static_cast<double>(samples_kept_) /
                        static_cast<double>(samples_kept_ + samples_dropped_);
  }
  result.transfers = transfers_;
  result.duration = sim_->now() - started_at_;
  result.extensions = extensions_;
  if (done_) {
    done_(result);
  }
}

}  // namespace vsched
