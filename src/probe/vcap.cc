#include "src/probe/vcap.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/fault/fault_injector.h"
#include "src/guest/guest_kernel.h"
#include "src/sim/simulation.h"

namespace vsched {

// Keeps the vCPU busy during an armed window, counting completed work.
class Vcap::ProberBehavior : public TaskBehavior {
 public:
  explicit ProberBehavior(TimeNs chunk_ns)
      : chunk_work_(WorkAtCapacity(kCapacityScale, chunk_ns)) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override {
    if (reason == RunReason::kBurstComplete) {
      work_completed_ += chunk_work_;
    }
    if (!armed_ || ctx.sim->now() >= window_end_) {
      return TaskAction::WaitEvent();
    }
    return TaskAction::Run(chunk_work_);
  }

  void Arm(TimeNs window_end) {
    armed_ = true;
    window_end_ = window_end;
  }
  void Disarm() { armed_ = false; }
  Work work_completed() const { return work_completed_; }

 private:
  Work chunk_work_;
  bool armed_ = false;
  TimeNs window_end_ = 0;
  Work work_completed_ = 0;
};

Vcap::Vcap(GuestKernel* kernel, VcapConfig config)
    : kernel_(kernel), sim_(kernel->sim()), config_(config), rng_(kernel->sim()->ForkRng()) {
  int n = kernel_->num_vcpus();
  steal_at_start_.resize(n, 0);
  exec_at_start_.resize(n, 0);
  prober_work_at_start_.resize(n, 0);
  steal_at_prev_end_.resize(n, 0);
  offwindow_steal_frac_.resize(n, 0.0);
  suspect_streak_.resize(n, 0);
  clear_streak_.resize(n, 0);
  core_capacity_.assign(n, kCapacityScale);
  last_samples_.resize(n);
  for (int i = 0; i < n; ++i) {
    capacity_ema_.push_back(Ema::WithHalfLife(config_.ema_half_life_periods));
    confidence_.emplace_back(config_.robust.confidence_window);
  }
}

Vcap::~Vcap() { Stop(); }

void Vcap::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  if (light_probers_.empty()) {
    for (int i = 0; i < kernel_->num_vcpus(); ++i) {
      light_behaviors_.push_back(std::make_unique<ProberBehavior>(config_.chunk_ns));
      Task* light = kernel_->CreateTask("vcap-light-" + std::to_string(i), TaskPolicy::kIdle,
                                        light_behaviors_.back().get(), CpuMask::Single(i));
      light->set_exempt_straggler_ban(true);
      kernel_->StartTask(light);
      light_probers_.push_back(light);

      heavy_behaviors_.push_back(std::make_unique<ProberBehavior>(config_.chunk_ns));
      Task* heavy = kernel_->CreateTask("vcap-heavy-" + std::to_string(i), TaskPolicy::kNormal,
                                        heavy_behaviors_.back().get(), CpuMask::Single(i));
      heavy->set_exempt_straggler_ban(true);
      kernel_->StartTask(heavy);
      heavy_probers_.push_back(heavy);
    }
  }
  next_event_ =
      sim_->After(0, [this, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) {
          return;
        }
        BeginWindow();
      });
}

void Vcap::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  sim_->Cancel(next_event_);
  for (auto& b : light_behaviors_) {
    b->Disarm();
  }
  for (auto& b : heavy_behaviors_) {
    b->Disarm();
  }
  window_active_ = false;
}

void Vcap::BeginWindow() {
  VSCHED_CHECK(running_ && !window_active_);
  window_active_ = true;
  ++windows_started_;
  // The first window is heavy so core capacity is known from the start.
  current_heavy_ = (windows_started_ % config_.heavy_every == 1) || config_.heavy_every == 1;
  TimeNs now = sim_->now();
  window_start_ = now;
  TimeNs window_end = now + config_.sampling_period;

  for (int i = 0; i < kernel_->num_vcpus(); ++i) {
    if (skip_mask_.Test(i)) {
      continue;
    }
    steal_at_start_[i] = kernel_->vcpu(i).StealClock(now);
    if (config_.robust.enabled && prev_window_end_ >= 0 && now > prev_window_end_) {
      // Corroboration signal for the plausibility check: how much steal the
      // vCPU saw while no window was open. A probe-evader concentrates its
      // activity exactly there.
      offwindow_steal_frac_[i] =
          std::clamp(static_cast<double>(steal_at_start_[i] - steal_at_prev_end_[i]) /
                         static_cast<double>(now - prev_window_end_),
                     0.0, 1.0);
    }
    light_behaviors_[i]->Arm(window_end);
    kernel_->WakeTask(light_probers_[i]);
    if (current_heavy_) {
      exec_at_start_[i] = heavy_probers_[i]->total_exec_ns();
      prober_work_at_start_[i] = heavy_behaviors_[i]->work_completed();
      heavy_behaviors_[i]->Arm(window_end);
      kernel_->WakeTask(heavy_probers_[i]);
    }
  }
  next_event_ = sim_->After(
      config_.sampling_period, [this, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) {
          return;
        }
        EndWindow();
      });
}

void Vcap::EndWindow() {
  VSCHED_CHECK(window_active_);
  window_active_ = false;
  TimeNs now = sim_->now();
  double window = static_cast<double>(now - window_start_);

  for (int i = 0; i < kernel_->num_vcpus(); ++i) {
    if (skip_mask_.Test(i)) {
      continue;
    }
    light_behaviors_[i]->Disarm();
    TimeNs steal_delta = kernel_->vcpu(i).StealClock(now) - steal_at_start_[i];
    double steal_frac =
        std::clamp(static_cast<double>(steal_delta) / window, 0.0, 1.0);

    VcapSample sample;
    sample.heavy = current_heavy_;
    sample.steal_fraction = steal_frac;
    if (current_heavy_) {
      heavy_behaviors_[i]->Disarm();
      TimeNs exec_delta = heavy_probers_[i]->total_exec_ns() - exec_at_start_[i];
      Work work_delta = heavy_behaviors_[i]->work_completed() - prober_work_at_start_[i];
      if (exec_delta > UsToNs(200) && work_delta > 0) {
        core_capacity_[i] = work_delta / static_cast<double>(exec_delta);
      }
    }
    sample.core_capacity = core_capacity_[i];
    double noise = 1.0 + config_.measurement_noise * (rng_.NextDouble() * 2.0 - 1.0);
    sample.vcpu_capacity = core_capacity_[i] * (1.0 - steal_frac) * noise;
    FaultInjector* injector = kernel_->fault_injector();
    if (injector != nullptr) {
      // vsched-lint: allow(fault-injection-point) — registered kVcapWindow site
      if (injector->DropSample(ProbePoint::kVcapWindow)) {
        // Sample lost: keep the previous estimate and score the gap.
        if (config_.robust.enabled) {
          confidence_[i].RecordDropped();
        }
        continue;
      }
      // vsched-lint: allow(fault-injection-point) — registered kVcapWindow site
      sample.vcpu_capacity = injector->CorruptSample(ProbePoint::kVcapWindow, sample.vcpu_capacity);
    }
    if (config_.robust.enabled) {
      // Duty-cycle plausibility: the in-window steal fraction must not
      // undercut what the steal clock showed between windows. A clean noisy
      // neighbor perturbs both readings alike; only activity *timed against
      // the window grid* produces a large one-sided gap.
      const double off_frac = offwindow_steal_frac_[i];
      if (off_frac - steal_frac > config_.robust.plausibility_gap) {
        ++implausible_windows_;
        clear_streak_[i] = 0;
        if (++suspect_streak_[i] >= config_.robust.quarantine_streak && !quarantined_.Test(i)) {
          quarantined_.Set(i);
          ++quarantine_events_;
        }
        // Publish the corroborated pessimistic view instead of the
        // evader-fed one, and score the window as untrustworthy.
        sample.steal_fraction = off_frac;
        sample.vcpu_capacity =
            std::min(sample.vcpu_capacity, core_capacity_[i] * (1.0 - off_frac));
        confidence_[i].RecordRejected();
        last_samples_[i] = sample;
        capacity_ema_[i].Add(sample.vcpu_capacity);
        continue;
      }
      suspect_streak_[i] = 0;
      if (quarantined_.Test(i) && ++clear_streak_[i] >= config_.robust.quarantine_release) {
        quarantined_.Clear(i);
      }
      const double estimate = capacity_ema_[i].has_value() ? capacity_ema_[i].value() : -1.0;
      const bool outlier =
          !WithinOutlierBand(sample.vcpu_capacity, estimate, config_.robust.outlier_ratio);
      // A bounded run of rejections protects the EMA from corrupted samples;
      // past the bound the sample is accepted anyway so a genuine regime
      // change (a real capacity collapse) still gets through.
      if (outlier && confidence_[i].consecutive_rejects() < config_.robust.max_consecutive_rejects) {
        confidence_[i].RecordRejected();
        continue;
      }
      confidence_[i].RecordAccepted();
    }
    last_samples_[i] = sample;
    capacity_ema_[i].Add(sample.vcpu_capacity);
  }
  if (config_.robust.enabled) {
    prev_window_end_ = now;
    for (int i = 0; i < kernel_->num_vcpus(); ++i) {
      steal_at_prev_end_[i] = kernel_->vcpu(i).StealClock(now);
    }
  }
  ++windows_completed_;
  for (auto& cb : window_callbacks_) {
    cb(window_start_, now, current_heavy_);
  }
  if (!running_) {
    return;
  }
  TimeNs next_start = window_start_ + config_.light_interval;
  TimeNs delay = std::max<TimeNs>(0, next_start - now);
  if (config_.robust.enabled && config_.robust.window_jitter > 0) {
    // Anti-evasion jitter: desync the window grid from anything a co-tenant
    // could phase-lock to. Drawn from vcap's own forked stream, so clean
    // runs (robust off) never see the draw.
    delay += rng_.UniformInt(0, config_.robust.window_jitter);
  }
  next_event_ =
      sim_->After(delay, [this, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) {
          return;
        }
        BeginWindow();
      });
}

double Vcap::CapacityOf(int cpu) const {
  VSCHED_CHECK(cpu >= 0 && cpu < static_cast<int>(capacity_ema_.size()));
  if (!capacity_ema_[cpu].has_value()) {
    return kCapacityScale;
  }
  return capacity_ema_[cpu].value();
}

double Vcap::RawCapacityOf(int cpu) const { return last_samples_[cpu].vcpu_capacity; }

double Vcap::ConfidenceOf(int cpu) const {
  VSCHED_CHECK(cpu >= 0 && cpu < static_cast<int>(confidence_.size()));
  if (!config_.robust.enabled) {
    return 1.0;
  }
  return confidence_[cpu].confidence();
}

double Vcap::MedianConfidence() const {
  if (!config_.robust.enabled) {
    return 1.0;
  }
  std::vector<double> scores;
  for (int i = 0; i < static_cast<int>(confidence_.size()); ++i) {
    if (!skip_mask_.Test(i)) {
      scores.push_back(confidence_[i].confidence());
    }
  }
  if (scores.empty()) {
    return 1.0;
  }
  std::sort(scores.begin(), scores.end());
  return scores[(scores.size() - 1) / 2];
}

double Vcap::MedianCapacity() const {
  std::vector<double> caps;
  for (int i = 0; i < static_cast<int>(capacity_ema_.size()); ++i) {
    if (!skip_mask_.Test(i) && capacity_ema_[i].has_value()) {
      caps.push_back(capacity_ema_[i].value());
    }
  }
  if (caps.empty()) {
    return kCapacityScale;
  }
  std::sort(caps.begin(), caps.end());
  return caps[(caps.size() - 1) / 2];
}

}  // namespace vsched
