#include "src/probe/vact.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/fault/fault_injector.h"
#include "src/guest/guest_kernel.h"
#include "src/sim/simulation.h"

namespace vsched {

Vact::Vact(GuestKernel* kernel, VactConfig config)
    : kernel_(kernel), sim_(kernel->sim()), config_(config) {
  int n = kernel_->num_vcpus();
  heartbeat_.assign(n, 0);
  last_tick_steal_.assign(n, 0);
  became_active_at_.assign(n, 0);
  window_preempts_.assign(n, 0);
  last_window_preempts_.assign(n, 0);
  window_start_steal_.assign(n, 0);
  window_drops_.assign(n, 0);
  window_ticks_.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    latency_ema_.push_back(Ema::WithHalfLife(config_.ema_half_life_windows));
    active_period_ema_.push_back(Ema::WithHalfLife(config_.ema_half_life_windows));
    confidence_.emplace_back(config_.robust.confidence_window);
  }
}

void Vact::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  if (!hook_installed_) {
    hook_installed_ = true;
    kernel_->AddTickHook([this, alive = std::weak_ptr<const bool>(alive_)](
                             GuestVcpu* v, TimeNs now) {
      if (alive.expired()) {
        return;
      }
      if (running_) {
        OnTick(v, now);
      }
    });
  }
  TimeNs now = sim_->now();
  window_start_ = now;
  for (int i = 0; i < kernel_->num_vcpus(); ++i) {
    window_start_steal_[i] = kernel_->vcpu(i).StealClock(now);
    last_tick_steal_[i] = window_start_steal_[i];
    heartbeat_[i] = now;
    became_active_at_[i] = now;
  }
  window_event_ = sim_->After(
      config_.update_interval, [this, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) {
          return;
        }
        OnWindowEnd();
      });
}

void Vact::Stop() {
  running_ = false;
  // Cancel rather than let the event fire into a possibly-destroyed prober
  // (fleet tenants tear their whole stack down mid-simulation). EventIds are
  // generation-tagged, so cancelling an already-fired event is a no-op.
  sim_->Cancel(window_event_);
}

void Vact::OnTick(GuestVcpu* v, TimeNs now) {
  int cpu = v->index();
  heartbeat_[cpu] = now;
  ++window_ticks_[cpu];
  FaultInjector* injector = kernel_->fault_injector();
  // vsched-lint: allow(fault-injection-point) — registered kVactTick site
  if (injector != nullptr && injector->DropSample(ProbePoint::kVactTick)) {
    // The tick ran (heartbeat updated) but its steal reading was lost; the
    // jump accumulates into the next surviving tick.
    ++window_drops_[cpu];
    return;
  }
  TimeNs steal = v->StealClock(now);
  TimeNs jump = steal - last_tick_steal_[cpu];
  last_tick_steal_[cpu] = steal;
  if (jump >= config_.steal_jump_threshold) {
    ++window_preempts_[cpu];
    // The vCPU was preempted for (approximately) `jump` and has just been
    // rescheduled: record the state change.
    became_active_at_[cpu] = now;
  }
}

void Vact::OnWindowEnd() {
  if (!running_) {
    return;
  }
  TimeNs now = sim_->now();
  double window = static_cast<double>(now - window_start_);
  for (int i = 0; i < kernel_->num_vcpus(); ++i) {
    TimeNs steal_now = kernel_->vcpu(i).StealClock(now);
    double steal = static_cast<double>(steal_now - window_start_steal_[i]);
    window_start_steal_[i] = steal_now;
    int preempts = window_preempts_[i];
    last_window_preempts_[i] = preempts;
    window_preempts_[i] = 0;
    bool updated = false;
    bool subthreshold = false;
    if (preempts > 0) {
      latency_ema_[i].Add(steal / preempts);
      active_period_ema_[i].Add(std::max(0.0, window - steal) / preempts);
      updated = true;
    } else if (steal >= 0.95 * window) {
      // Inactive essentially the whole window (no tick ever ran): the
      // latency is at least the window length.
      latency_ema_[i].Add(window);
      updated = true;
    } else if (steal <= 0.01 * window) {
      // Effectively dedicated in this window.
      latency_ema_[i].Add(0.0);
      active_period_ema_[i].Add(window);
      updated = true;
    } else if (config_.robust.enabled &&
               steal >= config_.robust.subthreshold_steal_frac * window) {
      // Sub-threshold theft: substantial steal with zero qualified jumps can
      // only come from per-tick slices below the jump threshold — the
      // cycle-stealer signature. Attribute the steal to one slice per
      // surviving tick so the estimate tracks the theft instead of going
      // stale, and score the window as suspicious.
      const int slices = std::max(1, window_ticks_[i] - window_drops_[i]);
      latency_ema_[i].Add(steal / slices);
      active_period_ema_[i].Add(std::max(0.0, window - steal) / slices);
      updated = true;
      subthreshold = true;
      ++subthreshold_windows_;
    }
    // Otherwise: mixed window without qualified jumps; keep the estimate.
    if (config_.robust.enabled) {
      int drops = window_drops_[i];
      int survivors = window_ticks_[i] - drops;
      if (subthreshold) {
        // Counted above; the data is self-consistent but the pattern is
        // adversarial — depress confidence so the degradation paths (IVH
        // pause, BVS fallback) engage while the theft persists.
        confidence_[i].RecordRejected();
      } else if (drops > survivors) {
        // Most tick samples were lost this window: the preempt count (and
        // hence any estimate derived from it) rests on starved data, however
        // the window ended up classified.
        confidence_[i].RecordDropped();
      } else if (updated) {
        confidence_[i].RecordAccepted();
      } else if (drops > 0) {
        confidence_[i].RecordDropped();
      } else {
        confidence_[i].RecordRejected();  // stale: mixed window, no update
      }
    }
    window_drops_[i] = 0;
    window_ticks_[i] = 0;
  }
  ++windows_completed_;
  window_start_ = now;
  window_event_ = sim_->After(
      config_.update_interval, [this, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) {
          return;
        }
        OnWindowEnd();
      });
}

double Vact::LatencyOf(int cpu) const {
  VSCHED_CHECK(cpu >= 0 && cpu < static_cast<int>(latency_ema_.size()));
  return latency_ema_[cpu].has_value() ? latency_ema_[cpu].value() : 0.0;
}

double Vact::ActivePeriodOf(int cpu) const {
  return active_period_ema_[cpu].has_value() ? active_period_ema_[cpu].value()
                                             : static_cast<double>(config_.update_interval);
}

double Vact::MedianLatency() const {
  std::vector<double> v;
  for (const Ema& e : latency_ema_) {
    if (e.has_value()) {
      v.push_back(e.value());
    }
  }
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  return v[(v.size() - 1) / 2];
}

double Vact::ConfidenceOf(int cpu) const {
  VSCHED_CHECK(cpu >= 0 && cpu < static_cast<int>(confidence_.size()));
  if (!config_.robust.enabled) {
    return 1.0;
  }
  return confidence_[cpu].confidence();
}

double Vact::MedianConfidence() const {
  if (!config_.robust.enabled) {
    return 1.0;
  }
  std::vector<double> scores;
  scores.reserve(confidence_.size());
  for (const ConfidenceTracker& t : confidence_) {
    scores.push_back(t.confidence());
  }
  if (scores.empty()) {
    return 1.0;
  }
  std::sort(scores.begin(), scores.end());
  return scores[(scores.size() - 1) / 2];
}

VcpuStateView Vact::QueryState(int cpu) const {
  VcpuStateView view;
  TimeNs now = sim_->now();
  TimeNs staleness = now - heartbeat_[cpu];
  TimeNs limit = config_.inactive_after_ticks * kernel_->params().tick_period;
  if (staleness > limit) {
    view.inactive = true;
    view.since = heartbeat_[cpu];
  } else {
    view.inactive = false;
    view.since = became_active_at_[cpu];
  }
  return view;
}

}  // namespace vsched
