// A single vtop measurement: cache-line transfer probing between two vCPUs
// (§3.1, Figure 7).
//
// Two high-priority prober tasks pinned to the target vCPUs ping-pong a
// cache line. Transfers only complete while both probers are executing
// simultaneously; otherwise the running prober spins, accruing attempts.
// Stacked vCPUs never run simultaneously, so the probe times out with ~zero
// transfers and reports infinite latency. The timeout is extended when few
// transfers were observed, to avoid misidentifying busy-but-unstacked pairs.
#ifndef SRC_PROBE_PAIR_PROBE_H_
#define SRC_PROBE_PAIR_PROBE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "src/base/time.h"
#include "src/guest/task.h"
#include "src/probe/robust.h"
#include "src/sim/timer_wheel.h"

namespace vsched {

class GuestKernel;
class Simulation;

struct PairProbeConfig {
  int target_transfers = 500;      // Table 1
  int timeout_attempts = 15000;    // Table 1
  int max_extensions = 3;          // timeout doublings before giving up
  int min_transfers_for_latency = 10;
  TimeNs attempt_period = UsToNs(1);  // one spin attempt per µs
  TimeNs sample_quantum = UsToNs(10);
  double noise = 0.08;  // multiplicative measurement jitter
  // Robust latency estimation under fault injection: the reported latency
  // becomes the median of the first observations instead of the minimum
  // (a single corrupted-low sample would otherwise fake an SMT sibling).
  ProbeRobustConfig robust;
};

inline constexpr double kInfiniteLatency = std::numeric_limits<double>::infinity();

struct PairProbeResult {
  int cpu_a = -1;
  int cpu_b = -1;
  double latency_ns = kInfiniteLatency;  // infinite → stacked
  double transfers = 0;
  TimeNs duration = 0;
  int extensions = 0;
  // Fraction of this probe's transfer observations that survived fault
  // injection; 1.0 on clean runs (and for stacking verdicts, which rest on
  // the absence of transfers rather than on latency samples).
  double confidence = 1.0;
};

class PairProbe {
 public:
  using DoneCallback = std::function<void(const PairProbeResult&)>;

  PairProbe(GuestKernel* kernel, int cpu_a, int cpu_b, PairProbeConfig config, DoneCallback done);
  ~PairProbe();

  PairProbe(const PairProbe&) = delete;
  PairProbe& operator=(const PairProbe&) = delete;

  void Start();
  bool done() const { return done_reported_; }

  // True once the probe finished AND both spin tasks exited — only then may
  // the probe (which owns the behaviors) be destroyed.
  bool CanDestroy() const;

 private:
  class SpinBehavior;

  void Sample();
  void Finish(double latency);

  GuestKernel* kernel_;
  Simulation* sim_;
  int cpu_a_;
  int cpu_b_;
  PairProbeConfig config_;
  DoneCallback done_;

  std::unique_ptr<SpinBehavior> behavior_a_;
  std::unique_ptr<SpinBehavior> behavior_b_;
  Task* prober_a_ = nullptr;
  Task* prober_b_ = nullptr;

  TimeNs started_at_ = 0;
  double transfers_ = 0;
  double attempts_ = 0;
  double current_timeout_ = 0;
  int extensions_ = 0;
  double min_latency_seen_ = kInfiniteLatency;
  // First observations (bounded), for the robust median estimate.
  std::vector<double> observations_;
  uint64_t samples_kept_ = 0;
  uint64_t samples_dropped_ = 0;
  bool done_reported_ = false;
  // Sampling runs every sample_quantum for the probe's whole life — a wheel
  // timer registered once and re-armed in place instead of a fresh heap
  // event per quantum (vtop probes account for millions of samples per run).
  TimerId sample_timer_ = kInvalidTimerId;

  // Liveness token for posted event closures (the PR-6 pattern, enforced by
  // vsched-lint's event-lifetime rule). Must be the last member so it
  // expires first during destruction.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace vsched

#endif  // SRC_PROBE_PAIR_PROBE_H_
