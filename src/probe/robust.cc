#include "src/probe/robust.h"

#include "src/base/check.h"

namespace vsched {

namespace {
constexpr double kAcceptedScore = 1.0;
constexpr double kRejectedScore = 0.25;
constexpr double kDroppedScore = 0.0;
}  // namespace

ConfidenceTracker::ConfidenceTracker(int window) {
  VSCHED_CHECK(window > 0);
  ring_.assign(static_cast<size_t>(window), 0.0);
}

void ConfidenceTracker::Push(double score) {
  ring_[next_] = score;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  }
}

void ConfidenceTracker::RecordAccepted() {
  Push(kAcceptedScore);
  consecutive_rejects_ = 0;
  ++accepted_;
}

void ConfidenceTracker::RecordRejected() {
  Push(kRejectedScore);
  ++consecutive_rejects_;
  ++rejected_;
}

void ConfidenceTracker::RecordDropped() {
  // A drop is absence of data, not an outlier: it lowers confidence but
  // neither extends nor resets the rejection streak that gates the
  // regime-change override.
  Push(kDroppedScore);
  ++dropped_;
}

void ConfidenceTracker::Reset() {
  next_ = 0;
  count_ = 0;
  consecutive_rejects_ = 0;
}

double ConfidenceTracker::confidence() const {
  if (count_ == 0) {
    return 1.0;
  }
  double sum = 0.0;
  for (size_t i = 0; i < count_; ++i) {
    sum += ring_[i];
  }
  return sum / static_cast<double>(count_);
}

bool WithinOutlierBand(double sample, double estimate, double ratio) {
  if (estimate <= 0.0 || sample <= 0.0) {
    return true;
  }
  return sample <= estimate * ratio && sample * ratio >= estimate;
}

}  // namespace vsched
