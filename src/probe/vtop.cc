#include "src/probe/vtop.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/base/log.h"
#include "src/guest/guest_kernel.h"
#include "src/sim/simulation.h"

namespace vsched {

Vtop::Vtop(GuestKernel* kernel, VtopConfig config)
    : kernel_(kernel), sim_(kernel->sim()), config_(config), n_(kernel->num_vcpus()) {
  if (config_.robust.enabled) {
    // Individual pair probes inherit the robust settings so they report
    // per-probe confidence and use the median latency estimator.
    config_.pair.robust = config_.robust;
    // Forked only on the robust path: clean runs must not perturb the
    // simulation's RNG fork order (byte-identity with pre-robust builds).
    rng_.emplace(sim_->ForkRng());
  }
  matrix_.assign(n_, std::vector<double>(n_, -1.0));
  for (int i = 0; i < n_; ++i) {
    matrix_[i][i] = 0.0;
  }
  topology_ = GuestTopology::FlatUma(n_);
}

Vtop::~Vtop() { Stop(); }

void Vtop::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  OnCycle();
}

void Vtop::Stop() {
  running_ = false;
  sim_->Cancel(cycle_event_);
  cycle_event_.Invalidate();
}

void Vtop::ScheduleNextCycle() {
  if (!running_) {
    return;
  }
  TimeNs delay = config_.probe_interval;
  if (rng_.has_value() && config_.robust.window_jitter > 0) {
    // Anti-evasion jitter: a co-tenant that has learned the validation
    // cadence cannot stay quiet through a jittered cycle grid.
    delay += rng_->UniformInt(0, config_.robust.window_jitter);
  }
  cycle_event_ = sim_->After(delay, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnCycle();
  });
}

void Vtop::OnCycle() {
  if (busy_) {
    ScheduleNextCycle();
    return;
  }
  if (!has_topology_) {
    RunFullProbe([this] { ScheduleNextCycle(); });
    return;
  }
  RunValidation([this](bool ok) {
    if (ok) {
      ScheduleNextCycle();
      return;
    }
    OnValidationFailed();
  });
}

void Vtop::OnValidationFailed() {
  if (!config_.robust.enabled) {
    RunFullProbe([this] { ScheduleNextCycle(); });
    return;
  }
  // Bounded re-probe: escalate to a full probe only after an exponentially
  // growing backoff, and give up escalating once the budget is exhausted —
  // the (low-confidence) topology is kept and TopologyConfidence() lets the
  // core degrade to topology-agnostic placement instead.
  if (reprobe_count_ > config_.robust.max_reprobes) {
    ScheduleNextCycle();
    return;
  }
  ++reprobes_scheduled_;
  double scale = 1.0;
  for (int k = 1; k < reprobe_count_; ++k) {
    scale *= config_.robust.backoff_multiplier;
  }
  TimeNs delay = static_cast<TimeNs>(static_cast<double>(config_.robust.reprobe_backoff) * scale);
  cycle_event_ = sim_->After(
      delay, [this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired() || !running_) {
      return;
    }
    if (busy_) {
      ScheduleNextCycle();
      return;
    }
    RunFullProbe([this] { ScheduleNextCycle(); });
  });
}

VcpuRelation Vtop::Classify(double latency_ns) const {
  if (latency_ns < 0) {
    return VcpuRelation::kUnknown;
  }
  if (std::isinf(latency_ns)) {
    return VcpuRelation::kStacked;
  }
  if (latency_ns < config_.smt_threshold_ns) {
    return VcpuRelation::kSmtSibling;
  }
  if (latency_ns < config_.socket_threshold_ns) {
    return VcpuRelation::kSameSocket;
  }
  return VcpuRelation::kCrossSocket;
}

double Vtop::MatrixAt(int a, int b) const {
  VSCHED_CHECK(a >= 0 && a < n_ && b >= 0 && b < n_);
  return matrix_[a][b];
}

double Vtop::TopologyConfidence() const {
  if (!config_.robust.enabled) {
    return 1.0;
  }
  return confidence_ema_.has_value() ? confidence_ema_.value() : 1.0;
}

void Vtop::Record(int a, int b, double latency) {
  matrix_[a][b] = latency;
  matrix_[b][a] = latency;
}

void Vtop::SweepFinishedProbes() {
  live_probes_.erase(std::remove_if(live_probes_.begin(), live_probes_.end(),
                                    [](const std::unique_ptr<PairProbe>& p) {
                                      return p->CanDestroy();
                                    }),
                     live_probes_.end());
}

void Vtop::ProbePair(int a, int b, std::function<void(double)> cont) {
  ++pair_probes_run_;
  auto probe = std::make_unique<PairProbe>(
      kernel_, a, b, config_.pair,
      [this, a, b, cont = std::move(cont)](const PairProbeResult& result) {
        Record(a, b, result.latency_ns);
        confidence_ema_.Add(result.confidence);
        SweepFinishedProbes();
        cont(result.latency_ns);
      });
  PairProbe* raw = probe.get();
  live_probes_.push_back(std::move(probe));
  raw->Start();
}

void Vtop::RunBatch(std::vector<std::pair<int, int>> pairs, std::function<void()> cont) {
  if (pairs.empty()) {
    cont();
    return;
  }
  auto outstanding = std::make_shared<int>(static_cast<int>(pairs.size()));
  auto shared_cont = std::make_shared<std::function<void()>>(std::move(cont));
  for (auto [a, b] : pairs) {
    ProbePair(a, b, [outstanding, shared_cont](double) {
      if (--*outstanding == 0) {
        (*shared_cont)();
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Full probe
// ---------------------------------------------------------------------------

void Vtop::RunFullProbe(std::function<void()> done) {
  VSCHED_CHECK(!busy_);
  busy_ = true;
  full_done_ = std::move(done);
  full_started_ = sim_->now();
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      matrix_[i][j] = (i == j) ? 0.0 : -1.0;
    }
  }
  socket_of_.assign(n_, -1);
  groups_.clear();
  if (n_ == 1) {
    FinalizeFullProbe();
    return;
  }
  socket_of_[0] = 0;
  groups_.push_back({0});
  PhaseAStep(1, 0);
}

// Phase A: discover socket membership. Each new vCPU is probed against one
// representative per known socket group until it matches (stacked / SMT /
// same-socket), else it founds a new group.
void Vtop::PhaseAStep(int next_vcpu, int rep_index) {
  if (next_vcpu >= n_) {
    StartPhaseB();
    return;
  }
  // Inference: if this vCPU is known to stack with an already-classified
  // vCPU, copy its socket without probing.
  for (int other = 0; other < next_vcpu; ++other) {
    if (Classify(matrix_[next_vcpu][other]) == VcpuRelation::kStacked &&
        socket_of_[other] >= 0) {
      socket_of_[next_vcpu] = socket_of_[other];
      groups_[socket_of_[other]].push_back(next_vcpu);
      ++pairs_inferred_;
      PhaseAStep(next_vcpu + 1, 0);
      return;
    }
  }
  if (rep_index >= static_cast<int>(groups_.size())) {
    // No group matched: this vCPU founds a new socket group.
    socket_of_[next_vcpu] = static_cast<int>(groups_.size());
    groups_.push_back({next_vcpu});
    PhaseAStep(next_vcpu + 1, 0);
    return;
  }
  int rep = groups_[rep_index][0];
  ProbePair(rep, next_vcpu, [this, next_vcpu, rep_index](double latency) {
    VcpuRelation rel = Classify(latency);
    if (rel == VcpuRelation::kCrossSocket) {
      PhaseAStep(next_vcpu, rep_index + 1);
      return;
    }
    socket_of_[next_vcpu] = rep_index;
    groups_[rep_index].push_back(next_vcpu);
    PhaseAStep(next_vcpu + 1, 0);
  });
}

// Phase B: probe remaining intra-socket pairs, in parallel across sockets,
// sequentially within each socket, skipping pairs inferable from stacking.
void Vtop::StartPhaseB() {
  group_pending_.assign(groups_.size(), {});
  for (size_t g = 0; g < groups_.size(); ++g) {
    const std::vector<int>& members = groups_[g];
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (matrix_[members[i]][members[j]] < 0) {
          group_pending_[g].emplace_back(members[i], members[j]);
        }
      }
    }
  }
  groups_outstanding_ = static_cast<int>(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    PhaseBGroupStep(static_cast<int>(g));
  }
}

bool Vtop::TryInferFromStacking(int a, int b) {
  for (int c = 0; c < n_; ++c) {
    if (c == a || c == b) {
      continue;
    }
    if (Classify(matrix_[a][c]) == VcpuRelation::kStacked && matrix_[c][b] >= 0) {
      Record(a, b, matrix_[c][b]);
      ++pairs_inferred_;
      return true;
    }
    if (Classify(matrix_[b][c]) == VcpuRelation::kStacked && matrix_[c][a] >= 0) {
      Record(a, b, matrix_[c][a]);
      ++pairs_inferred_;
      return true;
    }
  }
  return false;
}

void Vtop::PhaseBGroupStep(int group) {
  auto& pending = group_pending_[group];
  while (!pending.empty()) {
    auto [a, b] = pending.back();
    if (matrix_[a][b] >= 0 || std::isinf(matrix_[a][b])) {
      pending.pop_back();
      continue;
    }
    if (TryInferFromStacking(a, b)) {
      pending.pop_back();
      continue;
    }
    pending.pop_back();
    ProbePair(a, b, [this, group](double) { PhaseBGroupStep(group); });
    return;
  }
  if (--groups_outstanding_ == 0) {
    FinalizeFullProbe();
  }
}

namespace {

// Tiny union-find for grouping vCPUs.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) {
      parent_[i] = i;
    }
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

void Vtop::FinalizeFullProbe() {
  // Derive the guest topology from the matrix + socket groups.
  UnionFind cores(n_);
  UnionFind stacks(n_);
  for (int a = 0; a < n_; ++a) {
    for (int b = a + 1; b < n_; ++b) {
      VcpuRelation rel = Classify(matrix_[a][b]);
      if (rel == VcpuRelation::kStacked) {
        stacks.Union(a, b);
        cores.Union(a, b);
      } else if (rel == VcpuRelation::kSmtSibling) {
        cores.Union(a, b);
      }
    }
  }
  GuestTopology topo;
  topo.smt_mask.assign(n_, CpuMask::None());
  topo.llc_mask.assign(n_, CpuMask::None());
  topo.stack_mask.assign(n_, CpuMask::None());
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (cores.Find(i) == cores.Find(j)) {
        topo.smt_mask[i].Set(j);
      }
      if (stacks.Find(i) == stacks.Find(j)) {
        topo.stack_mask[i].Set(j);
      }
      if (socket_of_[i] >= 0 && socket_of_[i] == socket_of_[j]) {
        topo.llc_mask[i].Set(j);
      }
    }
    if (topo.llc_mask[i].Empty()) {
      topo.llc_mask[i].Set(i);
    }
  }
  // Backfill skipped pairs with the distance implied by the discovered
  // structure (a representative measured latency of that class), so the
  // exported matrix is fully populated like Fig 10(b).
  double cross_rep = -1;
  for (int a = 0; a < n_; ++a) {
    for (int b = 0; b < n_; ++b) {
      if (Classify(matrix_[a][b]) == VcpuRelation::kCrossSocket) {
        cross_rep = matrix_[a][b];
      }
    }
  }
  if (cross_rep > 0) {
    for (int a = 0; a < n_; ++a) {
      for (int b = a + 1; b < n_; ++b) {
        if (matrix_[a][b] < 0 && socket_of_[a] >= 0 && socket_of_[b] >= 0 &&
            socket_of_[a] != socket_of_[b]) {
          Record(a, b, cross_rep);
          ++pairs_inferred_;
        }
      }
    }
  }
  topology_ = topo;
  has_topology_ = true;
  last_full_duration_ = sim_->now() - full_started_;
  ++full_probes_run_;
  busy_ = false;
  if (topology_callback_) {
    topology_callback_(topology_);
  }
  if (full_done_) {
    auto done = std::move(full_done_);
    full_done_ = nullptr;
    done();
  }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

void Vtop::BuildExpectations() {
  validation_batches_.clear();

  // Batch 1: one pair per stacking group — the expensive stacking
  // confirmation (explains why rcvm validates slower than hpvm, Table 2).
  std::vector<Expectation> stack_batch;
  std::vector<bool> seen(n_, false);
  for (int i = 0; i < n_; ++i) {
    if (seen[i]) {
      continue;
    }
    CpuMask group = topology_.stack_mask[i];
    for (int m : group) {
      seen[m] = true;
    }
    if (group.Count() >= 2) {
      int a = group.First();
      int b = group.NextFrom(a + 1);
      stack_batch.push_back({a, b, VcpuRelation::kStacked});
    }
  }
  if (!stack_batch.empty()) {
    validation_batches_.push_back(std::move(stack_batch));
  }

  // Batch 2: one SMT pair per core group (one representative per stack
  // subgroup; validated in parallel — groups are disjoint).
  std::vector<Expectation> smt_batch;
  std::vector<int> core_rep;  // one representative per core group
  seen.assign(n_, false);
  for (int i = 0; i < n_; ++i) {
    if (seen[i]) {
      continue;
    }
    CpuMask core_group = topology_.smt_mask[i];
    for (int m : core_group) {
      seen[m] = true;
    }
    // Representatives: one vCPU per stack subgroup within the core.
    std::vector<int> reps;
    std::vector<bool> sub_seen(n_, false);
    for (int m : core_group) {
      if (sub_seen[m]) {
        continue;
      }
      for (int s : topology_.stack_mask[m]) {
        sub_seen[s] = true;
      }
      reps.push_back(m);
    }
    if (reps.size() >= 2) {
      smt_batch.push_back({reps[0], reps[1], VcpuRelation::kSmtSibling});
    }
    core_rep.push_back(reps[0]);
  }
  if (!smt_batch.empty()) {
    validation_batches_.push_back(std::move(smt_batch));
  }

  // Batches 3/4: socket chains over core representatives, two rounds of
  // disjoint pairs (even then odd), each expecting same-socket distance.
  std::vector<std::vector<int>> socket_reps;
  for (size_t g = 0; g < groups_.size(); ++g) {
    std::vector<int> reps;
    for (int r : core_rep) {
      if (socket_of_[r] == static_cast<int>(g)) {
        reps.push_back(r);
      }
    }
    if (!reps.empty()) {
      socket_reps.push_back(std::move(reps));
    }
  }
  std::vector<Expectation> even_batch;
  std::vector<Expectation> odd_batch;
  for (const auto& reps : socket_reps) {
    for (size_t k = 0; k + 1 < reps.size(); k += 2) {
      even_batch.push_back({reps[k], reps[k + 1], VcpuRelation::kSameSocket});
    }
    for (size_t k = 1; k + 1 < reps.size(); k += 2) {
      odd_batch.push_back({reps[k], reps[k + 1], VcpuRelation::kSameSocket});
    }
  }
  if (!even_batch.empty()) {
    validation_batches_.push_back(std::move(even_batch));
  }
  if (!odd_batch.empty()) {
    validation_batches_.push_back(std::move(odd_batch));
  }

  // Batch 5: consecutive socket representatives expect cross-socket.
  std::vector<Expectation> cross_batch;
  for (size_t g = 0; g + 1 < socket_reps.size(); ++g) {
    cross_batch.push_back({socket_reps[g][0], socket_reps[g + 1][0], VcpuRelation::kCrossSocket});
  }
  if (!cross_batch.empty()) {
    validation_batches_.push_back(std::move(cross_batch));
  }
}

void Vtop::RunValidation(std::function<void(bool)> done) {
  VSCHED_CHECK(!busy_);
  VSCHED_CHECK(has_topology_);
  busy_ = true;
  validate_done_ = std::move(done);
  validate_started_ = sim_->now();
  validation_ok_ = true;
  BuildExpectations();
  ValidationBatchStep(0);
}

void Vtop::ValidationBatchStep(size_t batch_index) {
  if (batch_index >= validation_batches_.size() || !validation_ok_) {
    last_validate_duration_ = sim_->now() - validate_started_;
    ++validations_run_;
    busy_ = false;
    auto done = std::move(validate_done_);
    validate_done_ = nullptr;
    bool ok = validation_ok_;
    confidence_ema_.Add(ok ? 1.0 : 0.0);
    if (ok) {
      reprobe_count_ = 0;
    } else {
      ++reprobe_count_;
    }
    if (done) {
      done(ok);
    }
    return;
  }
  const std::vector<Expectation>& batch = validation_batches_[batch_index];
  auto outstanding = std::make_shared<int>(static_cast<int>(batch.size()));
  for (const Expectation& e : batch) {
    VcpuRelation expect = e.expect;
    ProbePair(e.a, e.b, [this, expect, outstanding, batch_index, a = e.a, b = e.b](double lat) {
      if (Classify(lat) != expect) {
        validation_ok_ = false;
        VSCHED_LOG(kInfo) << "vtop validation mismatch on pair (" << a << "," << b << ")";
      }
      if (--*outstanding == 0) {
        ValidationBatchStep(batch_index + 1);
      }
    });
  }
}

}  // namespace vsched
