// Shared robustness primitives for the vProbers.
//
// Under host-side fault injection (src/fault/) probe samples can be dropped
// or corrupted. Each prober screens its raw samples through an outlier
// filter and feeds the accept/reject/drop outcomes into a ConfidenceTracker;
// consumers (src/core/) read the resulting confidence score and fall back to
// pessimistic behaviour when it drops below ProbeRobustConfig::low_confidence
// instead of acting on garbage measurements.
//
// Everything here is deterministic: trackers are pure functions of the
// outcome sequence, and the config is plain data. When `enabled` is false
// (the default) probers take their original code paths bit-for-bit.
#ifndef SRC_PROBE_ROBUST_H_
#define SRC_PROBE_ROBUST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/time.h"

namespace vsched {

struct ProbeRobustConfig {
  // Master switch. Off by default so clean runs are byte-identical to a
  // build without the robustness layer.
  bool enabled = false;

  // A sample more than `outlier_ratio`× above or below the current estimate
  // is rejected as an outlier (vcap capacities, pair-probe latencies).
  double outlier_ratio = 4.0;

  // After this many consecutive rejections the next sample is accepted
  // unconditionally: a genuine regime change looks like a run of outliers,
  // and the filter must not wedge on the stale estimate forever.
  int max_consecutive_rejects = 3;

  // Confidence is the mean outcome score over this many recent windows.
  int confidence_window = 8;

  // Below this confidence the consumer takes its documented fallback path
  // (pessimistic capacity, topology-agnostic placement, harvest pause).
  double low_confidence = 0.5;

  // vtop: bounded re-probe with exponential backoff after a failed
  // validation or an unusable full probe.
  int max_reprobes = 3;
  TimeNs reprobe_backoff = MsToNs(50);
  double backoff_multiplier = 2.0;

  // ---- Anti-evasion hardening (adversarial co-tenants, src/adversary/) ----
  // These counter tenants that *time* their activity against the probe grid
  // rather than merely corrupting samples. All are inert while `enabled` is
  // false, and none of them draws randomness on the clean path.

  // Seeded jitter added to each probe window / validation-cycle start so an
  // attacker cannot phase-lock against a predictable grid. Drawn from the
  // prober's own forked RNG stream; 0 disables.
  TimeNs window_jitter = MsToNs(7);

  // Duty-cycle plausibility (vcap): a capacity window whose in-window steal
  // fraction undercuts the steal fraction observed *between* windows by more
  // than this gap is implausible — the probe-evader signature. The sample is
  // replaced by the corroborated off-window view and scored as rejected.
  double plausibility_gap = 0.20;

  // Sub-threshold-theft plausibility (vact): a window with at least this
  // steal fraction but zero qualified preemption jumps is attributed to
  // per-tick theft slices below the jump threshold instead of being treated
  // as "no information".
  double subthreshold_steal_frac = 0.05;

  // Quarantine: consecutive implausible windows before a vCPU is
  // quarantined (pessimistic publish + kQuarantine degradation state), and
  // consecutive plausible windows before it is released.
  int quarantine_streak = 3;
  int quarantine_release = 4;
};

// Sliding-window confidence score built from per-sample outcomes.
// accepted → 1.0, rejected (outlier) → 0.25, dropped (no sample) → 0.0.
// confidence() is the mean over the last `window` outcomes and 1.0 while
// empty, so consumers start trusting and only degrade on evidence.
class ConfidenceTracker {
 public:
  explicit ConfidenceTracker(int window = 8);

  void RecordAccepted();
  void RecordRejected();
  void RecordDropped();
  void Reset();

  double confidence() const;
  int consecutive_rejects() const { return consecutive_rejects_; }

  uint64_t accepted() const { return accepted_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t dropped() const { return dropped_; }

 private:
  void Push(double score);

  std::vector<double> ring_;
  size_t next_ = 0;
  size_t count_ = 0;
  int consecutive_rejects_ = 0;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t dropped_ = 0;
};

// True when `sample` is within a factor of `ratio` of `estimate`. Both
// values must be positive for the test to be meaningful; non-positive
// estimates accept everything (there is nothing to compare against yet).
bool WithinOutlierBand(double sample, double estimate, double ratio);

}  // namespace vsched

#endif  // SRC_PROBE_ROBUST_H_
