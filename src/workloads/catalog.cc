#include "src/workloads/catalog.h"

#include <map>

#include "src/base/check.h"
#include "src/guest/guest_kernel.h"
#include "src/workloads/latency_app.h"
#include "src/workloads/micro.h"
#include "src/workloads/throughput_app.h"

namespace vsched {
namespace {

// Parameter shapes for the barrier-style applications (chunk mean,
// imbalance cv, communication lines per barrier). Chunk sizes distinguish
// synchronization-intensive applications (streamcluster, canneal) from
// coarse-grained scientific ones (facesim, barnes).
struct BarrierShape {
  TimeNs chunk;
  double cv;
  int comm;
};

const std::map<std::string, BarrierShape>& BarrierShapes() {
  static const std::map<std::string, BarrierShape> shapes = {
      {"bodytrack", {MsToNs(2), 0.3, 200}},
      {"canneal", {UsToNs(500), 0.4, 600}},
      {"facesim", {MsToNs(5), 0.2, 400}},
      {"fluidanimate", {MsToNs(1), 0.2, 400}},
      {"streamcluster", {UsToNs(200), 0.3, 800}},
      {"barnes", {MsToNs(2), 0.3, 300}},
      {"fft", {MsToNs(1), 0.1, 1000}},
      {"lu_cb", {UsToNs(800), 0.15, 300}},
      {"lu_ncb", {UsToNs(800), 0.25, 600}},
      {"ocean_cp", {UsToNs(1500), 0.2, 600}},
      {"ocean_ncp", {UsToNs(1500), 0.25, 1200}},
      {"radix", {UsToNs(600), 0.15, 500}},
      {"volrend", {MsToNs(1), 0.4, 300}},
      {"water_spatial", {MsToNs(2), 0.2, 300}},
      {"radiosity", {MsToNs(3), 0.5, 300}},
  };
  return shapes;
}

struct TaskParallelShape {
  TimeNs chunk;
  double cv;
};

const std::map<std::string, TaskParallelShape>& TaskParallelShapes() {
  static const std::map<std::string, TaskParallelShape> shapes = {
      {"blackscholes", {MsToNs(8), 0.1}},
      {"swaptions", {MsToNs(10), 0.2}},
      {"freqmine", {MsToNs(5), 0.3}},
      {"raytrace", {MsToNs(4), 0.4}},
      {"x264", {MsToNs(1), 0.3}},
      {"matmul", {MsToNs(10), 0.05}},
      {"sysbench", {UsToNs(100), 0.02}},
  };
  return shapes;
}

// Latency-sensitive services: per-request demand and its variability
// (Tailbench characterization: silo tiny, masstree small, img-dnn/specjbb
// medium, xapian/moses/shore larger, sphinx long).
struct ServiceShape {
  TimeNs service;
  double cv;
};

const std::map<std::string, ServiceShape>& ServiceShapes() {
  static const std::map<std::string, ServiceShape> shapes = {
      {"img-dnn", {UsToNs(1200), 0.2}},
      {"masstree", {UsToNs(350), 0.3}},
      {"silo", {UsToNs(40), 0.3}},
      {"specjbb", {UsToNs(1000), 0.4}},
      {"xapian", {UsToNs(3000), 0.6}},
      {"moses", {UsToNs(6000), 0.4}},
      {"shore", {UsToNs(1500), 0.5}},
      {"sphinx", {MsToNs(25), 0.3}},
      {"nginx", {UsToNs(150), 0.3}},
  };
  return shapes;
}

}  // namespace

const std::vector<CatalogEntry>& Catalog() {
  static const std::vector<CatalogEntry> entries = [] {
    std::vector<CatalogEntry> v;
    for (const auto& [name, shape] : BarrierShapes()) {
      (void)shape;
      v.push_back({name, MetricKind::kThroughput, false});
    }
    for (const auto& [name, shape] : TaskParallelShapes()) {
      (void)shape;
      v.push_back({name, MetricKind::kThroughput, false});
    }
    for (const auto& [name, shape] : ServiceShapes()) {
      (void)shape;
      v.push_back({name, name != "nginx" ? MetricKind::kP95Latency : MetricKind::kThroughput,
                   name != "nginx"});
    }
    v.push_back({"dedup", MetricKind::kThroughput, false});
    v.push_back({"pbzip2", MetricKind::kThroughput, false});
    v.push_back({"ferret", MetricKind::kThroughput, false});
    v.push_back({"hackbench", MetricKind::kThroughput, false});
    v.push_back({"fio", MetricKind::kThroughput, false});
    v.push_back({"selfmig", MetricKind::kThroughput, false});
    return v;
  }();
  return entries;
}

std::vector<std::string> Fig18WorkloadNames() {
  // The paper's Figure 18/19 x-axis, left to right.
  return {
      // Throughput-oriented: Parsec…
      "blackscholes", "bodytrack", "canneal", "dedup", "facesim", "fluidanimate", "freqmine",
      "streamcluster", "swaptions", "x264",
      // …Splash-2x…
      "barnes", "fft", "lu_cb", "lu_ncb", "ocean_cp", "ocean_ncp", "radiosity", "radix",
      "raytrace", "volrend", "water_spatial",
      // …and servers/utilities.
      "pbzip2", "nginx",
      // Latency-sensitive.
      "img-dnn", "moses", "masstree", "silo", "shore", "specjbb", "sphinx", "xapian"};
}

MetricKind MetricFor(const std::string& name) {
  for (const CatalogEntry& e : Catalog()) {
    if (e.name == name) {
      return e.metric;
    }
  }
  return MetricKind::kThroughput;
}

LatencyAppParams LatencyParamsFor(const std::string& name, int workers, double load_factor) {
  auto it = ServiceShapes().find(name);
  VSCHED_CHECK_MSG(it != ServiceShapes().end(), "not a latency-sensitive service");
  LatencyAppParams p;
  p.name = name;
  p.workers = workers;
  p.service_mean = it->second.service;
  p.service_cv = it->second.cv;
  p.arrival_rate_per_sec =
      load_factor * static_cast<double>(workers) * 1e9 / static_cast<double>(it->second.service);
  return p;
}

std::unique_ptr<Workload> MakeWorkload(GuestKernel* kernel, const std::string& name, int threads,
                                       CpuMask allowed) {
  VSCHED_CHECK(threads > 0);
  if (auto it = BarrierShapes().find(name); it != BarrierShapes().end()) {
    BarrierAppParams p;
    p.name = name;
    p.threads = threads;
    p.chunk_mean = it->second.chunk;
    p.chunk_cv = it->second.cv;
    p.comm_lines = it->second.comm;
    p.allowed = allowed;
    return std::make_unique<BarrierApp>(kernel, p);
  }
  if (auto it = TaskParallelShapes().find(name); it != TaskParallelShapes().end()) {
    TaskParallelParams p;
    p.name = name;
    p.threads = threads;
    p.chunk_mean = it->second.chunk;
    p.chunk_cv = it->second.cv;
    p.allowed = allowed;
    return std::make_unique<TaskParallelApp>(kernel, p);
  }
  if (auto it = ServiceShapes().find(name); it != ServiceShapes().end()) {
    LatencyAppParams p;
    p.name = name;
    p.workers = threads;
    p.service_mean = it->second.service;
    p.service_cv = it->second.cv;
    // Offered load ≈ 15% of one worker-vCPU per worker: light enough that
    // runqueue latency (not queueing for workers) dominates, as in §2.3.
    p.arrival_rate_per_sec =
        0.15 * static_cast<double>(threads) * 1e9 / static_cast<double>(it->second.service);
    p.allowed = allowed;
    if (name == "nginx") {
      p.arrival_rate_per_sec =
          0.35 * static_cast<double>(threads) * 1e9 / static_cast<double>(it->second.service);
      p.report_interval = MsToNs(100);
      // Connection state: ~22% of the service cost when fetched cross-socket.
      p.connections = 4 * threads;
      p.comm_lines = 300;
    }
    return std::make_unique<LatencyApp>(kernel, p);
  }
  if (name == "dedup" || name == "ferret" || name == "pbzip2") {
    PipelineAppParams p;
    p.name = name;
    int per_stage = std::max(1, threads / 3);
    if (name == "dedup") {
      p.stages = {{per_stage, UsToNs(400), 0.3},
                  {per_stage, UsToNs(800), 0.4},
                  {per_stage, UsToNs(300), 0.3}};
      p.comm_lines = 2000;
    } else if (name == "ferret") {
      p.stages = {{per_stage, UsToNs(500), 0.3},
                  {per_stage, MsToNs(2), 0.4},
                  {per_stage, UsToNs(500), 0.3}};
      p.comm_lines = 1200;
    } else {  // pbzip2
      p.stages = {{std::max(1, threads / 4), UsToNs(300), 0.2},
                  {std::max(1, threads / 2), MsToNs(5), 0.2},
                  {std::max(1, threads / 4), UsToNs(300), 0.2}};
      p.comm_lines = 2400;
    }
    p.window = std::max(2, threads / 3);
    p.allowed = allowed;
    return std::make_unique<PipelineApp>(kernel, p);
  }
  if (name == "hackbench") {
    HackbenchParams p;
    p.groups = std::max(1, threads / 8);
    p.pairs_per_group = 4;
    p.allowed = allowed;
    return std::make_unique<Hackbench>(kernel, p);
  }
  if (name == "fio") {
    FioParams p;
    p.threads = threads;
    p.allowed = allowed;
    return std::make_unique<Fio>(kernel, p);
  }
  if (name == "selfmig") {
    SelfMigratingParams p;
    p.allowed = allowed;
    return std::make_unique<SelfMigratingTask>(kernel, p);
  }
  VSCHED_CHECK_MSG(false, ("unknown workload: " + name).c_str());
  return nullptr;
}

}  // namespace vsched
