// Throughput-oriented application models: barrier-synchronized data
// parallelism (most Parsec/Splash-2x analogues), pipeline parallelism
// (dedup, ferret, pbzip2, x264), and independent task parallelism
// (blackscholes, swaptions, raytrace).
//
// Communication cost is modelled explicitly: synchronizing or handing an
// item to another thread charges the receiver extra work proportional to
// the cache-line transfer latency between the two vCPUs' current hardware
// threads (the Fig 13 LLC effect).
#ifndef SRC_WORKLOADS_THROUGHPUT_APP_H_
#define SRC_WORKLOADS_THROUGHPUT_APP_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/guest/cpumask.h"
#include "src/guest/task.h"
#include "src/sim/rng.h"
#include "src/workloads/workload.h"

namespace vsched {

class GuestKernel;
class Simulation;

// ---------------------------------------------------------------------------
// BarrierApp: iterations of (chunk, barrier) across T threads.
// ---------------------------------------------------------------------------

struct BarrierAppParams {
  std::string name = "barrier-app";
  int threads = 4;
  // Mean exclusive execution per thread per iteration, and its imbalance.
  TimeNs chunk_mean = MsToNs(1);
  double chunk_cv = 0.2;
  // Cache lines exchanged with the barrier master at each barrier.
  int comm_lines = 0;
  // Stop after this many iterations (0 → run until Stop()).
  int max_iterations = 0;
  CpuMask allowed = CpuMask(~0ULL);
  TaskPolicy policy = TaskPolicy::kNormal;
};

class BarrierApp : public Workload {
 public:
  BarrierApp(GuestKernel* kernel, BarrierAppParams params);
  ~BarrierApp() override;

  const std::string& name() const override { return params_.name; }
  void Start() override;
  void Stop() override;
  void ResetStats() override;
  WorkloadResult Result() const override;

  int iterations_done() const { return iterations_done_; }
  bool finished() const { return finished_; }
  TimeNs finish_time() const { return finish_time_; }

 private:
  class ThreadBehavior;

  GuestKernel* kernel_;
  Simulation* sim_;
  BarrierAppParams params_;
  Rng rng_;
  bool running_ = false;
  bool finished_ = false;

  std::vector<std::unique_ptr<ThreadBehavior>> behaviors_;
  std::vector<Task*> tasks_;
  int arrived_ = 0;
  int iterations_done_ = 0;
  int iterations_at_reset_ = 0;
  TimeNs measure_start_ = 0;
  TimeNs finish_time_ = 0;
};

// ---------------------------------------------------------------------------
// PipelineApp: stages with queues; items flow source → ... → sink.
// ---------------------------------------------------------------------------

struct PipelineStageParams {
  int workers = 1;
  TimeNs work_mean = MsToNs(1);
  double work_cv = 0.2;
};

struct PipelineAppParams {
  std::string name = "pipeline-app";
  std::vector<PipelineStageParams> stages;
  // Items in flight at once (closed loop): the source injects a new item
  // whenever one leaves the pipeline, keeping `window` outstanding.
  int window = 8;
  // Cache lines handed over between stages.
  int comm_lines = 16;
  int max_items = 0;  // 0 → run until Stop()
  CpuMask allowed = CpuMask(~0ULL);
  TaskPolicy policy = TaskPolicy::kNormal;
};

class PipelineApp : public Workload {
 public:
  PipelineApp(GuestKernel* kernel, PipelineAppParams params);
  ~PipelineApp() override;

  const std::string& name() const override { return params_.name; }
  void Start() override;
  void Stop() override;
  void ResetStats() override;
  WorkloadResult Result() const override;

  uint64_t items_done() const { return items_done_; }

 private:
  class StageWorkerBehavior;
  struct Item {
    int from_cpu = -1;  // vCPU of the producing stage worker
  };

  void Inject();
  void Deliver(int stage, Item item);

  GuestKernel* kernel_;
  Simulation* sim_;
  PipelineAppParams params_;
  Rng rng_;
  bool running_ = false;

  std::vector<std::unique_ptr<StageWorkerBehavior>> behaviors_;
  // Per stage: worker tasks, idle worker list, input queue.
  std::vector<std::vector<Task*>> stage_tasks_;
  std::vector<Task*> all_tasks_;  // indexed by global behavior index
  std::vector<std::vector<int>> stage_idle_;  // global behavior indices
  std::vector<std::deque<Item>> stage_queue_;

  uint64_t items_done_ = 0;
  uint64_t injected_ = 0;
  TimeNs measure_start_ = 0;
};

// ---------------------------------------------------------------------------
// TaskParallelApp: independent chunks from a shared pool, no sync.
// ---------------------------------------------------------------------------

struct TaskParallelParams {
  std::string name = "taskparallel-app";
  int threads = 4;
  TimeNs chunk_mean = MsToNs(5);
  double chunk_cv = 0.3;
  int max_chunks = 0;  // 0 → unbounded until Stop()
  CpuMask allowed = CpuMask(~0ULL);
  TaskPolicy policy = TaskPolicy::kNormal;
};

class TaskParallelApp : public Workload {
 public:
  TaskParallelApp(GuestKernel* kernel, TaskParallelParams params);
  ~TaskParallelApp() override;

  const std::string& name() const override { return params_.name; }
  void Start() override;
  void Stop() override;
  void ResetStats() override;
  WorkloadResult Result() const override;

  uint64_t chunks_done() const { return chunks_done_; }
  const std::vector<Task*>& tasks() const { return tasks_; }

 private:
  class ThreadBehavior;

  GuestKernel* kernel_;
  Simulation* sim_;
  TaskParallelParams params_;
  Rng rng_;
  bool running_ = false;

  std::vector<std::unique_ptr<ThreadBehavior>> behaviors_;
  std::vector<Task*> tasks_;
  uint64_t chunks_done_ = 0;
  uint64_t chunks_issued_ = 0;
  TimeNs measure_start_ = 0;
};

}  // namespace vsched

#endif  // SRC_WORKLOADS_THROUGHPUT_APP_H_
