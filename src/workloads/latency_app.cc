#include "src/workloads/latency_app.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/guest/guest_kernel.h"
#include "src/sim/simulation.h"

namespace vsched {

// A worker serves one request at a time; between requests it event-waits.
class LatencyApp::WorkerBehavior : public TaskBehavior {
 public:
  WorkerBehavior(LatencyApp* app, int index) : app_(app), index_(index) {}

  TaskAction Next(TaskContext& ctx, RunReason reason) override {
    LatencyApp* app = app_;
    TimeNs now = ctx.sim->now();
    switch (reason) {
      case RunReason::kStarted:
        app->idle_workers_.push_back(index_);
        return TaskAction::WaitEvent();
      case RunReason::kEventWake:
      case RunReason::kSleepExpired:
        return TakeNext(ctx, now);
      case RunReason::kBurstComplete: {
        // Request finished: record metrics.
        Task* task = ctx.task;
        app->end_to_end_.Add(static_cast<double>(now - current_.arrival));
        app->queue_time_.Add(static_cast<double>(task->queue_wait_total_ns() - qwait_at_start_));
        app->service_time_.Add(static_cast<double>(task->total_exec_ns() - exec_at_start_));
        ++app->completed_;
        if (app->params_.closed_loop && app->running_) {
          app->InjectRequest(current_.connection, task->cpu());
        }
        return TakeNext(ctx, now);
      }
    }
    return TaskAction::Exit();
  }

 private:
  TaskAction TakeNext(TaskContext& ctx, TimeNs now) {
    LatencyApp* app = app_;
    if (!app->running_ && app->queue_.empty()) {
      return TaskAction::Exit();
    }
    if (app->queue_.empty()) {
      app->idle_workers_.push_back(index_);
      return TaskAction::WaitEvent();
    }
    current_ = app->queue_.front();
    app->queue_.pop_front();
    Task* task = ctx.task;
    qwait_at_start_ = task->queue_wait_total_ns();
    exec_at_start_ = task->total_exec_ns();
    (void)now;
    double work_ns = app->rng_.LogNormal(static_cast<double>(app->params_.service_mean),
                                         app->params_.service_cv);
    Work work = WorkAtCapacity(kCapacityScale, static_cast<TimeNs>(work_ns));
    if (current_.connection >= 0) {
      int& last_cpu = app->conn_last_cpu_[current_.connection];
      int my_cpu = task->cpu() >= 0 ? task->cpu() : 0;
      if (last_cpu >= 0 && last_cpu != my_cpu && app->params_.comm_lines > 0) {
        work += ctx.kernel->CommWorkPenalty(last_cpu, my_cpu, app->params_.comm_lines);
      }
      last_cpu = my_cpu;
    }
    return TaskAction::Run(work);
  }

  LatencyApp* app_;
  int index_;
  Request current_{};
  TimeNs qwait_at_start_ = 0;
  TimeNs exec_at_start_ = 0;
};

LatencyApp::LatencyApp(GuestKernel* kernel, LatencyAppParams params)
    : kernel_(kernel), sim_(kernel->sim()), params_(std::move(params)),
      rng_(kernel->sim()->ForkRng()) {
  arrival_timer_ = sim_->CreateTimer([this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnArrival();
  });
  report_timer_ = sim_->CreateTimer([this, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) {
      return;
    }
    OnReport();
  });
}

LatencyApp::~LatencyApp() {
  sim_->DestroyTimer(report_timer_);
  sim_->DestroyTimer(arrival_timer_);
}

void LatencyApp::Start() {
  VSCHED_CHECK(!running_);
  running_ = true;
  measure_start_ = sim_->now();
  conn_last_cpu_.assign(std::max(0, params_.connections), -1);
  for (int i = 0; i < params_.workers; ++i) {
    behaviors_.push_back(std::make_unique<WorkerBehavior>(this, i));
    Task* t = kernel_->CreateTask(params_.name + "-w" + std::to_string(i), TaskPolicy::kNormal,
                                  behaviors_.back().get(), params_.allowed);
    kernel_->StartTask(t);
    workers_.push_back(t);
  }
  if (params_.closed_loop) {
    for (int c = 0; c < std::max(1, params_.connections); ++c) {
      InjectRequest(params_.connections > 0 ? c : -1, -1);
    }
  } else {
    ScheduleNextArrival();
  }
  if (params_.report_interval > 0) {
    sim_->ArmTimerAfter(report_timer_, params_.report_interval);
  }
}

void LatencyApp::Stop() {
  running_ = false;
  sim_->CancelTimer(arrival_timer_);
  sim_->CancelTimer(report_timer_);
  // Wake idle workers so they observe the stop and exit.
  for (int idx : idle_workers_) {
    kernel_->WakeTask(workers_[idx]);
  }
  idle_workers_.clear();
}

void LatencyApp::ResetStats() {
  end_to_end_.Clear();
  queue_time_.Clear();
  service_time_.Clear();
  completed_ = 0;
  measure_start_ = sim_->now();
}

WorkloadResult LatencyApp::Result() const {
  WorkloadResult r;
  double elapsed = NsToSec(sim_->now() - measure_start_);
  r.throughput = elapsed > 0 ? static_cast<double>(completed_) / elapsed : 0;
  r.p50_ns = end_to_end_.P50();
  r.p95_ns = end_to_end_.P95();
  r.p99_ns = end_to_end_.P99();
  r.mean_ns = end_to_end_.Mean();
  r.completed = completed_;
  return r;
}

void LatencyApp::ScheduleNextArrival() {
  if (!running_ || params_.arrival_rate_per_sec <= 0) {
    return;
  }
  double gap_sec = rng_.Exponential(1.0 / params_.arrival_rate_per_sec);
  TimeNs gap = std::max<TimeNs>(1, static_cast<TimeNs>(gap_sec * kNsPerSec));
  sim_->ArmTimerAfter(arrival_timer_, gap);
}

void LatencyApp::OnArrival() {
  int connection = -1;
  if (params_.connections > 0) {
    connection = static_cast<int>(rng_.UniformInt(0, params_.connections - 1));
  }
  InjectRequest(connection, -1);
  ScheduleNextArrival();
}

void LatencyApp::InjectRequest(int connection, int waker_hint) {
  Request req{sim_->now(), connection};
  if (connection >= 0 && waker_hint < 0) {
    // Interrupt/RFS steering: deliver near where the connection last ran.
    waker_hint = conn_last_cpu_[connection];
  }
  queue_.push_back(req);
  if (!idle_workers_.empty()) {
    int idx = idle_workers_.back();
    idle_workers_.pop_back();
    kernel_->WakeTask(workers_[idx], waker_hint);
  }
}

void LatencyApp::OnReport() {
  uint64_t delta = completed_ - completed_at_last_report_;
  completed_at_last_report_ = completed_;
  double rate = static_cast<double>(delta) / NsToSec(params_.report_interval);
  live_.Add(sim_->now(), rate);
  if (running_) {
    sim_->ArmTimerAfter(report_timer_, params_.report_interval);
  }
}

}  // namespace vsched
